// Command robustored runs a RobuSTore storage server: a block store
// (in-memory or on-disk) exposed over the block protocol, optionally
// behind an admission controller and an observability debug endpoint.
//
// Usage:
//
//	robustored -listen :7070 -dir /var/lib/robustore
//	robustored -listen :7071 -mem -max-concurrent 32 -max-bytes 268435456
//	robustored -listen :7070 -mem -debug-listen :9090   # loopback debug HTTP
//	robustored -listen :7070 -mem -faults 'stall=50ms@0.2,corrupt=0.05'
//	robustored -listen :7070 -mem -faults '0s:latency=0s;30s:reset=0.3;60s:reset=0'
//
// With -debug-listen, an HTTP endpoint serves /metrics (plain-text
// counters, gauges, and latency histograms with mean/stddev/p50/p99),
// /metrics.json, and /debug/trace (the last completed per-request
// traces). The endpoint has no authentication: a bare ":port" binds
// 127.0.0.1 only; an explicit host is required to expose it wider.
//
// With -checksum, blocks are framed with CRC-32C on disk and the
// server answers the SCRUB op, letting the client's scrub/repair
// daemon detect at-rest bit rot without moving payload data. Without
// it SCRUB reports "unsupported" and scrubs degrade to presence
// checks.
//
// With -faults, the server injects deterministic faults (seeded by
// -fault-seed) into its own serving path for chaos testing: store-level
// faults (latency, stall-then-drop, errors, GET corruption) and
// wire-level faults (connection resets, short reads). The spec is a
// faultinject scenario: either a single phase "stall=50ms@0.2,reset=0.1"
// or ";"-separated "AFTER:SPEC" phases scheduled on the server clock.
// Injected faults appear as faultinject_* counters on the debug
// endpoint.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/admission"
	"repro/internal/blockstore"
	"repro/internal/faultinject"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/transport"
)

func main() {
	var (
		listen        = flag.String("listen", ":7070", "address to listen on")
		dir           = flag.String("dir", "", "directory for the on-disk store (required unless -mem)")
		mem           = flag.Bool("mem", false, "serve from an in-memory store")
		maxConcurrent = flag.Int("max-concurrent", 0, "admission: max concurrent data requests (0 = no controller)")
		maxBytes      = flag.Int64("max-bytes", 0, "admission: max in-flight bytes (0 = unlimited)")
		priority      = flag.Bool("priority", false, "admission: use priority-based instead of capacity-based control")
		checksum      = flag.Bool("checksum", false, "frame blocks with CRC-32C and reject corrupted reads")
		debugListen   = flag.String("debug-listen", "", "serve /metrics and /debug/trace on this HTTP address (\":port\" binds loopback; empty disables)")
		faults        = flag.String("faults", "", "inject faults: a faultinject spec ('stall=50ms@0.2,corrupt=0.05') or ';'-separated 'AFTER:SPEC' phases (empty disables)")
		faultSeed     = flag.Int64("fault-seed", 1, "seed for the deterministic fault stream")
		metaServer    = flag.String("meta-server", "", "register with this metadata server (or comma-separated replicated group) on startup")
		advertise     = flag.String("advertise", "", "address to register under (default: the -listen address)")
		zone          = flag.String("zone", "", "failure domain to register under (placement spreads across zones)")
		mbps          = flag.Float64("mbps", 0, "expected throughput hint to register (MB/s; 0 = unknown)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "robustored: ", log.LstdFlags)

	var store blockstore.Store
	switch {
	case *mem:
		store = blockstore.NewMemStore()
	case *dir != "":
		fs, err := blockstore.NewFileStore(*dir)
		if err != nil {
			logger.Fatal(err)
		}
		store = fs
	default:
		logger.Fatal("either -dir or -mem is required")
	}
	if *checksum {
		store = blockstore.WithChecksums(store)
	}

	// Observability: opt-in debug HTTP endpoint. The registry is only
	// created when enabled, so the serving path stays uninstrumented
	// (nil-registry no-ops) otherwise.
	var reg *obs.Registry
	var debugLn net.Listener
	if *debugListen != "" {
		reg = obs.NewRegistry()
		addr := *debugListen
		if strings.HasPrefix(addr, ":") {
			addr = "127.0.0.1" + addr // loopback by default: no auth on this endpoint
		}
		var err error
		debugLn, err = net.Listen("tcp", addr)
		if err != nil {
			logger.Fatal(err)
		}
		go func() {
			if err := http.Serve(debugLn, obs.Handler(reg)); err != nil {
				logger.Printf("debug endpoint: %v", err)
			}
		}()
		fmt.Printf("debug endpoint on http://%s/metrics\n", debugLn.Addr())
	}

	// Fault injection: one spec, split across the two serving layers so
	// timing and data faults (latency, stalls, errors, corruption) fire
	// inside the store handler — where request contexts apply — while
	// connection faults (resets, short reads) fire on the wire. Both
	// injectors draw deterministic streams derived from -fault-seed and
	// report into the same faultinject_* counters.
	var connInj *faultinject.Injector
	if *faults != "" {
		scenario, err := faultinject.ParseScenario(*faults)
		if err != nil {
			logger.Fatal(err)
		}
		var storePhases, connPhases []faultinject.Phase
		for _, p := range scenario.Phases() {
			sp := p
			sp.Config.ResetProb, sp.Config.ShortReadProb = 0, 0
			storePhases = append(storePhases, sp)
			cp := p
			cp.Config = faultinject.Config{
				ResetProb:     p.Config.ResetProb,
				ShortReadProb: p.Config.ShortReadProb,
			}
			connPhases = append(connPhases, cp)
		}
		storeInj := faultinject.New(*faultSeed, faultinject.Config{}, reg)
		storeInj.Run(faultinject.NewScenario(storePhases...))
		store = faultinject.WrapStore(store, storeInj)
		connInj = faultinject.New(*faultSeed+1, faultinject.Config{}, reg)
		connInj.Run(faultinject.NewScenario(connPhases...))
		logger.Printf("fault injection active: %q (seed %d)", *faults, *faultSeed)
	}

	opts := transport.ServerOptions{Logger: logger, Obs: reg}
	if *maxConcurrent > 0 || *maxBytes > 0 {
		cfg := admission.Config{MaxConcurrent: *maxConcurrent, MaxBytes: *maxBytes}
		var ctrl admission.Controller
		var err error
		if *priority {
			ctrl, err = admission.NewPriority(cfg)
		} else {
			ctrl, err = admission.NewCapacity(cfg)
		}
		if err != nil {
			logger.Fatal(err)
		}
		opts.Admission = ctrl
	}

	srv := transport.NewServer(store, opts)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("robustored listening on %s\n", ln.Addr())
	ln = faultinject.WrapListener(ln, connInj) // no-op when -faults is unset

	// Self-registration: announce this server (address, failure domain,
	// performance hint) to the metadata plane so placement can weight
	// it. A blank State on re-registration preserves any lifecycle
	// state already recorded — a restart never silently undrains a
	// Draining server; that takes an explicit `robustore undrain`.
	if *metaServer != "" {
		var endpoints []string
		for _, a := range strings.Split(*metaServer, ",") {
			if a = strings.TrimSpace(a); a != "" {
				endpoints = append(endpoints, a)
			}
		}
		remote, err := metadata.DialRemoteMulti(endpoints, metadata.RemoteOptions{})
		if err != nil {
			logger.Fatal(err)
		}
		addr := *advertise
		if addr == "" {
			addr = ln.Addr().String()
		}
		err = remote.RegisterServer(metadata.Server{Addr: addr, Zone: *zone, ExpectedMBps: *mbps})
		remote.Close()
		if err != nil {
			logger.Fatalf("registering with metadata server: %v", err)
		}
		logger.Printf("registered %s (zone %q) with metadata plane", addr, *zone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Print("shutting down")
		if debugLn != nil {
			debugLn.Close()
		}
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		logger.Fatal(err)
	}
}
