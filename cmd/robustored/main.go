// Command robustored runs a RobuSTore storage server: a block store
// (in-memory or on-disk) exposed over the block protocol, optionally
// behind an admission controller.
//
// Usage:
//
//	robustored -listen :7070 -dir /var/lib/robustore
//	robustored -listen :7071 -mem -max-concurrent 32 -max-bytes 268435456
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/admission"
	"repro/internal/blockstore"
	"repro/internal/transport"
)

func main() {
	var (
		listen        = flag.String("listen", ":7070", "address to listen on")
		dir           = flag.String("dir", "", "directory for the on-disk store (required unless -mem)")
		mem           = flag.Bool("mem", false, "serve from an in-memory store")
		maxConcurrent = flag.Int("max-concurrent", 0, "admission: max concurrent data requests (0 = no controller)")
		maxBytes      = flag.Int64("max-bytes", 0, "admission: max in-flight bytes (0 = unlimited)")
		priority      = flag.Bool("priority", false, "admission: use priority-based instead of capacity-based control")
		checksum      = flag.Bool("checksum", false, "frame blocks with CRC-32C and reject corrupted reads")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "robustored: ", log.LstdFlags)

	var store blockstore.Store
	switch {
	case *mem:
		store = blockstore.NewMemStore()
	case *dir != "":
		fs, err := blockstore.NewFileStore(*dir)
		if err != nil {
			logger.Fatal(err)
		}
		store = fs
	default:
		logger.Fatal("either -dir or -mem is required")
	}
	if *checksum {
		store = blockstore.WithChecksums(store)
	}

	opts := transport.ServerOptions{Logger: logger}
	if *maxConcurrent > 0 || *maxBytes > 0 {
		cfg := admission.Config{MaxConcurrent: *maxConcurrent, MaxBytes: *maxBytes}
		var ctrl admission.Controller
		var err error
		if *priority {
			ctrl, err = admission.NewPriority(cfg)
		} else {
			ctrl, err = admission.NewCapacity(cfg)
		}
		if err != nil {
			logger.Fatal(err)
		}
		opts.Admission = ctrl
	}

	srv := transport.NewServer(store, opts)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("robustored listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Print("shutting down")
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		logger.Fatal(err)
	}
}
