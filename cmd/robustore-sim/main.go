// Command robustore-sim regenerates the RobuSTore evaluation: every
// table and figure of the paper's Chapters 5 and 6, by experiment id.
//
// Usage:
//
//	robustore-sim -list
//	robustore-sim -exp fig6-6 [-trials 100] [-seed 1] [-csv out/]
//	robustore-sim -exp all -quick
//
// Each experiment prints one aligned text table per regenerated
// dataset; -csv additionally writes <id>.csv files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run, or \"all\" (see -list)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		trials  = flag.Int("trials", 0, "trials per configuration point (default: paper's 100)")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		quick   = flag.Bool("quick", false, "quick mode: few trials per point")
		csvDir  = flag.String("csv", "", "directory to write per-dataset CSV files")
		light   = flag.Bool("light", false, "with -exp all: skip the heavy simulation sweeps")
		plot    = flag.Bool("plot", false, "also render each dataset as an ASCII chart")
		metrics = flag.String("metrics", "", "write an observability JSON dump to this file (\"-\" for stdout)")
	)
	flag.Parse()

	// -metrics attaches a registry to the cluster model (trial/drive
	// churn counters) and records per-experiment wall time; the dump is
	// written after all experiments complete.
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		cluster.Observe(reg)
	}

	if *list {
		fmt.Printf("%-12s %-10s %s\n", "ID", "SCALE", "REGENERATES")
		for _, e := range experiments.Registry {
			scale := "fast"
			if e.Heavy {
				scale = "heavy"
			}
			fmt.Printf("%-12s %-10s %s — %s\n", e.ID, scale, e.Figures, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "robustore-sim: -exp required (or -list); e.g. -exp headline")
		os.Exit(2)
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *trials > 0 {
		opts.Trials = *trials
	}
	opts.Seed = *seed

	var entries []experiments.Entry
	if *exp == "all" {
		for _, e := range experiments.Registry {
			if *light && e.Heavy {
				continue
			}
			entries = append(entries, e)
		}
	} else {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "robustore-sim: unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		entries = append(entries, e)
	}

	for _, e := range entries {
		start := time.Now()
		fmt.Printf("# %s — %s (%s; %d trials/point)\n", e.ID, e.Title, e.Figures, opts.Trials)
		datasets, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "robustore-sim: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for i := range datasets {
			datasets[i].Format(os.Stdout)
			if *plot {
				datasets[i].Plot(os.Stdout, 14)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, &datasets[i]); err != nil {
					fmt.Fprintf(os.Stderr, "robustore-sim: %v\n", err)
					os.Exit(1)
				}
			}
		}
		reg.Gauge("sim_" + e.ID + "_seconds").Set(time.Since(start).Seconds())
		reg.Counter("sim_experiments_total").Inc()
		fmt.Printf("# %s done in %s\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *metrics != "" {
		if err := writeMetricsDump(*metrics, reg); err != nil {
			fmt.Fprintf(os.Stderr, "robustore-sim: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeMetricsDump writes the registry's JSON snapshot to path ("-"
// for stdout).
func writeMetricsDump(path string, reg *obs.Registry) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(dir string, d *experiments.Dataset) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, d.ID+".csv"))
	if err != nil {
		return err
	}
	d.WriteCSV(f)
	return f.Close()
}
