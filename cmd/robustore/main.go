// Command robustore is the RobuSTore client CLI: put, get, stat,
// list, and remove erasure-coded segments across a set of block
// servers, with metadata kept in a local JSON snapshot (the paper's
// metadata server, persisted between invocations).
//
// Usage:
//
//	robustore -servers localhost:7070,localhost:7071 put name file
//	robustore -servers ...                         get name [outfile]
//	robustore -servers ...                         stat name
//	robustore                                      ls
//	robustore -servers ...                         rm name
//	robustore -servers ...                         scrub [name]
//	robustore -servers ...                         repair --all
//	robustore -servers ...                         daemon
//	robustore -meta-server ...                     drain addr
//	robustore -meta-server ...                     undrain addr
//	robustore -meta-server ...                     remove-server addr
//	robustore -servers ...                         rebalance
//	robustore                                      servers
//
// The daemon command runs the self-healing control plane in the
// foreground until interrupted: a prober feeds the failure detector
// (Down servers leave write placement and read fan-out, rejoining on
// a successful probe) while the scrub daemon walks all segments,
// deletes scrub-condemned shares, and drains the repair queue under
// the -repair-rate bandwidth budget; with -rebalance it also migrates
// shares off draining/over-full servers each pass, under the same
// budget. -metrics-listen exposes the health_*, scrub_*,
// repair_queue_*, placement_*, and rebalance_* series over HTTP.
//
// Server lifecycle: drain marks a server Draining (excluded from new
// placements, still readable; the rebalancer migrates its shares
// off), undrain returns it to Active (a rejoin — the rebalancer
// converges load back onto it), and remove-server tombstones it.
// Against a replicated -meta-server group the state change is a
// consensus-log command, so it survives leader failover.
//
// Flags -meta (snapshot path), -meta-server (one address or a
// comma-separated replicated group; the client fails over between
// endpoints and follows leader redirects), -redundancy, -block,
// -max-zone-share tune behaviour;
// -scrub-interval, -probe-interval, -repair-rate, -rebalance,
// -metrics-listen tune the daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/health"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/transport"
)

func main() {
	var (
		servers       = flag.String("servers", "", "comma-separated block server addresses")
		metaPath      = flag.String("meta", "robustore-meta.json", "local metadata snapshot path")
		metaServer    = flag.String("meta-server", "", "networked metadata server address(es), comma-separated for a replicated group (overrides -meta)")
		redundancy    = flag.Float64("redundancy", 3, "data redundancy D (stored = (1+D) x data)")
		blockKB       = flag.Int64("block", 1024, "coded block size in KB")
		chunkMB       = flag.Int64("chunk-size", 0, "put: streaming chunk size in MB (0 = whole-segment single chunk)")
		timeout       = flag.Duration("timeout", 5*time.Minute, "operation timeout")
		scrubInterval = flag.Duration("scrub-interval", 30*time.Second, "daemon: pause between scrub passes")
		probeInterval = flag.Duration("probe-interval", time.Second, "daemon: pause between liveness probe rounds")
		repairRate    = flag.Int64("repair-rate", 0, "daemon: repair+rebalance bandwidth budget in bytes/sec (0 = unlimited)")
		rebalance     = flag.Bool("rebalance", false, "daemon: migrate shares off draining/over-full servers each pass")
		maxZoneShare  = flag.Float64("max-zone-share", 0, "cap on the fraction of a segment's shares per zone (0 = uncapped)")
		metricsListen = flag.String("metrics-listen", "", "daemon: serve /metrics on this HTTP address (\":port\" binds loopback; empty disables)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	// Daemon mode wires the full self-healing loop: a registry for the
	// health_*/scrub_* series and a failure detector the client both
	// feeds (request outcomes) and consults (placement exclusion).
	var reg *obs.Registry
	var tracker *health.Tracker
	if args[0] == "daemon" {
		reg = obs.NewRegistry()
		tracker = health.NewTracker(health.Options{Obs: reg})
	}

	var meta metadata.API
	var localMeta *metadata.Service
	if *metaServer != "" {
		// -meta-server accepts one address or a comma-separated
		// replicated group; the client fails over between endpoints and
		// follows leader redirects. Endpoint outcomes feed the daemon's
		// failure detector alongside block-server traffic.
		var endpoints []string
		for _, a := range strings.Split(*metaServer, ",") {
			if a = strings.TrimSpace(a); a != "" {
				endpoints = append(endpoints, a)
			}
		}
		ropts := metadata.RemoteOptions{Obs: reg}
		if tracker != nil {
			ropts.Health = tracker
		}
		remote, err := metadata.DialRemoteMulti(endpoints, ropts)
		if err != nil {
			fatal(err)
		}
		defer remote.Close()
		meta = remote
	} else {
		localMeta = metadata.NewService()
		if err := localMeta.LoadFile(*metaPath); err != nil && !errors.Is(err, os.ErrNotExist) {
			fatal(err)
		}
		meta = localMeta
	}
	saveMeta := func() {
		if localMeta == nil {
			return // the networked metadata server owns persistence
		}
		if err := localMeta.SaveFile(*metaPath); err != nil {
			fatal(err)
		}
	}
	copts := robust.Options{
		Redundancy:   *redundancy,
		BlockBytes:   *blockKB << 10,
		ChunkBytes:   *chunkMB << 20,
		MaxZoneShare: *maxZoneShare,
		Obs:          reg,
	}
	if tracker != nil {
		copts.Health = tracker
	}
	client, err := robust.NewClient(meta, copts)
	if err != nil {
		fatal(err)
	}
	var addrs []string
	if *servers != "" {
		for _, a := range strings.Split(*servers, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			topts := transport.ClientOptions{Obs: reg}
			if tracker != nil {
				// The transport feeds the failure detector directly:
				// per-stream mux timeouts reach the tracker even when
				// the robust layer already hedged away from the server.
				topts.Health = tracker
			}
			store, err := transport.Dial(a, topts)
			if err != nil {
				fatal(fmt.Errorf("connecting to %s: %w", a, err))
			}
			defer store.Close()
			if err := client.AttachStore(a, store); err != nil {
				fatal(err)
			}
			addrs = append(addrs, a)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "put":
		if len(args) != 3 {
			usage()
		}
		// Stream the source through the chunked write path: "-" reads
		// stdin to EOF; a regular file declares its size so a
		// truncated source fails the write instead of storing a short
		// segment. With -chunk-size each chunk encodes and spreads
		// while the next is still being read.
		var src io.Reader
		size := int64(-1)
		if args[2] == "-" {
			src = os.Stdin
		} else {
			f, err := os.Open(args[2])
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() {
				size = fi.Size()
			}
			src = f
		}
		cr := &countReader{r: src}
		stats, err := client.WriteFrom(ctx, args[1], cr, size, nil)
		if err != nil {
			fatal(err)
		}
		saveMeta()
		fmt.Printf("stored %s: %d bytes, K=%d N=%d, %d blocks committed in %v (first block %v)\n",
			args[1], cr.n, stats.K, stats.N, stats.Committed,
			stats.Duration.Round(time.Millisecond), stats.FirstCommit.Round(time.Millisecond))
		printPerServer(stats.PerServer)
	case "get":
		if len(args) < 2 || len(args) > 3 {
			usage()
		}
		data, stats, err := client.Read(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		out := os.Stdout
		if len(args) == 3 {
			f, err := os.Create(args[2])
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if _, err := out.Write(data); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "read %s: %d bytes, %d blocks (overhead %.2f) in %v\n",
			args[1], len(data), stats.Received, stats.Reception, stats.Duration.Round(time.Millisecond))
	case "stat":
		if len(args) != 2 {
			usage()
		}
		info, err := client.Stat(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d bytes, K=%d N=%d, block %d B, version %d\n",
			info.Name, info.Size, info.K, info.N, info.BlockBytes, info.Version)
		printPerServer(info.Servers)
	case "ls":
		for _, name := range meta.ListSegments() {
			fmt.Println(name)
		}
	case "rm":
		if len(args) != 2 {
			usage()
		}
		if err := client.Delete(ctx, args[1]); err != nil {
			fatal(err)
		}
		saveMeta()
		fmt.Printf("removed %s\n", args[1])
	case "health":
		if len(args) != 2 {
			usage()
		}
		rep, err := client.Health(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d/%d blocks reachable, %d missing, decodable=%v\n",
			rep.Name, rep.Reachable, rep.Reachable+rep.Missing, rep.Missing, rep.Decodable)
		for _, addr := range rep.DeadAddrs {
			fmt.Printf("  unreachable holder: %s\n", addr)
		}
	case "repair":
		if len(args) != 2 {
			usage()
		}
		if args[1] == "--all" || args[1] == "-all" {
			d := robust.NewDaemon(client, robust.DaemonOptions{
				RepairRateBytesPerSec: *repairRate,
			})
			stats, err := d.RunOnce(ctx)
			saveMeta() // partial progress is still progress
			if err != nil {
				fatal(err)
			}
			fmt.Printf("scanned %d segments: %d queued, %d repaired, %d corrupt and %d missing shares found\n",
				stats.Scanned, stats.Enqueued, stats.Repaired, stats.Corrupt, stats.Missing)
			break
		}
		st, err := client.Repair(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		saveMeta()
		fmt.Printf("repaired %s: %d blocks regenerated, %d placement entries pruned in %v\n",
			args[1], st.Regenerated, st.Pruned, st.Duration.Round(time.Millisecond))
	case "scrub":
		if len(args) > 2 {
			usage()
		}
		names := meta.ListSegments()
		if len(args) == 2 {
			names = []string{args[1]}
		}
		for _, name := range names {
			audit, err := client.Audit(ctx, name)
			if err != nil {
				fatal(err)
			}
			status := "ok"
			if audit.NeedsRepair() {
				status = "NEEDS REPAIR"
			}
			fmt.Printf("%s: %d/%d shares live, %d corrupt, %d missing (deficit %d) %s\n",
				name, audit.Live, audit.N, audit.Corrupt, audit.Missing, audit.Deficit(), status)
		}
	case "drain", "undrain", "remove-server":
		if len(args) != 2 {
			usage()
		}
		state := map[string]metadata.ServerState{
			"drain":         metadata.ServerDraining,
			"undrain":       metadata.ServerActive,
			"remove-server": metadata.ServerRemoved,
		}[args[0]]
		if err := meta.SetServerState(args[1], state); err != nil {
			fatal(err)
		}
		saveMeta()
		st, err := client.DrainProgress(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s is now %s; %d shares still placed here\n", args[1], st.State, st.Shares)
		if st.Shares > 0 && state != metadata.ServerActive {
			fmt.Println("run `robustore rebalance` (or the daemon with -rebalance) to migrate them off")
		}
	case "rebalance":
		if len(args) != 1 {
			usage()
		}
		d := robust.NewDaemon(client, robust.DaemonOptions{
			RepairRateBytesPerSec: *repairRate,
			Rebalance:             true,
			MaxZoneShare:          *maxZoneShare,
		})
		stats, err := d.RebalanceOnce(ctx)
		saveMeta() // partial progress is still progress
		if err != nil {
			fatal(err)
		}
		fmt.Printf("planned %d moves over %d segments: %d moved (%d bytes), %d skipped, %d failed, throttled %v\n",
			stats.Planned, stats.Scanned, stats.Moved, stats.Bytes, stats.Skipped, stats.Failed,
			stats.Throttled.Round(time.Millisecond))
	case "servers":
		if len(args) != 1 {
			usage()
		}
		for _, srv := range meta.Servers() {
			fmt.Printf("%-24s zone=%-12q state=%-9s %.0f MBps\n",
				srv.Addr, srv.Zone, srv.State.Normalize(), srv.ExpectedMBps)
		}
	case "daemon":
		if len(args) != 1 {
			usage()
		}
		runDaemon(client, tracker, reg, saveMeta, daemonConfig{
			scrubInterval: *scrubInterval,
			probeInterval: *probeInterval,
			repairRate:    *repairRate,
			rebalance:     *rebalance,
			maxZoneShare:  *maxZoneShare,
			metricsListen: *metricsListen,
		})
	default:
		usage()
	}
	_ = addrs
}

// daemonConfig carries the daemon command's flag values.
type daemonConfig struct {
	scrubInterval time.Duration
	probeInterval time.Duration
	repairRate    int64
	rebalance     bool
	maxZoneShare  float64
	metricsListen string
}

// runDaemon runs the self-healing control plane in the foreground:
// liveness prober feeding the failure detector, scrub/repair daemon
// draining the queue, optional /metrics endpoint. Returns on
// SIGINT/SIGTERM after stopping both loops and persisting metadata.
func runDaemon(client *robust.Client, tracker *health.Tracker, reg *obs.Registry, saveMeta func(), cfg daemonConfig) {
	if cfg.metricsListen != "" {
		addr := cfg.metricsListen
		if strings.HasPrefix(addr, ":") {
			addr = "127.0.0.1" + addr
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		defer ln.Close()
		go http.Serve(ln, obs.Handler(reg))
		fmt.Fprintf(os.Stderr, "robustore: serving metrics on http://%s/metrics\n", ln.Addr())
	}

	prober := health.NewProber(tracker, client.Servers, client.Probe,
		health.ProberOptions{Interval: cfg.probeInterval, Obs: reg})
	prober.Start()
	daemon := robust.NewDaemon(client, robust.DaemonOptions{
		ScrubInterval:         cfg.scrubInterval,
		RepairRateBytesPerSec: cfg.repairRate,
		Rebalance:             cfg.rebalance,
		MaxZoneShare:          cfg.maxZoneShare,
		Obs:                   reg,
	})
	daemon.Start()
	fmt.Fprintf(os.Stderr, "robustore: daemon running (scrub every %v, probe every %v); ^C to stop\n",
		cfg.scrubInterval, cfg.probeInterval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)

	fmt.Fprintln(os.Stderr, "robustore: shutting down")
	daemon.Stop()
	prober.Stop()
	saveMeta()
}

func printPerServer(per map[string]int) {
	keys := make([]string, 0, len(per))
	for k := range per {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %d blocks\n", k, per[k])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: robustore [flags] <command>
commands:
  put <name> <file>     store a file ("-" = stdin) as an erasure-coded segment,
                        streamed chunk-by-chunk with -chunk-size
  get <name> [outfile]  reconstruct a segment
  stat <name>           show segment metadata
  ls                    list segments
  rm <name>             delete a segment
  health <name>         audit block reachability and decodability
  repair <name>         regenerate unreachable blocks on healthy servers
  repair --all          one scrub+repair pass over every segment
  scrub [name]          integrity audit (live/corrupt/missing shares)
  daemon                run the self-healing prober + scrub/repair loop
  drain <addr>          mark a server Draining (no new placements; still readable)
  undrain <addr>        return a server to Active (rejoin)
  remove-server <addr>  tombstone a server (never placed on again)
  rebalance             one pass migrating shares off draining/over-full servers
  servers               list registered servers with zone and lifecycle state
flags: -servers -meta -meta-server -redundancy -block -chunk-size -max-zone-share -timeout
       -scrub-interval -probe-interval -repair-rate -rebalance -metrics-listen (see -h)`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "robustore: %v\n", err)
	os.Exit(1)
}

// countReader counts bytes read, so put can report the stored size
// without buffering the stream.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
