// Command robustore is the RobuSTore client CLI: put, get, stat,
// list, and remove erasure-coded segments across a set of block
// servers, with metadata kept in a local JSON snapshot (the paper's
// metadata server, persisted between invocations).
//
// Usage:
//
//	robustore -servers localhost:7070,localhost:7071 put name file
//	robustore -servers ...                         get name [outfile]
//	robustore -servers ...                         stat name
//	robustore                                      ls
//	robustore -servers ...                         rm name
//
// Flags -meta (snapshot path), -redundancy, -block tune behaviour.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/metadata"
	"repro/internal/robust"
	"repro/internal/transport"
)

func main() {
	var (
		servers    = flag.String("servers", "", "comma-separated block server addresses")
		metaPath   = flag.String("meta", "robustore-meta.json", "local metadata snapshot path")
		metaServer = flag.String("meta-server", "", "networked metadata server address (overrides -meta)")
		redundancy = flag.Float64("redundancy", 3, "data redundancy D (stored = (1+D) x data)")
		blockKB    = flag.Int64("block", 1024, "coded block size in KB")
		timeout    = flag.Duration("timeout", 5*time.Minute, "operation timeout")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	var meta metadata.API
	var localMeta *metadata.Service
	if *metaServer != "" {
		remote, err := metadata.DialRemote(*metaServer)
		if err != nil {
			fatal(err)
		}
		defer remote.Close()
		meta = remote
	} else {
		localMeta = metadata.NewService()
		if err := localMeta.LoadFile(*metaPath); err != nil && !errors.Is(err, os.ErrNotExist) {
			fatal(err)
		}
		meta = localMeta
	}
	saveMeta := func() {
		if localMeta == nil {
			return // the networked metadata server owns persistence
		}
		if err := localMeta.SaveFile(*metaPath); err != nil {
			fatal(err)
		}
	}
	client, err := robust.NewClient(meta, robust.Options{
		Redundancy: *redundancy,
		BlockBytes: *blockKB << 10,
	})
	if err != nil {
		fatal(err)
	}
	var addrs []string
	if *servers != "" {
		for _, a := range strings.Split(*servers, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			store, err := transport.Dial(a, transport.ClientOptions{})
			if err != nil {
				fatal(fmt.Errorf("connecting to %s: %w", a, err))
			}
			defer store.Close()
			if err := client.AttachStore(a, store); err != nil {
				fatal(err)
			}
			addrs = append(addrs, a)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "put":
		if len(args) != 3 {
			usage()
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			fatal(err)
		}
		stats, err := client.Write(ctx, args[1], data, nil)
		if err != nil {
			fatal(err)
		}
		saveMeta()
		fmt.Printf("stored %s: %d bytes, K=%d N=%d, %d blocks committed in %v\n",
			args[1], len(data), stats.K, stats.N, stats.Committed, stats.Duration.Round(time.Millisecond))
		printPerServer(stats.PerServer)
	case "get":
		if len(args) < 2 || len(args) > 3 {
			usage()
		}
		data, stats, err := client.Read(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		out := os.Stdout
		if len(args) == 3 {
			f, err := os.Create(args[2])
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if _, err := out.Write(data); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "read %s: %d bytes, %d blocks (overhead %.2f) in %v\n",
			args[1], len(data), stats.Received, stats.Reception, stats.Duration.Round(time.Millisecond))
	case "stat":
		if len(args) != 2 {
			usage()
		}
		info, err := client.Stat(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d bytes, K=%d N=%d, block %d B, version %d\n",
			info.Name, info.Size, info.K, info.N, info.BlockBytes, info.Version)
		printPerServer(info.Servers)
	case "ls":
		for _, name := range meta.ListSegments() {
			fmt.Println(name)
		}
	case "rm":
		if len(args) != 2 {
			usage()
		}
		if err := client.Delete(ctx, args[1]); err != nil {
			fatal(err)
		}
		saveMeta()
		fmt.Printf("removed %s\n", args[1])
	case "health":
		if len(args) != 2 {
			usage()
		}
		rep, err := client.Health(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d/%d blocks reachable, %d missing, decodable=%v\n",
			rep.Name, rep.Reachable, rep.Reachable+rep.Missing, rep.Missing, rep.Decodable)
		for _, addr := range rep.DeadAddrs {
			fmt.Printf("  unreachable holder: %s\n", addr)
		}
	case "repair":
		if len(args) != 2 {
			usage()
		}
		st, err := client.Repair(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		saveMeta()
		fmt.Printf("repaired %s: %d blocks regenerated, %d placement entries pruned in %v\n",
			args[1], st.Regenerated, st.Pruned, st.Duration.Round(time.Millisecond))
	default:
		usage()
	}
	_ = addrs
}

func printPerServer(per map[string]int) {
	keys := make([]string, 0, len(per))
	for k := range per {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %d blocks\n", k, per[k])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: robustore [flags] <command>
commands:
  put <name> <file>     store a file as an erasure-coded segment
  get <name> [outfile]  reconstruct a segment
  stat <name>           show segment metadata
  ls                    list segments
  rm <name>             delete a segment
  health <name>         audit block reachability and decodability
  repair <name>         regenerate unreachable blocks on healthy servers
flags: -servers -meta -meta-server -redundancy -block -timeout (see -h)`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "robustore: %v\n", err)
	os.Exit(1)
}
