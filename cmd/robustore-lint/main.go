// Command robustore-lint runs the project's static analyzers
// (internal/lint) over package directories and reports findings with
// file:line:col positions. It exits non-zero when any finding is
// reported, so it can gate CI.
//
// Usage:
//
//	robustore-lint [./...|dir ...]
//
// The pattern ./... (the default) walks the module for every package
// directory, skipping testdata, vendor, and hidden trees. _test.go
// files are not analyzed: the determinism and join discipline applies
// to library code.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, modRoot, modPath, err := resolveDirs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustore-lint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader()
	var findings []lint.Finding
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, importPath(modRoot, modPath, dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "robustore-lint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		if pkg == nil {
			continue
		}
		findings = append(findings, lint.Run(pkg)...)
	}
	lint.SortFindings(findings)
	for _, f := range findings {
		rel, err := filepath.Rel(modRoot, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = f.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "robustore-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// resolveDirs expands the argument patterns into package directories
// and locates the module root and path for import-path derivation.
func resolveDirs(args []string) (dirs []string, modRoot, modPath string, err error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, "", "", err
	}
	modRoot, modPath, err = findModule(cwd)
	if err != nil {
		return nil, "", "", err
	}
	seen := map[string]bool{}
	for _, a := range args {
		switch {
		case a == "./..." || a == "...":
			walked, err := lint.PackageDirs(modRoot)
			if err != nil {
				return nil, "", "", err
			}
			for _, d := range walked {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		case strings.HasSuffix(a, "/..."):
			root := filepath.Join(cwd, strings.TrimSuffix(a, "/..."))
			walked, err := lint.PackageDirs(root)
			if err != nil {
				return nil, "", "", err
			}
			for _, d := range walked {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		default:
			d := a
			if !filepath.IsAbs(d) {
				d = filepath.Join(cwd, d)
			}
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, modRoot, modPath, nil
}

// findModule walks up from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// importPath derives a package's import path from its directory.
func importPath(modRoot, modPath, dir string) string {
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}
