// Command robustore-lint runs the project's static analyzers
// (internal/lint) over package directories and reports findings with
// file:line:col positions. It exits non-zero when any unsuppressed
// finding is reported, so it can gate CI.
//
// Usage:
//
//	robustore-lint [-json] [-tests] [./...|dir ...]
//
// The pattern ./... (the default) walks the module for every package
// directory, skipping testdata, vendor, and hidden trees. Packages
// are loaded and type-checked in parallel.
//
// Flags:
//
//	-json   emit findings as a JSON array (one object per finding:
//	        analyzer, file, line, col, message) for CI artifacts
//	        instead of the human file:line:col lines
//	-tests  also analyze _test.go files with the test-safe analyzer
//	        subset (locksafe, floateq, simdeterminism); library-only
//	        checks like goroutinehygiene stay off for tests
//
// A finding is suppressed by a "//lint:ignore <analyzer> <reason>"
// directive on the flagged line or the line above it; malformed
// directives are findings themselves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	withTests := flag.Bool("tests", false, "also analyze _test.go files (test-safe analyzer subset)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, modRoot, modPath, err := resolveDirs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustore-lint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadTree(modRoot, modPath, dirs, lint.LoadOptions{Tests: *withTests})
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustore-lint:", err)
		os.Exit(2)
	}
	findings := lint.RunTree(pkgs)
	if *jsonOut {
		writeJSON(os.Stdout, modRoot, findings)
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(modRoot, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "robustore-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the CI-artifact schema for one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, modRoot string, findings []lint.Finding) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(modRoot, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "robustore-lint:", err)
		os.Exit(2)
	}
}

func relPath(modRoot, file string) string {
	rel, err := filepath.Rel(modRoot, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return rel
}

// resolveDirs expands the argument patterns into package directories
// and locates the module root and path for import-path derivation.
func resolveDirs(args []string) (dirs []string, modRoot, modPath string, err error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, "", "", err
	}
	modRoot, modPath, err = findModule(cwd)
	if err != nil {
		return nil, "", "", err
	}
	seen := map[string]bool{}
	for _, a := range args {
		switch {
		case a == "./..." || a == "...":
			walked, err := lint.PackageDirs(modRoot)
			if err != nil {
				return nil, "", "", err
			}
			for _, d := range walked {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		case strings.HasSuffix(a, "/..."):
			root := filepath.Join(cwd, strings.TrimSuffix(a, "/..."))
			walked, err := lint.PackageDirs(root)
			if err != nil {
				return nil, "", "", err
			}
			for _, d := range walked {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		default:
			d := a
			if !filepath.IsAbs(d) {
				d = filepath.Join(cwd, d)
			}
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, modRoot, modPath, nil
}

// findModule walks up from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
