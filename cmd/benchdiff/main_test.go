package main

import (
	"os"
	"path/filepath"
	"testing"
)

func findingKinds(fs []finding) map[string]string {
	out := make(map[string]string, len(fs))
	for _, f := range fs {
		out[f.key] = f.kind
	}
	return out
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := map[string]float64{
		"faultfree_read_bare_ms": 10.0,
		"decode-MBps-C1-d0.1":    1000,
		"read16mb_allocs_per_op": 100,
		"hedges_per_read":        37,
	}
	fresh := map[string]float64{
		"faultfree_read_bare_ms": 12.0, // +20% < 25%
		"decode-MBps-C1-d0.1":    800,  // -20% < 25%
		"read16mb_allocs_per_op": 109,  // +9% < 10%
		"hedges_per_read":        99,   // presence-only: any value
	}
	if fs := compare(base, fresh, 0.25, 0.10, false); len(fs) != 0 {
		t.Fatalf("expected no findings, got %+v", fs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string]float64{
		"faultfree_read_bare_ms": 10.0,
		"decode-MBps-C1-d0.1":    1000,
		"read16mb_allocs_per_op": 100,
	}
	fresh := map[string]float64{
		"faultfree_read_bare_ms": 13.0, // +30% latency: regression
		"decode-MBps-C1-d0.1":    700,  // -30% throughput: regression
		"read16mb_allocs_per_op": 115,  // +15% allocs: regression at ±10%
	}
	kinds := findingKinds(compare(base, fresh, 0.25, 0.10, false))
	for _, k := range []string{"faultfree_read_bare_ms", "decode-MBps-C1-d0.1", "read16mb_allocs_per_op"} {
		if kinds[k] != "regression" {
			t.Errorf("expected regression finding for %s, got %q", k, kinds[k])
		}
	}
}

func TestCompareImprovementsAlwaysPass(t *testing.T) {
	base := map[string]float64{
		"faultfree_read_bare_ms": 10.0,
		"decode-MBps-C1-d0.1":    1000,
		"read16mb_allocs_per_op": 100,
	}
	fresh := map[string]float64{
		"faultfree_read_bare_ms": 2.0,  // 5× faster
		"decode-MBps-C1-d0.1":    5000, // 5× more throughput
		"read16mb_allocs_per_op": 10,   // 10× fewer allocs
	}
	if fs := compare(base, fresh, 0.25, 0.10, false); len(fs) != 0 {
		t.Fatalf("improvements must never fail, got %+v", fs)
	}
}

func TestCompareMissingAndUnexpectedKeys(t *testing.T) {
	base := map[string]float64{"faultfree_read_bare_ms": 10.0, "hedges_per_read": 3}
	fresh := map[string]float64{"faultfree_read_bare_ms": 10.0, "brand_new_metric_ms": 1}
	kinds := findingKinds(compare(base, fresh, 0.25, 0.10, false))
	if kinds["hedges_per_read"] != "missing" {
		t.Errorf("expected missing finding for hedges_per_read, got %q", kinds["hedges_per_read"])
	}
	if kinds["brand_new_metric_ms"] != "unexpected" {
		t.Errorf("expected unexpected finding for brand_new_metric_ms, got %q", kinds["brand_new_metric_ms"])
	}
}

func TestCompareKeysOnlySkipsValues(t *testing.T) {
	base := map[string]float64{"faultfree_read_bare_ms": 10.0}
	fresh := map[string]float64{"faultfree_read_bare_ms": 1000.0}
	if fs := compare(base, fresh, 0.25, 0.10, true); len(fs) != 0 {
		t.Fatalf("keys-only must ignore values, got %+v", fs)
	}
	fresh = map[string]float64{}
	if kinds := findingKinds(compare(base, fresh, 0.25, 0.10, true)); kinds["faultfree_read_bare_ms"] != "missing" {
		t.Fatal("keys-only must still flag missing keys")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		key   string
		dir   direction
		tight bool
	}{
		{"read16mb_allocs_per_op", lowerBetter, true},
		{"faultfree_read_bare_ms", lowerBetter, false},
		{"stalled_read_hedged_ms", lowerBetter, false},
		{"decode-MBps-C1-d0.1", higherBetter, false},
		{"RobuSTore-64disk-MBps", higherBetter, false},
		{"read-speedup-vs-RAID0", higherBetter, false},
		{"hedges_per_read", presenceOnly, false},
		{"hedge_wins_per_read", presenceOnly, false},
	}
	for _, c := range cases {
		dir, tight := classify(c.key)
		if dir != c.dir || tight != c.tight {
			t.Errorf("classify(%q) = (%v, %v), want (%v, %v)", c.key, dir, tight, c.dir, c.tight)
		}
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"schema":1,"metrics":{"a_ms":1.5}}`), 0o644)
	bf, err := loadBaseline(good)
	if err != nil {
		t.Fatalf("loadBaseline(good): %v", err)
	}
	if bf.Metrics["a_ms"] != 1.5 {
		t.Fatalf("bad metrics: %+v", bf.Metrics)
	}
	for name, content := range map[string]string{
		"badschema.json": `{"schema":2,"metrics":{"a_ms":1}}`,
		"empty.json":     `{"schema":1,"metrics":{}}`,
		"garbage.json":   `not json`,
	} {
		p := filepath.Join(dir, name)
		os.WriteFile(p, []byte(content), 0o644)
		if _, err := loadBaseline(p); err == nil {
			t.Errorf("loadBaseline(%s) accepted bad input", name)
		}
	}
	if _, err := loadBaseline(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("loadBaseline accepted a missing file")
	}
}
