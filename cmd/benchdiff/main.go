// benchdiff compares a fresh bench_baseline.sh run against the
// committed BENCH_*.json baseline and exits non-zero on regression.
//
// It replaces the sed-based key diff the CI bench-smoke job used to
// run: besides metric-set drift (missing or unexpected keys), it
// checks values against per-metric tolerances chosen by metric kind —
// latency and throughput within ±25%, allocations per op within ±10%
// (allocation counts are deterministic, so even small growth is a
// real hot-path change). Improvements never fail. Count-style metrics
// with no better/worse direction (hedge counts) are presence-only.
//
// Usage:
//
//	benchdiff -baseline BENCH_7.json -fresh /tmp/fresh.json [flags]
//
// Flags:
//
//	-lat-tol 0.25     tolerance for latency/throughput metrics
//	-alloc-tol 0.10   tolerance for allocs-per-op metrics
//	-scale 1.0        multiplier on both tolerances (CI runners are
//	                  noisier than the reference machine)
//	-keys-only        check metric-set drift only, ignore values
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// baselineFile is the subset of bench_baseline.sh's JSON we compare.
type baselineFile struct {
	Schema  int                `json:"schema"`
	Metrics map[string]float64 `json:"metrics"`
}

// direction of a metric: which way is worse.
type direction int

const (
	presenceOnly direction = iota // no better/worse axis; key must exist
	lowerBetter                   // latency, allocations
	higherBetter                  // throughput, speedup
)

// classify maps a metric key to its direction and which tolerance
// bucket applies (true = the tight allocation tolerance).
func classify(key string) (direction, bool) {
	k := strings.ToLower(key)
	switch {
	case strings.Contains(k, "allocs_per_op"):
		return lowerBetter, true
	case strings.HasSuffix(k, "_ms"):
		return lowerBetter, false
	case strings.Contains(k, "mbps"), strings.Contains(k, "speedup"):
		return higherBetter, false
	default:
		return presenceOnly, false
	}
}

// finding is one comparison failure.
type finding struct {
	key  string
	kind string // "missing", "unexpected", "regression"
	msg  string
}

// compare diffs fresh against base and returns every failure, sorted
// by key. latTol/allocTol are fractional tolerances already scaled.
func compare(base, fresh map[string]float64, latTol, allocTol float64, keysOnly bool) []finding {
	var out []finding
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bv := base[k]
		fv, ok := fresh[k]
		if !ok {
			out = append(out, finding{k, "missing", fmt.Sprintf("%s: present in baseline, absent in fresh run", k)})
			continue
		}
		if keysOnly {
			continue
		}
		dir, tight := classify(k)
		tol := latTol
		if tight {
			tol = allocTol
		}
		switch dir {
		case lowerBetter:
			limit := bv * (1 + tol)
			if fv > limit {
				out = append(out, finding{k, "regression",
					fmt.Sprintf("%s: %.4g worse than baseline %.4g (limit %.4g, +%.0f%% tolerance)", k, fv, bv, limit, tol*100)})
			}
		case higherBetter:
			limit := bv * (1 - tol)
			if fv < limit {
				out = append(out, finding{k, "regression",
					fmt.Sprintf("%s: %.4g worse than baseline %.4g (limit %.4g, -%.0f%% tolerance)", k, fv, bv, limit, tol*100)})
			}
		case presenceOnly:
			// Key exists; nothing more to check.
		}
	}
	extras := make([]string, 0)
	for k := range fresh {
		if _, ok := base[k]; !ok {
			extras = append(extras, k)
		}
	}
	sort.Strings(extras)
	for _, k := range extras {
		out = append(out, finding{k, "unexpected",
			fmt.Sprintf("%s: present in fresh run, absent from baseline — re-run scripts/bench_baseline.sh and commit the new baseline", k)})
	}
	return out
}

func loadBaseline(path string) (baselineFile, error) {
	var bf baselineFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(raw, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	if bf.Schema != 1 {
		return bf, fmt.Errorf("%s: unsupported baseline schema %d", path, bf.Schema)
	}
	if len(bf.Metrics) == 0 {
		return bf, fmt.Errorf("%s: no metrics", path)
	}
	return bf, nil
}

func main() {
	var (
		basePath = flag.String("baseline", "", "committed baseline JSON (required)")
		fresh    = flag.String("fresh", "", "freshly generated baseline JSON (required)")
		latTol   = flag.Float64("lat-tol", 0.25, "fractional tolerance for latency/throughput metrics")
		allocTol = flag.Float64("alloc-tol", 0.10, "fractional tolerance for allocs-per-op metrics")
		scale    = flag.Float64("scale", 1.0, "tolerance multiplier (loosen on noisy CI runners)")
		keysOnly = flag.Bool("keys-only", false, "check metric-set drift only, ignore values")
	)
	flag.Parse()
	if *basePath == "" || *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		flag.Usage()
		os.Exit(2)
	}
	bf, err := loadBaseline(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	ff, err := loadBaseline(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	findings := compare(bf.Metrics, ff.Metrics, *latTol**scale, *allocTol**scale, *keysOnly)
	if len(findings) == 0 {
		fmt.Printf("benchdiff: %d metrics within tolerance of %s\n", len(bf.Metrics), *basePath)
		return
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %s\n", f.kind, f.msg)
	}
	os.Exit(1)
}
