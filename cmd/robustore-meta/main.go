// Command robustore-meta runs the RobuSTore metadata server over TCP,
// optionally persisting its state to a JSON snapshot on shutdown and
// restoring it on start — the Ch. 4 framework's central metadata
// service as a standalone daemon.
//
// Usage:
//
//	robustore-meta -listen :7090 -snapshot /var/lib/robustore/meta.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/metadata"
)

func main() {
	var (
		listen   = flag.String("listen", ":7090", "address to listen on")
		snapshot = flag.String("snapshot", "", "snapshot path (loaded at start, saved on shutdown)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "robustore-meta: ", log.LstdFlags)

	svc := metadata.NewService()
	if *snapshot != "" {
		if err := svc.LoadFile(*snapshot); err != nil && !errors.Is(err, os.ErrNotExist) {
			logger.Fatalf("loading snapshot: %v", err)
		}
	}

	srv := metadata.NewNetworkServer(svc)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("robustore-meta listening on %s (%d segments)\n", ln.Addr(), len(svc.ListSegments()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Print("shutting down")
		if *snapshot != "" {
			if err := svc.SaveFile(*snapshot); err != nil {
				logger.Printf("saving snapshot: %v", err)
			}
		}
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		logger.Fatal(err)
	}
}
