// Command robustore-meta runs the RobuSTore metadata server over TCP
// — the Ch. 4 framework's central metadata service as a standalone
// daemon.
//
// Single-node mode (the original behavior, default) keeps state in
// memory, optionally persisting a JSON snapshot on shutdown and
// restoring it on start:
//
//	robustore-meta -listen :7090 -snapshot /var/lib/robustore/meta.json
//
// Replicated mode runs the node as one member of a consensus group:
// every write is acknowledged only after a majority of replicas have
// durably logged it, any member serves linearizable reads, and
// followers proxy writes to the leader so clients may talk to any
// node. Each member is started with the same -peers list and its own
// -node-id and -data-dir:
//
//	robustore-meta -node-id 1 -data-dir /var/lib/robustore/meta1 \
//	  -peers '1=127.0.0.1:7191/127.0.0.1:7091,2=127.0.0.1:7192/127.0.0.1:7092,3=127.0.0.1:7193/127.0.0.1:7093'
//
// Each -peers entry is id=raftAddr/clientAddr: the raft address
// carries consensus traffic between members, the client address
// serves the metadata wire protocol (what robustore -meta-server
// dials). In replicated mode the listen addresses come from this
// node's own peers entry, and durable state (log, snapshot, term)
// lives under -data-dir; -listen and -snapshot are ignored.
//
// -metrics-listen exposes the meta_* consensus series over HTTP in
// either mode.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/metadata"
	"repro/internal/metadata/replica"
	"repro/internal/obs"
)

func main() {
	var (
		listen        = flag.String("listen", ":7090", "address to listen on (single-node mode)")
		snapshot      = flag.String("snapshot", "", "snapshot path (single-node mode: loaded at start, saved on shutdown)")
		nodeID        = flag.Int("node-id", 0, "this member's id in -peers (enables replicated mode)")
		peersFlag     = flag.String("peers", "", "replicated mode group: comma-separated id=raftAddr/clientAddr")
		dataDir       = flag.String("data-dir", "", "replicated mode durable state directory (log, snapshot, term)")
		metricsListen = flag.String("metrics-listen", "", "serve /metrics on this HTTP address (\":port\" binds loopback; empty disables)")
		verbose       = flag.Bool("v", false, "log consensus role changes and replication detail")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "robustore-meta: ", log.LstdFlags)

	reg := obs.NewRegistry()
	if *metricsListen != "" {
		addr := *metricsListen
		if strings.HasPrefix(addr, ":") {
			addr = "127.0.0.1" + addr
		}
		mln, err := net.Listen("tcp", addr)
		if err != nil {
			logger.Fatalf("metrics listener: %v", err)
		}
		defer mln.Close()
		go http.Serve(mln, obs.Handler(reg))
		fmt.Printf("robustore-meta serving metrics on http://%s/metrics\n", mln.Addr())
	}

	if *peersFlag != "" || *nodeID != 0 {
		runReplicated(logger, reg, *nodeID, *peersFlag, *dataDir, *verbose)
		return
	}
	runSingle(logger, *listen, *snapshot)
}

// runSingle is the original standalone server: in-memory service,
// JSON snapshot on shutdown.
func runSingle(logger *log.Logger, listen, snapshot string) {
	svc := metadata.NewService()
	if snapshot != "" {
		if err := svc.LoadFile(snapshot); err != nil && !errors.Is(err, os.ErrNotExist) {
			logger.Fatalf("loading snapshot: %v", err)
		}
	}

	srv := metadata.NewNetworkServer(svc)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("robustore-meta listening on %s (%d segments)\n", ln.Addr(), len(svc.ListSegments()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Print("shutting down")
		if snapshot != "" {
			if err := svc.SaveFile(snapshot); err != nil {
				logger.Printf("saving snapshot: %v", err)
			}
		}
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		logger.Fatal(err)
	}
}

// runReplicated runs one member of a replicated metadata group.
func runReplicated(logger *log.Logger, reg *obs.Registry, nodeID int, peersFlag, dataDir string, verbose bool) {
	if nodeID == 0 || peersFlag == "" || dataDir == "" {
		logger.Fatal("replicated mode needs -node-id, -peers, and -data-dir")
	}
	peers, err := parsePeers(peersFlag)
	if err != nil {
		logger.Fatal(err)
	}
	cfg := replica.Config{
		ID:    nodeID,
		Peers: peers,
		Dir:   dataDir,
		Obs:   reg,
	}
	if verbose {
		cfg.Logf = logger.Printf
	}
	node, err := replica.Open(cfg)
	if err != nil {
		logger.Fatal(err)
	}
	var self replica.Peer
	for _, p := range peers {
		if p.ID == nodeID {
			self = p
		}
	}

	raftLn, err := net.Listen("tcp", self.RaftAddr)
	if err != nil {
		logger.Fatalf("raft listener: %v", err)
	}
	if err := node.Serve(raftLn); err != nil {
		logger.Fatal(err)
	}

	srv := metadata.NewNetworkServerFor(node)
	clientLn, err := net.Listen("tcp", self.ClientAddr)
	if err != nil {
		logger.Fatalf("client listener: %v", err)
	}
	fmt.Printf("robustore-meta node %d: raft on %s, clients on %s (%d-member group)\n",
		nodeID, raftLn.Addr(), clientLn.Addr(), len(peers))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		st := node.Status()
		logger.Printf("shutting down (term %d, commit %d, applied %d)", st.Term, st.CommitIndex, st.Applied)
		srv.Close()
		node.Close()
	}()
	if err := srv.Serve(clientLn); err != nil {
		logger.Fatal(err)
	}
}

// parsePeers parses "id=raftAddr/clientAddr,..." group membership.
func parsePeers(s string) ([]replica.Peer, error) {
	var peers []replica.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idStr, addrs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=raftAddr/clientAddr", part)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil {
			return nil, fmt.Errorf("peer %q: bad id: %w", part, err)
		}
		raftAddr, clientAddr, ok := strings.Cut(addrs, "/")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=raftAddr/clientAddr", part)
		}
		peers = append(peers, replica.Peer{
			ID:         id,
			RaftAddr:   strings.TrimSpace(raftAddr),
			ClientAddr: strings.TrimSpace(clientAddr),
		})
	}
	if len(peers) == 0 {
		return nil, errors.New("empty -peers list")
	}
	return peers, nil
}
