// Command ltbench benchmarks the erasure-coding layer: the improved LT
// codes and the Reed-Solomon baseline. It regenerates the coding
// results of the paper (Table 5-1, Figs 4-1, 5-1, 5-2, 5-3) and offers
// a raw mode for one-off throughput measurements.
//
// Usage:
//
//	ltbench -exp table5-1|fig4-1|fig5-1|fig5-2|fig5-3 [-trials N]
//	ltbench -raw -k 1024 -n 3072 -c 1 -delta 0.1 -block 16384
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/ltcode"
	"repro/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "", "coding experiment id: table5-1, fig4-1, fig5-1, fig5-2, fig5-3, ext-codes")
		trials  = flag.Int("trials", 0, "trials per point")
		seed    = flag.Int64("seed", 1, "RNG seed")
		raw     = flag.Bool("raw", false, "raw LT throughput measurement mode")
		k       = flag.Int("k", 1024, "raw: original blocks")
		n       = flag.Int("n", 3072, "raw: coded blocks")
		c       = flag.Float64("c", 1.0, "raw: soliton parameter C")
		delta   = flag.Float64("delta", 0.1, "raw: soliton parameter δ")
		block   = flag.Int("block", 16<<10, "raw: block size in bytes")
		metrics = flag.String("metrics", "", "write an observability JSON dump to this file (\"-\" for stdout)")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
	}
	dump := func() {
		if *metrics == "" {
			return
		}
		if err := writeMetricsDump(*metrics, reg); err != nil {
			fmt.Fprintf(os.Stderr, "ltbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *raw {
		if err := rawBench(*k, *n, *c, *delta, *block, *seed, reg); err != nil {
			fmt.Fprintf(os.Stderr, "ltbench: %v\n", err)
			os.Exit(1)
		}
		dump()
		return
	}
	switch *exp {
	case "table5-1", "fig4-1", "fig5-1", "fig5-2", "fig5-3", "ext-codes":
	case "":
		fmt.Fprintln(os.Stderr, "ltbench: -exp or -raw required")
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "ltbench: %q is not a coding experiment\n", *exp)
		os.Exit(2)
	}
	opts := experiments.DefaultOptions()
	if *trials > 0 {
		opts.Trials = *trials
	}
	opts.Seed = *seed
	start := time.Now()
	datasets, err := experiments.Run(*exp, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ltbench: %v\n", err)
		os.Exit(1)
	}
	reg.Gauge("ltbench_" + *exp + "_seconds").Set(time.Since(start).Seconds())
	for i := range datasets {
		datasets[i].Format(os.Stdout)
	}
	dump()
}

// writeMetricsDump writes the registry's JSON snapshot to path ("-"
// for stdout).
func writeMetricsDump(path string, reg *obs.Registry) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func rawBench(k, n int, c, delta float64, block int, seed int64, reg *obs.Registry) error {
	p := ltcode.Params{K: k, C: c, Delta: delta}
	rng := rand.New(rand.NewSource(seed))
	t0 := time.Now()
	g, err := ltcode.BuildGraph(p, n, rng, ltcode.DefaultGraphOptions())
	if err != nil {
		return err
	}
	buildTime := time.Since(t0)
	orig := make([][]byte, k)
	for i := range orig {
		orig[i] = make([]byte, block)
		rng.Read(orig[i])
	}
	t0 = time.Now()
	coded, err := g.Encode(orig)
	if err != nil {
		return err
	}
	encTime := time.Since(t0)
	order := rng.Perm(n)
	t0 = time.Now()
	dec := ltcode.NewDecoder(g)
	for _, idx := range order {
		if _, err := dec.AddData(idx, coded[idx]); err != nil {
			return err
		}
		if dec.Complete() {
			break
		}
	}
	decTime := time.Since(t0)
	if !dec.Complete() {
		return fmt.Errorf("decode incomplete after all %d blocks", n)
	}
	data := float64(k * block)
	encMBps := data / encTime.Seconds() / 1e6 * float64(n) / float64(k)
	decMBps := data / decTime.Seconds() / 1e6
	reg.Gauge("ltbench_graph_build_seconds").Set(buildTime.Seconds())
	reg.Gauge("ltbench_encode_mbps").Set(encMBps)
	reg.Gauge("ltbench_decode_mbps").Set(decMBps)
	reg.Gauge("ltbench_reception_overhead").Set(dec.ReceptionOverhead())
	reg.Counter("ltbench_xor_ops_total").Add(int64(dec.XorOps()))
	fmt.Printf("K=%d N=%d C=%g δ=%g block=%dB\n", k, n, c, delta, block)
	fmt.Printf("graph build:   %v (avg coded degree %.2f)\n", buildTime.Round(time.Microsecond), g.AvgCodedDegree())
	fmt.Printf("encode:        %.1f MBps (%v)\n", encMBps, encTime.Round(time.Microsecond))
	fmt.Printf("decode:        %.1f MBps (%v)\n", decMBps, decTime.Round(time.Microsecond))
	fmt.Printf("reception ovh: %.3f (%d of K=%d needed)\n", dec.ReceptionOverhead(), dec.Received(), k)
	fmt.Printf("xor ops:       %d (lazy; %d blocks used)\n", dec.XorOps(), dec.UsedBlocks())
	return nil
}
