package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randShards(t testing.TB, c *Code, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, c.N())
	for i := 0; i < c.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := c.Encode(shards); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return shards
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		k, m int
		ok   bool
	}{
		{1, 0, true}, {1, 255, true}, {4, 4, true}, {0, 1, false},
		{-1, 2, false}, {3, -1, false}, {200, 100, false}, {128, 128, true},
	}
	for _, tc := range cases {
		_, err := New(tc.k, tc.m)
		if (err == nil) != tc.ok {
			t.Errorf("New(%d,%d) err=%v, want ok=%v", tc.k, tc.m, err, tc.ok)
		}
	}
}

func TestEncodeVerify(t *testing.T) {
	c, _ := New(5, 3)
	shards := randShards(t, c, 1024, 1)
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v; want true, nil", ok, err)
	}
	// Corrupt one parity byte.
	shards[6][10] ^= 1
	ok, err = c.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify after corruption = %v, %v; want false, nil", ok, err)
	}
}

func TestReconstructAnyK(t *testing.T) {
	// The MDS property: every K-subset of shards reconstructs.
	c, _ := New(4, 4)
	shards := randShards(t, c, 64, 2)
	orig := make([][]byte, len(shards))
	for i, s := range shards {
		orig[i] = append([]byte(nil), s...)
	}
	// Enumerate all subsets of size exactly K = 4 out of 8.
	n := c.N()
	var subsets [][]int
	var build func(start int, cur []int)
	build = func(start int, cur []int) {
		if len(cur) == c.K() {
			subsets = append(subsets, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			build(i+1, append(cur, i))
		}
	}
	build(0, nil)
	if len(subsets) != 70 {
		t.Fatalf("expected C(8,4)=70 subsets, got %d", len(subsets))
	}
	for _, keep := range subsets {
		work := make([][]byte, n)
		for _, i := range keep {
			work[i] = append([]byte(nil), orig[i]...)
		}
		if err := c.Reconstruct(work); err != nil {
			t.Fatalf("Reconstruct with %v: %v", keep, err)
		}
		for i := range work {
			if !bytes.Equal(work[i], orig[i]) {
				t.Fatalf("subset %v: shard %d differs after reconstruct", keep, i)
			}
		}
	}
}

func TestReconstructTooFew(t *testing.T) {
	c, _ := New(4, 2)
	shards := randShards(t, c, 32, 3)
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); err != ErrTooFew {
		t.Fatalf("Reconstruct with 3/4 present = %v, want ErrTooFew", err)
	}
}

func TestReconstructNoMissingIsNoop(t *testing.T) {
	c, _ := New(3, 2)
	shards := randShards(t, c, 16, 4)
	cp := make([][]byte, len(shards))
	for i, s := range shards {
		cp[i] = append([]byte(nil), s...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], cp[i]) {
			t.Fatal("no-op reconstruct modified shards")
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	c, _ := New(3, 2)
	if err := c.Encode(make([][]byte, 4)); err != ErrShardCount {
		t.Fatalf("wrong shard count: %v", err)
	}
	shards := [][]byte{make([]byte, 4), nil, make([]byte, 4), nil, nil}
	if err := c.Encode(shards); err != ErrShardSize {
		t.Fatalf("nil data shard: %v", err)
	}
	shards = [][]byte{make([]byte, 4), make([]byte, 5), make([]byte, 4), nil, nil}
	if err := c.Encode(shards); err != ErrShardSize {
		t.Fatalf("mismatched shard sizes: %v", err)
	}
}

func TestZeroParity(t *testing.T) {
	// m=0 is a degenerate but legal code: encode is a no-op.
	c, _ := New(3, 0)
	shards := [][]byte{{1}, {2}, {3}}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Verify(shards); err != nil || !ok {
		t.Fatalf("Verify m=0: %v %v", ok, err)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	c, _ := New(7, 3)
	for _, size := range []int{1, 6, 7, 8, 100, 701} {
		data := make([]byte, size)
		rand.New(rand.NewSource(int64(size))).Read(data)
		shards := c.Split(data)
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		got, err := c.Join(shards, size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Split/Join round trip failed for size %d", size)
		}
	}
}

func TestSplitEmpty(t *testing.T) {
	c, _ := New(2, 1)
	shards := c.Split(nil)
	if len(shards) != 3 || shards[0] == nil || shards[1] == nil {
		t.Fatal("Split(nil) did not produce data shards")
	}
}

func TestJoinErrors(t *testing.T) {
	c, _ := New(3, 1)
	if _, err := c.Join([][]byte{{1}}, 1); err != ErrShardCount {
		t.Fatalf("short join: %v", err)
	}
	if _, err := c.Join([][]byte{{1}, nil, {3}, {0}}, 3); err != ErrTooFew {
		t.Fatalf("nil shard join: %v", err)
	}
	if _, err := c.Join([][]byte{{1}, {2}, {3}, {0}}, 99); err == nil {
		t.Fatal("oversized join did not error")
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	id := Identity(5)
	inv, err := id.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inv.Data, id.Data) {
		t.Fatal("inverse of identity is not identity")
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 1)
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("singular invert = %v, want ErrSingular", err)
	}
}

func TestMatrixInvertRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		m := NewMatrix(n, n)
		rng.Read(m.Data)
		inv, err := m.Invert()
		if err != nil {
			continue // singular random matrices happen; skip
		}
		prod := m.Mul(inv)
		if !bytes.Equal(prod.Data, Identity(n).Data) {
			t.Fatalf("M * M^-1 != I for n=%d", n)
		}
	}
}

func TestCauchySubmatricesInvertible(t *testing.T) {
	// Spot-check the MDS-critical property on the generator: random
	// K-row submatrices must be invertible.
	c, _ := New(8, 8)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		perm := rng.Perm(c.N())[:c.K()]
		sub := c.gen.SubMatrix(perm)
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("submatrix rows %v singular", perm)
		}
	}
}

func TestQuickReconstructRandomErasures(t *testing.T) {
	type params struct {
		Seed int64
	}
	f := func(p params) bool {
		rng := rand.New(rand.NewSource(p.Seed))
		k := 1 + rng.Intn(10)
		m := rng.Intn(10)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		size := 1 + rng.Intn(200)
		shards := make([][]byte, c.N())
		for i := 0; i < k; i++ {
			shards[i] = make([]byte, size)
			rng.Read(shards[i])
		}
		if err := c.Encode(shards); err != nil {
			return false
		}
		orig := make([][]byte, len(shards))
		for i, s := range shards {
			orig[i] = append([]byte(nil), s...)
		}
		// Erase up to m random shards.
		erase := rng.Perm(c.N())[:rng.Intn(m+1)]
		for _, i := range erase {
			shards[i] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func benchCoding(b *testing.B, k int, decode bool) {
	// Mirrors Table 5-1: 16 MB of data, N = 2K coded blocks.
	const total = 16 << 20
	c, err := New(k, k)
	if err != nil {
		b.Fatal(err)
	}
	size := total / k
	shards := make([][]byte, c.N())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < k; i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if decode {
			b.StopTimer()
			work := make([][]byte, len(shards))
			perm := rng.Perm(c.N())[:k]
			for _, j := range perm {
				work[j] = shards[j]
			}
			b.StartTimer()
			if err := c.Reconstruct(work); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := c.Encode(shards); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEncodeK4(b *testing.B)  { benchCoding(b, 4, false) }
func BenchmarkEncodeK8(b *testing.B)  { benchCoding(b, 8, false) }
func BenchmarkEncodeK16(b *testing.B) { benchCoding(b, 16, false) }
func BenchmarkEncodeK32(b *testing.B) { benchCoding(b, 32, false) }
func BenchmarkDecodeK4(b *testing.B)  { benchCoding(b, 4, true) }
func BenchmarkDecodeK8(b *testing.B)  { benchCoding(b, 8, true) }
func BenchmarkDecodeK16(b *testing.B) { benchCoding(b, 16, true) }
func BenchmarkDecodeK32(b *testing.B) { benchCoding(b, 32, true) }
