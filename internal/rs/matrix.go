package rs

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// Matrix is a dense byte matrix over GF(2^8), stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("rs: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic("rs: matrix dimension mismatch in Mul")
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		orow := out.Row(r)
		mrow := m.Row(r)
		for k := 0; k < m.Cols; k++ {
			c := mrow[k]
			if c == 0 {
				continue
			}
			gf256.AddMulSlice(c, other.Row(k), orow)
		}
	}
	return out
}

// SubMatrix returns a new matrix from the given rows (copied).
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// ErrSingular is returned when a matrix inversion encounters a
// non-invertible matrix (should not happen for MDS code submatrices;
// its presence indicates corrupted shard indices).
var ErrSingular = errors.New("rs: matrix is singular")

// Invert returns the inverse of a square matrix via Gauss-Jordan
// elimination over GF(2^8).
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("rs: cannot invert non-square matrix")
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale pivot row to make the pivot 1.
		p := work.At(col, col)
		if p != 1 {
			invP := gf256.Inv(p)
			gf256.MulSlice(invP, work.Row(col), work.Row(col))
			gf256.MulSlice(invP, inv.Row(col), inv.Row(col))
		}
		// Eliminate column in all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			gf256.AddMulSlice(f, work.Row(col), work.Row(r))
			gf256.AddMulSlice(f, inv.Row(col), inv.Row(r))
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// cauchy builds an mRows x nCols Cauchy matrix with entries
// 1/(x_i + y_j), x_i = i + nCols, y_j = j. Every square submatrix of a
// Cauchy matrix is invertible, which makes identity-stacked-on-Cauchy
// an MDS generator matrix.
func cauchy(mRows, nCols int) *Matrix {
	if mRows+nCols > 256 {
		panic("rs: cauchy matrix requires m+n <= 256")
	}
	out := NewMatrix(mRows, nCols)
	for r := 0; r < mRows; r++ {
		x := byte(r + nCols)
		for c := 0; c < nCols; c++ {
			y := byte(c)
			out.Set(r, c, gf256.Inv(x^y))
		}
	}
	return out
}
