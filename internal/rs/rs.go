// Package rs implements a systematic Reed-Solomon erasure code over
// GF(2^8) — the "optimal erasure code" baseline of the RobuSTore paper
// (§2.2.2, Table 5-1).
//
// A Code with K data shards and M parity shards produces N = K+M total
// shards such that *any* K of them reconstruct the original data (the
// MDS property), at quadratic-in-K coding cost. The generator matrix is
// the K x K identity stacked on an M x K Cauchy matrix, so every K-row
// submatrix is invertible.
//
// The paper uses Reed-Solomon as the comparison point whose decoding
// bandwidth collapses as K grows (Table 5-1), motivating LT codes; the
// benchmarks in this package regenerate that table.
package rs

import (
	"errors"
	"fmt"
)

// Code is a Reed-Solomon erasure code with fixed K and M. It is
// immutable after construction and safe for concurrent use.
type Code struct {
	k, m   int
	gen    *Matrix // (k+m) x k generator; top k rows are identity
	parity *Matrix // bottom m rows (alias into gen)
}

// New constructs a code with k data shards and m parity shards.
// Requires k >= 1, m >= 0, k+m <= 256.
func New(k, m int) (*Code, error) {
	if k < 1 {
		return nil, fmt.Errorf("rs: k must be >= 1, got %d", k)
	}
	if m < 0 {
		return nil, fmt.Errorf("rs: m must be >= 0, got %d", m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("rs: k+m must be <= 256, got %d", k+m)
	}
	gen := NewMatrix(k+m, k)
	for i := 0; i < k; i++ {
		gen.Set(i, i, 1)
	}
	if m > 0 {
		c := cauchy(m, k)
		copy(gen.Data[k*k:], c.Data)
	}
	return &Code{k: k, m: m, gen: gen}, nil
}

// K returns the number of data shards.
func (c *Code) K() int { return c.k }

// M returns the number of parity shards.
func (c *Code) M() int { return c.m }

// N returns the total number of shards (K + M).
func (c *Code) N() int { return c.k + c.m }

// Errors returned by the coding operations.
var (
	ErrShardCount = errors.New("rs: wrong number of shards")
	ErrShardSize  = errors.New("rs: shards have mismatched or zero sizes")
	ErrTooFew     = errors.New("rs: too few shards present to reconstruct")
)

func (c *Code) checkShards(shards [][]byte, allowNil bool) (int, error) {
	if len(shards) != c.N() {
		return 0, ErrShardCount
	}
	size := -1
	for _, s := range shards {
		if s == nil {
			if !allowNil {
				return 0, ErrShardSize
			}
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, ErrShardSize
		}
	}
	if size <= 0 {
		return 0, ErrShardSize
	}
	return size, nil
}

// Encode computes the M parity shards from the K data shards, in
// place: shards[0:K] are the data (all non-nil, equal length), and
// shards[K:K+M] are overwritten with parity (allocated if nil).
func (c *Code) Encode(shards [][]byte) error {
	if len(shards) != c.N() {
		return ErrShardCount
	}
	size := -1
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			return ErrShardSize
		}
		if size < 0 {
			size = len(shards[i])
		} else if len(shards[i]) != size {
			return ErrShardSize
		}
	}
	if size <= 0 {
		return ErrShardSize
	}
	for i := c.k; i < c.N(); i++ {
		if len(shards[i]) != size {
			shards[i] = make([]byte, size)
		} else {
			clearSlice(shards[i])
		}
	}
	c.mulRows(c.gen, c.k, c.N(), shards[:c.k], shards[c.k:])
	return nil
}

// mulRows computes out[r-from] = sum_j gen[r][j] * in[j] for rows
// [from, to) of gen.
func (c *Code) mulRows(gen *Matrix, from, to int, in, out [][]byte) {
	for r := from; r < to; r++ {
		row := gen.Row(r)
		dst := out[r-from]
		for j, coeff := range row {
			if coeff == 0 {
				continue
			}
			addMul(coeff, in[j], dst)
		}
	}
}

// Reconstruct fills in missing shards (nil entries) from the present
// ones. At least K shards must be non-nil. After a successful return,
// every entry of shards is populated.
func (c *Code) Reconstruct(shards [][]byte) error {
	size, err := c.checkShards(shards, true)
	if err != nil {
		return err
	}
	present := make([]int, 0, c.N())
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		}
	}
	if len(present) < c.k {
		return ErrTooFew
	}
	if len(present) == c.N() {
		return nil
	}
	// Decode data shards from the first K present shards.
	rows := present[:c.k]
	sub := c.gen.SubMatrix(rows)
	inv, err := sub.Invert()
	if err != nil {
		return err
	}
	in := make([][]byte, c.k)
	for i, r := range rows {
		in[i] = shards[r]
	}
	// Rebuild missing data shards.
	for i := 0; i < c.k; i++ {
		if shards[i] != nil {
			continue
		}
		dst := make([]byte, size)
		for j, coeff := range inv.Row(i) {
			if coeff == 0 {
				continue
			}
			addMul(coeff, in[j], dst)
		}
		shards[i] = dst
	}
	// Rebuild missing parity shards from the (now complete) data.
	for i := c.k; i < c.N(); i++ {
		if shards[i] != nil {
			continue
		}
		dst := make([]byte, size)
		for j, coeff := range c.gen.Row(i) {
			if coeff == 0 {
				continue
			}
			addMul(coeff, shards[j], dst)
		}
		shards[i] = dst
	}
	return nil
}

// Verify checks that the parity shards are consistent with the data
// shards. All shards must be present.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for r := c.k; r < c.N(); r++ {
		clearSlice(buf)
		for j, coeff := range c.gen.Row(r) {
			if coeff == 0 {
				continue
			}
			addMul(coeff, shards[j], buf)
		}
		if !equalBytes(buf, shards[r]) {
			return false, nil
		}
	}
	return true, nil
}

// Split partitions data into K equal-size data shards (padding the
// last with zeros) followed by M nil parity slots, ready for Encode.
// The shard size is ceil(len(data)/K).
func (c *Code) Split(data []byte) [][]byte {
	if len(data) == 0 {
		data = []byte{0}
	}
	shardSize := (len(data) + c.k - 1) / c.k
	shards := make([][]byte, c.N())
	for i := 0; i < c.k; i++ {
		shards[i] = make([]byte, shardSize)
		start := i * shardSize
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	return shards
}

// Join concatenates the K data shards and truncates to size bytes —
// the inverse of Split followed by Encode/Reconstruct.
func (c *Code) Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, ErrShardCount
	}
	out := make([]byte, 0, size)
	for i := 0; i < c.k && len(out) < size; i++ {
		if shards[i] == nil {
			return nil, ErrTooFew
		}
		need := size - len(out)
		if need > len(shards[i]) {
			need = len(shards[i])
		}
		out = append(out, shards[i][:need]...)
	}
	if len(out) != size {
		return nil, fmt.Errorf("rs: shards too small for requested size %d", size)
	}
	return out, nil
}

func clearSlice(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
