package rs

import "repro/internal/gf256"

// addMul is the fused multiply-accumulate dst ^= coeff*src shared by
// the encode and decode paths. It is a thin indirection point so the
// package's hot loop is easy to swap in benchmarks.
func addMul(coeff byte, src, dst []byte) {
	gf256.AddMulSlice(coeff, src, dst)
}
