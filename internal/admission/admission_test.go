package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("unlimited config accepted")
	}
	if err := (Config{MaxConcurrent: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{MaxBytes: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityAdmitsUpToLimit(t *testing.T) {
	c, err := NewCapacity(Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r1, err := c.Admit(ctx, Request{Bytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Admit(ctx, Request{Bytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Third must block until a release.
	done := make(chan struct{})
	go func() {
		r3, err := c.Admit(ctx, Request{Bytes: 1})
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		r3()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("third admit did not block")
	case <-time.After(50 * time.Millisecond):
	}
	r1()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("third admit never woke")
	}
	r2()
}

func TestByteBudget(t *testing.T) {
	c, _ := NewCapacity(Config{MaxBytes: 100})
	ctx := context.Background()
	r1, err := c.Admit(ctx, Request{Bytes: 80})
	if err != nil {
		t.Fatal(err)
	}
	// 80+30 > 100: must wait.
	got := make(chan error, 1)
	go func() {
		r, err := c.Admit(ctx, Request{Bytes: 30})
		if err == nil {
			r()
		}
		got <- err
	}()
	select {
	case <-got:
		t.Fatal("over-budget admit did not block")
	case <-time.After(30 * time.Millisecond):
	}
	r1()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

func TestOverCapacityRejectedImmediately(t *testing.T) {
	c, _ := NewCapacity(Config{MaxBytes: 10})
	if _, err := c.Admit(context.Background(), Request{Bytes: 11}); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("err = %v, want ErrOverCapacity", err)
	}
}

func TestNegativeBytesRejected(t *testing.T) {
	c, _ := NewCapacity(Config{MaxConcurrent: 1})
	if _, err := c.Admit(context.Background(), Request{Bytes: -1}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestContextCancelWhileWaiting(t *testing.T) {
	c, _ := NewCapacity(Config{MaxConcurrent: 1})
	release, _ := c.Admit(context.Background(), Request{})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, Request{})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	release()
	// Capacity must still be usable after the canceled waiter left.
	r, err := c.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	r()
}

func TestFIFOOrdering(t *testing.T) {
	c, _ := NewCapacity(Config{MaxConcurrent: 1})
	release, _ := c.Admit(context.Background(), Request{})
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			// Stagger arrival to fix the queue order.
			time.Sleep(time.Duration(i*20) * time.Millisecond)
			r, err := c.Admit(context.Background(), Request{Priority: -i})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}()
	}
	time.Sleep(150 * time.Millisecond)
	release()
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("capacity controller violated FIFO: %v", order)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	c, _ := NewPriority(Config{MaxConcurrent: 1})
	release, _ := c.Admit(context.Background(), Request{})
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	prios := []int{1, 5, 3, 9, 2}
	for i, p := range prios {
		wg.Add(1)
		i, p := i, p
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i*20) * time.Millisecond)
			r, err := c.Admit(context.Background(), Request{Priority: p})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond) // hold so others stay queued
			r()
		}()
	}
	time.Sleep(150 * time.Millisecond)
	release()
	wg.Wait()
	want := []int{9, 5, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}

func TestDoubleReleaseSafe(t *testing.T) {
	c, _ := NewCapacity(Config{MaxConcurrent: 1})
	r, _ := c.Admit(context.Background(), Request{})
	r()
	r() // must be a no-op
	// If the double release corrupted counters, this would hang or
	// admit two at once.
	r2, err := c.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan struct{})
	go func() {
		r3, _ := c.Admit(context.Background(), Request{})
		if r3 != nil {
			r3()
		}
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("second concurrent admit not blocked; counters corrupted")
	case <-time.After(30 * time.Millisecond):
	}
	r2()
	<-blocked
}

func TestCloseWakesWaiters(t *testing.T) {
	cc, _ := NewCapacity(Config{MaxConcurrent: 1})
	c := cc.(*controller)
	release, _ := c.Admit(context.Background(), Request{})
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), Request{})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter got %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake the waiter")
	}
	release()
	if _, err := c.Admit(context.Background(), Request{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("admit after close = %v", err)
	}
}

func TestStats(t *testing.T) {
	cc, _ := NewCapacity(Config{MaxConcurrent: 1})
	c := cc.(*controller)
	r, _ := c.Admit(context.Background(), Request{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c.Admit(ctx, Request{}) // will be rejected by timeout
	r()
	st := c.Stats()
	if st.Admitted != 1 || st.Rejected != 1 || st.Waited != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentStress(t *testing.T) {
	c, _ := NewCapacity(Config{MaxConcurrent: 4, MaxBytes: 1000})
	var active, maxActive int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r, err := c.Admit(context.Background(), Request{Bytes: int64(g%5) * 50})
				if err != nil {
					t.Error(err)
					return
				}
				n := atomic.AddInt64(&active, 1)
				for {
					m := atomic.LoadInt64(&maxActive)
					if n <= m || atomic.CompareAndSwapInt64(&maxActive, m, n) {
						break
					}
				}
				atomic.AddInt64(&active, -1)
				r()
			}
		}(g)
	}
	wg.Wait()
	if maxActive > 4 {
		t.Fatalf("concurrency limit violated: %d active", maxActive)
	}
}
