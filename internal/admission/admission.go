// Package admission implements the storage-server admission
// controllers of §5.4: capacity-based control (first-come
// first-admitted until capacity is exhausted) and priority-based
// control (higher-priority requests admitted first when capacity
// frees). Controllers guard a server's concurrent request slots and
// in-flight bytes so that "exorbitant sharing" cannot collapse disk
// throughput.
package admission

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
)

// Request describes one access asking for admission.
type Request struct {
	// Bytes is the request's transfer size (its share of the byte
	// budget while admitted).
	Bytes int64
	// Priority orders waiters in priority-based controllers; larger is
	// more important. Ignored by capacity-based control.
	Priority int
}

// Controller grants access to a storage server. Admit blocks until
// capacity is available (or the context ends) and returns a release
// function that must be called exactly once when the access finishes.
type Controller interface {
	Admit(ctx context.Context, req Request) (release func(), err error)
}

// Errors.
var (
	// ErrOverCapacity reports a request that can never be admitted
	// because it alone exceeds the configured budget.
	ErrOverCapacity = errors.New("admission: request exceeds controller capacity")
	// ErrClosed reports use of a closed controller.
	ErrClosed = errors.New("admission: controller closed")
)

// Stats are cumulative controller counters.
type Stats struct {
	Admitted int64
	Rejected int64 // context cancellations while waiting
	Waited   int64 // admissions that had to queue first
}

// Config bounds what a controller admits concurrently.
type Config struct {
	// MaxConcurrent is the number of simultaneously admitted requests
	// (<=0 means unlimited).
	MaxConcurrent int
	// MaxBytes is the total in-flight bytes budget (<=0 unlimited).
	MaxBytes int64
}

// Validate reports whether the configuration admits anything.
func (c Config) Validate() error {
	if c.MaxConcurrent <= 0 && c.MaxBytes <= 0 {
		return fmt.Errorf("admission: config admits unlimited load; use no controller instead")
	}
	return nil
}

// waiter is one queued admission request.
type waiter struct {
	req      Request
	ready    chan struct{}
	priority int
	seq      int64 // FIFO tie-break
	index    int   // heap position
	granted  bool
}

// controller is the shared implementation; the ordering policy is the
// only difference between the two §5.4 classes.
type controller struct {
	cfg        Config
	byPriority bool

	mu        sync.Mutex
	inflight  int
	bytes     int64
	seq       int64
	queue     waiterQueue
	stats     Stats
	closed    bool
	closeOnce sync.Once
	closedCh  chan struct{}
}

// NewCapacity returns a capacity-based (first-come-first-admitted)
// controller.
func NewCapacity(cfg Config) (Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &controller{cfg: cfg, closedCh: make(chan struct{})}, nil
}

// NewPriority returns a priority-based controller: when capacity
// frees, the highest-priority waiter is admitted (FIFO among equal
// priorities).
func NewPriority(cfg Config) (Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &controller{cfg: cfg, byPriority: true, closedCh: make(chan struct{})}, nil
}

func (c *controller) fits(req Request) bool {
	if c.cfg.MaxConcurrent > 0 && c.inflight >= c.cfg.MaxConcurrent {
		return false
	}
	if c.cfg.MaxBytes > 0 && c.bytes+req.Bytes > c.cfg.MaxBytes {
		return false
	}
	return true
}

// Admit implements Controller.
func (c *controller) Admit(ctx context.Context, req Request) (func(), error) {
	if req.Bytes < 0 {
		return nil, fmt.Errorf("admission: negative request size")
	}
	if c.cfg.MaxBytes > 0 && req.Bytes > c.cfg.MaxBytes {
		return nil, ErrOverCapacity
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	// Fast path: capacity available and nobody queued ahead.
	if len(c.queue.ws) == 0 && c.fits(req) {
		c.admitLocked(req)
		c.mu.Unlock()
		return c.releaseFunc(req), nil
	}
	// Queue and wait. Capacity-based control ignores priorities
	// (pure FIFO); priority-based control orders by them.
	prio := req.Priority
	if !c.byPriority {
		prio = 0
	}
	w := &waiter{req: req, ready: make(chan struct{}), priority: prio, seq: c.seq}
	c.seq++
	c.queue.push(w)
	c.stats.Waited++
	c.mu.Unlock()

	select {
	case <-w.ready:
		return c.releaseFunc(req), nil
	case <-ctx.Done():
		return nil, c.abandon(w, req, ctx.Err())
	case <-c.closedCh:
		return nil, c.abandon(w, req, ErrClosed)
	}
}

// abandon withdraws a queued waiter, returning capacity if the grant
// raced with the abandonment.
func (c *controller) abandon(w *waiter, req Request, cause error) error {
	c.mu.Lock()
	if w.granted {
		c.mu.Unlock()
		c.releaseFunc(req)()
		return cause
	}
	c.queue.remove(w)
	c.stats.Rejected++
	c.mu.Unlock()
	return cause
}

// admitLocked records an admission (mu held).
func (c *controller) admitLocked(req Request) {
	c.inflight++
	c.bytes += req.Bytes
	c.stats.Admitted++
}

// releaseFunc returns the once-only release closure for req.
func (c *controller) releaseFunc(req Request) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.inflight--
			c.bytes -= req.Bytes
			c.wakeLocked()
			c.mu.Unlock()
		})
	}
}

// wakeLocked admits as many queued waiters as now fit (mu held).
func (c *controller) wakeLocked() {
	for len(c.queue.ws) > 0 {
		w := c.queue.ws[0]
		if !c.fits(w.req) {
			return
		}
		c.queue.remove(w)
		c.admitLocked(w.req)
		w.granted = true // a racing cancel must return the capacity
		close(w.ready)
	}
}

// Stats returns a snapshot of the counters.
func (c *controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close rejects all waiters and future admissions.
func (c *controller) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.closeOnce.Do(func() { close(c.closedCh) })
}

// waiterQueue is a priority heap over (priority desc, seq asc). With
// all priorities forced to zero (capacity mode) the order degenerates
// to pure FIFO.
type waiterQueue struct {
	ws []*waiter
}

func (q *waiterQueue) push(w *waiter) {
	heap.Push((*waiterHeap)(q), w)
}

func (q *waiterQueue) remove(w *waiter) {
	if w.index < len(q.ws) && q.ws[w.index] == w {
		heap.Remove((*waiterHeap)(q), w.index)
	}
}

// waiterHeap orders by priority desc, then FIFO.
type waiterHeap waiterQueue

func (h *waiterHeap) Len() int { return len(h.ws) }
func (h *waiterHeap) Less(i, j int) bool {
	if h.ws[i].priority != h.ws[j].priority {
		return h.ws[i].priority > h.ws[j].priority
	}
	return h.ws[i].seq < h.ws[j].seq
}
func (h *waiterHeap) Swap(i, j int) {
	h.ws[i], h.ws[j] = h.ws[j], h.ws[i]
	h.ws[i].index = i
	h.ws[j].index = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(h.ws)
	h.ws = append(h.ws, w)
}
func (h *waiterHeap) Pop() any {
	old := h.ws
	n := len(old)
	w := old[n-1]
	h.ws = old[:n-1]
	return w
}
