// Package raptor implements Raptor codes (§2.2.3, Fig 2-4): an LT
// code applied to pre-coded intermediate symbols, giving linear-time
// encoding and decoding with constant average degree — the "erasure
// codes with higher performance" direction the dissertation's §7.3
// names for future work.
//
// Construction (systematic pre-code):
//
//	intermediates = [K input symbols | P LDPC check symbols],
//	check_j = XOR of a sparse random group of inputs.
//
// The inner LT code draws from a *capped* degree distribution (the
// distribution published in Shokrollahi's Raptor paper, max degree
// 66), so encoding cost per coded block is O(1) in K — unlike plain
// LT whose average degree grows as ln K. The pre-code repairs the
// constant fraction of inputs the weakened LT layer leaves
// unrecovered: each check contributes a "virtual" zero-valued coded
// block over {check_j} ∪ group_j to the same peeling decoder.
package raptor

import (
	"fmt"
	"math/rand"

	"repro/internal/gf256"
	"repro/internal/ltcode"
)

// omega is the capped LT output-degree distribution from Shokrollahi,
// "Raptor Codes" (Table 1), with the degree-1 mass raised from 0.008
// to 0.035: the published table targets inactivation decoding, while
// this implementation decodes by pure belief propagation (peeling),
// which needs a steady supply of degree-1 seeds. The average degree
// stays O(1) in K (~6), which is the property that matters here.
var omega = []struct {
	d int
	p float64
}{
	{1, 0.035000}, {2, 0.466539}, {3, 0.166220}, {4, 0.072646},
	{5, 0.082558}, {8, 0.056058}, {9, 0.037229}, {19, 0.055590},
	{65, 0.025023}, {66, 0.003135},
}

// Params configure a Raptor code.
type Params struct {
	// K is the number of input blocks.
	K int
	// PrecodeRate is P/K, the fraction of LDPC check symbols added by
	// the pre-code (default 0.05).
	PrecodeRate float64
	// PrecodeDegree is how many checks each input participates in
	// (default 3).
	PrecodeDegree int
	// Seed derives the (deterministic) code structure.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.PrecodeRate == 0 {
		p.PrecodeRate = 0.05
	}
	if p.PrecodeDegree == 0 {
		p.PrecodeDegree = 3
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.K < 1 {
		return fmt.Errorf("raptor: K must be >= 1")
	}
	if p.PrecodeRate < 0 || p.PrecodeRate > 1 {
		return fmt.Errorf("raptor: PrecodeRate must be in [0,1]")
	}
	if p.PrecodeDegree < 1 {
		return fmt.Errorf("raptor: PrecodeDegree must be >= 1")
	}
	return nil
}

// Code is a constructed Raptor code producing N coded blocks. The
// structure (pre-code groups and LT graph) is deterministic given
// (Params, N), so writer and readers agree.
type Code struct {
	k, p, n int
	groups  [][]int32     // pre-code: groups[j] lists the inputs of check j
	graph   *ltcode.Graph // LT layer over L = k+p intermediates; coded 0..n-1 real, n..n+p-1 virtual
}

// L returns the intermediate symbol count (K + P).
func (c *Code) L() int { return c.k + c.p }

// K returns the input block count.
func (c *Code) K() int { return c.k }

// P returns the pre-code check count.
func (c *Code) P() int { return c.p }

// N returns the number of real coded blocks.
func (c *Code) N() int { return c.n }

// New constructs a Raptor code emitting n coded blocks. Like the
// improved LT codes, the construction is checked: structures whose
// full block set (plus pre-code relations) cannot recover every input
// are regenerated, so a code built with n >= ~1.1K is guaranteed
// decodable from all its blocks.
func New(params Params, n int) (*Code, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults()
	if n < 1 {
		return nil, fmt.Errorf("raptor: N must be >= 1")
	}
	const maxAttempts = 32
	for attempt := 0; attempt < maxAttempts; attempt++ {
		c := build(params, n, params.Seed+int64(attempt)*0x9e3779b9)
		if n < params.K || c.fullyDecodable() {
			return c, nil
		}
	}
	return nil, fmt.Errorf("raptor: no decodable structure in %d attempts (K=%d, N=%d)",
		maxAttempts, params.K, n)
}

// fullyDecodable checks that all N coded blocks plus the pre-code
// relations recover every input.
func (c *Code) fullyDecodable() bool {
	d := ltcode.NewSymbolicDecoder(c.graph)
	d.SetRequiredPrefix(c.k)
	for i := 0; i < c.graph.N; i++ {
		d.Add(i)
		if d.RequiredComplete() {
			return true
		}
	}
	return d.RequiredComplete()
}

// build constructs one candidate structure.
func build(params Params, n int, seed int64) *Code {
	k := params.K
	p := int(float64(k)*params.PrecodeRate + 0.5)
	if p < 4 {
		p = 4
	}
	if p > k {
		p = k
	}
	rng := rand.New(rand.NewSource(seed))

	// Pre-code: each input joins PrecodeDegree distinct random checks
	// (capped at the number of checks for tiny codes).
	deg := params.PrecodeDegree
	if deg > p {
		deg = p
	}
	groups := make([][]int32, p)
	for i := 0; i < k; i++ {
		seen := map[int]bool{}
		for d := 0; d < deg; d++ {
			j := rng.Intn(p)
			for seen[j] {
				j = rng.Intn(p)
			}
			seen[j] = true
			groups[j] = append(groups[j], int32(i))
		}
	}

	// LT layer over L intermediates with the capped distribution; the
	// final p "coded blocks" are the virtual zero-valued pre-code
	// relations {check_j} ∪ group_j.
	l := k + p
	sampler := cappedSampler(l)
	g := &ltcode.Graph{K: l, N: n + p, Neighbors: make([][]int32, n+p)}
	seenEpoch := make([]int, l)
	for i := 0; i < n; i++ {
		d := sampler(rng)
		if d > l {
			d = l
		}
		nb := make([]int32, 0, d)
		for len(nb) < d {
			cand := rng.Intn(l)
			if seenEpoch[cand] == i+1 {
				continue
			}
			seenEpoch[cand] = i + 1
			nb = append(nb, int32(cand))
		}
		g.Neighbors[i] = nb
	}
	for j := 0; j < p; j++ {
		nb := make([]int32, 0, len(groups[j])+1)
		nb = append(nb, int32(k+j))
		nb = append(nb, groups[j]...)
		g.Neighbors[n+j] = nb
	}
	return &Code{k: k, p: p, n: n, groups: groups, graph: g}
}

// cappedSampler returns a degree sampler for the capped distribution,
// truncated to at most l.
func cappedSampler(l int) func(*rand.Rand) int {
	var cdf []float64
	var degs []int
	acc := 0.0
	for _, e := range omega {
		acc += e.p
		cdf = append(cdf, acc)
		degs = append(degs, e.d)
	}
	// Normalize (the table sums to ~1.0 but guard anyway).
	for i := range cdf {
		cdf[i] /= acc
	}
	return func(rng *rand.Rand) int {
		u := rng.Float64()
		for i, c := range cdf {
			if u <= c {
				if degs[i] > l {
					return l
				}
				return degs[i]
			}
		}
		return degs[len(degs)-1]
	}
}

// intermediates computes the L intermediate blocks from the K inputs.
func (c *Code) intermediates(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("raptor: got %d blocks, K=%d", len(data), c.k)
	}
	size := len(data[0])
	for _, b := range data {
		if len(b) != size || size == 0 {
			return nil, fmt.Errorf("raptor: blocks must be equal-size and non-empty")
		}
	}
	inter := make([][]byte, c.L())
	copy(inter, data)
	for j, group := range c.groups {
		chk := make([]byte, size)
		for _, i := range group {
			gf256.XorSlice(data[i], chk)
		}
		inter[c.k+j] = chk
	}
	return inter, nil
}

// Encode produces the N coded blocks.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	inter, err := c.intermediates(data)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.n)
	for i := 0; i < c.n; i++ {
		out[i] = c.graph.EncodeBlock(i, inter)
	}
	return out, nil
}

// EncodeBlock produces coded block i from the inputs (recomputing the
// pre-code; for bulk encoding use Encode).
func (c *Code) EncodeBlock(i int, data [][]byte) ([]byte, error) {
	if i < 0 || i >= c.n {
		return nil, fmt.Errorf("raptor: coded index %d out of range", i)
	}
	inter, err := c.intermediates(data)
	if err != nil {
		return nil, err
	}
	return c.graph.EncodeBlock(i, inter), nil
}

// Decoder reconstructs the inputs from coded blocks.
type Decoder struct {
	code *Code
	dec  *ltcode.Decoder
	size int
}

// NewDecoder returns a decoder; blockSize is fixed by the first Add.
func (c *Code) NewDecoder() *Decoder {
	d := ltcode.NewDecoder(c.graph)
	d.SetRequiredPrefix(c.k)
	return &Decoder{code: c, dec: d}
}

// Add feeds coded block idx (0 <= idx < N). On the first Add the
// pre-code's virtual zero blocks are injected.
func (d *Decoder) Add(idx int, payload []byte) error {
	if idx < 0 || idx >= d.code.n {
		return fmt.Errorf("raptor: coded index %d out of range", idx)
	}
	if d.size == 0 {
		d.size = len(payload)
		if d.size == 0 {
			return fmt.Errorf("raptor: empty payload")
		}
		zero := make([]byte, d.size)
		for j := 0; j < d.code.p; j++ {
			if _, err := d.dec.AddData(d.code.n+j, zero); err != nil {
				return err
			}
		}
	}
	if len(payload) != d.size {
		return fmt.Errorf("raptor: payload size %d != %d", len(payload), d.size)
	}
	_, err := d.dec.AddData(idx, payload)
	return err
}

// Complete reports whether all K inputs are recovered.
func (d *Decoder) Complete() bool { return d.dec.RequiredComplete() }

// Received returns the count of real coded blocks consumed.
func (d *Decoder) Received() int {
	n := d.dec.Received()
	if d.size != 0 {
		n -= d.code.p // exclude the virtual pre-code blocks
	}
	return n
}

// ReceptionOverhead returns Received()/K - 1.
func (d *Decoder) ReceptionOverhead() float64 {
	return float64(d.Received())/float64(d.code.k) - 1
}

// Data returns the K decoded input blocks (errors unless Complete).
func (d *Decoder) Data() ([][]byte, error) {
	if !d.Complete() {
		return nil, fmt.Errorf("raptor: decode incomplete")
	}
	out := make([][]byte, d.code.k)
	for i := 0; i < d.code.k; i++ {
		if !d.dec.IsDecoded(i) {
			return nil, fmt.Errorf("raptor: input %d unexpectedly missing", i)
		}
	}
	all, err := d.dataPrefix()
	if err != nil {
		return nil, err
	}
	copy(out, all)
	return out, nil
}

// dataPrefix extracts the decoded originals without requiring the
// pre-code symbols to be recovered.
func (d *Decoder) dataPrefix() ([][]byte, error) {
	// ltcode.Decoder.Data requires full completion; read via the
	// graph-decoder's per-block accessor instead.
	out := make([][]byte, d.code.k)
	for i := range out {
		b, err := d.dec.DataBlock(i)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// AvgDegree returns the mean degree of the real coded blocks — the
// Raptor selling point: O(1) in K.
func (c *Code) AvgDegree() float64 {
	var sum int
	for i := 0; i < c.n; i++ {
		sum += len(c.graph.Neighbors[i])
	}
	return float64(sum) / float64(c.n)
}
