package raptor

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/ltcode"
)

func mustNew(t *testing.T, params Params, n int) *Code {
	t.Helper()
	c, err := New(params, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randBlocks(rng *rand.Rand, k, size int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{K: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{K: 0},
		{K: 10, PrecodeRate: -0.1},
		{K: 10, PrecodeRate: 1.5},
		{K: 10, PrecodeDegree: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	if _, err := New(Params{K: 10}, 0); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestConstantAverageDegree(t *testing.T) {
	// The Raptor selling point: average coded degree is O(1) in K,
	// while plain LT's grows like ln K.
	var degs []float64
	for _, k := range []int{256, 1024, 4096} {
		c, err := New(Params{K: k, Seed: 1}, 2*k)
		if err != nil {
			t.Fatal(err)
		}
		degs = append(degs, c.AvgDegree())
	}
	for _, d := range degs {
		if d < 3 || d > 8 {
			t.Fatalf("avg degree %v outside the capped-distribution range", d)
		}
	}
	if degs[2] > degs[0]*1.2 {
		t.Fatalf("raptor degree grew with K: %v", degs)
	}
	// Contrast with LT, whose mean degree grows like ln K.
	lt256 := ltcode.MeanDegree(ltcode.RobustSoliton(ltcode.Params{K: 256, C: 1, Delta: 0.5}))
	lt4096 := ltcode.MeanDegree(ltcode.RobustSoliton(ltcode.Params{K: 4096, C: 1, Delta: 0.5}))
	if lt4096 <= lt256 {
		t.Fatal("LT degree did not grow with K")
	}
	if lt4096 < degs[2]*1.2 {
		t.Fatalf("LT mean degree %v not above raptor %v at K=4096", lt4096, degs[2])
	}
}

func TestRoundTripAllBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{16, 64, 256} {
		c, err := New(Params{K: k, Seed: int64(k)}, 3*k)
		if err != nil {
			t.Fatal(err)
		}
		data := randBlocks(rng, k, 64)
		coded, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		d := c.NewDecoder()
		for _, idx := range rng.Perm(c.N()) {
			if err := d.Add(idx, coded[idx]); err != nil {
				t.Fatal(err)
			}
			if d.Complete() {
				break
			}
		}
		if !d.Complete() {
			t.Fatalf("K=%d: decode incomplete after all blocks", k)
		}
		got, err := d.Data()
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				t.Fatalf("K=%d: block %d mismatch", k, i)
			}
		}
	}
}

func TestReceptionOverheadSmall(t *testing.T) {
	// Raptor decoding should complete from a modest overhead most of
	// the time (the pre-code mops up the LT layer's constant-fraction
	// residue).
	rng := rand.New(rand.NewSource(3))
	const k = 512
	c, err := New(Params{K: k, Seed: 9}, 3*k)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rng, k, 8)
	coded, _ := c.Encode(data)
	var totalOvh float64
	const trials = 10
	completed := 0
	for tr := 0; tr < trials; tr++ {
		d := c.NewDecoder()
		for _, idx := range rng.Perm(c.N()) {
			if err := d.Add(idx, coded[idx]); err != nil {
				t.Fatal(err)
			}
			if d.Complete() {
				break
			}
		}
		if d.Complete() {
			completed++
			totalOvh += d.ReceptionOverhead()
		}
	}
	if completed < trials*8/10 {
		t.Fatalf("only %d/%d trials decoded", completed, trials)
	}
	mean := totalOvh / float64(completed)
	if mean < 0 || mean > 0.6 {
		t.Fatalf("mean reception overhead %v implausible", mean)
	}
}

func TestDecoderValidation(t *testing.T) {
	c := mustNew(t, Params{K: 16, Seed: 1}, 64)
	d := c.NewDecoder()
	if err := d.Add(-1, []byte{1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := d.Add(64, []byte{1}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := d.Add(0, nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := d.Add(0, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(1, []byte{1}); err == nil {
		t.Fatal("size change accepted")
	}
	if _, err := d.Data(); err == nil {
		t.Fatal("Data before completion accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	c := mustNew(t, Params{K: 16, Seed: 1}, 48)
	if _, err := c.Encode(make([][]byte, 3)); err == nil {
		t.Fatal("wrong block count accepted")
	}
	bad := randBlocks(rand.New(rand.NewSource(1)), 16, 4)
	bad[3] = []byte{1, 2}
	if _, err := c.Encode(bad); err == nil {
		t.Fatal("ragged blocks accepted")
	}
	if _, err := c.EncodeBlock(99, randBlocks(rand.New(rand.NewSource(1)), 16, 4)); err == nil {
		t.Fatal("out-of-range EncodeBlock accepted")
	}
}

func TestDeterministicStructure(t *testing.T) {
	a := mustNew(t, Params{K: 64, Seed: 5}, 128)
	b := mustNew(t, Params{K: 64, Seed: 5}, 128)
	data := randBlocks(rand.New(rand.NewSource(4)), 64, 16)
	ca, _ := a.Encode(data)
	cb, _ := b.Encode(data)
	for i := range ca {
		if !bytes.Equal(ca[i], cb[i]) {
			t.Fatalf("same seed produced different coded block %d", i)
		}
	}
}

func benchRaptor(b *testing.B, k int, decode bool) {
	rng := rand.New(rand.NewSource(1))
	c, err := New(Params{K: k, Seed: 1}, 2*k)
	if err != nil {
		b.Fatal(err)
	}
	const blockSize = 16 << 10
	data := randBlocks(rng, k, blockSize)
	coded, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	order := rng.Perm(c.N())
	b.SetBytes(int64(k * blockSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if decode {
			d := c.NewDecoder()
			for _, idx := range order {
				d.Add(idx, coded[idx])
				if d.Complete() {
					break
				}
			}
			if !d.Complete() {
				b.Skip("decode incomplete for this order (rare)")
			}
		} else {
			if _, err := c.Encode(data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRaptorEncodeK1024(b *testing.B) { benchRaptor(b, 1024, false) }
func BenchmarkRaptorDecodeK1024(b *testing.B) { benchRaptor(b, 1024, true) }
