package replica

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/metadata"
)

// Test cluster harness: real TCP loopback listeners for both the
// consensus RPC plane and the client wire protocol, per-node data
// directories, and a partitioner injected through Config.Dial so
// tests can cut any node off from its peers without touching the
// client plane.

const (
	testElectionTimeout = 60 * time.Millisecond
	testRPCTimeout      = 500 * time.Millisecond
	testCommitTimeout   = 5 * time.Second
)

// partitioner decides, per dial and per established conn, whether two
// nodes can exchange consensus traffic.
type partitioner struct {
	mu     sync.Mutex
	cut    map[int]bool   // node id -> isolated from all peers
	addrID map[string]int // raft addr -> node id
}

func newPartitioner() *partitioner {
	return &partitioner{cut: make(map[int]bool), addrID: make(map[string]int)}
}

func (p *partitioner) isolate(id int, isolated bool) {
	p.mu.Lock()
	p.cut[id] = isolated
	p.mu.Unlock()
}

func (p *partitioner) blocked(a, b int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cut[a] || p.cut[b]
}

var errPartitioned = errors.New("replica_test: partitioned")

// dialFor builds the dial func node id uses toward its peers.
func (p *partitioner) dialFor(id int) dialFunc {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		p.mu.Lock()
		peer := p.addrID[addr]
		p.mu.Unlock()
		if p.blocked(id, peer) {
			return nil, errPartitioned
		}
		conn, err := defaultDial(ctx, addr)
		if err != nil {
			return nil, err
		}
		return &partConn{Conn: conn, p: p, a: id, b: peer}, nil
	}
}

// partConn fails an established consensus conn once a partition
// covering either endpoint appears, so cached peer connections do not
// tunnel through a partition.
type partConn struct {
	net.Conn
	p    *partitioner
	a, b int
}

func (c *partConn) Read(b []byte) (int, error) {
	if c.p.blocked(c.a, c.b) {
		c.Conn.Close()
		return 0, errPartitioned
	}
	return c.Conn.Read(b)
}

func (c *partConn) Write(b []byte) (int, error) {
	if c.p.blocked(c.a, c.b) {
		c.Conn.Close()
		return 0, errPartitioned
	}
	return c.Conn.Write(b)
}

// clusterNode is one running member: consensus node + client-facing
// network server.
type clusterNode struct {
	id   int
	node *Node
	srv  *metadata.NetworkServer
	wg   sync.WaitGroup
}

// cluster manages a replicated metadata group for tests.
type cluster struct {
	t     *testing.T
	dir   string
	peers []Peer
	part  *partitioner
	// wrapRaft optionally wraps each node's consensus listener
	// (fault injection).
	wrapRaft func(net.Listener) net.Listener
	// snapshotEvery overrides Config.SnapshotEvery when > 0.
	snapshotEvery int

	mu    sync.Mutex
	nodes map[int]*clusterNode
}

// newCluster reserves addresses for n members (nothing is started
// yet); call startAll or start per member.
func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{
		t:     t,
		dir:   t.TempDir(),
		part:  newPartitioner(),
		nodes: make(map[int]*clusterNode),
	}
	for id := 1; id <= n; id++ {
		raftAddr := reserveAddr(t)
		c.part.mu.Lock()
		c.part.addrID[raftAddr] = id
		c.part.mu.Unlock()
		c.peers = append(c.peers, Peer{
			ID:         id,
			RaftAddr:   raftAddr,
			ClientAddr: reserveAddr(t),
		})
	}
	t.Cleanup(c.stopAll)
	return c
}

// reserveAddr grabs a free loopback port and releases it for the
// cluster to bind shortly after. The tiny reuse window is fine for
// tests.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func (c *cluster) peer(id int) Peer {
	for _, p := range c.peers {
		if p.ID == id {
			return p
		}
	}
	c.t.Fatalf("no peer %d", id)
	return Peer{}
}

func (c *cluster) clientAddrs() []string {
	addrs := make([]string, 0, len(c.peers))
	for _, p := range c.peers {
		addrs = append(addrs, p.ClientAddr)
	}
	return addrs
}

// start opens (or reopens, preserving the data dir) one member and
// serves both planes.
func (c *cluster) start(id int) *clusterNode {
	c.t.Helper()
	self := c.peer(id)
	cfg := Config{
		ID:              id,
		Peers:           c.peers,
		Dir:             filepath.Join(c.dir, self.RaftAddr+"-node"),
		ElectionTimeout: testElectionTimeout,
		RPCTimeout:      testRPCTimeout,
		CommitTimeout:   testCommitTimeout,
		Dial:            c.part.dialFor(id),
		Logf:            c.t.Logf,
	}
	if c.snapshotEvery > 0 {
		cfg.SnapshotEvery = c.snapshotEvery
	}
	node, err := Open(cfg)
	if err != nil {
		c.t.Fatalf("open node %d: %v", id, err)
	}
	raftLn, err := net.Listen("tcp", self.RaftAddr)
	if err != nil {
		node.Close()
		c.t.Fatalf("raft listen %d: %v", id, err)
	}
	if c.wrapRaft != nil {
		raftLn = c.wrapRaft(raftLn)
	}
	if err := node.Serve(raftLn); err != nil {
		node.Close()
		c.t.Fatalf("serve node %d: %v", id, err)
	}
	srv := metadata.NewNetworkServerFor(node)
	clientLn, err := net.Listen("tcp", self.ClientAddr)
	if err != nil {
		srv.Close()
		node.Close()
		c.t.Fatalf("client listen %d: %v", id, err)
	}
	cn := &clusterNode{id: id, node: node, srv: srv}
	cn.wg.Add(1)
	go func() {
		defer cn.wg.Done()
		srv.Serve(clientLn)
	}()
	c.mu.Lock()
	c.nodes[id] = cn
	c.mu.Unlock()
	return cn
}

func (c *cluster) startAll() {
	for _, p := range c.peers {
		c.start(p.ID)
	}
}

// stop kills one member (both planes). Its data dir survives for a
// later start.
func (c *cluster) stop(id int) {
	c.mu.Lock()
	cn := c.nodes[id]
	delete(c.nodes, id)
	c.mu.Unlock()
	if cn == nil {
		return
	}
	cn.srv.Close()
	cn.node.Close()
	cn.wg.Wait()
}

func (c *cluster) stopAll() {
	c.mu.Lock()
	ids := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	for _, id := range ids {
		c.stop(id)
	}
}

func (c *cluster) get(id int) *clusterNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// waitLeader blocks until some running member believes it leads and
// returns its id.
func (c *cluster) waitLeader() int {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		for id, cn := range c.nodes {
			if cn.node.IsLeader() {
				c.mu.Unlock()
				return id
			}
		}
		c.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatal("no leader elected within deadline")
	return 0
}

// waitApplied blocks until member id has applied at least idx.
func (c *cluster) waitApplied(id int, idx uint64) {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		cn := c.get(id)
		if cn != nil && cn.node.Status().Applied >= idx {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	cn := c.get(id)
	if cn == nil {
		c.t.Fatalf("node %d not running", id)
	}
	c.t.Fatalf("node %d stuck at %+v waiting for %d", id, cn.node.Status(), idx)
}

func testSegment(name string) metadata.Segment {
	return metadata.Segment{
		Name: name,
		Size: 512,
		Coding: metadata.Coding{
			Algorithm: "lt", K: 4, N: 8, BlockBytes: 128,
			C: 1, Delta: 0.5, GraphSeed: 7, GraphN: 10,
		},
		Placement: map[string][]int{"s1:1": {0, 1, 2, 3}, "s2:1": {4, 5, 6, 7}},
	}
}
