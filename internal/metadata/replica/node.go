package replica

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/metadata"
	"repro/internal/obs"
)

// Node lifecycle errors.
var (
	// ErrClosed is returned by operations on a closed node.
	ErrClosed = errors.New("replica: node closed")
	// ErrLeadershipLost is returned to a proposer whose entry's fate
	// became unknown when this node lost leadership: the entry may
	// still commit under the new leader or may be overwritten. Callers
	// must treat the operation as unacknowledged.
	ErrLeadershipLost = errors.New("replica: leadership lost before commit (result unknown)")
	// ErrNoQuorum is returned when a read-index round cannot confirm
	// leadership with a majority.
	ErrNoQuorum = errors.New("replica: no quorum")
)

// Peer identifies one group member: a consensus (raft) address the
// nodes gossip over and a client address the metadata wire protocol
// listens on — the address leader hints carry and write proxying
// targets.
type Peer struct {
	ID         int
	RaftAddr   string
	ClientAddr string
}

// Config configures a replica node.
type Config struct {
	// ID is this node's member id (must be ≥ 1 and present in Peers).
	ID int
	// Peers is the full group membership, self included. A
	// single-entry group degenerates to a durable standalone server.
	Peers []Peer
	// Dir is the node's data directory (wal.log, state.json,
	// snapshot.bin). Created if missing.
	Dir string
	// ElectionTimeout is the base leader-silence span before a node
	// campaigns; the live timeout is re-randomized into
	// [base, 2·base) at every reset so split votes break themselves
	// (default 150ms).
	ElectionTimeout time.Duration
	// HeartbeatInterval spaces leader AppendEntries rounds (default
	// ElectionTimeout/4).
	HeartbeatInterval time.Duration
	// RPCTimeout bounds one peer round trip (default 1s).
	RPCTimeout time.Duration
	// CommitTimeout bounds a proposal's wait for majority commit and
	// a read's wait for its read index (default 5s).
	CommitTimeout time.Duration
	// SnapshotEvery triggers a snapshot + log compaction after this
	// many applied entries (default 1024).
	SnapshotEvery int
	// Obs, when non-nil, receives the meta_* metrics.
	Obs *obs.Registry
	// Dial overrides peer dialing; tests inject partitions here.
	Dial dialFunc
	// Logf, when non-nil, receives debug lines.
	Logf func(format string, args ...any)
}

// role is a node's consensus role.
type role int

const (
	follower role = iota
	candidate
	leader
)

// waiter is one proposal blocked on commit+apply of its entry.
type waiter struct {
	term uint64
	ch   chan error
}

type nodeMetrics struct {
	leaderChanges    *obs.Counter
	elections        *obs.Counter
	proposals        *obs.Counter
	proposalFailures *obs.Counter
	snapshots        *obs.Counter
	snapshotInstalls *obs.Counter
	readIndexes      *obs.Counter
	commitLatency    *obs.Histogram
	term             *obs.Gauge
	appliedIndex     *obs.Gauge
	isLeader         *obs.Gauge
}

func newNodeMetrics(r *obs.Registry) nodeMetrics {
	return nodeMetrics{
		leaderChanges:    r.Counter("meta_leader_changes_total"),
		elections:        r.Counter("meta_elections_total"),
		proposals:        r.Counter("meta_proposals_total"),
		proposalFailures: r.Counter("meta_proposal_failures_total"),
		snapshots:        r.Counter("meta_snapshots_total"),
		snapshotInstalls: r.Counter("meta_snapshot_installs_total"),
		readIndexes:      r.Counter("meta_read_index_total"),
		commitLatency:    r.Histogram("meta_commit_latency_seconds"),
		term:             r.Gauge("meta_term"),
		appliedIndex:     r.Gauge("meta_applied_index"),
		isLeader:         r.Gauge("meta_is_leader"),
	}
}

// Node is one member of a replicated metadata group. It implements
// metadata.API: writes are proposed to the consensus log and
// acknowledged only after majority commit and local apply; reads are
// served from the local state machine after a read-index check;
// locks are leader-local and redirect via NotLeaderError. Wrap a
// Node in metadata.NewNetworkServerFor to serve clients.
type Node struct {
	cfg   Config
	id    int
	self  Peer
	peers []Peer // excluding self
	svc   *metadata.Service
	m     nodeMetrics

	hsPath   string
	snapPath string

	mu          sync.Mutex
	closed      bool
	serving     bool
	wal         *wal
	role        role
	term        uint64
	votedFor    int
	leaderID    int
	log         []Entry // log[i].Index == snapIndex+1+i
	snapIndex   uint64
	snapTerm    uint64
	snapState   []byte // raw service snapshot at snapIndex, for installs
	commitIndex uint64
	applied     uint64
	sinceSnap   int
	lastContact time.Time
	timeout     time.Duration // current randomized election timeout
	nextIndex   map[int]uint64
	matchIndex  map[int]uint64
	waiters     map[uint64]waiter
	progress    chan struct{} // closed+replaced on commit/apply/role change
	rpcConns    map[net.Conn]struct{}

	ln        net.Listener
	clients   map[int]*peerClient
	stopc     chan struct{}
	applyKick chan struct{}
	peerKicks map[int]chan struct{}
	wg        sync.WaitGroup
}

// Open loads (or initializes) a node's durable state from cfg.Dir:
// snapshot, then the log tail, then the hard state. It does not
// start any network activity; call Serve with the consensus
// listener.
func Open(cfg Config) (*Node, error) {
	if cfg.ID < 1 {
		return nil, fmt.Errorf("replica: node id %d must be >= 1", cfg.ID)
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = cfg.ElectionTimeout / 4
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = time.Second
	}
	if cfg.CommitTimeout <= 0 {
		cfg.CommitTimeout = 5 * time.Second
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 1024
	}
	var self Peer
	var peers []Peer
	seen := make(map[int]bool)
	for _, p := range cfg.Peers {
		if p.ID < 1 {
			return nil, fmt.Errorf("replica: peer id %d must be >= 1", p.ID)
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("replica: duplicate peer id %d", p.ID)
		}
		seen[p.ID] = true
		if p.ID == cfg.ID {
			self = p
		} else {
			peers = append(peers, p)
		}
	}
	if self.ID == 0 {
		return nil, fmt.Errorf("replica: node id %d not in peer list", cfg.ID)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: creating data dir: %w", err)
	}

	n := &Node{
		cfg:        cfg,
		id:         cfg.ID,
		self:       self,
		peers:      peers,
		svc:        metadata.NewService(),
		m:          newNodeMetrics(cfg.Obs),
		hsPath:     filepath.Join(cfg.Dir, "state.json"),
		snapPath:   filepath.Join(cfg.Dir, "snapshot.bin"),
		leaderID:   0,
		nextIndex:  make(map[int]uint64),
		matchIndex: make(map[int]uint64),
		waiters:    make(map[uint64]waiter),
		progress:   make(chan struct{}),
		rpcConns:   make(map[net.Conn]struct{}),
		clients:    make(map[int]*peerClient),
		stopc:      make(chan struct{}),
		applyKick:  make(chan struct{}, 1),
		peerKicks:  make(map[int]chan struct{}),
	}

	snap, err := loadSnapshot(n.snapPath)
	if err != nil {
		return nil, err
	}
	if snap.LastIndex > 0 {
		if err := n.svc.Load(bytes.NewReader(snap.State)); err != nil {
			return nil, fmt.Errorf("replica: restoring snapshot state: %w", err)
		}
		n.snapIndex, n.snapTerm, n.snapState = snap.LastIndex, snap.LastTerm, snap.State
	}
	n.commitIndex, n.applied = n.snapIndex, n.snapIndex

	w, entries, err := openWAL(filepath.Join(cfg.Dir, "wal.log"))
	if err != nil {
		return nil, err
	}
	n.wal = w
	// Entries at or below the snapshot index were compacted logically
	// but may survive a crash between snapshot write and log rewrite.
	kept := entries[:0]
	for _, e := range entries {
		if e.Index > n.snapIndex {
			kept = append(kept, e)
		}
	}
	if err := validateSequence(n.snapIndex, kept); err != nil && len(kept) > 0 {
		// A gap between snapshot and log tail means the prefix was
		// acknowledged and lost — refuse to start on it.
		w.Close()
		return nil, fmt.Errorf("replica: log does not follow snapshot %d: %w", n.snapIndex, err)
	}
	n.log = append([]Entry(nil), kept...)

	hs, err := loadHardState(n.hsPath)
	if err != nil {
		w.Close()
		return nil, err
	}
	n.term, n.votedFor = hs.Term, hs.VotedFor
	n.m.term.Set(float64(n.term))
	n.m.appliedIndex.Set(float64(n.applied))

	n.lastContact = time.Now()
	n.timeout = n.randTimeout()
	for _, p := range peers {
		n.clients[p.ID] = newPeerClient(p.RaftAddr, cfg.Dial, cfg.RPCTimeout)
		n.peerKicks[p.ID] = make(chan struct{}, 1)
	}
	return n, nil
}

// Serve starts the node's consensus machinery on ln: the RPC accept
// loop, the election ticker, the apply loop, and one replication
// loop per peer. It returns immediately; Close stops everything.
func (n *Node) Serve(ln net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.serving {
		n.mu.Unlock()
		return errors.New("replica: already serving")
	}
	n.serving = true
	n.ln = ln
	n.mu.Unlock()
	n.spawn(func() { n.serveRPC(ln) })
	n.spawn(n.tickLoop)
	n.spawn(n.applyLoop)
	for _, p := range n.peers {
		peer := p
		n.spawn(func() { n.peerLoop(peer) })
	}
	return nil
}

// Close shuts the node down: stops loops, closes connections, fails
// outstanding proposals with ErrClosed, and closes the log.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stopc)
	if n.ln != nil {
		n.ln.Close()
	}
	for c := range n.rpcConns {
		c.Close()
	}
	n.failWaitersLocked(ErrClosed)
	n.rotateProgressLocked()
	clients := n.clients
	n.mu.Unlock()
	for _, pc := range clients {
		pc.Close()
	}
	n.wg.Wait()
	n.mu.Lock()
	err := n.wal.Close()
	n.mu.Unlock()
	return err
}

// spawn runs f on a tracked goroutine joined by Close.
func (n *Node) spawn(f func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		f()
	}()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf("replica[%d]: "+format, append([]any{n.id}, args...)...)
	}
}

// randTimeout draws the next randomized election timeout in
// [base, 2·base).
func (n *Node) randTimeout() time.Duration {
	base := n.cfg.ElectionTimeout
	return base + time.Duration(rand.Int63n(int64(base)))
}

// quorum is the majority size of the full group.
func (n *Node) quorum() int {
	return (len(n.peers)+1)/2 + 1
}

// lastIndexLocked returns the index of the last log entry (or the
// snapshot frontier when the log is empty). Callers hold n.mu.
func (n *Node) lastIndexLocked() uint64 {
	return n.snapIndex + uint64(len(n.log))
}

// termAtLocked returns the term of the entry at idx, or 0 when idx
// predates the snapshot or exceeds the log. Callers hold n.mu.
func (n *Node) termAtLocked(idx uint64) uint64 {
	switch {
	case idx == n.snapIndex:
		return n.snapTerm
	case idx < n.snapIndex:
		return 0
	}
	off := idx - n.snapIndex - 1
	if off >= uint64(len(n.log)) {
		return 0
	}
	return n.log[off].Term
}

// entriesFromLocked copies log entries in [from, lastIndex],
// capped at maxAppendEntries. Callers hold n.mu.
func (n *Node) entriesFromLocked(from uint64) []Entry {
	if from <= n.snapIndex {
		return nil
	}
	off := from - n.snapIndex - 1
	if off >= uint64(len(n.log)) {
		return nil
	}
	tail := n.log[off:]
	if len(tail) > maxAppendEntries {
		tail = tail[:maxAppendEntries]
	}
	return append([]Entry(nil), tail...)
}

// maxAppendEntries bounds one replication batch.
const maxAppendEntries = 256

// rotateProgressLocked wakes every waiter parked on commit/apply/role
// progress. Callers hold n.mu.
func (n *Node) rotateProgressLocked() {
	close(n.progress)
	n.progress = make(chan struct{})
}

// failWaitersLocked resolves every outstanding proposal with err.
// Callers hold n.mu.
func (n *Node) failWaitersLocked(err error) {
	for idx, w := range n.waiters {
		w.ch <- err
		delete(n.waiters, idx)
	}
}

// kickPeersLocked nudges every replication loop. Callers hold n.mu.
func (n *Node) kickPeersLocked() {
	for _, ch := range n.peerKicks {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// kickApplyLocked nudges the apply loop. Callers hold n.mu.
func (n *Node) kickApplyLocked() {
	select {
	case n.applyKick <- struct{}{}:
	default:
	}
}

// persistHardStateLocked fsyncs term+vote before they are promised to
// any peer. Callers hold n.mu.
func (n *Node) persistHardStateLocked() error {
	err := saveHardState(n.hsPath, hardState{Term: n.term, VotedFor: n.votedFor})
	if err == nil {
		n.m.term.Set(float64(n.term))
	}
	return err
}

// IsLeader reports whether the node currently believes it leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == leader
}

// LeaderClientAddr returns the client address of the node's current
// leader guess ("" when unknown).
func (n *Node) LeaderClientAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderClientAddrLocked()
}

func (n *Node) leaderClientAddrLocked() string {
	if n.leaderID == n.id {
		return n.self.ClientAddr
	}
	for _, p := range n.peers {
		if p.ID == n.leaderID {
			return p.ClientAddr
		}
	}
	return ""
}

// Status is a point-in-time consensus snapshot for health/debug
// surfaces.
type Status struct {
	ID          int
	Leader      bool
	LeaderID    int
	Term        uint64
	CommitIndex uint64
	Applied     uint64
	LogLen      int
	SnapIndex   uint64
}

// Status reports the node's consensus position.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Status{
		ID:          n.id,
		Leader:      n.role == leader,
		LeaderID:    n.leaderID,
		Term:        n.term,
		CommitIndex: n.commitIndex,
		Applied:     n.applied,
		LogLen:      len(n.log),
		SnapIndex:   n.snapIndex,
	}
}

// notLeaderLocked builds the redirect error for a request this node
// cannot serve. Callers hold n.mu.
func (n *Node) notLeaderLocked() error {
	return &metadata.NotLeaderError{Leader: n.leaderClientAddrLocked()}
}
