package replica

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func openTestWAL(t *testing.T, path string) (*wal, []Entry) {
	t.Helper()
	w, entries, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	return w, entries
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, entries := openTestWAL(t, path)
	if len(entries) != 0 {
		t.Fatalf("fresh wal replayed %d entries", len(entries))
	}
	want := []Entry{testEntry(1, 1, "a"), testEntry(2, 1, "bb"), testEntry(3, 2, "ccc")}
	if err := w.append(want...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got := openTestWAL(t, path)
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index || !bytes.Equal(got[i].Command, want[i].Command) {
			t.Fatalf("entry %d: %+v want %+v", i, got[i], want[i])
		}
	}
	// Appending after replay must continue the file, not clobber it.
	if err := w2.append(testEntry(4, 2, "dddd")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, got3 := openTestWAL(t, path)
	defer w3.Close()
	if len(got3) != 4 || got3[3].Index != 4 {
		t.Fatalf("after post-replay append: %d entries", len(got3))
	}
}

// TestWALTornTail crashes mid-append: the file ends in a partial
// record, which replay must truncate away — keeping every fully
// written entry — and subsequent appends must land cleanly where the
// good prefix ends.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path)
	if err := w.append(testEntry(1, 1, "aa"), testEntry(2, 1, "bb"), testEntry(3, 1, "cc")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the final record at several depths.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := int64(entryHeaderLen + 2 + 4)
	for _, tear := range []int64{1, recLen / 2, recLen - 1} {
		if err := os.Truncate(path, info.Size()-tear); err != nil {
			t.Fatal(err)
		}
		w2, entries := openTestWAL(t, path)
		if len(entries) != 2 || entries[1].Index != 2 {
			t.Fatalf("tear %d: replayed %d entries", tear, len(entries))
		}
		// The torn bytes must be gone so a new append forms a valid
		// record.
		if err := w2.append(testEntry(3, 2, "replacement")); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		w3, entries3 := openTestWAL(t, path)
		if len(entries3) != 3 || string(entries3[2].Command) != "replacement" {
			t.Fatalf("tear %d: after re-append got %d entries", tear, len(entries3))
		}
		w3.Close()
		// Restore the original three-entry file for the next tear depth.
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		w4, _ := openTestWAL(t, path)
		if err := w4.append(testEntry(1, 1, "aa"), testEntry(2, 1, "bb"), testEntry(3, 1, "cc")); err != nil {
			t.Fatal(err)
		}
		w4.Close()
	}
}

// TestWALCorruptTailBitFlip flips a bit inside the final record; the
// replay must keep the clean prefix and drop the corrupt tail.
func TestWALCorruptTailBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path)
	if err := w.append(testEntry(1, 1, "aa"), testEntry(2, 1, "bb")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // corrupt the final record's checksum
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, entries := openTestWAL(t, path)
	defer w2.Close()
	if len(entries) != 1 || entries[0].Index != 1 {
		t.Fatalf("replayed %d entries after tail corruption", len(entries))
	}
}

func TestWALRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path)
	if err := w.append(testEntry(1, 1, "a"), testEntry(2, 1, "b"), testEntry(3, 1, "c")); err != nil {
		t.Fatal(err)
	}
	// Truncate-style rewrite: keep a prefix, replace the tail.
	kept := []Entry{testEntry(1, 1, "a"), testEntry(2, 2, "B")}
	if err := w.rewrite(kept); err != nil {
		t.Fatal(err)
	}
	// Appends after a rewrite must go to the new file.
	if err := w.append(testEntry(3, 2, "C")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, entries := openTestWAL(t, path)
	defer w2.Close()
	if len(entries) != 3 || entries[1].Term != 2 || string(entries[2].Command) != "C" {
		t.Fatalf("after rewrite+append: %+v", entries)
	}
}

func TestHardStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	hs, err := loadHardState(path)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 0 || hs.VotedFor != 0 {
		t.Fatalf("missing file should read zero state, got %+v", hs)
	}
	if err := saveHardState(path, hardState{Term: 9, VotedFor: 2}); err != nil {
		t.Fatal(err)
	}
	hs, err = loadHardState(path)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 9 || hs.VotedFor != 2 {
		t.Fatalf("round trip = %+v", hs)
	}
}
