package replica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/metadata"
)

// Snapshot format: a small binary envelope around the existing
// metadata.Service JSON snapshot (persist.go), so the state payload
// stays inspectable and version-gated by the metadata package while
// the envelope pins the log position it covers and a whole-file
// checksum:
//
//	[magic "RMS1":4][lastIndex:8][lastTerm:8][stateLen:4][state JSON][crc32c:4]
//
// The CRC covers everything before it. Files are written with the
// temp-fsync-rename-fsync-dir discipline, so a torn write never
// replaces a good snapshot.

// ErrCorruptSnapshot marks a snapshot file whose envelope is invalid.
var ErrCorruptSnapshot = errors.New("replica: corrupt snapshot")

var snapshotMagic = [4]byte{'R', 'M', 'S', '1'}

// maxSnapshotBytes bounds the embedded state payload (64 MiB — far
// above any realistic metadata volume, low enough to reject a
// nonsense length field before allocating).
const maxSnapshotBytes = 64 << 20

// snapshot is a decoded snapshot envelope.
type snapshot struct {
	LastIndex uint64
	LastTerm  uint64
	State     []byte // metadata.Service snapshot JSON
}

// encodeSnapshot renders the envelope.
func encodeSnapshot(s snapshot) ([]byte, error) {
	if len(s.State) > maxSnapshotBytes {
		return nil, fmt.Errorf("replica: snapshot state %d bytes exceeds cap", len(s.State))
	}
	buf := make([]byte, 0, 4+8+8+4+len(s.State)+4)
	buf = append(buf, snapshotMagic[:]...)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], s.LastIndex)
	buf = append(buf, n[:]...)
	binary.BigEndian.PutUint64(n[:], s.LastTerm)
	buf = append(buf, n[:]...)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s.State)))
	buf = append(buf, l[:]...)
	buf = append(buf, s.State...)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc32.Checksum(buf, crcTable))
	return append(buf, tail[:]...), nil
}

// decodeSnapshot parses and verifies an envelope.
func decodeSnapshot(raw []byte) (snapshot, error) {
	const hdrLen = 4 + 8 + 8 + 4
	if len(raw) < hdrLen+4 {
		return snapshot{}, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorruptSnapshot, len(raw))
	}
	if !bytes.Equal(raw[:4], snapshotMagic[:]) {
		return snapshot{}, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, raw[:4])
	}
	stateLen := binary.BigEndian.Uint32(raw[20:24])
	if stateLen > maxSnapshotBytes {
		return snapshot{}, fmt.Errorf("%w: state length %d exceeds cap", ErrCorruptSnapshot, stateLen)
	}
	if uint64(len(raw)) != uint64(hdrLen)+uint64(stateLen)+4 {
		return snapshot{}, fmt.Errorf("%w: length %d does not match state length %d", ErrCorruptSnapshot, len(raw), stateLen)
	}
	body := raw[:len(raw)-4]
	want := binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, crcTable) != want {
		return snapshot{}, fmt.Errorf("%w: checksum mismatch", ErrCorruptSnapshot)
	}
	s := snapshot{
		LastIndex: binary.BigEndian.Uint64(raw[4:12]),
		LastTerm:  binary.BigEndian.Uint64(raw[12:20]),
		State:     append([]byte(nil), raw[hdrLen:hdrLen+int(stateLen)]...),
	}
	if (s.LastIndex == 0) != (s.LastTerm == 0) {
		return snapshot{}, fmt.Errorf("%w: index %d / term %d must be zero together", ErrCorruptSnapshot, s.LastIndex, s.LastTerm)
	}
	return s, nil
}

// saveSnapshot atomically writes the envelope to path.
func saveSnapshot(path string, s snapshot) error {
	raw, err := encodeSnapshot(s)
	if err != nil {
		return err
	}
	err = metadata.SaveFileAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	})
	if err != nil {
		return fmt.Errorf("replica: saving snapshot: %w", err)
	}
	return nil
}

// loadSnapshot reads path; a missing file returns a zero snapshot.
func loadSnapshot(path string) (snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return snapshot{}, nil
		}
		return snapshot{}, fmt.Errorf("replica: reading snapshot: %w", err)
	}
	return decodeSnapshot(raw)
}
