package replica

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Peer RPC: JSON bodies in 4-byte-length-prefixed frames over a
// persistent TCP connection per peer, one request/response in flight
// at a time (consensus traffic is sequential per peer by
// construction). Every call carries a deadline, so a partitioned or
// wedged peer costs one RPC timeout, never a stuck goroutine.

// rpc kinds.
const (
	rpcVote      = "vote"
	rpcAppend    = "append"
	rpcSnapshot  = "snapshot"
	rpcProbe     = "probe"
	rpcReadIndex = "read-index"
)

// rpcRequest is the union request for all peer RPCs.
type rpcRequest struct {
	Kind string `json:"kind"`
	From int    `json:"from"`
	Term uint64 `json:"term"`

	// vote
	LastLogIndex uint64 `json:"last_log_index,omitempty"`
	LastLogTerm  uint64 `json:"last_log_term,omitempty"`

	// append
	PrevLogIndex uint64  `json:"prev_log_index,omitempty"`
	PrevLogTerm  uint64  `json:"prev_log_term,omitempty"`
	Entries      []Entry `json:"entries,omitempty"`
	LeaderCommit uint64  `json:"leader_commit,omitempty"`

	// snapshot
	SnapIndex uint64 `json:"snap_index,omitempty"`
	SnapTerm  uint64 `json:"snap_term,omitempty"`
	SnapState []byte `json:"snap_state,omitempty"`
}

// rpcResponse is the union response.
type rpcResponse struct {
	Term          uint64 `json:"term"`
	VoteGranted   bool   `json:"vote_granted,omitempty"`
	Success       bool   `json:"success,omitempty"`
	MatchIndex    uint64 `json:"match_index,omitempty"`
	ConflictIndex uint64 `json:"conflict_index,omitempty"`
	ReadIndex     uint64 `json:"read_index,omitempty"`
	Error         string `json:"error,omitempty"`
}

// rpcMaxFrame bounds one peer frame: an append batch or a whole
// snapshot plus envelope slack.
const rpcMaxFrame = maxSnapshotBytes + (1 << 20)

func writeRPCFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > rpcMaxFrame {
		return fmt.Errorf("replica: rpc frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readRPCFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > rpcMaxFrame {
		return fmt.Errorf("replica: inbound rpc frame too large (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// dialFunc dials a peer; tests substitute partition-aware dialers.
type dialFunc func(ctx context.Context, addr string) (net.Conn, error)

func defaultDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// peerClient is the calling half toward one peer.
type peerClient struct {
	addr    string
	dial    dialFunc
	timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

var errPeerClosed = errors.New("replica: peer client closed")

func newPeerClient(addr string, dial dialFunc, timeout time.Duration) *peerClient {
	if dial == nil {
		dial = defaultDial
	}
	return &peerClient{addr: addr, dial: dial, timeout: timeout}
}

// call performs one RPC round trip under the client's deadline. Any
// transport error drops the cached connection so the next call
// redials; the caller's retry cadence (heartbeats, election rounds)
// provides the spacing.
func (p *peerClient) call(req *rpcRequest) (*rpcResponse, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errPeerClosed
	}
	if p.conn == nil {
		ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
		conn, err := p.dial(ctx, p.addr)
		cancel()
		if err != nil {
			return nil, err
		}
		p.conn = conn
	}
	conn := p.conn
	if err := conn.SetDeadline(time.Now().Add(p.timeout)); err != nil {
		p.dropLocked()
		return nil, err
	}
	if err := writeRPCFrame(conn, req); err != nil {
		p.dropLocked()
		return nil, err
	}
	var resp rpcResponse
	if err := readRPCFrame(conn, &resp); err != nil {
		p.dropLocked()
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return &resp, nil
}

func (p *peerClient) dropLocked() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

func (p *peerClient) Close() {
	p.mu.Lock()
	p.closed = true
	p.dropLocked()
	p.mu.Unlock()
}

// serveRPC runs the accept loop for the node's consensus listener.
func (n *Node) serveRPC(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-n.stopc:
			default:
				n.logf("rpc accept: %v", err)
			}
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.rpcConns[conn] = struct{}{}
		n.mu.Unlock()
		n.spawn(func() { n.serveRPCConn(conn) })
	}
}

func (n *Node) serveRPCConn(conn net.Conn) {
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.rpcConns, conn)
		n.mu.Unlock()
	}()
	for {
		var req rpcRequest
		if err := readRPCFrame(conn, &req); err != nil {
			return
		}
		resp := n.handleRPC(&req)
		if err := writeRPCFrame(conn, resp); err != nil {
			return
		}
	}
}

// handleRPC dispatches one inbound peer request.
func (n *Node) handleRPC(req *rpcRequest) *rpcResponse {
	switch req.Kind {
	case rpcVote:
		return n.handleVote(req)
	case rpcAppend:
		return n.handleAppend(req)
	case rpcSnapshot:
		return n.handleSnapshot(req)
	case rpcProbe:
		return n.handleProbe(req)
	case rpcReadIndex:
		return n.handleReadIndex(req)
	default:
		return &rpcResponse{Error: fmt.Sprintf("replica: unknown rpc kind %q", req.Kind)}
	}
}
