package replica

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/metadata"
)

// This file is the consensus core: term-based leader election with
// randomized timeouts, majority-acknowledged log replication, commit
// and apply, and the read-index protocol. The rules are the standard
// Raft safety argument, stdlib-only:
//
//   - a vote or append acknowledgement is durable (fsync) before it
//     is sent;
//   - a leader only commits entries of its own term (carrying older
//     entries along), and appends a no-op on election so the commit
//     frontier advances immediately;
//   - an election only succeeds against a candidate whose log is at
//     least as up-to-date as the voter's.

// --- election ---

// tickLoop campaigns when the leader has been silent for the
// randomized election timeout.
func (n *Node) tickLoop() {
	tick := n.cfg.ElectionTimeout / 10
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.stopc:
			return
		case <-t.C:
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		if n.role != leader && time.Since(n.lastContact) >= n.timeout {
			n.startElectionLocked()
		}
		n.mu.Unlock()
	}
}

// startElectionLocked campaigns for the next term. Callers hold n.mu.
func (n *Node) startElectionLocked() {
	n.role = candidate
	n.term++
	n.votedFor = n.id
	n.leaderID = 0
	if err := n.persistHardStateLocked(); err != nil {
		// Without a durable vote we must not campaign.
		n.logf("election persist failed: %v", err)
		n.role = follower
		n.votedFor = 0
		return
	}
	n.m.elections.Inc()
	n.lastContact = time.Now()
	n.timeout = n.randTimeout()
	n.rotateProgressLocked()
	n.logf("campaigning in term %d", n.term)
	if n.quorum() == 1 {
		n.becomeLeaderLocked()
		return
	}
	term := n.term
	req := &rpcRequest{
		Kind:         rpcVote,
		From:         n.id,
		Term:         term,
		LastLogIndex: n.lastIndexLocked(),
		LastLogTerm:  n.termAtLocked(n.lastIndexLocked()),
	}
	votes := 1 // self
	granted := &votes
	for _, p := range n.peers {
		pc := n.clients[p.ID]
		n.spawn(func() {
			resp, err := pc.call(req)
			if err != nil {
				return
			}
			n.mu.Lock()
			defer n.mu.Unlock()
			if n.closed {
				return
			}
			if resp.Term > n.term {
				n.stepDownLocked(resp.Term)
				return
			}
			if n.role != candidate || n.term != term || !resp.VoteGranted {
				return
			}
			*granted++
			if *granted >= n.quorum() {
				n.becomeLeaderLocked()
			}
		})
	}
}

// becomeLeaderLocked takes leadership of the current term. Callers
// hold n.mu.
func (n *Node) becomeLeaderLocked() {
	n.role = leader
	n.leaderID = n.id
	n.m.leaderChanges.Inc()
	n.m.isLeader.Set(1)
	last := n.lastIndexLocked()
	for _, p := range n.peers {
		n.nextIndex[p.ID] = last + 1
		n.matchIndex[p.ID] = 0
	}
	n.logf("leading term %d from index %d", n.term, last)
	// Commit the term immediately with a no-op so read-index has a
	// committed entry of this term to anchor on.
	noop, err := encodeCommand(Command{Op: opNoop})
	if err == nil {
		err = n.appendLocalLocked(noop)
	}
	if err != nil {
		n.logf("no-op append failed: %v", err)
		n.stepDownLocked(n.term)
		return
	}
	n.rotateProgressLocked()
	n.kickPeersLocked()
}

// stepDownLocked reverts to follower, adopting term if newer. A
// deposed leader fails its outstanding proposals: their entries may
// yet commit, so the result is reported unknown. Callers hold n.mu.
//
// It reports whether the term was adopted. When the newer term cannot
// be made durable the node refuses it — memory reverts to the old
// term so memory and disk agree, and the caller must reject the RPC
// rather than acknowledge anything: acking in a term that rolls back
// across a crash would let this member vote or ack twice. The node
// still drops to follower, which is always safe.
func (n *Node) stepDownLocked(term uint64) bool {
	adopted := true
	if term > n.term {
		prevTerm, prevVote := n.term, n.votedFor
		n.term = term
		n.votedFor = 0
		if err := n.persistHardStateLocked(); err != nil {
			n.term, n.votedFor = prevTerm, prevVote
			n.logf("step-down persist failed, refusing term %d: %v", term, err)
			adopted = false
		}
	}
	if n.role == leader {
		n.failWaitersLocked(ErrLeadershipLost)
	}
	n.role = follower
	n.m.isLeader.Set(0)
	n.rotateProgressLocked()
	return adopted
}

// appendLocalLocked appends one command to the leader's own log,
// durably. Callers hold n.mu and have verified leadership.
func (n *Node) appendLocalLocked(command []byte) error {
	e := Entry{Index: n.lastIndexLocked() + 1, Term: n.term, Command: command}
	if err := n.wal.append(e); err != nil {
		return err
	}
	n.log = append(n.log, e)
	n.maybeCommitLocked()
	return nil
}

// --- replication (leader side) ---

// peerLoop replicates to one peer: heartbeats on a timer, immediate
// rounds on kicks (new proposals, commit advances).
func (n *Node) peerLoop(p Peer) {
	hb := time.NewTicker(n.cfg.HeartbeatInterval)
	defer hb.Stop()
	kick := n.peerKicks[p.ID]
	for {
		select {
		case <-n.stopc:
			return
		case <-kick:
		case <-hb.C:
		}
		for n.syncPeerOnce(p) {
		}
	}
}

// syncPeerOnce performs one replication round toward p; it returns
// true when the peer is known to still be behind, so the caller
// immediately runs another round.
func (n *Node) syncPeerOnce(p Peer) bool {
	n.mu.Lock()
	if n.closed || n.role != leader {
		n.mu.Unlock()
		return false
	}
	term := n.term
	ni := n.nextIndex[p.ID]
	if ni <= n.snapIndex {
		// The peer needs entries we compacted: install our snapshot.
		req := &rpcRequest{
			Kind:      rpcSnapshot,
			From:      n.id,
			Term:      term,
			SnapIndex: n.snapIndex,
			SnapTerm:  n.snapTerm,
			SnapState: n.snapState,
		}
		n.mu.Unlock()
		resp, err := n.clients[p.ID].call(req)
		if err != nil {
			return false
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.closed || n.role != leader || n.term != term {
			return false
		}
		if resp.Term > n.term {
			n.stepDownLocked(resp.Term)
			return false
		}
		if resp.Success {
			n.m.snapshotInstalls.Inc()
			if resp.MatchIndex > n.matchIndex[p.ID] {
				n.matchIndex[p.ID] = resp.MatchIndex
			}
			n.nextIndex[p.ID] = resp.MatchIndex + 1
			n.maybeCommitLocked()
			return n.lastIndexLocked() > resp.MatchIndex
		}
		return false
	}

	req := &rpcRequest{
		Kind:         rpcAppend,
		From:         n.id,
		Term:         term,
		PrevLogIndex: ni - 1,
		PrevLogTerm:  n.termAtLocked(ni - 1),
		Entries:      n.entriesFromLocked(ni),
		LeaderCommit: n.commitIndex,
	}
	n.mu.Unlock()
	resp, err := n.clients[p.ID].call(req)
	if err != nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.role != leader || n.term != term {
		return false
	}
	if resp.Term > n.term {
		n.stepDownLocked(resp.Term)
		return false
	}
	if resp.Success {
		if resp.MatchIndex > n.matchIndex[p.ID] {
			n.matchIndex[p.ID] = resp.MatchIndex
		}
		n.nextIndex[p.ID] = resp.MatchIndex + 1
		n.maybeCommitLocked()
		return n.lastIndexLocked() > resp.MatchIndex
	}
	// Log mismatch: back up to the peer's conflict hint and retry.
	ci := resp.ConflictIndex
	if ci == 0 || ci > ni-1 {
		ci = ni - 1
	}
	if ci < 1 {
		ci = 1
	}
	n.nextIndex[p.ID] = ci
	return true
}

// maybeCommitLocked advances the commit frontier to the highest index
// stored on a majority, provided that index is of the current term.
// Callers hold n.mu; leader only.
func (n *Node) maybeCommitLocked() {
	last := n.lastIndexLocked()
	for idx := last; idx > n.commitIndex && idx > n.snapIndex; idx-- {
		if n.termAtLocked(idx) != n.term {
			break // older-term entries commit only by carry-along
		}
		count := 1 // self (the entry is in our durable log)
		for _, p := range n.peers {
			if n.matchIndex[p.ID] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commitIndex = idx
			n.kickApplyLocked()
			n.kickPeersLocked() // propagate the new frontier promptly
			n.rotateProgressLocked()
			return
		}
	}
}

// --- RPC handlers (follower side) ---

// handleVote answers a RequestVote.
func (n *Node) handleVote(req *rpcRequest) *rpcResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &rpcResponse{Term: n.term}
	if n.closed || req.Term < n.term {
		return resp
	}
	if req.Term > n.term {
		if !n.stepDownLocked(req.Term) {
			resp.Error = "replica: cannot durably adopt term"
			return resp
		}
		resp.Term = n.term
	}
	last := n.lastIndexLocked()
	lastTerm := n.termAtLocked(last)
	upToDate := req.LastLogTerm > lastTerm ||
		(req.LastLogTerm == lastTerm && req.LastLogIndex >= last)
	if (n.votedFor == 0 || n.votedFor == req.From) && upToDate {
		n.votedFor = req.From
		if err := n.persistHardStateLocked(); err != nil {
			n.logf("vote persist failed: %v", err)
			return resp // do not promise an undurable vote
		}
		n.lastContact = time.Now()
		resp.VoteGranted = true
	}
	return resp
}

// handleAppend answers AppendEntries: heartbeat, consistency check,
// durable append, commit advance.
func (n *Node) handleAppend(req *rpcRequest) *rpcResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &rpcResponse{Term: n.term}
	if n.closed || req.Term < n.term {
		return resp
	}
	if err := validateSequence(req.PrevLogIndex, req.Entries); err != nil {
		resp.Error = err.Error()
		return resp
	}
	if req.Term > n.term || n.role != follower {
		if !n.stepDownLocked(req.Term) {
			resp.Error = "replica: cannot durably adopt term"
			return resp
		}
	}
	resp.Term = n.term
	n.leaderID = req.From
	n.lastContact = time.Now()

	last := n.lastIndexLocked()
	switch {
	case req.PrevLogIndex > last:
		resp.ConflictIndex = last + 1
		return resp
	case req.PrevLogIndex < n.snapIndex:
		// We compacted past prev; everything ≤ snapIndex is committed
		// state, so ask the leader to resume after it.
		resp.ConflictIndex = n.snapIndex + 1
		return resp
	}
	if pt := n.termAtLocked(req.PrevLogIndex); pt != req.PrevLogTerm {
		// Walk to the first index of the conflicting term so the
		// leader skips the whole run in one round.
		ci := req.PrevLogIndex
		for ci > n.snapIndex+1 && n.termAtLocked(ci-1) == pt {
			ci--
		}
		resp.ConflictIndex = ci
		return resp
	}

	// Find the first entry that is new or conflicts.
	writeFrom := -1
	for i, e := range req.Entries {
		if e.Index <= n.snapIndex {
			continue
		}
		if e.Index <= last && n.termAtLocked(e.Index) == e.Term {
			continue
		}
		writeFrom = i
		break
	}
	if writeFrom >= 0 {
		first := req.Entries[writeFrom]
		if first.Index <= last {
			// Conflict: truncate our suffix, then append. The rewrite
			// is atomic and goes to disk first — n.log adopts the
			// candidate only once it is durable, so a rewrite failure
			// leaves memory and WAL agreeing on the old log instead of
			// acking future appends on top of a divergent file.
			cand := append([]Entry(nil), n.log[:first.Index-n.snapIndex-1]...)
			cand = append(cand, req.Entries[writeFrom:]...)
			if err := n.wal.rewrite(cand); err != nil {
				resp.Error = err.Error()
				return resp
			}
			n.log = cand
		} else {
			if err := n.wal.append(req.Entries[writeFrom:]...); err != nil {
				resp.Error = err.Error()
				return resp
			}
			n.log = append(n.log, req.Entries[writeFrom:]...)
		}
	}
	match := req.PrevLogIndex + uint64(len(req.Entries))
	if req.LeaderCommit > n.commitIndex {
		nc := req.LeaderCommit
		if match < nc {
			nc = match
		}
		if nc > n.commitIndex {
			n.commitIndex = nc
			n.kickApplyLocked()
			n.rotateProgressLocked()
		}
	}
	resp.Success = true
	resp.MatchIndex = match
	return resp
}

// handleSnapshot installs the leader's snapshot on a follower that
// fell behind the leader's compaction horizon.
func (n *Node) handleSnapshot(req *rpcRequest) *rpcResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &rpcResponse{Term: n.term}
	if n.closed || req.Term < n.term {
		return resp
	}
	if req.Term > n.term || n.role != follower {
		if !n.stepDownLocked(req.Term) {
			resp.Error = "replica: cannot durably adopt term"
			return resp
		}
	}
	resp.Term = n.term
	n.leaderID = req.From
	n.lastContact = time.Now()
	if req.SnapIndex <= n.commitIndex {
		// Stale: we already hold everything it covers.
		resp.Success = true
		resp.MatchIndex = n.commitIndex
		return resp
	}
	// Validate the state against a scratch service first, then persist
	// snapshot + emptied WAL, and only then touch the live state
	// machine — so a failure at any step leaves memory, disk, and the
	// applied index agreeing on the pre-install state.
	if err := metadata.NewService().Load(bytes.NewReader(req.SnapState)); err != nil {
		resp.Error = fmt.Sprintf("replica: rejecting snapshot state: %v", err)
		return resp
	}
	snap := snapshot{LastIndex: req.SnapIndex, LastTerm: req.SnapTerm, State: req.SnapState}
	if err := saveSnapshot(n.snapPath, snap); err != nil {
		resp.Error = err.Error()
		return resp
	}
	if err := n.wal.rewrite(nil); err != nil {
		resp.Error = err.Error()
		return resp
	}
	if err := n.svc.Load(bytes.NewReader(req.SnapState)); err != nil {
		// Unreachable after the scratch validation (Load is
		// all-or-nothing over the same bytes), but refuse the install
		// rather than desync state from the applied index.
		resp.Error = fmt.Sprintf("replica: loading snapshot state: %v", err)
		return resp
	}
	n.log = nil
	n.snapIndex, n.snapTerm, n.snapState = req.SnapIndex, req.SnapTerm, req.SnapState
	n.commitIndex, n.applied = req.SnapIndex, req.SnapIndex
	n.sinceSnap = 0
	n.m.appliedIndex.Set(float64(n.applied))
	n.rotateProgressLocked()
	resp.Success = true
	resp.MatchIndex = req.SnapIndex
	return resp
}

// handleProbe acknowledges a leadership-confirmation heartbeat (the
// read-index quorum round).
func (n *Node) handleProbe(req *rpcRequest) *rpcResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &rpcResponse{Term: n.term}
	if n.closed || req.Term < n.term {
		return resp
	}
	if req.Term > n.term || n.role != follower {
		if !n.stepDownLocked(req.Term) {
			resp.Error = "replica: cannot durably adopt term"
			return resp
		}
	}
	resp.Term = n.term
	n.leaderID = req.From
	n.lastContact = time.Now()
	resp.Success = true
	return resp
}

// handleReadIndex serves a follower's read-index query: the leader
// confirms its leadership with a probe quorum and returns its commit
// frontier.
func (n *Node) handleReadIndex(req *rpcRequest) *rpcResponse {
	timeout := n.cfg.RPCTimeout / 2
	if timeout < 50*time.Millisecond {
		timeout = 50 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ri, err := n.leaderReadIndex(ctx)
	if err != nil {
		return &rpcResponse{Term: n.termNow(), Error: err.Error()}
	}
	return &rpcResponse{Term: n.termNow(), Success: true, ReadIndex: ri}
}

func (n *Node) termNow() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// --- apply loop ---

// applyLoop applies committed entries to the state machine, resolves
// proposal waiters, and compacts the log behind periodic snapshots.
//
// Each apply runs under n.mu and targets exactly index applied+1, so
// it can never interleave with a concurrent snapshot install
// (handleSnapshot mutates the service and raises applied under the
// same lock): after an install, applied == snapIndex and the next
// iteration re-reads the frontier instead of replaying entries the
// snapshot already covers. Commands are in-memory map operations, so
// holding the lock across one apply is cheap.
func (n *Node) applyLoop() {
	for {
		select {
		case <-n.stopc:
			return
		case <-n.applyKick:
		}
		for {
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				return
			}
			if n.applied >= n.commitIndex {
				if n.sinceSnap >= n.cfg.SnapshotEvery && n.applied > n.snapIndex {
					if err := n.snapshotLocked(); err != nil {
						n.logf("snapshot failed: %v", err)
					}
				}
				n.mu.Unlock()
				break
			}
			// applied >= snapIndex always holds, so the next entry (if
			// present) sits at this offset of the in-memory log.
			off := n.applied - n.snapIndex
			if off >= uint64(len(n.log)) {
				n.mu.Unlock()
				break
			}
			e := n.log[off]
			res, aerr := applyCommand(n.svc, e.Command)
			if aerr != nil {
				n.logf("apply %d: %v", e.Index, aerr)
				res = aerr
			}
			n.applied = e.Index
			n.sinceSnap++
			n.m.appliedIndex.Set(float64(n.applied))
			if w, ok := n.waiters[e.Index]; ok {
				delete(n.waiters, e.Index)
				if w.term == e.Term {
					w.ch <- res
				} else {
					w.ch <- ErrLeadershipLost
				}
			}
			n.rotateProgressLocked()
			n.mu.Unlock()
		}
	}
}

// snapshotLocked serializes the state machine at the applied index,
// persists it, and drops the applied log prefix. Callers hold n.mu;
// the apply loop is the only caller, so the service state is exactly
// the applied index.
func (n *Node) snapshotLocked() error {
	var buf bytes.Buffer
	if err := n.svc.Save(&buf); err != nil {
		return err
	}
	s := snapshot{LastIndex: n.applied, LastTerm: n.termAtLocked(n.applied), State: buf.Bytes()}
	if err := saveSnapshot(n.snapPath, s); err != nil {
		return err
	}
	drop := n.applied - n.snapIndex
	n.log = append([]Entry(nil), n.log[drop:]...)
	n.snapIndex, n.snapTerm, n.snapState = s.LastIndex, s.LastTerm, s.State
	n.sinceSnap = 0
	if err := n.wal.rewrite(n.log); err != nil {
		return err
	}
	n.m.snapshots.Inc()
	n.logf("snapshot at index %d, %d entries retained", n.snapIndex, len(n.log))
	return nil
}

// --- propose / read paths ---

// propose appends a command as leader and waits for commit + apply,
// returning the state machine's result. ErrNotLeader (with hint) when
// not leading; ErrLeadershipLost when deposed before the ack.
func (n *Node) propose(ctx context.Context, c Command) error {
	body, err := encodeCommand(c)
	if err != nil {
		return err
	}
	start := time.Now()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.role != leader {
		err := n.notLeaderLocked()
		n.mu.Unlock()
		return err
	}
	n.m.proposals.Inc()
	idx := n.lastIndexLocked() + 1
	w := waiter{term: n.term, ch: make(chan error, 1)}
	if err := n.appendLocalLocked(body); err != nil {
		n.mu.Unlock()
		n.m.proposalFailures.Inc()
		return fmt.Errorf("replica: appending proposal: %w", err)
	}
	n.waiters[idx] = w
	n.kickPeersLocked()
	n.mu.Unlock()

	select {
	case res := <-w.ch:
		if res == nil {
			n.m.commitLatency.Observe(time.Since(start).Seconds())
		} else {
			n.m.proposalFailures.Inc()
		}
		return res
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.waiters, idx)
		n.mu.Unlock()
		n.m.proposalFailures.Inc()
		return fmt.Errorf("replica: proposal at index %d unresolved: %w", idx, ctx.Err())
	case <-n.stopc:
		n.m.proposalFailures.Inc()
		return ErrClosed
	}
}

// readIndex returns a commit frontier such that serving a read after
// waiting for it to apply is linearizable: on the leader, the commit
// index after a probe-quorum confirms the term; on a follower, the
// frontier fetched from the leader.
func (n *Node) readIndex(ctx context.Context) (uint64, error) {
	n.m.readIndexes.Inc()
	n.mu.Lock()
	isLeader := n.role == leader
	leaderID := n.leaderID
	n.mu.Unlock()
	if isLeader {
		return n.leaderReadIndex(ctx)
	}
	if leaderID == 0 || leaderID == n.id {
		return 0, n.notLeaderErr()
	}
	pc := n.clients[leaderID]
	if pc == nil {
		return 0, n.notLeaderErr()
	}
	resp, err := pc.call(&rpcRequest{Kind: rpcReadIndex, From: n.id, Term: n.termNow()})
	if err != nil {
		return 0, fmt.Errorf("replica: read-index via leader %d: %w", leaderID, err)
	}
	if !resp.Success {
		return 0, n.notLeaderErr()
	}
	return resp.ReadIndex, nil
}

func (n *Node) notLeaderErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.notLeaderLocked()
}

// leaderReadIndex runs the leader half of read-index: wait until an
// entry of the current term is committed (the election no-op), take
// the commit index, then confirm the term against a probe quorum.
func (n *Node) leaderReadIndex(ctx context.Context) (uint64, error) {
	var ri, term uint64
	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return 0, ErrClosed
		}
		if n.role != leader {
			err := n.notLeaderLocked()
			n.mu.Unlock()
			return 0, err
		}
		if n.termAtLocked(n.commitIndex) == n.term {
			ri, term = n.commitIndex, n.term
			n.mu.Unlock()
			break
		}
		ch := n.progress
		n.mu.Unlock()
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("replica: waiting for term commit: %w", ctx.Err())
		case <-n.stopc:
			return 0, ErrClosed
		case <-ch:
		}
	}
	if err := n.confirmLeadership(ctx, term); err != nil {
		return 0, err
	}
	return ri, nil
}

// confirmLeadership fans a probe to every peer and succeeds when a
// majority (self included) acknowledges the term — the guarantee that
// no newer leader has formed and our commit frontier is current.
func (n *Node) confirmLeadership(ctx context.Context, term uint64) error {
	if len(n.peers) == 0 {
		return nil
	}
	acks := make(chan bool, len(n.peers))
	req := &rpcRequest{Kind: rpcProbe, From: n.id, Term: term}
	for _, p := range n.peers {
		pc := n.clients[p.ID]
		n.spawn(func() {
			resp, err := pc.call(req)
			ok := err == nil && resp.Term == term && resp.Success
			if err == nil && resp.Term > term {
				n.mu.Lock()
				if !n.closed && resp.Term > n.term {
					n.stepDownLocked(resp.Term)
				}
				n.mu.Unlock()
			}
			acks <- ok
		})
	}
	need := n.quorum() - 1 // self already counts
	got, failed := 0, 0
	for got < need {
		if failed > len(n.peers)-need {
			return ErrNoQuorum
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("replica: confirming leadership: %w", ctx.Err())
		case <-n.stopc:
			return ErrClosed
		case ok := <-acks:
			if ok {
				got++
			} else {
				failed++
			}
		}
	}
	return nil
}

// waitApplied blocks until the state machine has applied at least
// idx.
func (n *Node) waitApplied(ctx context.Context, idx uint64) error {
	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return ErrClosed
		}
		if n.applied >= idx {
			n.mu.Unlock()
			return nil
		}
		ch := n.progress
		n.mu.Unlock()
		select {
		case <-ctx.Done():
			return fmt.Errorf("replica: waiting for apply of %d: %w", idx, ctx.Err())
		case <-n.stopc:
			return ErrClosed
		case <-ch:
		}
	}
}
