package replica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func testEntry(idx, term uint64, payload string) Entry {
	return Entry{Index: idx, Term: term, Command: []byte(payload)}
}

func TestEntryRecordRoundTrip(t *testing.T) {
	entries := []Entry{
		testEntry(1, 1, `{"op":"noop"}`),
		testEntry(2, 1, ""),
		testEntry(3, 4, string(bytes.Repeat([]byte{0xAB}, 1<<12))),
	}
	var buf []byte
	for _, e := range entries {
		buf = appendEntryRecord(buf, e)
	}
	r := bytes.NewReader(buf)
	for i, want := range entries {
		got, err := readEntryRecord(r)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got.Index != want.Index || got.Term != want.Term || !bytes.Equal(got.Command, want.Command) {
			t.Fatalf("entry %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := readEntryRecord(r); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF at end, got %v", err)
	}
}

// TestEntryRecordTruncation cuts a record at every possible byte
// offset: offset 0 must read as a clean EOF (a record boundary),
// every other cut must surface ErrCorruptEntry — the signal openWAL
// uses to truncate a torn tail.
func TestEntryRecordTruncation(t *testing.T) {
	rec := appendEntryRecord(nil, testEntry(7, 3, "payload"))
	for cut := 0; cut < len(rec); cut++ {
		_, err := readEntryRecord(bytes.NewReader(rec[:cut]))
		if cut == 0 {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("cut 0: want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, ErrCorruptEntry) {
			t.Fatalf("cut %d: want ErrCorruptEntry, got %v", cut, err)
		}
	}
}

// TestEntryRecordCorruption flips one bit at every position; each
// flip must be rejected (header fields are covered by the trailing
// CRC, as is the payload).
func TestEntryRecordCorruption(t *testing.T) {
	rec := appendEntryRecord(nil, testEntry(9, 2, "abcdef"))
	for pos := range rec {
		mut := append([]byte(nil), rec...)
		mut[pos] ^= 0x01
		got, err := readEntryRecord(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip at %d accepted: %+v", pos, got)
		}
	}
}

func TestEntryRecordRejectsZeroIndexAndTerm(t *testing.T) {
	for _, e := range []Entry{testEntry(0, 3, "x"), testEntry(3, 0, "x")} {
		rec := appendEntryRecord(nil, e)
		if _, err := readEntryRecord(bytes.NewReader(rec)); !errors.Is(err, ErrCorruptEntry) {
			t.Fatalf("entry %+v: want ErrCorruptEntry, got %v", e, err)
		}
	}
}

// TestEntryRecordLengthCap crafts a header claiming an absurd payload
// length; the reader must reject it before allocating.
func TestEntryRecordLengthCap(t *testing.T) {
	var hdr [entryHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:], 1)
	binary.BigEndian.PutUint64(hdr[8:], 1)
	binary.BigEndian.PutUint32(hdr[16:], maxCommandBytes+1)
	if _, err := readEntryRecord(bytes.NewReader(hdr[:])); !errors.Is(err, ErrCorruptEntry) {
		t.Fatalf("want ErrCorruptEntry for oversized length, got %v", err)
	}
}

func TestValidateSequence(t *testing.T) {
	ok := []Entry{testEntry(4, 2, ""), testEntry(5, 2, ""), testEntry(6, 3, "")}
	if err := validateSequence(3, ok); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	if err := validateSequence(0, nil); err != nil {
		t.Fatalf("empty sequence rejected: %v", err)
	}
	bad := []struct {
		name string
		prev uint64
		in   []Entry
	}{
		{"gap after prev", 3, []Entry{testEntry(5, 2, "")}},
		{"duplicate index", 3, []Entry{testEntry(4, 2, ""), testEntry(4, 2, "")}},
		{"non-contiguous", 3, []Entry{testEntry(4, 2, ""), testEntry(6, 2, "")}},
		{"rewinding index", 3, []Entry{testEntry(4, 2, ""), testEntry(3, 2, "")}},
		{"decreasing term", 3, []Entry{testEntry(4, 3, ""), testEntry(5, 2, "")}},
		{"zero index", 0, []Entry{{Index: 0, Term: 1}}},
		{"zero term", 0, []Entry{{Index: 1, Term: 0}}},
	}
	for _, tc := range bad {
		if err := validateSequence(tc.prev, tc.in); !errors.Is(err, ErrBadSequence) {
			t.Errorf("%s: want ErrBadSequence, got %v", tc.name, err)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := snapshot{LastIndex: 42, LastTerm: 7, State: []byte(`{"format_version":1}`)}
	raw, err := encodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastIndex != s.LastIndex || got.LastTerm != s.LastTerm || !bytes.Equal(got.State, s.State) {
		t.Fatalf("got %+v want %+v", got, s)
	}
}

func TestSnapshotMalformed(t *testing.T) {
	good, err := encodeSnapshot(snapshot{LastIndex: 3, LastTerm: 2, State: []byte("state")})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty", nil},
		{"short", good[:10]},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"truncated tail", good[:len(good)-3]},
		{"trailing garbage", append(append([]byte(nil), good...), 0)},
	}
	// Oversized length field.
	big := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(big[20:24], maxSnapshotBytes+1)
	cases = append(cases, struct {
		name string
		raw  []byte
	}{"oversized length", big})
	// Index/term zero mismatch (index set, term zero).
	mix := snapshot{LastIndex: 5, LastTerm: 0, State: []byte("s")}
	mixRaw, err := encodeSnapshot(mix)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name string
		raw  []byte
	}{"index without term", mixRaw})
	for _, tc := range cases {
		if _, err := decodeSnapshot(tc.raw); !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("%s: want ErrCorruptSnapshot, got %v", tc.name, err)
		}
	}
	// Every single-bit flip must be rejected too.
	for pos := range good {
		mut := append([]byte(nil), good...)
		mut[pos] ^= 0x80
		if _, err := decodeSnapshot(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
}

func FuzzReadEntryRecord(f *testing.F) {
	f.Add(appendEntryRecord(nil, testEntry(1, 1, "hello")))
	f.Add(appendEntryRecord(nil, testEntry(1<<40, 9, "")))
	f.Add(appendEntryRecord(nil, testEntry(2, 1, `{"op":"set-state","name":"s1:7070","state":"draining"}`)))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, entryHeaderLen+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := readEntryRecord(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must re-encode to a prefix of the input
		// (the reader stops at one record) and round-trip identically.
		rec := appendEntryRecord(nil, e)
		if !bytes.HasPrefix(data, rec) {
			t.Fatalf("accepted record is not an input prefix: %+v", e)
		}
		back, err := readEntryRecord(bytes.NewReader(rec))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Index != e.Index || back.Term != e.Term || !bytes.Equal(back.Command, e.Command) {
			t.Fatalf("round trip changed entry: %+v vs %+v", back, e)
		}
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	seed, _ := encodeSnapshot(snapshot{LastIndex: 1, LastTerm: 1, State: []byte("x")})
	f.Add(seed)
	f.Add([]byte("RMS1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		raw, err := encodeSnapshot(s)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		if !bytes.Equal(raw, data) {
			t.Fatalf("round trip changed bytes")
		}
	})
}
