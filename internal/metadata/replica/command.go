package replica

import (
	"encoding/json"
	"fmt"

	"repro/internal/metadata"
)

// Command is one deterministic state-machine operation: the
// metadata.Store mutations re-expressed as log payloads. Every node
// applies the same command sequence to its metadata.Service, so the
// services converge byte-for-byte (Service ops are deterministic —
// version bumps derive from stored state, never from clocks).
//
// Reads are deliberately absent: lookups are served from the local
// service after a read-index check, and locks are leader-local
// runtime state (see Node.LockRead).
type Command struct {
	Op      string            `json:"op"` // opNoop, opCreate, opUpdate, opDelete, opRegister, opUnregister, opSetState
	Segment *metadata.Segment `json:"segment,omitempty"`
	Server  *metadata.Server  `json:"server,omitempty"`
	Name    string            `json:"name,omitempty"`
	// State carries the lifecycle state for opSetState.
	State string `json:"state,omitempty"`
}

// Command ops. opNoop is appended by a freshly elected leader so its
// term commits an entry immediately (the standard guard that lets
// read-index confirm the commit frontier).
const (
	opNoop       = "noop"
	opCreate     = "create"
	opUpdate     = "update"
	opDelete     = "delete"
	opRegister   = "register"
	opUnregister = "unregister"
	opSetState   = "set-state"
)

// encodeCommand renders a command for the log.
func encodeCommand(c Command) ([]byte, error) {
	body, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("replica: encoding command: %w", err)
	}
	if len(body) > maxCommandBytes {
		return nil, fmt.Errorf("replica: command %d bytes exceeds cap", len(body))
	}
	return body, nil
}

// applyCommand decodes and applies one committed log payload to svc,
// returning the operation's result error (e.g. ErrSegmentExists),
// which the proposing node relays to the client. A payload that does
// not decode is a corrupt log, not an operation failure.
func applyCommand(svc *metadata.Service, payload []byte) (error, error) {
	var c Command
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("replica: decoding committed command: %w", err)
	}
	switch c.Op {
	case opNoop:
		return nil, nil
	case opCreate:
		if c.Segment == nil {
			return nil, fmt.Errorf("replica: %s command without segment", c.Op)
		}
		return svc.CreateSegment(*c.Segment), nil
	case opUpdate:
		if c.Segment == nil {
			return nil, fmt.Errorf("replica: %s command without segment", c.Op)
		}
		return svc.UpdateSegment(*c.Segment), nil
	case opDelete:
		return svc.DeleteSegment(c.Name), nil
	case opRegister:
		if c.Server == nil {
			return nil, fmt.Errorf("replica: %s command without server", c.Op)
		}
		return svc.RegisterServer(*c.Server), nil
	case opUnregister:
		return svc.UnregisterServer(c.Name), nil
	case opSetState:
		// SetServerState is deterministic (a pure record mutation), so
		// its error surface — ErrServerNotFound, invalid state —
		// replicates like any other command result.
		return svc.SetServerState(c.Name, metadata.ServerState(c.State)), nil
	default:
		return nil, fmt.Errorf("replica: unknown command op %q", c.Op)
	}
}
