// Package replica makes the metadata plane survive node failure: a
// 3- or 5-node group runs a stdlib-only consensus log (term-based
// leader election with randomized timeouts, majority-acknowledged log
// replication, durable snapshot/restore on the metadata.Service
// snapshot format) and applies the metadata.Store operations as
// deterministic log commands. Any node accepts client requests: the
// leader serves everything, followers serve reads after a read-index
// check and bounce writes to the leader via NotLeaderError hints that
// the metadata NetworkServer proxy and failover RemoteClient both
// understand. The paper's framework (Ch. 4) assumed one well-built
// metadata server; this package removes that last single point of
// failure so a leader crash is a routine, recoverable event.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Entry is one record of the consensus log: a command payload stamped
// with the index and term that position it.
type Entry struct {
	Index   uint64 `json:"i"`
	Term    uint64 `json:"t"`
	Command []byte `json:"c"`
}

// Log-record codec errors.
var (
	// ErrCorruptEntry marks a log record whose framing or checksum is
	// invalid (torn tail, bit rot, truncation).
	ErrCorruptEntry = errors.New("replica: corrupt log entry")
	// ErrBadSequence marks a decoded entry batch whose indices or
	// terms are inconsistent (duplicate or non-contiguous indices,
	// decreasing terms, zero index/term).
	ErrBadSequence = errors.New("replica: inconsistent entry sequence")
)

// maxCommandBytes bounds one command payload, mirroring the metadata
// wire protocol's frame cap.
const maxCommandBytes = 16 << 20

// entryHeaderLen is the fixed record prefix: index, term, payload
// length. A CRC-32C of header+payload trails the record.
const entryHeaderLen = 8 + 8 + 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendEntryRecord appends the durable binary framing of e:
// [index:8][term:8][len:4][command][crc32c:4].
func appendEntryRecord(buf []byte, e Entry) []byte {
	var hdr [entryHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:], e.Index)
	binary.BigEndian.PutUint64(hdr[8:], e.Term)
	binary.BigEndian.PutUint32(hdr[16:], uint32(len(e.Command)))
	start := len(buf)
	buf = append(buf, hdr[:]...)
	buf = append(buf, e.Command...)
	sum := crc32.Checksum(buf[start:], crcTable)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], sum)
	return append(buf, tail[:]...)
}

// readEntryRecord decodes one record from r. io.EOF is returned
// cleanly at a record boundary; a partial or corrupt record returns
// ErrCorruptEntry (wrapped), which a WAL replay treats as a torn
// tail.
func readEntryRecord(r io.Reader) (Entry, error) {
	var hdr [entryHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Entry{}, io.EOF
		}
		return Entry{}, fmt.Errorf("%w: truncated header: %w", ErrCorruptEntry, err)
	}
	n := binary.BigEndian.Uint32(hdr[16:])
	if n > maxCommandBytes {
		return Entry{}, fmt.Errorf("%w: command length %d exceeds cap", ErrCorruptEntry, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Entry{}, fmt.Errorf("%w: truncated command: %w", ErrCorruptEntry, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return Entry{}, fmt.Errorf("%w: truncated checksum: %w", ErrCorruptEntry, err)
	}
	sum := crc32.Checksum(hdr[:], crcTable)
	sum = crc32.Update(sum, crcTable, body)
	if sum != binary.BigEndian.Uint32(tail[:]) {
		return Entry{}, fmt.Errorf("%w: checksum mismatch", ErrCorruptEntry)
	}
	e := Entry{
		Index:   binary.BigEndian.Uint64(hdr[0:]),
		Term:    binary.BigEndian.Uint64(hdr[8:]),
		Command: body,
	}
	if e.Index == 0 || e.Term == 0 {
		return Entry{}, fmt.Errorf("%w: zero index or term", ErrCorruptEntry)
	}
	return e, nil
}

// validateSequence checks that a batch of entries is a well-formed
// log slice: contiguous ascending indices and non-decreasing terms,
// optionally anchored to follow prevIndex. Replication handlers run
// it on every inbound batch so a buggy or hostile peer cannot plant
// duplicate indices or rewinding terms in the log.
func validateSequence(prevIndex uint64, entries []Entry) error {
	next := prevIndex + 1
	var lastTerm uint64
	for i, e := range entries {
		if e.Index == 0 || e.Term == 0 {
			return fmt.Errorf("%w: entry %d has zero index or term", ErrBadSequence, i)
		}
		if e.Index != next {
			return fmt.Errorf("%w: entry %d has index %d, want %d", ErrBadSequence, i, e.Index, next)
		}
		if e.Term < lastTerm {
			return fmt.Errorf("%w: entry %d term %d decreases from %d", ErrBadSequence, i, e.Term, lastTerm)
		}
		lastTerm = e.Term
		next++
	}
	return nil
}
