package replica

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metadata"
)

// TestSingleNodeGroup: a one-member group degenerates to a durable
// standalone server — instant self-election, every write quorum-free
// but WAL-durable, state intact across a restart.
func TestSingleNodeGroup(t *testing.T) {
	c := newCluster(t, 1)
	c.startAll()
	id := c.waitLeader()
	n := c.get(id).node

	if err := n.CreateSegment(testSegment("solo")); err != nil {
		t.Fatal(err)
	}
	seg, err := n.LookupSegment("solo")
	if err != nil || seg.Name != "solo" {
		t.Fatalf("lookup = %+v, %v", seg, err)
	}
	if err := n.RegisterServer(metadata.Server{Addr: "s1:1"}); err != nil {
		t.Fatal(err)
	}

	c.stop(id)
	c.start(id)
	c.waitLeader()
	n = c.get(id).node
	if _, err := n.LookupSegment("solo"); err != nil {
		t.Fatalf("segment lost across restart: %v", err)
	}
	if srvs := n.Servers(); len(srvs) != 1 {
		t.Fatalf("servers lost across restart: %v", srvs)
	}
}

// TestThreeNodeReplication: writes through the leader's API are
// readable through every member (read-index reads), and all members
// converge to the same applied frontier.
func TestThreeNodeReplication(t *testing.T) {
	c := newCluster(t, 3)
	c.startAll()
	lead := c.waitLeader()
	ln := c.get(lead).node

	for i := 0; i < 5; i++ {
		if err := ln.CreateSegment(testSegment(fmt.Sprintf("seg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ln.CreateSegment(testSegment("seg-0")); !errors.Is(err, metadata.ErrSegmentExists) {
		t.Fatalf("duplicate create through the log = %v, want ErrSegmentExists", err)
	}

	applied := ln.Status().Applied
	for _, p := range c.peers {
		c.waitApplied(p.ID, applied)
		n := c.get(p.ID).node
		for i := 0; i < 5; i++ {
			if _, err := n.LookupSegment(fmt.Sprintf("seg-%d", i)); err != nil {
				t.Fatalf("node %d missing seg-%d: %v", p.ID, i, err)
			}
		}
		if names := n.ListSegments(); len(names) != 5 {
			t.Fatalf("node %d lists %d segments", p.ID, len(names))
		}
	}
}

// TestFollowerWriteProxy: a client wired to a single follower still
// gets writes through — the follower's network server forwards them
// to the leader and relays the answer.
func TestFollowerWriteProxy(t *testing.T) {
	c := newCluster(t, 3)
	c.startAll()
	lead := c.waitLeader()
	var followerAddr string
	for _, p := range c.peers {
		if p.ID != lead {
			followerAddr = p.ClientAddr
			break
		}
	}

	client, err := metadata.DialRemote(followerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.CreateSegment(testSegment("proxied")); err != nil {
		t.Fatalf("write via follower = %v", err)
	}
	if _, err := client.LookupSegment("proxied"); err != nil {
		t.Fatalf("read via follower = %v", err)
	}
	// The error surface must survive the proxy hop too.
	if err := client.CreateSegment(testSegment("proxied")); !errors.Is(err, metadata.ErrSegmentExists) {
		t.Fatalf("duplicate via follower = %v, want ErrSegmentExists", err)
	}
}

// TestLeaderLocksRedirectOnFollower: lock ops are leader-local; a
// follower node answers NotLeaderError carrying the leader hint
// rather than proxying.
func TestLeaderLocksRedirectOnFollower(t *testing.T) {
	c := newCluster(t, 3)
	c.startAll()
	lead := c.waitLeader()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	unlock, err := c.get(lead).node.LockWrite(ctx, "seg")
	if err != nil {
		t.Fatalf("leader lock = %v", err)
	}
	unlock()

	for _, p := range c.peers {
		if p.ID == lead {
			continue
		}
		// The leader hint rides the heartbeat: a follower asked before
		// the first AppendEntries of the term arrives legitimately
		// answers "leader unknown", so poll until the hint lands.
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, err := c.get(p.ID).node.LockWrite(ctx, "seg")
			if !errors.Is(err, metadata.ErrNotLeader) {
				t.Fatalf("follower %d lock = %v, want ErrNotLeader", p.ID, err)
			}
			var nle *metadata.NotLeaderError
			if errors.As(err, &nle) && nle.Leader == c.peer(lead).ClientAddr {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower %d hint = %v, want leader client addr", p.ID, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestSnapshotCompactionAndRestartCatchUp: a member that missed the
// leader's snapshot horizon is caught up by snapshot install plus the
// remaining log tail after it restarts.
func TestSnapshotCompactionAndRestartCatchUp(t *testing.T) {
	c := newCluster(t, 3)
	c.snapshotEvery = 8
	c.startAll()
	lead := c.waitLeader()
	ln := c.get(lead).node

	if lead == 3 {
		t.Skip("node 3 leads; partition-free catch-up covered by chaos tests")
	}
	c.stop(3)
	for i := 0; i < 30; i++ {
		if err := ln.CreateSegment(testSegment(fmt.Sprintf("deep-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Let the leader compact past what node 3 holds.
	deadline := time.Now().Add(5 * time.Second)
	for ln.Status().SnapIndex == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ln.Status().SnapIndex == 0 {
		t.Fatal("leader never compacted")
	}

	c.start(3)
	c.waitApplied(3, ln.Status().Applied)
	n3 := c.get(3).node
	st := n3.Status()
	if st.SnapIndex == 0 {
		t.Fatalf("node 3 caught up without a snapshot install: %+v", st)
	}
	if _, err := n3.LookupSegment("deep-29"); err != nil {
		t.Fatalf("node 3 read after catch-up = %v", err)
	}
}

// TestClusterRestartPreservesState: stop every member, start every
// member; acknowledged writes must all survive (they live in a
// majority of WALs).
func TestClusterRestartPreservesState(t *testing.T) {
	c := newCluster(t, 3)
	c.startAll()
	lead := c.waitLeader()
	ln := c.get(lead).node
	for i := 0; i < 8; i++ {
		if err := ln.CreateSegment(testSegment(fmt.Sprintf("stable-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.stopAll()
	c.startAll()
	lead = c.waitLeader()
	n := c.get(lead).node
	for i := 0; i < 8; i++ {
		if _, err := n.LookupSegment(fmt.Sprintf("stable-%d", i)); err != nil {
			t.Fatalf("stable-%d lost across full restart: %v", i, err)
		}
	}
}

// TestStepDownRefusesUndurableTerm: a node that cannot persist a
// newly seen higher term must reject the RPC at its old term rather
// than acknowledge at a term that would roll back across a crash
// (and permit a second vote in it).
func TestStepDownRefusesUndurableTerm(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(Config{ID: 1, Peers: []Peer{{ID: 1}, {ID: 2}}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Point hard-state persistence into a missing directory so the
	// atomic save fails.
	orig := n.hsPath
	n.hsPath = filepath.Join(dir, "missing", "state.json")

	req := &rpcRequest{Kind: rpcVote, From: 2, Term: 7}
	resp := n.handleVote(req)
	if resp.VoteGranted {
		t.Fatal("vote granted despite undurable term adoption")
	}
	if resp.Error == "" {
		t.Fatal("no error reported for refused term adoption")
	}
	if got := n.termNow(); got != 0 {
		t.Fatalf("in-memory term = %d after refused adoption, want 0", got)
	}
	if hs, err := loadHardState(orig); err != nil || hs.Term != 0 {
		t.Fatalf("durable hard state = %+v, %v; want zero term", hs, err)
	}

	// With persistence healed the same request must go through.
	n.hsPath = orig
	resp = n.handleVote(req)
	if !resp.VoteGranted || resp.Term != 7 {
		t.Fatalf("healed vote = %+v, want grant at term 7", resp)
	}
	if hs, err := loadHardState(orig); err != nil || hs.Term != 7 || hs.VotedFor != 2 {
		t.Fatalf("durable hard state = %+v, %v; want term 7 vote for 2", hs, err)
	}
}

// TestConflictRewriteFailureKeepsOldLog: when the conflict-truncation
// WAL rewrite fails, the in-memory log must keep the old suffix so
// memory and disk agree — not adopt a suffix the disk never saw.
func TestConflictRewriteFailureKeepsOldLog(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(Config{ID: 1, Peers: []Peer{{ID: 1}, {ID: 2}}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	noop, err := encodeCommand(Command{Op: opNoop})
	if err != nil {
		t.Fatal(err)
	}
	ents := func(term uint64, count int) []Entry {
		out := make([]Entry, count)
		for i := range out {
			out[i] = Entry{Index: uint64(i + 1), Term: term, Command: noop}
		}
		return out
	}

	resp := n.handleAppend(&rpcRequest{Kind: rpcAppend, From: 2, Term: 1, Entries: ents(1, 3)})
	if !resp.Success {
		t.Fatalf("initial append = %+v", resp)
	}

	// Break the WAL rewrite path, then deliver a conflicting suffix.
	walPath := n.wal.path
	n.wal.path = filepath.Join(dir, "missing", "wal.log")
	resp = n.handleAppend(&rpcRequest{Kind: rpcAppend, From: 2, Term: 2, Entries: ents(2, 2)})
	if resp.Success || resp.Error == "" {
		t.Fatalf("conflicting append with broken WAL = %+v, want error", resp)
	}
	n.mu.Lock()
	logLen, t1 := len(n.log), n.termAtLocked(1)
	n.mu.Unlock()
	if logLen != 3 || t1 != 1 {
		t.Fatalf("in-memory log mutated on failed rewrite: len=%d termAt(1)=%d", logLen, t1)
	}

	// Disk must agree with memory: closing and replaying the WAL
	// yields the original three term-1 entries.
	n.wal.path = walPath
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	w, replayed, err := openWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(replayed) != 3 || replayed[0].Term != 1 {
		t.Fatalf("WAL replay = %d entries (term %d), want 3 of term 1",
			len(replayed), replayed[0].Term)
	}
}
