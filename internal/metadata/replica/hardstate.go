package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/metadata"
)

// hardState is the consensus state that must survive a restart: the
// highest term seen and who received this node's vote in it. It is
// persisted (fsync + atomic rename) before any RPC reply that
// promises either, so a rebooted node can never vote twice in one
// term or regress its term.
type hardState struct {
	Term     uint64 `json:"term"`
	VotedFor int    `json:"voted_for"`
}

// saveHardState atomically writes hs to path.
func saveHardState(path string, hs hardState) error {
	err := metadata.SaveFileAtomic(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(hs)
	})
	if err != nil {
		return fmt.Errorf("replica: saving hard state: %w", err)
	}
	return nil
}

// loadHardState reads path; a missing file is the zero state.
func loadHardState(path string) (hardState, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return hardState{}, nil
		}
		return hardState{}, fmt.Errorf("replica: opening hard state: %w", err)
	}
	defer f.Close()
	var hs hardState
	if err := json.NewDecoder(f).Decode(&hs); err != nil {
		return hardState{}, fmt.Errorf("replica: decoding hard state: %w", err)
	}
	return hs, nil
}
