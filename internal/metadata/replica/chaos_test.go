package replica

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metadata"
)

// Chaos suite: the failure drills the replicated metadata plane
// exists for. The invariant asserted throughout is the tentpole
// guarantee — no acknowledged write is ever lost, under leader
// kills, partitions, and sustained fault injection on the consensus
// links. Writes whose result was unknown (leadership lost mid-commit,
// timeouts) are allowed to land or not; acknowledged ones are not
// negotiable.

// failoverClient dials the whole group with fast retry tuning.
func failoverClient(t *testing.T, c *cluster) *metadata.RemoteClient {
	t.Helper()
	client, err := metadata.DialRemoteMulti(c.clientAddrs(), metadata.RemoteOptions{
		DialTimeout:    time.Second,
		MaxRetries:     8,
		RetryBaseDelay: 10 * time.Millisecond,
		RetryMaxDelay:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// verifyAcked asserts every acknowledged segment name is readable
// through the group. Individual lookups retry under a deadline: a
// transient read failure (read-index probe severed by still-active
// fault injection) is not loss — only a persistently unreadable
// acked write is.
func verifyAcked(t *testing.T, c *cluster, acked []string) {
	t.Helper()
	c.waitLeader()
	client := failoverClient(t, c)
	for _, name := range acked {
		deadline := time.Now().Add(10 * time.Second)
		var err error
		for {
			if _, err = client.LookupSegment(name); err == nil {
				break
			}
			if !time.Now().Before(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			t.Errorf("acked write %q lost: %v", name, err)
		}
	}
}

// TestChaosLeaderKillClientFailover kills the leader mid-stream —
// twice — while a failover client keeps writing through the group.
// Every acknowledged write must survive re-election, and the killed
// members must rejoin and catch up.
func TestChaosLeaderKillClientFailover(t *testing.T) {
	c := newCluster(t, 3)
	c.startAll()
	c.waitLeader()
	client := failoverClient(t, c)

	var acked []string
	killed := make([]int, 0, 2)
	for i := 0; i < 30; i++ {
		if i == 10 || i == 20 {
			if len(killed) > 0 {
				// Bring the previous victim back first so a quorum
				// always survives the next kill.
				c.start(killed[len(killed)-1])
			}
			lead := c.waitLeader()
			c.stop(lead)
			killed = append(killed, lead)
		}
		name := fmt.Sprintf("kill-%d", i)
		err := client.CreateSegment(testSegment(name))
		switch {
		case err == nil:
			acked = append(acked, name)
		case errors.Is(err, metadata.ErrSegmentExists):
			// A retried create whose first attempt landed: the write is
			// durable, count it.
			acked = append(acked, name)
		default:
			t.Logf("write %s unacknowledged: %v", name, err)
		}
	}
	if len(acked) < 20 {
		t.Fatalf("only %d/30 writes acknowledged through two leader kills", len(acked))
	}
	verifyAcked(t, c, acked)

	// The killed members rejoin and converge.
	for _, id := range killed {
		if c.get(id) == nil {
			c.start(id)
		}
	}
	lead := c.waitLeader()
	applied := c.get(lead).node.Status().Applied
	for _, id := range killed {
		c.waitApplied(id, applied)
	}
}

// TestChaosLeaderKillMidCommit runs concurrent writers while the
// leader dies, maximizing the chance of kills landing between log
// append and commit acknowledgement.
func TestChaosLeaderKillMidCommit(t *testing.T) {
	c := newCluster(t, 3)
	c.startAll()
	c.waitLeader()

	const writers = 3
	const perWriter = 10
	var mu sync.Mutex
	var acked []string
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writer := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := failoverClient(t, c)
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("mid-%d-%d", writer, i)
				err := client.CreateSegment(testSegment(name))
				if err == nil || errors.Is(err, metadata.ErrSegmentExists) {
					mu.Lock()
					acked = append(acked, name)
					mu.Unlock()
				}
			}
		}()
	}
	// Kill the leader while the writers are in flight.
	time.Sleep(30 * time.Millisecond)
	lead := c.waitLeader()
	c.stop(lead)
	wg.Wait()

	mu.Lock()
	got := append([]string(nil), acked...)
	mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no writes acknowledged at all")
	}
	verifyAcked(t, c, got)
}

// TestChaosPartitionedFollower cuts one follower off the consensus
// plane: the majority keeps serving, the islanded follower refuses to
// serve stale reads, and after healing it converges.
func TestChaosPartitionedFollower(t *testing.T) {
	c := newCluster(t, 3)
	c.startAll()
	lead := c.waitLeader()
	var follower int
	for _, p := range c.peers {
		if p.ID != lead {
			follower = p.ID
			break
		}
	}
	c.part.isolate(follower, true)

	ln := c.get(lead).node
	for i := 0; i < 5; i++ {
		if err := ln.CreateSegment(testSegment(fmt.Sprintf("part-%d", i))); err != nil {
			t.Fatalf("write with one follower partitioned = %v", err)
		}
	}

	// The partitioned follower must not serve the read locally — its
	// read-index round cannot reach the leader.
	fn := c.get(follower).node
	if _, err := fn.LookupSegment("part-0"); err == nil {
		t.Fatal("partitioned follower served a read it cannot certify")
	}

	c.part.isolate(follower, false)
	c.waitApplied(follower, ln.Status().Applied)
	if _, err := fn.LookupSegment("part-4"); err != nil {
		t.Fatalf("healed follower read = %v", err)
	}
}

// TestChaosPartitionedLeaderReelection cuts the leader off instead:
// the remaining majority elects a fresh leader and keeps accepting
// writes; the deposed leader rejoins on heal and converges without
// losing anything acknowledged.
func TestChaosPartitionedLeaderReelection(t *testing.T) {
	c := newCluster(t, 3)
	c.startAll()
	old := c.waitLeader()
	c.part.isolate(old, true)

	// Wait for a majority-side leader (the old one may still believe).
	deadline := time.Now().Add(10 * time.Second)
	newLead := 0
	for newLead == 0 && time.Now().Before(deadline) {
		for _, p := range c.peers {
			if p.ID != old && c.get(p.ID).node.IsLeader() {
				newLead = p.ID
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if newLead == 0 {
		t.Fatal("no majority-side re-election")
	}
	nl := c.get(newLead).node
	if err := nl.CreateSegment(testSegment("after-partition")); err != nil {
		t.Fatalf("write on majority side = %v", err)
	}

	c.part.isolate(old, false)
	c.waitApplied(old, nl.Status().Applied)
	if _, err := c.get(old).node.LookupSegment("after-partition"); err != nil {
		t.Fatalf("healed old leader read = %v", err)
	}
}

// TestChaosChurnUnderFaults is the full drill: consensus links under
// seeded fault injection (latency, resets, short reads), concurrent
// failover clients, and rolling member restarts. Soak mode
// (ROBUSTORE_SOAK=1) scales the churn up for the nightly run.
func TestChaosChurnUnderFaults(t *testing.T) {
	perWriter := 8
	restarts := 2
	if os.Getenv("ROBUSTORE_SOAK") != "" {
		perWriter = 60
		restarts = 10
	}

	c := newCluster(t, 3)
	inj := faultinject.New(42, faultinject.Config{
		Latency:       time.Millisecond,
		ResetProb:     0.04,
		ShortReadProb: 0.02,
	}, nil)
	c.wrapRaft = func(ln net.Listener) net.Listener {
		return faultinject.WrapListener(ln, inj)
	}
	c.startAll()
	c.waitLeader()

	const writers = 3
	var mu sync.Mutex
	var acked []string
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writer := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := failoverClient(t, c)
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("churn-%d-%d", writer, i)
				err := client.CreateSegment(testSegment(name))
				if err == nil || errors.Is(err, metadata.ErrSegmentExists) {
					mu.Lock()
					acked = append(acked, name)
					mu.Unlock()
				}
			}
		}()
	}
	// Rolling restarts: kill whoever leads, let the group re-elect,
	// bring the member back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < restarts; r++ {
			select {
			case <-stop:
				return
			case <-time.After(150 * time.Millisecond):
			}
			lead := c.waitLeader()
			c.stop(lead)
			c.waitLeader()
			c.start(lead)
		}
	}()
	wgDone := make(chan struct{})
	go func() { defer close(wgDone); wg.Wait() }()
	select {
	case <-wgDone:
	case <-time.After(90 * time.Second):
		close(stop)
		<-wgDone
		t.Fatal("churn did not finish in time")
	}
	close(stop)

	mu.Lock()
	got := append([]string(nil), acked...)
	mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no writes acknowledged under churn")
	}
	t.Logf("churn: %d/%d writes acknowledged across %d leader restarts", len(got), writers*perWriter, restarts)
	verifyAcked(t, c, got)

	// Every member converges once the storm stops.
	lead := c.waitLeader()
	applied := c.get(lead).node.Status().Applied
	for _, p := range c.peers {
		c.waitApplied(p.ID, applied)
	}
}
