package replica

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/metadata"
)

func TestCommandCodecSetState(t *testing.T) {
	cmd := Command{Op: opSetState, Name: "srv-1:7070", State: string(metadata.ServerDraining)}
	payload, err := encodeCommand(cmd)
	if err != nil {
		t.Fatal(err)
	}
	svc := metadata.NewService()
	if err := svc.RegisterServer(metadata.Server{Addr: "srv-1:7070"}); err != nil {
		t.Fatal(err)
	}
	opErr, fatalErr := applyCommand(svc, payload)
	if fatalErr != nil || opErr != nil {
		t.Fatalf("apply: op=%v fatal=%v", opErr, fatalErr)
	}
	if got := svc.Servers()[0].State; got != metadata.ServerDraining {
		t.Fatalf("state after apply = %q", got)
	}
	// The op's error surface replicates as a command result, not a log
	// fault: an unknown server is the proposer's problem.
	missing, _ := encodeCommand(Command{Op: opSetState, Name: "ghost", State: string(metadata.ServerRemoved)})
	opErr, fatalErr = applyCommand(svc, missing)
	if fatalErr != nil {
		t.Fatalf("unknown-server apply treated as log fault: %v", fatalErr)
	}
	if !errors.Is(opErr, metadata.ErrServerNotFound) {
		t.Fatalf("opErr = %v, want ErrServerNotFound", opErr)
	}
	bad, _ := encodeCommand(Command{Op: opSetState, Name: "srv-1:7070", State: "sideways"})
	opErr, fatalErr = applyCommand(svc, bad)
	if fatalErr != nil || opErr == nil {
		t.Fatalf("invalid state: op=%v fatal=%v, want op error", opErr, fatalErr)
	}
}

// TestEntryRecordSetStateTruncation runs the byte-by-byte truncation
// sweep over a WAL record carrying a real lifecycle command, the same
// guarantee the generic sweep proves for synthetic payloads: a torn
// tail is always ErrCorruptEntry, a clean boundary always io.EOF.
func TestEntryRecordSetStateTruncation(t *testing.T) {
	payload, err := encodeCommand(Command{
		Op: opSetState, Name: "srv-9:7070", State: string(metadata.ServerDraining),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := appendEntryRecord(nil, Entry{Index: 12, Term: 3, Command: payload})
	for cut := 0; cut < len(rec); cut++ {
		_, err := readEntryRecord(bytes.NewReader(rec[:cut]))
		if cut == 0 {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("cut 0: want io.EOF, got %v", err)
			}
			continue
		}
		if !errors.Is(err, ErrCorruptEntry) {
			t.Fatalf("cut %d: want ErrCorruptEntry, got %v", cut, err)
		}
	}
	got, err := readEntryRecord(bytes.NewReader(rec))
	if err != nil || !bytes.Equal(got.Command, payload) {
		t.Fatalf("full record: %v", err)
	}
}

// TestClusterDrainSurvivesFailover proves the lifecycle state is a
// replicated log command, not leader-local soft state: drain through
// the leader, kill it, and the new leader (and the failover client)
// must still report the server Draining.
func TestClusterDrainSurvivesFailover(t *testing.T) {
	c := newCluster(t, 3)
	c.startAll()
	leader := c.waitLeader()

	client := failoverClient(t, c)
	if err := client.RegisterServer(metadata.Server{Addr: "data-1:7070", Zone: "z0"}); err != nil {
		t.Fatal(err)
	}
	if err := client.SetServerState("data-1:7070", metadata.ServerDraining); err != nil {
		t.Fatal(err)
	}

	c.stop(leader)
	next := c.waitLeader()
	if next == leader {
		t.Fatalf("stopped leader %d still leads", leader)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		servers := client.Servers()
		if len(servers) == 1 && servers[0].State == metadata.ServerDraining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain state lost across failover: %+v", servers)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The restarted old leader replays the same log and converges too.
	c.start(leader)
	st := c.get(next).node.Status()
	c.waitApplied(leader, st.Applied)
	svcServers := c.get(leader).node.Servers()
	if len(svcServers) != 1 || svcServers[0].State != metadata.ServerDraining {
		t.Fatalf("restarted node replayed to %+v", svcServers)
	}

	// And an undrain through the new leader propagates the same way.
	if err := client.SetServerState("data-1:7070", metadata.ServerActive); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		servers := client.Servers()
		if len(servers) == 1 && servers[0].State == metadata.ServerActive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("undrain never converged: %+v", servers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
