package replica

import (
	"context"

	"repro/internal/metadata"
)

// Node implements metadata.API so one replica serves clients exactly
// like the single-node Service does: wrap it in
// metadata.NewNetworkServerFor. Writes become log proposals (leader
// only; followers answer NotLeaderError, which the network server
// proxies and the failover client retargets on). Reads run a
// read-index round and are then served from the local state machine,
// so followers share the read load without returning stale data.
// Locks are leader-local runtime state, like the single server's: a
// leader change drops them, exactly as a metadata server restart
// always has.
var _ metadata.API = (*Node)(nil)

// CreateSegment implements metadata.API via the consensus log.
func (n *Node) CreateSegment(seg metadata.Segment) error {
	return n.proposeTimed(Command{Op: opCreate, Segment: &seg})
}

// UpdateSegment implements metadata.API via the consensus log.
func (n *Node) UpdateSegment(seg metadata.Segment) error {
	return n.proposeTimed(Command{Op: opUpdate, Segment: &seg})
}

// DeleteSegment implements metadata.API via the consensus log.
func (n *Node) DeleteSegment(name string) error {
	return n.proposeTimed(Command{Op: opDelete, Name: name})
}

// RegisterServer implements metadata.API via the consensus log.
func (n *Node) RegisterServer(info metadata.Server) error {
	return n.proposeTimed(Command{Op: opRegister, Server: &info})
}

// UnregisterServer implements metadata.API via the consensus log.
func (n *Node) UnregisterServer(addr string) error {
	return n.proposeTimed(Command{Op: opUnregister, Name: addr})
}

// SetServerState implements metadata.API via the consensus log, so a
// drain survives leader failover and is consistent across the group.
func (n *Node) SetServerState(addr string, state metadata.ServerState) error {
	return n.proposeTimed(Command{Op: opSetState, Name: addr, State: string(state)})
}

// proposeTimed proposes under the configured commit timeout (the API
// methods carry no context).
func (n *Node) proposeTimed(c Command) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CommitTimeout)
	defer cancel()
	return n.propose(ctx, c)
}

// LookupSegment implements metadata.API with a linearizable local
// read.
func (n *Node) LookupSegment(name string) (metadata.Segment, error) {
	if err := n.readBarrier(); err != nil {
		return metadata.Segment{}, err
	}
	return n.svc.LookupSegment(name)
}

// ListSegments implements metadata.API (nil when no quorum is
// reachable, matching the remote client's error behavior).
func (n *Node) ListSegments() []string {
	if err := n.readBarrier(); err != nil {
		return nil
	}
	return n.svc.ListSegments()
}

// Servers implements metadata.API (nil when no quorum is reachable).
func (n *Node) Servers() []metadata.Server {
	if err := n.readBarrier(); err != nil {
		return nil
	}
	return n.svc.Servers()
}

// readBarrier performs the read-index protocol: obtain a commit
// frontier that a confirmed leader vouches for, then wait until the
// local state machine has applied it.
func (n *Node) readBarrier() error {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CommitTimeout)
	defer cancel()
	ri, err := n.readIndex(ctx)
	if err != nil {
		return err
	}
	return n.waitApplied(ctx, ri)
}

// LockRead implements metadata.API. Locks are granted only by the
// leader (leader-local state); elsewhere the caller is redirected.
func (n *Node) LockRead(ctx context.Context, name string) (func(), error) {
	if !n.IsLeader() {
		return nil, n.notLeaderErr()
	}
	return n.svc.LockRead(ctx, name)
}

// LockWrite implements metadata.API; see LockRead.
func (n *Node) LockWrite(ctx context.Context, name string) (func(), error) {
	if !n.IsLeader() {
		return nil, n.notLeaderErr()
	}
	return n.svc.LockWrite(ctx, name)
}
