package replica

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/metadata"
)

// wal is the append-only durable half of the consensus log: every
// entry is fsynced to disk before the node acknowledges it (to a
// client as leader, to the leader as follower), so a majority of
// disks always holds every acknowledged record. Truncation (conflict
// resolution, snapshot compaction) rewrites the file atomically via
// the metadata temp-fsync-rename helper.
type wal struct {
	path string
	f    *os.File
}

// openWAL opens (creating if absent) the log file at path and replays
// its records. A torn tail — a partial or corrupt final record, the
// signature of a crash mid-append — is truncated away; corruption
// *before* the tail record is an error, because entries after it
// were acknowledged and must not be silently dropped.
func openWAL(path string) (*wal, []Entry, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("replica: opening wal: %w", err)
	}
	var entries []Entry
	var good int64 // offset after the last fully-valid record
	br := bufio.NewReader(io.NewSectionReader(f, 0, 1<<62))
	for {
		e, err := readEntryRecord(br)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// Torn tail: drop everything at and after the bad record.
			if terr := f.Truncate(good); terr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("replica: truncating torn wal tail: %w", terr)
			}
			if serr := f.Sync(); serr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("replica: syncing truncated wal: %w", serr)
			}
			break
		}
		entries = append(entries, e)
		good += int64(entryHeaderLen + len(e.Command) + 4)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("replica: seeking wal: %w", err)
	}
	return &wal{path: path, f: f}, entries, nil
}

// append durably appends entries: one buffered write, then fsync.
func (w *wal) append(entries ...Entry) error {
	if len(entries) == 0 {
		return nil
	}
	var buf []byte
	for _, e := range entries {
		buf = appendEntryRecord(buf, e)
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("replica: appending wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("replica: syncing wal: %w", err)
	}
	return nil
}

// rewrite atomically replaces the whole file with the given entries —
// used when a follower truncates a conflicting suffix and when
// snapshot compaction drops the applied prefix.
func (w *wal) rewrite(entries []Entry) error {
	err := metadata.SaveFileAtomic(w.path, func(out io.Writer) error {
		var buf []byte
		for _, e := range entries {
			buf = appendEntryRecord(buf, e)
		}
		_, werr := out.Write(buf)
		return werr
	})
	if err != nil {
		return fmt.Errorf("replica: rewriting wal: %w", err)
	}
	// The old handle now points at an unlinked inode; reopen the new
	// file for appends.
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("replica: reopening wal: %w", err)
	}
	w.f.Close()
	w.f = f
	return nil
}

// Close closes the underlying file.
func (w *wal) Close() error {
	return w.f.Close()
}
