package metadata

import "context"

// API is the metadata-service surface the RobuSTore client consumes.
// It is implemented by the in-process *Service and by *RemoteClient
// (the same service reached over TCP), so a deployment can embed its
// metadata server or share one across machines.
type API interface {
	CreateSegment(seg Segment) error
	UpdateSegment(seg Segment) error
	LookupSegment(name string) (Segment, error)
	DeleteSegment(name string) error
	ListSegments() []string

	RegisterServer(info Server) error
	UnregisterServer(addr string) error
	SetServerState(addr string, state ServerState) error
	Servers() []Server

	LockRead(ctx context.Context, name string) (func(), error)
	LockWrite(ctx context.Context, name string) (func(), error)
}

var _ API = (*Service)(nil)
