package metadata

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSaveFileAtomicReplacesWholly is the torn-snapshot regression
// test: a snapshot write that fails partway through must leave the
// previous snapshot untouched and readable, never a truncated or
// interleaved file — the failure mode of writing in place.
func TestSaveFileAtomicReplacesWholly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.json")

	s := NewService()
	if err := s.CreateSegment(validSegment("keep")); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A writer that emits half a snapshot and then fails, as a crash
	// or full disk mid-write would.
	torn := errors.New("torn write")
	err = SaveFileAtomic(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, `{"format_version":1,"segme`); werr != nil {
			return werr
		}
		return torn
	})
	if !errors.Is(err, torn) {
		t.Fatalf("SaveFileAtomic error = %v, want torn write", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatalf("failed save mutated the snapshot:\nbefore: %q\nafter:  %q", before, after)
	}
	restored := NewService()
	if err := restored.LoadFile(path); err != nil {
		t.Fatalf("snapshot unreadable after failed save: %v", err)
	}
	if _, err := restored.LookupSegment("keep"); err != nil {
		t.Fatalf("segment lost after failed save: %v", err)
	}
}

// TestSaveFileAtomicNoTempLitter verifies both success and failure
// paths clean up their temp files, so crash-adjacent snapshots do not
// accumulate under the data directory.
func TestSaveFileAtomicNoTempLitter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.json")

	s := NewService()
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := SaveFileAtomic(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("SaveFileAtomic error = %v, want boom", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestSaveFileRoundTrip exercises the durable path end to end: state
// written with SaveFile is reloaded bit-identical by LoadFile.
func TestSaveFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.json")

	s := NewService()
	if err := s.CreateSegment(validSegment("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterServer(Server{Addr: "b:1", CapacityBytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	restored := NewService()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	seg, err := restored.LookupSegment("a")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Size != 1000 || len(seg.Placement) != 2 {
		t.Fatalf("restored segment = %+v", seg)
	}
	if srvs := restored.Servers(); len(srvs) != 1 || srvs[0].Addr != "b:1" {
		t.Fatalf("restored servers = %+v", srvs)
	}
}
