package metadata

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func validSegment(name string) Segment {
	return Segment{
		Name: name,
		Size: 1000,
		Coding: Coding{
			Algorithm: "lt", K: 4, N: 8, BlockBytes: 256,
			C: 1, Delta: 0.5, GraphSeed: 7, GraphN: 10,
		},
		Placement: map[string][]int{
			"a:1": {0, 2, 4, 6},
			"b:1": {1, 3, 5, 7},
		},
	}
}

func TestCodingValidate(t *testing.T) {
	good := validSegment("x").Coding
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Coding){
		func(c *Coding) { c.Algorithm = "" },
		func(c *Coding) { c.K = 0 },
		func(c *Coding) { c.N = c.K - 1 },
		func(c *Coding) { c.BlockBytes = 0 },
		func(c *Coding) { c.GraphN = c.N - 1 },
	}
	for i, mut := range bad {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSegmentLifecycle(t *testing.T) {
	s := NewService()
	seg := validSegment("data1")
	if err := s.CreateSegment(seg); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateSegment(seg); !errors.Is(err, ErrSegmentExists) {
		t.Fatalf("duplicate create = %v", err)
	}
	got, err := s.LookupSegment("data1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.Size != 1000 {
		t.Fatalf("lookup = %+v", got)
	}
	got.Size = 2000
	if err := s.UpdateSegment(got); err != nil {
		t.Fatal(err)
	}
	got2, _ := s.LookupSegment("data1")
	if got2.Version != 2 || got2.Size != 2000 {
		t.Fatalf("after update = %+v", got2)
	}
	if names := s.ListSegments(); len(names) != 1 || names[0] != "data1" {
		t.Fatalf("list = %v", names)
	}
	if err := s.DeleteSegment("data1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LookupSegment("data1"); !errors.Is(err, ErrSegmentNotFound) {
		t.Fatal("deleted segment still present")
	}
	if err := s.DeleteSegment("data1"); !errors.Is(err, ErrSegmentNotFound) {
		t.Fatal("double delete not reported")
	}
}

func TestCreateValidation(t *testing.T) {
	s := NewService()
	seg := validSegment("x")
	seg.Name = ""
	if err := s.CreateSegment(seg); err == nil {
		t.Fatal("empty name accepted")
	}
	seg = validSegment("x")
	seg.Size = -1
	if err := s.CreateSegment(seg); err == nil {
		t.Fatal("negative size accepted")
	}
	seg = validSegment("x")
	seg.Placement = map[string][]int{"a:1": {0, 1}}
	if err := s.CreateSegment(seg); err == nil {
		t.Fatal("under-placed segment accepted")
	}
	if err := s.UpdateSegment(validSegment("ghost")); !errors.Is(err, ErrSegmentNotFound) {
		t.Fatal("update of missing segment accepted")
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	s := NewService()
	s.CreateSegment(validSegment("d"))
	a, _ := s.LookupSegment("d")
	a.Placement["a:1"][0] = 999
	b, _ := s.LookupSegment("d")
	if b.Placement["a:1"][0] == 999 {
		t.Fatal("lookup aliases internal state")
	}
}

func TestServerRegistry(t *testing.T) {
	s := NewService()
	if err := s.RegisterServer(Server{}); err == nil {
		t.Fatal("empty address accepted")
	}
	s.RegisterServer(Server{Addr: "b:1", ExpectedMBps: 20})
	s.RegisterServer(Server{Addr: "a:1", ExpectedMBps: 50})
	s.RegisterServer(Server{Addr: "a:1", ExpectedMBps: 60}) // update
	servers := s.Servers()
	if len(servers) != 2 || servers[0].Addr != "a:1" || servers[0].ExpectedMBps != 60 {
		t.Fatalf("servers = %+v", servers)
	}
	if err := s.UnregisterServer("a:1"); err != nil {
		t.Fatal(err)
	}
	if err := s.UnregisterServer("a:1"); !errors.Is(err, ErrServerNotFound) {
		t.Fatal("double unregister not reported")
	}
}

func TestReadLocksShared(t *testing.T) {
	s := NewService()
	ctx := context.Background()
	u1, err := s.LockRead(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	u2, err := s.LockRead(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	u1()
	u2()
}

func TestWriteLockExclusive(t *testing.T) {
	s := NewService()
	ctx := context.Background()
	unlock, err := s.LockWrite(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		u, err := s.LockRead(ctx, "f")
		if err != nil {
			t.Error(err)
		}
		close(acquired)
		u()
	}()
	select {
	case <-acquired:
		t.Fatal("read lock acquired under write lock")
	case <-time.After(50 * time.Millisecond):
	}
	unlock()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("read lock never acquired after unlock")
	}
}

func TestWriteWaitsForReaders(t *testing.T) {
	s := NewService()
	ctx := context.Background()
	u1, _ := s.LockRead(ctx, "f")
	got := make(chan struct{})
	go func() {
		u, err := s.LockWrite(ctx, "f")
		if err != nil {
			t.Error(err)
		}
		close(got)
		u()
	}()
	select {
	case <-got:
		t.Fatal("write lock acquired under read lock")
	case <-time.After(50 * time.Millisecond):
	}
	u1()
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("write lock never acquired")
	}
}

func TestLockContextCancel(t *testing.T) {
	s := NewService()
	unlock, _ := s.LockWrite(context.Background(), "f")
	defer unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.LockWrite(ctx, "f"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestLocksIndependentAcrossNames(t *testing.T) {
	s := NewService()
	ctx := context.Background()
	u1, _ := s.LockWrite(ctx, "a")
	u2, err := s.LockWrite(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	u1()
	u2()
}

func TestConcurrentLockStress(t *testing.T) {
	s := NewService()
	ctx := context.Background()
	var counter, max int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if g%4 == 0 {
					u, err := s.LockWrite(ctx, "hot")
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					counter++
					if counter > max {
						max = counter
					}
					if counter != 1 {
						t.Error("writer not exclusive")
					}
					counter--
					mu.Unlock()
					u()
				} else {
					u, err := s.LockRead(ctx, "hot")
					if err != nil {
						t.Error(err)
						return
					}
					u()
				}
			}
		}(g)
	}
	wg.Wait()
}
