package metadata

import (
	"errors"
	"testing"
)

func TestServerStateNormalizeAndValid(t *testing.T) {
	if got := ServerState("").Normalize(); got != ServerActive {
		t.Fatalf(`Normalize("") = %q, want active`, got)
	}
	if got := ServerDraining.Normalize(); got != ServerDraining {
		t.Fatalf("Normalize(draining) = %q", got)
	}
	for _, s := range []ServerState{"", ServerActive, ServerDraining, ServerRemoved} {
		if !s.Valid() {
			t.Fatalf("state %q should be valid", s)
		}
	}
	if ServerState("bogus").Valid() {
		t.Fatal(`state "bogus" accepted`)
	}
}

func TestSetServerStateLifecycle(t *testing.T) {
	svc := NewService()
	if err := svc.SetServerState("missing", ServerDraining); !errors.Is(err, ErrServerNotFound) {
		t.Fatalf("unknown server = %v, want ErrServerNotFound", err)
	}
	if err := svc.RegisterServer(Server{Addr: "s1"}); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetServerState("s1", "sideways"); err == nil {
		t.Fatal("invalid state accepted")
	}
	// Walk the lifecycle; every step must be visible in the registry.
	for _, want := range []ServerState{ServerDraining, ServerActive, ServerRemoved, ServerActive} {
		if err := svc.SetServerState("s1", want); err != nil {
			t.Fatalf("-> %s: %v", want, err)
		}
		if got := svc.Servers()[0].State; got != want {
			t.Fatalf("state = %q, want %q", got, want)
		}
	}
	// "" normalizes to Active on the way in, not just the way out.
	if err := svc.SetServerState("s1", ""); err != nil {
		t.Fatal(err)
	}
	if got := svc.Servers()[0].State; got != ServerActive {
		t.Fatalf(`SetServerState(""): state = %q, want active stored`, got)
	}
}

func TestRegisterServerPreservesLifecycleState(t *testing.T) {
	svc := NewService()
	if err := svc.RegisterServer(Server{Addr: "s1", Zone: "z0"}); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetServerState("s1", ServerDraining); err != nil {
		t.Fatal(err)
	}
	// A restart re-announces with no State; the drain must survive.
	if err := svc.RegisterServer(Server{Addr: "s1", Zone: "z1", ExpectedMBps: 40}); err != nil {
		t.Fatal(err)
	}
	got := svc.Servers()[0]
	if got.State != ServerDraining {
		t.Fatalf("re-registration undrained the server: %+v", got)
	}
	if got.Zone != "z1" || got.ExpectedMBps != 40 {
		t.Fatalf("re-registration dropped updated fields: %+v", got)
	}
	// An explicit state on registration does win.
	if err := svc.RegisterServer(Server{Addr: "s1", State: ServerActive}); err != nil {
		t.Fatal(err)
	}
	if got := svc.Servers()[0].State; got != ServerActive {
		t.Fatalf("explicit state ignored: %q", got)
	}
	if err := svc.RegisterServer(Server{Addr: "s2", State: "junk"}); err == nil {
		t.Fatal("invalid registration state accepted")
	}
}

func TestRemoteSetServerState(t *testing.T) {
	svc, rc := startNetworkService(t)
	if err := rc.SetServerState("s1", ServerDraining); !errors.Is(err, ErrServerNotFound) {
		t.Fatalf("remote unknown server = %v, want ErrServerNotFound", err)
	}
	if err := rc.RegisterServer(Server{Addr: "s1"}); err != nil {
		t.Fatal(err)
	}
	if err := rc.SetServerState("s1", ServerDraining); err != nil {
		t.Fatal(err)
	}
	if got := svc.Servers()[0].State; got != ServerDraining {
		t.Fatalf("service state after wire set = %q", got)
	}
	// The state travels back over the wire in Servers() too.
	remote := rc.Servers()
	if len(remote) != 1 || remote[0].State != ServerDraining {
		t.Fatalf("remote Servers() = %+v", remote)
	}
	if err := rc.SetServerState("s1", "junk"); err == nil {
		t.Fatal("invalid state crossed the wire unchecked")
	}
}
