package metadata

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// Failover-client tests: dead-endpoint rotation, leader-hint
// redirects, follower write proxying, retry of idempotent ops, lock
// endpoint affinity, and health reporting — against real
// NetworkServers over loopback TCP.

func fastRemoteOptions() RemoteOptions {
	return RemoteOptions{
		DialTimeout:    time.Second,
		MaxRetries:     4,
		RetryBaseDelay: 5 * time.Millisecond,
		RetryMaxDelay:  40 * time.Millisecond,
	}
}

// serveAPI starts a NetworkServer for api on a loopback listener.
func serveAPI(t *testing.T, api API) (*NetworkServer, string) {
	t.Helper()
	srv := NewNetworkServerFor(api)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	return srv, ln.Addr().String()
}

// deadAddr returns a loopback address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// healthLog records per-endpoint outcomes.
type healthLog struct {
	mu        sync.Mutex
	successes map[string]int
	failures  map[string]int
}

func newHealthLog() *healthLog {
	return &healthLog{successes: make(map[string]int), failures: make(map[string]int)}
}

func (h *healthLog) ReportSuccess(addr string) {
	h.mu.Lock()
	h.successes[addr]++
	h.mu.Unlock()
}

func (h *healthLog) ReportFailure(addr string) {
	h.mu.Lock()
	h.failures[addr]++
	h.mu.Unlock()
}

func (h *healthLog) counts(addr string) (int, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.successes[addr], h.failures[addr]
}

func TestRemoteClientFailoverDeadEndpoint(t *testing.T) {
	svc := NewService()
	_, live := serveAPI(t, svc)
	dead := deadAddr(t)

	hl := newHealthLog()
	opts := fastRemoteOptions()
	opts.Health = hl
	client, err := DialRemoteMulti([]string{dead, live}, opts)
	if err != nil {
		t.Fatalf("dial with one dead endpoint = %v", err)
	}
	defer client.Close()

	if err := client.CreateSegment(validSegment("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.LookupSegment("x"); err != nil {
		t.Fatal(err)
	}
	if _, fails := hl.counts(dead); fails == 0 {
		t.Error("no failure reported for the dead endpoint")
	}
	if succ, _ := hl.counts(live); succ == 0 {
		t.Error("no success reported for the live endpoint")
	}
}

// followerStub answers every write and lock with a NotLeaderError
// pointing at leaderAddr, while serving reads from its own view —
// the shape of a replica follower.
type followerStub struct {
	*Service
	mu         sync.Mutex
	leaderAddr string
	// hintless, while > 0, omits the leader hint (mid-election).
	hintless int
}

func (f *followerStub) redirect() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hintless > 0 {
		f.hintless--
		return &NotLeaderError{}
	}
	return &NotLeaderError{Leader: f.leaderAddr}
}

func (f *followerStub) CreateSegment(Segment) error   { return f.redirect() }
func (f *followerStub) UpdateSegment(Segment) error   { return f.redirect() }
func (f *followerStub) DeleteSegment(string) error    { return f.redirect() }
func (f *followerStub) RegisterServer(Server) error   { return f.redirect() }
func (f *followerStub) UnregisterServer(string) error { return f.redirect() }
func (f *followerStub) LockRead(context.Context, string) (func(), error) {
	return nil, f.redirect()
}
func (f *followerStub) LockWrite(context.Context, string) (func(), error) {
	return nil, f.redirect()
}

// TestFollowerProxyAndLockRedirect wires a client to a follower only.
// Writes go through via the server-side proxy; locks — never proxied
// — reach the leader via the client-side redirect, and the unlock
// stays pinned to the endpoint that granted the token.
func TestFollowerProxyAndLockRedirect(t *testing.T) {
	leaderSvc := NewService()
	_, leaderAddr := serveAPI(t, leaderSvc)
	follower := &followerStub{Service: NewService(), leaderAddr: leaderAddr}
	_, followerAddr := serveAPI(t, follower)

	client, err := DialRemoteMulti([]string{followerAddr}, fastRemoteOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Write through the follower: the proxy must land it on the leader.
	if err := client.CreateSegment(validSegment("via-proxy")); err != nil {
		t.Fatalf("proxied create = %v", err)
	}
	if _, err := leaderSvc.LookupSegment("via-proxy"); err != nil {
		t.Fatalf("segment did not reach the leader: %v", err)
	}
	// API error identity survives the proxy hop.
	if err := client.CreateSegment(validSegment("via-proxy")); !errors.Is(err, ErrSegmentExists) {
		t.Fatalf("proxied duplicate = %v", err)
	}

	// Lock through the follower: client-side redirect to the leader.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	unlock, err := client.LockWrite(ctx, "via-proxy")
	if err != nil {
		t.Fatalf("redirected lock = %v", err)
	}
	// The lock is held on the leader: a competing leader-local write
	// lock must block until we release.
	blocked, err := tryLockWrite(leaderSvc, "via-proxy", 100*time.Millisecond)
	if err == nil {
		blocked()
		t.Fatal("competing lock acquired while remote lock held")
	}
	unlock()
	got, err := tryLockWrite(leaderSvc, "via-proxy", 2*time.Second)
	if err != nil {
		t.Fatalf("lock still held after remote unlock: %v", err)
	}
	got()
}

func tryLockWrite(svc *Service, name string, wait time.Duration) (func(), error) {
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	return svc.LockWrite(ctx, name)
}

// TestRemoteClientHintlessNotLeaderRetry: during an election a node
// knows no leader; the client must back off and retry rather than
// fail the call.
func TestRemoteClientHintlessNotLeaderRetry(t *testing.T) {
	leaderSvc := NewService()
	_, leaderAddr := serveAPI(t, leaderSvc)
	follower := &followerStub{Service: NewService(), leaderAddr: leaderAddr, hintless: 2}
	_, followerAddr := serveAPI(t, follower)

	// Both endpoints point at the follower so retries re-ask it until
	// the "election" settles and the hint appears.
	client, err := DialRemoteMulti([]string{followerAddr}, fastRemoteOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.CreateSegment(validSegment("after-election")); err != nil {
		t.Fatalf("create through hintless spell = %v", err)
	}
	if _, err := leaderSvc.LookupSegment("after-election"); err != nil {
		t.Fatalf("segment missing on leader: %v", err)
	}
}

// TestRemoteClientRedirectLoopBounded: two "followers" pointing at
// each other must produce a bounded NotLeaderError, not an infinite
// redirect chase.
func TestRemoteClientRedirectLoopBounded(t *testing.T) {
	a := &followerStub{Service: NewService()}
	b := &followerStub{Service: NewService()}
	_, addrA := serveAPI(t, a)
	_, addrB := serveAPI(t, b)
	a.mu.Lock()
	a.leaderAddr = addrB
	a.mu.Unlock()
	b.mu.Lock()
	b.leaderAddr = addrA
	b.mu.Unlock()

	client, err := DialRemoteMulti([]string{addrA}, fastRemoteOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	// Locks are not server-proxied, so the loop is purely client-side
	// redirect chasing.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, lerr := client.LockWrite(ctx, "x")
	if !errors.Is(lerr, ErrNotLeader) {
		t.Fatalf("looping redirect = %v, want ErrNotLeader", lerr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("redirect loop took %v", elapsed)
	}
}

// flakyProxy fronts a real server, killing the first n exchanges
// after one byte arrives, so the client sees mid-flight transport
// errors (not dial failures).
type flakyProxy struct {
	backend string
	ln      net.Listener
	mu      sync.Mutex
	kills   int
	wg      sync.WaitGroup
}

func startFlakyProxy(t *testing.T, backend string, kills int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{backend: backend, ln: ln, kills: kills}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.run()
	}()
	t.Cleanup(func() {
		ln.Close()
		p.wg.Wait()
	})
	return ln.Addr().String()
}

func (p *flakyProxy) run() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

func (p *flakyProxy) handle(conn net.Conn) {
	defer conn.Close()
	one := make([]byte, 1)
	if _, err := conn.Read(one); err != nil {
		return
	}
	p.mu.Lock()
	kill := p.kills > 0
	if kill {
		p.kills--
	}
	p.mu.Unlock()
	if kill {
		return // drop mid-request: the client has already sent bytes
	}
	back, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer back.Close()
	if _, err := back.Write(one); err != nil {
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(conn, back)
	}()
	io.Copy(back, conn)
	back.Close()
	<-done
}

// TestRemoteClientRetriesIdempotentMidFlight: an exchange severed
// after the request was sent is retried for idempotent ops.
func TestRemoteClientRetriesIdempotentMidFlight(t *testing.T) {
	svc := NewService()
	if err := svc.CreateSegment(validSegment("present")); err != nil {
		t.Fatal(err)
	}
	_, backend := serveAPI(t, svc)
	proxy := startFlakyProxy(t, backend, 2)

	client, err := DialRemoteMulti([]string{proxy}, fastRemoteOptions())
	if err != nil {
		t.Fatalf("dial through flaky proxy = %v", err)
	}
	defer client.Close()
	if _, err := client.LookupSegment("present"); err != nil {
		t.Fatalf("idempotent lookup through flaky link = %v", err)
	}
}

// TestRemoteClientNonIdempotentNotRetriedMidFlight: a create severed
// mid-flight must surface the transport error — the write may have
// executed, and blind replay could double-apply.
func TestRemoteClientNonIdempotentNotRetriedMidFlight(t *testing.T) {
	svc := NewService()
	_, backend := serveAPI(t, svc)
	proxy := startFlakyProxy(t, backend, 1000) // every exchange dies

	opts := fastRemoteOptions()
	client := newRemoteClient([]string{proxy}, opts)
	defer client.Close()
	start := time.Now()
	err := client.CreateSegment(validSegment("maybe"))
	if err == nil {
		t.Fatal("create through always-killing proxy succeeded")
	}
	if errors.Is(err, ErrNotLeader) || errors.Is(err, ErrSegmentExists) {
		t.Fatalf("unexpected protocol error: %v", err)
	}
	// No retries: the call must fail after a single attempt, far
	// inside the budget MaxRetries backoffs would burn.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("non-idempotent create took %v (looks retried)", elapsed)
	}
}

// TestForwardMidFlightAmbiguous: a follower whose proxied write to
// the leader dies after the request was sent must answer an explicit
// ambiguous-result error — not the not-leader redirect, which the
// client would read as "nothing executed" and blindly re-issue.
func TestForwardMidFlightAmbiguous(t *testing.T) {
	leaderSvc := NewService()
	_, leaderAddr := serveAPI(t, leaderSvc)
	// Every forward through the proxy dies mid-flight.
	proxyAddr := startFlakyProxy(t, leaderAddr, 1000)
	follower := &followerStub{Service: NewService(), leaderAddr: proxyAddr}
	_, followerAddr := serveAPI(t, follower)

	client, err := DialRemoteMulti([]string{followerAddr}, fastRemoteOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cerr := client.CreateSegment(validSegment("maybe-applied"))
	if cerr == nil {
		t.Fatal("create with severed forward succeeded")
	}
	if !errors.Is(cerr, ErrAmbiguous) {
		t.Fatalf("severed forward = %v, want ErrAmbiguous", cerr)
	}
	if errors.Is(cerr, ErrNotLeader) {
		t.Fatalf("severed forward leaked a not-leader redirect: %v", cerr)
	}
}

// TestRemoteClientDeleteNotRetriedMidFlight: delete is not in the
// blind-retry set — a retry after an unknown outcome races a
// concurrent re-create and misreports an executed delete as
// not-found — so a severed delete surfaces the transport error.
func TestRemoteClientDeleteNotRetriedMidFlight(t *testing.T) {
	svc := NewService()
	if err := svc.CreateSegment(validSegment("keep")); err != nil {
		t.Fatal(err)
	}
	_, backend := serveAPI(t, svc)
	proxy := startFlakyProxy(t, backend, 1000) // every exchange dies

	client := newRemoteClient([]string{proxy}, fastRemoteOptions())
	defer client.Close()
	start := time.Now()
	err := client.DeleteSegment("keep")
	if err == nil {
		t.Fatal("delete through always-killing proxy succeeded")
	}
	if errors.Is(err, ErrSegmentNotFound) {
		t.Fatalf("unexpected protocol error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("delete took %v (looks retried)", elapsed)
	}
	if _, err := svc.LookupSegment("keep"); err != nil {
		t.Fatalf("segment vanished without reaching the service: %v", err)
	}
}
