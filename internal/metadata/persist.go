package metadata

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// snapshot is the serialized form of a Service.
type snapshot struct {
	FormatVersion int       `json:"format_version"`
	Segments      []Segment `json:"segments"`
	Servers       []Server  `json:"servers"`
}

const formatVersion = 1

// Save writes the service state as JSON. Locks are runtime state and
// are not persisted.
func (s *Service) Save(w io.Writer) error {
	s.mu.Lock()
	snap := snapshot{FormatVersion: formatVersion}
	for _, seg := range s.segments {
		cp := *seg
		cp.Placement = clonePlacement(seg.Placement)
		snap.Segments = append(snap.Segments, cp)
	}
	for _, srv := range s.servers {
		snap.Servers = append(snap.Servers, srv)
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the service state from a JSON snapshot.
func (s *Service) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("metadata: decoding snapshot: %w", err)
	}
	if snap.FormatVersion != formatVersion {
		return fmt.Errorf("metadata: unsupported snapshot version %d", snap.FormatVersion)
	}
	segments := make(map[string]*Segment, len(snap.Segments))
	for i := range snap.Segments {
		seg := snap.Segments[i]
		if err := seg.Coding.Validate(); err != nil {
			return fmt.Errorf("metadata: snapshot segment %q: %w", seg.Name, err)
		}
		segments[seg.Name] = &seg
	}
	servers := make(map[string]Server, len(snap.Servers))
	for _, srv := range snap.Servers {
		servers[srv.Addr] = srv
	}
	s.mu.Lock()
	s.segments = segments
	s.servers = servers
	s.mu.Unlock()
	return nil
}

// SaveFile atomically and durably writes the snapshot to path: temp
// file, fsync, rename, then fsync of the parent directory — the same
// discipline as FileStore.Put. Without the file sync a crash after
// rename can surface a complete-looking snapshot full of zeroes;
// without the directory sync the rename itself can vanish.
func (s *Service) SaveFile(path string) error {
	return SaveFileAtomic(path, s.Save)
}

// SaveFileAtomic writes via a temp file in path's directory, fsyncs
// the file, renames it over path, and fsyncs the directory. The
// replica package reuses it for hard-state and snapshot writes.
func SaveFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a
// crash. Filesystems that cannot sync directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("metadata: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("metadata: %w", err)
	}
	return nil
}

// LoadFile reads a snapshot from path; a missing file leaves the
// service empty and returns os.ErrNotExist.
func (s *Service) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
