package metadata

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// snapshot is the serialized form of a Service.
type snapshot struct {
	FormatVersion int       `json:"format_version"`
	Segments      []Segment `json:"segments"`
	Servers       []Server  `json:"servers"`
}

const formatVersion = 1

// Save writes the service state as JSON. Locks are runtime state and
// are not persisted.
func (s *Service) Save(w io.Writer) error {
	s.mu.Lock()
	snap := snapshot{FormatVersion: formatVersion}
	for _, seg := range s.segments {
		cp := *seg
		cp.Placement = clonePlacement(seg.Placement)
		snap.Segments = append(snap.Segments, cp)
	}
	for _, srv := range s.servers {
		snap.Servers = append(snap.Servers, srv)
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the service state from a JSON snapshot.
func (s *Service) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("metadata: decoding snapshot: %w", err)
	}
	if snap.FormatVersion != formatVersion {
		return fmt.Errorf("metadata: unsupported snapshot version %d", snap.FormatVersion)
	}
	segments := make(map[string]*Segment, len(snap.Segments))
	for i := range snap.Segments {
		seg := snap.Segments[i]
		if err := seg.Coding.Validate(); err != nil {
			return fmt.Errorf("metadata: snapshot segment %q: %w", seg.Name, err)
		}
		segments[seg.Name] = &seg
	}
	servers := make(map[string]Server, len(snap.Servers))
	for _, srv := range snap.Servers {
		servers[srv.Addr] = srv
	}
	s.mu.Lock()
	s.segments = segments
	s.servers = servers
	s.mu.Unlock()
	return nil
}

// SaveFile atomically writes the snapshot to path.
func (s *Service) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot from path; a missing file leaves the
// service empty and returns os.ErrNotExist.
func (s *Service) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
