package metadata

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func startNetworkService(t *testing.T) (*Service, *RemoteClient) {
	t.Helper()
	svc := NewService()
	srv := NewNetworkServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	client, err := DialRemote(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return svc, client
}

func TestRemoteSegmentLifecycle(t *testing.T) {
	_, rc := startNetworkService(t)
	seg := validSegment("remote1")
	if err := rc.CreateSegment(seg); err != nil {
		t.Fatal(err)
	}
	if err := rc.CreateSegment(seg); !errors.Is(err, ErrSegmentExists) {
		t.Fatalf("duplicate create = %v, want ErrSegmentExists", err)
	}
	got, err := rc.LookupSegment("remote1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.Size != seg.Size || len(got.Placement) != 2 {
		t.Fatalf("remote lookup = %+v", got)
	}
	got.Size = 4242
	if err := rc.UpdateSegment(got); err != nil {
		t.Fatal(err)
	}
	got2, _ := rc.LookupSegment("remote1")
	if got2.Size != 4242 || got2.Version != 2 {
		t.Fatalf("after update = %+v", got2)
	}
	names := rc.ListSegments()
	if len(names) != 1 || names[0] != "remote1" {
		t.Fatalf("list = %v", names)
	}
	if err := rc.DeleteSegment("remote1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.LookupSegment("remote1"); !errors.Is(err, ErrSegmentNotFound) {
		t.Fatalf("lookup after delete = %v, want ErrSegmentNotFound", err)
	}
}

func TestRemoteServerRegistry(t *testing.T) {
	_, rc := startNetworkService(t)
	if err := rc.RegisterServer(Server{Addr: "a:1", ExpectedMBps: 10, Zone: "z"}); err != nil {
		t.Fatal(err)
	}
	servers := rc.Servers()
	if len(servers) != 1 || servers[0].Addr != "a:1" || servers[0].Zone != "z" {
		t.Fatalf("servers = %+v", servers)
	}
	if err := rc.UnregisterServer("a:1"); err != nil {
		t.Fatal(err)
	}
	if err := rc.UnregisterServer("a:1"); !errors.Is(err, ErrServerNotFound) {
		t.Fatalf("double unregister = %v", err)
	}
}

func TestRemoteLocksExcludeLocalAndRemote(t *testing.T) {
	svc, rc := startNetworkService(t)
	ctx := context.Background()
	unlock, err := rc.LockWrite(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	// A local (in-process) reader must block behind the remote writer.
	acquired := make(chan struct{})
	go func() {
		u, err := svc.LockRead(ctx, "f")
		if err == nil {
			close(acquired)
			u()
		}
	}()
	select {
	case <-acquired:
		t.Fatal("local read lock acquired under remote write lock")
	case <-time.After(50 * time.Millisecond):
	}
	unlock()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("local read lock never acquired after remote unlock")
	}
}

func TestRemoteLockWaitsForGrant(t *testing.T) {
	svc, rc := startNetworkService(t)
	ctx := context.Background()
	localUnlock, err := svc.LockWrite(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan func(), 1)
	go func() {
		u, err := rc.LockWrite(ctx, "g")
		if err == nil {
			got <- u
		}
	}()
	select {
	case <-got:
		t.Fatal("remote lock acquired while locally held")
	case <-time.After(50 * time.Millisecond):
	}
	localUnlock()
	select {
	case u := <-got:
		u()
	case <-time.After(2 * time.Second):
		t.Fatal("remote lock never granted")
	}
}

func TestRemoteLockContextCancel(t *testing.T) {
	svc, rc := startNetworkService(t)
	localUnlock, _ := svc.LockWrite(context.Background(), "h")
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	if _, err := rc.LockWrite(ctx, "h"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	localUnlock()
	// The abandoned grant must be auto-released; a fresh lock succeeds.
	u, err := rc.LockWrite(context.Background(), "h")
	if err != nil {
		t.Fatal(err)
	}
	u()
}

func TestRemoteConcurrentClients(t *testing.T) {
	_, rc := startNetworkService(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seg := validSegment("conc")
			seg.Name = seg.Name + string(rune('a'+g))
			if err := rc.CreateSegment(seg); err != nil {
				errCh <- err
				return
			}
			if _, err := rc.LookupSegment(seg.Name); err != nil {
				errCh <- err
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := len(rc.ListSegments()); got != 8 {
		t.Fatalf("segments = %d, want 8", got)
	}
}

func TestDialRemoteFailure(t *testing.T) {
	if _, err := DialRemote("127.0.0.1:1"); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	svc := NewService()
	svc.CreateSegment(validSegment("persist"))
	svc.RegisterServer(Server{Addr: "x:1"})
	path := t.TempDir() + "/meta.json"
	if err := svc.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewService()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	seg, err := restored.LookupSegment("persist")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Coding.K != 4 || len(seg.Placement) != 2 {
		t.Fatalf("restored segment = %+v", seg)
	}
	if len(restored.Servers()) != 1 {
		t.Fatal("server registry not restored")
	}
}
