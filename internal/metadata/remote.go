package metadata

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// This file puts the metadata service on the network: a JSON-over-
// length-prefixed-frames protocol carrying the API operations, so one
// metadata server can serve many RobuSTore clients (the Ch. 4
// framework's central metadata server, as deployed in practice).
//
// Locks acquired remotely are identified by server-issued tokens; the
// unlock closure returned to the caller sends the token back. Lock
// *waiting* happens server-side, one request per connection, so a
// client blocked on a lock does not wedge other clients (the client
// pool opens one connection per outstanding request).

const remoteMaxFrame = 16 << 20

// wire request/response. Exactly one of the op-specific fields is
// meaningful per op.
type wireRequest struct {
	Op      string   `json:"op"`
	Name    string   `json:"name,omitempty"`
	Segment *Segment `json:"segment,omitempty"`
	Server  *Server  `json:"server,omitempty"`
	State   string   `json:"state,omitempty"`
	Token   string   `json:"token,omitempty"`
	// Forwarded marks a request a follower already proxied once; the
	// receiving server must answer it itself (possibly with a
	// not-leader redirect) rather than proxy again, so a leadership
	// flap can never bounce one request around the group forever.
	Forwarded bool `json:"fwd,omitempty"`
}

type wireResponse struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	ErrKind string   `json:"err_kind,omitempty"`
	Segment *Segment `json:"segment,omitempty"`
	Names   []string `json:"names,omitempty"`
	Servers []Server `json:"servers,omitempty"`
	Token   string   `json:"token,omitempty"`
	// Leader carries the leader's client address alongside a
	// not-leader error — the hint failover clients retarget to.
	Leader string `json:"leader,omitempty"`
}

// err kinds preserved across the wire.
const (
	errKindExists    = "exists"
	errKindNoSeg     = "no-segment"
	errKindNoServer  = "no-server"
	errKindNotLeader = "not-leader"
	errKindAmbiguous = "ambiguous"
)

func kindOf(err error) string {
	switch {
	case errors.Is(err, ErrSegmentExists):
		return errKindExists
	case errors.Is(err, ErrSegmentNotFound):
		return errKindNoSeg
	case errors.Is(err, ErrServerNotFound):
		return errKindNoServer
	case errors.Is(err, ErrNotLeader):
		return errKindNotLeader
	case errors.Is(err, ErrAmbiguous):
		return errKindAmbiguous
	default:
		return ""
	}
}

func errOfKind(kind, msg, leader string) error {
	switch kind {
	case errKindExists:
		return ErrSegmentExists
	case errKindNoSeg:
		return ErrSegmentNotFound
	case errKindNoServer:
		return ErrServerNotFound
	case errKindNotLeader:
		return &NotLeaderError{Leader: leader}
	case errKindAmbiguous:
		return fmt.Errorf("%w: %s", ErrAmbiguous, msg)
	default:
		return errors.New(msg)
	}
}

func writeJSONFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > remoteMaxFrame {
		return fmt.Errorf("metadata: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readJSONFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > remoteMaxFrame {
		return fmt.Errorf("metadata: inbound frame too large (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// NetworkServer exposes a metadata API over TCP — the in-process
// *Service, or a replica node that redirects and replicates under the
// hood.
type NetworkServer struct {
	api API

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	locks    map[string]func() // token -> unlock
	forwards map[string]*RemoteClient
	nextTok  int64
	closed   bool
	wg       sync.WaitGroup
}

// NewNetworkServer wraps a service for network serving.
func NewNetworkServer(svc *Service) *NetworkServer {
	return NewNetworkServerFor(svc)
}

// NewNetworkServerFor wraps any metadata API for network serving.
// When the backend answers a write with a NotLeaderError carrying a
// leader hint, the server proxies the request to the leader once
// (marking it Forwarded) and relays the answer — so a client talking
// to a follower still gets its write through, the baudfs/cubefs
// metanode proxy pattern.
func NewNetworkServerFor(api API) *NetworkServer {
	return &NetworkServer{
		api:      api,
		conns:    make(map[net.Conn]struct{}),
		locks:    make(map[string]func()),
		forwards: make(map[string]*RemoteClient),
	}
}

// Serve accepts connections until Close.
func (s *NetworkServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("metadata: network server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops the server, releasing any locks still held by remote
// clients.
func (s *NetworkServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	locks := s.locks
	s.locks = map[string]func(){}
	forwards := s.forwards
	s.forwards = map[string]*RemoteClient{}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, unlock := range locks {
		unlock()
	}
	for _, fc := range forwards {
		fc.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *NetworkServer) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	for {
		var req wireRequest
		if err := readJSONFrame(conn, &req); err != nil {
			return
		}
		resp := s.dispatch(&req)
		if fresp, ok := s.maybeForward(&req, resp); ok {
			resp = fresp
		}
		if err := writeJSONFrame(conn, resp); err != nil {
			return
		}
	}
}

// proxyableOps are the write operations a follower forwards to the
// leader on the client's behalf. Reads are served locally behind a
// read-index check, and lock ops redirect instead (lock tokens must
// live on the node the client unlocks through).
var proxyableOps = map[string]bool{
	"create": true, "update": true, "delete": true,
	"register-server": true, "unregister-server": true,
	"set-server-state": true,
}

// maybeForward proxies a not-leader-rejected write to the hinted
// leader, once. The forwarded copy is marked so the receiving server
// never proxies it again.
func (s *NetworkServer) maybeForward(req *wireRequest, resp wireResponse) (wireResponse, bool) {
	if resp.OK || resp.ErrKind != errKindNotLeader || resp.Leader == "" ||
		req.Forwarded || !proxyableOps[req.Op] {
		return wireResponse{}, false
	}
	fc := s.forwardClient(resp.Leader)
	if fc == nil {
		return wireResponse{}, false
	}
	fwd := *req
	fwd.Forwarded = true
	fresp, sent, err := fc.roundTripTo(resp.Leader, &fwd)
	if err != nil {
		if !sent || idempotentOps[req.Op] {
			// The dial failed (the leader never saw the request) or the
			// op is safe to re-issue, so the original redirect answer is
			// still accurate: let the client chase the hint itself.
			return wireResponse{}, false
		}
		// The forward died mid-flight: the leader may or may not have
		// executed the write. A not-leader answer would invite the
		// client to blindly re-issue it, so report the ambiguity
		// instead.
		return wireResponse{
			Error: fmt.Sprintf("forwarded %s to leader %s failed mid-flight: %v",
				req.Op, resp.Leader, err),
			ErrKind: errKindAmbiguous,
		}, true
	}
	return fresp, true
}

// forwardClient returns (creating if needed) the proxy client toward
// one leader address.
func (s *NetworkServer) forwardClient(addr string) *RemoteClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	fc, ok := s.forwards[addr]
	if !ok {
		fc = newRemoteClient([]string{addr}, RemoteOptions{})
		s.forwards[addr] = fc
	}
	return fc
}

func fail(err error) wireResponse {
	resp := wireResponse{Error: err.Error(), ErrKind: kindOf(err)}
	var nle *NotLeaderError
	if errors.As(err, &nle) {
		resp.Leader = nle.Leader
	}
	return resp
}

func (s *NetworkServer) dispatch(req *wireRequest) wireResponse {
	switch req.Op {
	case "ping":
		return wireResponse{OK: true}
	case "create":
		if req.Segment == nil {
			return fail(errors.New("metadata: create without segment"))
		}
		if err := s.api.CreateSegment(*req.Segment); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "update":
		if req.Segment == nil {
			return fail(errors.New("metadata: update without segment"))
		}
		if err := s.api.UpdateSegment(*req.Segment); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "lookup":
		seg, err := s.api.LookupSegment(req.Name)
		if err != nil {
			return fail(err)
		}
		return wireResponse{OK: true, Segment: &seg}
	case "delete":
		if err := s.api.DeleteSegment(req.Name); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "list":
		return wireResponse{OK: true, Names: s.api.ListSegments()}
	case "register-server":
		if req.Server == nil {
			return fail(errors.New("metadata: register without server"))
		}
		if err := s.api.RegisterServer(*req.Server); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "unregister-server":
		if err := s.api.UnregisterServer(req.Name); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "set-server-state":
		if err := s.api.SetServerState(req.Name, ServerState(req.State)); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "servers":
		return wireResponse{OK: true, Servers: s.api.Servers()}
	case "lock-read", "lock-write":
		var unlock func()
		var err error
		if req.Op == "lock-read" {
			unlock, err = s.api.LockRead(context.Background(), req.Name)
		} else {
			unlock, err = s.api.LockWrite(context.Background(), req.Name)
		}
		if err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.nextTok++
		token := req.Op + "-" + req.Name + "-" + strconv.FormatInt(s.nextTok, 10)
		s.locks[token] = unlock
		s.mu.Unlock()
		return wireResponse{OK: true, Token: token}
	case "unlock":
		s.mu.Lock()
		unlock, ok := s.locks[req.Token]
		delete(s.locks, req.Token)
		s.mu.Unlock()
		if !ok {
			return fail(errors.New("metadata: unknown lock token"))
		}
		unlock()
		return wireResponse{OK: true}
	default:
		return fail(fmt.Errorf("metadata: unknown op %q", req.Op))
	}
}

// RemoteOptions configures the failover behavior of a RemoteClient.
// The zero value gives sensible defaults for every knob.
type RemoteOptions struct {
	// DialTimeout bounds each TCP dial (default 5s).
	DialTimeout time.Duration
	// MaxRetries caps transport-level retries per call beyond the
	// first attempt (default 3).
	MaxRetries int
	// RetryBaseDelay / RetryMaxDelay shape the full-jitter backoff
	// between retries (defaults 25ms / 500ms).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// Health, when set, receives per-endpoint transport outcomes so
	// the failure detector sees metadata-plane traffic too.
	Health transport.HealthReporter
	// Obs, when set, receives client retry/failover/redirect counters.
	Obs *obs.Registry
}

// RemoteClient is a metadata.API backed by one or more NetworkServers
// (a replicated group). Safe for concurrent use; each in-flight
// request uses its own pooled connection. The client prefers one
// endpoint at a time, follows not-leader leader hints, and rotates to
// the next endpoint with jittered backoff when the preferred one is
// unreachable.
type RemoteClient struct {
	opts RemoteOptions

	mu         sync.Mutex
	addrs      []string
	cur        int    // preferred index into addrs
	leaderHint string // last redirect target; tried before addrs[cur]
	poolAddr   string // endpoint the idle conns belong to
	idle       []net.Conn
	closed     bool

	retries   *obs.Counter
	failovers *obs.Counter
	redirects *obs.Counter
}

// DialRemote connects to a single metadata network server.
func DialRemote(addr string) (*RemoteClient, error) {
	return DialRemoteMulti([]string{addr}, RemoteOptions{})
}

// DialRemoteMulti connects to a metadata service reachable at any of
// several endpoints (a replicated group); the initial ping walks the
// list until one answers.
func DialRemoteMulti(addrs []string, opts RemoteOptions) (*RemoteClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("metadata: no endpoints")
	}
	c := newRemoteClient(addrs, opts)
	if _, err := c.call(&wireRequest{Op: "ping"}); err != nil {
		c.Close()
		return nil, fmt.Errorf("metadata: dialing %s: %w", strings.Join(addrs, ","), err)
	}
	return c, nil
}

func newRemoteClient(addrs []string, opts RemoteOptions) *RemoteClient {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBaseDelay <= 0 {
		opts.RetryBaseDelay = 25 * time.Millisecond
	}
	if opts.RetryMaxDelay <= 0 {
		opts.RetryMaxDelay = 500 * time.Millisecond
	}
	return &RemoteClient{
		opts:      opts,
		addrs:     append([]string(nil), addrs...),
		retries:   opts.Obs.Counter("meta_client_retries_total"),
		failovers: opts.Obs.Counter("meta_client_failovers_total"),
		redirects: opts.Obs.Counter("meta_client_redirects_total"),
	}
}

var _ API = (*RemoteClient)(nil)

// target is the endpoint the next attempt goes to: the leader hint if
// one is known, else the preferred list entry.
func (c *RemoteClient) target() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leaderHint != "" {
		return c.leaderHint
	}
	return c.addrs[c.cur]
}

// setLeaderHint retargets subsequent attempts at the hinted leader.
// If the hint is one of the configured endpoints, the preference also
// moves there so the hint surviving a clear still lands well.
func (c *RemoteClient) setLeaderHint(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.leaderHint = addr
	for i, a := range c.addrs {
		if a == addr {
			c.cur = i
			break
		}
	}
}

// noteFailure records a transport failure at addr: the leader hint is
// dropped if it pointed there, and the preference rotates past it.
// Reports whether the preferred endpoint actually changed.
func (c *RemoteClient) noteFailure(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leaderHint == addr {
		c.leaderHint = ""
	}
	if c.addrs[c.cur] == addr && len(c.addrs) > 1 {
		c.cur = (c.cur + 1) % len(c.addrs)
		return true
	}
	return false
}

func (c *RemoteClient) reportSuccess(addr string) {
	if c.opts.Health != nil {
		c.opts.Health.ReportSuccess(addr)
	}
}

func (c *RemoteClient) reportFailure(addr string) {
	if c.opts.Health != nil {
		c.opts.Health.ReportFailure(addr)
	}
}

func (c *RemoteClient) acquire(addr string) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("metadata: remote client closed")
	}
	if c.poolAddr != addr {
		// Pooled conns belong to a previous endpoint; drop them.
		idle := c.idle
		c.idle = nil
		c.poolAddr = addr
		c.mu.Unlock()
		for _, conn := range idle {
			conn.Close()
		}
	} else if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	} else {
		c.mu.Unlock()
	}
	return net.DialTimeout("tcp", addr, c.opts.DialTimeout)
}

func (c *RemoteClient) release(addr string, conn net.Conn) {
	c.mu.Lock()
	if c.closed || c.poolAddr != addr || len(c.idle) >= 8 {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}

// roundTripTo performs one attempt against addr. sent reports whether
// the request could have reached the server: false only for dial
// failures, so callers know a non-idempotent request is safe to
// reissue.
func (c *RemoteClient) roundTripTo(addr string, req *wireRequest) (resp wireResponse, sent bool, err error) {
	conn, err := c.acquire(addr)
	if err != nil {
		return wireResponse{}, false, err
	}
	if err := writeJSONFrame(conn, req); err != nil {
		conn.Close()
		return wireResponse{}, true, err
	}
	if err := readJSONFrame(conn, &resp); err != nil {
		conn.Close()
		return wireResponse{}, true, err
	}
	c.release(addr, conn)
	return resp, true, nil
}

// idempotentOps may be reissued even when a transport error leaves it
// unknown whether the first attempt executed. Deliberately absent:
// "delete" and "unregister-server" — re-issuing one after an unknown
// outcome races a concurrent re-create (the retry would remove the
// *new* record), and a retry of an already-executed delete reports
// not-found for an operation that in fact succeeded. Their ambiguous
// failures surface to the caller. "register-server" stays: it is a
// pure upsert. "unlock" stays: an unknown token is a no-op error.
// "set-server-state" is idempotent for the same reason as
// "register-server": re-applying the same absolute state is a no-op.
var idempotentOps = map[string]bool{
	"ping": true, "lookup": true, "list": true, "servers": true,
	"register-server": true, "set-server-state": true, "unlock": true,
}

// maxRedirects bounds leader-hint hops per call, so a flapping
// election cannot bounce one request around the group indefinitely.
const maxRedirects = 4

// call runs one op through the retry/failover/redirect engine and
// maps protocol errors back to API errors.
func (c *RemoteClient) call(req *wireRequest) (wireResponse, error) {
	resp, _, err := c.callAddr(req)
	return resp, err
}

// callAddr additionally reports which endpoint answered, for callers
// with endpoint affinity (lock tokens live on the granting node).
//
// Retry rules:
//   - A not-leader rejection executed nothing, so every op — even a
//     write — may safely chase the hint (bounded by maxRedirects) or,
//     hintless mid-election, back off and retry.
//   - A transport error is retried only when the request never left
//     this process (dial failure) or the op is idempotent; an
//     in-flight write whose connection died may have executed, and
//     only the caller can decide to reissue it.
func (c *RemoteClient) callAddr(req *wireRequest) (wireResponse, string, error) {
	redirects, attempt := 0, 0
	for {
		addr := c.target()
		resp, sent, err := c.roundTripTo(addr, req)
		if err == nil {
			c.reportSuccess(addr)
			if resp.OK {
				return resp, addr, nil
			}
			if resp.ErrKind == errKindNotLeader {
				if resp.Leader != "" && resp.Leader != addr && redirects < maxRedirects {
					redirects++
					c.redirects.Inc()
					c.setLeaderHint(resp.Leader)
					continue
				}
				if resp.Leader == "" && attempt < c.opts.MaxRetries {
					// Mid-election: rotate and wait for a winner.
					if c.noteFailure(addr) {
						c.failovers.Inc()
					}
					attempt++
					c.retries.Inc()
					if berr := transport.BackoffFullJitter(context.Background(), attempt-1,
						c.opts.RetryBaseDelay, c.opts.RetryMaxDelay); berr != nil {
						return wireResponse{}, addr, berr
					}
					continue
				}
			}
			return resp, addr, errOfKind(resp.ErrKind, resp.Error, resp.Leader)
		}
		c.reportFailure(addr)
		if c.noteFailure(addr) {
			c.failovers.Inc()
		}
		if (!sent || idempotentOps[req.Op]) && attempt < c.opts.MaxRetries {
			attempt++
			c.retries.Inc()
			if berr := transport.BackoffFullJitter(context.Background(), attempt-1,
				c.opts.RetryBaseDelay, c.opts.RetryMaxDelay); berr != nil {
				return wireResponse{}, addr, berr
			}
			continue
		}
		return wireResponse{}, addr, err
	}
}

// CreateSegment implements API.
func (c *RemoteClient) CreateSegment(seg Segment) error {
	_, err := c.call(&wireRequest{Op: "create", Segment: &seg})
	return err
}

// UpdateSegment implements API.
func (c *RemoteClient) UpdateSegment(seg Segment) error {
	_, err := c.call(&wireRequest{Op: "update", Segment: &seg})
	return err
}

// LookupSegment implements API.
func (c *RemoteClient) LookupSegment(name string) (Segment, error) {
	resp, err := c.call(&wireRequest{Op: "lookup", Name: name})
	if err != nil {
		return Segment{}, err
	}
	if resp.Segment == nil {
		return Segment{}, errors.New("metadata: lookup response missing segment")
	}
	return *resp.Segment, nil
}

// DeleteSegment implements API.
func (c *RemoteClient) DeleteSegment(name string) error {
	_, err := c.call(&wireRequest{Op: "delete", Name: name})
	return err
}

// ListSegments implements API (empty on transport errors, matching
// the in-process signature).
func (c *RemoteClient) ListSegments() []string {
	resp, err := c.call(&wireRequest{Op: "list"})
	if err != nil {
		return nil
	}
	return resp.Names
}

// RegisterServer implements API.
func (c *RemoteClient) RegisterServer(info Server) error {
	_, err := c.call(&wireRequest{Op: "register-server", Server: &info})
	return err
}

// UnregisterServer implements API.
func (c *RemoteClient) UnregisterServer(addr string) error {
	_, err := c.call(&wireRequest{Op: "unregister-server", Name: addr})
	return err
}

// SetServerState implements API.
func (c *RemoteClient) SetServerState(addr string, state ServerState) error {
	_, err := c.call(&wireRequest{Op: "set-server-state", Name: addr, State: string(state)})
	return err
}

// Servers implements API.
func (c *RemoteClient) Servers() []Server {
	resp, err := c.call(&wireRequest{Op: "servers"})
	if err != nil {
		return nil
	}
	return resp.Servers
}

// lock acquires a remote lock; the ctx bounds only the wait on our
// side (the request itself blocks server-side until granted). The
// unlock closure is pinned to the endpoint that granted the lock —
// tokens are server-local state, so failing over an unlock to a
// different replica would leak the lock instead of releasing it.
func (c *RemoteClient) lock(ctx context.Context, op, name string) (func(), error) {
	type result struct {
		resp wireResponse
		addr string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, addr, err := c.callAddr(&wireRequest{Op: op, Name: name})
		ch <- result{resp, addr, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		token, addr := r.resp.Token, r.addr
		return func() { c.unlockAt(addr, token) }, nil
	case <-ctx.Done():
		// The server may still grant the lock; release it when it
		// arrives so it is not leaked.
		go func() {
			if r := <-ch; r.err == nil {
				c.unlockAt(r.addr, r.resp.Token)
			}
		}()
		return nil, ctx.Err()
	}
}

// unlockAt releases a lock token at the endpoint that issued it, with
// a few same-endpoint retries (unlock is idempotent: an unknown token
// just errors).
func (c *RemoteClient) unlockAt(addr, token string) {
	for attempt := 0; ; attempt++ {
		_, _, err := c.roundTripTo(addr, &wireRequest{Op: "unlock", Token: token})
		if err == nil {
			c.reportSuccess(addr)
			return
		}
		c.reportFailure(addr)
		if attempt >= c.opts.MaxRetries {
			return
		}
		if transport.BackoffFullJitter(context.Background(), attempt,
			c.opts.RetryBaseDelay, c.opts.RetryMaxDelay) != nil {
			return
		}
	}
}

// LockRead implements API.
func (c *RemoteClient) LockRead(ctx context.Context, name string) (func(), error) {
	return c.lock(ctx, "lock-read", name)
}

// LockWrite implements API.
func (c *RemoteClient) LockWrite(ctx context.Context, name string) (func(), error) {
	return c.lock(ctx, "lock-write", name)
}

// Close closes pooled connections.
func (c *RemoteClient) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}
