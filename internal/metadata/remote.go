package metadata

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"
)

// This file puts the metadata service on the network: a JSON-over-
// length-prefixed-frames protocol carrying the API operations, so one
// metadata server can serve many RobuSTore clients (the Ch. 4
// framework's central metadata server, as deployed in practice).
//
// Locks acquired remotely are identified by server-issued tokens; the
// unlock closure returned to the caller sends the token back. Lock
// *waiting* happens server-side, one request per connection, so a
// client blocked on a lock does not wedge other clients (the client
// pool opens one connection per outstanding request).

const remoteMaxFrame = 16 << 20

// wire request/response. Exactly one of the op-specific fields is
// meaningful per op.
type wireRequest struct {
	Op      string   `json:"op"`
	Name    string   `json:"name,omitempty"`
	Segment *Segment `json:"segment,omitempty"`
	Server  *Server  `json:"server,omitempty"`
	Token   string   `json:"token,omitempty"`
}

type wireResponse struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	ErrKind string   `json:"err_kind,omitempty"`
	Segment *Segment `json:"segment,omitempty"`
	Names   []string `json:"names,omitempty"`
	Servers []Server `json:"servers,omitempty"`
	Token   string   `json:"token,omitempty"`
}

// err kinds preserved across the wire.
const (
	errKindExists   = "exists"
	errKindNoSeg    = "no-segment"
	errKindNoServer = "no-server"
)

func kindOf(err error) string {
	switch {
	case errors.Is(err, ErrSegmentExists):
		return errKindExists
	case errors.Is(err, ErrSegmentNotFound):
		return errKindNoSeg
	case errors.Is(err, ErrServerNotFound):
		return errKindNoServer
	default:
		return ""
	}
}

func errOfKind(kind, msg string) error {
	switch kind {
	case errKindExists:
		return ErrSegmentExists
	case errKindNoSeg:
		return ErrSegmentNotFound
	case errKindNoServer:
		return ErrServerNotFound
	default:
		return errors.New(msg)
	}
}

func writeJSONFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > remoteMaxFrame {
		return fmt.Errorf("metadata: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readJSONFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > remoteMaxFrame {
		return fmt.Errorf("metadata: inbound frame too large (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// NetworkServer exposes a Service over TCP.
type NetworkServer struct {
	svc *Service

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	locks   map[string]func() // token -> unlock
	nextTok int64
	closed  bool
	wg      sync.WaitGroup
}

// NewNetworkServer wraps a service for network serving.
func NewNetworkServer(svc *Service) *NetworkServer {
	return &NetworkServer{
		svc:   svc,
		conns: make(map[net.Conn]struct{}),
		locks: make(map[string]func()),
	}
}

// Serve accepts connections until Close.
func (s *NetworkServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("metadata: network server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops the server, releasing any locks still held by remote
// clients.
func (s *NetworkServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	locks := s.locks
	s.locks = map[string]func(){}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, unlock := range locks {
		unlock()
	}
	s.wg.Wait()
	return nil
}

func (s *NetworkServer) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	for {
		var req wireRequest
		if err := readJSONFrame(conn, &req); err != nil {
			return
		}
		resp := s.dispatch(&req)
		if err := writeJSONFrame(conn, resp); err != nil {
			return
		}
	}
}

func fail(err error) wireResponse {
	return wireResponse{Error: err.Error(), ErrKind: kindOf(err)}
}

func (s *NetworkServer) dispatch(req *wireRequest) wireResponse {
	switch req.Op {
	case "ping":
		return wireResponse{OK: true}
	case "create":
		if req.Segment == nil {
			return fail(errors.New("metadata: create without segment"))
		}
		if err := s.svc.CreateSegment(*req.Segment); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "update":
		if req.Segment == nil {
			return fail(errors.New("metadata: update without segment"))
		}
		if err := s.svc.UpdateSegment(*req.Segment); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "lookup":
		seg, err := s.svc.LookupSegment(req.Name)
		if err != nil {
			return fail(err)
		}
		return wireResponse{OK: true, Segment: &seg}
	case "delete":
		if err := s.svc.DeleteSegment(req.Name); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "list":
		return wireResponse{OK: true, Names: s.svc.ListSegments()}
	case "register-server":
		if req.Server == nil {
			return fail(errors.New("metadata: register without server"))
		}
		if err := s.svc.RegisterServer(*req.Server); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "unregister-server":
		if err := s.svc.UnregisterServer(req.Name); err != nil {
			return fail(err)
		}
		return wireResponse{OK: true}
	case "servers":
		return wireResponse{OK: true, Servers: s.svc.Servers()}
	case "lock-read", "lock-write":
		var unlock func()
		var err error
		if req.Op == "lock-read" {
			unlock, err = s.svc.LockRead(context.Background(), req.Name)
		} else {
			unlock, err = s.svc.LockWrite(context.Background(), req.Name)
		}
		if err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.nextTok++
		token := req.Op + "-" + req.Name + "-" + strconv.FormatInt(s.nextTok, 10)
		s.locks[token] = unlock
		s.mu.Unlock()
		return wireResponse{OK: true, Token: token}
	case "unlock":
		s.mu.Lock()
		unlock, ok := s.locks[req.Token]
		delete(s.locks, req.Token)
		s.mu.Unlock()
		if !ok {
			return fail(errors.New("metadata: unknown lock token"))
		}
		unlock()
		return wireResponse{OK: true}
	default:
		return fail(fmt.Errorf("metadata: unknown op %q", req.Op))
	}
}

// RemoteClient is a metadata.API backed by a NetworkServer. Safe for
// concurrent use; each in-flight request uses its own pooled
// connection.
type RemoteClient struct {
	addr        string
	dialTimeout time.Duration

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// DialRemote connects to a metadata network server.
func DialRemote(addr string) (*RemoteClient, error) {
	c := &RemoteClient{addr: addr, dialTimeout: 5 * time.Second}
	resp, err := c.roundTrip(&wireRequest{Op: "ping"})
	if err != nil {
		return nil, fmt.Errorf("metadata: dialing %s: %w", addr, err)
	}
	if !resp.OK {
		return nil, fmt.Errorf("metadata: ping failed: %s", resp.Error)
	}
	return c, nil
}

var _ API = (*RemoteClient)(nil)

func (c *RemoteClient) acquire() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("metadata: remote client closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return net.DialTimeout("tcp", c.addr, c.dialTimeout)
}

func (c *RemoteClient) release(conn net.Conn) {
	c.mu.Lock()
	if c.closed || len(c.idle) >= 8 {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}

func (c *RemoteClient) roundTrip(req *wireRequest) (wireResponse, error) {
	conn, err := c.acquire()
	if err != nil {
		return wireResponse{}, err
	}
	if err := writeJSONFrame(conn, req); err != nil {
		conn.Close()
		return wireResponse{}, err
	}
	var resp wireResponse
	if err := readJSONFrame(conn, &resp); err != nil {
		conn.Close()
		return wireResponse{}, err
	}
	c.release(conn)
	return resp, nil
}

// call runs one op and maps protocol errors back to API errors.
func (c *RemoteClient) call(req *wireRequest) (wireResponse, error) {
	resp, err := c.roundTrip(req)
	if err != nil {
		return resp, err
	}
	if !resp.OK {
		return resp, errOfKind(resp.ErrKind, resp.Error)
	}
	return resp, nil
}

// CreateSegment implements API.
func (c *RemoteClient) CreateSegment(seg Segment) error {
	_, err := c.call(&wireRequest{Op: "create", Segment: &seg})
	return err
}

// UpdateSegment implements API.
func (c *RemoteClient) UpdateSegment(seg Segment) error {
	_, err := c.call(&wireRequest{Op: "update", Segment: &seg})
	return err
}

// LookupSegment implements API.
func (c *RemoteClient) LookupSegment(name string) (Segment, error) {
	resp, err := c.call(&wireRequest{Op: "lookup", Name: name})
	if err != nil {
		return Segment{}, err
	}
	if resp.Segment == nil {
		return Segment{}, errors.New("metadata: lookup response missing segment")
	}
	return *resp.Segment, nil
}

// DeleteSegment implements API.
func (c *RemoteClient) DeleteSegment(name string) error {
	_, err := c.call(&wireRequest{Op: "delete", Name: name})
	return err
}

// ListSegments implements API (empty on transport errors, matching
// the in-process signature).
func (c *RemoteClient) ListSegments() []string {
	resp, err := c.call(&wireRequest{Op: "list"})
	if err != nil {
		return nil
	}
	return resp.Names
}

// RegisterServer implements API.
func (c *RemoteClient) RegisterServer(info Server) error {
	_, err := c.call(&wireRequest{Op: "register-server", Server: &info})
	return err
}

// UnregisterServer implements API.
func (c *RemoteClient) UnregisterServer(addr string) error {
	_, err := c.call(&wireRequest{Op: "unregister-server", Name: addr})
	return err
}

// Servers implements API.
func (c *RemoteClient) Servers() []Server {
	resp, err := c.call(&wireRequest{Op: "servers"})
	if err != nil {
		return nil
	}
	return resp.Servers
}

// lock acquires a remote lock; the ctx bounds only the wait on our
// side (the request itself blocks server-side until granted).
func (c *RemoteClient) lock(ctx context.Context, op, name string) (func(), error) {
	type result struct {
		resp wireResponse
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := c.call(&wireRequest{Op: op, Name: name})
		ch <- result{resp, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		token := r.resp.Token
		return func() { c.call(&wireRequest{Op: "unlock", Token: token}) }, nil
	case <-ctx.Done():
		// The server may still grant the lock; release it when it
		// arrives so it is not leaked.
		go func() {
			if r := <-ch; r.err == nil {
				c.call(&wireRequest{Op: "unlock", Token: r.resp.Token})
			}
		}()
		return nil, ctx.Err()
	}
}

// LockRead implements API.
func (c *RemoteClient) LockRead(ctx context.Context, name string) (func(), error) {
	return c.lock(ctx, "lock-read", name)
}

// LockWrite implements API.
func (c *RemoteClient) LockWrite(ctx context.Context, name string) (func(), error) {
	return c.lock(ctx, "lock-write", name)
}

// Close closes pooled connections.
func (c *RemoteClient) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}
