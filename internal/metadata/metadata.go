// Package metadata implements the RobuSTore metadata server (Ch. 4):
// it tracks data information (segment name, size, coding algorithm
// and parameters, block placements, versions, locks) and storage-
// server information (address, capacity, expected performance). The
// service is an in-process component; cmd/robustored and the examples
// embed it, matching the paper's observation that a single well-built
// metadata server suffices because it is touched only at open/close.
package metadata

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Coding records how a segment was erasure coded, sufficient for any
// client to rebuild the same coding graph (the graph is a
// deterministic function of these fields).
type Coding struct {
	Algorithm  string  // "lt" (the improved LT codes) or "replication"
	K          int     // original blocks
	N          int     // stored coded blocks
	BlockBytes int64   // coded block size
	C          float64 // LT soliton parameter
	Delta      float64 // LT soliton parameter
	GraphSeed  int64   // seed the writer used to build the coding graph
	GraphN     int     // total graph size (>= N; rateless writes overshoot)
	// ShareCRC records that every stored coded block is framed with a
	// client-side CRC-32C envelope (robust.Options share checksums):
	// readers must verify-and-strip it, and repairers must re-seal
	// regenerated blocks. False for segments written before the
	// envelope existed.
	ShareCRC bool
}

// Validate reports whether the coding record is self-consistent.
func (c Coding) Validate() error {
	if c.Algorithm == "" {
		return fmt.Errorf("metadata: empty coding algorithm")
	}
	if c.K < 1 || c.N < c.K || c.BlockBytes < 1 {
		return fmt.Errorf("metadata: inconsistent coding geometry K=%d N=%d block=%d",
			c.K, c.N, c.BlockBytes)
	}
	if c.GraphN != 0 && c.GraphN < c.N {
		return fmt.Errorf("metadata: GraphN %d < N %d", c.GraphN, c.N)
	}
	return nil
}

// Chunk describes one chunk of a streamed (pipelined) write: a
// contiguous slice of the segment, coded with its own graph. Chunk c
// owns the global coded-index range [c*ChunkStride, (c+1)*ChunkStride);
// its local index i appears on the wire as c*ChunkStride+i.
type Chunk struct {
	Size      int64 // original bytes in this chunk
	K         int   // original blocks
	N         int   // redundancy target (stored coded blocks)
	GraphSeed int64 // seed for this chunk's coding graph
	GraphN    int   // this chunk's graph size (N <= GraphN <= ChunkStride)
}

// Segment is the stored description of one data object.
type Segment struct {
	Name      string
	Size      int64 // original data size in bytes
	Coding    Coding
	Placement map[string][]int // server address -> coded indices in stored order
	Version   int64
	// Degraded marks a segment committed below its redundancy target
	// N (a graceful-degradation write while servers were unreachable):
	// the data is decodable but under-replicated, and Repair should
	// promote it back to N blocks and clear the flag.
	Degraded bool
	// Chunks, when non-empty, records a streamed multi-chunk write:
	// each chunk was coded independently and Coding holds the totals
	// (K = sum of chunk Ks, N = sum of chunk Ns). Absent (the common
	// single-graph case) the record reads exactly as it always has —
	// omitempty keeps legacy segments byte-identical on the wire.
	Chunks []Chunk `json:",omitempty"`
	// ChunkStride is the width of each chunk's global coded-index
	// range; non-zero exactly when Chunks is non-empty.
	ChunkStride int `json:",omitempty"`
}

// validateChunks checks the chunk table against the top-level record:
// the per-chunk geometry must be sane, fit inside the stride, and sum
// to the segment's size and coding totals.
func (s *Segment) validateChunks() error {
	if len(s.Chunks) == 0 {
		if s.ChunkStride != 0 {
			return fmt.Errorf("metadata: chunk stride %d without chunks", s.ChunkStride)
		}
		return nil
	}
	if s.ChunkStride < 1 {
		return fmt.Errorf("metadata: %d chunks without a stride", len(s.Chunks))
	}
	var size int64
	k, n := 0, 0
	for i, c := range s.Chunks {
		if c.Size < 1 || c.K < 1 || c.N < c.K {
			return fmt.Errorf("metadata: inconsistent chunk %d geometry size=%d K=%d N=%d", i, c.Size, c.K, c.N)
		}
		if c.GraphN < c.N || c.GraphN > s.ChunkStride {
			return fmt.Errorf("metadata: chunk %d GraphN %d outside [N=%d, stride=%d]", i, c.GraphN, c.N, s.ChunkStride)
		}
		size += c.Size
		k += c.K
		n += c.N
	}
	if size != s.Size || k != s.Coding.K || n != s.Coding.N {
		return fmt.Errorf("metadata: chunks sum to size=%d K=%d N=%d, segment says size=%d K=%d N=%d",
			size, k, n, s.Size, s.Coding.K, s.Coding.N)
	}
	return nil
}

// blockCount returns the total placed blocks.
func (s *Segment) blockCount() int {
	n := 0
	for _, idx := range s.Placement {
		n += len(idx)
	}
	return n
}

// ServerState is a storage server's lifecycle state. The zero value
// (an empty string — every record written before lifecycle states
// existed) reads as Active.
type ServerState string

// The lifecycle states. Active servers take new placements. Draining
// servers are excluded from new placements but their blocks remain
// readable while the rebalancer migrates them off. Removed servers
// are tombstones: never placed on, never re-admitted by placement
// fallback; their record survives so the rebalancer can finish
// evacuating any blocks still pointing at them.
const (
	ServerActive   ServerState = "active"
	ServerDraining ServerState = "draining"
	ServerRemoved  ServerState = "removed"
)

// Normalize maps the legacy empty value to Active.
func (s ServerState) Normalize() ServerState {
	if s == "" {
		return ServerActive
	}
	return s
}

// Valid reports whether the state is one of the lifecycle states.
func (s ServerState) Valid() bool {
	switch s.Normalize() {
	case ServerActive, ServerDraining, ServerRemoved:
		return true
	}
	return false
}

// Server describes one registered storage server.
type Server struct {
	Addr          string
	CapacityBytes int64
	// UsedBytes is the server's self-reported fill (0 = unknown);
	// placement weights lightly-filled servers higher.
	UsedBytes    int64
	ExpectedMBps float64
	Zone         string
	// State is the lifecycle state; empty means Active (records from
	// before lifecycle states existed).
	State ServerState
}

// Errors.
var (
	ErrSegmentExists   = errors.New("metadata: segment already exists")
	ErrSegmentNotFound = errors.New("metadata: segment not found")
	ErrServerNotFound  = errors.New("metadata: server not found")
	// ErrNotLeader is returned by a replicated metadata node asked to
	// perform an operation only the group leader may serve. Wrap it in
	// a NotLeaderError to attach the leader's client address.
	ErrNotLeader = errors.New("metadata: not the leader")
	// ErrAmbiguous reports that a write's fate is unknown: it reached
	// the service, but the link died before the answer came back. The
	// caller must not blindly re-issue a non-idempotent operation; it
	// should read back the record to learn what happened.
	ErrAmbiguous = errors.New("metadata: operation result unknown")
)

// NotLeaderError reports that the contacted replica is not the group
// leader. Leader, when known, is the leader's *client* address — the
// hint a failover client retargets to and the address the serving
// side proxies writes to.
type NotLeaderError struct {
	Leader string
}

// Error implements error.
func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "metadata: not the leader (leader unknown)"
	}
	return "metadata: not the leader (leader at " + e.Leader + ")"
}

// Is reports ErrNotLeader identity for errors.Is.
func (e *NotLeaderError) Is(target error) bool { return errors.Is(ErrNotLeader, target) }

// Service is the in-process metadata server. Safe for concurrent use.
type Service struct {
	mu       sync.Mutex
	segments map[string]*Segment
	servers  map[string]Server
	locks    map[string]*rwLock
}

// NewService returns an empty metadata service.
func NewService() *Service {
	return &Service{
		segments: make(map[string]*Segment),
		servers:  make(map[string]Server),
		locks:    make(map[string]*rwLock),
	}
}

// RegisterServer adds or updates a storage server record. A
// re-registration that does not set an explicit lifecycle state keeps
// the existing one, so a routine re-register (a server announcing
// itself on restart) cannot silently undrain or resurrect a removed
// server; rejoin is the explicit SetServerState path.
func (s *Service) RegisterServer(info Server) error {
	if info.Addr == "" {
		return fmt.Errorf("metadata: server with empty address")
	}
	if !info.State.Valid() {
		return fmt.Errorf("metadata: invalid server state %q", info.State)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.servers[info.Addr]; ok && info.State == "" {
		info.State = old.State
	}
	s.servers[info.Addr] = info
	return nil
}

// SetServerState moves a server through its lifecycle:
// Active ⇄ Draining → Removed (any transition is allowed — undrain
// and even re-activating a removed record are operator decisions).
func (s *Service) SetServerState(addr string, state ServerState) error {
	if !state.Normalize().Valid() {
		return fmt.Errorf("metadata: invalid server state %q", state)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	srv, ok := s.servers[addr]
	if !ok {
		return ErrServerNotFound
	}
	srv.State = state.Normalize()
	s.servers[addr] = srv
	return nil
}

// UnregisterServer removes a server record.
func (s *Service) UnregisterServer(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.servers[addr]; !ok {
		return ErrServerNotFound
	}
	delete(s.servers, addr)
	return nil
}

// Servers lists registered servers sorted by address.
func (s *Service) Servers() []Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Server, 0, len(s.servers))
	for _, v := range s.servers {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// CreateSegment registers a new segment (the close step of a write).
func (s *Service) CreateSegment(seg Segment) error {
	if seg.Name == "" {
		return fmt.Errorf("metadata: empty segment name")
	}
	if err := seg.Coding.Validate(); err != nil {
		return err
	}
	if seg.Size < 0 {
		return fmt.Errorf("metadata: negative segment size")
	}
	if err := (&seg).validateChunks(); err != nil {
		return err
	}
	// A degraded segment legitimately holds fewer than N blocks — the
	// write-path floor (≥ decode threshold) is enforced by the robust
	// client; metadata only insists on the weakest sane bound, K.
	if got := (&seg).blockCount(); got < seg.Coding.N && !seg.Degraded {
		return fmt.Errorf("metadata: placement holds %d blocks, coding requires N=%d", got, seg.Coding.N)
	} else if got < seg.Coding.K {
		return fmt.Errorf("metadata: placement holds %d blocks, below K=%d", got, seg.Coding.K)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.segments[seg.Name]; ok {
		return ErrSegmentExists
	}
	seg.Version = 1
	cp := seg
	cp.Placement = clonePlacement(seg.Placement)
	cp.Chunks = cloneChunks(seg.Chunks)
	s.segments[seg.Name] = &cp
	return nil
}

// UpdateSegment replaces a segment's record, bumping its version.
func (s *Service) UpdateSegment(seg Segment) error {
	if err := seg.Coding.Validate(); err != nil {
		return err
	}
	if err := (&seg).validateChunks(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.segments[seg.Name]
	if !ok {
		return ErrSegmentNotFound
	}
	seg.Version = old.Version + 1
	cp := seg
	cp.Placement = clonePlacement(seg.Placement)
	cp.Chunks = cloneChunks(seg.Chunks)
	s.segments[seg.Name] = &cp
	return nil
}

// LookupSegment returns a copy of the segment record.
func (s *Service) LookupSegment(name string) (Segment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.segments[name]
	if !ok {
		return Segment{}, ErrSegmentNotFound
	}
	cp := *seg
	cp.Placement = clonePlacement(seg.Placement)
	cp.Chunks = cloneChunks(seg.Chunks)
	return cp, nil
}

// DeleteSegment removes a segment record.
func (s *Service) DeleteSegment(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.segments[name]; !ok {
		return ErrSegmentNotFound
	}
	delete(s.segments, name)
	return nil
}

// ListSegments returns all segment names, sorted.
func (s *Service) ListSegments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.segments))
	for name := range s.segments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func cloneChunks(c []Chunk) []Chunk {
	if c == nil {
		return nil
	}
	return append([]Chunk(nil), c...)
}

func clonePlacement(p map[string][]int) map[string][]int {
	if p == nil {
		return nil
	}
	out := make(map[string][]int, len(p))
	for k, v := range p {
		out[k] = append([]int(nil), v...)
	}
	return out
}

// --- file locks (Ch. 4: "necessary file locking is applied by the
// metadata server") ---

func (s *Service) lockFor(name string) *rwLock {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.locks[name]
	if !ok {
		l = newRWLock()
		s.locks[name] = l
	}
	return l
}

// LockRead acquires a shared lock on a segment name, returning the
// unlock function.
func (s *Service) LockRead(ctx context.Context, name string) (func(), error) {
	return s.lockFor(name).lock(ctx, false)
}

// LockWrite acquires an exclusive lock on a segment name.
func (s *Service) LockWrite(ctx context.Context, name string) (func(), error) {
	return s.lockFor(name).lock(ctx, true)
}

// rwLock is a context-aware readers-writer lock (writer-exclusive, no
// writer preference — adequate for open/close-frequency locking).
type rwLock struct {
	mu      sync.Mutex
	readers int
	writer  bool
	change  chan struct{} // closed and replaced on every state change
}

func newRWLock() *rwLock {
	return &rwLock{change: make(chan struct{})}
}

func (l *rwLock) lock(ctx context.Context, exclusive bool) (func(), error) {
	for {
		l.mu.Lock()
		free := !l.writer && (!exclusive || l.readers == 0)
		if free {
			if exclusive {
				l.writer = true
			} else {
				l.readers++
			}
			l.mu.Unlock()
			return func() { l.unlock(exclusive) }, nil
		}
		ch := l.change
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}

func (l *rwLock) unlock(exclusive bool) {
	l.mu.Lock()
	if exclusive {
		l.writer = false
	} else {
		l.readers--
		if l.readers < 0 {
			l.mu.Unlock()
			panic("metadata: reader lock underflow")
		}
	}
	close(l.change)
	l.change = make(chan struct{})
	l.mu.Unlock()
}
