package placement

import (
	"errors"
	"testing"

	"repro/internal/metadata"
)

func cand(addr, zone string, state metadata.ServerState, down bool) Candidate {
	return Candidate{Addr: addr, Zone: zone, State: state, Down: down}
}

func TestSelectLadderPrefersActive(t *testing.T) {
	cands := []Candidate{
		cand("a", "", metadata.ServerActive, false),
		cand("b", "", metadata.ServerDraining, false),
		cand("c", "", metadata.ServerActive, true),
		cand("d", "", metadata.ServerRemoved, false),
	}
	sel, err := Select(cands, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Tier != TierActive || len(sel.Servers) != 1 || sel.Servers[0] != "a" {
		t.Fatalf("selection = %+v, want only the Active server", sel)
	}
}

func TestSelectLadderDegrades(t *testing.T) {
	// No healthy Active server: Draining is next, then Down servers
	// re-admitted last, Removed never.
	cases := []struct {
		name  string
		cands []Candidate
		want  []string
		tier  Tier
	}{
		{
			name: "draining before down",
			cands: []Candidate{
				cand("dr", "", metadata.ServerDraining, false),
				cand("dn", "", metadata.ServerActive, true),
				cand("rm", "", metadata.ServerRemoved, false),
			},
			want: []string{"dr"}, tier: TierDraining,
		},
		{
			name: "down active re-admitted last",
			cands: []Candidate{
				cand("dn", "", metadata.ServerActive, true),
				cand("rm", "", metadata.ServerRemoved, false),
			},
			want: []string{"dn"}, tier: TierDownActive,
		},
		{
			name: "down draining is the last rung",
			cands: []Candidate{
				cand("dd", "", metadata.ServerDraining, true),
				cand("rm", "", metadata.ServerRemoved, true),
			},
			want: []string{"dd"}, tier: TierDownDraining,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sel, err := Select(tc.cands, Policy{})
			if err != nil {
				t.Fatal(err)
			}
			if sel.Tier != tc.tier {
				t.Fatalf("tier = %v, want %v", sel.Tier, tc.tier)
			}
			if len(sel.Servers) != len(tc.want) || sel.Servers[0] != tc.want[0] {
				t.Fatalf("servers = %v, want %v", sel.Servers, tc.want)
			}
		})
	}
}

func TestSelectRemovedNeverAdmitted(t *testing.T) {
	cands := []Candidate{
		cand("a", "", metadata.ServerRemoved, false),
		cand("b", "", metadata.ServerRemoved, true),
	}
	if _, err := Select(cands, Policy{}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
	if _, err := Select(nil, Policy{}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("empty candidates: err = %v, want ErrNoCandidates", err)
	}
}

func TestSelectLegacyEmptyStateIsActive(t *testing.T) {
	// Records written before lifecycle states existed carry "".
	sel, err := Select([]Candidate{cand("old", "", "", false)}, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Tier != TierActive {
		t.Fatalf("legacy empty state landed in tier %v", sel.Tier)
	}
}

func TestSelectZoneSpreadAndCap(t *testing.T) {
	var cands []Candidate
	zones := []string{"z0", "z1", "z2"}
	for i := 0; i < 9; i++ {
		cands = append(cands, Candidate{
			Addr: string(rune('a' + i)), Zone: zones[i%3],
			State: metadata.ServerActive,
		})
	}
	sel, err := Select(cands, Policy{Servers: 3, SpreadZones: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range sel.Servers {
		seen[sel.ZoneOf[s]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("3 servers landed in %d zones: %v", len(seen), sel.Servers)
	}
	// MaxZoneShare 0.4 of 6 -> ceil(2.4) = 3 per zone; with the
	// interleave each zone contributes exactly 2.
	sel, err = Select(cands, Policy{Servers: 6, SpreadZones: true, MaxZoneShare: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	perZone := map[string]int{}
	for _, s := range sel.Servers {
		perZone[sel.ZoneOf[s]]++
	}
	for z, n := range perZone {
		if n > 3 {
			t.Fatalf("zone %s got %d servers over the cap", z, n)
		}
	}
	if len(sel.Servers) != 6 {
		t.Fatalf("selected %d servers, want 6", len(sel.Servers))
	}
}

func TestSelectZoneCapShortensRatherThanFails(t *testing.T) {
	// 2 zones, cap 1 server per zone, 4 requested: the selection
	// shortens to 2 — a smaller valid placement beats an error.
	cands := []Candidate{
		cand("a", "z0", metadata.ServerActive, false),
		cand("b", "z0", metadata.ServerActive, false),
		cand("c", "z1", metadata.ServerActive, false),
		cand("d", "z1", metadata.ServerActive, false),
	}
	sel, err := Select(cands, Policy{Servers: 4, SpreadZones: true, MaxZoneShare: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Servers) != 2 {
		t.Fatalf("selected %v, want one server per zone", sel.Servers)
	}
	if sel.ZoneOf[sel.Servers[0]] == sel.ZoneOf[sel.Servers[1]] {
		t.Fatalf("both selections in zone %s", sel.ZoneOf[sel.Servers[0]])
	}
}

func TestSelectPreferFast(t *testing.T) {
	cands := []Candidate{
		{Addr: "slow", State: metadata.ServerActive, ExpectedMBps: 10},
		{Addr: "mid", State: metadata.ServerActive, ExpectedMBps: 50},
		{Addr: "fast", State: metadata.ServerActive, ExpectedMBps: 90},
	}
	sel, err := Select(cands, Policy{Servers: 2, PreferFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Servers[0] != "fast" || sel.Servers[1] != "mid" {
		t.Fatalf("PreferFast order = %v", sel.Servers)
	}
}

func TestSelectDeterministicSeed(t *testing.T) {
	var cands []Candidate
	for i := 0; i < 8; i++ {
		cands = append(cands, Candidate{Addr: string(rune('a' + i)), State: metadata.ServerActive})
	}
	a, _ := Select(cands, Policy{Servers: 5, Seed: 42})
	b, _ := Select(cands, Policy{Servers: 5, Seed: 42})
	for i := range a.Servers {
		if a.Servers[i] != b.Servers[i] {
			t.Fatalf("same seed diverged: %v vs %v", a.Servers, b.Servers)
		}
	}
	// Caller ordering must not matter: the draw canonicalizes first.
	rev := append([]Candidate(nil), cands...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	c, _ := Select(rev, Policy{Servers: 5, Seed: 42})
	for i := range a.Servers {
		if a.Servers[i] != c.Servers[i] {
			t.Fatalf("input order changed the draw: %v vs %v", a.Servers, c.Servers)
		}
	}
}

func TestSelectWeightsFavorHeadroom(t *testing.T) {
	// A nearly full server should lead the order far less often than an
	// empty one across many seeds.
	cands := []Candidate{
		{Addr: "full", State: metadata.ServerActive, CapacityBytes: 100, UsedBytes: 99},
		{Addr: "empty", State: metadata.ServerActive, CapacityBytes: 100, UsedBytes: 0},
	}
	fullFirst := 0
	for seed := int64(0); seed < 200; seed++ {
		sel, err := Select(cands, Policy{Servers: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if sel.Servers[0] == "full" {
			fullFirst++
		}
	}
	if fullFirst > 40 { // weight ratio is 100:1; even 20% would be wildly off
		t.Fatalf("nearly-full server led %d/200 draws", fullFirst)
	}
}

func TestZoneCapShares(t *testing.T) {
	cases := []struct {
		frac  float64
		total int
		want  int
	}{
		{0, 40, 40},    // disabled
		{0.25, 40, 10}, // exact
		{0.3, 40, 12},  // ceil
		{0.001, 40, 1}, // floor of 1
		{1.5, 40, 60},  // nonsense fraction still monotone
	}
	for _, tc := range cases {
		if got := ZoneCapShares(tc.frac, tc.total); got != tc.want {
			t.Fatalf("ZoneCapShares(%v, %d) = %d, want %d", tc.frac, tc.total, got, tc.want)
		}
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierActive: "active", TierDraining: "draining",
		TierDownActive: "down-active", TierDownDraining: "down-draining",
		Tier(99): "unknown",
	} {
		if tier.String() != want {
			t.Fatalf("Tier(%d).String() = %q, want %q", tier, tier.String(), want)
		}
	}
}
