// Rebalance planning: given one segment's current share placement and
// the cluster's candidates, compute the migrations that bring the
// placement back into policy. Planning is pure and deterministic —
// the scrub daemon executes the moves under its token-bucket rate
// limit, so planning cost is never the throttle.
package placement

import (
	"sort"

	"repro/internal/metadata"
)

// Move is one planned share migration.
type Move struct {
	Segment string
	Index   int // share index within the segment
	From    string
	To      string
	// Reason labels the pass that produced the move: "lifecycle"
	// (evacuating a Draining/Removed holder), "zone" (shedding a zone
	// above the share cap), or "balance" (converging per-server counts
	// after a rejoin).
	Reason string
}

// Move reasons.
const (
	MoveLifecycle = "lifecycle"
	MoveZone      = "zone"
	MoveBalance   = "balance"
)

// RebalancePolicy bounds a segment rebalance plan.
type RebalancePolicy struct {
	// MaxZoneShare re-applies the write path's per-zone share cap
	// (0 = skip the zone pass).
	MaxZoneShare float64
	// BalanceSlack is how many shares above the fair per-server count
	// a holder may keep before the balance pass sheds the surplus.
	// Zero means the default of 2: converging the last share or two is
	// churn, not balance.
	BalanceSlack int
}

// PlanSegment computes the moves that bring one segment's placement
// back into policy. holders maps server address to the share indices
// it stores. Three passes, in priority order:
//
//  1. lifecycle — every share on a Draining or Removed holder moves
//     to a writable target (this is what lets a drain finish);
//  2. zone — zones holding more than the MaxZoneShare fraction of the
//     segment's shares shed the surplus to under-cap zones;
//  3. balance — holders carrying more than fair-share+slack shed to
//     the lightest writable targets, which converges placement onto a
//     rejoined (empty) server.
//
// Targets are always writable candidates (Active, not Down) that do
// not already hold the share being moved; among those the lightest
// planned load wins, ties broken by address, so plans are
// deterministic. When no admissible target exists a share simply
// stays put — the planner degrades by planning less, never by
// planning onto a draining or down server.
func PlanSegment(segment string, holders map[string][]int, cands []Candidate, p RebalancePolicy) []Move {
	s := newPlanState(segment, holders, cands, p)
	if len(s.targets) == 0 {
		return nil
	}
	s.lifecyclePass()
	s.zonePass()
	s.balancePass()
	return s.moves
}

// planState tracks the evolving placement while passes plan moves.
type planState struct {
	segment string
	policy  RebalancePolicy
	byAddr  map[string]Candidate
	targets []string         // writable target addrs, sorted
	load    map[string]int   // planned share count per addr
	held    map[string][]int // planned share indices per addr, sorted
	total   int
	moves   []Move
}

func newPlanState(segment string, holders map[string][]int, cands []Candidate, p RebalancePolicy) *planState {
	s := &planState{
		segment: segment,
		policy:  p,
		byAddr:  make(map[string]Candidate, len(cands)),
		load:    map[string]int{},
		held:    map[string][]int{},
	}
	if s.policy.BalanceSlack <= 0 {
		s.policy.BalanceSlack = 2
	}
	for _, c := range cands {
		s.byAddr[c.Addr] = c
		if Writable(c) {
			s.targets = append(s.targets, c.Addr)
			s.load[c.Addr] = 0 // admissible even when holding nothing
		}
	}
	sort.Strings(s.targets)
	for addr, idxs := range holders {
		held := append([]int(nil), idxs...)
		sort.Ints(held)
		s.held[addr] = held
		s.load[addr] = len(held)
		s.total += len(held)
	}
	return s
}

// holdsIndex reports whether addr already stores share idx (hedged
// writes can briefly duplicate a share; never co-locate another copy).
func (s *planState) holdsIndex(addr string, idx int) bool {
	for _, h := range s.held[addr] {
		if h == idx {
			return true
		}
	}
	return false
}

// pickTarget chooses the destination for one share: the writable
// candidate with the lowest planned load that doesn't hold the share,
// optionally restricted by a zone predicate. Ties break by address.
func (s *planState) pickTarget(idx int, exclude string, zoneOK func(zone string) bool) (string, bool) {
	best, found := "", false
	for _, t := range s.targets {
		if t == exclude || s.holdsIndex(t, idx) {
			continue
		}
		if zoneOK != nil && !zoneOK(s.byAddr[t].Zone) {
			continue
		}
		if !found || s.load[t] < s.load[best] {
			best, found = t, true
		}
	}
	return best, found
}

// move records one migration and updates the planned placement.
func (s *planState) move(idx int, from, to, reason string) {
	s.moves = append(s.moves, Move{Segment: s.segment, Index: idx, From: from, To: to, Reason: reason})
	held := s.held[from][:0]
	for _, h := range s.held[from] {
		if h != idx {
			held = append(held, h)
		}
	}
	s.held[from] = held
	s.held[to] = append(s.held[to], idx)
	s.load[from]--
	s.load[to]++
}

// sortedHolders returns the addresses currently holding shares, in
// deterministic order.
func (s *planState) sortedHolders() []string {
	addrs := make([]string, 0, len(s.held))
	for addr, idxs := range s.held {
		if len(idxs) > 0 {
			addrs = append(addrs, addr)
		}
	}
	sort.Strings(addrs)
	return addrs
}

// lifecyclePass evacuates every share held by a non-Active server.
// Down-but-Active holders stay: their shares can't be read for a
// migration, and regenerating lost shares is the repair daemon's job,
// not the rebalancer's. Holders missing from the registry entirely
// read as removed and are evacuated.
func (s *planState) lifecyclePass() {
	for _, addr := range s.sortedHolders() {
		c, known := s.byAddr[addr]
		if known && c.State.Normalize() == metadata.ServerActive {
			continue
		}
		for _, idx := range append([]int(nil), s.held[addr]...) {
			if to, ok := s.pickTarget(idx, addr, nil); ok {
				s.move(idx, addr, to, MoveLifecycle)
			}
		}
	}
}

// zonePass sheds shares from zones above the MaxZoneShare cap into
// zones with headroom. Shares leave the most-loaded holder in the
// over-cap zone first.
func (s *planState) zonePass() {
	if s.policy.MaxZoneShare <= 0 || s.total == 0 {
		return
	}
	cap := ZoneCapShares(s.policy.MaxZoneShare, s.total)
	for {
		zoneLoad := s.zoneLoads()
		over, surplus := "", 0
		for _, z := range sortedKeys(zoneLoad) {
			if zoneLoad[z] > cap && zoneLoad[z]-cap > surplus {
				over, surplus = z, zoneLoad[z]-cap
			}
		}
		if over == "" {
			return
		}
		idx, from, ok := s.heaviestShareInZone(over)
		if !ok {
			return
		}
		to, ok := s.pickTarget(idx, from, func(zone string) bool {
			return zone != over && zoneLoad[zone] < cap
		})
		if !ok {
			return // no under-cap destination; leave the imbalance to repair-time placement
		}
		s.move(idx, from, to, MoveZone)
	}
}

// zoneLoads sums planned shares per zone (holders missing from the
// registry count toward the empty zone, which is also what unzoned
// clusters use).
func (s *planState) zoneLoads() map[string]int {
	loads := map[string]int{}
	for addr, idxs := range s.held {
		loads[s.byAddr[addr].Zone] += len(idxs)
	}
	return loads
}

// heaviestShareInZone picks the next share to evict from an over-cap
// zone: the highest-index share on the most-loaded holder.
func (s *planState) heaviestShareInZone(zone string) (int, string, bool) {
	from, found := "", false
	for _, addr := range s.sortedHolders() {
		if s.byAddr[addr].Zone != zone {
			continue
		}
		if !found || s.load[addr] > s.load[from] {
			from, found = addr, true
		}
	}
	if !found {
		return 0, "", false
	}
	idxs := s.held[from]
	return idxs[len(idxs)-1], from, true
}

// balancePass converges per-server share counts: holders above
// fair+slack shed their highest-index shares to the lightest targets.
// A freshly rejoined server starts at load 0, so it soaks up the
// surplus first.
func (s *planState) balancePass() {
	if s.total == 0 || len(s.targets) == 0 {
		return
	}
	fair := (s.total + len(s.targets) - 1) / len(s.targets)
	limit := fair + s.policy.BalanceSlack
	for _, addr := range s.sortedHolders() {
		if !Writable(s.byAddr[addr]) {
			continue // lifecycle pass owns non-writable holders
		}
		for s.load[addr] > limit {
			idxs := s.held[addr]
			idx := idxs[len(idxs)-1]
			to, ok := s.pickTarget(idx, addr, nil)
			if !ok || s.load[to]+1 >= s.load[addr] {
				break // no move that actually improves balance
			}
			s.move(idx, addr, to, MoveBalance)
		}
	}
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
