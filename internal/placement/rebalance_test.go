package placement

import (
	"reflect"
	"testing"

	"repro/internal/metadata"
)

func activeCands(addrs ...string) []Candidate {
	out := make([]Candidate, 0, len(addrs))
	for _, a := range addrs {
		out = append(out, Candidate{Addr: a, State: metadata.ServerActive})
	}
	return out
}

// applyMoves replays a plan against a placement copy so tests can
// assert on the end state rather than the move list.
func applyMoves(holders map[string][]int, moves []Move) map[string][]int {
	out := map[string][]int{}
	for a, idxs := range holders {
		out[a] = append([]int(nil), idxs...)
	}
	for _, m := range moves {
		kept := out[m.From][:0]
		for _, i := range out[m.From] {
			if i != m.Index {
				kept = append(kept, i)
			}
		}
		out[m.From] = kept
		if len(out[m.From]) == 0 {
			delete(out, m.From)
		}
		out[m.To] = append(out[m.To], m.Index)
	}
	return out
}

func TestPlanSegmentEvacuatesDraining(t *testing.T) {
	cands := []Candidate{
		{Addr: "a", State: metadata.ServerActive},
		{Addr: "b", State: metadata.ServerActive},
		{Addr: "drain", State: metadata.ServerDraining},
	}
	holders := map[string][]int{
		"a":     {0, 1},
		"b":     {2},
		"drain": {3, 4, 5},
	}
	moves := PlanSegment("seg", holders, cands, RebalancePolicy{})
	if len(moves) != 3 {
		t.Fatalf("planned %d moves, want 3: %v", len(moves), moves)
	}
	for _, m := range moves {
		if m.From != "drain" || m.Reason != MoveLifecycle {
			t.Fatalf("unexpected move %+v", m)
		}
		if m.To == "drain" {
			t.Fatalf("move back onto the draining server: %+v", m)
		}
	}
	end := applyMoves(holders, moves)
	if len(end["drain"]) != 0 {
		t.Fatalf("draining server still holds %v", end["drain"])
	}
}

func TestPlanSegmentEvacuatesUnknownHolder(t *testing.T) {
	// A holder missing from the registry reads as removed.
	moves := PlanSegment("seg", map[string][]int{
		"ghost": {0, 1},
		"a":     {2},
	}, activeCands("a", "b"), RebalancePolicy{})
	if len(moves) != 2 {
		t.Fatalf("planned %d moves, want 2", len(moves))
	}
	for _, m := range moves {
		if m.From != "ghost" {
			t.Fatalf("unexpected move %+v", m)
		}
	}
}

func TestPlanSegmentLeavesDownHoldersToRepair(t *testing.T) {
	// Down-but-Active holders can't serve a migration read; their
	// shares are the repair daemon's problem, not the rebalancer's.
	cands := []Candidate{
		{Addr: "a", State: metadata.ServerActive},
		{Addr: "b", State: metadata.ServerActive},
		{Addr: "down", State: metadata.ServerActive, Down: true},
	}
	moves := PlanSegment("seg", map[string][]int{
		"a": {0}, "b": {1}, "down": {2, 3},
	}, cands, RebalancePolicy{})
	if len(moves) != 0 {
		t.Fatalf("planned %v for a down-but-active holder", moves)
	}
}

func TestPlanSegmentNoWritableTargets(t *testing.T) {
	cands := []Candidate{
		{Addr: "drain", State: metadata.ServerDraining},
		{Addr: "rm", State: metadata.ServerRemoved},
	}
	if moves := PlanSegment("seg", map[string][]int{"drain": {0, 1}}, cands, RebalancePolicy{}); moves != nil {
		t.Fatalf("planned %v with nowhere to go", moves)
	}
}

func TestPlanSegmentNeverDuplicatesShare(t *testing.T) {
	// The only target already holds share 0, so that share must stay.
	cands := activeCands("a")
	cands = append(cands, Candidate{Addr: "drain", State: metadata.ServerDraining})
	moves := PlanSegment("seg", map[string][]int{
		"drain": {0, 1},
		"a":     {0},
	}, cands, RebalancePolicy{})
	for _, m := range moves {
		if m.Index == 0 && m.To == "a" {
			t.Fatalf("share 0 co-located on a: %+v", moves)
		}
	}
	end := applyMoves(map[string][]int{"drain": {0, 1}, "a": {0}}, moves)
	if got := len(end["a"]); got != 2 {
		t.Fatalf("a holds %v, want shares 0 and 1", end["a"])
	}
}

func TestPlanSegmentZonePass(t *testing.T) {
	cands := []Candidate{
		{Addr: "a", Zone: "z0", State: metadata.ServerActive},
		{Addr: "b", Zone: "z0", State: metadata.ServerActive},
		{Addr: "c", Zone: "z1", State: metadata.ServerActive},
		{Addr: "d", Zone: "z2", State: metadata.ServerActive},
	}
	// 10 shares, 8 in z0: a 0.4 cap allows ceil(4) per zone.
	holders := map[string][]int{
		"a": {0, 1, 2, 3},
		"b": {4, 5, 6, 7},
		"c": {8},
		"d": {9},
	}
	moves := PlanSegment("seg", holders, cands, RebalancePolicy{MaxZoneShare: 0.4})
	end := applyMoves(holders, moves)
	zone := map[string]string{"a": "z0", "b": "z0", "c": "z1", "d": "z2"}
	loads := map[string]int{}
	total := 0
	for addr, idxs := range end {
		loads[zone[addr]] += len(idxs)
		total += len(idxs)
	}
	if total != 10 {
		t.Fatalf("shares leaked: %d of 10 after %v", total, moves)
	}
	if loads["z0"] > 4 {
		t.Fatalf("z0 still holds %d/10 after zone pass (cap 4): %v", loads["z0"], moves)
	}
	for _, m := range moves {
		if m.Reason != MoveZone {
			t.Fatalf("unexpected reason in %+v", m)
		}
	}
}

func TestPlanSegmentBalanceConvergesOntoRejoined(t *testing.T) {
	// One server holds everything; a freshly rejoined (empty) server
	// should soak up the surplus.
	cands := activeCands("packed", "rejoined")
	holders := map[string][]int{"packed": {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	moves := PlanSegment("seg", holders, cands, RebalancePolicy{BalanceSlack: 1})
	if len(moves) == 0 {
		t.Fatal("no balance moves planned for a maximally skewed placement")
	}
	end := applyMoves(holders, moves)
	if got := len(end["rejoined"]); got < 3 {
		t.Fatalf("rejoined server got %d shares: %v", got, moves)
	}
	for _, m := range moves {
		if m.Reason != MoveBalance {
			t.Fatalf("unexpected reason in %+v", m)
		}
	}
}

func TestPlanSegmentBalancedPlacementPlansNothing(t *testing.T) {
	cands := activeCands("a", "b", "c")
	holders := map[string][]int{"a": {0, 1}, "b": {2, 3}, "c": {4, 5}}
	if moves := PlanSegment("seg", holders, cands, RebalancePolicy{}); len(moves) != 0 {
		t.Fatalf("balanced placement planned %v", moves)
	}
}

func TestPlanSegmentDeterministic(t *testing.T) {
	cands := []Candidate{
		{Addr: "a", Zone: "z0", State: metadata.ServerActive},
		{Addr: "b", Zone: "z1", State: metadata.ServerActive},
		{Addr: "drain", Zone: "z0", State: metadata.ServerDraining},
	}
	holders := map[string][]int{"drain": {5, 1, 3}, "a": {0}}
	first := PlanSegment("seg", holders, cands, RebalancePolicy{MaxZoneShare: 0.5})
	for i := 0; i < 10; i++ {
		again := PlanSegment("seg", holders, cands, RebalancePolicy{MaxZoneShare: 0.5})
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("plan diverged: %v vs %v", first, again)
		}
	}
}
