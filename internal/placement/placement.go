// Package placement is RobuSTore's placement manager: it owns server
// selection and data-movement policy. The paper's §5.3.1 argues every
// object should be striped across diverse, lightly-loaded sites; this
// package turns that from a flat per-write server pick into a policy
// layer with failure domains (zones) as hard constraints, candidates
// weighted by lifecycle state, health, capacity fill, and expected
// performance, and a deterministic degrade ladder so placement never
// reports "no servers" while data is still reachable.
//
// The same selector serves every placement decision: write target
// sets, repair re-placement, hedge-alternate picks, and the
// rebalancer's migration targets (rebalance.go).
//
// # Degrade ladder
//
// Candidates are partitioned into strict priority tiers; the first
// non-empty tier is the selection pool (never a mix — topping an
// Active pool up with Draining servers would keep a drain from ever
// finishing):
//
//  1. TierActive:       Active lifecycle state, not Down.
//  2. TierDraining:     Draining, not Down — their disks are alive
//     and their blocks readable; placing on them only delays a drain,
//     which beats failing the write.
//  3. TierDownActive:   Active but failure-detector-Down, re-admitted
//     last: attempting a doomed write produces a clean error and
//     fresh detector evidence, ErrNoCandidates on a cluster that
//     merely flapped produces an outage.
//  4. TierDownDraining: Down and Draining.
//
// Removed servers are tombstones and are never admitted to any tier.
package placement

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/metadata"
)

// Candidate is one server as the selector sees it: registry facts
// (zone, capacity, expected performance, lifecycle state) joined with
// the failure detector's verdict.
type Candidate struct {
	Addr          string
	Zone          string
	State         metadata.ServerState
	ExpectedMBps  float64
	CapacityBytes int64
	UsedBytes     int64 // 0 = unknown fill
	Down          bool  // failure-detector eviction
}

// Tier identifies the degrade-ladder tier a selection drew from; see
// the package comment for the documented priority.
type Tier int

// The ladder tiers, in admission order.
const (
	TierActive Tier = iota
	TierDraining
	TierDownActive
	TierDownDraining
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierActive:
		return "active"
	case TierDraining:
		return "draining"
	case TierDownActive:
		return "down-active"
	case TierDownDraining:
		return "down-draining"
	default:
		return "unknown"
	}
}

// Policy expresses one placement decision's constraints.
type Policy struct {
	// Servers is how many servers to select (0 = every server in the
	// chosen tier).
	Servers int
	// SpreadZones interleaves the selection round-robin across zones
	// so a prefix of the result is as zone-diverse as possible.
	SpreadZones bool
	// PreferFast orders candidates by ExpectedMBps (the §5.3.1
	// "lightly-loaded disks" heuristic) instead of weighted sampling.
	PreferFast bool
	// MaxZoneShare caps the fraction of the selection any single zone
	// may contribute (0 disables the cap). The write path enforces the
	// same fraction on committed shares; capping the server set keeps
	// the two consistent.
	MaxZoneShare float64
	// Seed randomizes ties deterministically (same seed, same
	// selection).
	Seed int64
}

// Selection is a placement decision.
type Selection struct {
	Servers []string
	// Tier is the degrade-ladder tier the pool was drawn from;
	// anything past TierActive means the selector fell back.
	Tier Tier
	// ZoneOf maps each selected server to its zone.
	ZoneOf map[string]string
}

// ErrNoCandidates reports a selection with no admissible server in
// any tier: nothing is registered, or everything is Removed.
var ErrNoCandidates = errors.New("placement: no admissible servers")

// Select picks a server subset per the policy. See the package
// comment for the tier ladder; within the chosen tier candidates are
// ordered by seeded weighted sampling (weight = capacity-fill
// headroom × expected-performance factor), or strictly by
// ExpectedMBps under PreferFast, then interleaved across zones under
// SpreadZones and capped per zone by MaxZoneShare.
func Select(cands []Candidate, p Policy) (Selection, error) {
	pool, tier := ladderPool(cands)
	if len(pool) == 0 {
		return Selection{}, ErrNoCandidates
	}
	ordered := orderPool(pool, p)
	if p.SpreadZones {
		ordered = interleaveZones(ordered)
	}
	n := p.Servers
	if n <= 0 || n > len(ordered) {
		n = len(ordered)
	}
	sel := Selection{Tier: tier, ZoneOf: make(map[string]string, n)}
	zoneCap := len(ordered) // unlimited
	if p.MaxZoneShare > 0 {
		zoneCap = int(math.Ceil(p.MaxZoneShare * float64(n)))
		if zoneCap < 1 {
			zoneCap = 1
		}
	}
	perZone := map[string]int{}
	for _, c := range ordered {
		if len(sel.Servers) == n {
			break
		}
		if perZone[c.Zone] >= zoneCap {
			continue // this zone already holds its share of the selection
		}
		perZone[c.Zone]++
		sel.Servers = append(sel.Servers, c.Addr)
		sel.ZoneOf[c.Addr] = c.Zone
	}
	if len(sel.Servers) == 0 {
		// A zone cap below 1 server per zone cannot happen (floor 1),
		// so an empty result here means the pool itself was empty.
		return Selection{}, ErrNoCandidates
	}
	return sel, nil
}

// ladderPool returns the first non-empty tier and its label.
func ladderPool(cands []Candidate) ([]Candidate, Tier) {
	var tiers [4][]Candidate
	for _, c := range cands {
		switch st := c.State.Normalize(); {
		case st == metadata.ServerRemoved:
			// Tombstone: never admitted.
		case st == metadata.ServerActive && !c.Down:
			tiers[TierActive] = append(tiers[TierActive], c)
		case st == metadata.ServerDraining && !c.Down:
			tiers[TierDraining] = append(tiers[TierDraining], c)
		case st == metadata.ServerActive:
			tiers[TierDownActive] = append(tiers[TierDownActive], c)
		case st == metadata.ServerDraining:
			tiers[TierDownDraining] = append(tiers[TierDownDraining], c)
		}
	}
	for t, pool := range tiers {
		if len(pool) > 0 {
			return pool, Tier(t)
		}
	}
	return nil, TierActive
}

// weight scores one candidate: capacity headroom (a nearly full
// server is nearly never picked) times a mild expected-performance
// factor. Unknown capacity or performance contribute neutrally.
func weight(c Candidate) float64 {
	w := 1.0
	if c.CapacityBytes > 0 {
		headroom := 1 - float64(c.UsedBytes)/float64(c.CapacityBytes)
		if headroom < 0.01 {
			headroom = 0.01 // full servers stay admissible, barely
		}
		w *= headroom
	}
	if c.ExpectedMBps > 0 {
		w *= 1 + c.ExpectedMBps/100
	}
	return w
}

// orderPool orders the tier pool: deterministic weighted sampling
// without replacement (exponential-key method) under the policy seed,
// or a strict ExpectedMBps sort under PreferFast (ties broken by the
// sampled order).
func orderPool(pool []Candidate, p Policy) []Candidate {
	out := append([]Candidate(nil), pool...)
	// Canonical order first so the seeded draw is independent of
	// caller ordering.
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	rng := rand.New(rand.NewSource(p.Seed + 0x5ee1ec7))
	keys := make(map[string]float64, len(out))
	for _, c := range out {
		u := rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		// Smaller key = earlier pick; dividing the exponential draw by
		// the weight is the standard one-pass weighted sample.
		keys[c.Addr] = -math.Log(u) / weight(c)
	}
	sort.SliceStable(out, func(i, j int) bool { return keys[out[i].Addr] < keys[out[j].Addr] })
	if p.PreferFast {
		sort.SliceStable(out, func(i, j int) bool { return out[i].ExpectedMBps > out[j].ExpectedMBps })
	}
	return out
}

// interleaveZones round-robins the ordered pool across zones
// (first-appearance zone order, preserving intra-zone order), so any
// prefix of the result is as zone-diverse as the pool allows.
func interleaveZones(pool []Candidate) []Candidate {
	zones := map[string][]Candidate{}
	var zoneOrder []string
	for _, c := range pool {
		if _, ok := zones[c.Zone]; !ok {
			zoneOrder = append(zoneOrder, c.Zone)
		}
		zones[c.Zone] = append(zones[c.Zone], c)
	}
	out := make([]Candidate, 0, len(pool))
	for len(out) < len(pool) {
		for _, z := range zoneOrder {
			if len(zones[z]) == 0 {
				continue
			}
			out = append(out, zones[z][0])
			zones[z] = zones[z][1:]
		}
	}
	return out
}

// Writable reports whether a candidate may take new blocks without a
// ladder fallback: Active and not Down.
func Writable(c Candidate) bool {
	return c.State.Normalize() == metadata.ServerActive && !c.Down
}

// ZoneCapShares converts a share fraction into the absolute per-zone
// share cap for a segment committing total shares: ceil(frac·total),
// floored at 1 so a single-zone cluster still commits.
func ZoneCapShares(frac float64, total int) int {
	if frac <= 0 {
		return total
	}
	cap := int(math.Ceil(frac * float64(total)))
	if cap < 1 {
		cap = 1
	}
	return cap
}
