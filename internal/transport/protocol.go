// Package transport implements the RobuSTore block protocol: a
// length-prefixed binary request/response protocol over TCP between
// clients and storage servers. The Client implements
// blockstore.Store, so the RobuSTore client library treats local and
// remote stores uniformly; the Server exposes any blockstore.Store on
// the network, optionally behind an admission controller (§5.4).
//
// Frame layout (all integers big-endian):
//
//	request:  [4B frame length][1B op][2B segment length][segment]
//	          [4B block index][payload...]
//	response: [4B frame length][1B status][payload...]
//
// A GET response payload is the block; LIST and SCRUB response
// payloads are sequences of 4-byte indices (stored blocks and
// verification failures respectively); an error response payload is
// the message text.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Operation codes.
const (
	opPut    = byte(1)
	opGet    = byte(2)
	opDelete = byte(3)
	opList   = byte(4)
	opPing   = byte(5)
	opScrub  = byte(6) // verify a segment in place, return bad indices
)

// Response status codes.
const (
	statusOK          = byte(0)
	statusErr         = byte(1)
	statusNotFound    = byte(2)
	statusBusy        = byte(3) // admission controller refused the request
	statusUnsupported = byte(4) // server cannot perform the op (e.g. SCRUB without checksums)
)

// MaxFrame bounds a frame's size (op + header + payload); it limits
// both allocation on malformed input and the largest storable block.
const MaxFrame = 64 << 20

// request is a decoded request frame.
type request struct {
	op      byte
	segment string
	index   int
	payload []byte
}

// writeFrame writes one length-prefixed frame built from the given
// chunks.
func writeFrame(w io.Writer, chunks ...[]byte) error {
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	if total > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(total))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, c := range chunks {
		if _, err := w.Write(c); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one length-prefixed frame body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// encodeRequest serializes a request frame body.
func encodeRequest(op byte, segment string, index int, payload []byte) ([]byte, error) {
	if len(segment) > 0xFFFF {
		return nil, fmt.Errorf("transport: segment name too long (%d bytes)", len(segment))
	}
	if index < 0 {
		return nil, fmt.Errorf("transport: negative block index")
	}
	body := make([]byte, 1+2+len(segment)+4, 1+2+len(segment)+4+len(payload))
	body[0] = op
	binary.BigEndian.PutUint16(body[1:3], uint16(len(segment)))
	copy(body[3:], segment)
	binary.BigEndian.PutUint32(body[3+len(segment):], uint32(index))
	return append(body, payload...), nil
}

// decodeRequest parses a request frame body.
func decodeRequest(body []byte) (request, error) {
	if len(body) < 7 {
		return request{}, fmt.Errorf("transport: short request frame (%d bytes)", len(body))
	}
	op := body[0]
	segLen := int(binary.BigEndian.Uint16(body[1:3]))
	if len(body) < 3+segLen+4 {
		return request{}, fmt.Errorf("transport: truncated request frame")
	}
	seg := string(body[3 : 3+segLen])
	idx := int(binary.BigEndian.Uint32(body[3+segLen : 3+segLen+4]))
	payload := body[3+segLen+4:]
	return request{op: op, segment: seg, index: idx, payload: payload}, nil
}

// encodeIndices packs a LIST response payload.
func encodeIndices(indices []int) []byte {
	out := make([]byte, 4*len(indices))
	for i, idx := range indices {
		binary.BigEndian.PutUint32(out[4*i:], uint32(idx))
	}
	return out
}

// decodeIndices unpacks a LIST response payload.
func decodeIndices(payload []byte) ([]int, error) {
	if len(payload)%4 != 0 {
		return nil, fmt.Errorf("transport: malformed index list (%d bytes)", len(payload))
	}
	out := make([]int, len(payload)/4)
	for i := range out {
		out[i] = int(binary.BigEndian.Uint32(payload[4*i:]))
	}
	return out, nil
}
