// Package transport implements the RobuSTore block protocol: a
// length-prefixed binary request/response protocol over TCP between
// clients and storage servers. The Client implements
// blockstore.Store, so the RobuSTore client library treats local and
// remote stores uniformly; the Server exposes any blockstore.Store on
// the network, optionally behind an admission controller (§5.4).
//
// Frame layout (all integers big-endian):
//
//	request:  [4B frame length][1B op][2B segment length][segment]
//	          [4B block index][payload...]
//	response: [4B frame length][1B status][payload...]
//
// A GET response payload is the block; LIST and SCRUB response
// payloads are sequences of 4-byte indices (stored blocks and
// verification failures respectively); an error response payload is
// the message text.
//
// Batch operations (DESIGN.md §10) reuse the request layout with the
// index field carrying the entry count:
//
//	PUTBATCH request payload:  count × [4B index][4B length][data]
//	GETBATCH/DELETEBATCH request payload: count × [4B index]
//	batch response payload (status OK): count × [4B index][1B status]
//	          [4B length][bytes]   — bytes is block data for a GET
//	          entry that succeeded, an error message otherwise
//
// Per-entry statuses mean one bad block never fails its batch. CAPS
// ([4B bitmask] response) lets new clients probe for batch support;
// servers that predate it answer with an error status and the client
// degrades to single-block operations.
//
// PUTSTREAM (mux-only) is the pipelined write op: its request body is
// the standard header (index = declared entry count) followed by
// PUTBATCH-shaped entries, but the server consumes the entries
// incrementally as REQ chunks arrive — each entry is stored as soon
// as it is complete and acknowledged immediately with one
// batch-result-shaped entry ([4B index][1B status][4B length][bytes])
// streamed back as RESP chunks, so the client learns of durable
// blocks long before the stream finishes. Flow-control credit is
// granted only as entries are consumed, bounding server buffering by
// the stream window instead of the request size.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Operation codes.
const (
	opPut         = byte(1)
	opGet         = byte(2)
	opDelete      = byte(3)
	opList        = byte(4)
	opPing        = byte(5)
	opScrub       = byte(6) // verify a segment in place, return bad indices
	opPutBatch    = byte(7)
	opGetBatch    = byte(8)
	opDeleteBatch = byte(9)
	opCaps        = byte(10) // capability probe: which batch ops the server speaks
	opMuxUpgrade  = byte(11) // upgrade this connection to the multiplexed v2 framing
	opPutStream   = byte(12) // pipelined put over one mux stream with per-entry acks
)

// Capability bits returned by CAPS.
const (
	capPutBatch    = uint32(1 << 0)
	capGetBatch    = uint32(1 << 1)
	capDeleteBatch = uint32(1 << 2)
	capMux         = uint32(1 << 3) // server accepts opMuxUpgrade (transport v2)
	capPutStream   = uint32(1 << 4) // server handles opPutStream incrementally on mux streams
)

// Response status codes.
const (
	statusOK          = byte(0)
	statusErr         = byte(1)
	statusNotFound    = byte(2)
	statusBusy        = byte(3) // admission controller refused the request
	statusUnsupported = byte(4) // server cannot perform the op (e.g. SCRUB without checksums)
)

// MaxFrame bounds a frame's size (op + header + payload); it limits
// both allocation on malformed input and the largest storable block.
const MaxFrame = 64 << 20

// request is a decoded request frame.
type request struct {
	op      byte
	segment string
	index   int
	payload []byte
}

// writeFrame writes one length-prefixed frame built from the given
// chunks.
func writeFrame(w io.Writer, chunks ...[]byte) error {
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	if total > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(total))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, c := range chunks {
		if _, err := w.Write(c); err != nil {
			return err
		}
	}
	return nil
}

// writeFrameVec writes one length-prefixed frame from a chunk list
// using vectored I/O (net.Buffers → writev on TCP), so a batch frame
// referencing many pooled block buffers goes out without being copied
// into one contiguous body. The chunk slice is consumed. The 4-byte
// length header is leased from frameHdrPool for the duration of the
// write (it must survive until the writev drains, which the
// synchronous WriteTo guarantees).
func writeFrameVec(w io.Writer, chunks [][]byte) error {
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	if total > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	hdr := frameHdrPool.Get().(*[4]byte)
	defer frameHdrPool.Put(hdr)
	binary.BigEndian.PutUint32(hdr[:], uint32(total))
	bufs := make(net.Buffers, 0, len(chunks)+1)
	bufs = append(bufs, hdr[:])
	for _, c := range chunks {
		if len(c) > 0 {
			bufs = append(bufs, c)
		}
	}
	_, err := bufs.WriteTo(w)
	return err
}

// readFrame reads one length-prefixed frame body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// encodeRequest serializes a request frame body.
func encodeRequest(op byte, segment string, index int, payload []byte) ([]byte, error) {
	if len(segment) > 0xFFFF {
		return nil, fmt.Errorf("transport: segment name too long (%d bytes)", len(segment))
	}
	if index < 0 {
		return nil, fmt.Errorf("transport: negative block index")
	}
	body := make([]byte, 1+2+len(segment)+4, 1+2+len(segment)+4+len(payload))
	body[0] = op
	binary.BigEndian.PutUint16(body[1:3], uint16(len(segment)))
	copy(body[3:], segment)
	binary.BigEndian.PutUint32(body[3+len(segment):], uint32(index))
	return append(body, payload...), nil
}

// requestHeaderLen is the fixed request header size before the
// payload: op + segment length + segment + index.
func requestHeaderLen(segment string) int { return 1 + 2 + len(segment) + 4 }

// appendRequestHeader appends a request header to dst (the pooled-
// buffer twin of encodeRequest; the payload travels as its own
// chunks). The segment must already be length-checked.
func appendRequestHeader(dst []byte, op byte, segment string, index int) []byte {
	var h [7]byte
	h[0] = op
	binary.BigEndian.PutUint16(h[1:3], uint16(len(segment)))
	dst = append(dst, h[:3]...)
	dst = append(dst, segment...)
	binary.BigEndian.PutUint32(h[3:7], uint32(index))
	return append(dst, h[3:7]...)
}

// peekRequest reports a request body's op and header length once
// enough of it has arrived to read them — how the mux server spots a
// PUTSTREAM stream before its body is complete.
func peekRequest(buf []byte) (op byte, hdrLen int, ok bool) {
	if len(buf) < 3 {
		return 0, 0, false
	}
	segLen := int(binary.BigEndian.Uint16(buf[1:3]))
	hdrLen = 3 + segLen + 4
	if len(buf) < hdrLen {
		return 0, 0, false
	}
	return buf[0], hdrLen, true
}

// decodeRequest parses a request frame body.
func decodeRequest(body []byte) (request, error) {
	if len(body) < 7 {
		return request{}, fmt.Errorf("transport: short request frame (%d bytes)", len(body))
	}
	op := body[0]
	segLen := int(binary.BigEndian.Uint16(body[1:3]))
	if len(body) < 3+segLen+4 {
		return request{}, fmt.Errorf("transport: truncated request frame")
	}
	seg := string(body[3 : 3+segLen])
	idx := int(binary.BigEndian.Uint32(body[3+segLen : 3+segLen+4]))
	payload := body[3+segLen+4:]
	return request{op: op, segment: seg, index: idx, payload: payload}, nil
}

// encodeIndices packs a LIST response payload.
func encodeIndices(indices []int) []byte {
	out := make([]byte, 4*len(indices))
	for i, idx := range indices {
		binary.BigEndian.PutUint32(out[4*i:], uint32(idx))
	}
	return out
}

// decodeIndices unpacks a LIST response payload.
func decodeIndices(payload []byte) ([]int, error) {
	if len(payload)%4 != 0 {
		return nil, fmt.Errorf("transport: malformed index list (%d bytes)", len(payload))
	}
	out := make([]int, len(payload)/4)
	for i := range out {
		out[i] = int(binary.BigEndian.Uint32(payload[4*i:]))
	}
	return out, nil
}

// putEntry is one decoded PUTBATCH request entry. The data slice
// aliases the request frame body.
type putEntry struct {
	index int
	data  []byte
}

// putBatchEntryOverhead is the per-entry header size in a PUTBATCH
// request: [4B index][4B length].
const putBatchEntryOverhead = 8

// appendPutEntryHeader appends one PUTBATCH entry header to dst; the
// entry's data travels as its own chunk (vectored write).
func appendPutEntryHeader(dst []byte, index, dataLen int) []byte {
	var h [putBatchEntryOverhead]byte
	binary.BigEndian.PutUint32(h[0:4], uint32(index))
	binary.BigEndian.PutUint32(h[4:8], uint32(dataLen))
	return append(dst, h[:]...)
}

// decodePutEntries parses a PUTBATCH request payload. count is the
// declared entry count from the request's index field; it must match
// the payload exactly.
func decodePutEntries(count int, payload []byte) ([]putEntry, error) {
	if count < 0 || count > len(payload)/putBatchEntryOverhead {
		return nil, fmt.Errorf("transport: put batch count %d exceeds payload", count)
	}
	out := make([]putEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(payload) < putBatchEntryOverhead {
			return nil, fmt.Errorf("transport: truncated put batch entry %d", i)
		}
		idx := int(binary.BigEndian.Uint32(payload[0:4]))
		n := int(binary.BigEndian.Uint32(payload[4:8]))
		payload = payload[putBatchEntryOverhead:]
		if idx < 0 || n < 0 || n > len(payload) {
			return nil, fmt.Errorf("transport: oversized put batch entry %d (%d bytes)", i, n)
		}
		out = append(out, putEntry{index: idx, data: payload[:n]})
		payload = payload[n:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after put batch entries", len(payload))
	}
	return out, nil
}

// batchResult is one decoded batch response entry. bytes aliases the
// response frame body: block data for a successful GET entry, an error
// message for a failed entry, empty otherwise.
type batchResult struct {
	index  int
	status byte
	bytes  []byte
}

// batchResultOverhead is the per-entry header size in a batch
// response: [4B index][1B status][4B length].
const batchResultOverhead = 9

// appendBatchResultHeader appends one batch response entry header to
// dst; the entry's bytes travel as their own chunk.
func appendBatchResultHeader(dst []byte, index int, status byte, n int) []byte {
	var h [batchResultOverhead]byte
	binary.BigEndian.PutUint32(h[0:4], uint32(index))
	h[4] = status
	binary.BigEndian.PutUint32(h[5:9], uint32(n))
	return append(dst, h[:]...)
}

// decodeBatchResults parses a batch response payload.
func decodeBatchResults(payload []byte) ([]batchResult, error) {
	out := make([]batchResult, 0, len(payload)/batchResultOverhead)
	for len(payload) > 0 {
		if len(payload) < batchResultOverhead {
			return nil, fmt.Errorf("transport: truncated batch result header (%d bytes)", len(payload))
		}
		idx := int(binary.BigEndian.Uint32(payload[0:4]))
		status := payload[4]
		n := int(binary.BigEndian.Uint32(payload[5:9]))
		payload = payload[batchResultOverhead:]
		if idx < 0 || n < 0 || n > len(payload) {
			return nil, fmt.Errorf("transport: oversized batch result (%d bytes)", n)
		}
		out = append(out, batchResult{index: idx, status: status, bytes: payload[:n]})
		payload = payload[n:]
	}
	return out, nil
}

// encodeCaps packs the CAPS response payload.
func encodeCaps(mask uint32) []byte {
	var out [4]byte
	binary.BigEndian.PutUint32(out[:], mask)
	return out[:]
}

// decodeCaps unpacks a CAPS response payload.
func decodeCaps(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("transport: malformed caps payload (%d bytes)", len(payload))
	}
	return binary.BigEndian.Uint32(payload), nil
}
