package transport

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockstore"
)

// TestQuickDecodeRequestNeverPanics throws random frame bodies at the
// request decoder: it must reject or accept, never panic or over-read.
func TestQuickDecodeRequestNeverPanics(t *testing.T) {
	f := func(body []byte) bool {
		req, err := decodeRequest(body)
		if err != nil {
			return true
		}
		// On success the parsed fields must be consistent with the
		// frame: the declared segment fits and payload is the rest.
		return len(req.segment) <= len(body) &&
			len(req.payload) <= len(body) &&
			req.index >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRequestRoundTrip checks encode→decode is the identity for
// all valid inputs.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(op byte, segRaw []byte, index uint16, payload []byte) bool {
		seg := string(segRaw)
		if len(seg) > 0xFFFF {
			return true
		}
		body, err := encodeRequest(op, seg, int(index), payload)
		if err != nil {
			return false
		}
		req, err := decodeRequest(body)
		if err != nil {
			return false
		}
		return req.op == op && req.segment == seg &&
			req.index == int(index) && bytes.Equal(req.payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIndicesRoundTrip checks the LIST payload codec.
func TestQuickIndicesRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		in := make([]int, len(raw))
		for i, r := range raw {
			in[i] = int(r)
		}
		out, err := decodeIndices(encodeIndices(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDispatchNeverPanics drives the server dispatch table with
// arbitrary requests — every op byte (known and unknown, SCRUB
// included) against both a checksummed and a bare store — and checks
// the reply is always a known status, never a panic.
func TestQuickDispatchNeverPanics(t *testing.T) {
	plain := NewServer(blockstore.NewMemStore(), ServerOptions{})
	framed := NewServer(blockstore.WithChecksums(blockstore.NewMemStore()), ServerOptions{})
	t.Cleanup(func() { plain.Close(); framed.Close() })
	ctx := context.Background()
	f := func(op byte, segRaw []byte, index uint16, payload []byte, useFramed bool) bool {
		srv := plain
		if useFramed {
			srv = framed
		}
		seg := string(segRaw)
		if len(seg) > 0xFFFF {
			return true
		}
		status, _ := srv.dispatch(ctx, request{
			op: op, segment: seg, index: int(index), payload: payload,
		})
		switch status {
		case statusOK, statusErr, statusNotFound, statusBusy, statusUnsupported:
			return true
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReadFrameBoundedAllocation checks that a hostile header
// cannot force a huge allocation.
func TestQuickReadFrameBoundedAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		hdr := make([]byte, 4+rng.Intn(64))
		rng.Read(hdr)
		r := bytes.NewReader(hdr)
		// Must either error or return a body no larger than the
		// remaining input.
		body, err := readFrame(r)
		if err == nil && len(body) > len(hdr) {
			t.Fatalf("readFrame conjured %d bytes from %d", len(body), len(hdr))
		}
	}
}
