package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/admission"
)

// serverMuxDefaults bound what a server will accept during MUXUP
// negotiation regardless of the client's proposal.
var serverMuxDefaults = muxSettings{window: defaultMuxWindow, maxStreams: defaultMuxStreams}

// upgradeMux answers one MUXUP request. A malformed proposal is
// refused in-band (the connection stays on v1); a valid one is
// acknowledged with the clamped settings, after which the connection
// speaks v2 frames until it drops. Returns served=true when the
// connection was consumed by the mux loop.
func (s *Server) upgradeMux(ctx context.Context, conn net.Conn, req request) (served bool, err error) {
	peer, derr := decodeMuxSettings(req.payload)
	if derr != nil {
		return false, writeFrame(conn, []byte{statusErr}, []byte(derr.Error()))
	}
	chosen := serverMuxDefaults.negotiate(peer)
	ack := make([]byte, 0, 9)
	ack = append(ack, statusOK)
	ack = append(ack, encodeMuxSettings(chosen)...)
	if err := writeFrame(conn, ack); err != nil {
		return false, err
	}
	m := &muxServerConn{
		s:        s,
		conn:     conn,
		w:        &lockedWriter{w: conn},
		ctl:      newCtlQueue(),
		settings: chosen,
		ctx:      ctx,
		streams:  make(map[uint32]*muxServerStream),
	}
	// Control frames go out async so the serve read loop never blocks
	// on the write side; a control write failure means the conn is
	// broken, so closing it unblocks readFrame and ends serve.
	go m.ctl.run(m.w, func(error) { m.conn.Close() })
	m.serve()
	// serve's teardown closed the queue; closing the conn unblocks any
	// control write still in flight so the writer goroutine can exit.
	conn.Close()
	<-m.ctl.done
	return true, nil
}

// muxServerConn is the server half of one multiplexed connection: the
// serve loop reassembles per-stream requests and dispatches each as
// its own goroutine with its own context, so a RESET (or a client
// abandoning a timed-out stream) cancels exactly one request.
type muxServerConn struct {
	s        *Server
	conn     net.Conn
	w        *lockedWriter
	ctl      *ctlQueue
	settings muxSettings
	ctx      context.Context

	mu      sync.Mutex
	streams map[uint32]*muxServerStream
	wg      sync.WaitGroup
}

// muxServerStream is one stream's server-side state.
type muxServerStream struct {
	id     uint32
	buf    []byte
	fin    bool
	stream *muxPutStream // non-nil once the stream switched to PUTSTREAM mode
	send   *creditGate   // response-direction flow control
	cancel context.CancelFunc
	done   bool
}

// serve is the connection's v2 read loop. Like Server.handle, the
// loop lives exactly as long as the connection: a dropped conn (or
// Server.Close) unblocks readFrame, and teardown cancels every
// in-flight stream.
func (m *muxServerConn) serve() {
	defer m.teardown()
	//lint:ignore ctxcancel conn-lifetime loop; teardown cancels per-stream ctxs and conn close unblocks readFrame
	for {
		body, err := readFrame(m.conn)
		if err != nil {
			return // EOF or broken connection
		}
		f, err := decodeMuxFrame(body)
		if err != nil {
			m.s.logf("transport: bad mux frame from %v: %v", m.conn.RemoteAddr(), err)
			return
		}
		switch f.kind {
		case muxKindReq:
			m.handleReq(f)
		case muxKindWindow:
			m.mu.Lock()
			st, ok := m.streams[f.id]
			m.mu.Unlock()
			if ok {
				st.send.grant(f.credit)
			}
		case muxKindReset:
			m.resetStream(f.id, nil)
		default:
			m.s.logf("transport: unexpected mux frame kind %d from %v", f.kind, m.conn.RemoteAddr())
			return
		}
	}
}

// handleReq folds one REQ chunk into its stream, dispatching the
// request when the FIN chunk completes it. Per-stream violations
// (limit exceeded, oversized body, duplicate id after FIN, malformed
// request) RESET that stream only — never the connection.
func (m *muxServerConn) handleReq(f muxFrame) {
	m.mu.Lock()
	st, ok := m.streams[f.id]
	if ok && st.fin {
		// Duplicate request id: frames for a stream that already
		// finished its request half. Kill that stream, not the conn —
		// its neighbors are innocent.
		m.mu.Unlock()
		m.resetStream(f.id, []byte("transport: duplicate mux stream id"))
		return
	}
	if !ok {
		if len(m.streams) >= m.settings.maxStreams {
			m.mu.Unlock()
			m.sendReset(f.id, "transport: mux stream limit exceeded")
			return
		}
		st = &muxServerStream{id: f.id, send: newCreditGate(m.settings.window)}
		m.streams[f.id] = st
	}
	m.mu.Unlock()

	fin := f.flags&muxFlagFIN != 0
	if st.stream != nil {
		// PUTSTREAM mode: entry bytes flow straight to the consumer
		// goroutine; it grants credit as it drains them, which is what
		// bounds server-side buffering by the stream window.
		if fin {
			st.fin = true
		}
		if err := st.stream.feed(f.chunk, fin); err != nil {
			m.resetStream(f.id, []byte(err.Error()))
		}
		return
	}
	if len(st.buf)+len(f.chunk) > MaxFrame {
		m.resetStream(f.id, []byte("transport: mux request body overflow"))
		return
	}
	prev := len(st.buf)
	st.buf = append(st.buf, f.chunk...)
	if op, hdrLen, ok := peekRequest(st.buf); ok && op == opPutStream {
		m.startPutStream(st, hdrLen, prev, fin)
		return
	}
	if !fin {
		// Return the consumed credit (async, so the read loop never
		// blocks on the write side) so the client keeps streaming.
		if len(f.chunk) > 0 {
			m.ctl.grant(f.id, len(f.chunk))
		}
		return
	}
	st.fin = true
	req, err := decodeRequest(st.buf)
	if err != nil {
		m.resetStream(f.id, []byte(err.Error()))
		return
	}
	sctx, cancel := context.WithCancel(m.ctx)
	st.cancel = cancel
	m.s.m.muxStreams.Inc()
	m.wg.Add(1)
	go m.serveStream(sctx, st, req)
}

// startPutStream switches a stream into incremental PUTSTREAM mode
// the moment its request header is complete: entry bytes already
// buffered behind the header are handed to a consumer goroutine, and
// later REQ chunks feed it directly without whole-request reassembly.
func (m *muxServerConn) startPutStream(st *muxServerStream, hdrLen, prev int, fin bool) {
	req, err := decodeRequest(st.buf[:hdrLen])
	if err != nil {
		m.resetStream(st.id, []byte(err.Error()))
		return
	}
	ps := newMuxPutStream(req.segment, req.index)
	st.stream = ps
	st.fin = fin
	// Chunks that arrived before the header completed were granted on
	// receipt; of this chunk only the header bytes are consumed now —
	// entry bytes are granted as the consumer drains them.
	if hb := hdrLen - prev; hb > 0 && !fin {
		m.ctl.grant(st.id, hb)
	}
	if err := ps.feed(st.buf[hdrLen:], fin); err != nil {
		m.resetStream(st.id, []byte(err.Error()))
		return
	}
	st.buf = nil
	sctx, cancel := context.WithCancel(m.ctx)
	st.cancel = cancel
	m.s.m.muxStreams.Inc()
	m.wg.Add(1)
	go m.servePutStream(sctx, st, ps)
}

// sendReset tells the client to abandon one stream.
func (m *muxServerConn) sendReset(id uint32, msg string) {
	m.s.m.muxResets.Inc()
	m.ctl.reset(id, msg)
}

// resetStream aborts one stream: its dispatch context is canceled,
// its response writer released, and (when msg is non-nil) the client
// told to stop. Unknown ids are ignored — resets race completion.
func (m *muxServerConn) resetStream(id uint32, msg []byte) {
	m.mu.Lock()
	st, ok := m.streams[id]
	if ok {
		delete(m.streams, id)
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	st.send.close(fmt.Errorf("transport: mux stream %d reset", id))
	if st.stream != nil {
		st.stream.fail(fmt.Errorf("transport: mux stream %d reset", id))
	}
	if st.cancel != nil {
		st.cancel()
	}
	if msg != nil {
		m.sendReset(id, string(msg))
	}
}

// finishStream retires a completed stream.
func (m *muxServerConn) finishStream(st *muxServerStream) {
	m.mu.Lock()
	delete(m.streams, st.id)
	m.mu.Unlock()
	st.send.close(fmt.Errorf("transport: mux stream %d finished", st.id))
	if st.stream != nil {
		// If the consumer quit early (broken conn mid-ack) the read
		// loop may still feed the stream; failing it makes feed drop
		// further chunks instead of buffering them forever.
		st.stream.fail(fmt.Errorf("transport: mux stream %d finished", st.id))
	}
	if st.cancel != nil {
		st.cancel()
	}
}

// teardown fails every in-flight stream and waits for their handlers.
func (m *muxServerConn) teardown() {
	m.ctl.close()
	m.mu.Lock()
	streams := make([]*muxServerStream, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.streams = make(map[uint32]*muxServerStream)
	m.mu.Unlock()
	for _, st := range streams {
		st.send.close(fmt.Errorf("transport: mux connection closed"))
		if st.stream != nil {
			st.stream.fail(fmt.Errorf("transport: mux connection closed"))
		}
		if st.cancel != nil {
			st.cancel()
		}
	}
	m.wg.Wait()
}

// serveStream executes one reassembled request and streams its
// response back as credit-gated RESP chunks. It runs as its own
// goroutine: a 16 MB GET, a scrub, and a PING proceed concurrently on
// one connection, each blocking only on its own stream's window.
func (m *muxServerConn) serveStream(ctx context.Context, st *muxServerStream, req request) {
	defer m.wg.Done()
	defer m.finishStream(st)
	m.s.m.muxInflight.Add(1)
	defer m.s.m.muxInflight.Add(-1)
	var status byte
	var chunks [][]byte
	switch req.op {
	case opPutBatch, opGetBatch, opDeleteBatch, opCaps:
		start := time.Now()
		m.s.m.ops[req.op].Inc()
		scratch := getScratch()
		defer putScratch(scratch)
		status, chunks = m.s.dispatchBatch(ctx, req, scratch)
		m.s.m.opSeconds[req.op].Observe(time.Since(start).Seconds())
		if status != statusOK {
			m.s.m.errors.Inc()
		}
	case opMuxUpgrade:
		status, chunks = statusErr, [][]byte{[]byte("transport: connection already multiplexed")}
	default:
		st2, payload := m.s.dispatch(ctx, req)
		status = st2
		if len(payload) > 0 {
			chunks = [][]byte{payload}
		}
	}
	m.writeResponse(st, status, chunks)
}

// writeResponse streams one response as chunked RESP frames, taking
// per-stream credit before each chunk so a slow or abandoned reader
// stalls only this stream. The status rides on every frame (first
// wins client-side), so even an empty response carries it.
func (m *muxServerConn) writeResponse(st *muxServerStream, status byte, chunks [][]byte) {
	total := 0
	for _, ch := range chunks {
		total += len(ch)
	}
	stalled := func() { m.s.m.muxStalls.Inc() }
	written := 0
	for _, ch := range chunks {
		for len(ch) > 0 {
			n, err := st.send.take(len(ch), stalled)
			if err != nil {
				return // stream reset or connection down
			}
			fin := byte(0)
			if written+n == total {
				fin = muxFlagFIN
			}
			if err := writeMuxFrame(m.w, muxKindResp, st.id, []byte{fin, status}, ch[:n]); err != nil {
				return
			}
			written += n
			ch = ch[n:]
		}
	}
	if total == 0 {
		writeMuxFrame(m.w, muxKindResp, st.id, []byte{muxFlagFIN, status}, nil)
	}
}

// muxPutStream carries one PUTSTREAM request's entry bytes from the
// connection read loop to its consumer goroutine. It holds only the
// not-yet-consumed tail of the stream, which flow control keeps
// window-sized; MaxFrame is the backstop against a client that sends
// past its credit.
type muxPutStream struct {
	segment  string
	declared int // entry count from the request header's index field

	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	fin  bool
	err  error
}

func newMuxPutStream(segment string, declared int) *muxPutStream {
	p := &muxPutStream{segment: segment, declared: declared}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// feed appends one REQ chunk's entry bytes. Chunks after a failure are
// dropped — the reset is already on its way to the client.
func (p *muxPutStream) feed(chunk []byte, fin bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return nil
	}
	if len(p.buf)+len(chunk) > MaxFrame {
		p.err = errors.New("transport: mux request body overflow")
		p.cond.Broadcast()
		return p.err
	}
	p.buf = append(p.buf, chunk...)
	if fin {
		p.fin = true
	}
	p.cond.Broadcast()
	return nil
}

// fail wakes the consumer with a terminal error (stream reset,
// connection down). The first error wins.
func (p *muxPutStream) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// next blocks until one complete entry is buffered and returns it,
// with consumed the wire bytes it covered (header + data) — the
// credit to hand back. The entry data is copied into dst (grown as
// needed, reused across calls) because feed keeps appending into the
// shared buffer after next reslices it. Returns io.EOF once the FIN
// chunk arrived and the buffer drained.
func (p *muxPutStream) next(dst []byte) (idx int, data []byte, consumed int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.err != nil {
			return 0, nil, 0, p.err
		}
		if len(p.buf) >= putBatchEntryOverhead {
			idx = int(binary.BigEndian.Uint32(p.buf[0:4]))
			n := int(binary.BigEndian.Uint32(p.buf[4:8]))
			if idx < 0 || n < 0 || n > MaxFrame {
				return 0, nil, 0, fmt.Errorf("transport: malformed put stream entry (index %d, %d bytes)", idx, n)
			}
			if len(p.buf) >= putBatchEntryOverhead+n {
				data = append(dst[:0], p.buf[putBatchEntryOverhead:putBatchEntryOverhead+n]...)
				p.buf = p.buf[putBatchEntryOverhead+n:]
				return idx, data, putBatchEntryOverhead + n, nil
			}
		}
		if p.fin {
			if len(p.buf) == 0 {
				return 0, nil, 0, io.EOF
			}
			return 0, nil, 0, errors.New("transport: truncated put stream entry")
		}
		p.cond.Wait()
	}
}

// servePutStream consumes one PUTSTREAM request's entries as they
// arrive, storing and acking each one immediately — the server half
// of the pipelined write path. Credit is granted per consumed entry,
// so a stalled store backpressures the client instead of buffering
// the request.
func (m *muxServerConn) servePutStream(ctx context.Context, st *muxServerStream, ps *muxPutStream) {
	defer m.wg.Done()
	defer m.finishStream(st)
	m.s.m.muxInflight.Add(1)
	defer m.s.m.muxInflight.Add(-1)
	start := time.Now()
	m.s.m.ops[opPutStream].Inc()
	defer func() {
		m.s.m.opSeconds[opPutStream].Observe(time.Since(start).Seconds())
	}()
	var entryBuf, ackBuf []byte
	count := 0
	for {
		if ctx.Err() != nil {
			return // connection tearing down; finishStream fails the feed
		}
		idx, data, consumed, err := ps.next(entryBuf)
		if err == io.EOF {
			break
		}
		if err != nil {
			m.s.m.errors.Inc()
			m.resetStream(st.id, []byte(err.Error()))
			return
		}
		entryBuf = data
		m.ctl.grant(st.id, consumed)
		count++
		if count > ps.declared {
			m.s.m.errors.Inc()
			m.resetStream(st.id, []byte("transport: put stream entries exceed declared count"))
			return
		}
		m.s.m.batchBlocks.Inc()
		status, msg := m.putStreamEntry(ctx, ps.segment, idx, data)
		ackBuf = appendBatchResultHeader(ackBuf[:0], idx, status, len(msg))
		ackBuf = append(ackBuf, msg...)
		if !m.writeAck(st, ackBuf) {
			return
		}
	}
	if count != ps.declared {
		m.s.m.errors.Inc()
		m.resetStream(st.id, []byte(fmt.Sprintf("transport: put stream ended after %d of %d entries", count, ps.declared)))
		return
	}
	writeMuxFrame(m.w, muxKindResp, st.id, []byte{muxFlagFIN, statusOK}, nil)
}

// putStreamEntry stores one streamed entry under the same admission
// gate as the other data-path ops, sized by the entry rather than the
// whole (unbounded) stream.
func (m *muxServerConn) putStreamEntry(ctx context.Context, segment string, idx int, data []byte) (byte, []byte) {
	if m.s.opts.Admission != nil {
		release, err := m.s.opts.Admission.Admit(ctx, admission.Request{Bytes: int64(len(data))})
		if err != nil {
			m.s.m.busy.Inc()
			return statusBusy, []byte(err.Error())
		}
		defer release()
	}
	return batchStatus(m.s.store.Put(ctx, segment, idx, data))
}

// writeAck streams one ack entry as credit-gated RESP chunks, FIN-less
// — the response half closes with an empty FIN after the last entry.
func (m *muxServerConn) writeAck(st *muxServerStream, ack []byte) bool {
	stalled := func() { m.s.m.muxStalls.Inc() }
	for len(ack) > 0 {
		n, err := st.send.take(len(ack), stalled)
		if err != nil {
			return false // stream reset or connection down
		}
		if err := writeMuxFrame(m.w, muxKindResp, st.id, []byte{0, statusOK}, ack[:n]); err != nil {
			return false
		}
		ack = ack[n:]
	}
	return true
}
