package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// serverMuxDefaults bound what a server will accept during MUXUP
// negotiation regardless of the client's proposal.
var serverMuxDefaults = muxSettings{window: defaultMuxWindow, maxStreams: defaultMuxStreams}

// upgradeMux answers one MUXUP request. A malformed proposal is
// refused in-band (the connection stays on v1); a valid one is
// acknowledged with the clamped settings, after which the connection
// speaks v2 frames until it drops. Returns served=true when the
// connection was consumed by the mux loop.
func (s *Server) upgradeMux(ctx context.Context, conn net.Conn, req request) (served bool, err error) {
	peer, derr := decodeMuxSettings(req.payload)
	if derr != nil {
		return false, writeFrame(conn, []byte{statusErr}, []byte(derr.Error()))
	}
	chosen := serverMuxDefaults.negotiate(peer)
	ack := make([]byte, 0, 9)
	ack = append(ack, statusOK)
	ack = append(ack, encodeMuxSettings(chosen)...)
	if err := writeFrame(conn, ack); err != nil {
		return false, err
	}
	m := &muxServerConn{
		s:        s,
		conn:     conn,
		w:        &lockedWriter{w: conn},
		ctl:      newCtlQueue(),
		settings: chosen,
		ctx:      ctx,
		streams:  make(map[uint32]*muxServerStream),
	}
	// Control frames go out async so the serve read loop never blocks
	// on the write side; a control write failure means the conn is
	// broken, so closing it unblocks readFrame and ends serve.
	go m.ctl.run(m.w, func(error) { m.conn.Close() })
	m.serve()
	// serve's teardown closed the queue; closing the conn unblocks any
	// control write still in flight so the writer goroutine can exit.
	conn.Close()
	<-m.ctl.done
	return true, nil
}

// muxServerConn is the server half of one multiplexed connection: the
// serve loop reassembles per-stream requests and dispatches each as
// its own goroutine with its own context, so a RESET (or a client
// abandoning a timed-out stream) cancels exactly one request.
type muxServerConn struct {
	s        *Server
	conn     net.Conn
	w        *lockedWriter
	ctl      *ctlQueue
	settings muxSettings
	ctx      context.Context

	mu      sync.Mutex
	streams map[uint32]*muxServerStream
	wg      sync.WaitGroup
}

// muxServerStream is one stream's server-side state.
type muxServerStream struct {
	id     uint32
	buf    []byte
	fin    bool
	send   *creditGate // response-direction flow control
	cancel context.CancelFunc
	done   bool
}

// serve is the connection's v2 read loop. Like Server.handle, the
// loop lives exactly as long as the connection: a dropped conn (or
// Server.Close) unblocks readFrame, and teardown cancels every
// in-flight stream.
func (m *muxServerConn) serve() {
	defer m.teardown()
	//lint:ignore ctxcancel conn-lifetime loop; teardown cancels per-stream ctxs and conn close unblocks readFrame
	for {
		body, err := readFrame(m.conn)
		if err != nil {
			return // EOF or broken connection
		}
		f, err := decodeMuxFrame(body)
		if err != nil {
			m.s.logf("transport: bad mux frame from %v: %v", m.conn.RemoteAddr(), err)
			return
		}
		switch f.kind {
		case muxKindReq:
			m.handleReq(f)
		case muxKindWindow:
			m.mu.Lock()
			st, ok := m.streams[f.id]
			m.mu.Unlock()
			if ok {
				st.send.grant(f.credit)
			}
		case muxKindReset:
			m.resetStream(f.id, nil)
		default:
			m.s.logf("transport: unexpected mux frame kind %d from %v", f.kind, m.conn.RemoteAddr())
			return
		}
	}
}

// handleReq folds one REQ chunk into its stream, dispatching the
// request when the FIN chunk completes it. Per-stream violations
// (limit exceeded, oversized body, duplicate id after FIN, malformed
// request) RESET that stream only — never the connection.
func (m *muxServerConn) handleReq(f muxFrame) {
	m.mu.Lock()
	st, ok := m.streams[f.id]
	if ok && st.fin {
		// Duplicate request id: frames for a stream that already
		// finished its request half. Kill that stream, not the conn —
		// its neighbors are innocent.
		m.mu.Unlock()
		m.resetStream(f.id, []byte("transport: duplicate mux stream id"))
		return
	}
	if !ok {
		if len(m.streams) >= m.settings.maxStreams {
			m.mu.Unlock()
			m.sendReset(f.id, "transport: mux stream limit exceeded")
			return
		}
		st = &muxServerStream{id: f.id, send: newCreditGate(m.settings.window)}
		m.streams[f.id] = st
	}
	m.mu.Unlock()

	if len(st.buf)+len(f.chunk) > MaxFrame {
		m.resetStream(f.id, []byte("transport: mux request body overflow"))
		return
	}
	st.buf = append(st.buf, f.chunk...)
	if f.flags&muxFlagFIN == 0 {
		// Return the consumed credit (async, so the read loop never
		// blocks on the write side) so the client keeps streaming.
		if len(f.chunk) > 0 {
			m.ctl.grant(f.id, len(f.chunk))
		}
		return
	}
	st.fin = true
	req, err := decodeRequest(st.buf)
	if err != nil {
		m.resetStream(f.id, []byte(err.Error()))
		return
	}
	sctx, cancel := context.WithCancel(m.ctx)
	st.cancel = cancel
	m.s.m.muxStreams.Inc()
	m.wg.Add(1)
	go m.serveStream(sctx, st, req)
}

// sendReset tells the client to abandon one stream.
func (m *muxServerConn) sendReset(id uint32, msg string) {
	m.s.m.muxResets.Inc()
	m.ctl.reset(id, msg)
}

// resetStream aborts one stream: its dispatch context is canceled,
// its response writer released, and (when msg is non-nil) the client
// told to stop. Unknown ids are ignored — resets race completion.
func (m *muxServerConn) resetStream(id uint32, msg []byte) {
	m.mu.Lock()
	st, ok := m.streams[id]
	if ok {
		delete(m.streams, id)
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	st.send.close(fmt.Errorf("transport: mux stream %d reset", id))
	if st.cancel != nil {
		st.cancel()
	}
	if msg != nil {
		m.sendReset(id, string(msg))
	}
}

// finishStream retires a completed stream.
func (m *muxServerConn) finishStream(st *muxServerStream) {
	m.mu.Lock()
	delete(m.streams, st.id)
	m.mu.Unlock()
	st.send.close(fmt.Errorf("transport: mux stream %d finished", st.id))
	if st.cancel != nil {
		st.cancel()
	}
}

// teardown fails every in-flight stream and waits for their handlers.
func (m *muxServerConn) teardown() {
	m.ctl.close()
	m.mu.Lock()
	streams := make([]*muxServerStream, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.streams = make(map[uint32]*muxServerStream)
	m.mu.Unlock()
	for _, st := range streams {
		st.send.close(fmt.Errorf("transport: mux connection closed"))
		if st.cancel != nil {
			st.cancel()
		}
	}
	m.wg.Wait()
}

// serveStream executes one reassembled request and streams its
// response back as credit-gated RESP chunks. It runs as its own
// goroutine: a 16 MB GET, a scrub, and a PING proceed concurrently on
// one connection, each blocking only on its own stream's window.
func (m *muxServerConn) serveStream(ctx context.Context, st *muxServerStream, req request) {
	defer m.wg.Done()
	defer m.finishStream(st)
	m.s.m.muxInflight.Add(1)
	defer m.s.m.muxInflight.Add(-1)
	var status byte
	var chunks [][]byte
	switch req.op {
	case opPutBatch, opGetBatch, opDeleteBatch, opCaps:
		start := time.Now()
		m.s.m.ops[req.op].Inc()
		scratch := getScratch()
		defer putScratch(scratch)
		status, chunks = m.s.dispatchBatch(ctx, req, scratch)
		m.s.m.opSeconds[req.op].Observe(time.Since(start).Seconds())
		if status != statusOK {
			m.s.m.errors.Inc()
		}
	case opMuxUpgrade:
		status, chunks = statusErr, [][]byte{[]byte("transport: connection already multiplexed")}
	default:
		st2, payload := m.s.dispatch(ctx, req)
		status = st2
		if len(payload) > 0 {
			chunks = [][]byte{payload}
		}
	}
	m.writeResponse(st, status, chunks)
}

// writeResponse streams one response as chunked RESP frames, taking
// per-stream credit before each chunk so a slow or abandoned reader
// stalls only this stream. The status rides on every frame (first
// wins client-side), so even an empty response carries it.
func (m *muxServerConn) writeResponse(st *muxServerStream, status byte, chunks [][]byte) {
	total := 0
	for _, ch := range chunks {
		total += len(ch)
	}
	stalled := func() { m.s.m.muxStalls.Inc() }
	written := 0
	for _, ch := range chunks {
		for len(ch) > 0 {
			n, err := st.send.take(len(ch), stalled)
			if err != nil {
				return // stream reset or connection down
			}
			fin := byte(0)
			if written+n == total {
				fin = muxFlagFIN
			}
			if err := writeMuxFrame(m.w, muxKindResp, st.id, []byte{fin, status}, ch[:n]); err != nil {
				return
			}
			written += n
			ch = ch[n:]
		}
	}
	if total == 0 {
		writeMuxFrame(m.w, muxKindResp, st.id, []byte{muxFlagFIN, status}, nil)
	}
}
