package transport

import "sync"

// Scratch-buffer pool for the batch hot path. Batch requests and
// responses are assembled as small header chunks that reference the
// caller's block buffers (vectored writes), so the only per-batch
// allocations would be those headers — pooling them makes the
// steady-state transport cost of a batch approach zero allocations.
// Payload buffers are NOT pooled here: a GET response body is handed
// to the caller, which may retain it (the decoder does).
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getScratch returns an empty pooled scratch buffer.
func getScratch() *[]byte {
	b := scratchPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// putScratch returns a scratch buffer to the pool. Oversized buffers
// (a batch of huge error messages) are dropped so the pool's
// steady-state footprint stays bounded.
func putScratch(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	scratchPool.Put(b)
}

// frameHdrPool pools the 4-byte frame-length headers used by vectored
// writes, which must outlive the writeFrameVec call they are built in.
var frameHdrPool = sync.Pool{New: func() any { return new([4]byte) }}
