package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

// Fuzz and property tests for the batch frame codecs (DESIGN.md §10).
// The decoders face payloads from the network: they must reject
// oversized and truncated entries, never panic, and never refer to
// bytes outside the payload they were handed.

// validPutBatch builds a well-formed PUTBATCH payload.
func validPutBatch(entries ...[]byte) (int, []byte) {
	var buf []byte
	for i, data := range entries {
		buf = appendPutEntryHeader(buf, i, len(data))
		buf = append(buf, data...)
	}
	return len(entries), buf
}

func FuzzDecodePutEntries(f *testing.F) {
	// Seeds: valid batches, an oversized declared length, a truncated
	// entry header, trailing garbage, and a hostile count.
	count, ok := validPutBatch([]byte("block-a"), []byte(""), []byte("block-c"))
	f.Add(count, ok)
	oversized := append([]byte(nil), ok...)
	binary.BigEndian.PutUint32(oversized[4:8], 1<<30) // entry 0 claims 1 GiB
	f.Add(count, oversized)
	f.Add(count, ok[:len(ok)-3])                     // truncated final entry
	f.Add(count, append(ok[:len(ok):len(ok)], 0xFF)) // trailing byte
	f.Add(1<<30, ok)                                 // count exceeds payload
	f.Add(-1, ok)                                    // negative count
	f.Add(2, []byte{})                               // count with empty payload

	f.Fuzz(func(t *testing.T, count int, payload []byte) {
		entries, err := decodePutEntries(count, payload)
		if err != nil {
			return
		}
		if len(entries) != count {
			t.Fatalf("decoded %d entries, declared %d", len(entries), count)
		}
		total := 0
		for _, e := range entries {
			if e.index < 0 {
				t.Fatalf("negative index %d accepted", e.index)
			}
			total += putBatchEntryOverhead + len(e.data)
		}
		if total != len(payload) {
			t.Fatalf("entries cover %d of %d payload bytes", total, len(payload))
		}
	})
}

func FuzzDecodeBatchResults(f *testing.F) {
	var ok []byte
	ok = appendBatchResultHeader(ok, 3, statusOK, 5)
	ok = append(ok, "hello"...)
	ok = appendBatchResultHeader(ok, 9, statusNotFound, 0)
	f.Add(ok)
	oversized := append([]byte(nil), ok...)
	binary.BigEndian.PutUint32(oversized[5:9], 1<<31-1) // entry 0 claims 2 GiB
	f.Add(oversized)
	f.Add(ok[:len(ok)-4]) // truncated final header
	f.Add([]byte{0, 0})   // short fragment

	f.Fuzz(func(t *testing.T, payload []byte) {
		results, err := decodeBatchResults(payload)
		if err != nil {
			return
		}
		total := 0
		for _, r := range results {
			if r.index < 0 {
				t.Fatalf("negative index %d accepted", r.index)
			}
			total += batchResultOverhead + len(r.bytes)
		}
		if total != len(payload) {
			t.Fatalf("results cover %d of %d payload bytes", total, len(payload))
		}
	})
}

// TestQuickPutEntriesRoundTrip checks encode→decode is the identity
// for all valid PUTBATCH payloads.
func TestQuickPutEntriesRoundTrip(t *testing.T) {
	f := func(blocks [][]byte) bool {
		var buf []byte
		for i, data := range blocks {
			buf = appendPutEntryHeader(buf, i*7, len(data))
			buf = append(buf, data...)
		}
		entries, err := decodePutEntries(len(blocks), buf)
		if err != nil || len(entries) != len(blocks) {
			return false
		}
		for i, e := range entries {
			if e.index != i*7 || !bytes.Equal(e.data, blocks[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBatchResultsRoundTrip checks the batch response codec the
// same way, cycling through every wire status.
func TestQuickBatchResultsRoundTrip(t *testing.T) {
	statuses := []byte{statusOK, statusErr, statusNotFound, statusBusy, statusUnsupported}
	f := func(bodies [][]byte) bool {
		var buf []byte
		for i, b := range bodies {
			buf = appendBatchResultHeader(buf, i, statuses[i%len(statuses)], len(b))
			buf = append(buf, b...)
		}
		results, err := decodeBatchResults(buf)
		if err != nil || len(results) != len(bodies) {
			return false
		}
		for i, r := range results {
			if r.index != i || r.status != statuses[i%len(statuses)] || !bytes.Equal(r.bytes, bodies[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
