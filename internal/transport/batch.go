package transport

import (
	"context"
	"fmt"

	"repro/internal/blockstore"
)

// Client implements blockstore.Batcher: many blocks per round trip
// with per-index statuses, the wire half of the pipelined batch
// transport (DESIGN.md §10). Against a server that predates the batch
// ops the client degrades to loops of single-block operations — the
// capability is probed once (CAPS) and cached for the client's
// lifetime.
var _ blockstore.Batcher = (*Client)(nil)

// maxBatchEntries bounds the entries packed into one wire batch, so a
// huge logical batch still yields frames a server can buffer and a
// GET response stays far from MaxFrame.
const maxBatchEntries = 512

// capabilities returns the server's batch capability mask, probing it
// once. A transport failure during the probe is not cached — the next
// batch call probes again; a server answering the probe with any
// error status is cached as having no batch support.
func (c *Client) capabilities(ctx context.Context) uint32 {
	if v := c.caps.Load(); v != 0 {
		return v >> 1
	}
	status, payload, err := c.roundTripIdem(ctx, opCaps, "-", 0, nil)
	if err != nil {
		return 0
	}
	var mask uint32
	if status == statusOK {
		if m, derr := decodeCaps(payload); derr == nil {
			mask = m
		}
	}
	c.caps.Store(1 | mask<<1)
	return mask
}

// batchEntryError maps one batch response entry onto an error.
func batchEntryError(status byte, msg []byte) error {
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return blockstore.ErrNotFound
	default:
		return fmt.Errorf("transport: batch entry failed: %s", msg)
	}
}

// fillErrs sets every unset slot of errs to err.
func fillErrs(errs []error, err error) []error {
	for i := range errs {
		if errs[i] == nil {
			errs[i] = err
		}
	}
	return errs
}

// PutBatch implements blockstore.Batcher: all entries travel in as
// few request frames as MaxBatchBytes allows, each answered with
// per-index statuses so one bad block never fails its batch. The
// entry data buffers are not retained after PutBatch returns (they
// may come from a caller's pool). PUT is not idempotent, so batches
// are not retried — the caller re-routes failed entries, exactly as
// it does for single puts.
func (c *Client) PutBatch(ctx context.Context, segment string, puts []blockstore.BatchPut) []error {
	errs := make([]error, len(puts))
	if len(puts) == 0 {
		return errs
	}
	if len(segment) > 0xFFFF {
		return fillErrs(errs, fmt.Errorf("transport: segment name too long (%d bytes)", len(segment)))
	}
	if c.capabilities(ctx)&capPutBatch == 0 {
		c.m.batchFallbacks.Inc()
		for i, p := range puts {
			if cerr := ctx.Err(); cerr != nil {
				errs[i] = cerr
				continue
			}
			errs[i] = c.Put(ctx, segment, p.Index, p.Data)
		}
		return errs
	}
	// Window by bytes and entry count so each wire frame stays well
	// under MaxFrame.
	start, bytes := 0, 0
	for i, p := range puts {
		if cerr := ctx.Err(); cerr != nil {
			// Entries before start are already on the wire and keep
			// their results; the rest never will be sent.
			fillErrs(errs[start:], cerr)
			return errs
		}
		esz := putBatchEntryOverhead + len(p.Data)
		if i > start && (bytes+esz > c.maxBatchBytes || i-start >= maxBatchEntries) {
			c.putBatchWire(ctx, segment, puts[start:i], errs[start:i])
			start, bytes = i, 0
		}
		bytes += esz
	}
	c.putBatchWire(ctx, segment, puts[start:], errs[start:])
	return errs
}

// putBatchWire sends one PUTBATCH frame and fills errs per entry.
func (c *Client) putBatchWire(ctx context.Context, segment string, puts []blockstore.BatchPut, errs []error) {
	for _, p := range puts {
		if p.Index < 0 {
			fillErrs(errs, fmt.Errorf("transport: negative block index"))
			return
		}
	}
	scratch := getScratch()
	defer putScratch(scratch)
	growScratch(scratch, requestHeaderLen(segment)+putBatchEntryOverhead*len(puts))
	chunks := make([][]byte, 0, 1+2*len(puts))
	*scratch = appendRequestHeader(*scratch, opPutBatch, segment, len(puts))
	chunks = append(chunks, *scratch)
	for _, p := range puts {
		off := len(*scratch)
		*scratch = appendPutEntryHeader(*scratch, p.Index, len(p.Data))
		chunks = append(chunks, (*scratch)[off:len(*scratch)])
		if len(p.Data) > 0 {
			chunks = append(chunks, p.Data)
		}
	}
	status, payload, err := c.exchange(ctx, chunks)
	if err != nil {
		fillErrs(errs, err)
		return
	}
	c.finishBatch(puts, nil, errs, status, payload, nil)
}

// GetBatch implements blockstore.Batcher. GETs are idempotent, so
// each wire batch retries transport failures like single GETs do.
func (c *Client) GetBatch(ctx context.Context, segment string, indices []int) ([][]byte, []error) {
	datas := make([][]byte, len(indices))
	errs := make([]error, len(indices))
	if len(indices) == 0 {
		return datas, errs
	}
	if c.capabilities(ctx)&capGetBatch == 0 {
		c.m.batchFallbacks.Inc()
		for i, idx := range indices {
			if cerr := ctx.Err(); cerr != nil {
				errs[i] = cerr
				continue
			}
			datas[i], errs[i] = c.Get(ctx, segment, idx)
		}
		return datas, errs
	}
	for start := 0; start < len(indices); start += maxBatchEntries {
		if cerr := ctx.Err(); cerr != nil {
			fillErrs(errs[start:], cerr)
			break
		}
		end := start + maxBatchEntries
		if end > len(indices) {
			end = len(indices)
		}
		c.indexBatchWire(ctx, opGetBatch, segment, indices[start:end], datas[start:end], errs[start:end])
	}
	return datas, errs
}

// DeleteBatch implements blockstore.Batcher. Deletes are idempotent
// and retry like single deletes.
func (c *Client) DeleteBatch(ctx context.Context, segment string, indices []int) []error {
	errs := make([]error, len(indices))
	if len(indices) == 0 {
		return errs
	}
	if c.capabilities(ctx)&capDeleteBatch == 0 {
		c.m.batchFallbacks.Inc()
		for i, idx := range indices {
			if cerr := ctx.Err(); cerr != nil {
				errs[i] = cerr
				continue
			}
			errs[i] = c.Delete(ctx, segment, idx)
		}
		return errs
	}
	for start := 0; start < len(indices); start += maxBatchEntries {
		if cerr := ctx.Err(); cerr != nil {
			fillErrs(errs[start:], cerr)
			break
		}
		end := start + maxBatchEntries
		if end > len(indices) {
			end = len(indices)
		}
		c.indexBatchWire(ctx, opDeleteBatch, segment, indices[start:end], nil, errs[start:end])
	}
	return errs
}

// indexBatchWire sends one GETBATCH/DELETEBATCH frame (payload = the
// index list) and fills datas/errs per entry; datas is nil for
// deletes.
func (c *Client) indexBatchWire(ctx context.Context, op byte, segment string, indices []int, datas [][]byte, errs []error) {
	if len(segment) > 0xFFFF {
		fillErrs(errs, fmt.Errorf("transport: segment name too long (%d bytes)", len(segment)))
		return
	}
	for _, idx := range indices {
		if idx < 0 {
			fillErrs(errs, fmt.Errorf("transport: negative block index"))
			return
		}
	}
	scratch := getScratch()
	defer putScratch(scratch)
	growScratch(scratch, requestHeaderLen(segment)+4*len(indices))
	*scratch = appendRequestHeader(*scratch, op, segment, len(indices))
	for _, idx := range indices {
		*scratch = append(*scratch,
			byte(idx>>24), byte(idx>>16), byte(idx>>8), byte(idx))
	}
	status, payload, err := c.exchangeIdem(ctx, [][]byte{*scratch})
	if err != nil {
		fillErrs(errs, err)
		return
	}
	c.finishBatch(nil, indices, errs, status, payload, datas)
}

// finishBatch parses one batch response and distributes per-entry
// results. Either puts or indices names the request order; datas,
// when non-nil, receives GET payloads.
func (c *Client) finishBatch(puts []blockstore.BatchPut, indices []int, errs []error, status byte, payload []byte, datas [][]byte) {
	n := len(indices)
	if puts != nil {
		n = len(puts)
	}
	if status != statusOK {
		fillErrs(errs, statusToError(status, payload))
		return
	}
	results, err := decodeBatchResults(payload)
	if err != nil {
		fillErrs(errs, fmt.Errorf("transport: malformed batch response: %w", err))
		return
	}
	if len(results) != n {
		fillErrs(errs, fmt.Errorf("transport: malformed batch response (%d/%d entries)",
			len(results), n))
		return
	}
	for i, res := range results {
		want := 0
		if puts != nil {
			want = puts[i].Index
		} else {
			want = indices[i]
		}
		if res.index != want {
			errs[i] = fmt.Errorf("transport: batch response index %d, want %d", res.index, want)
			continue
		}
		errs[i] = batchEntryError(res.status, res.bytes)
		if datas != nil && errs[i] == nil {
			datas[i] = res.bytes
		}
	}
	c.m.batches.Inc()
	c.m.batchBlocks.Add(int64(n))
	c.m.batchRTSaved.Add(int64(n - 1))
}
