package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockstore"
)

// ErrMuxUnavailable reports that a streaming operation needs the
// multiplexed transport but the server does not speak it (or the
// upgrade could not be established right now). Callers fall back to
// the batch or single-op paths.
var ErrMuxUnavailable = errors.New("transport: mux transport unavailable")

// errMuxConnClosed reports an exchange cut short by its mux
// connection dying (read error, protocol violation, or Close); the
// request may or may not have reached the server.
var errMuxConnClosed = errors.New("transport: mux connection closed")

// HealthReporter receives per-server outcomes from the transport
// layer itself — most importantly per-stream timeouts observed by the
// mux demux path, which a caller that already hedged away may never
// surface to the failure detector. *health.Tracker implements it.
type HealthReporter interface {
	ReportSuccess(addr string)
	ReportFailure(addr string)
}

// muxConn is the client half of one multiplexed connection: a demux
// goroutine routes incoming frames to per-stream state, exchanges run
// concurrently as streams, and a per-stream failure (timeout, reset)
// never touches the connection or its other streams.
type muxConn struct {
	c        *Client
	conn     net.Conn
	w        *lockedWriter
	ctl      *ctlQueue
	settings muxSettings
	slots    chan struct{} // bounds concurrently open streams

	mu      sync.Mutex
	streams map[uint32]*muxStream
	nextID  uint32
	dead    bool
	err     error

	done chan struct{} // closed when the demux loop exits
}

// muxStream is one in-flight exchange on a muxConn.
type muxStream struct {
	id   uint32
	send *creditGate // request-direction flow control

	mu        sync.Mutex
	status    byte
	gotStatus bool
	// onData, when set (under mu, before the request goes out),
	// receives OK-status response chunks as they arrive instead of
	// buffering them in buf — the streaming-ack fast path. The chunk
	// aliases the frame body and is valid only during the call.
	onData   func(chunk []byte)
	buf      []byte
	finished bool
	err      error
	done     chan struct{}
}

// finish completes a stream exactly once.
func (s *muxStream) finish(err error) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.err = err
	s.mu.Unlock()
	s.send.close(errors.New("transport: mux stream finished"))
	close(s.done)
}

func (s *muxStream) isFinished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finished
}

// muxDefaults are the client's proposed settings (clamped by
// ClientOptions and by the server during negotiation).
func (c *Client) muxProposal() muxSettings {
	s := muxSettings{window: defaultMuxWindow, maxStreams: defaultMuxStreams}
	if c.muxWindow > 0 {
		s.window = c.muxWindow
	}
	if c.muxStreams > 0 {
		s.maxStreams = c.muxStreams
	}
	return s
}

// muxFor returns a live mux connection when the server is known to
// speak transport v2 (CAPS already probed, capMux set) and the mux is
// enabled; nil sends the caller down the v1 path. Establishment
// happens at most once at a time and failures are not retried for
// muxRedialBackoff, so a flapping upgrade cannot stall the data path
// — it degrades to v1 and heals later.
func (c *Client) muxFor(ctx context.Context) *muxConn {
	if c.muxDisabled {
		return nil
	}
	if v := c.caps.Load(); v == 0 || (v>>1)&capMux == 0 {
		return nil
	}
	c.muxMu.Lock()
	if c.muxClosed {
		c.muxMu.Unlock()
		return nil
	}
	// Reap dead conns, then pick the live conn with a free slot bias
	// (round robin).
	live := c.muxConns[:0]
	for _, m := range c.muxConns {
		if !m.isDead() {
			live = append(live, m)
		}
	}
	c.muxConns = live
	if len(live) >= c.muxMaxConns {
		m := live[c.muxNext%len(live)]
		c.muxNext++
		c.muxMu.Unlock()
		return m
	}
	if c.muxEstablishing || time.Now().Before(c.muxRetryAt) {
		var m *muxConn
		if len(live) > 0 {
			m = live[c.muxNext%len(live)]
			c.muxNext++
		}
		c.muxMu.Unlock()
		return m
	}
	c.muxEstablishing = true
	c.muxMu.Unlock()

	m, err := c.establishMux(ctx)
	c.muxMu.Lock()
	c.muxEstablishing = false
	if err != nil {
		c.muxRetryAt = time.Now().Add(muxRedialBackoff)
		c.m.muxFallbacks.Inc()
		var pick *muxConn
		if n := len(c.muxConns); n > 0 {
			pick = c.muxConns[c.muxNext%n]
			c.muxNext++
		}
		c.muxMu.Unlock()
		return pick
	}
	if c.muxClosed {
		c.muxMu.Unlock()
		m.fatal(errClientClosed)
		return nil
	}
	c.muxConns = append(c.muxConns, m)
	c.muxMu.Unlock()
	return m
}

// muxRedialBackoff spaces out failed upgrade attempts.
const muxRedialBackoff = 500 * time.Millisecond

// establishMux dials a dedicated connection and performs the MUXUP
// handshake: a v1 exchange proposing settings, answered with the
// server's (clamped) choice, after which the connection speaks v2.
func (c *Client) establishMux(ctx context.Context) (*muxConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		c.m.dialErrors.Inc()
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(c.dialTimeout))
	body, err := encodeRequest(opMuxUpgrade, "-", 0, encodeMuxSettings(c.muxProposal()))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeFrame(conn, body); err != nil {
		conn.Close()
		return nil, err
	}
	resp, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if len(resp) < 1 || resp[0] != statusOK {
		conn.Close()
		return nil, fmt.Errorf("%w: upgrade refused", ErrMuxUnavailable)
	}
	settings, err := decodeMuxSettings(resp[1:])
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	m := &muxConn{
		c:        c,
		conn:     conn,
		w:        &lockedWriter{w: conn},
		ctl:      newCtlQueue(),
		settings: settings,
		slots:    make(chan struct{}, settings.maxStreams),
		streams:  make(map[uint32]*muxStream),
		nextID:   1,
		done:     make(chan struct{}),
	}
	c.m.muxDials.Inc()
	go m.ctl.run(m.w, m.fatal)
	go m.demux()
	return m, nil
}

func (m *muxConn) isDead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

// fatal kills the connection: every in-flight stream fails with err,
// late frames are ignored, and the next exchange establishes a fresh
// mux (or falls back to v1). Safe to call from any goroutine, once or
// many times.
func (m *muxConn) fatal(err error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	m.err = err
	streams := make([]*muxStream, 0, len(m.streams))
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	m.streams = make(map[uint32]*muxStream)
	m.mu.Unlock()
	m.ctl.close()
	m.conn.Close()
	m.c.m.muxConnFailures.Inc()
	if m.c.health != nil && !errors.Is(err, errClientClosed) {
		m.c.health.ReportFailure(m.c.addr)
	}
	for _, s := range streams {
		s.finish(fmt.Errorf("%w: %w", errMuxConnClosed, err))
	}
}

// register allocates a stream id and installs the stream.
func (m *muxConn) register() (*muxStream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, fmt.Errorf("%w: %w", errMuxConnClosed, m.err)
	}
	for {
		id := m.nextID
		m.nextID++
		if m.nextID == 0 { // id 0 is reserved; skip on wraparound
			m.nextID = 1
		}
		if _, taken := m.streams[id]; taken || id == 0 {
			continue
		}
		s := &muxStream{
			id:   id,
			send: newCreditGate(m.settings.window),
			done: make(chan struct{}),
		}
		m.streams[id] = s
		return s, nil
	}
}

// unregister removes a stream so late frames for it are discarded
// (and its flow-control credit is never granted again).
func (m *muxConn) unregister(id uint32) {
	m.mu.Lock()
	delete(m.streams, id)
	m.mu.Unlock()
}

func (m *muxConn) lookup(id uint32) (*muxStream, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.streams[id]
	return s, ok
}

// demux is the connection's read loop: it routes every incoming frame
// to its stream, grants flow-control credit for consumed chunks, and
// tears the connection down on the first protocol violation or read
// error. It deliberately has no context: the loop exits when the
// connection closes, which fatal() and Close() both arrange.
//
//lint:ignore ctxcancel conn-lifetime loop; fatal()/Close() unblock readFrame via conn.Close
func (m *muxConn) demux() {
	defer close(m.done)
	for {
		body, err := readFrame(m.conn)
		if err != nil {
			m.fatal(err)
			return
		}
		f, err := decodeMuxFrame(body)
		if err != nil {
			m.fatal(err)
			return
		}
		m.c.m.muxFramesRecv.Inc()
		switch f.kind {
		case muxKindResp:
			s, ok := m.lookup(f.id)
			if !ok {
				// Late frame for a timed-out/completed stream: discard
				// without granting credit — the server quiesces on its
				// own window, and the earlier RESET told it to stop.
				m.c.m.muxLateFrames.Inc()
				continue
			}
			s.mu.Lock()
			if !s.gotStatus {
				s.status = f.status
				s.gotStatus = true
			}
			onData := s.onData
			if onData != nil && s.status == statusOK {
				s.mu.Unlock()
				if len(f.chunk) > 0 {
					onData(f.chunk)
				}
			} else {
				// Buffered path — also where a streaming op's error
				// response lands, so statusToError sees the message.
				if len(s.buf)+len(f.chunk) > MaxFrame {
					s.mu.Unlock()
					m.fatal(fmt.Errorf("transport: mux stream %d exceeds %d bytes", f.id, MaxFrame))
					return
				}
				s.buf = append(s.buf, f.chunk...)
				s.mu.Unlock()
			}
			if len(f.chunk) > 0 {
				// Return consumed credit via the async control queue so
				// this read loop never blocks on the write side (see
				// ctlQueue for the two-sided deadlock it prevents).
				m.ctl.grant(f.id, len(f.chunk))
			}
			if f.flags&muxFlagFIN != 0 {
				m.unregister(f.id)
				s.finish(nil)
			}
		case muxKindWindow:
			if s, ok := m.lookup(f.id); ok {
				s.send.grant(f.credit)
			}
		case muxKindReset:
			if s, ok := m.lookup(f.id); ok {
				m.unregister(f.id)
				s.finish(fmt.Errorf("transport: stream reset by server: %s", f.chunk))
			}
		default: // REQ from a server, or an unknown kind survived decode
			m.fatal(fmt.Errorf("transport: unexpected mux frame kind %d from server", f.kind))
			return
		}
	}
}

// exchange runs one request/response over its own stream. chunks is
// the v1-encoded request body (header + payload pieces); contents
// must stay valid until exchange returns. Timeouts and cancellations
// abandon only this stream: a RESET tells the server to drop the
// work, credit stops flowing, and the connection keeps serving its
// other streams — the v1 path would have discarded the pooled
// connection instead.
func (m *muxConn) exchange(ctx context.Context, chunks [][]byte) (byte, []byte, error) {
	select {
	case m.slots <- struct{}{}:
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	case <-m.done:
		return 0, nil, fmt.Errorf("%w: %w", errMuxConnClosed, m.connErr())
	}
	defer func() { <-m.slots }()

	s, err := m.register()
	if err != nil {
		return 0, nil, err
	}
	m.c.m.muxStreams.Inc()
	m.c.m.muxInflight.Add(1)
	defer m.c.m.muxInflight.Add(-1)
	start := time.Now()

	// The abandon watcher: cancellation and per-stream timeout both
	// finish the stream locally and RESET it remotely, without
	// touching the connection.
	var timeout <-chan time.Time
	if m.c.reqTimeout > 0 {
		t := time.NewTimer(m.c.reqTimeout)
		defer t.Stop()
		timeout = t.C
	}
	watchDone := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			m.abandon(s, ctx.Err())
		case <-timeout:
			m.c.m.muxStreamTimeouts.Inc()
			if m.c.health != nil {
				m.c.health.ReportFailure(m.c.addr)
			}
			m.abandon(s, fmt.Errorf("%w after %v: mux stream %d", ErrRequestTimeout, m.c.reqTimeout, s.id))
		case <-s.done:
		case <-watchDone:
		}
	}()
	defer func() {
		close(watchDone)
		watch.Wait()
	}()

	if err := m.writeRequest(s, chunks); err != nil {
		// The stream may already carry a more precise failure (timeout,
		// reset) that closed the send gate under the writer.
		<-s.done
		if s.err != nil {
			return 0, nil, s.err
		}
		return 0, nil, err
	}
	<-s.done
	if s.err != nil {
		return 0, nil, s.err
	}
	if !s.gotStatus {
		m.fatal(fmt.Errorf("transport: mux stream %d finished without a status", s.id))
		return 0, nil, fmt.Errorf("transport: empty mux response")
	}
	if m.c.health != nil {
		m.c.health.ReportSuccess(m.c.addr)
	}
	var sent int64
	for _, ch := range chunks {
		sent += int64(len(ch))
	}
	m.c.m.bytesSent.Add(sent)
	m.c.m.bytesRecv.Add(int64(len(s.buf)))
	m.c.m.roundTrip.Observe(time.Since(start).Seconds())
	return s.status, s.buf, nil
}

// abandon fails one stream locally and RESETs it remotely.
func (m *muxConn) abandon(s *muxStream, err error) {
	if s.isFinished() {
		return
	}
	m.unregister(s.id)
	s.finish(err)
	m.c.m.muxResets.Inc()
	// Best effort: if the conn is unwritable the demux will notice.
	m.ctl.reset(s.id, "abandoned by client")
}

// connErr returns the connection's terminal error.
func (m *muxConn) connErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	return errors.New("transport: mux connection down")
}

// writeRequest streams the request body as credit-gated REQ chunks.
func (m *muxConn) writeRequest(s *muxStream, chunks [][]byte) error {
	// Total so the final chunk carries FIN even when it lands on a
	// piece boundary.
	total := 0
	for _, ch := range chunks {
		total += len(ch)
	}
	written := 0
	stalled := func() { m.c.m.muxFlowStalls.Inc() }
	for _, ch := range chunks {
		for len(ch) > 0 {
			n, err := s.send.take(len(ch), stalled)
			if err != nil {
				return err
			}
			fin := byte(0)
			if written+n == total {
				fin = muxFlagFIN
			}
			if err := writeMuxFrame(m.w, muxKindReq, s.id, []byte{fin}, ch[:n]); err != nil {
				m.fatal(err)
				return err
			}
			m.c.m.muxFramesSent.Inc()
			ch = ch[n:]
			written += n
		}
	}
	if total == 0 {
		if err := writeMuxFrame(m.w, muxKindReq, s.id, []byte{muxFlagFIN}, nil); err != nil {
			m.fatal(err)
			return err
		}
		m.c.m.muxFramesSent.Inc()
	}
	return nil
}

// close shuts the mux connection down (Client.Close).
func (m *muxConn) close() {
	m.fatal(errClientClosed)
	<-m.done
}

// GetStream fetches many blocks concurrently over the multiplexed
// transport, delivering each block the moment its response frames
// complete — out of order, exactly as the decoder wants them. Every
// index becomes its own stream (with the usual idempotent retry
// policy), so a stalled block stalls only itself. Returns
// ErrMuxUnavailable without calling deliver when the server does not
// speak transport v2; callers then fall back to batch windows.
// deliver may be called from multiple goroutines.
func (c *Client) GetStream(ctx context.Context, segment string, indices []int, deliver func(index int, data []byte, err error)) error {
	if c.capabilities(ctx)&capMux == 0 {
		return ErrMuxUnavailable
	}
	if c.muxFor(ctx) == nil {
		return ErrMuxUnavailable
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, defaultMuxStreams/2)
	for _, idx := range indices {
		if err := ctx.Err(); err != nil {
			deliver(idx, nil, err)
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(idx int) {
			defer wg.Done()
			defer func() { <-sem }()
			data, err := c.Get(ctx, segment, idx)
			deliver(idx, data, err)
		}(idx)
	}
	wg.Wait()
	return nil
}

// PutStream ships many blocks over one pipelined PUTSTREAM stream:
// the server stores and acknowledges each entry as its bytes arrive,
// and acked(i, err) fires in order, exactly once per entry, as those
// acks come back — so the caller learns of durable blocks while later
// entries are still in flight. acked runs on transport goroutines and
// must not block or call back into the Client. Entry data is not
// retained after PutStream returns.
//
// The contract mirrors GetStream's: a non-nil return means acked was
// never called — the server lacks the capability (ErrMuxUnavailable)
// or the stream failed before any ack — and every entry may be safely
// retried on the batch or single-op paths. Once the first ack lands,
// PutStream returns nil and any mid-stream failure is delivered
// through acked for the remaining entries instead.
func (c *Client) PutStream(ctx context.Context, segment string, puts []blockstore.BatchPut, acked func(i int, err error)) error {
	caps := c.capabilities(ctx)
	if caps&capMux == 0 || caps&capPutStream == 0 {
		return ErrMuxUnavailable
	}
	m := c.muxFor(ctx)
	if m == nil {
		return ErrMuxUnavailable
	}
	if len(segment) > 0xFFFF {
		return fmt.Errorf("transport: segment name too long (%d bytes)", len(segment))
	}
	for _, p := range puts {
		if p.Index < 0 {
			return fmt.Errorf("transport: negative block index")
		}
	}
	if len(puts) == 0 {
		return nil
	}
	return m.putStream(ctx, segment, puts, acked)
}

// putStreamAcks parses the server's streamed ack entries and delivers
// them in order. feed runs on the demux goroutine; the final drain
// (after the stream closes) runs on the putStream goroutine — the
// mutex plus the done flag serialize the two so acked never runs
// twice for an entry or from two goroutines at once.
type putStreamAcks struct {
	m     *muxConn
	s     *muxStream
	puts  []blockstore.BatchPut
	acked func(i int, err error)

	progress atomic.Int64 // UnixNano of the last ack, for the stall watcher

	mu   sync.Mutex
	buf  []byte
	pos  int  // entries acked so far
	done bool // terminal drain started; drop late feeds
}

func (p *putStreamAcks) feed(chunk []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	p.buf = append(p.buf, chunk...)
	for len(p.buf) >= batchResultOverhead {
		idx := int(binary.BigEndian.Uint32(p.buf[0:4]))
		status := p.buf[4]
		n := int(binary.BigEndian.Uint32(p.buf[5:9]))
		if idx < 0 || n < 0 || n > MaxFrame {
			p.fail(fmt.Errorf("transport: malformed put stream ack (index %d, %d bytes)", idx, n))
			return
		}
		if len(p.buf) < batchResultOverhead+n {
			return // wait for the rest of the message
		}
		if p.pos >= len(p.puts) || idx != p.puts[p.pos].Index {
			p.fail(fmt.Errorf("transport: put stream ack for index %d, want %d", idx, p.puts[p.pos%len(p.puts)].Index))
			return
		}
		err := batchEntryError(status, p.buf[batchResultOverhead:batchResultOverhead+n])
		p.buf = p.buf[batchResultOverhead+n:]
		i := p.pos
		p.pos++
		p.progress.Store(time.Now().UnixNano())
		p.acked(i, err)
	}
}

// fail abandons the stream on a protocol violation (called with p.mu
// held); the terminal error reaches un-acked entries via the drain.
func (p *putStreamAcks) fail(err error) {
	p.done = true
	p.m.abandon(p.s, err)
}

// putStream runs one PUTSTREAM exchange. Unlike exchange, the
// per-stream timeout is progress-aware: it re-arms while acks keep
// arriving, so a long stream only times out when it stalls.
func (m *muxConn) putStream(ctx context.Context, segment string, puts []blockstore.BatchPut, acked func(i int, err error)) error {
	select {
	case m.slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	case <-m.done:
		return fmt.Errorf("%w: %w", errMuxConnClosed, m.connErr())
	}
	defer func() { <-m.slots }()

	s, err := m.register()
	if err != nil {
		return err
	}
	m.c.m.muxStreams.Inc()
	m.c.m.muxInflight.Add(1)
	defer m.c.m.muxInflight.Add(-1)
	start := time.Now()

	p := &putStreamAcks{m: m, s: s, puts: puts, acked: acked}
	p.progress.Store(start.UnixNano())
	s.mu.Lock()
	s.onData = p.feed
	s.mu.Unlock()

	var timeout <-chan time.Time
	var timer *time.Timer
	if m.c.reqTimeout > 0 {
		timer = time.NewTimer(m.c.reqTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	watchDone := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		for {
			select {
			case <-ctx.Done():
				m.abandon(s, ctx.Err())
				return
			case <-timeout:
				if idle := time.Since(time.Unix(0, p.progress.Load())); idle < m.c.reqTimeout {
					timer.Reset(m.c.reqTimeout - idle)
					continue
				}
				m.c.m.muxStreamTimeouts.Inc()
				if m.c.health != nil {
					m.c.health.ReportFailure(m.c.addr)
				}
				m.abandon(s, fmt.Errorf("%w after %v: mux stream %d stalled", ErrRequestTimeout, m.c.reqTimeout, s.id))
				return
			case <-s.done:
				return
			case <-watchDone:
				return
			}
		}
	}()
	defer func() {
		close(watchDone)
		watch.Wait()
	}()

	// The request reuses the PUTBATCH wire shape (header into pooled
	// scratch, entry data referenced in place); only the op differs.
	scratch := getScratch()
	defer putScratch(scratch)
	growScratch(scratch, requestHeaderLen(segment)+putBatchEntryOverhead*len(puts))
	chunks := make([][]byte, 0, 1+2*len(puts))
	*scratch = appendRequestHeader(*scratch, opPutStream, segment, len(puts))
	chunks = append(chunks, *scratch)
	for _, e := range puts {
		off := len(*scratch)
		*scratch = appendPutEntryHeader(*scratch, e.Index, len(e.Data))
		chunks = append(chunks, (*scratch)[off:len(*scratch)])
		if len(e.Data) > 0 {
			chunks = append(chunks, e.Data)
		}
	}

	werr := m.writeRequest(s, chunks)
	<-s.done

	var terminal error
	switch {
	case s.err != nil:
		terminal = s.err
	case !s.gotStatus:
		terminal = errors.New("transport: empty mux response")
	case s.status != statusOK:
		terminal = statusToError(s.status, s.buf)
	case werr != nil:
		terminal = werr
	}
	p.mu.Lock()
	p.done = true
	pos := p.pos
	p.mu.Unlock()
	if terminal == nil && pos < len(puts) {
		terminal = fmt.Errorf("transport: put stream truncated after %d of %d acks", pos, len(puts))
	}
	if pos == 0 && terminal != nil {
		return terminal // nothing acked: the caller may retry every entry
	}
	for i := pos; i < len(puts); i++ {
		acked(i, terminal)
	}
	if m.c.health != nil && terminal == nil {
		m.c.health.ReportSuccess(m.c.addr)
	}
	var sent int64
	for _, ch := range chunks {
		sent += int64(len(ch))
	}
	m.c.m.bytesSent.Add(sent)
	m.c.m.roundTrip.Observe(time.Since(start).Seconds())
	return nil
}
