package transport

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// encodeMuxTestFrame writes one v2 frame through the production writer
// and returns its body (length prefix stripped), i.e. exactly what
// decodeMuxFrame receives.
func encodeMuxTestFrame(t *testing.T, kind byte, id uint32, head, chunk []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeMuxFrame(&lockedWriter{w: &buf}, kind, id, head, chunk); err != nil {
		t.Fatalf("writeMuxFrame: %v", err)
	}
	body, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	return body
}

func TestMuxFrameHeaderRoundTrip(t *testing.T) {
	win := encodeMuxWindow(123456)
	cases := []struct {
		name string
		kind byte
		id   uint32
		head []byte
		body []byte
	}{
		{"req", muxKindReq, 7, []byte{muxFlagFIN}, []byte("hello request")},
		{"req-empty", muxKindReq, 0xFFFFFFFF, []byte{0}, nil},
		{"resp", muxKindResp, 42, []byte{0, statusNotFound}, []byte("chunk")},
		{"resp-fin-empty", muxKindResp, 1, []byte{muxFlagFIN, statusOK}, nil},
		{"window", muxKindWindow, 9, nil, win[:]},
		{"reset", muxKindReset, 3, nil, []byte("stop it")},
		{"reset-empty", muxKindReset, 3, nil, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := decodeMuxFrame(encodeMuxTestFrame(t, c.kind, c.id, c.head, c.body))
			if err != nil {
				t.Fatalf("decodeMuxFrame: %v", err)
			}
			if f.kind != c.kind || f.id != c.id {
				t.Fatalf("kind/id = %d/%d, want %d/%d", f.kind, f.id, c.kind, c.id)
			}
			switch c.kind {
			case muxKindReq:
				if f.flags != c.head[0] || !bytes.Equal(f.chunk, c.body) {
					t.Fatalf("REQ flags/chunk = %d/%q", f.flags, f.chunk)
				}
			case muxKindResp:
				if f.flags != c.head[0] || f.status != c.head[1] || !bytes.Equal(f.chunk, c.body) {
					t.Fatalf("RESP flags/status/chunk = %d/%d/%q", f.flags, f.status, f.chunk)
				}
			case muxKindWindow:
				if f.credit != 123456 {
					t.Fatalf("credit = %d, want 123456", f.credit)
				}
			case muxKindReset:
				if !bytes.Equal(f.chunk, c.body) {
					t.Fatalf("RESET message = %q, want %q", f.chunk, c.body)
				}
			}
		})
	}
}

func TestDecodeMuxFrameRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":           nil,
		"short-header":    {muxKindReq, 0, 0},
		"req-no-flags":    {muxKindReq, 0, 0, 0, 1},
		"resp-flags-only": {muxKindResp, 0, 0, 0, 1, 0},
		"window-short":    {muxKindWindow, 0, 0, 0, 1, 0, 0, 1},
		"window-long":     {muxKindWindow, 0, 0, 0, 1, 0, 0, 0, 1, 9},
		"window-negative": {muxKindWindow, 0, 0, 0, 1, 0x80, 0, 0, 0},
		"unknown-kind":    {9, 0, 0, 0, 1, 0},
		"kind-zero":       {0, 0, 0, 0, 1},
	}
	for name, body := range cases {
		if _, err := decodeMuxFrame(body); err == nil {
			t.Errorf("decodeMuxFrame(%s) accepted malformed frame %v", name, body)
		}
	}
}

func TestMuxSettingsRoundTripAndNegotiate(t *testing.T) {
	s := muxSettings{window: 1 << 20, maxStreams: 64}
	got, err := decodeMuxSettings(encodeMuxSettings(s))
	if err != nil || got != s {
		t.Fatalf("round trip = %+v, %v; want %+v", got, err, s)
	}
	for name, payload := range map[string][]byte{
		"short":        make([]byte, 7),
		"long":         make([]byte, 9),
		"zero-window":  encodeMuxSettings(muxSettings{window: 0, maxStreams: 4}),
		"zero-streams": encodeMuxSettings(muxSettings{window: 4, maxStreams: 0}),
	} {
		if _, err := decodeMuxSettings(payload); err == nil {
			t.Errorf("decodeMuxSettings(%s) accepted bad settings", name)
		}
	}
	a := muxSettings{window: 8 << 10, maxStreams: 100}
	b := muxSettings{window: 1 << 20, maxStreams: 16}
	want := muxSettings{window: 8 << 10, maxStreams: 16}
	if got := a.negotiate(b); got != want {
		t.Fatalf("negotiate = %+v, want %+v", got, want)
	}
	if got := b.negotiate(a); got != want {
		t.Fatalf("negotiate (reversed) = %+v, want %+v", got, want)
	}
}

func TestCreditGateTakeClampsAndDebits(t *testing.T) {
	g := newCreditGate(muxChunkSize * 3)
	n, err := g.take(muxChunkSize*2, nil)
	if err != nil || n != muxChunkSize {
		t.Fatalf("take = %d, %v; want chunk-size clamp %d", n, err, muxChunkSize)
	}
	n, err = g.take(10, nil)
	if err != nil || n != 10 {
		t.Fatalf("take = %d, %v; want 10", n, err)
	}
	// Drain the rest, then ask for more than remains: the take is
	// clamped to what is available rather than blocking.
	rest := muxChunkSize*2 - 10
	for rest > 0 {
		n, err = g.take(rest, nil)
		if err != nil || n == 0 {
			t.Fatalf("drain take = %d, %v", n, err)
		}
		rest -= n
	}
	g.grant(5)
	n, err = g.take(100, nil)
	if err != nil || n != 5 {
		t.Fatalf("partial take = %d, %v; want 5", n, err)
	}
}

func TestCreditGateBlocksUntilGrantAndCountsStall(t *testing.T) {
	g := newCreditGate(0)
	var stalls atomic.Int64
	done := make(chan struct{})
	var n int
	var err error
	go func() {
		defer close(done)
		n, err = g.take(64, func() { stalls.Add(1) })
	}()
	select {
	case <-done:
		t.Fatal("take returned without credit")
	case <-time.After(20 * time.Millisecond):
	}
	g.grant(64)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("take did not wake after grant")
	}
	if err != nil || n != 64 {
		t.Fatalf("take = %d, %v; want 64", n, err)
	}
	if stalls.Load() != 1 {
		t.Fatalf("stalled callback ran %d times, want 1", stalls.Load())
	}
}

func TestCreditGateCloseReleasesWaiter(t *testing.T) {
	g := newCreditGate(0)
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		_, err := g.take(1, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	g.close(boom)
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("take err = %v, want boom", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("take did not wake after close")
	}
	if _, err := g.take(1, nil); !errors.Is(err, boom) {
		t.Fatalf("take after close = %v, want boom", err)
	}
}

func TestCtlQueueCoalescesGrants(t *testing.T) {
	q := newCtlQueue()
	q.grant(7, 100)
	q.grant(7, 28)
	q.grant(9, 5)
	q.reset(3, "bye")
	var buf bytes.Buffer
	w := &lockedWriter{w: &buf}
	q.close()
	q.run(w, func(err error) { t.Fatalf("unexpected write error: %v", err) })
	frames := map[uint32]muxFrame{}
	for buf.Len() > 0 {
		body, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		f, err := decodeMuxFrame(body)
		if err != nil {
			t.Fatalf("decodeMuxFrame: %v", err)
		}
		frames[f.id] = f
	}
	if f := frames[7]; f.kind != muxKindWindow || f.credit != 128 {
		t.Fatalf("stream 7 frame = %+v, want coalesced WINDOW 128", f)
	}
	if f := frames[9]; f.kind != muxKindWindow || f.credit != 5 {
		t.Fatalf("stream 9 frame = %+v, want WINDOW 5", f)
	}
	if f := frames[3]; f.kind != muxKindReset || string(f.chunk) != "bye" {
		t.Fatalf("stream 3 frame = %+v, want RESET", f)
	}
	// Post-close traffic is dropped, not queued or panicking.
	q.grant(1, 1)
	q.reset(1, "late")
}

func FuzzMuxFrameDecode(f *testing.F) {
	win := encodeMuxWindow(4096)
	f.Add([]byte{muxKindReq, 0, 0, 0, 1, muxFlagFIN, 'h', 'i'})
	f.Add([]byte{muxKindResp, 0, 0, 0, 2, 0, statusOK, 'x'})
	f.Add(append([]byte{muxKindWindow, 0, 0, 0, 3}, win[:]...))
	f.Add([]byte{muxKindReset, 0, 0, 0, 4, 'e', 'r', 'r'})
	f.Add([]byte{muxKindReq, 0, 0})
	f.Add([]byte{9, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := decodeMuxFrame(body)
		if err != nil {
			return
		}
		if fr.kind < muxKindReq || fr.kind > muxKindReset {
			t.Fatalf("decoded unknown kind %d", fr.kind)
		}
		if len(fr.chunk) > len(body) {
			t.Fatalf("chunk longer than frame body")
		}
		if fr.credit < 0 {
			t.Fatalf("negative credit decoded: %d", fr.credit)
		}
		// Re-encode through the production writer and decode again:
		// the frame must survive a round trip unchanged.
		var head []byte
		switch fr.kind {
		case muxKindReq:
			head = []byte{fr.flags}
		case muxKindResp:
			head = []byte{fr.flags, fr.status}
		case muxKindWindow:
			w := encodeMuxWindow(fr.credit)
			fr.chunk = w[:]
		}
		var buf bytes.Buffer
		if err := writeMuxFrame(&lockedWriter{w: &buf}, fr.kind, fr.id, head, fr.chunk); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		reBody, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		got, err := decodeMuxFrame(reBody)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if got.kind != fr.kind || got.id != fr.id || got.flags != fr.flags ||
			got.status != fr.status || got.credit != fr.credit {
			t.Fatalf("round trip changed frame: %+v -> %+v", fr, got)
		}
		if fr.kind != muxKindWindow && !bytes.Equal(got.chunk, fr.chunk) {
			t.Fatalf("round trip changed chunk: %q -> %q", fr.chunk, got.chunk)
		}
	})
}

func FuzzMuxSettingsDecode(f *testing.F) {
	f.Add(encodeMuxSettings(muxSettings{window: defaultMuxWindow, maxStreams: defaultMuxStreams}))
	f.Add(make([]byte, 8))
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, payload []byte) {
		s, err := decodeMuxSettings(payload)
		if err != nil {
			return
		}
		if s.window <= 0 || s.maxStreams <= 0 {
			t.Fatalf("decoded non-positive settings: %+v", s)
		}
		got, err := decodeMuxSettings(encodeMuxSettings(s))
		if err != nil || got != s {
			t.Fatalf("settings round trip = %+v, %v; want %+v", got, err, s)
		}
	})
}
