package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/blockstore"
)

// Client talks the block protocol to one server. It implements
// blockstore.Store, so the RobuSTore client library treats remote
// servers and local stores uniformly. A Client multiplexes concurrent
// requests over a pool of TCP connections (one outstanding request
// per connection), which is exactly what the speculative read path
// needs: many parallel GETs, individually cancelable.
type Client struct {
	addr        string
	dialTimeout time.Duration
	maxConns    int

	mu     sync.Mutex
	idle   []net.Conn
	nconns int
	closed bool
	cond   *sync.Cond
}

// ClientOptions configure a client.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// MaxConns caps the connection pool (default 16).
	MaxConns int
}

// Dial creates a client for the server at addr and verifies
// reachability with a ping.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.MaxConns <= 0 {
		opts.MaxConns = 16
	}
	c := &Client{addr: addr, dialTimeout: opts.DialTimeout, maxConns: opts.MaxConns}
	c.cond = sync.NewCond(&c.mu)
	if err := c.Ping(context.Background()); err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return c, nil
}

// Addr returns the server address.
func (c *Client) Addr() string { return c.addr }

var errClientClosed = errors.New("transport: client closed")

// acquire returns a pooled or fresh connection, waiting if the pool is
// at its cap with nothing idle.
func (c *Client) acquire(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, errClientClosed
		}
		if n := len(c.idle); n > 0 {
			conn := c.idle[n-1]
			c.idle = c.idle[:n-1]
			c.mu.Unlock()
			return conn, nil
		}
		if c.nconns < c.maxConns {
			c.nconns++
			c.mu.Unlock()
			conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
			if err != nil {
				c.mu.Lock()
				c.nconns--
				c.cond.Signal()
				c.mu.Unlock()
				return nil, err
			}
			return conn, nil
		}
		// Pool exhausted: wait for a release, but honor ctx.
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
		waitDone := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			case <-waitDone:
			}
		}()
		c.cond.Wait()
		close(waitDone)
	}
}

// release returns a healthy connection to the pool.
func (c *Client) release(conn net.Conn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.cond.Signal()
	c.mu.Unlock()
}

// discard drops a poisoned connection.
func (c *Client) discard(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	c.nconns--
	c.cond.Signal()
	c.mu.Unlock()
}

// roundTrip performs one request/response exchange. Cancellation is
// implemented by closing the connection out from under the exchange —
// the server's per-connection context then cancels the queued work
// (RobuSTore request cancellation over the wire).
func (c *Client) roundTrip(ctx context.Context, op byte, segment string, index int, payload []byte) (byte, []byte, error) {
	body, err := encodeRequest(op, segment, index, payload)
	if err != nil {
		return 0, nil, err
	}
	conn, err := c.acquire(ctx)
	if err != nil {
		return 0, nil, err
	}
	// Watch for cancellation during the exchange.
	done := make(chan struct{})
	var canceled bool
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			canceled = true
			conn.SetDeadline(time.Unix(1, 0)) // unblock reads/writes immediately
		case <-done:
		}
	}()
	finish := func() {
		close(done)
		watch.Wait()
	}
	if err := writeFrame(conn, body); err != nil {
		finish()
		c.discard(conn)
		return 0, nil, wrapCancel(err, canceled, ctx)
	}
	resp, err := readFrame(conn)
	finish()
	if err != nil {
		c.discard(conn)
		return 0, nil, wrapCancel(err, canceled, ctx)
	}
	if canceled {
		// Response raced with cancellation; the connection is fine but
		// had its deadline poisoned.
		conn.SetDeadline(time.Time{})
	}
	c.release(conn)
	if len(resp) < 1 {
		return 0, nil, fmt.Errorf("transport: empty response")
	}
	return resp[0], resp[1:], nil
}

func wrapCancel(err error, canceled bool, ctx context.Context) error {
	if canceled && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// statusToError maps protocol statuses onto blockstore errors.
func statusToError(status byte, payload []byte) error {
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return blockstore.ErrNotFound
	case statusBusy:
		return fmt.Errorf("transport: server busy: %s", payload)
	default:
		return fmt.Errorf("transport: server error: %s", payload)
	}
}

// Ping checks server liveness.
func (c *Client) Ping(ctx context.Context) error {
	status, payload, err := c.roundTrip(ctx, opPing, "-", 0, nil)
	if err != nil {
		return err
	}
	return statusToError(status, payload)
}

// Put implements blockstore.Store.
func (c *Client) Put(ctx context.Context, segment string, index int, data []byte) error {
	status, payload, err := c.roundTrip(ctx, opPut, segment, index, data)
	if err != nil {
		return err
	}
	return statusToError(status, payload)
}

// Get implements blockstore.Store.
func (c *Client) Get(ctx context.Context, segment string, index int) ([]byte, error) {
	status, payload, err := c.roundTrip(ctx, opGet, segment, index, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToError(status, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Delete implements blockstore.Store.
func (c *Client) Delete(ctx context.Context, segment string, index int) error {
	status, payload, err := c.roundTrip(ctx, opDelete, segment, index, nil)
	if err != nil {
		return err
	}
	return statusToError(status, payload)
}

// List implements blockstore.Store.
func (c *Client) List(ctx context.Context, segment string) ([]int, error) {
	status, payload, err := c.roundTrip(ctx, opList, segment, 0, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToError(status, payload); err != nil {
		return nil, err
	}
	return decodeIndices(payload)
}

// Close closes all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}
