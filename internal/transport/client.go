package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockstore"
	"repro/internal/obs"
)

// Client talks the block protocol to one server. It implements
// blockstore.Store, so the RobuSTore client library treats remote
// servers and local stores uniformly. A Client multiplexes concurrent
// requests over a pool of TCP connections (one outstanding request
// per connection), which is exactly what the speculative read path
// needs: many parallel GETs, individually cancelable.
type Client struct {
	addr        string
	dialTimeout time.Duration
	reqTimeout  time.Duration
	maxConns    int
	maxRetries  int
	retryBase   time.Duration
	retryMax    time.Duration
	m           clientPoolMetrics

	// caps caches the server's batch capabilities: 0 = unprobed,
	// otherwise 1 | mask<<1 (so "probed, no capabilities" is 1).
	caps          atomic.Uint32
	maxBatchBytes int

	// Mux (transport v2) state: dedicated multiplexed connections,
	// separate from the v1 one-exchange-per-conn pool. Engaged only
	// after a CAPS probe observes capMux; see muxFor.
	health          HealthReporter
	muxDisabled     bool
	muxWindow       int
	muxStreams      int
	muxMaxConns     int
	muxMu           sync.Mutex
	muxConns        []*muxConn
	muxNext         int
	muxEstablishing bool
	muxRetryAt      time.Time
	muxClosed       bool

	mu     sync.Mutex
	idle   []net.Conn
	nconns int
	closed bool
	cond   *sync.Cond
}

// ClientOptions configure a client.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// RequestTimeout, when positive, bounds each request/response
	// round-trip with a connection deadline. Without it a hung server
	// stalls its worker until the whole access is canceled — the
	// speculative read still completes from other servers, but the
	// stalled goroutine and its pooled connection are pinned for the
	// access lifetime, defeating §4.2's "use whichever disks respond
	// first". Zero (the default) preserves the old wait-forever
	// behavior.
	RequestTimeout time.Duration
	// MaxConns caps the connection pool (default 16).
	MaxConns int
	// MaxRetries, when positive, retries failed exchanges of
	// idempotent operations (GET, LIST, PING, DELETE) up to this many
	// times with capped exponential backoff and full jitter. Only
	// transport-level failures are retried — connection errors, short
	// reads, request timeouts — never server-reported statuses and
	// never caller cancellation. PUT is deliberately excluded: the
	// rateless write path re-routes a failed put to a healthier server
	// (§4.3.2), which beats blind same-server retry. Zero disables
	// retries.
	MaxRetries int
	// RetryBaseDelay is the backoff base (default 2ms): attempt k
	// sleeps a uniformly random duration in [0, min(RetryMaxDelay,
	// RetryBaseDelay·2^k)] — "full jitter", so synchronized client
	// fleets do not retry in lockstep against a recovering server.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps a single backoff sleep (default 100ms).
	RetryMaxDelay time.Duration
	// MaxBatchBytes caps the payload bytes packed into one batch
	// request frame (default 8 MiB, always at most MaxFrame/2). Larger
	// batches are split across multiple round trips transparently.
	MaxBatchBytes int
	// Obs, when non-nil, receives pool metrics (transport_client_*:
	// dials, connection reuses, in-flight requests, bytes, errors,
	// retries, round-trip latency).
	Obs *obs.Registry
	// DisableMux keeps every exchange on the v1 single-op/batch paths
	// even against a server that advertises the multiplexed transport.
	DisableMux bool
	// MuxConns caps the number of multiplexed connections (default 2).
	// Each carries up to the negotiated stream limit concurrently, so
	// a couple of conns replace the whole v1 pool for pipelined work.
	MuxConns int
	// MuxWindow overrides the proposed per-stream flow-control window
	// in bytes (default 1 MiB); mostly for tests.
	MuxWindow int
	// MuxMaxStreams overrides the proposed concurrent-stream limit per
	// mux connection (default 64); mostly for tests.
	MuxMaxStreams int
	// Health, when non-nil, receives per-server outcomes observed by
	// the transport itself. The important case is per-stream mux
	// timeouts: the demux path reports them here even when the caller
	// hedged away and never surfaces the error, so the failure
	// detector keeps its backoff context without the v1 tear-down of a
	// pooled connection.
	Health HealthReporter
}

// clientPoolMetrics are the connection-pool metric handles; all nil
// (no-op) when observability is disabled.
type clientPoolMetrics struct {
	dials          *obs.Counter
	dialErrors     *obs.Counter
	reuses         *obs.Counter
	errors         *obs.Counter
	retries        *obs.Counter
	retriesWon     *obs.Counter
	retryGiveups   *obs.Counter
	bytesSent      *obs.Counter
	bytesRecv      *obs.Counter
	batches        *obs.Counter
	batchBlocks    *obs.Counter
	batchRTSaved   *obs.Counter
	batchFallbacks *obs.Counter
	inflight       *obs.Gauge
	roundTrip      *obs.Histogram

	muxDials          *obs.Counter
	muxFallbacks      *obs.Counter
	muxConnFailures   *obs.Counter
	muxStreams        *obs.Counter
	muxStreamTimeouts *obs.Counter
	muxResets         *obs.Counter
	muxLateFrames     *obs.Counter
	muxFlowStalls     *obs.Counter
	muxFramesSent     *obs.Counter
	muxFramesRecv     *obs.Counter
	muxInflight       *obs.Gauge
}

func newClientPoolMetrics(r *obs.Registry) clientPoolMetrics {
	return clientPoolMetrics{
		dials:        r.Counter("transport_client_dials_total"),
		dialErrors:   r.Counter("transport_client_dial_errors_total"),
		reuses:       r.Counter("transport_client_conn_reuses_total"),
		errors:       r.Counter("transport_client_errors_total"),
		retries:      r.Counter("transport_client_retries_total"),
		retriesWon:   r.Counter("transport_client_retry_successes_total"),
		retryGiveups: r.Counter("transport_client_retry_giveups_total"),
		bytesSent:    r.Counter("transport_client_bytes_sent_total"),
		bytesRecv:    r.Counter("transport_client_bytes_recv_total"),
		// Batch accounting: blocks carried per batch frame and the
		// request/response round trips the batching avoided
		// (blocks - frames), the headline win of DESIGN.md §10.
		batches:        r.Counter("transport_client_batches_total"),
		batchBlocks:    r.Counter("transport_client_batch_blocks_total"),
		batchRTSaved:   r.Counter("transport_client_batch_roundtrips_saved_total"),
		batchFallbacks: r.Counter("transport_client_batch_fallbacks_total"),
		inflight:       r.Gauge("transport_client_inflight"),
		roundTrip:      r.Histogram("transport_client_roundtrip_seconds"),
		// Mux (transport v2) accounting: stream churn, per-stream
		// timeouts/resets that did NOT tear the connection down, frames
		// discarded after abandonment, and flow-control stalls (a
		// sender blocked waiting for WINDOW credit).
		muxDials:          r.Counter("transport_client_mux_dials_total"),
		muxFallbacks:      r.Counter("transport_client_mux_fallbacks_total"),
		muxConnFailures:   r.Counter("transport_client_mux_conn_failures_total"),
		muxStreams:        r.Counter("transport_client_mux_streams_total"),
		muxStreamTimeouts: r.Counter("transport_client_mux_stream_timeouts_total"),
		muxResets:         r.Counter("transport_client_mux_resets_total"),
		muxLateFrames:     r.Counter("transport_client_mux_late_frames_total"),
		muxFlowStalls:     r.Counter("transport_client_mux_flow_stalls_total"),
		muxFramesSent:     r.Counter("transport_client_mux_frames_sent_total"),
		muxFramesRecv:     r.Counter("transport_client_mux_frames_recv_total"),
		muxInflight:       r.Gauge("transport_client_mux_inflight"),
	}
}

// Dial creates a client for the server at addr and verifies
// reachability with a ping.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.MaxConns <= 0 {
		opts.MaxConns = 16
	}
	if opts.RetryBaseDelay <= 0 {
		opts.RetryBaseDelay = 2 * time.Millisecond
	}
	if opts.RetryMaxDelay <= 0 {
		opts.RetryMaxDelay = 100 * time.Millisecond
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 8 << 20
	}
	if opts.MaxBatchBytes > MaxFrame/2 {
		opts.MaxBatchBytes = MaxFrame / 2
	}
	if opts.MuxConns <= 0 {
		opts.MuxConns = 2
	}
	c := &Client{
		addr:          addr,
		dialTimeout:   opts.DialTimeout,
		reqTimeout:    opts.RequestTimeout,
		maxConns:      opts.MaxConns,
		maxRetries:    opts.MaxRetries,
		retryBase:     opts.RetryBaseDelay,
		retryMax:      opts.RetryMaxDelay,
		maxBatchBytes: opts.MaxBatchBytes,
		muxDisabled:   opts.DisableMux,
		muxMaxConns:   opts.MuxConns,
		muxWindow:     opts.MuxWindow,
		muxStreams:    opts.MuxMaxStreams,
		health:        opts.Health,
		m:             newClientPoolMetrics(opts.Obs),
	}
	c.cond = sync.NewCond(&c.mu)
	if err := c.Ping(context.Background()); err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return c, nil
}

// Addr returns the server address.
func (c *Client) Addr() string { return c.addr }

var errClientClosed = errors.New("transport: client closed")

// acquire returns a pooled or fresh connection, waiting if the pool is
// at its cap with nothing idle.
func (c *Client) acquire(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, errClientClosed
		}
		if n := len(c.idle); n > 0 {
			conn := c.idle[n-1]
			c.idle = c.idle[:n-1]
			c.mu.Unlock()
			c.m.reuses.Inc()
			return conn, nil
		}
		if c.nconns < c.maxConns {
			c.nconns++
			c.mu.Unlock()
			conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
			if err != nil {
				c.m.dialErrors.Inc()
				c.mu.Lock()
				c.nconns--
				c.cond.Signal()
				c.mu.Unlock()
				return nil, err
			}
			c.m.dials.Inc()
			return conn, nil
		}
		// Pool exhausted: wait for a release, but honor ctx.
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
		waitDone := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			case <-waitDone:
			}
		}()
		c.cond.Wait()
		close(waitDone)
	}
}

// release returns a healthy connection to the pool.
func (c *Client) release(conn net.Conn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.cond.Signal()
	c.mu.Unlock()
}

// discard drops a poisoned connection.
func (c *Client) discard(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	c.nconns--
	c.cond.Signal()
	c.mu.Unlock()
}

// ErrRequestTimeout reports a round-trip that exceeded the client's
// RequestTimeout (the per-request I/O deadline, not a dial failure
// and not a caller cancellation).
var ErrRequestTimeout = errors.New("transport: request timed out")

// roundTrip performs one request/response exchange with no retries —
// the path for non-idempotent operations (PUT).
func (c *Client) roundTrip(ctx context.Context, op byte, segment string, index int, payload []byte) (byte, []byte, error) {
	body, err := encodeRequest(op, segment, index, payload)
	if err != nil {
		return 0, nil, err
	}
	return c.exchange(ctx, [][]byte{body})
}

// roundTripIdem performs one exchange for an idempotent operation,
// retrying transport-level failures up to MaxRetries times with
// capped exponential backoff and full jitter. Server-reported
// statuses are not failures (they arrived over a healthy exchange)
// and caller cancellation always wins immediately.
func (c *Client) roundTripIdem(ctx context.Context, op byte, segment string, index int, payload []byte) (byte, []byte, error) {
	body, err := encodeRequest(op, segment, index, payload)
	if err != nil {
		return 0, nil, err
	}
	return c.exchangeIdem(ctx, [][]byte{body})
}

// exchangeIdem is the retrying exchange for idempotent requests; the
// chunk contents must stay valid across attempts.
func (c *Client) exchangeIdem(ctx context.Context, chunks [][]byte) (byte, []byte, error) {
	retried := false
	//lint:ignore ctxcancel retryable(ctx, err) checks ctx.Err() and backoff selects on ctx.Done() every attempt
	for attempt := 0; ; attempt++ {
		status, resp, err := c.exchange(ctx, chunks)
		if err == nil {
			if retried {
				c.m.retriesWon.Inc()
			}
			return status, resp, nil
		}
		if attempt >= c.maxRetries || !retryable(ctx, err) {
			if retried {
				c.m.retryGiveups.Inc()
			}
			return 0, nil, err
		}
		retried = true
		c.m.retries.Inc()
		if serr := c.backoff(ctx, attempt); serr != nil {
			c.m.retryGiveups.Inc()
			return 0, nil, err
		}
	}
}

// retryable reports whether a failed exchange is worth re-issuing:
// transport-level trouble (broken conn, short read, timeout) is,
// caller cancellation and a closed client are not.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return !errors.Is(err, errClientClosed) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// backoff sleeps the full-jitter backoff for the given attempt,
// honoring ctx: a uniformly random duration in [0, min(retryMax,
// retryBase·2^attempt)].
func (c *Client) backoff(ctx context.Context, attempt int) error {
	return BackoffFullJitter(ctx, attempt, c.retryBase, c.retryMax)
}

// BackoffFullJitter sleeps a uniformly random duration in
// [0, min(max, base·2^attempt)], honoring ctx — the retry spacing the
// transport client uses between idempotent-op attempts, exported so
// other client layers (the metadata failover client) retry with the
// same fleet-safe jitter instead of inventing their own.
func BackoffFullJitter(ctx context.Context, attempt int, base, maxDelay time.Duration) error {
	ceil := maxDelay
	if attempt < 20 { // beyond 2^20 the shift is surely past the cap
		if d := base << attempt; d < ceil {
			ceil = d
		}
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	if d == 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// exchange routes one request/response exchange: over a multiplexed
// stream when the server is known (from the cached CAPS probe) to
// speak transport v2, otherwise over the v1 one-exchange-per-conn
// pool. The two paths carry identical request bodies, so every op —
// single, batch, scrub, ping — pipelines transparently once the mux
// is up; legacy peers keep the v1 path untouched.
func (c *Client) exchange(ctx context.Context, chunks [][]byte) (byte, []byte, error) {
	if m := c.muxFor(ctx); m != nil {
		status, resp, err := m.exchange(ctx, chunks)
		if err != nil {
			c.m.errors.Inc()
		}
		return status, resp, err
	}
	return c.exchangeV1(ctx, chunks)
}

// exchangeV1 performs one request/response exchange. Cancellation is
// implemented by closing the connection out from under the exchange —
// the server's per-connection context then cancels the queued work
// (RobuSTore request cancellation over the wire). When RequestTimeout
// is set, a connection deadline additionally bounds the exchange so a
// hung server surfaces as ErrRequestTimeout instead of a stall.
// Any exchange error — write failure, short read, protocol violation
// — discards the connection rather than pooling it: after a failed
// exchange the conn's protocol state is unknown, and a pooled
// half-read conn would poison the next request on it.
func (c *Client) exchangeV1(ctx context.Context, chunks [][]byte) (byte, []byte, error) {
	conn, err := c.acquire(ctx)
	if err != nil {
		c.m.errors.Inc()
		return 0, nil, err
	}
	start := time.Now()
	c.m.inflight.Add(1)
	defer c.m.inflight.Add(-1)
	if c.reqTimeout > 0 {
		conn.SetDeadline(start.Add(c.reqTimeout))
	}
	// Watch for cancellation during the exchange.
	done := make(chan struct{})
	var canceled bool
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			canceled = true
			conn.SetDeadline(time.Unix(1, 0)) // unblock reads/writes immediately
		case <-done:
		}
	}()
	finish := func() {
		close(done)
		watch.Wait()
	}
	var sent int64
	for _, ch := range chunks {
		sent += int64(len(ch))
	}
	err = writeFrameVec(conn, chunks)
	if err != nil {
		finish()
		c.discard(conn)
		c.m.errors.Inc()
		return 0, nil, c.wrapExchangeErr(err, canceled, ctx)
	}
	resp, err := readFrame(conn)
	finish()
	if err != nil {
		c.discard(conn)
		c.m.errors.Inc()
		return 0, nil, c.wrapExchangeErr(err, canceled, ctx)
	}
	if len(resp) < 1 {
		// Empty response frame: a protocol violation. The conn's
		// framing may look intact, but a server that violates the
		// protocol once cannot be trusted with pooled reuse — drop it
		// instead of handing the next request a poisoned conn.
		c.discard(conn)
		c.m.errors.Inc()
		return 0, nil, fmt.Errorf("transport: empty response")
	}
	if canceled || c.reqTimeout > 0 {
		// Clear the request deadline (and any poison from a cancellation
		// that raced with the response) before pooling the connection.
		conn.SetDeadline(time.Time{})
	}
	c.release(conn)
	c.m.bytesSent.Add(sent + 4)
	c.m.bytesRecv.Add(int64(len(resp)) + 4)
	c.m.roundTrip.Observe(time.Since(start).Seconds())
	return resp[0], resp[1:], nil
}

// wrapExchangeErr maps a failed exchange onto the caller's intent: a
// canceled context wins, then a deadline overrun becomes
// ErrRequestTimeout, everything else passes through.
func (c *Client) wrapExchangeErr(err error, canceled bool, ctx context.Context) error {
	if canceled && ctx.Err() != nil {
		return ctx.Err()
	}
	if c.reqTimeout > 0 {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return fmt.Errorf("%w after %v: %w", ErrRequestTimeout, c.reqTimeout, err)
		}
	}
	return err
}

// statusToError maps protocol statuses onto blockstore errors.
func statusToError(status byte, payload []byte) error {
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return blockstore.ErrNotFound
	case statusBusy:
		return fmt.Errorf("transport: server busy: %s", payload)
	case statusUnsupported:
		return fmt.Errorf("transport: %w: %s", blockstore.ErrScrubUnsupported, payload)
	default:
		return fmt.Errorf("transport: server error: %s", payload)
	}
}

// Ping checks server liveness.
func (c *Client) Ping(ctx context.Context) error {
	status, payload, err := c.roundTripIdem(ctx, opPing, "-", 0, nil)
	if err != nil {
		return err
	}
	return statusToError(status, payload)
}

// Put implements blockstore.Store.
func (c *Client) Put(ctx context.Context, segment string, index int, data []byte) error {
	status, payload, err := c.roundTrip(ctx, opPut, segment, index, data)
	if err != nil {
		return err
	}
	return statusToError(status, payload)
}

// Get implements blockstore.Store.
func (c *Client) Get(ctx context.Context, segment string, index int) ([]byte, error) {
	status, payload, err := c.roundTripIdem(ctx, opGet, segment, index, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToError(status, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Delete implements blockstore.Store. Deletes are idempotent
// (deleting an absent block is not an error), so they retry.
func (c *Client) Delete(ctx context.Context, segment string, index int) error {
	status, payload, err := c.roundTripIdem(ctx, opDelete, segment, index, nil)
	if err != nil {
		return err
	}
	return statusToError(status, payload)
}

// Scrub implements blockstore.Scrubber over the wire: the server
// verifies the segment's blocks in place (its ChecksumStore layer)
// and returns only the bad indices, so a scrub pass costs one round
// trip instead of downloading every block. A server without integrity
// framing answers with an error matching
// blockstore.ErrScrubUnsupported. Scrubs are read-only and idempotent,
// so they retry.
func (c *Client) Scrub(ctx context.Context, segment string) ([]int, error) {
	status, payload, err := c.roundTripIdem(ctx, opScrub, segment, 0, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToError(status, payload); err != nil {
		return nil, err
	}
	return decodeIndices(payload)
}

// List implements blockstore.Store.
func (c *Client) List(ctx context.Context, segment string) ([]int, error) {
	status, payload, err := c.roundTripIdem(ctx, opList, segment, 0, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToError(status, payload); err != nil {
		return nil, err
	}
	return decodeIndices(payload)
}

// Close closes all pooled and multiplexed connections.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	c.muxMu.Lock()
	c.muxClosed = true
	muxes := c.muxConns
	c.muxConns = nil
	c.muxMu.Unlock()
	for _, m := range muxes {
		m.close()
	}
	return nil
}
