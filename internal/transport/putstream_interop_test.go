package transport_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/robust"
	"repro/internal/transport"
)

// TestPutStreamAgainstLegacyServerFallsBack: PutStream against a
// v1-only server must return ErrMuxUnavailable without delivering a
// single ack — the contract the robust write path's per-op fallback
// relies on.
func TestPutStreamAgainstLegacyServerFallsBack(t *testing.T) {
	srv := startLegacyServer(t)
	client, err := transport.Dial(srv.ln.Addr().String(), transport.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	puts := []blockstore.BatchPut{
		{Index: 0, Data: []byte("alpha")},
		{Index: 1, Data: []byte("beta")},
	}
	acks := 0
	err = client.PutStream(context.Background(), "seg", puts, func(i int, err error) { acks++ })
	if !errors.Is(err, transport.ErrMuxUnavailable) {
		t.Fatalf("PutStream err = %v, want ErrMuxUnavailable", err)
	}
	if acks != 0 {
		t.Fatalf("PutStream delivered %d acks despite failing", acks)
	}
}

// TestStreamingWriteOverLegacyServers: a chunked streaming write
// against v1-only servers must fall back to single-op PUTs and still
// commit and round-trip — mixed-version clusters mid-upgrade keep
// working.
func TestStreamingWriteOverLegacyServers(t *testing.T) {
	c, err := robust.NewClient(metadata.NewService(), robust.Options{BlockBytes: 8 << 10, ChunkBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*legacyServer, 3)
	for i := range servers {
		servers[i] = startLegacyServer(t)
		store, err := transport.Dial(servers[i].ln.Addr().String(), transport.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if err := c.AttachStore(fmt.Sprintf("legacy%d", i), store); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	data := make([]byte, 100<<10) // 3 full chunks + a tail
	for i := range data {
		data[i] = byte(i * 13)
	}
	ws, err := c.WriteFrom(ctx, "obj", bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Committed < ws.N {
		t.Fatalf("committed %d < N %d over legacy servers", ws.Committed, ws.N)
	}
	puts := 0
	for _, srv := range servers {
		puts += srv.served(1) // op 1 = PUT
	}
	if puts < ws.Committed {
		t.Fatalf("legacy servers saw %d PUTs for %d committed blocks", puts, ws.Committed)
	}
	got, _, err := c.Read(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed data corrupted through the legacy fallback")
	}
}
