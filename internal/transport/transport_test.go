package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/blockstore"
)

// startServer runs a server over a fresh in-memory store and returns a
// connected client.
func startServer(t *testing.T, opts ServerOptions) (*Client, *blockstore.MemStore) {
	t.Helper()
	store := blockstore.NewMemStore()
	srv := NewServer(store, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, store
}

func TestPutGetRoundTrip(t *testing.T) {
	client, _ := startServer(t, ServerOptions{})
	ctx := context.Background()
	data := bytes.Repeat([]byte("xyz"), 1000)
	if err := client.Put(ctx, "seg", 5, data); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(ctx, "seg", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
}

func TestGetMissingMapsToErrNotFound(t *testing.T) {
	client, _ := startServer(t, ServerOptions{})
	if _, err := client.Get(context.Background(), "seg", 1); !errors.Is(err, blockstore.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDeleteAndList(t *testing.T) {
	client, _ := startServer(t, ServerOptions{})
	ctx := context.Background()
	for _, i := range []int{9, 2, 5} {
		if err := client.Put(ctx, "s", i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := client.List(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(idx) != "[2 5 9]" {
		t.Fatalf("List = %v", idx)
	}
	if err := client.Delete(ctx, "s", 5); err != nil {
		t.Fatal(err)
	}
	idx, _ = client.List(ctx, "s")
	if fmt.Sprint(idx) != "[2 9]" {
		t.Fatalf("List after delete = %v", idx)
	}
}

func TestEmptyList(t *testing.T) {
	client, _ := startServer(t, ServerOptions{})
	idx, err := client.List(context.Background(), "nothing")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 0 {
		t.Fatalf("List = %v", idx)
	}
}

func TestServerErrorPropagates(t *testing.T) {
	client, _ := startServer(t, ServerOptions{})
	// Empty segment fails store validation server-side.
	if err := client.Put(context.Background(), "", 0, []byte("x")); err == nil {
		t.Fatal("invalid Put succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	client, _ := startServer(t, ServerOptions{})
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				seg := fmt.Sprintf("seg%d", g)
				if err := client.Put(ctx, seg, i, []byte{byte(g), byte(i)}); err != nil {
					errCh <- err
					return
				}
				got, err := client.Get(ctx, seg, i)
				if err != nil {
					errCh <- err
					return
				}
				if got[0] != byte(g) || got[1] != byte(i) {
					errCh <- fmt.Errorf("payload mismatch g=%d i=%d", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestContextCancellationAbortsGet(t *testing.T) {
	// A slow store + canceled context: the Get must return promptly.
	mem := blockstore.NewMemStore()
	mem.Put(context.Background(), "s", 0, []byte("x"))
	store := blockstore.NewSlowStore(mem, blockstore.SlowProfile{
		BaseLatency: 5 * time.Second,
	}, 1)
	srv := NewServer(store, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	client, err := Dial(ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Get(ctx, "s", 0)
	if err == nil {
		t.Fatal("canceled Get succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ClientOptions{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("Dial to dead port succeeded")
	}
}

func TestAdmissionBusyResponse(t *testing.T) {
	ctrl, err := admission.NewCapacity(admission.Config{MaxBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	client, _ := startServer(t, ServerOptions{Admission: ctrl})
	// A PUT bigger than the byte budget is refused outright.
	err = client.Put(context.Background(), "s", 0, []byte("too large"))
	if err == nil || !errors.Is(err, err) /* message-carrying error */ {
		t.Fatalf("over-budget Put = %v", err)
	}
	if got := err.Error(); !bytes.Contains([]byte(got), []byte("busy")) {
		t.Fatalf("expected busy error, got %q", got)
	}
	// A small PUT passes.
	if err := client.Put(context.Background(), "s", 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	client, _ := startServer(t, ServerOptions{})
	if err := client.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestClientUsableAfterServerRoundTrips(t *testing.T) {
	// Pool reuse: many sequential requests over few connections.
	client, _ := startServer(t, ServerOptions{})
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := client.Put(ctx, "s", i, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	client.mu.Lock()
	nconns := client.nconns
	client.mu.Unlock()
	if nconns > 4 {
		t.Fatalf("sequential requests opened %d connections", nconns)
	}
}

func TestProtocolEncodingEdgeCases(t *testing.T) {
	if _, err := encodeRequest(opGet, string(make([]byte, 70000)), 0, nil); err == nil {
		t.Fatal("oversized segment accepted")
	}
	if _, err := encodeRequest(opGet, "s", -1, nil); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := decodeRequest([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
	if _, err := decodeRequest([]byte{1, 0, 10, 'a', 0, 0, 0, 0}); err == nil {
		t.Fatal("truncated segment accepted")
	}
	if _, err := decodeIndices([]byte{1, 2, 3}); err == nil {
		t.Fatal("misaligned index list accepted")
	}
	// Round trip.
	body, err := encodeRequest(opPut, "seg", 42, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	req, err := decodeRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if req.op != opPut || req.segment != "seg" || req.index != 42 || string(req.payload) != "payload" {
		t.Fatalf("decoded %+v", req)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame written")
	}
	// A fake header advertising a huge frame must be rejected.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized inbound frame accepted")
	}
}
