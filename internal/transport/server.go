package transport

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/blockstore"
	"repro/internal/obs"
)

// ServerOptions configure a block server.
type ServerOptions struct {
	// Admission optionally gates GET/PUT requests (§5.4). A refused
	// request is answered with a BUSY status rather than queued
	// forever when AdmissionWait is false.
	Admission admission.Controller
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
	// Obs, when non-nil, receives server metrics (transport_server_*:
	// per-op counts and latency, open connections, errors, admission
	// refusals).
	Obs *obs.Registry
}

// serverMetrics are the server-side metric handles; all nil (no-op)
// when observability is disabled.
type serverMetrics struct {
	conns     *obs.Gauge
	errors    *obs.Counter
	busy      *obs.Counter
	ops       map[byte]*obs.Counter
	opSeconds map[byte]*obs.Histogram
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	m := serverMetrics{
		conns:  r.Gauge("transport_server_conns"),
		errors: r.Counter("transport_server_errors_total"),
		busy:   r.Counter("transport_server_busy_total"),
	}
	if r != nil {
		names := map[byte]string{
			opPut: "put", opGet: "get", opDelete: "delete",
			opList: "list", opPing: "ping", opScrub: "scrub",
		}
		m.ops = make(map[byte]*obs.Counter, len(names))
		m.opSeconds = make(map[byte]*obs.Histogram, len(names))
		for op, n := range names {
			m.ops[op] = r.Counter("transport_server_" + n + "_total")
			m.opSeconds[op] = r.Histogram("transport_server_" + n + "_seconds")
		}
	}
	return m
}

// Server exposes a blockstore.Store over the block protocol.
type Server struct {
	store blockstore.Store
	opts  ServerOptions
	m     serverMetrics
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a store. Call Serve (usually in a goroutine) with a
// listener, or ListenAndServe.
func NewServer(store blockstore.Store, opts ServerOptions) *Server {
	return &Server{
		store: store,
		opts:  opts,
		m:     newServerMetrics(opts.Obs),
		conns: make(map[net.Conn]struct{}),
	}
}

// ListenAndServe listens on addr ("host:port", ":0" for ephemeral)
// and serves until Close. It returns the bound address on a channel
// usable before blocking? — instead use Listen + Serve for that.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("transport: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all connections, and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

// handle serves one connection: a sequence of request/response
// exchanges. The per-connection context is canceled when the
// connection drops, which aborts in-flight store operations — the
// server side of RobuSTore's request cancellation (§5.3.3): a client
// that hangs up cancels its queued work.
func (s *Server) handle(conn net.Conn) {
	s.m.conns.Add(1)
	defer func() {
		s.m.conns.Add(-1)
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for {
		body, err := readFrame(conn)
		if err != nil {
			return // EOF or broken connection
		}
		req, err := decodeRequest(body)
		if err != nil {
			s.logf("transport: bad request from %v: %v", conn.RemoteAddr(), err)
			return
		}
		status, payload := s.dispatch(ctx, req)
		if err := writeFrame(conn, []byte{status}, payload); err != nil {
			return
		}
	}
}

// dispatch executes one request against the store and records per-op
// metrics (count, latency, errors).
func (s *Server) dispatch(ctx context.Context, req request) (status byte, payload []byte) {
	start := time.Now()
	s.m.ops[req.op].Inc() // nil map yields a nil (no-op) counter
	defer func() {
		s.m.opSeconds[req.op].Observe(time.Since(start).Seconds())
		switch status {
		case statusErr:
			s.m.errors.Inc()
		case statusBusy:
			s.m.busy.Inc()
		}
	}()
	// Admission control guards the data-path operations.
	if s.opts.Admission != nil && (req.op == opGet || req.op == opPut) {
		release, err := s.opts.Admission.Admit(ctx, admission.Request{Bytes: int64(len(req.payload))})
		if err != nil {
			return statusBusy, []byte(err.Error())
		}
		defer release()
	}
	switch req.op {
	case opPing:
		return statusOK, nil
	case opPut:
		if err := s.store.Put(ctx, req.segment, req.index, req.payload); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, nil
	case opGet:
		b, err := s.store.Get(ctx, req.segment, req.index)
		if errors.Is(err, blockstore.ErrNotFound) {
			return statusNotFound, nil
		}
		if err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, b
	case opDelete:
		if err := s.store.Delete(ctx, req.segment, req.index); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, nil
	case opList:
		idx, err := s.store.List(ctx, req.segment)
		if err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, encodeIndices(idx)
	case opScrub:
		sc, ok := s.store.(blockstore.Scrubber)
		if !ok {
			return statusUnsupported, []byte("store has no integrity framing")
		}
		bad, err := sc.Scrub(ctx, req.segment)
		if errors.Is(err, blockstore.ErrScrubUnsupported) {
			// A wrapper (e.g. fault injection) may carry the method but
			// sit over a store that cannot verify.
			return statusUnsupported, []byte(err.Error())
		}
		if err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, encodeIndices(bad)
	default:
		return statusErr, []byte(fmt.Sprintf("unknown op %d", req.op))
	}
}
