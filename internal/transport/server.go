package transport

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/blockstore"
	"repro/internal/obs"
)

// ServerOptions configure a block server.
type ServerOptions struct {
	// Admission optionally gates GET/PUT requests (§5.4). A refused
	// request is answered with a BUSY status rather than queued
	// forever when AdmissionWait is false.
	Admission admission.Controller
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
	// Obs, when non-nil, receives server metrics (transport_server_*:
	// per-op counts and latency, open connections, errors, admission
	// refusals).
	Obs *obs.Registry
}

// serverMetrics are the server-side metric handles; all nil (no-op)
// when observability is disabled.
type serverMetrics struct {
	conns       *obs.Gauge
	errors      *obs.Counter
	busy        *obs.Counter
	batchBlocks *obs.Counter
	ops         map[byte]*obs.Counter
	opSeconds   map[byte]*obs.Histogram

	muxStreams  *obs.Counter
	muxResets   *obs.Counter
	muxStalls   *obs.Counter
	muxInflight *obs.Gauge
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	m := serverMetrics{
		conns:       r.Gauge("transport_server_conns"),
		errors:      r.Counter("transport_server_errors_total"),
		busy:        r.Counter("transport_server_busy_total"),
		batchBlocks: r.Counter("transport_server_batch_blocks_total"),
		// Mux depth/stall accounting: streams dispatched, streams the
		// server had to reset, response writers blocked on client
		// flow-control credit, and current concurrent streams.
		muxStreams:  r.Counter("transport_server_mux_streams_total"),
		muxResets:   r.Counter("transport_server_mux_resets_total"),
		muxStalls:   r.Counter("transport_server_mux_flow_stalls_total"),
		muxInflight: r.Gauge("transport_server_mux_inflight"),
	}
	if r != nil {
		// Metric names are spelled out as literals (not assembled at
		// runtime) so the obshygiene analyzer can vet the namespace.
		m.ops = make(map[byte]*obs.Counter, 12)
		m.opSeconds = make(map[byte]*obs.Histogram, 12)
		reg := func(op byte, total *obs.Counter, seconds *obs.Histogram) {
			m.ops[op] = total
			m.opSeconds[op] = seconds
		}
		reg(opPut, r.Counter("transport_server_put_total"), r.Histogram("transport_server_put_seconds"))
		reg(opGet, r.Counter("transport_server_get_total"), r.Histogram("transport_server_get_seconds"))
		reg(opDelete, r.Counter("transport_server_delete_total"), r.Histogram("transport_server_delete_seconds"))
		reg(opList, r.Counter("transport_server_list_total"), r.Histogram("transport_server_list_seconds"))
		reg(opPing, r.Counter("transport_server_ping_total"), r.Histogram("transport_server_ping_seconds"))
		reg(opScrub, r.Counter("transport_server_scrub_total"), r.Histogram("transport_server_scrub_seconds"))
		reg(opPutBatch, r.Counter("transport_server_put_batch_total"), r.Histogram("transport_server_put_batch_seconds"))
		reg(opGetBatch, r.Counter("transport_server_get_batch_total"), r.Histogram("transport_server_get_batch_seconds"))
		reg(opDeleteBatch, r.Counter("transport_server_delete_batch_total"), r.Histogram("transport_server_delete_batch_seconds"))
		reg(opCaps, r.Counter("transport_server_caps_total"), r.Histogram("transport_server_caps_seconds"))
		reg(opMuxUpgrade, r.Counter("transport_server_mux_upgrade_total"), r.Histogram("transport_server_mux_upgrade_seconds"))
		reg(opPutStream, r.Counter("transport_server_put_stream_total"), r.Histogram("transport_server_put_stream_seconds"))
	}
	return m
}

// Server exposes a blockstore.Store over the block protocol.
type Server struct {
	store blockstore.Store
	opts  ServerOptions
	m     serverMetrics
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a store. Call Serve (usually in a goroutine) with a
// listener, or ListenAndServe.
func NewServer(store blockstore.Store, opts ServerOptions) *Server {
	return &Server{
		store: store,
		opts:  opts,
		m:     newServerMetrics(opts.Obs),
		conns: make(map[net.Conn]struct{}),
	}
}

// ListenAndServe listens on addr ("host:port", ":0" for ephemeral)
// and serves until Close. It returns the bound address on a channel
// usable before blocking? — instead use Listen + Serve for that.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("transport: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all connections, and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

// handle serves one connection: a sequence of request/response
// exchanges. The per-connection context is canceled when the
// connection drops, which aborts in-flight store operations — the
// server side of RobuSTore's request cancellation (§5.3.3): a client
// that hangs up cancels its queued work.
func (s *Server) handle(conn net.Conn) {
	s.m.conns.Add(1)
	defer func() {
		s.m.conns.Add(-1)
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The per-connection ctx cancels only when this loop exits (the
	// deferred cancel aborts in-flight store work); mid-loop it is
	// never done, and a dropped conn unblocks readFrame directly.
	//lint:ignore ctxcancel per-conn ctx cancels on loop exit; readFrame unblocks via conn close
	for {
		body, err := readFrame(conn)
		if err != nil {
			return // EOF or broken connection
		}
		req, err := decodeRequest(body)
		if err != nil {
			s.logf("transport: bad request from %v: %v", conn.RemoteAddr(), err)
			return
		}
		switch req.op {
		case opMuxUpgrade:
			s.m.ops[req.op].Inc()
			served, err := s.upgradeMux(ctx, conn, req)
			if served || err != nil {
				return // the mux loop consumed the connection
			}
		case opPutBatch, opGetBatch, opDeleteBatch, opCaps:
			if err := s.handleBatch(ctx, conn, req); err != nil {
				return
			}
		default:
			status, payload := s.dispatch(ctx, req)
			if err := writeFrame(conn, []byte{status}, payload); err != nil {
				return
			}
		}
	}
}

// handleBatch dispatches one batch request and writes its multi-chunk
// response with vectored I/O, so stored blocks stream out of a GET
// batch without being copied into a contiguous response body.
func (s *Server) handleBatch(ctx context.Context, conn net.Conn, req request) error {
	start := time.Now()
	s.m.ops[req.op].Inc()
	scratch := getScratch()
	defer putScratch(scratch)
	status, chunks := s.dispatchBatch(ctx, req, scratch)
	s.m.opSeconds[req.op].Observe(time.Since(start).Seconds())
	if status != statusOK {
		s.m.errors.Inc()
	}
	sb := [1]byte{status}
	all := make([][]byte, 0, len(chunks)+1)
	all = append(all, sb[:])
	all = append(all, chunks...)
	return writeFrameVec(conn, all)
}

// batchStatus maps a per-entry store error onto a wire status and
// message.
func batchStatus(err error) (byte, []byte) {
	switch {
	case err == nil:
		return statusOK, nil
	case errors.Is(err, blockstore.ErrNotFound):
		return statusNotFound, nil
	default:
		return statusErr, []byte(err.Error())
	}
}

// dispatchBatch executes one batch request. Per-entry failures are
// reported in the entry's status — one bad block never fails its
// batch; only a malformed request fails wholesale. Entry headers are
// written into scratch (pre-sized so appends never relocate the chunks
// already referencing it); entry bytes are referenced in place.
func (s *Server) dispatchBatch(ctx context.Context, req request, scratch *[]byte) (byte, [][]byte) {
	if req.op == opCaps {
		return statusOK, [][]byte{encodeCaps(capPutBatch | capGetBatch | capDeleteBatch | capMux | capPutStream)}
	}
	// Admission control guards the batch data paths exactly like the
	// single-block ones: one admit per request, sized by its payload.
	if s.opts.Admission != nil && (req.op == opGetBatch || req.op == opPutBatch) {
		release, err := s.opts.Admission.Admit(ctx, admission.Request{Bytes: int64(len(req.payload))})
		if err != nil {
			s.m.busy.Inc()
			return statusBusy, [][]byte{[]byte(err.Error())}
		}
		defer release()
	}
	switch req.op {
	case opPutBatch:
		entries, err := decodePutEntries(req.index, req.payload)
		if err != nil {
			return statusErr, [][]byte{[]byte(err.Error())}
		}
		s.m.batchBlocks.Add(int64(len(entries)))
		errs := s.putEntries(ctx, req.segment, entries)
		return statusOK, appendStatusEntries(scratch, entryIndices(entries), errs)
	case opDeleteBatch:
		indices, err := decodeIndices(req.payload)
		if err != nil || len(indices) != req.index {
			return statusErr, [][]byte{[]byte("transport: malformed delete batch")}
		}
		s.m.batchBlocks.Add(int64(len(indices)))
		var errs []error
		if bs, ok := s.store.(blockstore.Batcher); ok {
			errs = bs.DeleteBatch(ctx, req.segment, indices)
		} else {
			errs = make([]error, len(indices))
			for i, idx := range indices {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = s.store.Delete(ctx, req.segment, idx)
			}
		}
		return statusOK, appendStatusEntries(scratch, indices, errs)
	case opGetBatch:
		indices, err := decodeIndices(req.payload)
		if err != nil || len(indices) != req.index {
			return statusErr, [][]byte{[]byte("transport: malformed get batch")}
		}
		s.m.batchBlocks.Add(int64(len(indices)))
		var datas [][]byte
		var errs []error
		if bs, ok := s.store.(blockstore.Batcher); ok {
			datas, errs = bs.GetBatch(ctx, req.segment, indices)
		} else {
			datas = make([][]byte, len(indices))
			errs = make([]error, len(indices))
			for i, idx := range indices {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				datas[i], errs[i] = s.store.Get(ctx, req.segment, idx)
			}
		}
		growScratch(scratch, batchResultOverhead*len(indices))
		chunks := make([][]byte, 0, 2*len(indices))
		// A response frame is bounded by MaxFrame; entries that would
		// push past it are answered with an error status so the client
		// can fetch them singly (its windowing makes this rare).
		total := 1 + batchResultOverhead*len(indices)
		for i, idx := range indices {
			status, msg := batchStatus(errs[i])
			bytes := msg
			if status == statusOK {
				bytes = datas[i]
			}
			if total+len(bytes) > MaxFrame {
				status, bytes = statusErr, []byte("transport: batch response overflow")
			}
			total += len(bytes)
			chunks = appendResultChunks(scratch, chunks, idx, status, bytes)
		}
		return statusOK, chunks
	}
	return statusErr, [][]byte{[]byte(fmt.Sprintf("unknown batch op %d", req.op))}
}

// putEntries applies a PUTBATCH through the store's batch fast path
// when it has one.
func (s *Server) putEntries(ctx context.Context, segment string, entries []putEntry) []error {
	if bs, ok := s.store.(blockstore.Batcher); ok {
		puts := make([]blockstore.BatchPut, len(entries))
		for i, e := range entries {
			puts[i] = blockstore.BatchPut{Index: e.index, Data: e.data}
		}
		return bs.PutBatch(ctx, segment, puts)
	}
	errs := make([]error, len(entries))
	for i, e := range entries {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		errs[i] = s.store.Put(ctx, segment, e.index, e.data)
	}
	return errs
}

func entryIndices(entries []putEntry) []int {
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = e.index
	}
	return out
}

// growScratch pre-sizes scratch so subsequent appends never relocate
// the backing array out from under chunks that already reference it.
func growScratch(scratch *[]byte, need int) {
	if cap(*scratch) < need {
		*scratch = make([]byte, 0, need)
	}
}

// appendResultChunks appends one batch response entry (header into
// scratch, bytes referenced in place) to the chunk list.
func appendResultChunks(scratch *[]byte, chunks [][]byte, index int, status byte, bytes []byte) [][]byte {
	off := len(*scratch)
	*scratch = appendBatchResultHeader(*scratch, index, status, len(bytes))
	chunks = append(chunks, (*scratch)[off:len(*scratch)])
	if len(bytes) > 0 {
		chunks = append(chunks, bytes)
	}
	return chunks
}

// appendStatusEntries builds the response entries for a PUT or DELETE
// batch: per-index status plus error text.
func appendStatusEntries(scratch *[]byte, indices []int, errs []error) [][]byte {
	growScratch(scratch, batchResultOverhead*len(indices))
	chunks := make([][]byte, 0, 2*len(indices))
	for i, idx := range indices {
		status, msg := batchStatus(errs[i])
		chunks = appendResultChunks(scratch, chunks, idx, status, msg)
	}
	return chunks
}

// dispatch executes one request against the store and records per-op
// metrics (count, latency, errors).
func (s *Server) dispatch(ctx context.Context, req request) (status byte, payload []byte) {
	start := time.Now()
	s.m.ops[req.op].Inc() // nil map yields a nil (no-op) counter
	defer func() {
		s.m.opSeconds[req.op].Observe(time.Since(start).Seconds())
		switch status {
		case statusErr:
			s.m.errors.Inc()
		case statusBusy:
			s.m.busy.Inc()
		}
	}()
	// Admission control guards the data-path operations.
	if s.opts.Admission != nil && (req.op == opGet || req.op == opPut) {
		release, err := s.opts.Admission.Admit(ctx, admission.Request{Bytes: int64(len(req.payload))})
		if err != nil {
			return statusBusy, []byte(err.Error())
		}
		defer release()
	}
	switch req.op {
	case opPing:
		return statusOK, nil
	case opPut:
		if err := s.store.Put(ctx, req.segment, req.index, req.payload); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, nil
	case opGet:
		b, err := s.store.Get(ctx, req.segment, req.index)
		if errors.Is(err, blockstore.ErrNotFound) {
			return statusNotFound, nil
		}
		if err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, b
	case opDelete:
		if err := s.store.Delete(ctx, req.segment, req.index); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, nil
	case opList:
		idx, err := s.store.List(ctx, req.segment)
		if err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, encodeIndices(idx)
	case opScrub:
		sc, ok := s.store.(blockstore.Scrubber)
		if !ok {
			return statusUnsupported, []byte("store has no integrity framing")
		}
		bad, err := sc.Scrub(ctx, req.segment)
		if errors.Is(err, blockstore.ErrScrubUnsupported) {
			// A wrapper (e.g. fault injection) may carry the method but
			// sit over a store that cannot verify.
			return statusUnsupported, []byte(err.Error())
		}
		if err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, encodeIndices(bad)
	default:
		return statusErr, []byte(fmt.Sprintf("unknown op %d", req.op))
	}
}
