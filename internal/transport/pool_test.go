package transport

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/blockstore"
)

func TestClientPoolCapBlocksAndRecovers(t *testing.T) {
	store := blockstore.NewSlowStore(blockstore.NewMemStore(),
		blockstore.SlowProfile{BaseLatency: 100 * time.Millisecond}, 1)
	srv := NewServer(store, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	client, err := Dial(ln.Addr().String(), ClientOptions{MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()
	// Six concurrent puts through a 2-connection pool: all must finish.
	var wg sync.WaitGroup
	errCh := make(chan error, 6)
	start := time.Now()
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := client.Put(ctx, "s", i, []byte{byte(i)}); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// With a cap of 2 and 100ms per op, 6 ops take >= ~300ms.
	if time.Since(start) < 250*time.Millisecond {
		t.Fatalf("pool cap not enforced: %v", time.Since(start))
	}
}

func TestClientPoolWaiterHonorsContext(t *testing.T) {
	store := blockstore.NewSlowStore(blockstore.NewMemStore(),
		blockstore.SlowProfile{BaseLatency: 5 * time.Second}, 1)
	srv := NewServer(store, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	client, err := Dial(ln.Addr().String(), ClientOptions{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Occupy the single connection.
	go client.Put(context.Background(), "s", 0, []byte("slow"))
	time.Sleep(50 * time.Millisecond)
	// A second request must give up when its context expires while
	// waiting for the pool.
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := client.Put(ctx, "s", 1, []byte("x")); err == nil {
		t.Fatal("pool waiter ignored context")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("pool waiter stuck for %v", time.Since(start))
	}
}

func TestCloseUnblocksPoolWaiters(t *testing.T) {
	store := blockstore.NewSlowStore(blockstore.NewMemStore(),
		blockstore.SlowProfile{BaseLatency: 3 * time.Second}, 1)
	srv := NewServer(store, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	client, err := Dial(ln.Addr().String(), ClientOptions{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	go client.Put(context.Background(), "s", 0, []byte("slow"))
	time.Sleep(50 * time.Millisecond)
	errCh := make(chan error, 1)
	go func() {
		errCh <- client.Put(context.Background(), "s", 1, []byte("x"))
	}()
	time.Sleep(50 * time.Millisecond)
	client.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("put through closed client succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock pool waiter")
	}
}

func TestServeOnClosedServer(t *testing.T) {
	srv := NewServer(blockstore.NewMemStore(), ServerOptions{})
	srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve on closed server succeeded")
	}
}

func TestServerAddr(t *testing.T) {
	srv := NewServer(blockstore.NewMemStore(), ServerOptions{})
	if srv.Addr() != nil {
		t.Fatal("Addr before Serve should be nil")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	time.Sleep(20 * time.Millisecond)
	if srv.Addr() == nil {
		t.Fatal("Addr after Serve is nil")
	}
}
