package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/obs"
)

// stallingStore blocks Get on one segment until released (or the
// request's context ends), letting tests park a mux stream server-side
// at an exact point.
type stallingStore struct {
	blockstore.Store
	segment string
	gate    chan struct{}
}

func (s *stallingStore) Get(ctx context.Context, segment string, index int) ([]byte, error) {
	if segment == s.segment {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.Store.Get(ctx, segment, index)
}

// recordingHealth counts transport-level outcome reports.
type recordingHealth struct {
	mu        sync.Mutex
	successes int
	failures  int
}

func (r *recordingHealth) ReportSuccess(string) {
	r.mu.Lock()
	r.successes++
	r.mu.Unlock()
}

func (r *recordingHealth) ReportFailure(string) {
	r.mu.Lock()
	r.failures++
	r.mu.Unlock()
}

func (r *recordingHealth) counts() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.successes, r.failures
}

// startMuxPair runs a server over the given store and returns a
// connected client with caps already probed, so the mux path is
// engaged for every subsequent operation.
func startMuxPair(t *testing.T, store blockstore.Store, copts ClientOptions) *Client {
	t.Helper()
	srv := NewServer(store, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	if copts.Obs == nil {
		copts.Obs = obs.NewRegistry() // the tests assert on mux counters
	}
	client, err := Dial(ln.Addr().String(), copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	if client.capabilities(context.Background())&capMux == 0 {
		t.Fatal("server did not advertise capMux")
	}
	return client
}

// TestMuxInterleavedStreamReassembly drives many concurrent exchanges
// with mixed payload sizes through one mux connection with a window
// small enough to force chunking and flow-control stalls, and checks
// every stream reassembles to exactly its own payload.
func TestMuxInterleavedStreamReassembly(t *testing.T) {
	client := startMuxPair(t, blockstore.NewMemStore(), ClientOptions{
		MuxConns:  1,
		MuxWindow: 8 << 10, // tiny window: every sizable block needs several chunks
	})
	ctx := context.Background()
	if client.muxFor(ctx) == nil {
		t.Fatal("mux did not engage after caps probe")
	}

	const streams = 24
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			size := (i * 7919) % (96 << 10) // 0 .. ~96 KB, several windows each
			data := bytes.Repeat([]byte{byte(i + 1)}, size)
			seg := fmt.Sprintf("seg-%d", i)
			if err := client.Put(ctx, seg, i, data); err != nil {
				errs <- fmt.Errorf("put %d: %w", i, err)
				return
			}
			got, err := client.Get(ctx, seg, i)
			if err != nil {
				errs <- fmt.Errorf("get %d: %w", i, err)
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("stream %d reassembled %d bytes, want %d", i, len(got), len(data))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if v := client.m.muxDials.Value(); v != 1 {
		t.Errorf("muxDials = %d, want 1 (all streams share one upgraded conn)", v)
	}
	if v := client.m.muxStreams.Value(); v < 2*streams {
		t.Errorf("muxStreams = %d, want >= %d (one per put + one per get)", v, 2*streams)
	}
	if sent, st := client.m.muxFramesSent.Value(), client.m.muxStreams.Value(); sent <= st {
		t.Errorf("muxFramesSent = %d with %d streams: payloads were not chunked", sent, st)
	}
}

// TestMuxStreamTimeoutDoesNotPoisonConn is the regression test for
// per-stream timeout isolation: a stalled GET times out and is
// reported to the health tracker, while concurrent and subsequent
// streams on the SAME mux connection keep working — the v1 path would
// have discarded the pooled connection.
func TestMuxStreamTimeoutDoesNotPoisonConn(t *testing.T) {
	mem := blockstore.NewMemStore()
	gate := make(chan struct{})
	store := &stallingStore{Store: mem, segment: "slow", gate: gate}
	defer close(gate)
	health := &recordingHealth{}
	client := startMuxPair(t, store, ClientOptions{
		MuxConns:       1,
		RequestTimeout: 250 * time.Millisecond,
		Health:         health,
	})
	ctx := context.Background()
	if err := client.Put(ctx, "fast", 0, []byte("quick")); err != nil {
		t.Fatal(err)
	}
	if err := client.Put(ctx, "slow", 0, []byte("never")); err != nil {
		t.Fatal(err)
	}

	slowErr := make(chan error, 1)
	go func() {
		_, err := client.Get(ctx, "slow", 0)
		slowErr <- err
	}()

	// While the slow stream is parked server-side, sibling streams on
	// the same connection must complete well within its timeout.
	for i := 0; i < 5; i++ {
		if _, err := client.Get(ctx, "fast", 0); err != nil {
			t.Fatalf("concurrent get %d alongside stalled stream: %v", i, err)
		}
	}

	select {
	case err := <-slowErr:
		if !errors.Is(err, ErrRequestTimeout) {
			t.Fatalf("stalled get err = %v, want ErrRequestTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled get never timed out")
	}

	// The connection survived the abandoned stream.
	if got, err := client.Get(ctx, "fast", 0); err != nil || string(got) != "quick" {
		t.Fatalf("get after stream timeout = %q, %v", got, err)
	}
	if v := client.m.muxDials.Value(); v != 1 {
		t.Errorf("muxDials = %d, want 1: the timeout must not burn the connection", v)
	}
	if v := client.m.muxStreamTimeouts.Value(); v != 1 {
		t.Errorf("muxStreamTimeouts = %d, want 1", v)
	}
	if v := client.m.muxConnFailures.Value(); v != 0 {
		t.Errorf("muxConnFailures = %d, want 0", v)
	}
	succ, fail := health.counts()
	if fail != 1 {
		t.Errorf("health failures = %d, want exactly 1 (the timed-out stream)", fail)
	}
	if succ < 6 {
		t.Errorf("health successes = %d, want >= 6 (the fast streams)", succ)
	}
}

// rawMuxPeer is a hand-rolled v2 client for hostile-input tests: it
// performs the MUXUP handshake and then speaks raw frames.
type rawMuxPeer struct {
	t    *testing.T
	conn net.Conn
}

func dialRawMux(t *testing.T, addr string) *rawMuxPeer {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	body, err := encodeRequest(opMuxUpgrade, "-", 0, encodeMuxSettings(muxSettings{window: defaultMuxWindow, maxStreams: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, body); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) < 1 || resp[0] != statusOK {
		t.Fatalf("MUXUP refused: %q", resp)
	}
	if _, err := decodeMuxSettings(resp[1:]); err != nil {
		t.Fatalf("bad MUXUP ack: %v", err)
	}
	return &rawMuxPeer{t: t, conn: conn}
}

func (p *rawMuxPeer) sendReq(id uint32, op byte, segment string, index int, payload []byte) {
	p.t.Helper()
	body, err := encodeRequest(op, segment, index, payload)
	if err != nil {
		p.t.Fatal(err)
	}
	w := &lockedWriter{w: p.conn}
	if err := writeMuxFrame(w, muxKindReq, id, []byte{muxFlagFIN}, body); err != nil {
		p.t.Fatal(err)
	}
}

// readFrameFor reads frames until one for the given stream arrives.
func (p *rawMuxPeer) readFrameFor(id uint32) muxFrame {
	p.t.Helper()
	p.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		body, err := readFrame(p.conn)
		if err != nil {
			p.t.Fatalf("readFrame waiting for stream %d: %v", id, err)
		}
		f, err := decodeMuxFrame(body)
		if err != nil {
			p.t.Fatalf("decodeMuxFrame: %v", err)
		}
		if f.id == id {
			return f
		}
	}
}

// TestMuxDuplicateStreamIDResetsOnlyThatStream sends a second request
// on a stream id whose request half already finished: the server must
// RESET that stream and keep serving the others on the connection.
func TestMuxDuplicateStreamIDResetsOnlyThatStream(t *testing.T) {
	mem := blockstore.NewMemStore()
	gate := make(chan struct{})
	defer close(gate)
	store := &stallingStore{Store: mem, segment: "slow", gate: gate}
	if err := mem.Put(context.Background(), "fast", 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	peer := dialRawMux(t, ln.Addr().String())
	// Stream 7 parks in the store; its id is now in use.
	peer.sendReq(7, opGet, "slow", 0, nil)
	// Reusing the id while the stream is open is a protocol violation
	// scoped to that stream.
	peer.sendReq(7, opPing, "-", 0, nil)
	if f := peer.readFrameFor(7); f.kind != muxKindReset {
		t.Fatalf("duplicate stream id answered with kind %d, want RESET", f.kind)
	}
	// The connection is still healthy: a fresh stream round-trips.
	peer.sendReq(8, opGet, "fast", 0, nil)
	var got []byte
	for {
		f := peer.readFrameFor(8)
		if f.kind != muxKindResp {
			t.Fatalf("stream 8 got kind %d, want RESP", f.kind)
		}
		if f.status != statusOK {
			t.Fatalf("stream 8 status = %d", f.status)
		}
		got = append(got, f.chunk...)
		if f.flags&muxFlagFIN != 0 {
			break
		}
	}
	if string(got) != "payload" {
		t.Fatalf("stream 8 payload = %q", got)
	}
}

// TestMuxUnknownFrameKindKillsConnection: a frame kind that survives
// no decode path is connection-fatal (unlike per-stream violations).
func TestMuxUnknownFrameKindKillsConnection(t *testing.T) {
	srv := NewServer(blockstore.NewMemStore(), ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	peer := dialRawMux(t, ln.Addr().String())
	// kind 9 does not exist; the server must drop the connection.
	if err := writeFrame(peer.conn, []byte{9, 0, 0, 0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	peer.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(peer.conn); err == nil {
		t.Fatal("connection survived an unknown frame kind")
	}
}
