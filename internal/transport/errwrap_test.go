package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeTimeoutErr satisfies net.Error with Timeout() == true, standing
// in for a conn deadline overrun.
type fakeTimeoutErr struct{}

func (*fakeTimeoutErr) Error() string   { return "fake i/o timeout" }
func (*fakeTimeoutErr) Timeout() bool   { return true }
func (*fakeTimeoutErr) Temporary() bool { return true }

// The timeout wrap must keep BOTH ends of the chain matchable:
// callers hedge on errors.Is(err, ErrRequestTimeout), and operators
// debugging a stall need errors.As to reach the underlying net error.
// A %v in the wrap severs the second one silently.
func TestWrapExchangeErrPreservesCause(t *testing.T) {
	c := &Client{reqTimeout: 50 * time.Millisecond}
	cause := &fakeTimeoutErr{}
	err := c.wrapExchangeErr(fmt.Errorf("write frame: %w", cause), false, context.Background())
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout in chain", err)
	}
	var ne *fakeTimeoutErr
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v severs the underlying net error from the chain", err)
	}
}

func TestWrapExchangeErrCancellationWins(t *testing.T) {
	c := &Client{reqTimeout: 50 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.wrapExchangeErr(&fakeTimeoutErr{}, true, ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("err = %v: cancellation must not be reported as a timeout", err)
	}
}

// A malformed batch response error must wrap (not flatten) the decode
// error so callers can still unwrap to the root cause.
func TestFinishBatchWrapsDecodeError(t *testing.T) {
	errs := make([]error, 2)
	(&Client{}).finishBatch(nil, []int{0, 1}, errs, statusOK, []byte{0xff}, nil)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("errs[%d] = nil, want malformed-response error", i)
		}
		if errors.Unwrap(err) == nil {
			t.Fatalf("errs[%d] = %v does not wrap the decode error", i, err)
		}
	}
}
