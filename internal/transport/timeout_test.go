package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/blockstore"
)

// stalledServer answers the dial-time ping on each connection, then
// swallows every subsequent request without replying — a hung
// storage server, the failure mode RequestTimeout exists for.
func stalledServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, err := readFrame(conn); err != nil {
					return
				}
				if err := writeFrame(conn, []byte{statusOK}); err != nil {
					return
				}
				// Stall: keep reading, never respond.
				io.Copy(io.Discard, conn)
			}(conn)
		}
	}()
	return ln
}

// Without RequestTimeout a hung server pins the request until the
// caller cancels; with it the round-trip fails fast with
// ErrRequestTimeout, letting the speculative read proceed on other
// servers (§4.2).
func TestRequestTimeoutStalledServer(t *testing.T) {
	ln := stalledServer(t)
	defer ln.Close()

	c, err := Dial(ln.Addr().String(), ClientOptions{RequestTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial (ping should succeed): %v", err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Get(context.Background(), "seg", 0)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Get against stalled server succeeded")
	}
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Get took %v; deadline did not fire", elapsed)
	}
}

// A stalled server must not stall Dial either: the verification ping
// itself runs under the request deadline.
func TestRequestTimeoutBoundsDialPing(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Accept and stall without even answering the ping.
			go func(conn net.Conn) {
				defer conn.Close()
				io.Copy(io.Discard, conn)
			}(conn)
		}
	}()

	start := time.Now()
	_, err = Dial(ln.Addr().String(), ClientOptions{RequestTimeout: 150 * time.Millisecond})
	if err == nil {
		t.Fatal("Dial to stalled server succeeded")
	}
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Dial took %v; deadline did not fire", elapsed)
	}
}

// With a healthy server the deadline must be invisible: requests
// succeed back-to-back and pooled connections are reused with a
// cleared deadline.
func TestRequestTimeoutHealthyServer(t *testing.T) {
	srv := NewServer(blockstore.NewMemStore(), ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := Dial(ln.Addr().String(), ClientOptions{RequestTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	payload := []byte("block data")
	for i := 0; i < 5; i++ {
		if err := c.Put(ctx, "seg", i, payload); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		// Sleep past the first iteration's absolute deadline: if release
		// failed to clear it, the reused connection would now fail.
		if i == 0 {
			time.Sleep(300 * time.Millisecond)
		}
	}
	for i := 0; i < 5; i++ {
		got, err := c.Get(ctx, "seg", i)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if string(got) != string(payload) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
}

// Caller cancellation still wins over the request deadline: a ctx
// canceled mid-exchange reports ctx.Err, not ErrRequestTimeout.
func TestRequestTimeoutCancellationWins(t *testing.T) {
	ln := stalledServer(t)
	defer ln.Close()

	c, err := Dial(ln.Addr().String(), ClientOptions{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = c.Get(ctx, "seg", 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
