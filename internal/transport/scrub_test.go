package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"

	"repro/internal/blockstore"
)

// startChecksumServer runs a server whose store verifies CRC-32C
// framing, exposing both the wrapped store (what the wire sees) and
// the raw inner store (so tests can rot blocks beneath the checksums).
func startChecksumServer(t *testing.T) (*Client, *blockstore.MemStore) {
	t.Helper()
	inner := blockstore.NewMemStore()
	srv := NewServer(blockstore.WithChecksums(inner), ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, inner
}

// TestScrubRoundTrip verifies the SCRUB op end-to-end: a clean
// segment scrubs empty, then corrupting two blocks beneath the
// server's checksum layer surfaces exactly those indices.
func TestScrubRoundTrip(t *testing.T) {
	client, inner := startChecksumServer(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := client.Put(ctx, "seg", i, []byte{byte(i), 0xAA}); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := client.Scrub(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean segment scrubbed bad=%v", bad)
	}
	// Rot blocks 1 and 3 directly in the inner store, beneath the
	// checksum frame.
	for _, i := range []int{1, 3} {
		framed, err := inner.Get(ctx, "seg", i)
		if err != nil {
			t.Fatal(err)
		}
		rotten := append([]byte(nil), framed...)
		rotten[len(rotten)-1] ^= 0xFF
		if err := inner.Put(ctx, "seg", i, rotten); err != nil {
			t.Fatal(err)
		}
	}
	bad, err = client.Scrub(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(bad) != "[1 3]" {
		t.Fatalf("Scrub = %v, want [1 3]", bad)
	}
	// An empty segment scrubs empty, not as an error.
	bad, err = client.Scrub(ctx, "nothing")
	if err != nil || len(bad) != 0 {
		t.Fatalf("Scrub(empty) = %v, %v", bad, err)
	}
}

// TestScrubUnsupportedStatus checks that a server without integrity
// framing answers SCRUB with a status mapping to ErrScrubUnsupported
// rather than a generic failure.
func TestScrubUnsupportedStatus(t *testing.T) {
	client, _ := startServer(t, ServerOptions{}) // bare MemStore, no checksums
	_, err := client.Scrub(context.Background(), "seg")
	if !errors.Is(err, blockstore.ErrScrubUnsupported) {
		t.Fatalf("Scrub err = %v, want ErrScrubUnsupported", err)
	}
}

// TestScrubCanceledContext confirms caller cancellation wins over the
// idempotent-retry loop.
func TestScrubCanceledContext(t *testing.T) {
	client, _ := startChecksumServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Scrub(ctx, "seg"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Scrub err = %v, want context.Canceled", err)
	}
}
