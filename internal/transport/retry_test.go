package transport

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// scriptedServer speaks the block protocol by hand so tests can
// misbehave at exact exchange boundaries. The script function is
// called with the 1-based global exchange number and the live conn;
// returning false closes the connection without a (full) response.
type scriptedServer struct {
	ln       net.Listener
	exchange atomic.Int64
	conns    atomic.Int64
}

func newScriptedServer(t *testing.T, script func(n int64, conn net.Conn) bool) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedServer{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.conns.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					if _, err := readFrame(conn); err != nil {
						return
					}
					if !script(s.exchange.Add(1), conn) {
						return
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

// ok writes a well-formed OK response.
func okResponse(conn net.Conn) bool {
	return writeFrame(conn, []byte{statusOK}, []byte("x")) == nil
}

// TestExchangeDropsConnOnShortRead is the regression test for the
// pooled-conn bug: a response truncated mid-frame (short read) must
// drop the connection instead of returning it to the pool — a pooled
// half-dead conn poisons the next request on it.
func TestExchangeDropsConnOnShortRead(t *testing.T) {
	srv := newScriptedServer(t, func(n int64, conn net.Conn) bool {
		switch n {
		case 1: // Dial's ping
			return okResponse(conn)
		case 2: // truncated frame: promise 10 bytes, deliver 3, close
			conn.Write([]byte{0, 0, 0, 10})
			conn.Write([]byte{1, 2, 3})
			return false
		default:
			return okResponse(conn)
		}
	})
	reg := obs.NewRegistry()
	c, err := Dial(srv.ln.Addr().String(), ClientOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err == nil {
		t.Fatal("short-read exchange should error")
	}
	// The poisoned conn must not be pooled: the next request dials
	// fresh and succeeds.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("request after short read failed: %v", err)
	}
	if got := srv.conns.Load(); got != 2 {
		t.Fatalf("server saw %d conns, want 2 (poisoned conn dropped, fresh dial)", got)
	}
}

// TestExchangeDropsConnOnEmptyResponse: a zero-length response frame
// is a protocol violation; before the fix the conn was released to
// the pool first and only then the error returned.
func TestExchangeDropsConnOnEmptyResponse(t *testing.T) {
	srv := newScriptedServer(t, func(n int64, conn net.Conn) bool {
		switch n {
		case 1:
			return okResponse(conn)
		case 2: // empty frame: length 0, no status byte
			conn.Write([]byte{0, 0, 0, 0})
			return true
		default:
			return okResponse(conn)
		}
	})
	reg := obs.NewRegistry()
	c, err := Dial(srv.ln.Addr().String(), ClientOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err == nil {
		t.Fatal("empty response should error")
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("request after empty response failed: %v", err)
	}
	if got := reg.Counter("transport_client_dials_total").Value(); got != 2 {
		t.Fatalf("dials=%d, want 2: the protocol-violating conn must not be reused", got)
	}
}

// TestIdempotentRetryRecovers: the first two exchanges die mid-air;
// with MaxRetries the GET succeeds anyway and the retry counters
// record the recovery.
func TestIdempotentRetryRecovers(t *testing.T) {
	srv := newScriptedServer(t, func(n int64, conn net.Conn) bool {
		switch n {
		case 1: // Dial's ping
			return okResponse(conn)
		case 2, 3: // two dead exchanges: close without responding
			return false
		default:
			return okResponse(conn)
		}
	})
	reg := obs.NewRegistry()
	c, err := Dial(srv.ln.Addr().String(), ClientOptions{
		MaxRetries:     4,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
		Obs:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Get(context.Background(), "seg", 0); err != nil {
		t.Fatalf("get with retries failed: %v", err)
	}
	if got := reg.Counter("transport_client_retries_total").Value(); got != 2 {
		t.Fatalf("retries=%d, want 2", got)
	}
	if got := reg.Counter("transport_client_retry_successes_total").Value(); got != 1 {
		t.Fatalf("retry successes=%d, want 1", got)
	}
}

// TestPutNotRetried: PUT is non-idempotent at the transport layer
// (the robust write path re-routes failures to healthier servers), so
// a dead exchange must surface immediately.
func TestPutNotRetried(t *testing.T) {
	srv := newScriptedServer(t, func(n int64, conn net.Conn) bool {
		if n == 1 {
			return okResponse(conn)
		}
		return false // every later exchange dies
	})
	reg := obs.NewRegistry()
	c, err := Dial(srv.ln.Addr().String(), ClientOptions{
		MaxRetries: 8, RetryBaseDelay: time.Millisecond, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(context.Background(), "seg", 0, []byte("data")); err == nil {
		t.Fatal("put against a dead exchange should fail")
	}
	if got := reg.Counter("transport_client_retries_total").Value(); got != 0 {
		t.Fatalf("retries=%d, want 0: puts must not retry", got)
	}
}

// TestRetryGivesUpAfterBudget: a server that never recovers exhausts
// the retry budget and reports the giveup.
func TestRetryGivesUpAfterBudget(t *testing.T) {
	srv := newScriptedServer(t, func(n int64, conn net.Conn) bool {
		if n == 1 {
			return okResponse(conn)
		}
		return false
	})
	reg := obs.NewRegistry()
	c, err := Dial(srv.ln.Addr().String(), ClientOptions{
		MaxRetries:     3,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
		Obs:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Get(context.Background(), "seg", 0); err == nil {
		t.Fatal("get should fail once the retry budget is exhausted")
	}
	if got := reg.Counter("transport_client_retries_total").Value(); got != 3 {
		t.Fatalf("retries=%d, want 3", got)
	}
	if got := reg.Counter("transport_client_retry_giveups_total").Value(); got != 1 {
		t.Fatalf("giveups=%d, want 1", got)
	}
}

// TestRetryHonorsCancellation: caller cancellation must win over the
// retry loop, during the exchange and during the backoff sleep.
func TestRetryHonorsCancellation(t *testing.T) {
	srv := newScriptedServer(t, func(n int64, conn net.Conn) bool {
		if n == 1 {
			return okResponse(conn)
		}
		return false
	})
	c, err := Dial(srv.ln.Addr().String(), ClientOptions{
		MaxRetries:     1000,
		RetryBaseDelay: 50 * time.Millisecond,
		RetryMaxDelay:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Get(ctx, "seg", 0)
	if err == nil {
		t.Fatal("canceled get should fail")
	}
	if !errors.Is(err, context.Canceled) && ctx.Err() == nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — retry loop ignored ctx", elapsed)
	}
}
