package transport

import (
	"fmt"
	"sync"
)

// Transport v2: a framed, multiplexed connection (DESIGN.md §12).
//
// A v1 connection carries one request/response exchange at a time, so
// a scrub, a ping, and a read against the same server serialize
// behind each other even with batch ops. Transport v2 upgrades a
// connection (negotiated through CAPS + MUXUP, with clean fallback
// for legacy peers) to a stream-multiplexed framing where every
// exchange is its own stream: request IDs, out-of-order responses,
// chunked bodies so a 16 MB GET never head-of-line-blocks a PING, and
// per-stream windowed flow control so one slow consumer stalls only
// its own stream.
//
// v2 frame layout (all integers big-endian), reusing the v1 outer
// length prefix:
//
//	[4B frame length][1B kind][4B stream id][body...]
//
// kinds:
//
//	REQ    body = [1B flags][chunk]             client→server
//	RESP   body = [1B flags][1B status][chunk]  server→client
//	WINDOW body = [4B credit bytes]             either direction
//	RESET  body = [error text]                  either direction
//
// The concatenated REQ chunks of a stream form exactly one v1 request
// body (op, segment, index, payload); the concatenated RESP chunks
// form the response payload, with the status carried on every RESP
// frame (the first one wins). flags bit 0 (FIN) marks a stream's last
// chunk in that direction. Chunk payload bytes are debited from the
// sender's per-stream credit window; the receiver returns credit with
// WINDOW frames as it consumes chunks, and stops granting the moment
// it abandons a stream — a stalled or timed-out stream therefore
// quiesces without poisoning its neighbors. RESET aborts one stream
// in both directions (the receiver cancels the stream's server-side
// context); only a malformed frame kills the connection.
type muxFrame struct {
	kind   byte
	id     uint32
	flags  byte
	status byte
	credit int
	chunk  []byte // aliases the decoded frame body
}

// v2 frame kinds.
const (
	muxKindReq    = byte(1)
	muxKindResp   = byte(2)
	muxKindWindow = byte(3)
	muxKindReset  = byte(4)
)

// muxFlagFIN marks the last chunk of a stream direction.
const muxFlagFIN = byte(1)

// Mux sizing defaults. The window is per stream and per direction;
// the chunk size bounds how long one stream may monopolize the write
// side of a connection (a 16 MB GET response becomes ~128 frames any
// other stream's frames can interleave between).
const (
	defaultMuxWindow     = 1 << 20
	defaultMuxStreams    = 64
	muxChunkSize         = 128 << 10
	muxHeaderLen         = 1 + 4 // kind + stream id
	muxReqChunkOverhead  = 1     // flags
	muxRespChunkOverhead = 2     // flags + status
)

// muxHdrPool pools the [kind][id] header bytes of outgoing v2 frames;
// like frameHdrPool, a leased header must survive until the vectored
// write drains, which the synchronous writeFrameVec guarantees.
var muxHdrPool = sync.Pool{New: func() any { return new([muxHeaderLen + muxRespChunkOverhead]byte) }}

// writeMuxFrame writes one v2 frame under the caller's write lock.
// head is the kind-specific prefix placed between the stream id and
// the chunk (flags for REQ, flags+status for RESP, nothing for the
// control kinds).
func writeMuxFrame(w *lockedWriter, kind byte, id uint32, head []byte, chunk []byte) error {
	hdr := muxHdrPool.Get().(*[muxHeaderLen + muxRespChunkOverhead]byte)
	defer muxHdrPool.Put(hdr)
	hdr[0] = kind
	hdr[1] = byte(id >> 24)
	hdr[2] = byte(id >> 16)
	hdr[3] = byte(id >> 8)
	hdr[4] = byte(id)
	n := muxHeaderLen
	n += copy(hdr[n:], head)
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(chunk) == 0 {
		return writeFrame(w.w, hdr[:n])
	}
	return writeFrame(w.w, hdr[:n], chunk)
}

// encodeMuxWindow packs a WINDOW body.
func encodeMuxWindow(credit int) [4]byte {
	return [4]byte{byte(credit >> 24), byte(credit >> 16), byte(credit >> 8), byte(credit)}
}

// decodeMuxFrame parses one v2 frame body (the bytes after the outer
// length prefix). The chunk aliases body.
func decodeMuxFrame(body []byte) (muxFrame, error) {
	if len(body) < muxHeaderLen {
		return muxFrame{}, fmt.Errorf("transport: short mux frame (%d bytes)", len(body))
	}
	f := muxFrame{
		kind: body[0],
		id:   uint32(body[1])<<24 | uint32(body[2])<<16 | uint32(body[3])<<8 | uint32(body[4]),
	}
	rest := body[muxHeaderLen:]
	switch f.kind {
	case muxKindReq:
		if len(rest) < muxReqChunkOverhead {
			return muxFrame{}, fmt.Errorf("transport: short mux REQ frame")
		}
		f.flags = rest[0]
		f.chunk = rest[muxReqChunkOverhead:]
	case muxKindResp:
		if len(rest) < muxRespChunkOverhead {
			return muxFrame{}, fmt.Errorf("transport: short mux RESP frame")
		}
		f.flags = rest[0]
		f.status = rest[1]
		f.chunk = rest[muxRespChunkOverhead:]
	case muxKindWindow:
		if len(rest) != 4 {
			return muxFrame{}, fmt.Errorf("transport: malformed mux WINDOW frame (%d bytes)", len(rest))
		}
		credit := uint32(rest[0])<<24 | uint32(rest[1])<<16 | uint32(rest[2])<<8 | uint32(rest[3])
		// The wire field is a signed 31-bit credit; a set sign bit is
		// malformed regardless of the host int width.
		if credit > 0x7FFFFFFF {
			return muxFrame{}, fmt.Errorf("transport: negative mux window credit")
		}
		f.credit = int(credit)
	case muxKindReset:
		f.chunk = rest
	default:
		return muxFrame{}, fmt.Errorf("transport: unknown mux frame kind %d", f.kind)
	}
	return f, nil
}

// lockedWriter serializes frame writes onto one shared connection.
// The lock is held per frame, never across flow-control waits — a
// stream blocked on credit must not wedge the peer's WINDOW grants.
type lockedWriter struct {
	mu sync.Mutex
	w  interface{ Write([]byte) (int, error) }
}

// creditGate is one direction of a stream's flow-control window: the
// sender takes credit before each chunk, the demux goroutine grants
// it back as the peer acknowledges consumption, and closing the gate
// releases any waiting sender with an error.
type creditGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	credit int
	err    error
}

func newCreditGate(initial int) *creditGate {
	g := &creditGate{credit: initial}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// take blocks until at least min(want, chunk window) credit is
// available or the gate closes, then debits and returns the number of
// bytes the caller may send (never more than want). stalled, when
// non-nil, is invoked once if the caller had to wait — the mux stall
// metric.
func (g *creditGate) take(want int, stalled func()) (int, error) {
	if want > muxChunkSize {
		want = muxChunkSize
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	waited := false
	for g.err == nil && g.credit <= 0 {
		if !waited && stalled != nil {
			stalled()
		}
		waited = true
		g.cond.Wait()
	}
	if g.err != nil {
		return 0, g.err
	}
	n := want
	if n > g.credit {
		n = g.credit
	}
	g.credit -= n
	return n, nil
}

// grant returns credit to the sender.
func (g *creditGate) grant(n int) {
	g.mu.Lock()
	g.credit += n
	g.mu.Unlock()
	g.cond.Broadcast()
}

// close releases any waiting sender with err.
func (g *creditGate) close(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// ctlQueue decouples control frames (WINDOW grants, RESETs) from the
// connection's read loop. A read loop that writes inline can deadlock
// when both TCP directions fill: each side's reader blocks writing a
// grant the other side cannot drain because its own reader is blocked
// the same way. Queuing the control frames and writing them from a
// dedicated goroutine keeps both read loops always reading, so the
// peer's writes always eventually drain. Grants coalesce per stream,
// bounding queue memory by the open-stream count.
type ctlQueue struct {
	mu     sync.Mutex
	grants map[uint32]int
	resets []ctlReset
	kick   chan struct{}
	done   chan struct{} // closed when run exits; join point for owners
	closed bool
}

type ctlReset struct {
	id  uint32
	msg string
}

func newCtlQueue() *ctlQueue {
	return &ctlQueue{
		grants: make(map[uint32]int),
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// grant enqueues a WINDOW grant (coalesced per stream).
func (q *ctlQueue) grant(id uint32, n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.grants[id] += n
	select {
	case q.kick <- struct{}{}:
	default:
	}
}

// reset enqueues a RESET for one stream.
func (q *ctlQueue) reset(id uint32, msg string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.resets = append(q.resets, ctlReset{id: id, msg: msg})
	select {
	case q.kick <- struct{}{}:
	default:
	}
}

// close stops the queue; further grants/resets are dropped (the
// connection is dying, so they are moot).
func (q *ctlQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.kick)
}

// swap takes the pending work.
func (q *ctlQueue) swap() (map[uint32]int, []ctlReset) {
	q.mu.Lock()
	defer q.mu.Unlock()
	grants, resets := q.grants, q.resets
	q.grants = make(map[uint32]int)
	q.resets = nil
	return grants, resets
}

// run writes queued control frames until the queue closes; onErr is
// invoked once on the first write failure (the conn is broken — the
// owner tears it down, which also closes the queue). done is closed on
// exit so owners can join after closing the queue and the conn.
func (q *ctlQueue) run(w *lockedWriter, onErr func(error)) {
	defer close(q.done)
	for range q.kick {
		grants, resets := q.swap()
		for id, n := range grants {
			win := encodeMuxWindow(n)
			if err := writeMuxFrame(w, muxKindWindow, id, nil, win[:]); err != nil {
				onErr(err)
				return
			}
		}
		for _, r := range resets {
			if err := writeMuxFrame(w, muxKindReset, r.id, nil, []byte(r.msg)); err != nil {
				onErr(err)
				return
			}
		}
	}
}

// muxSettings are the negotiated per-connection parameters: the
// initial per-stream window (bytes, each direction) and the maximum
// number of concurrently open streams.
type muxSettings struct {
	window     int
	maxStreams int
}

// encodeMuxSettings packs the MUXUP request/response payload.
func encodeMuxSettings(s muxSettings) []byte {
	return []byte{
		byte(s.window >> 24), byte(s.window >> 16), byte(s.window >> 8), byte(s.window),
		byte(s.maxStreams >> 24), byte(s.maxStreams >> 16), byte(s.maxStreams >> 8), byte(s.maxStreams),
	}
}

// decodeMuxSettings unpacks a MUXUP payload.
func decodeMuxSettings(payload []byte) (muxSettings, error) {
	if len(payload) != 8 {
		return muxSettings{}, fmt.Errorf("transport: malformed mux settings (%d bytes)", len(payload))
	}
	s := muxSettings{
		window:     int(uint32(payload[0])<<24 | uint32(payload[1])<<16 | uint32(payload[2])<<8 | uint32(payload[3])),
		maxStreams: int(uint32(payload[4])<<24 | uint32(payload[5])<<16 | uint32(payload[6])<<8 | uint32(payload[7])),
	}
	if s.window <= 0 || s.maxStreams <= 0 {
		return muxSettings{}, fmt.Errorf("transport: non-positive mux settings")
	}
	return s, nil
}

// negotiate clamps the peer's proposed settings to local bounds: both
// sides end up with the min of the two proposals, so neither can be
// pushed past what it offered.
func (s muxSettings) negotiate(peer muxSettings) muxSettings {
	out := s
	if peer.window < out.window {
		out.window = peer.window
	}
	if peer.maxStreams < out.maxStreams {
		out.maxStreams = peer.maxStreams
	}
	return out
}
