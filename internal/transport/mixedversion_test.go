package transport_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/transport"
)

// legacyServer is a hand-rolled single-op RobuSTore block server: it
// speaks only the original PUT/GET/DELETE/LIST/PING ops and answers
// anything newer — CAPS and the batch ops included — with an error
// status, exactly as a server that predates the batch protocol does.
// The wire handling is written against the documented frame layout,
// not the package's own codec, so this also pins the format.
type legacyServer struct {
	ln net.Listener

	mu     sync.Mutex
	blocks map[string][]byte
	ops    map[byte]int // op byte -> times served
}

func startLegacyServer(t *testing.T) *legacyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &legacyServer{ln: ln, blocks: make(map[string][]byte), ops: make(map[byte]int)}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return s
}

func (s *legacyServer) serve(conn net.Conn) {
	defer conn.Close()
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		if len(body) < 7 {
			return
		}
		op := body[0]
		segLen := int(binary.BigEndian.Uint16(body[1:3]))
		if len(body) < 3+segLen+4 {
			return
		}
		seg := string(body[3 : 3+segLen])
		idx := int(binary.BigEndian.Uint32(body[3+segLen : 3+segLen+4]))
		payload := body[3+segLen+4:]

		status, resp := s.handle(op, seg, idx, payload)
		var out []byte
		out = binary.BigEndian.AppendUint32(out, uint32(1+len(resp)))
		out = append(out, status)
		out = append(out, resp...)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func (s *legacyServer) handle(op byte, seg string, idx int, payload []byte) (byte, []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops[op]++
	key := fmt.Sprintf("%s/%d", seg, idx)
	switch op {
	case 1: // PUT
		s.blocks[key] = append([]byte(nil), payload...)
		return 0, nil
	case 2: // GET
		data, ok := s.blocks[key]
		if !ok {
			return 2, nil // statusNotFound
		}
		return 0, data
	case 3: // DELETE
		delete(s.blocks, key)
		return 0, nil
	case 5: // PING
		return 0, nil
	default: // LIST, SCRUB, CAPS, batch ops: this server predates them
		return 1, []byte(fmt.Sprintf("unknown op 0x%02x", op))
	}
}

func (s *legacyServer) served(op byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops[op]
}

// TestBatchClientAgainstLegacyServer proves the mixed-version path: a
// batch-speaking client against a single-op server must degrade to
// per-block operations — same results, per-entry errors intact — and
// account the downgrade in transport_client_batch_fallbacks_total.
func TestBatchClientAgainstLegacyServer(t *testing.T) {
	srv := startLegacyServer(t)
	reg := obs.NewRegistry()
	client, err := transport.Dial(srv.ln.Addr().String(), transport.ClientOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	puts := []blockstore.BatchPut{
		{Index: 0, Data: []byte("alpha")},
		{Index: 1, Data: []byte("beta")},
		{Index: 5, Data: []byte("gamma")},
	}
	for i, err := range client.PutBatch(ctx, "seg", puts) {
		if err != nil {
			t.Fatalf("PutBatch entry %d: %v", i, err)
		}
	}

	datas, errs := client.GetBatch(ctx, "seg", []int{0, 1, 5, 9})
	for i, want := range [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")} {
		if errs[i] != nil || !bytes.Equal(datas[i], want) {
			t.Fatalf("GetBatch entry %d: got %q err %v, want %q", i, datas[i], errs[i], want)
		}
	}
	if !errors.Is(errs[3], blockstore.ErrNotFound) {
		t.Fatalf("GetBatch missing entry: got %v, want ErrNotFound", errs[3])
	}

	for i, err := range client.DeleteBatch(ctx, "seg", []int{0, 1, 5}) {
		if err != nil {
			t.Fatalf("DeleteBatch entry %d: %v", i, err)
		}
	}
	if _, errs := client.GetBatch(ctx, "seg", []int{0}); !errors.Is(errs[0], blockstore.ErrNotFound) {
		t.Fatalf("block survived DeleteBatch: %v", errs[0])
	}

	snap := counters(reg)
	if snap["transport_client_batch_fallbacks_total"] < 4 {
		t.Errorf("batch fallbacks = %d, want >= 4 (put, 2 gets, delete)",
			snap["transport_client_batch_fallbacks_total"])
	}
	if snap["transport_client_batches_total"] != 0 {
		t.Errorf("wire batches = %d against a legacy server, want 0",
			snap["transport_client_batches_total"])
	}
	if srv.served(7)+srv.served(8)+srv.served(9) != 0 {
		t.Errorf("legacy server saw batch ops after the failed CAPS probe")
	}
	if srv.served(10) != 1 {
		t.Errorf("CAPS probed %d times, want exactly 1 (cached)", srv.served(10))
	}
}

// TestRobustClientOverLegacyServer runs the full robust client —
// batched write, read, and delete paths — against single-op servers
// only. The rateless pipeline must fall back cleanly and round-trip
// the data.
func TestRobustClientOverLegacyServer(t *testing.T) {
	c, err := robust.NewClient(metadata.NewService(), robust.Options{BlockBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		srv := startLegacyServer(t)
		store, err := transport.Dial(srv.ln.Addr().String(), transport.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if err := c.AttachStore(fmt.Sprintf("legacy%d", i), store); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := c.Write(ctx, "obj", data, nil); err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Read(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back wrong data through legacy servers")
	}
	if stats.FailedGets != 0 || stats.CorruptShares != 0 {
		t.Fatalf("legacy read not clean: %+v", stats)
	}
	if err := c.Delete(ctx, "obj"); err != nil {
		t.Fatal(err)
	}
}

// counters flattens a registry snapshot into name -> value.
func counters(reg *obs.Registry) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range reg.Snapshot().Counters {
		out[name] = v
	}
	return out
}

// startV2Server runs the real (mux-capable) server over a fresh
// in-memory store.
func startV2Server(t *testing.T) string {
	t.Helper()
	srv := transport.NewServer(blockstore.NewMemStore(), transport.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestMuxClientAgainstLegacyServerFallsBack: a v2 (mux-capable)
// client against a v1-only server must stay entirely on the v1
// single-op wire — no MUXUP is ever attempted (the failed CAPS probe
// already settled the question) and the streaming read path reports
// ErrMuxUnavailable without delivering anything.
func TestMuxClientAgainstLegacyServerFallsBack(t *testing.T) {
	srv := startLegacyServer(t)
	reg := obs.NewRegistry()
	client, err := transport.Dial(srv.ln.Addr().String(), transport.ClientOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	if err := client.Put(ctx, "seg", 0, []byte("v1 payload")); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(ctx, "seg", 0)
	if err != nil || !bytes.Equal(got, []byte("v1 payload")) {
		t.Fatalf("round trip over legacy server: %q, %v", got, err)
	}

	delivered := 0
	err = client.GetStream(ctx, "seg", []int{0}, func(int, []byte, error) { delivered++ })
	if !errors.Is(err, transport.ErrMuxUnavailable) {
		t.Fatalf("GetStream err = %v, want ErrMuxUnavailable", err)
	}
	if delivered != 0 {
		t.Fatalf("GetStream delivered %d blocks while unavailable, want 0", delivered)
	}

	if n := srv.served(11); n != 0 {
		t.Errorf("legacy server saw %d MUXUP attempts, want 0 (CAPS already failed)", n)
	}
	if n := srv.served(10); n != 1 {
		t.Errorf("CAPS probed %d times, want exactly 1 (cached)", n)
	}
	snap := counters(reg)
	if snap["transport_client_mux_dials_total"] != 0 {
		t.Errorf("mux dials = %d against a legacy server, want 0", snap["transport_client_mux_dials_total"])
	}
}

// v1Exchange hand-rolls one legacy single-op exchange against the
// documented frame layout — the behavior of a client binary that
// predates both the batch protocol and transport v2.
func v1Exchange(t *testing.T, conn net.Conn, op byte, seg string, idx int, payload []byte) (byte, []byte) {
	t.Helper()
	body := []byte{op}
	body = binary.BigEndian.AppendUint16(body, uint16(len(seg)))
	body = append(body, seg...)
	body = binary.BigEndian.AppendUint32(body, uint32(idx))
	body = append(body, payload...)
	out := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	out = append(out, body...)
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	if len(resp) < 1 {
		t.Fatal("empty response frame")
	}
	return resp[0], resp[1:]
}

// TestLegacyClientAgainstMuxServer: a v1-only client that never sends
// MUXUP must get plain v1 service from a v2 server on the same
// connection, even though CAPS advertises the mux capability.
func TestLegacyClientAgainstMuxServer(t *testing.T) {
	addr := startV2Server(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if st, _ := v1Exchange(t, conn, 1, "seg", 3, []byte("old client")); st != 0 {
		t.Fatalf("legacy PUT status = %d", st)
	}
	st, data := v1Exchange(t, conn, 2, "seg", 3, nil)
	if st != 0 || !bytes.Equal(data, []byte("old client")) {
		t.Fatalf("legacy GET = status %d, %q", st, data)
	}
	if st, _ := v1Exchange(t, conn, 5, "-", 0, nil); st != 0 {
		t.Fatalf("legacy PING status = %d", st)
	}
	// CAPS advertises mux (bit 3) — but merely probing it must not
	// upgrade the connection, as the next v1 exchange proves.
	st, mask := v1Exchange(t, conn, 10, "-", 0, nil)
	if st != 0 || len(mask) != 4 {
		t.Fatalf("CAPS = status %d, %d bytes", st, len(mask))
	}
	if binary.BigEndian.Uint32(mask)&(1<<3) == 0 {
		t.Error("v2 server does not advertise the mux capability")
	}
	if st, _ := v1Exchange(t, conn, 2, "seg", 3, nil); st != 0 {
		t.Error("v1 exchange after CAPS failed: connection was upgraded implicitly")
	}
}

// TestMixedVersionClientsShareMuxServer: a pinned-to-v1 client
// (DisableMux) and a v2 client work the same server concurrently;
// each stays on its own transport version and both round-trip.
func TestMixedVersionClientsShareMuxServer(t *testing.T) {
	addr := startV2Server(t)
	regOld := obs.NewRegistry()
	oldClient, err := transport.Dial(addr, transport.ClientOptions{DisableMux: true, Obs: regOld})
	if err != nil {
		t.Fatal(err)
	}
	defer oldClient.Close()
	regNew := obs.NewRegistry()
	newClient, err := transport.Dial(addr, transport.ClientOptions{Obs: regNew})
	if err != nil {
		t.Fatal(err)
	}
	defer newClient.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for name, client := range map[string]*transport.Client{"old": oldClient, "new": newClient} {
		wg.Add(1)
		go func(name string, c *transport.Client) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				seg := fmt.Sprintf("%s-%d", name, i)
				data := bytes.Repeat([]byte(name), 1000+i)
				if err := c.Put(ctx, seg, i, data); err != nil {
					errs <- fmt.Errorf("%s put %d: %w", name, i, err)
					return
				}
				got, err := c.Get(ctx, seg, i)
				if err != nil || !bytes.Equal(got, data) {
					errs <- fmt.Errorf("%s get %d: %q, %v", name, i, got, err)
					return
				}
			}
			// Force a CAPS probe on both so the mux decision is made.
			if _, errs := c.GetBatch(ctx, name+"-0", []int{0}); len(errs) != 1 {
				t.Error("GetBatch shape")
			}
			if _, err := c.Get(ctx, name+"-0", 0); err != nil {
				errs <- fmt.Errorf("%s get after caps: %w", name, err)
			}
		}(name, client)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if n := counters(regOld)["transport_client_mux_dials_total"]; n != 0 {
		t.Errorf("DisableMux client made %d mux dials, want 0", n)
	}
	if n := counters(regNew)["transport_client_mux_dials_total"]; n < 1 {
		t.Errorf("v2 client made %d mux dials, want >= 1", n)
	}
}

// TestDisableMuxPinsClientToV1: the explicit escape hatch — a client
// with DisableMux set never upgrades and its streaming path reports
// ErrMuxUnavailable even though the server advertises mux.
func TestDisableMuxPinsClientToV1(t *testing.T) {
	addr := startV2Server(t)
	reg := obs.NewRegistry()
	client, err := transport.Dial(addr, transport.ClientOptions{DisableMux: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	if err := client.Put(ctx, "seg", 0, []byte("pinned")); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	err = client.GetStream(ctx, "seg", []int{0}, func(int, []byte, error) { delivered++ })
	if !errors.Is(err, transport.ErrMuxUnavailable) || delivered != 0 {
		t.Fatalf("GetStream with DisableMux = %v (%d delivered), want ErrMuxUnavailable and 0", err, delivered)
	}
	if got, err := client.Get(ctx, "seg", 0); err != nil || !bytes.Equal(got, []byte("pinned")) {
		t.Fatalf("v1 round trip = %q, %v", got, err)
	}
	snap := counters(reg)
	if snap["transport_client_mux_dials_total"] != 0 {
		t.Errorf("mux dials = %d with DisableMux, want 0", snap["transport_client_mux_dials_total"])
	}
}
