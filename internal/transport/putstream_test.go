package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/blockstore"
)

// buildPutEntries encodes entries exactly as the client's PUTSTREAM
// writer does: [4B index][4B length][data] per entry.
func buildPutEntries(entries [][]byte) []byte {
	var wire []byte
	for i, e := range entries {
		wire = appendPutEntryHeader(wire, i, len(e))
		wire = append(wire, e...)
	}
	return wire
}

// TestQuickPutStreamEntryRoundTrip feeds randomly-chunked entry bytes
// through muxPutStream and checks the consumer sees every entry, in
// order, with the exact credit accounting the flow-control grants
// depend on.
func TestQuickPutStreamEntryRoundTrip(t *testing.T) {
	f := func(raw [][]byte, seed int64) bool {
		if len(raw) > 8 {
			raw = raw[:8]
		}
		entries := make([][]byte, len(raw))
		for i, e := range raw {
			if len(e) > 1024 {
				e = e[:1024]
			}
			entries[i] = e
		}
		wire := buildPutEntries(entries)
		ps := newMuxPutStream("seg", len(entries))
		rng := rand.New(rand.NewSource(seed))
		go func() {
			rest := wire
			for len(rest) > 0 {
				n := 1 + rng.Intn(len(rest))
				if err := ps.feed(rest[:n], n == len(rest)); err != nil {
					return
				}
				rest = rest[n:]
			}
			if len(wire) == 0 {
				ps.feed(nil, true)
			}
		}()
		var buf []byte
		totalConsumed := 0
		for i := range entries {
			idx, data, consumed, err := ps.next(buf)
			if err != nil || idx != i || !bytes.Equal(data, entries[i]) {
				return false
			}
			if consumed != putBatchEntryOverhead+len(entries[i]) {
				return false
			}
			totalConsumed += consumed
			buf = data
		}
		if _, _, _, err := ps.next(buf); err != io.EOF {
			return false
		}
		return totalConsumed == len(wire)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPutStreamTruncatedEntryFailsClean: FIN landing mid-entry (in
// the header and in the data) must surface an error, not EOF and not
// a hang.
func TestPutStreamTruncatedEntryFailsClean(t *testing.T) {
	wire := buildPutEntries([][]byte{bytes.Repeat([]byte{7}, 64)})
	for _, cut := range []int{3, putBatchEntryOverhead + 10} {
		ps := newMuxPutStream("seg", 1)
		if err := ps.feed(wire[:cut], true); err != nil {
			t.Fatalf("cut=%d: feed: %v", cut, err)
		}
		_, _, _, err := ps.next(nil)
		if err == nil || err == io.EOF {
			t.Fatalf("cut=%d: truncated stream yielded err=%v", cut, err)
		}
		if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("cut=%d: err %q does not say truncated", cut, err)
		}
	}
}

// TestPutStreamOversizedEntryRejected: an entry header claiming more
// than MaxFrame bytes is a protocol violation, caught before any
// buffering happens.
func TestPutStreamOversizedEntryRejected(t *testing.T) {
	var hdr [putBatchEntryOverhead]byte
	binary.BigEndian.PutUint32(hdr[0:4], 0)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(MaxFrame+1))
	ps := newMuxPutStream("seg", 1)
	if err := ps.feed(hdr[:], false); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ps.next(nil); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("oversized entry yielded err=%v", err)
	}
}

// TestPutStreamFeedOverflow: a peer that streams past its credit gets
// stopped by the MaxFrame backstop instead of growing the buffer.
func TestPutStreamFeedOverflow(t *testing.T) {
	ps := newMuxPutStream("seg", 1)
	big := make([]byte, MaxFrame)
	if err := ps.feed(big, false); err != nil {
		t.Fatalf("first feed within bound failed: %v", err)
	}
	if err := ps.feed([]byte{1}, false); err == nil {
		t.Fatal("feed past MaxFrame accepted")
	}
	if _, _, _, err := ps.next(nil); err == nil {
		t.Fatal("consumer not told about the overflow")
	}
}

// TestPutStreamFailWakesBlockedConsumer: a reset while the consumer
// waits for bytes must wake it with the terminal error — the
// mid-chunk RESET path.
func TestPutStreamFailWakesBlockedConsumer(t *testing.T) {
	ps := newMuxPutStream("seg", 2)
	// Half an entry: the consumer blocks waiting for the rest.
	wire := buildPutEntries([][]byte{bytes.Repeat([]byte{3}, 32)})
	if err := ps.feed(wire[:putBatchEntryOverhead+5], false); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := ps.next(nil)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	want := errors.New("stream reset by peer")
	ps.fail(want)
	select {
	case err := <-errc:
		if !errors.Is(err, want) {
			t.Fatalf("consumer woke with %v, want %v", err, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer still blocked after fail")
	}
}

// gatePutStore parks every Put until the gate closes, keeping a
// PUTSTREAM stream alive at a deterministic point.
type gatePutStore struct {
	blockstore.Store
	gate chan struct{}
}

func (s *gatePutStore) Put(ctx context.Context, segment string, index int, data []byte) error {
	<-s.gate
	return s.Store.Put(ctx, segment, index, data)
}

// startRawPutStreamServer launches a mux server over the given store
// and returns a raw peer speaking frames at it.
func startRawPutStreamServer(t *testing.T, store blockstore.Store) *rawMuxPeer {
	t.Helper()
	srv := NewServer(store, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return dialRawMux(t, ln.Addr().String())
}

// sendPutStreamReq writes one REQ frame carrying the PUTSTREAM header
// (declared entries) plus whatever entry bytes follow, FIN-controlled.
func (p *rawMuxPeer) sendPutStreamReq(id uint32, segment string, declared int, entryBytes []byte, fin bool) {
	p.t.Helper()
	body, err := encodeRequest(opPutStream, segment, declared, nil)
	if err != nil {
		p.t.Fatal(err)
	}
	body = append(body, entryBytes...)
	flags := byte(0)
	if fin {
		flags = muxFlagFIN
	}
	w := &lockedWriter{w: p.conn}
	if err := writeMuxFrame(w, muxKindReq, id, []byte{flags}, body); err != nil {
		p.t.Fatal(err)
	}
}

// awaitKind reads frames for the stream until one of the wanted kind
// arrives, skipping flow-control WINDOW grants; the read deadline
// bounds the wait.
func (p *rawMuxPeer) awaitKind(id uint32, kind byte) muxFrame {
	p.t.Helper()
	for {
		f := p.readFrameFor(id)
		if f.kind == kind {
			return f
		}
		if f.kind != muxKindWindow {
			p.t.Fatalf("stream %d: got kind %d, want %d", id, f.kind, kind)
		}
	}
}

// TestPutStreamDuplicateStreamIDResets: reusing a PUTSTREAM stream's
// id after its request half finished is a per-stream violation — that
// stream RESETs, the connection keeps serving.
func TestPutStreamDuplicateStreamIDResets(t *testing.T) {
	mem := blockstore.NewMemStore()
	gate := make(chan struct{})
	defer close(gate)
	if err := mem.Put(context.Background(), "fast", 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	peer := startRawPutStreamServer(t, &gatePutStore{Store: mem, gate: gate})

	// Stream 5: a complete one-entry PUTSTREAM whose store Put parks,
	// keeping the id occupied with its request half done.
	entry := buildPutEntries([][]byte{[]byte("blockdata")})
	peer.sendPutStreamReq(5, "slow", 1, entry, true)
	peer.sendReq(5, opPing, "-", 0, nil)
	f := peer.awaitKind(5, muxKindReset)
	if !strings.Contains(string(f.chunk), "duplicate") {
		t.Fatalf("reset reason %q does not mention duplicate id", f.chunk)
	}

	// The connection is still healthy.
	peer.sendReq(8, opGet, "fast", 0, nil)
	if f := peer.awaitKind(8, muxKindResp); f.status != statusOK {
		t.Fatalf("stream 8 status = %d after duplicate reset", f.status)
	}
}

// TestPutStreamTruncatedWireResets: FIN mid-entry on the wire RESETs
// the stream with the truncation reason.
func TestPutStreamTruncatedWireResets(t *testing.T) {
	peer := startRawPutStreamServer(t, blockstore.NewMemStore())
	entry := buildPutEntries([][]byte{bytes.Repeat([]byte{9}, 128)})
	peer.sendPutStreamReq(3, "seg", 1, entry[:putBatchEntryOverhead+30], true)
	f := peer.awaitKind(3, muxKindReset)
	if !strings.Contains(string(f.chunk), "truncated") {
		t.Fatalf("reset reason %q does not mention truncation", f.chunk)
	}
}

// TestPutStreamExcessEntriesReset: more entries than the header
// declared is a protocol violation.
func TestPutStreamExcessEntriesReset(t *testing.T) {
	peer := startRawPutStreamServer(t, blockstore.NewMemStore())
	two := buildPutEntries([][]byte{[]byte("one"), []byte("two")})
	peer.sendPutStreamReq(4, "seg", 1, two, true)
	// The declared entry is acked (RESP) before the excess one trips
	// the check, so skip acks while waiting for the RESET.
	for {
		f := peer.readFrameFor(4)
		if f.kind == muxKindWindow || f.kind == muxKindResp {
			continue
		}
		if f.kind != muxKindReset {
			t.Fatalf("stream 4: got kind %d, want RESET", f.kind)
		}
		if !strings.Contains(string(f.chunk), "exceed") {
			t.Fatalf("reset reason %q does not mention the declared count", f.chunk)
		}
		break
	}
}

// TestPutStreamMidChunkReset: the client abandons a PUTSTREAM halfway
// through an entry. The entries acked before the reset are durable,
// nothing after it lands, and the connection survives.
func TestPutStreamMidChunkReset(t *testing.T) {
	mem := blockstore.NewMemStore()
	if err := mem.Put(context.Background(), "fast", 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	peer := startRawPutStreamServer(t, mem)

	wire := buildPutEntries([][]byte{[]byte("first-entry"), bytes.Repeat([]byte{5}, 64)})
	firstLen := putBatchEntryOverhead + len("first-entry")
	// Entry 0 complete, entry 1 cut mid-data, no FIN.
	peer.sendPutStreamReq(6, "seg", 2, wire[:firstLen+putBatchEntryOverhead+10], false)
	// Entry 0's ack arrives while the stream is still open.
	ack := peer.awaitKind(6, muxKindResp)
	if len(ack.chunk) < batchResultOverhead || ack.chunk[4] != statusOK {
		t.Fatalf("entry 0 ack malformed or failed: %v", ack.chunk)
	}
	// Abandon mid-entry.
	w := &lockedWriter{w: peer.conn}
	if err := writeMuxFrame(w, muxKindReset, 6, nil, []byte("client gave up")); err != nil {
		t.Fatal(err)
	}

	// The connection still serves new streams, and only entry 0 landed.
	peer.sendReq(9, opGet, "fast", 0, nil)
	if f := peer.awaitKind(9, muxKindResp); f.status != statusOK {
		t.Fatalf("stream 9 status = %d after mid-chunk reset", f.status)
	}
	idx, err := mem.List(context.Background(), "seg")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("stored indices after reset = %v, want [0]", idx)
	}
}

// TestPutStreamNegativeCreditKillsConnection: a WINDOW frame with the
// sign bit set fails frame decoding, which is connection-fatal.
func TestPutStreamNegativeCreditKillsConnection(t *testing.T) {
	peer := startRawPutStreamServer(t, blockstore.NewMemStore())
	if err := writeFrame(peer.conn, []byte{muxKindWindow, 0, 0, 0, 6, 0x80, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	peer.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(peer.conn); err == nil {
		t.Fatal("connection survived a negative credit grant")
	}
}
