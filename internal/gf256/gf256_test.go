package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulIdentity(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%d,1) = %d", a, got)
		}
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("Mul(%d,0) = %d", a, got)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := a; b < 256; b++ {
			if Mul(byte(a), byte(b)) != Mul(byte(b), byte(a)) {
				t.Fatalf("Mul not commutative at %d,%d", a, b)
			}
		}
	}
}

// slowMul is carry-less multiply reduced mod Poly — the definitional
// reference implementation.
func slowMul(a, b byte) byte {
	var p uint16
	aa, bb := uint16(a), uint16(b)
	for i := 0; i < 8; i++ {
		if bb&1 != 0 {
			p ^= aa
		}
		bb >>= 1
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= Poly
		}
	}
	return byte(p)
}

func TestMulAgainstReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := slowMul(byte(a), byte(b))
			if got := Mul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestDivInvertsMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			p := Mul(byte(a), byte(b))
			if got := Div(p, byte(b)); got != byte(a) {
				t.Fatalf("Div(Mul(%d,%d),%d) = %d", a, b, b, got)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a*Inv(a) = %d for a=%d", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(3, 0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Exp(Log(byte(a))); got != byte(a) {
			t.Fatalf("Exp(Log(%d)) = %d", a, got)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	// 2 must generate the full multiplicative group: 2^255 = 1 and no
	// smaller positive power is 1.
	seen := make(map[byte]bool)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255 (repeat at step %d)", i)
		}
		seen[x] = true
		x = Mul(x, 2)
	}
	if x != 1 {
		t.Fatalf("2^255 = %d, want 1", x)
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		want := byte(1)
		for n := 0; n < 10; n++ {
			if got := Pow(byte(a), n); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, want)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestQuickDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, b^c) == Mul(a, b)^Mul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 255, 77}
	dst := make([]byte, len(src))
	MulSlice(3, src, dst)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Fatalf("MulSlice[%d] = %d, want %d", i, dst[i], Mul(3, src[i]))
		}
	}
	// c=0 zeroes, c=1 copies.
	MulSlice(0, src, dst)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatal("MulSlice(0) did not zero")
		}
	}
	MulSlice(1, src, dst)
	if !bytes.Equal(dst, src) {
		t.Fatal("MulSlice(1) did not copy")
	}
}

func TestMulSliceInPlace(t *testing.T) {
	s := []byte{5, 9, 100}
	want := make([]byte, 3)
	MulSlice(7, s, want)
	MulSlice(7, s, s)
	if !bytes.Equal(s, want) {
		t.Fatal("in-place MulSlice differs")
	}
}

func TestAddMulSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 100)
	dst := make([]byte, 100)
	rng.Read(src)
	rng.Read(dst)
	orig := append([]byte(nil), dst...)
	AddMulSlice(9, src, dst)
	for i := range dst {
		if dst[i] != orig[i]^Mul(9, src[i]) {
			t.Fatalf("AddMulSlice wrong at %d", i)
		}
	}
	// c=0 is a no-op.
	cp := append([]byte(nil), dst...)
	AddMulSlice(0, src, dst)
	if !bytes.Equal(cp, dst) {
		t.Fatal("AddMulSlice(0) modified dst")
	}
}

func TestXorSlice(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := make([]byte, n)
		b := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		want := make([]byte, n)
		for i := range want {
			want[i] = a[i] ^ b[i]
		}
		got := append([]byte(nil), b...)
		XorSlice(a, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("XorSlice wrong for n=%d", n)
		}
	}
}

func TestXorSliceSelfZeroes(t *testing.T) {
	a := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	XorSlice(a, a)
	for _, v := range a {
		if v != 0 {
			t.Fatal("x^x != 0")
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"AddMulSlice": func() { AddMulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"XorSlice":    func() { XorSlice(make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s length mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkXorSlice1MB(b *testing.B) {
	src := make([]byte, 1<<20)
	dst := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorSlice(src, dst)
	}
}

func BenchmarkAddMulSlice1MB(b *testing.B) {
	src := make([]byte, 1<<20)
	dst := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMulSlice(7, src, dst)
	}
}
