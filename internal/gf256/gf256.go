// Package gf256 implements arithmetic over the Galois field GF(2^8)
// with the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the
// field conventionally used by Reed-Solomon storage codes.
//
// Addition is XOR. Multiplication and division use log/antilog tables
// built at init time from the generator element 2. The package also
// provides slice kernels (MulSlice, AddMulSlice) used by the
// Reed-Solomon encoder so matrix-vector products run at memory speed.
package gf256

// Poly is the primitive polynomial defining the field (without the
// leading x^8 term bit in the table construction loop below).
const Poly = 0x11D

var (
	expTable [512]byte // exp[i] = 2^i, doubled so Mul can skip a mod
	logTable [256]byte // log[exp[i]] = i; log[0] unused
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a + b in GF(2^8) (which equals a - b).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). Division by zero panics.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. Inverse of zero panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns 2^n for n >= 0 (the generator raised to the n-th power).
func Exp(n int) byte { return expTable[n%255] }

// Log returns log2(a) in the field; Log(0) panics.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^n in GF(2^8) for n >= 0 (0^0 = 1 by convention).
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*n)%255]
}

// mulTableRow returns the 256-entry multiplication row for coefficient
// c, lazily cached; row[x] = c*x.
var mulRows [256]*[256]byte

func rowFor(c byte) *[256]byte {
	if r := mulRows[c]; r != nil {
		return r
	}
	var r [256]byte
	for x := 1; x < 256; x++ {
		r[x] = Mul(c, byte(x))
	}
	mulRows[c] = &r
	return &r
}

// MulSlice sets dst[i] = c * src[i]. dst and src must have equal
// length; dst may alias src.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := rowFor(c)
	for i, s := range src {
		dst[i] = row[s]
	}
}

// AddMulSlice sets dst[i] ^= c * src[i] — the fused multiply-accumulate
// at the heart of Reed-Solomon encoding. dst and src must have equal
// length and must not alias unless identical.
func AddMulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: AddMulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(src, dst)
		return
	}
	row := rowFor(c)
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// XorSlice sets dst[i] ^= src[i], processing 8 bytes at a time via
// uint64 words. This is the kernel used by LT coding as well; it lives
// here so both codes share one optimized implementation.
func XorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: XorSlice length mismatch")
	}
	n := len(dst)
	i := 0
	// Word-at-a-time main loop. Go's compiler lowers these explicit
	// little-endian load/stores to single MOVs on amd64/arm64.
	for ; i+8 <= n; i += 8 {
		d := le64(dst[i:])
		s := le64(src[i:])
		putLE64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
