package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxCancel enforces the cancellation discipline of the client/server
// packages: a loop that performs I/O while a context.Context is in
// scope must observe that context every iteration — either a
// ctx.Err() test or a select on ctx.Done(). A loop that only
// delegates ctx to its callees can still spin for a full iteration's
// worth of I/O after cancellation (a MemStore Put never looks at
// ctx), which is exactly the stall class PR 4 fixed by hand across
// the stores. Here the convention becomes machine-checked.
//
// A loop "performs I/O" when its body (nested function literals
// excluded — they are analyzed as their own scopes) contains a call
// that takes a context.Context argument, or a Read/Write-family
// method call on a net/io/bufio/os value. Loops with no context in
// scope are exempt: there is nothing to check.
var CtxCancel = &Analyzer{
	Name: "ctxcancel",
	Doc:  "I/O loops in ctx-disciplined packages must check ctx.Err() or select on ctx.Done()",
	Run:  runCtxCancel,
}

// ctxPackages are the packages whose I/O loops must observe
// cancellation: the wire protocol, the stores, the robust data path,
// and the metadata plane.
var ctxPackages = []string{
	"internal/transport",
	"internal/blockstore",
	"internal/robust",
	"internal/metadata",
}

// IsCtxPackage reports whether the import path is one of the
// cancellation-disciplined packages.
func IsCtxPackage(path string) bool {
	for _, p := range ctxPackages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// ioMethodNames are method names that denote blocking I/O when the
// receiver is a net/io/bufio/os value (a raw conn or file looped on
// without a ctx-taking wrapper).
var ioMethodNames = map[string]bool{
	"Read": true, "ReadFull": true, "ReadAt": true, "ReadFrom": true,
	"Write": true, "WriteAt": true, "WriteTo": true,
	"Accept": true, "Dial": true, "Flush": true, "Sync": true,
}

// ioReceiverPkgs are the packages whose values make an ioMethodNames
// call count as I/O.
var ioReceiverPkgs = map[string]bool{
	"net": true, "io": true, "bufio": true, "os": true, "crypto/tls": true,
}

func runCtxCancel(p *Package) []Finding {
	if !IsCtxPackage(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var cond ast.Expr
			switch n := n.(type) {
			case *ast.ForStmt:
				body, cond = n.Body, n.Cond
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			if !loopDoesIO(p, body) {
				return true
			}
			if loopChecksCtx(p, body, cond) {
				return true
			}
			if !ctxInScope(p, f, n) {
				return true
			}
			out = append(out, p.finding(ctxCancelName, n.Pos(),
				"loop performs I/O without observing cancellation: check ctx.Err() or select on ctx.Done() each iteration"))
			return true
		})
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isCtxIdent reports whether e is an identifier of type
// context.Context.
func isCtxIdent(p *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	t := p.TypeOf(id)
	return t != nil && isContextType(t)
}

// inspectShallow walks n but does not descend into function literals:
// their bodies belong to a different execution scope.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// loopDoesIO reports whether the loop body performs I/O directly: a
// call passing a context, or a blocking method on a net/io value.
func loopDoesIO(p *Package, body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if isCtxIdent(p, arg) {
				found = true
				return false
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !ioMethodNames[sel.Sel.Name] {
			return true
		}
		// io.ReadFull(r, buf): a package-level I/O helper.
		if path, _, ok := p.PkgFunc(sel); ok {
			if ioReceiverPkgs[path] {
				found = true
			}
			return !found
		}
		if t := p.TypeOf(sel.X); t != nil && isIOValue(t) {
			found = true
		}
		return !found
	})
	return found
}

// isIOValue reports whether t is declared in one of the I/O packages
// (after pointer deref).
func isIOValue(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && ioReceiverPkgs[obj.Pkg().Path()]
}

// loopChecksCtx reports whether the loop observes a context: an
// x.Err() call or an <-x.Done() receive (plain or in a select) in the
// body or the loop condition, for any x of type context.Context.
func loopChecksCtx(p *Package, body *ast.BlockStmt, cond ast.Expr) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if isCtxIdent(p, sel.X) || isContextResult(p, sel.X) {
			found = true
			return false
		}
		return true
	}
	inspectShallow(body, check)
	if cond != nil && !found {
		inspectShallow(cond, check)
	}
	return found
}

// isContextResult reports whether e is itself typed context.Context
// (e.g. c.ctx, req.Context()).
func isContextResult(p *Package, e ast.Expr) bool {
	t := p.TypeOf(e)
	return t != nil && isContextType(t)
}

// ctxInScope reports whether a context.Context identifier is visible
// to the loop: any ident of that type referenced inside the innermost
// enclosing function (literal or declaration) that contains the loop.
func ctxInScope(p *Package, f *ast.File, loop ast.Node) bool {
	var encl ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || loop.Pos() < n.Pos() || n.End() < loop.End() {
			return false
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			encl = n // innermost wins: keep descending
		}
		return true
	})
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && isCtxIdent(p, id) {
			found = true
		}
		return true
	})
	return found
}
