package lint

import (
	"go/ast"
)

// SimDeterminism forbids wall-clock reads and the global math/rand
// source inside the deterministic-simulation packages. The simulation
// kernel replays bit-identically from a seed: every random draw must
// come from an injected *rand.Rand and every timestamp from the
// kernel's virtual clock. time.Now/time.Since and the package-level
// rand functions (rand.Intn, rand.Float64, ...) silently break that
// contract — results stop being reproducible and seed-addressable.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid time.Now/time.Since and global math/rand in deterministic sim packages",
	Run:  runSimDeterminism,
}

// forbiddenTimeFuncs read the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// forbiddenRandFuncs are the package-level math/rand functions backed
// by the shared global source. Constructors (New, NewSource, NewZipf)
// and types (Rand, Source) are allowed — they are how the injected
// RNG is built.
var forbiddenRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

func runSimDeterminism(p *Package) []Finding {
	if !IsSimPackage(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := p.PkgFunc(sel)
			if !ok {
				return true
			}
			switch {
			case path == "time" && forbiddenTimeFuncs[name]:
				out = append(out, p.finding(simDeterminismName, sel.Pos(),
					"time.%s reads the wall clock: deterministic sim packages must use the kernel's virtual clock", name))
			case path == "math/rand" && forbiddenRandFuncs[name]:
				out = append(out, p.finding(simDeterminismName, sel.Pos(),
					"rand.%s draws from the global math/rand source: pass the injected *rand.Rand instead", name))
			}
			return true
		})
	}
	return out
}
