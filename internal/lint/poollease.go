package lint

import (
	"go/ast"
	"go/types"
)

// PoolLease enforces the sync.Pool discipline of the zero-allocation
// hot paths (DESIGN.md §10): every Get is matched by a Put that runs
// on all exit paths, and a leased buffer never escapes the function
// that leased it — not via a return statement and not by being stored
// into a struct field. A silently-dropped lease degrades the pool; a
// leaked lease that escapes is worse: the next Get hands the same
// backing array to a second owner and shares corrupt in place.
//
// The project routes leases through helper pairs (getShareBuf /
// putShareBuf, getScratch / putScratch). The analyzer recognizes the
// pattern structurally — a top-level function that returns a pool.Get
// result is a lease helper, one that Puts a parameter back is its
// release helper — and enforces the same rules at their call sites
// instead of flagging the helpers themselves.
//
// Release placement is strict: the Put (or release-helper call) must
// be deferred — directly, or inside a deferred closure — unless the
// Get..Put span contains no other calls and no returns. A
// mid-function Put with calls in between leaks the lease on every
// panic path and on any early return a later edit introduces; the
// project's answer is defer, registered next to the Get.
var PoolLease = &Analyzer{
	Name: "poollease",
	Doc:  "sync.Pool Get must have a deferred (or trivially adjacent) Put and leases must not escape",
	Run:  runPoolLease,
}

// poolHelper describes the lease/release helpers found in a package,
// keyed by the *types.Func object of the helper.
type poolHelpers struct {
	leasers   map[types.Object]bool
	releasers map[types.Object]bool
}

func runPoolLease(p *Package) []Finding {
	helpers := findPoolHelpers(p)
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil || helpers.isHelper(p, n.Name) {
					return true
				}
				out = append(out, checkLeaseScope(p, helpers, n.Body)...)
			case *ast.FuncLit:
				out = append(out, checkLeaseScope(p, helpers, n.Body)...)
			}
			return true
		})
	}
	return out
}

func (h poolHelpers) isHelper(p *Package, name *ast.Ident) bool {
	obj := p.Info.Defs[name]
	return obj != nil && (h.leasers[obj] || h.releasers[obj])
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// poolCall returns the kind ("Get"/"Put") when call is a method call
// on a sync.Pool value.
func poolCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Get" && sel.Sel.Name != "Put" {
		return "", false
	}
	if t := p.TypeOf(sel.X); t != nil && isSyncPool(t) {
		return sel.Sel.Name, true
	}
	return "", false
}

// findPoolHelpers scans top-level functions for the sanctioned
// lease/release helper pattern.
func findPoolHelpers(p *Package) poolHelpers {
	h := poolHelpers{leasers: map[types.Object]bool{}, releasers: map[types.Object]bool{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			gets, puts := 0, 0
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if kind, ok := poolCall(p, call); ok {
						if kind == "Get" {
							gets++
						} else {
							puts++
						}
					}
				}
				return true
			})
			obj := p.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			results := fd.Type.Results != nil && len(fd.Type.Results.List) > 0
			params := fd.Type.Params != nil && len(fd.Type.Params.List) > 0
			switch {
			case gets > 0 && puts == 0 && results && returnsLease(p, fd):
				h.leasers[obj] = true
			case puts > 0 && gets == 0 && params:
				h.releasers[obj] = true
			}
		}
	}
	return h
}

// returnsLease reports whether fd returns a pool.Get result — the
// defining trait of a lease helper. A function that Gets internally
// and returns something unrelated is not handing out a lease; it is
// an ordinary scope and must balance its Get like any other.
func returnsLease(p *Package, fd *ast.FuncDecl) bool {
	leaseVars := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call := leaseExprCall(rhs)
			if call == nil {
				continue
			}
			if kind, ok := poolCall(p, call); !ok || kind != "Get" {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					leaseVars[obj] = true
				} else if obj := p.Info.Uses[id]; obj != nil {
					leaseVars[obj] = true
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if call := leaseExprCall(res); call != nil {
				if kind, ok := poolCall(p, call); ok && kind == "Get" {
					found = true
					return false
				}
			}
			if id, ok := res.(*ast.Ident); ok && p.Info.Uses[id] != nil && leaseVars[p.Info.Uses[id]] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// lease is one Get (or lease-helper call) site within a scope.
type lease struct {
	call *ast.CallExpr
	v    types.Object // variable the lease was assigned to, if any
}

// checkLeaseScope enforces the lease rules inside one function body,
// treating nested function literals as separate scopes except for
// deferred closures, whose release calls belong to this scope.
func checkLeaseScope(p *Package, helpers poolHelpers, body *ast.BlockStmt) []Finding {
	var leases []lease
	var releases []*ast.CallExpr
	deferredRelease := false

	isLeaseCall := func(call *ast.CallExpr) bool {
		if kind, ok := poolCall(p, call); ok {
			return kind == "Get"
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			return helpers.leasers[p.Info.Uses[id]]
		}
		return false
	}
	isReleaseCall := func(call *ast.CallExpr) bool {
		if kind, ok := poolCall(p, call); ok {
			return kind == "Put"
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			return helpers.releasers[p.Info.Uses[id]]
		}
		return false
	}
	// recordReleases collects release calls anywhere under n,
	// including nested closures (a deferred closure runs whatever
	// releases it contains).
	var recordReleases func(n ast.Node, deferred bool)
	recordReleases = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isReleaseCall(call) {
				releases = append(releases, call)
				if deferred {
					deferredRelease = true
				}
			}
			return true
		})
	}

	recorded := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope (deferred closures handled below)
		case *ast.DeferStmt:
			if isReleaseCall(n.Call) {
				releases = append(releases, n.Call)
				deferredRelease = true
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				recordReleases(lit.Body, true)
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call := leaseExprCall(rhs)
				if call == nil || !isLeaseCall(call) {
					continue
				}
				l := lease{call: call}
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := p.Info.Defs[id]; obj != nil {
							l.v = obj
						} else if obj := p.Info.Uses[id]; obj != nil {
							l.v = obj
						}
					}
				}
				recorded[call] = true
				leases = append(leases, l)
			}
		case *ast.CallExpr:
			switch {
			case isReleaseCall(n):
				releases = append(releases, n)
			case isLeaseCall(n) && !recorded[n]:
				// A lease used inside a larger expression (e.g.
				// append(bufs, getShareBuf(n))) still needs a release.
				recorded[n] = true
				leases = append(leases, lease{call: n})
			}
		}
		return true
	})
	if len(leases) == 0 {
		return nil
	}

	var out []Finding
	balanced := true
	for _, l := range leases {
		if esc := leaseEscapes(p, body, l); esc != nil {
			out = append(out, *esc)
			balanced = false
		}
	}
	if !balanced {
		return out
	}
	if len(releases) == 0 {
		out = append(out, p.finding(poolLeaseName, leases[0].call.Pos(),
			"pool Get has no matching Put in this function: release the lease (defer the Put) or use the release helper"))
		return out
	}
	if deferredRelease {
		return out
	}
	// No deferred release: only the trivial adjacent Get..Put span is
	// allowed — no returns and no other calls in between.
	first, last := leases[0].call.Pos(), releases[0].Pos()
	for _, r := range releases {
		if r.Pos() > last {
			last = r.Pos()
		}
	}
	violation := ""
	inspectShallow(body, func(n ast.Node) bool {
		if violation != "" || n == nil || n.End() <= first || n.Pos() >= last {
			return true
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			violation = "a return between Get and Put leaks the lease: defer the Put next to the Get"
		case *ast.CallExpr:
			if isLeaseCall(n) || isReleaseCall(n) || isTrivialCall(p, n) {
				return true
			}
			violation = "lease is held across calls without a deferred Put: a panic or early return leaks it — defer the Put next to the Get"
		}
		return true
	})
	if violation != "" {
		out = append(out, p.finding(poolLeaseName, leases[0].call.Pos(), "%s", violation))
	}
	return out
}

// leaseExprCall unwraps `pool.Get().(*T)` / `helper(n)` expressions
// to the underlying call.
func leaseExprCall(e ast.Expr) *ast.CallExpr {
	switch e := e.(type) {
	case *ast.CallExpr:
		return e
	case *ast.TypeAssertExpr:
		if call, ok := e.X.(*ast.CallExpr); ok {
			return call
		}
	}
	return nil
}

// isTrivialCall reports whether the call cannot plausibly panic or
// divert control: builtins (len, cap, append) and conversions.
func isTrivialCall(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	switch p.Info.Uses[id].(type) {
	case *types.Builtin, *types.TypeName:
		return true
	}
	return false
}

// leaseEscapes reports whether the leased value is returned or stored
// into a struct field inside this scope.
func leaseEscapes(p *Package, body *ast.BlockStmt, l lease) *Finding {
	var out *Finding
	inspectShallow(body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if exprIsLease(p, res, l) {
					f := p.finding(poolLeaseName, n.Pos(),
						"leased pool value escapes via return: the lease must be released in the function that took it")
					out = &f
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if _, isPkg := p.Info.Uses[selRootIdent(sel)].(*types.PkgName); isPkg {
					continue
				}
				if i < len(n.Rhs) && exprIsLease(p, n.Rhs[i], l) ||
					len(n.Rhs) == 1 && exprIsLease(p, n.Rhs[0], l) {
					f := p.finding(poolLeaseName, n.Pos(),
						"leased pool value stored into a field outlives the lease: a later Get hands the same buffer to a second owner")
					out = &f
					return false
				}
			}
		}
		return true
	})
	return out
}

// exprIsLease reports whether e is the lease's variable or its call
// expression itself.
func exprIsLease(p *Package, e ast.Expr, l lease) bool {
	if call := leaseExprCall(e); call == l.call {
		return true
	}
	if id, ok := e.(*ast.Ident); ok && l.v != nil {
		return p.Info.Uses[id] == l.v
	}
	return false
}

// selRootIdent returns the leftmost identifier of a selector chain.
func selRootIdent(sel *ast.SelectorExpr) *ast.Ident {
	switch x := sel.X.(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return selRootIdent(x)
	}
	return &ast.Ident{}
}
