package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Parallel tree loading. Type-checking a package against the
// source-form standard library dominates a lint run, so the tree is
// sharded across workers, each with its own Loader (a Loader's
// FileSet and importer caches are not safe to share). The stdlib
// packages a shard needs are imported once per worker and amortized
// across its packages.

// LoadOptions configures LoadTree.
type LoadOptions struct {
	// Tests also loads the _test.go files of every directory as
	// separate packages (marked Test), grouped by package clause so
	// external _test packages check independently.
	Tests bool
	// Workers caps the loader goroutines; <= 0 means GOMAXPROCS.
	Workers int
}

// LoadedPackage is one loaded package plus its provenance.
type LoadedPackage struct {
	Pkg  *Package
	Test bool // built from _test.go files
}

// ImportPath derives a package's import path from its directory.
func ImportPath(modRoot, modPath, dir string) string {
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// LoadTree loads every directory in dirs (as returned by PackageDirs)
// in parallel and returns the packages in deterministic dir order,
// library package first within a dir. Load errors abort with the
// first failing directory named.
func LoadTree(modRoot, modPath string, dirs []string, opts LoadOptions) ([]LoadedPackage, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers < 1 {
		workers = 1
	}
	type slot struct {
		pkgs []LoadedPackage
		err  error
	}
	results := make([]slot, len(dirs))
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			loader := NewLoader()
			for {
				i := take()
				if i >= len(dirs) {
					return
				}
				dir := dirs[i]
				path := ImportPath(modRoot, modPath, dir)
				pkg, err := loader.LoadDir(dir, path)
				if err != nil {
					results[i].err = fmt.Errorf("%s: %w", dir, err)
					continue
				}
				if pkg != nil {
					results[i].pkgs = append(results[i].pkgs, LoadedPackage{Pkg: pkg})
				}
				if !opts.Tests {
					continue
				}
				tpkgs, err := loader.LoadDirTests(dir, path)
				if err != nil {
					results[i].err = fmt.Errorf("%s: %w", dir, err)
					continue
				}
				for _, tp := range tpkgs {
					results[i].pkgs = append(results[i].pkgs, LoadedPackage{Pkg: tp, Test: true})
				}
			}
		}()
	}
	wg.Wait()
	var out []LoadedPackage
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.pkgs...)
	}
	return out, nil
}

// LoadDirTests parses the _test.go files of dir, grouped by package
// clause, each under the directory's import path so path-scoped
// analyzers apply the same rules to tests as to the library they
// exercise. In-package test files type-check together with the
// library sources (so library types resolve), but only findings in
// the _test.go files are wanted — the caller gets packages whose
// Files hold just the test files, sharing the merged type info.
func (l *Loader) LoadDirTests(dir, path string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var libFiles []*ast.File
	libName := ""
	groups := map[string][]*ast.File{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			groups[f.Name.Name] = append(groups[f.Name.Name], f)
		} else {
			libFiles = append(libFiles, f)
			libName = f.Name.Name
		}
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*Package
	for _, n := range names {
		files := groups[n]
		unit := files
		if n == libName {
			unit = append(append([]*ast.File{}, libFiles...), files...)
		}
		pkg, err := l.check(path, unit)
		if err != nil {
			return nil, err
		}
		pkg.Files = files // report on test files only
		out = append(out, pkg)
	}
	return out, nil
}

// RunTree is the whole-tree entry point shared by cmd/robustore-lint
// and the self-lint regression test: full analyzer set over library
// packages, the test-safe subset over test packages, cross-package
// metric uniqueness, suppressions applied.
func RunTree(pkgs []LoadedPackage) []Finding {
	var lib, test []*Package
	for _, lp := range pkgs {
		if lp.Test {
			test = append(test, lp.Pkg)
		} else {
			lib = append(lib, lp.Pkg)
		}
	}
	out := RunAll(lib, Analyzers())
	out = append(out, RunAll(test, TestAnalyzers())...)
	SortFindings(out)
	return out
}
