package lint

import (
	"strings"
	"testing"
)

func TestSuppressionRoundTrip(t *testing.T) {
	dir := fixtureDir("suppress")
	p := loadFixture(t, dir, "repro/internal/disk")

	// The raw analyzer sees every float comparison, directives or not:
	// suppression lives in Run/RunAll, not in the analyzers.
	raw := FloatEq.Run(p)
	if len(raw) != 5 {
		t.Fatalf("raw FloatEq found %d findings, want 5: %v", len(raw), raw)
	}

	// The suppression-aware entry point drops the two directived
	// sites (line-above and same-line), keeps the other three, and
	// reports both malformed directives under the "lint" analyzer.
	got := Run(p)
	var floateq, lintd []Finding
	for _, f := range got {
		switch f.Analyzer {
		case "floateq":
			floateq = append(floateq, f)
		case "lint":
			lintd = append(lintd, f)
		default:
			t.Errorf("unexpected analyzer %q: %s", f.Analyzer, f)
		}
	}
	if len(floateq) != 3 {
		t.Errorf("suppressed run kept %d floateq findings, want 3 (the no-reason, unknown-analyzer, and undirectived sites): %v",
			len(floateq), floateq)
	}
	if len(lintd) != 2 {
		t.Fatalf("malformed directives reported %d lint findings, want 2: %v", len(lintd), lintd)
	}
	msgs := lintd[0].Message + " | " + lintd[1].Message
	if !strings.Contains(msgs, "no reason") || !strings.Contains(msgs, "unknown analyzer") {
		t.Errorf("lint findings miss the malformed-directive explanations: %s", msgs)
	}

	// Every surviving finding was one the raw run saw: the directive
	// filtered findings, it never blinded the analyzer.
	rawLines := map[int]bool{}
	for _, f := range raw {
		rawLines[f.Pos.Line] = true
	}
	for _, f := range floateq {
		if !rawLines[f.Pos.Line] {
			t.Errorf("finding at line %d not present in raw run: %s", f.Pos.Line, f)
		}
	}
}
