package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g guarded) int { // WANT(locksafe)
	return g.n
}

func waitGroupByValue(wg sync.WaitGroup) { // WANT(locksafe)
	wg.Wait()
}

func rangeCopy(xs []guarded) int {
	total := 0
	for _, g := range xs { // WANT(locksafe)
		total += g.n
	}
	return total
}

func assignCopy(g *guarded) {
	h := *g // WANT(locksafe)
	_ = h
}

func deferUnlockInLoop(g *guarded, xs []int) int {
	t := 0
	for _, x := range xs {
		g.mu.Lock()
		defer g.mu.Unlock() // WANT(locksafe)
		t += x
	}
	return t
}
