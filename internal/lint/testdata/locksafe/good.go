package fixture

func byPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func rangeByIndex(xs []guarded) int {
	total := 0
	for i := range xs {
		xs[i].mu.Lock()
		total += xs[i].n
		xs[i].mu.Unlock()
	}
	return total
}

func rangeByPointer(xs []*guarded) int {
	total := 0
	for _, g := range xs {
		total += g.n
	}
	return total
}

func unlockPerIteration(g *guarded, xs []int) int {
	t := 0
	for _, x := range xs {
		func() {
			g.mu.Lock()
			defer g.mu.Unlock() // scoped to the literal: runs every iteration
			t += x
		}()
	}
	return t
}

func freshZeroValue() *guarded {
	g := guarded{n: 1} // composite literal: a new lock, not a copy
	return &g
}
