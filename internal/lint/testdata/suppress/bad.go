package fixture

// The suppression round trip: the raw analyzer flags every comparison
// here; Run filters the properly-directived ones and reports the
// malformed directives under the "lint" analyzer.

func cmpSuppressedAbove(a, b float64) bool {
	//lint:ignore floateq fixture exercises the line-above directive
	return a == b
}

func cmpSuppressedSameLine(a, b float64) bool {
	return a != b //lint:ignore floateq fixture exercises the same-line directive
}

func cmpMalformedNoReason(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}

func cmpUnknownAnalyzer(a, b float64) bool {
	//lint:ignore nosuchanalyzer the analyzer name is a typo
	return a == b
}

func cmpUnsuppressed(a, b float64) bool {
	return a == b
}
