package fixture

// epsilonCompare is the sanctioned equality test for virtual time.
func epsilonCompare(a, b float64) bool {
	const eps = 1e-9
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// zeroSentinel: comparison against the exact zero value ("unset") is
// exact by construction and allowed.
func zeroSentinel(a float64) bool {
	return a == 0
}

// ordered comparisons are fine.
func before(a, b float64) bool {
	return a < b
}

// integer equality is exact.
func intEqual(a, b int) bool {
	return a == b
}
