package fixture

func equalTimes(a, b float64) bool {
	return a == b // WANT(floateq)
}

func notEqualShifted(a, b float64) bool {
	return a != b+1.0 // WANT(floateq)
}

func mixedConst(t float64) bool {
	return t == 1.5 // WANT(floateq)
}

func float32Eq(a, b float32) bool {
	return a == b // WANT(floateq)
}
