package fixture

import (
	"math/rand"
	"time"
)

// virtualClock is the sanctioned time source: advanced by the kernel,
// never read from the wall.
type virtualClock struct{ now float64 }

// injected draws only from the supplied RNG and the virtual clock.
func injected(rng *rand.Rand, c *virtualClock) float64 {
	if rng.Intn(10) > 5 {
		return c.now + rng.Float64()
	}
	return c.now
}

// construction of a seeded RNG is how the injected source is built —
// rand.New and rand.NewSource are allowed.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// duration constants and arithmetic do not read the wall clock.
func tick() time.Duration {
	return 5 * time.Millisecond
}
