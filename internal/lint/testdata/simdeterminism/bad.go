package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // WANT(simdeterminism)
	return time.Since(start) // WANT(simdeterminism)
}

func globalRand() int {
	x := rand.Intn(10)        // WANT(simdeterminism)
	if rand.Float64() < 0.5 { // WANT(simdeterminism)
		x++
	}
	rand.Shuffle(3, func(i, j int) {}) // WANT(simdeterminism)
	rand.Seed(42)                      // WANT(simdeterminism)
	return x
}
