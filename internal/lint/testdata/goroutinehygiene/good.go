package fixture

import "sync"

// joinedWithArgs is the sanctioned fan-out shape: iteration state
// passed as arguments, WaitGroup joined before return.
func joinedWithArgs(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			process(x)
		}(x)
	}
	wg.Wait()
}

// doneChannel joins through a channel receive.
func doneChannel() int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return <-out
}
