package main

// Commands are exempt: a short-lived process may fire daemon
// goroutines without joining them.
func main() {
	go work()
	select {}
}

func work() {}
