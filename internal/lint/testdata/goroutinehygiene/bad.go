package fixture

import "sync"

func process(int) {}

func unjoined(xs []int) {
	for i := 0; i < len(xs); i++ {
		go process(xs[i]) // WANT(goroutinehygiene)
	}
}

func fireAndForget(f func()) {
	go f() // WANT(goroutinehygiene)
}

func capturedLoopVar(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(x) // WANT(goroutinehygiene)
		}()
	}
	wg.Wait()
}
