package fixture

import "sync"

var pool2 = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func getBuf2() *[]byte { return pool2.Get().(*[]byte) }

func putBuf2(b *[]byte) { pool2.Put(b) }

func use(b *[]byte) {}

// The canonical shape: defer the release next to the Get.
func deferredRelease() {
	b := getBuf2()
	defer putBuf2(b)
	use(b)
}

// Batched leases released by one deferred closure (the fan-out shape
// of the batch transport paths).
func deferredClosureRelease(n int) {
	var bufs []*[]byte
	defer func() {
		for _, b := range bufs {
			putBuf2(b)
		}
	}()
	for i := 0; i < n; i++ {
		bufs = append(bufs, getBuf2())
	}
	for _, b := range bufs {
		use(b)
	}
}

// A trivial adjacent Get..Put span — no other calls, no returns in
// between — may skip the defer.
func trivialAdjacent() {
	b := pool2.Get().(*[]byte)
	*b = (*b)[:0]
	pool2.Put(b)
}

func noLease(n int) int { return n * 2 }
