package fixture

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// getBuf/putBuf match the sanctioned helper pattern: the analyzer must
// not flag the helpers themselves, only undisciplined call sites.
func getBuf() *[]byte { return pool.Get().(*[]byte) }

func putBuf(b *[]byte) { pool.Put(b) }

func sink(b *[]byte) {}

// Direct Get with no Put anywhere: the pool degrades to plain
// allocation one dropped lease at a time.
func leakNoPut(n int) int {
	b := pool.Get().(*[]byte) // WANT(poollease)
	sink(b)
	return n
}

// Same leak through the lease helper.
func leakHelperNoRelease(n int) int {
	b := getBuf() // WANT(poollease)
	sink(b)
	return n
}

// Returning a lease hands the caller a buffer this function never
// releases and has no way to release safely.
func escapeReturn() *[]byte {
	b := getBuf()
	return b // WANT(poollease)
}

type holder struct{ buf *[]byte }

// Storing a lease into a field outlives the lease: the next Get can
// hand the same backing array to a second owner.
func escapeField(h *holder) {
	b := getBuf()
	h.buf = b // WANT(poollease)
}

// A mid-function Put with calls in between leaks on every panic path;
// the release must be deferred next to the Get.
func heldAcrossCalls() {
	b := getBuf() // WANT(poollease)
	sink(b)
	putBuf(b)
}
