package fixture

import "repro/internal/obs"

const histName = "fixture_latency_seconds"

func registerGood(r *obs.Registry, buckets []float64) {
	r.Counter("fixture_reads_total")
	r.Gauge("fixture_queue_depth")
	r.Histogram(histName)
	r.HistogramWith("fixture_sized_seconds", buckets)
}

// A Counter method on a non-Registry type with a non-string argument
// is some other API that happens to share a name: not a metric.
type notRegistry struct{}

func (notRegistry) Counter(n int) int { return n }

func nonStringArg(nr notRegistry, n int) int {
	return nr.Counter(n)
}
