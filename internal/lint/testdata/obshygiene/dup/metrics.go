package fixture

import "repro/internal/obs"

// Registers a name that testdata/obshygiene/good.go already owns, to
// exercise the cross-package uniqueness pass in RunAll.
func registerElsewhere(r *obs.Registry) {
	r.Counter("fixture_reads_total")
}
