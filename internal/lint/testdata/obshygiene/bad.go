package fixture

import "repro/internal/obs"

func register(r *obs.Registry, id string) {
	r.Counter("fixture_ops_total_" + id)      // WANT(obshygiene)
	r.Gauge("FixtureDepth")                   // WANT(obshygiene)
	r.Histogram("fixture__double_underscore") // WANT(obshygiene)
	r.Counter("fixture_dup_total")
	r.Counter("fixture_dup_total") // WANT(obshygiene)
}
