package main

import "repro/internal/obs"

// Package main is exempt: the CLIs key one-shot gauges by experiment
// ID on purpose.
func main() {
	register(obs.NewRegistry(), "exp42")
}

func register(r *obs.Registry, id string) {
	r.Gauge("result_" + id)
	r.Counter("CamelCaseIsToleratedHere")
}
