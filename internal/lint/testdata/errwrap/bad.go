package fixture

import (
	"errors"
	"fmt"

	"repro/internal/blockstore"
)

var ErrCorruptShare = errors.New("fixture: corrupt share")

// Direct identity comparison stops matching the moment any layer
// wraps the sentinel.
func compareEq(err error) bool {
	return err == ErrCorruptShare // WANT(errwrap)
}

func compareNeq(err error) bool {
	return ErrCorruptShare != err // WANT(errwrap)
}

// Cross-package sentinels of this module are matched by name even
// though the sibling package type-checks as a placeholder.
func compareSelector(err error) bool {
	return err == blockstore.ErrNotFound // WANT(errwrap)
}

// %v flattens the error to text and severs the Unwrap chain.
func flattenV(err error) error {
	return fmt.Errorf("read failed: %v", err) // WANT(errwrap)
}

func flattenS(err error) error {
	return fmt.Errorf("read failed: %s", err) // WANT(errwrap)
}

func flattenSentinel(n int) error {
	return fmt.Errorf("after %d tries: %v", n, ErrCorruptShare) // WANT(errwrap)
}
