package fixture

import (
	"errors"
	"fmt"

	"repro/internal/blockstore"
)

var ErrDegradedWrite = errors.New("fixture: degraded write")

// Lower-case package-level errors are not sentinels: they are private
// to the package and never crossed by a wrap boundary.
var errLocal = errors.New("fixture: not a sentinel")

func compareIs(err error) bool {
	return errors.Is(err, ErrDegradedWrite) || errors.Is(err, blockstore.ErrNotFound)
}

// Nil comparison is presence, not identity: always legal.
func compareNil() bool {
	return ErrDegradedWrite == nil || nil != ErrDegradedWrite
}

func nonSentinelCompare(err error) bool {
	return err == errLocal
}

func wrapW(err error) error {
	return fmt.Errorf("read failed: %w", err)
}

// Multiple %w verbs are fine (the transport timeout wrap uses this).
func wrapBoth(err error) error {
	return fmt.Errorf("%w after %d tries: %w", ErrDegradedWrite, 3, err)
}

// %v on non-error operands is not this analyzer's business.
func nonErrorVerb(n int) error {
	return fmt.Errorf("count %v of %s", n, "shares")
}
