package fixture

import (
	"context"
	"net"
)

func doIO(ctx context.Context, i int) error { return nil }

// A counted loop that delegates ctx to its callee every iteration but
// never observes it: after cancellation it still burns one full
// iteration of I/O per remaining item.
func loopNoCheck(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // WANT(ctxcancel)
		doIO(ctx, i)
	}
}

func rangeNoCheck(ctx context.Context, xs []int) {
	for _, x := range xs { // WANT(ctxcancel)
		doIO(ctx, x)
	}
}

// Raw conn I/O with a context in scope: the loop blocks in Read with
// no cancellation path at all.
func rawConnLoop(ctx context.Context, conn net.Conn, buf []byte) {
	for { // WANT(ctxcancel)
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// The ctx.Err() check before the loop does not help: iterations after
// the first never look again.
func checksOnlyBeforeLoop(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ { // WANT(ctxcancel)
		doIO(ctx, i)
	}
	return nil
}
