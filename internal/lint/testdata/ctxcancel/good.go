package fixture

import (
	"context"
	"net"
)

func work(ctx context.Context, i int) error { return nil }

// The sanctioned shape: an Err() test at the top of every iteration.
func loopWithErrCheck(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return
		}
		work(ctx, i)
	}
}

// A select on Done() each iteration also observes cancellation.
func loopWithDoneSelect(ctx context.Context, ch chan int, n int) {
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return
		case ch <- i:
		}
		work(ctx, i)
	}
}

// The check may live in the loop condition.
func loopCondChecksCtx(ctx context.Context, n int) {
	for i := 0; i < n && ctx.Err() == nil; i++ {
		work(ctx, i)
	}
}

// No context in scope: a plain accept/read loop has nothing to check.
func noCtxInScope(conn net.Conn, buf []byte) {
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// Pure in-memory loops are exempt even with a ctx in scope.
func pureComputeLoop(ctx context.Context, xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	work(ctx, sum)
	return sum
}

// Calls through a local closure are not direct I/O of this loop; the
// closure body is a separate scope.
func delegatesToClosure(ctx context.Context, xs []int) {
	emit := func(x int) { work(ctx, x) }
	for _, x := range xs {
		emit(x)
	}
}
