// Package lint implements RobuSTore's project-specific static
// analyzers: machine-checked guardrails for the determinism and
// concurrency discipline the simulation kernel and the concurrent
// client/server paths depend on. It is built only on go/ast,
// go/parser, go/types, and go/token — no external analysis framework,
// per the repo's stdlib-only policy.
//
// Eight analyzers ship today (see their files for details):
//
//   - simdeterminism: no wall clock or global math/rand inside the
//     deterministic simulation packages.
//   - locksafe: no sync.Mutex/RWMutex/WaitGroup copied by value, no
//     defer mu.Unlock() inside a loop body.
//   - goroutinehygiene: library goroutines must be joined and must
//     not capture loop variables by reference.
//   - floateq: no ==/!= between floating-point expressions in the
//     simulation packages.
//   - ctxcancel: I/O loops in the client/server packages must check
//     ctx.Err() or select on ctx.Done() each iteration.
//   - poollease: sync.Pool leases must be released on every path and
//     must not escape via returns or struct fields (lease helpers
//     like getShareBuf/putShareBuf are recognized structurally).
//   - errwrap: project Err* sentinels are compared with errors.Is
//     and wrapped with %w, never ==/%v.
//   - obshygiene: metric names passed to internal/obs are
//     compile-time constants, snake_case, and unique.
//
// A finding can be silenced at the site with a
// "//lint:ignore <analyzer> <reason>" directive on the same line or
// the line above (see suppress.go). The driver is cmd/robustore-lint.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer names as constants so Run funcs can reference them
// without an initialization cycle through the Analyzer vars.
const (
	simDeterminismName   = "simdeterminism"
	lockSafeName         = "locksafe"
	goroutineHygieneName = "goroutinehygiene"
	floatEqName          = "floateq"
	ctxCancelName        = "ctxcancel"
	poolLeaseName        = "poollease"
	errWrapName          = "errwrap"
	obsHygieneName       = "obshygiene"
)

// Finding is one analyzer report, anchored to a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Finding
}

// Analyzers returns every project analyzer, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterminism, LockSafe, GoroutineHygiene, FloatEq,
		CtxCancel, PoolLease, ErrWrap, ObsHygiene,
	}
}

// TestAnalyzers returns the subset of analyzers that also applies to
// _test.go files: test helpers copy mutexes and compare virtual-time
// floats just like library code does. GoroutineHygiene stays
// library-only (tests legitimately fire short-lived daemon
// goroutines), as do the resource-discipline analyzers whose
// conventions are about production paths.
func TestAnalyzers() []*Analyzer {
	return []*Analyzer{SimDeterminism, LockSafe, FloatEq}
}

// simPackages are the deterministic-simulation packages: everything
// here must replay bit-identically from a seed, so wall clocks and
// the global math/rand source are forbidden (simdeterminism) and
// virtual-time floats must never be compared with ==/!= (floateq).
var simPackages = []string{
	"internal/sim",
	"internal/disk",
	"internal/ltcode",
	"internal/schemes",
	"internal/cachesim",
	"internal/workload",
	"internal/raptor",
	"internal/tornado",
}

// IsSimPackage reports whether the import path is one of the
// deterministic-simulation packages.
func IsSimPackage(path string) bool {
	for _, p := range simPackages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// Package is one loaded, type-checked package ready for analysis.
// Type-checking is lenient: imports that cannot be resolved become
// empty placeholder packages and type errors are ignored, so the
// analyzers must treat unresolved types conservatively (skip, never
// guess).
type Package struct {
	Path  string // import path, e.g. repro/internal/sim
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// PkgFunc returns the qualified (package, function) name when sel is
// a selector on an imported package identifier — e.g. rand.Intn
// yields ("math/rand", "Intn", true). Selectors on variables yield
// ok=false.
func (p *Package) PkgFunc(sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// TypeOf returns the type of e, or nil when type-checking could not
// resolve it.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if t := p.Info.TypeOf(e); t != nil && t != types.Typ[types.Invalid] {
		return t
	}
	return nil
}

func (p *Package) finding(name string, pos token.Pos, format string, args ...any) Finding {
	return Finding{Analyzer: name, Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// Loader parses and type-checks package directories. One Loader is
// shared across a whole run so the (expensive) source import of the
// standard library is done once.
type Loader struct {
	Fset     *token.FileSet
	importer types.Importer
	fakes    map[string]*types.Package
	// IncludeTests controls whether _test.go files are analyzed
	// (default false: the discipline applies to library code; tests
	// may use wall clocks and ad-hoc randomness).
	IncludeTests bool
}

// NewLoader builds a loader whose importer resolves the standard
// library from source and falls back to empty placeholder packages
// for anything it cannot find (e.g. sibling packages of this module).
func NewLoader() *Loader {
	l := &Loader{Fset: token.NewFileSet(), fakes: map[string]*types.Package{}}
	l.importer = &lenientImporter{src: importer.ForCompiler(l.Fset, "source", nil), fakes: l.fakes}
	return l
}

type lenientImporter struct {
	src   types.Importer
	fakes map[string]*types.Package
}

func (im *lenientImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.fakes[path]; ok {
		return pkg, nil
	}
	if pkg, err := im.src.Import(path); err == nil && pkg != nil {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	im.fakes[path] = pkg
	return pkg, nil
}

// LoadDir parses every buildable .go file in dir as one package and
// type-checks it leniently under the given import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return l.check(path, files)
}

func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    l.importer,
		Error:       func(error) {}, // lenient: placeholders make errors inevitable
		FakeImportC: true,
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	return &Package{Path: path, Fset: l.Fset, Files: files, Types: pkg, Info: info}, nil
}

// Run applies every analyzer to the package, honors //lint:ignore
// suppressions, and returns the findings sorted by position.
func Run(p *Package) []Finding {
	return RunAll([]*Package{p}, Analyzers())
}

// RunAll applies the given analyzers to every package, adds the
// cross-package checks (metric-name uniqueness) when their analyzer
// is in the set, filters findings through //lint:ignore directives,
// and returns the survivors sorted by position. Malformed directives
// are themselves reported (analyzer "lint").
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Finding {
	wantObs := false
	for _, a := range analyzers {
		if a.Name == obsHygieneName {
			wantObs = true
		}
	}
	var dups map[*Package][]Finding
	if wantObs {
		dups = metricDuplicates(pkgs)
	}
	var out []Finding
	for _, p := range pkgs {
		var fs []Finding
		for _, a := range analyzers {
			fs = append(fs, a.Run(p)...)
		}
		fs = append(fs, dups[p]...)
		out = append(out, applySuppressions(p, fs)...)
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, column, analyzer.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// PackageDirs walks root and returns every directory containing
// buildable Go files, skipping testdata, vendor, hidden directories,
// and the results tree.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != root && (name == "testdata" || name == "vendor" || name == "results" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}
