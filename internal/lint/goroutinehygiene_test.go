package lint

import "testing"

func TestGoroutineHygieneFixture(t *testing.T) {
	dir := fixtureDir("goroutinehygiene")
	// bad.go seeds unjoined goroutines and a by-reference loop-var
	// capture; good.go holds the WaitGroup-joined pass-as-argument
	// fan-out (the write/read path shape) and a done-channel join.
	p := loadFixture(t, dir, "repro/internal/anything")
	checkAgainstMarkers(t, GoroutineHygiene, p, dir)
}

func TestGoroutineHygieneExemptsMain(t *testing.T) {
	// package main may fire daemon goroutines without a join.
	p := loadFixture(t, fixtureDir("goroutinehygiene/mainpkg"), "repro/cmd/fixture")
	if got := GoroutineHygiene.Run(p); len(got) != 0 {
		t.Fatalf("package main flagged: %v", got)
	}
}
