package lint

import "testing"

func TestPoolLeaseFixture(t *testing.T) {
	dir := fixtureDir("poollease")
	// bad.go drops, returns, stores, and holds leases across calls;
	// good.go holds the deferred-release, deferred-closure, and
	// trivial-adjacent shapes. The getBuf/putBuf helper pairs must be
	// recognized structurally and never flagged themselves.
	p := loadFixture(t, dir, "repro/internal/transport")
	checkAgainstMarkers(t, PoolLease, p, dir)
}

func TestPoolLeaseRunsEverywhere(t *testing.T) {
	// Unlike the path-scoped analyzers, the pool discipline applies to
	// every package that touches a sync.Pool.
	p := loadFixture(t, fixtureDir("poollease"), "repro/internal/sim")
	if got := PoolLease.Run(p); len(got) == 0 {
		t.Fatal("poollease found nothing outside the ctx packages; it must not be path-scoped")
	}
}
