package lint

import "testing"

func TestCtxCancelFixture(t *testing.T) {
	dir := fixtureDir("ctxcancel")
	// bad.go loops over I/O (ctx-delegating calls and raw conn reads)
	// without observing cancellation; good.go holds the Err()-check,
	// Done()-select, loop-condition, and no-ctx-in-scope shapes.
	p := loadFixture(t, dir, "repro/internal/transport")
	checkAgainstMarkers(t, CtxCancel, p, dir)
}

func TestCtxCancelScopedToCtxPackages(t *testing.T) {
	// The cancellation discipline binds the client/server packages
	// only; the same loops in a sim package are not its business.
	p := loadFixture(t, fixtureDir("ctxcancel"), "repro/internal/sim")
	if got := CtxCancel.Run(p); len(got) != 0 {
		t.Fatalf("non-ctx package flagged: %v", got)
	}
}

func TestIsCtxPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/transport", true},
		{"repro/internal/blockstore", true},
		{"repro/internal/robust", true},
		{"repro/internal/metadata", true},
		{"internal/transport", true},
		{"repro/internal/sim", false},
		{"repro/internal/obs", false},
		{"other/internal/transportx", false},
	}
	for _, c := range cases {
		if got := IsCtxPackage(c.path); got != c.want {
			t.Errorf("IsCtxPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
