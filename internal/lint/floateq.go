package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq forbids ==/!= between floating-point expressions in the
// deterministic-simulation packages. Virtual time in the kernel is
// float64 arithmetic; two schedules that are "the same instant" can
// differ in the last ulp depending on summation order, so exact
// equality is a latent scheduling bug. Order comparisons (<, <=) or
// an explicit epsilon are the sanctioned forms.
//
// One exemption: comparison against the exact constant 0 — the
// zero-value sentinel ("unset") test, which is exact by construction.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= between floats in deterministic sim packages",
	Run:  runFloatEq,
}

func runFloatEq(p *Package) []Finding {
	if !IsSimPackage(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p, be.X) || !isFloat(p, be.Y) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			out = append(out, p.finding(floatEqName, be.OpPos,
				"float %s comparison is schedule-dependent in virtual-time arithmetic: compare with an epsilon or restructure", be.Op))
			return true
		})
	}
	return out
}

func isFloat(p *Package, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant exactly
// equal to zero.
func isZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	return v.Kind() == constant.Float && constant.Sign(v) == 0
}
