package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestObsHygieneFixture(t *testing.T) {
	dir := fixtureDir("obshygiene")
	// bad.go assembles a name at runtime, breaks snake_case twice, and
	// double-registers; good.go holds constant snake_case names (one
	// via a named const) and a non-Registry Counter method.
	p := loadFixture(t, dir, "repro/internal/fixture")
	checkAgainstMarkers(t, ObsHygiene, p, dir)
}

func TestObsHygieneExemptsMain(t *testing.T) {
	// The CLIs key one-shot gauges by experiment ID on purpose.
	p := loadFixture(t, fixtureDir("obshygiene/mainpkg"), "repro/cmd/fixture")
	if got := ObsHygiene.Run(p); len(got) != 0 {
		t.Fatalf("package main flagged: %v", got)
	}
}

func TestObsHygieneExemptsObsItself(t *testing.T) {
	// internal/obs manipulates metric names generically.
	p := loadFixture(t, fixtureDir("obshygiene"), "repro/internal/obs")
	if got := ObsHygiene.Run(p); len(got) != 0 {
		t.Fatalf("internal/obs flagged: %v", got)
	}
}

func TestObsHygieneCrossPackageDuplicate(t *testing.T) {
	l := NewLoader()
	p1, err := l.LoadDir(fixtureDir("obshygiene"), "repro/internal/fixture")
	if err != nil || p1 == nil {
		t.Fatalf("load: %v", err)
	}
	p2, err := l.LoadDir(filepath.Join(fixtureDir("obshygiene"), "dup"), "repro/internal/fixturedup")
	if err != nil || p2 == nil {
		t.Fatalf("load dup: %v", err)
	}
	findings := RunAll([]*Package{p1, p2}, []*Analyzer{ObsHygiene})
	var dups []Finding
	for _, f := range findings {
		if strings.Contains(f.Message, "already registered in") {
			dups = append(dups, f)
		}
	}
	if len(dups) != 1 {
		t.Fatalf("cross-package duplicates = %v, want exactly one", dups)
	}
	if base := filepath.Base(dups[0].Pos.Filename); base != "metrics.go" {
		t.Errorf("duplicate keyed to %s, want the later site metrics.go", base)
	}
	if !strings.Contains(dups[0].Message, "repro/internal/fixture") {
		t.Errorf("duplicate message %q does not name the first package", dups[0].Message)
	}
}

func TestIsSnakeCase(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"fixture_reads_total", true},
		{"a", true},
		{"a1_b2", true},
		{"", false},
		{"Fixture", false},
		{"1abc", false},
		{"a__b", false},
		{"a_", false},
		{"_a", false},
		{"a-b", false},
	}
	for _, c := range cases {
		if got := isSnakeCase(c.s); got != c.want {
			t.Errorf("isSnakeCase(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}
