package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ObsHygiene polices the metric namespace: every name passed to an
// internal/obs Registry (Counter, Gauge, Histogram, HistogramWith)
// must be a compile-time constant, snake_case, and registered at
// exactly one site. A runtime-assembled name silently forks the
// namespace per input (and allocates on the hot path); a name
// registered from two sites is either a copy-paste collision — two
// subsystems incrementing each other's counter — or dead code. The
// /metrics endpoint and the committed BENCH_*.json baselines both key
// on these names, so drift is an observable break.
//
// Package main is exempt: the CLIs deliberately key one-shot gauges
// by experiment ID. internal/obs itself is exempt (it manipulates
// names generically).
//
// Registration sites are matched by receiver type when it resolves to
// internal/obs.Registry; module-internal imports type-check as
// placeholders, so an unresolved receiver with a matching method name
// and shape is treated as a Registry too.
var ObsHygiene = &Analyzer{
	Name: "obshygiene",
	Doc:  "obs metric names must be compile-time constants, snake_case, and unique",
	Run:  runObsHygiene,
}

// registryMethods maps method name to the index of its name argument.
var registryMethods = map[string]int{
	"Counter": 0, "Gauge": 0, "Histogram": 0, "HistogramWith": 0,
}

// metricReg is one registration site.
type metricReg struct {
	name string
	pos  token.Pos
}

func runObsHygiene(p *Package) []Finding {
	findings, regs := obsScan(p)
	// In-package duplicates (cross-package ones are found by RunAll).
	seen := map[string]token.Pos{}
	for _, r := range regs {
		if first, dup := seen[r.name]; dup {
			findings = append(findings, p.finding(obsHygieneName, r.pos,
				"metric %q is already registered at %s: metric names must be unique", r.name, p.Fset.Position(first)))
			continue
		}
		seen[r.name] = r.pos
	}
	return findings
}

// obsScan returns the constant-name and snake-case findings plus
// every well-formed registration in the package.
func obsScan(p *Package) ([]Finding, []metricReg) {
	if p.Types != nil && p.Types.Name() == "main" {
		return nil, nil
	}
	if strings.HasSuffix(p.Path, "internal/obs") {
		return nil, nil
	}
	var out []Finding
	var regs []metricReg
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			argIdx, ok := registryMethods[sel.Sel.Name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			if !isRegistryRecv(p, sel.X) {
				return true
			}
			arg := call.Args[argIdx]
			tv, typed := p.Info.Types[arg]
			if !typed || tv.Value == nil || tv.Value.Kind() != constant.String {
				// A non-string argument means this is not a metric
				// name at all (some other method that shares a name).
				if t := p.TypeOf(arg); t != nil {
					b, isBasic := t.Underlying().(*types.Basic)
					if !isBasic || b.Info()&types.IsString == 0 {
						return true
					}
				}
				out = append(out, p.finding(obsHygieneName, arg.Pos(),
					"metric name must be a compile-time constant: runtime-assembled names fork the namespace per input"))
				return true
			}
			name := constant.StringVal(tv.Value)
			if !isSnakeCase(name) {
				out = append(out, p.finding(obsHygieneName, arg.Pos(),
					"metric name %q is not snake_case ([a-z][a-z0-9_]*)", name))
				return true
			}
			regs = append(regs, metricReg{name: name, pos: arg.Pos()})
			return true
		})
	}
	return out, regs
}

// isRegistryRecv reports whether e is (or plausibly is) an
// *obs.Registry. Resolved non-Registry receivers and package
// qualifiers are rejected; unresolved receivers pass, because every
// module-internal type is a placeholder under the lenient importer.
func isRegistryRecv(p *Package, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok {
		if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
			return false
		}
	}
	t := p.TypeOf(e)
	if t == nil {
		return true // unresolved: assume Registry (see doc comment)
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == "Registry" && strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// isSnakeCase matches ^[a-z][a-z0-9_]*$ without double or trailing
// underscores.
func isSnakeCase(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	prevUnderscore := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prevUnderscore = false
		case c == '_':
			if prevUnderscore {
				return false
			}
			prevUnderscore = true
		default:
			return false
		}
	}
	return !prevUnderscore
}

// metricDuplicates finds metric names registered in more than one
// package. Findings are keyed to the package of the later site so
// suppression directives there can cover sanctioned shared names.
func metricDuplicates(pkgs []*Package) map[*Package][]Finding {
	type site struct {
		p   *Package
		pos token.Pos
	}
	first := map[string]site{}
	out := map[*Package][]Finding{}
	for _, p := range pkgs {
		_, regs := obsScan(p)
		for _, r := range regs {
			prev, dup := first[r.name]
			if !dup {
				first[r.name] = site{p: p, pos: r.pos}
				continue
			}
			if prev.p == p {
				continue // in-package duplicate: already reported by Run
			}
			out[p] = append(out[p], p.finding(obsHygieneName, r.pos,
				"metric %q is already registered in %s (%s): metric names must be unique across the repo",
				r.name, prev.p.Path, prev.p.Fset.Position(prev.pos)))
		}
	}
	return out
}
