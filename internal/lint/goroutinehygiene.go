package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineHygiene polices `go` statements in library code (non-main
// packages). Two patterns behind real fan-out bugs in the
// read/write/repair paths are rejected:
//
//  1. A goroutine that is never joined: the enclosing function shows
//     no sync.WaitGroup use (Add/Wait) and no channel receive, so the
//     goroutine can outlive the call, racing with returned values and
//     leaking under error paths.
//  2. A goroutine function literal that captures an enclosing loop
//     variable by reference instead of receiving it as an argument —
//     the classic stale-iteration capture.
//
// Tests and package main are exempt: short-lived commands and test
// helpers legitimately fire daemon goroutines.
var GoroutineHygiene = &Analyzer{
	Name: "goroutinehygiene",
	Doc:  "flag unjoined goroutines and by-reference loop-variable capture in library code",
	Run:  runGoroutineHygiene,
}

func runGoroutineHygiene(p *Package) []Finding {
	if p.Types != nil && p.Types.Name() == "main" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			out = append(out, checkGoStmts(p, fd)...)
			return true
		})
	}
	return out
}

func checkGoStmts(p *Package, fd *ast.FuncDecl) []Finding {
	var gos []*ast.GoStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) == 0 {
		return nil
	}
	joined := hasJoinSignal(fd.Body)
	var out []Finding
	for _, g := range gos {
		if !joined {
			out = append(out, p.finding(goroutineHygieneName, g.Pos(),
				"goroutine in %s has no join: pair it with a sync.WaitGroup or a done-channel receive before returning", fd.Name.Name))
		}
		out = append(out, checkLoopCapture(p, fd, g)...)
	}
	return out
}

// hasJoinSignal reports whether the function body contains evidence
// of goroutine lifecycle management: a WaitGroup Add/Wait call, a
// channel receive, or a range over a channel. This is deliberately
// an approximation — the analyzer demands visible join structure in
// the same function, not a whole-program happens-before proof.
func hasJoinSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if name := sel.Sel.Name; name == "Wait" || name == "Add" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkLoopCapture flags loop variables referenced inside the go
// statement's function literal body. Even with Go 1.22 per-iteration
// loop variables this hides an ordering dependency on the loop from
// the reader; the project style is to pass iteration state as
// arguments (as the write/read fan-outs do).
func checkLoopCapture(p *Package, fd *ast.FuncDecl, g *ast.GoStmt) []Finding {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	loopVars := enclosingLoopVars(p, fd, g)
	if len(loopVars) == 0 {
		return nil
	}
	var out []Finding
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || !loopVars[obj] || reported[obj] {
			return true
		}
		reported[obj] = true
		out = append(out, p.finding(goroutineHygieneName, id.Pos(),
			"goroutine captures loop variable %q by reference: pass it as an argument to the function literal", id.Name))
		return true
	})
	return out
}

// enclosingLoopVars collects the loop variables of every for/range
// statement between fd and the go statement g.
func enclosingLoopVars(p *Package, fd *ast.FuncDecl, g *ast.GoStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	addDef := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		// Descend only through nodes that enclose the go statement.
		if g.Pos() < n.Pos() || n.End() <= g.Pos() {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				addDef(n.Key)
				addDef(n.Value)
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					addDef(lhs)
				}
			}
		}
		return true
	})
	return vars
}
