package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ErrWrap enforces the sentinel-error conventions behind the error
// taxonomy (DESIGN.md §8): project sentinels (package-level Err*
// variables such as ErrCorruptShare, ErrDegradedWrite,
// ErrRequestTimeout, ErrScrubUnsupported) are compared with
// errors.Is, never ==/!=, and an error captured into a new message is
// wrapped with %w, never flattened with %v/%s. Direct comparison
// silently stops matching the moment a layer wraps the sentinel —
// which the transport retry and degraded-write paths do — and a
// %v-flattened error severs the Unwrap chain the callers' errors.Is
// checks depend on.
//
// Comparing a sentinel (or any error) against nil stays legal: that
// is presence, not identity.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "compare project Err* sentinels with errors.Is and wrap errors with %w, not %v",
	Run:  runErrWrap,
}

func runErrWrap(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if f := checkSentinelCompare(p, n); f != nil {
					out = append(out, *f)
				}
			case *ast.CallExpr:
				out = append(out, checkErrorfWrap(p, n)...)
			}
			return true
		})
	}
	return out
}

// sentinelName returns the Err* name when e references a project
// sentinel: a package-level var named Err[A-Z]... of error type in
// this package, or a selector pkg.Err[A-Z]... on a package of this
// module (whose type may be unresolved — module-internal imports
// type-check as empty placeholders, so the name pattern carries the
// decision there).
func sentinelName(p *Package, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj, ok := p.Info.Uses[e].(*types.Var)
		if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return "", false
		}
		if !isSentinelIdent(e.Name) || !isErrorType(obj.Type()) {
			return "", false
		}
		return e.Name, true
	case *ast.SelectorExpr:
		path, name, ok := p.PkgFunc(e)
		if !ok || !isSentinelIdent(name) {
			return "", false
		}
		if !isModulePath(p, path) {
			return "", false
		}
		return path[strings.LastIndex(path, "/")+1:] + "." + name, true
	}
	return "", false
}

// isSentinelIdent matches the Err[A-Z]... naming convention.
func isSentinelIdent(name string) bool {
	rest, ok := strings.CutPrefix(name, "Err")
	if !ok || rest == "" {
		return false
	}
	r, _ := utf8.DecodeRuneInString(rest)
	return unicode.IsUpper(r)
}

// isModulePath reports whether path names a package of this module.
func isModulePath(p *Package, path string) bool {
	mod := p.Path
	if i := strings.Index(mod, "/"); i >= 0 {
		mod = mod[:i]
	}
	return path == mod || strings.HasPrefix(path, mod+"/")
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error.
func isErrorType(t types.Type) bool {
	if t == nil || t == types.Typ[types.Invalid] {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// checkSentinelCompare flags x ==/!= sentinel (nil comparisons pass).
func checkSentinelCompare(p *Package, be *ast.BinaryExpr) *Finding {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return nil
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		name, ok := sentinelName(p, pair[0])
		if !ok {
			continue
		}
		if id, isIdent := pair[1].(*ast.Ident); isIdent && id.Name == "nil" {
			return nil
		}
		f := p.finding(errWrapName, be.OpPos,
			"%s %s misses wrapped sentinels: use errors.Is", be.Op, name)
		return &f
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf verbs that flatten an error
// argument: %v/%s on a value implementing error (or a sentinel
// reference) severs the Unwrap chain — use %w.
func checkErrorfWrap(p *Package, call *ast.CallExpr) []Finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if path, name, ok := p.PkgFunc(sel); !ok || path != "fmt" || name != "Errorf" {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return nil // indexed or otherwise exotic format: stay conservative
	}
	var out []Finding
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		arg := args[i]
		_, isSentinel := sentinelName(p, arg)
		if !isSentinel && !isErrorType(p.TypeOf(arg)) {
			continue
		}
		out = append(out, p.finding(errWrapName, arg.Pos(),
			"error formatted with %%%c severs the Unwrap chain: wrap with %%w", verb))
	}
	return out
}

// formatVerbs extracts the verb letters of a format string in operand
// order. A '*' width/precision consumes an operand and is recorded as
// '*'. Returns ok=false on indexed arguments ([n]), which would break
// the positional mapping.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0123456789.", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}
