package lint

import "testing"

func TestSimDeterminismFixture(t *testing.T) {
	dir := fixtureDir("simdeterminism")
	// Loaded under a sim-package path the wall-clock and global-rand
	// uses in bad.go must all be flagged; the injected-RNG and
	// virtual-clock idioms in good.go must stay clean.
	p := loadFixture(t, dir, "repro/internal/sim")
	checkAgainstMarkers(t, SimDeterminism, p, dir)
}

func TestSimDeterminismScopedToSimPackages(t *testing.T) {
	// The same sources under a non-sim import path are out of scope:
	// wall clocks are fine in, say, the transport layer.
	p := loadFixture(t, fixtureDir("simdeterminism"), "repro/internal/transport")
	if got := SimDeterminism.Run(p); len(got) != 0 {
		t.Fatalf("non-sim package flagged: %v", got)
	}
}
