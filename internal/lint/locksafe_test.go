package lint

import "testing"

func TestLockSafeFixture(t *testing.T) {
	dir := fixtureDir("locksafe")
	// locksafe applies to every package; the import path does not
	// matter. bad.go seeds by-value lock params, range copies, value
	// assignment of a lock-carrying struct, and defer-Unlock-in-loop;
	// good.go holds the pointer-based idioms that must stay clean.
	p := loadFixture(t, dir, "repro/internal/anything")
	checkAgainstMarkers(t, LockSafe, p, dir)
}
