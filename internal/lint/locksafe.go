package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe flags sync primitives copied by value and defers of
// Unlock inside loop bodies. A copied Mutex/RWMutex/WaitGroup is a
// distinct lock that silently stops guarding the original state —
// the class of bug behind scheduling-dependent corruption that only
// the race detector surfaces. A `defer mu.Unlock()` inside a loop
// runs at function exit, not iteration exit, so the second iteration
// self-deadlocks.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flag sync.Mutex/RWMutex/WaitGroup copied by value and defer Unlock in loops",
	Run:  runLockSafe,
}

// syncLockTypes are the sync types that must never be copied after
// first use.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// containsLock reports whether a value of type t embeds a sync lock
// by value (directly, via struct fields, or via array elements).
// Pointers, slices, maps, channels, and interfaces hide the lock
// behind a reference and are fine to copy.
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
		return containsLockRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// unlockMethods end a critical section; deferring them inside a loop
// body is the latent-deadlock pattern locksafe rejects.
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

func runLockSafe(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				out = append(out, lockValueParams(p, n.Recv)...)
				out = append(out, lockValueParams(p, n.Type.Params)...)
				out = append(out, lockValueParams(p, n.Type.Results)...)
			case *ast.FuncLit:
				out = append(out, lockValueParams(p, n.Type.Params)...)
				out = append(out, lockValueParams(p, n.Type.Results)...)
			case *ast.AssignStmt:
				out = append(out, lockCopyAssign(p, n)...)
			case *ast.RangeStmt:
				out = append(out, lockRangeCopy(p, n)...)
				out = append(out, deferUnlockInLoop(p, n.Body)...)
			case *ast.ForStmt:
				out = append(out, deferUnlockInLoop(p, n.Body)...)
			case *ast.CallExpr:
				out = append(out, lockValueArgs(p, n)...)
			}
			return true
		})
	}
	return out
}

// lockValueParams flags by-value parameters, results, and receivers
// whose type carries a lock.
func lockValueParams(p *Package, fl *ast.FieldList) []Finding {
	if fl == nil {
		return nil
	}
	var out []Finding
	for _, field := range fl.List {
		if _, isPtr := field.Type.(*ast.StarExpr); isPtr {
			continue
		}
		t := p.TypeOf(field.Type)
		if t == nil || !containsLock(t) {
			continue
		}
		out = append(out, p.finding(lockSafeName, field.Type.Pos(),
			"%s passed by value copies its lock: use a pointer", types.TypeString(t, types.RelativeTo(p.Types))))
	}
	return out
}

// copyableExpr reports whether e is an expression whose evaluation
// yields an existing value (so assigning it copies that value).
// Fresh composite literals and function-call results are new values,
// not copies of live locks.
func copyableExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copyableExpr(e.X)
	}
	return false
}

// lockCopyAssign flags x := y and x = y where y is a live value whose
// type carries a lock.
func lockCopyAssign(p *Package, n *ast.AssignStmt) []Finding {
	var out []Finding
	for i, rhs := range n.Rhs {
		if !copyableExpr(rhs) {
			continue
		}
		// Discarding to blank does not create a live copy.
		if len(n.Lhs) == len(n.Rhs) {
			if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		t := p.TypeOf(rhs)
		if t == nil || !containsLock(t) {
			continue
		}
		out = append(out, p.finding(lockSafeName, rhs.Pos(),
			"assignment copies %s and its lock: use a pointer", types.TypeString(t, types.RelativeTo(p.Types))))
	}
	return out
}

// lockValueArgs flags call arguments that pass a live lock-carrying
// value by value.
func lockValueArgs(p *Package, call *ast.CallExpr) []Finding {
	var out []Finding
	for _, arg := range call.Args {
		if !copyableExpr(arg) {
			continue
		}
		t := p.TypeOf(arg)
		if t == nil || !containsLock(t) {
			continue
		}
		out = append(out, p.finding(lockSafeName, arg.Pos(),
			"call passes %s by value, copying its lock: use a pointer", types.TypeString(t, types.RelativeTo(p.Types))))
	}
	return out
}

// lockRangeCopy flags `for _, v := range xs` where v copies a
// lock-carrying element.
func lockRangeCopy(p *Package, n *ast.RangeStmt) []Finding {
	var out []Finding
	for _, e := range []ast.Expr{n.Key, n.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var t types.Type
		if n.Tok == token.DEFINE {
			if obj := p.Info.Defs[id]; obj != nil {
				t = obj.Type()
			}
		} else {
			t = p.TypeOf(id)
		}
		if t == nil || !containsLock(t) {
			continue
		}
		out = append(out, p.finding(lockSafeName, id.Pos(),
			"range copies %s and its lock each iteration: range over indices or pointers", types.TypeString(t, types.RelativeTo(p.Types))))
	}
	return out
}

// deferUnlockInLoop flags defer X.Unlock()/X.RUnlock() statements
// directly inside a loop body (a defer in a nested function literal
// runs at that function's return and is fine).
func deferUnlockInLoop(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its defers are scoped to the literal
		case *ast.ForStmt, *ast.RangeStmt:
			return false // nested loop: reported when visited itself
		case *ast.DeferStmt:
			sel, ok := n.Call.Fun.(*ast.SelectorExpr)
			if !ok || !unlockMethods[sel.Sel.Name] {
				return true
			}
			recv := p.TypeOf(sel.X)
			if recv == nil {
				return true // unresolved type: stay conservative
			}
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if !containsLock(recv) {
				return true
			}
			out = append(out, p.finding(lockSafeName, n.Pos(),
				"defer %s.%s() inside a loop runs at function exit, not iteration exit: unlock explicitly or extract the body", exprString(sel.X), sel.Sel.Name))
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "lock"
}
