package lint

import "testing"

func TestErrWrapFixture(t *testing.T) {
	dir := fixtureDir("errwrap")
	// bad.go compares sentinels with ==/!= (same-package and via a
	// placeholder-typed sibling import) and flattens errors with
	// %v/%s; good.go holds errors.Is, nil comparisons, %w wrapping,
	// and non-sentinel/non-error operands.
	p := loadFixture(t, dir, "repro/internal/transport")
	checkAgainstMarkers(t, ErrWrap, p, dir)
}

func TestIsSentinelIdent(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"ErrCorruptShare", true},
		{"ErrNotFound", true},
		{"Err", false},
		{"errLocal", false},
		{"Error", false},
		{"Errorf", false},
		{"ErrX", true},
	}
	for _, c := range cases {
		if got := isSentinelIdent(c.name); got != c.want {
			t.Errorf("isSentinelIdent(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%d then %v", "dv", true},
		{"%w after %v: %w", "wvw", true},
		{"100%% done %s", "s", true},
		{"%*d", "*d", true},
		{"%+v %-8s %#x", "vsx", true},
		{"%[1]d", "", false},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if string(verbs) != c.verbs || ok != c.ok {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, verbs, ok, c.verbs, c.ok)
		}
	}
}
