package lint

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture parses and type-checks a testdata directory under the
// given import path (the path controls sim-package scoping).
func loadFixture(t *testing.T, dir, path string) *Package {
	t.Helper()
	pkg, err := NewLoader().LoadDir(dir, path)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("load %s: no Go files", dir)
	}
	return pkg
}

// wantKey identifies an expected finding by file base name and line.
type wantKey struct {
	file string
	line int
}

// expectedFindings scans the fixture sources for "WANT(analyzer)"
// markers and returns the expected finding positions.
func expectedFindings(t *testing.T, dir, analyzer string) map[wantKey]bool {
	t.Helper()
	marker := "WANT(" + analyzer + ")"
	want := map[wantKey]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), marker) {
				want[wantKey{e.Name(), line}] = true
			}
		}
		f.Close()
	}
	return want
}

func pos(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// checkAgainstMarkers asserts that the analyzer reports exactly the
// marked positions: every WANT line is flagged and nothing else is.
func checkAgainstMarkers(t *testing.T, a *Analyzer, p *Package, dir string) {
	t.Helper()
	want := expectedFindings(t, dir, a.Name)
	if len(want) == 0 {
		t.Fatalf("fixture %s has no WANT(%s) markers", dir, a.Name)
	}
	got := a.Run(p)
	seen := map[wantKey]bool{}
	for _, f := range got {
		k := wantKey{filepath.Base(f.Pos.Filename), f.Pos.Line}
		if !want[k] {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		seen[k] = true
	}
	for k := range want {
		if !seen[k] {
			t.Errorf("missing finding at %s:%d (marked WANT(%s))", k.file, k.line, a.Name)
		}
	}
}

func fixtureDir(name string) string {
	return filepath.Join("testdata", name)
}

func TestAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("incomplete analyzer: %+v", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"simdeterminism", "locksafe", "goroutinehygiene", "floateq",
		"ctxcancel", "poollease", "errwrap", "obshygiene",
	} {
		if !names[want] {
			t.Fatalf("analyzer %q not registered", want)
		}
	}
}

func TestIsSimPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/sim", true},
		{"repro/internal/disk", true},
		{"repro/internal/ltcode", true},
		{"repro/internal/robust", false},
		{"repro/internal/transport", false},
		{"internal/sim", true},
		{"other/internal/simx", false},
	}
	for _, c := range cases {
		if got := IsSimPackage(c.path); got != c.want {
			t.Errorf("IsSimPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestSortFindingsOrders(t *testing.T) {
	fs := []Finding{
		{Analyzer: "b", Pos: pos("b.go", 3, 1)},
		{Analyzer: "a", Pos: pos("a.go", 9, 1)},
		{Analyzer: "a", Pos: pos("b.go", 3, 1)},
	}
	SortFindings(fs)
	order := fmt.Sprintf("%s/%d/%s %s/%d/%s %s/%d/%s",
		fs[0].Pos.Filename, fs[0].Pos.Line, fs[0].Analyzer,
		fs[1].Pos.Filename, fs[1].Pos.Line, fs[1].Analyzer,
		fs[2].Pos.Filename, fs[2].Pos.Line, fs[2].Analyzer)
	want := "a.go/9/a b.go/3/a b.go/3/b"
	if order != want {
		t.Fatalf("sort order = %s, want %s", order, want)
	}
}
