package lint

import "testing"

func TestFloatEqFixture(t *testing.T) {
	dir := fixtureDir("floateq")
	// Under a sim path, all ==/!= float comparisons in bad.go must be
	// flagged; the epsilon / zero-sentinel / ordered idioms in good.go
	// must stay clean.
	p := loadFixture(t, dir, "repro/internal/disk")
	checkAgainstMarkers(t, FloatEq, p, dir)
}

func TestFloatEqScopedToSimPackages(t *testing.T) {
	// Exact float comparison outside the deterministic sim packages is
	// not this analyzer's business.
	p := loadFixture(t, fixtureDir("floateq"), "repro/internal/metadata")
	if got := FloatEq.Run(p); len(got) != 0 {
		t.Fatalf("non-sim package flagged: %v", got)
	}
}
