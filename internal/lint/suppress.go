package lint

import (
	"go/ast"
	"strings"
)

// Suppression directives.
//
// A finding can be silenced at the site it fires with
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the flagged line itself (trailing comment) or on
// the line immediately above it. The analyzer name must be one of the
// registered analyzers and the reason must be non-empty: a
// suppression is a reviewed exception, and the reason is the review
// record. Directives that name an unknown analyzer or omit the reason
// are reported as findings themselves (analyzer "lint"), so a typo
// cannot silently disable a check.

// lintDirectivePrefix introduces a suppression comment.
const lintDirectivePrefix = "lint:ignore"

// suppressionAnalyzerName labels malformed-directive findings.
const suppressionAnalyzerName = "lint"

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzer string
	reason   string
}

// knownAnalyzers is the set of names a directive may target.
func knownAnalyzers() map[string]bool {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// fileSuppressions parses every //lint:ignore directive in f. It
// returns the well-formed directives keyed by the line they sit on,
// and a finding for each malformed one.
func fileSuppressions(p *Package, f *ast.File) (map[int][]suppression, []Finding) {
	known := knownAnalyzers()
	byLine := map[int][]suppression{}
	var bad []Finding
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, lintDirectivePrefix)
			if !ok {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				bad = append(bad, p.finding(suppressionAnalyzerName, c.Pos(),
					"malformed directive: want //lint:ignore <analyzer> <reason>"))
			case !known[fields[0]]:
				bad = append(bad, p.finding(suppressionAnalyzerName, c.Pos(),
					"directive names unknown analyzer %q", fields[0]))
			case len(fields) < 2:
				bad = append(bad, p.finding(suppressionAnalyzerName, c.Pos(),
					"directive for %q has no reason: a suppression must record why", fields[0]))
			default:
				byLine[line] = append(byLine[line], suppression{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return byLine, bad
}

// applySuppressions drops findings covered by a matching directive on
// the finding's line or the line above it, and appends findings for
// malformed directives. The input findings must all belong to p.
func applySuppressions(p *Package, findings []Finding) []Finding {
	type fileKey struct {
		file string
		line int
	}
	suppressed := map[fileKey]map[string]bool{}
	var out []Finding
	for _, f := range p.Files {
		byLine, bad := fileSuppressions(p, f)
		out = append(out, bad...)
		if len(byLine) == 0 {
			continue
		}
		file := p.Fset.Position(f.Pos()).Filename
		for line, sups := range byLine {
			for _, s := range sups {
				// A directive covers its own line and the next one.
				for _, l := range []int{line, line + 1} {
					k := fileKey{file, l}
					if suppressed[k] == nil {
						suppressed[k] = map[string]bool{}
					}
					suppressed[k][s.analyzer] = true
				}
			}
		}
	}
	for _, f := range findings {
		if m := suppressed[fileKey{f.Pos.Filename, f.Pos.Line}]; m != nil && m[f.Analyzer] {
			continue
		}
		out = append(out, f)
	}
	return out
}
