package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfLintRepoTree is the zero-findings gate: the repo's own
// source tree — library and tests — must lint clean under the full
// analyzer set. Any new finding is either a real bug to fix or a
// reviewed //lint:ignore with a reason; this test is what keeps that
// invariant from regressing between CI runs of cmd/robustore-lint.
func TestSelfLintRepoTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree source type-check is slow")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		t.Fatalf("read go.mod: %v", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		t.Fatal("module path not found in go.mod")
	}
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("PackageDirs found no Go packages under the repo root")
	}
	pkgs, err := LoadTree(root, modPath, dirs, LoadOptions{Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range RunTree(pkgs) {
		t.Errorf("unsuppressed finding: %s", f)
	}
}
