package health

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a deterministic manual clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestStateMachineConsecutiveFailures walks the Up → Suspect → Down
// ladder on the count thresholds alone, then rejoins on one success.
func TestStateMachineConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	tr := NewTracker(Options{SuspectAfter: 3, DownAfter: 5, DownTimeout: time.Hour, Now: clk.Now, Obs: reg})

	tr.Track("a")
	if got := tr.State("a"); got != Up {
		t.Fatalf("fresh server state = %v, want Up", got)
	}
	// Two failures: still Up (streak below SuspectAfter).
	tr.ReportFailure("a")
	tr.ReportFailure("a")
	if got := tr.State("a"); got != Up {
		t.Fatalf("after 2 failures state = %v, want Up", got)
	}
	// Third: Suspect.
	tr.ReportFailure("a")
	if got := tr.State("a"); got != Suspect {
		t.Fatalf("after 3 failures state = %v, want Suspect", got)
	}
	if tr.Excluded("a") {
		t.Fatal("Suspect server must stay in rotation")
	}
	// Fourth: still Suspect. Fifth: Down.
	tr.ReportFailure("a")
	if got := tr.State("a"); got != Suspect {
		t.Fatalf("after 4 failures state = %v, want Suspect", got)
	}
	tr.ReportFailure("a")
	if got := tr.State("a"); got != Down {
		t.Fatalf("after 5 failures state = %v, want Down", got)
	}
	if !tr.Excluded("a") {
		t.Fatal("Down server must be excluded")
	}
	// One success: straight back to Up, streak cleared.
	tr.ReportSuccess("a")
	if got := tr.State("a"); got != Up {
		t.Fatalf("after success state = %v, want Up", got)
	}
	// The streak reset: three more failures needed to re-suspect.
	tr.ReportFailure("a")
	tr.ReportFailure("a")
	if got := tr.State("a"); got != Up {
		t.Fatalf("streak did not reset on success: state = %v", got)
	}

	snap := reg.Snapshot()
	if snap.Counters["health_evictions_total"] != 1 {
		t.Fatalf("health_evictions_total = %d, want 1", snap.Counters["health_evictions_total"])
	}
	if snap.Counters["health_rejoins_total"] != 1 {
		t.Fatalf("health_rejoins_total = %d, want 1", snap.Counters["health_rejoins_total"])
	}
}

// TestStateMachineDownTimeout drives Suspect → Down on the timeout
// path: few failures, but a long quiet suspicion.
func TestStateMachineDownTimeout(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(Options{SuspectAfter: 2, DownAfter: 100, DownTimeout: 5 * time.Second, Now: clk.Now})

	tr.ReportFailure("b")
	tr.ReportFailure("b") // Suspect at t0
	if got := tr.State("b"); got != Suspect {
		t.Fatalf("state = %v, want Suspect", got)
	}
	// A failure just inside the window keeps it Suspect.
	clk.Advance(4 * time.Second)
	tr.ReportFailure("b")
	if got := tr.State("b"); got != Suspect {
		t.Fatalf("state = %v inside DownTimeout, want Suspect", got)
	}
	// Once the window lapses, the next observed failure evicts.
	clk.Advance(2 * time.Second)
	tr.ReportFailure("b")
	if got := tr.State("b"); got != Down {
		t.Fatalf("state = %v after DownTimeout, want Down", got)
	}
}

// TestStateMachineSharedThreshold covers SuspectAfter == DownAfter:
// one streak crosses both thresholds in a single report.
func TestStateMachineSharedThreshold(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracker(Options{SuspectAfter: 2, DownAfter: 2, Now: clk.Now})
	var transitions []State
	tr.OnChange(func(addr string, from, to State) { transitions = append(transitions, to) })
	tr.ReportFailure("c")
	tr.ReportFailure("c")
	if got := tr.State("c"); got != Down {
		t.Fatalf("state = %v, want Down", got)
	}
	if len(transitions) != 2 || transitions[0] != Suspect || transitions[1] != Down {
		t.Fatalf("transitions = %v, want [Suspect Down]", transitions)
	}
}

// TestSnapshotAndGauges checks the census the daemon and /metrics
// consume.
func TestSnapshotAndGauges(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	tr := NewTracker(Options{SuspectAfter: 1, DownAfter: 2, Now: clk.Now, Obs: reg})
	tr.Track("up1")
	tr.ReportFailure("sus1")
	tr.ReportFailure("down1")
	tr.ReportFailure("down1")

	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d servers, want 3", len(snap))
	}
	want := map[string]State{"down1": Down, "sus1": Suspect, "up1": Up}
	for _, sh := range snap {
		if sh.State != want[sh.Addr] {
			t.Fatalf("%s state = %v, want %v", sh.Addr, sh.State, want[sh.Addr])
		}
	}
	m := reg.Snapshot()
	if m.Gauges["health_servers_up"] != 1 || m.Gauges["health_servers_suspect"] != 1 || m.Gauges["health_servers_down"] != 1 {
		t.Fatalf("gauges = up %v suspect %v down %v, want 1/1/1",
			m.Gauges["health_servers_up"], m.Gauges["health_servers_suspect"], m.Gauges["health_servers_down"])
	}
	tr.Forget("down1")
	m = reg.Snapshot()
	if m.Gauges["health_servers_down"] != 0 {
		t.Fatalf("health_servers_down = %v after Forget, want 0", m.Gauges["health_servers_down"])
	}
}

// TestProberFeedsTracker runs real probe rounds against a flappable
// fake backend: eviction while it fails, rejoin when it recovers.
func TestProberFeedsTracker(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	tr := NewTracker(Options{SuspectAfter: 2, DownAfter: 3, Now: clk.Now, Obs: reg})

	var mu sync.Mutex
	healthy := map[string]bool{"s1": true, "s2": true}
	probe := func(ctx context.Context, addr string) error {
		mu.Lock()
		defer mu.Unlock()
		if healthy[addr] {
			return nil
		}
		return errors.New("connection refused")
	}
	targets := func() []string { return []string{"s1", "s2"} }
	p := NewProber(tr, targets, probe, ProberOptions{Interval: time.Hour, Obs: reg})

	ctx := context.Background()
	p.ProbeOnce(ctx)
	if tr.State("s1") != Up || tr.State("s2") != Up {
		t.Fatal("healthy servers not Up after a probe round")
	}
	mu.Lock()
	healthy["s2"] = false
	mu.Unlock()
	for i := 0; i < 3; i++ {
		p.ProbeOnce(ctx)
	}
	if got := tr.State("s2"); got != Down {
		t.Fatalf("s2 state = %v after 3 failed probes, want Down", got)
	}
	if got := tr.State("s1"); got != Up {
		t.Fatalf("s1 state = %v, want Up", got)
	}
	mu.Lock()
	healthy["s2"] = true
	mu.Unlock()
	p.ProbeOnce(ctx)
	if got := tr.State("s2"); got != Up {
		t.Fatalf("s2 state = %v after recovery probe, want Up", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["health_probes_total"] != 10 {
		t.Fatalf("health_probes_total = %d, want 10", snap.Counters["health_probes_total"])
	}
	if snap.Counters["health_probe_failures_total"] != 3 {
		t.Fatalf("health_probe_failures_total = %d, want 3", snap.Counters["health_probe_failures_total"])
	}
}

// TestProberStartStop exercises the ticker loop with real (short)
// intervals — the loop must probe at least twice and stop cleanly.
func TestProberStartStop(t *testing.T) {
	tr := NewTracker(Options{})
	var mu sync.Mutex
	probes := 0
	probe := func(ctx context.Context, addr string) error {
		mu.Lock()
		probes++
		mu.Unlock()
		return nil
	}
	p := NewProber(tr, func() []string { return []string{"x"} }, probe,
		ProberOptions{Interval: 2 * time.Millisecond})
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := probes
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never ran twice")
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
}

// TestConcurrentReports hammers one tracker from many goroutines —
// exists to run under -race.
func TestConcurrentReports(t *testing.T) {
	tr := NewTracker(Options{SuspectAfter: 2, DownAfter: 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if j%3 == 0 {
					tr.ReportSuccess("shared")
				} else {
					tr.ReportFailure("shared")
				}
				tr.State("shared")
				tr.Excluded("shared")
				tr.Snapshot()
			}
		}(i)
	}
	wg.Wait()
}
