package health

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// ProberOptions configure a Prober.
type ProberOptions struct {
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// Timeout bounds each individual probe (default Interval).
	Timeout time.Duration
	// Obs, when non-nil, receives health_probes_total and
	// health_probe_failures_total.
	Obs *obs.Registry
}

// Prober periodically probes every target server and feeds the
// outcomes to a Tracker — the active half of the failure detector,
// which keeps opinions fresh when the data path is idle and gives
// Down servers their road back to Up. Targets are re-resolved every
// round, so attach/detach is picked up live; Down servers stay in the
// probe rotation on purpose.
type Prober struct {
	tracker  *Tracker
	targets  func() []string
	probe    func(ctx context.Context, addr string) error
	interval time.Duration
	timeout  time.Duration

	probes   *obs.Counter
	failures *obs.Counter

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewProber builds a prober over a tracker. targets returns the
// addresses to probe (e.g. robust.(*Client).Servers); probe performs
// one liveness check (e.g. robust.(*Client).Probe — a transport PING
// for remote stores).
func NewProber(t *Tracker, targets func() []string, probe func(ctx context.Context, addr string) error, opts ProberOptions) *Prober {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = opts.Interval
	}
	return &Prober{
		tracker:  t,
		targets:  targets,
		probe:    probe,
		interval: opts.Interval,
		timeout:  opts.Timeout,
		probes:   opts.Obs.Counter("health_probes_total"),
		failures: opts.Obs.Counter("health_probe_failures_total"),
		stop:     make(chan struct{}),
	}
}

// ProbeOnce runs one probe round: every target is probed concurrently
// (a wedged server must not delay the others' verdicts) and the round
// joins before returning.
func (p *Prober) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, addr := range p.targets() {
		p.tracker.Track(addr)
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, p.timeout)
			defer cancel()
			err := p.probe(pctx, addr)
			p.probes.Inc()
			if err != nil {
				p.failures.Inc()
				p.tracker.ReportFailure(addr)
				return
			}
			p.tracker.ReportSuccess(addr)
		}(addr)
	}
	wg.Wait()
}

// Start launches the probe loop (one immediate round, then one per
// interval) until Stop.
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ticker := time.NewTicker(p.interval)
			defer ticker.Stop()
			p.ProbeOnce(ctx)
			for {
				select {
				case <-p.stop:
					return
				case <-ticker.C:
					p.ProbeOnce(ctx)
				}
			}
		}()
	})
}

// Stop halts the loop and waits for any in-flight round to join.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}
