// Package health is the failure detector of RobuSTore's self-healing
// control plane. The paper's speculative access (§4.2) masks slow and
// dead servers *per request*; this package gives the cluster a
// durable opinion about them, so the client can stop routing work at
// a dead server instead of re-discovering its death on every access,
// and the repair daemon knows whose blocks to regenerate.
//
// A Tracker keeps one Up → Suspect → Down state machine per server,
// fed by two signal sources: data-path round-trip outcomes (every
// PUT/GET the robust client performs) and the periodic PINGs of a
// Prober. Transitions are driven only by reported events — never by a
// background clock — so a test that injects a fake clock and a fixed
// event sequence replays transitions deterministically:
//
//   - Up → Suspect after SuspectAfter consecutive failures.
//   - Suspect → Down after DownAfter consecutive failures, or when
//     the server has been Suspect for DownTimeout without a single
//     success (whichever a reported failure observes first).
//   - any state → Up on one success: servers rejoin the moment a
//     probe or request lands.
//
// A Down server is excluded from write placement and read fan-out
// (see robust.Options.Health) but keeps being probed, which is how it
// rejoins. Suspect is advisory: the server stays in rotation — the
// speculative access paths already tolerate it — but the state is
// visible in metrics and to OnChange subscribers.
package health

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a server's health verdict.
type State int

// The detector states, ordered by degradation.
const (
	Up State = iota
	Suspect
	Down
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	default:
		return "unknown"
	}
}

// Options configure a Tracker.
type Options struct {
	// SuspectAfter is the consecutive-failure count that moves an Up
	// server to Suspect (default 3).
	SuspectAfter int
	// DownAfter is the consecutive-failure count that moves a Suspect
	// server to Down (default 6).
	DownAfter int
	// DownTimeout moves a Suspect server to Down when a failure is
	// reported after the server has been Suspect this long with no
	// intervening success (default 10s). Zero disables the timeout
	// path; the count threshold still applies.
	DownTimeout time.Duration
	// Now is the clock (default time.Now). Tests inject a fake clock
	// so timeout-driven transitions are deterministic.
	Now func() time.Time
	// Obs, when non-nil, receives health_* metrics: state gauges,
	// transition/eviction/rejoin counters.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 3
	}
	if o.DownAfter <= 0 {
		o.DownAfter = 6
	}
	if o.DownAfter < o.SuspectAfter {
		o.DownAfter = o.SuspectAfter
	}
	if o.DownTimeout == 0 {
		o.DownTimeout = 10 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// ServerHealth is one server's snapshot.
type ServerHealth struct {
	Addr         string
	State        State
	ConsecFails  int
	LastSuccess  time.Time // zero until the first success
	LastFailure  time.Time // zero until the first failure
	SuspectSince time.Time // zero unless currently Suspect or Down
}

// trackerMetrics are the detector's metric handles (nil/no-op without
// a registry). The gauges always reflect the current state census.
type trackerMetrics struct {
	transitions *obs.Counter
	evictions   *obs.Counter
	rejoins     *obs.Counter
	up          *obs.Gauge
	suspect     *obs.Gauge
	down        *obs.Gauge
}

func newTrackerMetrics(r *obs.Registry) trackerMetrics {
	return trackerMetrics{
		transitions: r.Counter("health_transitions_total"),
		evictions:   r.Counter("health_evictions_total"),
		rejoins:     r.Counter("health_rejoins_total"),
		up:          r.Gauge("health_servers_up"),
		suspect:     r.Gauge("health_servers_suspect"),
		down:        r.Gauge("health_servers_down"),
	}
}

// serverState is the per-server machine.
type serverState struct {
	state        State
	consecFails  int
	lastSuccess  time.Time
	lastFailure  time.Time
	suspectSince time.Time
}

// Tracker is the failure detector. Safe for concurrent use.
type Tracker struct {
	opts Options
	m    trackerMetrics

	mu      sync.Mutex
	servers map[string]*serverState
	subs    []func(addr string, from, to State)
}

// NewTracker returns an empty detector.
func NewTracker(opts Options) *Tracker {
	return &Tracker{
		opts:    opts.withDefaults(),
		m:       newTrackerMetrics(opts.Obs),
		servers: make(map[string]*serverState),
	}
}

// OnChange registers a callback invoked (outside the tracker's lock)
// on every state transition. Register before feeding events.
func (t *Tracker) OnChange(fn func(addr string, from, to State)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.subs = append(t.subs, fn)
}

// Track ensures addr has an entry, starting Up. Idempotent.
func (t *Tracker) Track(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensure(addr)
}

// Forget drops addr's entry (a decommissioned server).
func (t *Tracker) Forget(addr string) {
	t.mu.Lock()
	if _, ok := t.servers[addr]; ok {
		delete(t.servers, addr)
		t.setGauges()
	}
	t.mu.Unlock()
}

// ensure returns the entry for addr, creating it Up. Caller holds mu.
func (t *Tracker) ensure(addr string) *serverState {
	s, ok := t.servers[addr]
	if !ok {
		s = &serverState{state: Up}
		t.servers[addr] = s
		t.setGauges()
	}
	return s
}

// setGauges republishes the state census. Caller holds mu.
func (t *Tracker) setGauges() {
	var up, suspect, down int
	for _, s := range t.servers {
		switch s.state {
		case Up:
			up++
		case Suspect:
			suspect++
		case Down:
			down++
		}
	}
	t.m.up.Set(float64(up))
	t.m.suspect.Set(float64(suspect))
	t.m.down.Set(float64(down))
}

// transition moves addr from its current state to next, updating
// metrics and collecting subscriber calls. Caller holds mu; the
// returned func (possibly nil) must be invoked after unlocking.
func (t *Tracker) transition(addr string, s *serverState, next State) func() {
	from := s.state
	if from == next {
		return nil
	}
	s.state = next
	t.m.transitions.Inc()
	if next == Down {
		t.m.evictions.Inc()
	}
	if from == Down && next == Up {
		t.m.rejoins.Inc()
	}
	t.setGauges()
	subs := append([]func(addr string, from, to State){}, t.subs...)
	return func() {
		for _, fn := range subs {
			fn(addr, from, next)
		}
	}
}

// ReportSuccess records one successful round trip (request or probe):
// the failure streak resets and the server rejoins Up from any state.
func (t *Tracker) ReportSuccess(addr string) {
	t.mu.Lock()
	s := t.ensure(addr)
	s.consecFails = 0
	s.lastSuccess = t.opts.Now()
	s.suspectSince = time.Time{}
	notify := t.transition(addr, s, Up)
	t.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// ReportFailure records one failed round trip and applies the
// consecutive-failure and timeout thresholds.
func (t *Tracker) ReportFailure(addr string) {
	now := t.opts.Now()
	t.mu.Lock()
	s := t.ensure(addr)
	s.consecFails++
	s.lastFailure = now
	var notify func()
	switch s.state {
	case Up:
		if s.consecFails >= t.opts.SuspectAfter {
			s.suspectSince = now
			notify = t.transition(addr, s, Suspect)
			// With DownAfter == SuspectAfter one streak crosses both
			// thresholds; fall through to the Down check below.
			if s.consecFails >= t.opts.DownAfter {
				notify = chain(notify, t.transition(addr, s, Down))
			}
		}
	case Suspect:
		timedOut := t.opts.DownTimeout > 0 && now.Sub(s.suspectSince) >= t.opts.DownTimeout
		if s.consecFails >= t.opts.DownAfter || timedOut {
			notify = t.transition(addr, s, Down)
		}
	}
	t.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// chain composes two possibly-nil notification funcs in order.
func chain(a, b func()) func() {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return func() { a(); b() }
	}
}

// State returns addr's verdict; an untracked server is Up (innocent
// until a failure is reported).
func (t *Tracker) State(addr string) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.servers[addr]; ok {
		return s.state
	}
	return Up
}

// Excluded reports whether addr should be dropped from write
// placement and read fan-out: only Down servers are excluded. This is
// the robust.HealthTracker surface.
func (t *Tracker) Excluded(addr string) bool {
	return t.State(addr) == Down
}

// Snapshot returns every tracked server's health, sorted by address.
func (t *Tracker) Snapshot() []ServerHealth {
	t.mu.Lock()
	out := make([]ServerHealth, 0, len(t.servers))
	for addr, s := range t.servers {
		out = append(out, ServerHealth{
			Addr:         addr,
			State:        s.state,
			ConsecFails:  s.consecFails,
			LastSuccess:  s.lastSuccess,
			LastFailure:  s.lastFailure,
			SuspectSince: s.suspectSince,
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
