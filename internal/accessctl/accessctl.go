// Package accessctl implements the capability-style credential-chain
// access control of Appendix C: a resource administrator issues a
// signed credential to a user; that user can delegate a (possibly
// narrowed) credential to another user; a storage server verifies the
// whole chain against only the administrator's public key — no
// central ACL and no third-party trust, exactly the properties the
// appendix argues for.
//
// Signatures use Ed25519 from the standard library.
package accessctl

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Rights is a set of access rights, encoded as a string of single-
// letter flags in canonical order (subset of "RWXD": read, write,
// execute, delete).
type Rights string

// Has reports whether r includes every flag of want.
func (r Rights) Has(want Rights) bool {
	for _, f := range want {
		if !strings.ContainsRune(string(r), f) {
			return false
		}
	}
	return true
}

// normalize validates and canonicalizes a rights string.
func (r Rights) normalize() (Rights, error) {
	const order = "RWXD"
	var out []byte
	for _, f := range order {
		if strings.ContainsRune(string(r), f) {
			out = append(out, byte(f))
		}
	}
	for _, f := range r {
		if !strings.ContainsRune(order, f) {
			return "", fmt.Errorf("accessctl: unknown right %q", f)
		}
	}
	return Rights(out), nil
}

// Capability is what a credential grants: rights on a resource within
// a validity window (zero times mean unbounded).
type Capability struct {
	Resource  string // e.g. "robustore:segment/climate-2025"
	Rights    Rights
	NotBefore time.Time
	NotAfter  time.Time
}

// Credential is one signed link: Authorizer grants Licensee the
// Capability. Chain links are ordered root-first.
type Credential struct {
	Authorizer ed25519.PublicKey
	Licensee   ed25519.PublicKey
	Cap        Capability
	Signature  []byte // by Authorizer over the canonical encoding
}

// Chain is an ordered delegation chain; Chain[0] is signed by the
// resource administrator.
type Chain []Credential

// Errors returned by verification.
var (
	ErrBadSignature   = errors.New("accessctl: bad signature")
	ErrBrokenChain    = errors.New("accessctl: chain link licensee/authorizer mismatch")
	ErrRightsEscalate = errors.New("accessctl: delegation widens rights")
	ErrWrongResource  = errors.New("accessctl: credential for a different resource")
	ErrExpired        = errors.New("accessctl: credential outside its validity window")
	ErrDenied         = errors.New("accessctl: required right not granted")
	ErrWrongRoot      = errors.New("accessctl: chain not rooted at the administrator")
)

// signedMessage is the canonical byte encoding a credential signs.
func signedMessage(authorizer, licensee ed25519.PublicKey, cap Capability) []byte {
	var buf bytes.Buffer
	buf.WriteString("robustore-credential-v1\x00")
	writeBytes(&buf, authorizer)
	writeBytes(&buf, licensee)
	writeBytes(&buf, []byte(cap.Resource))
	writeBytes(&buf, []byte(cap.Rights))
	writeTime(&buf, cap.NotBefore)
	writeTime(&buf, cap.NotAfter)
	return buf.Bytes()
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	buf.Write(n[:])
	buf.Write(b)
}

func writeTime(buf *bytes.Buffer, t time.Time) {
	var n [8]byte
	var v int64
	if !t.IsZero() {
		v = t.UnixNano()
	}
	binary.BigEndian.PutUint64(n[:], uint64(v))
	buf.Write(n[:])
}

// Identity is a keypair participating in delegation.
type Identity struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// NewIdentity generates a fresh Ed25519 identity.
func NewIdentity() (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Identity{Public: pub, private: priv}, nil
}

// Issue signs a credential granting cap to licensee.
func (id *Identity) Issue(licensee ed25519.PublicKey, cap Capability) (Credential, error) {
	rights, err := cap.Rights.normalize()
	if err != nil {
		return Credential{}, err
	}
	cap.Rights = rights
	if cap.Resource == "" {
		return Credential{}, fmt.Errorf("accessctl: empty resource")
	}
	if len(licensee) != ed25519.PublicKeySize {
		return Credential{}, fmt.Errorf("accessctl: bad licensee key size")
	}
	msg := signedMessage(id.Public, licensee, cap)
	return Credential{
		Authorizer: id.Public,
		Licensee:   licensee,
		Cap:        cap,
		Signature:  ed25519.Sign(id.private, msg),
	}, nil
}

// Delegate extends a chain: the identity (which must be the last
// link's licensee) grants a possibly-narrowed capability to the next
// licensee. The new capability must not widen rights, broaden the
// resource, or extend the validity window.
func (id *Identity) Delegate(chain Chain, licensee ed25519.PublicKey, cap Capability) (Chain, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("accessctl: cannot delegate from an empty chain")
	}
	last := chain[len(chain)-1]
	if !last.Licensee.Equal(id.Public) {
		return nil, fmt.Errorf("accessctl: delegator is not the holder of the chain")
	}
	if cap.Resource != last.Cap.Resource {
		return nil, ErrWrongResource
	}
	if !last.Cap.Rights.Has(cap.Rights) {
		return nil, ErrRightsEscalate
	}
	if narrowedWindowViolation(last.Cap, cap) {
		return nil, fmt.Errorf("accessctl: delegation widens validity window")
	}
	cred, err := id.Issue(licensee, cap)
	if err != nil {
		return nil, err
	}
	out := append(Chain(nil), chain...)
	return append(out, cred), nil
}

func narrowedWindowViolation(parent, child Capability) bool {
	if !parent.NotBefore.IsZero() && (child.NotBefore.IsZero() || child.NotBefore.Before(parent.NotBefore)) {
		return true
	}
	if !parent.NotAfter.IsZero() && (child.NotAfter.IsZero() || child.NotAfter.After(parent.NotAfter)) {
		return true
	}
	return false
}

// Verify checks the whole chain: every signature valid, every link's
// authorizer equal to the previous link's licensee, rights only ever
// narrowing, resource constant, all validity windows containing
// `now`, and the final licensee equal to `holder` (the identity
// attempting access, which separately proves key possession at the
// session layer) with the required right granted end to end.
func Verify(chain Chain, root ed25519.PublicKey, holder ed25519.PublicKey,
	resource string, need Rights, now time.Time) error {
	if len(chain) == 0 {
		return fmt.Errorf("accessctl: empty chain")
	}
	if !chain[0].Authorizer.Equal(root) {
		return ErrWrongRoot
	}
	effective := chain[0].Cap.Rights
	for i, cred := range chain {
		if cred.Cap.Resource != resource {
			return ErrWrongResource
		}
		msg := signedMessage(cred.Authorizer, cred.Licensee, cred.Cap)
		if !ed25519.Verify(cred.Authorizer, msg, cred.Signature) {
			return fmt.Errorf("%w (link %d)", ErrBadSignature, i)
		}
		if i > 0 {
			if !chain[i-1].Licensee.Equal(cred.Authorizer) {
				return fmt.Errorf("%w (link %d)", ErrBrokenChain, i)
			}
			if !effective.Has(cred.Cap.Rights) {
				return fmt.Errorf("%w (link %d)", ErrRightsEscalate, i)
			}
		}
		if !cred.Cap.NotBefore.IsZero() && now.Before(cred.Cap.NotBefore) {
			return fmt.Errorf("%w (link %d)", ErrExpired, i)
		}
		if !cred.Cap.NotAfter.IsZero() && now.After(cred.Cap.NotAfter) {
			return fmt.Errorf("%w (link %d)", ErrExpired, i)
		}
		effective = cred.Cap.Rights
	}
	last := chain[len(chain)-1]
	if !last.Licensee.Equal(holder) {
		return fmt.Errorf("accessctl: chain ends at a different licensee")
	}
	if !effective.Has(need) {
		return ErrDenied
	}
	return nil
}
