package accessctl

import (
	"errors"
	"testing"
	"time"
)

const res = "robustore:segment/test"

func ids(t *testing.T, n int) []*Identity {
	t.Helper()
	out := make([]*Identity, n)
	for i := range out {
		id, err := NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = id
	}
	return out
}

func TestRightsHas(t *testing.T) {
	if !Rights("RWX").Has("R") || !Rights("RWX").Has("WX") || !Rights("RWX").Has("") {
		t.Fatal("Has false negatives")
	}
	if Rights("R").Has("W") || Rights("").Has("R") {
		t.Fatal("Has false positives")
	}
}

func TestRightsNormalize(t *testing.T) {
	r, err := Rights("XWR").normalize()
	if err != nil || r != "RWX" {
		t.Fatalf("normalize = %q, %v", r, err)
	}
	if _, err := Rights("RQ").normalize(); err == nil {
		t.Fatal("unknown right accepted")
	}
}

func TestSingleLinkChain(t *testing.T) {
	people := ids(t, 2)
	admin, alice := people[0], people[1]
	cred, err := admin.Issue(alice.Public, Capability{Resource: res, Rights: "RW"})
	if err != nil {
		t.Fatal(err)
	}
	chain := Chain{cred}
	now := time.Now()
	if err := Verify(chain, admin.Public, alice.Public, res, "R", now); err != nil {
		t.Fatal(err)
	}
	if err := Verify(chain, admin.Public, alice.Public, res, "RW", now); err != nil {
		t.Fatal(err)
	}
	if err := Verify(chain, admin.Public, alice.Public, res, "X", now); !errors.Is(err, ErrDenied) {
		t.Fatalf("ungranted right = %v", err)
	}
}

func TestTwoLevelDelegation(t *testing.T) {
	people := ids(t, 3)
	admin, alice, bob := people[0], people[1], people[2]
	root, err := admin.Issue(alice.Public, Capability{Resource: res, Rights: "RWX"})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := alice.Delegate(Chain{root}, bob.Public, Capability{Resource: res, Rights: "R"})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := Verify(chain, admin.Public, bob.Public, res, "R", now); err != nil {
		t.Fatal(err)
	}
	// Bob only got R even though Alice had RWX.
	if err := Verify(chain, admin.Public, bob.Public, res, "W", now); !errors.Is(err, ErrDenied) {
		t.Fatalf("escalated right = %v", err)
	}
	// Alice can't be verified as the holder of Bob's chain.
	if err := Verify(chain, admin.Public, alice.Public, res, "R", now); err == nil {
		t.Fatal("wrong holder accepted")
	}
}

func TestDelegationCannotEscalate(t *testing.T) {
	people := ids(t, 3)
	admin, alice, bob := people[0], people[1], people[2]
	root, _ := admin.Issue(alice.Public, Capability{Resource: res, Rights: "R"})
	if _, err := alice.Delegate(Chain{root}, bob.Public,
		Capability{Resource: res, Rights: "RW"}); !errors.Is(err, ErrRightsEscalate) {
		t.Fatalf("escalating delegation = %v", err)
	}
	if _, err := alice.Delegate(Chain{root}, bob.Public,
		Capability{Resource: "other", Rights: "R"}); !errors.Is(err, ErrWrongResource) {
		t.Fatalf("resource switch = %v", err)
	}
	// Bob (not the holder) cannot delegate Alice's chain.
	if _, err := bob.Delegate(Chain{root}, bob.Public,
		Capability{Resource: res, Rights: "R"}); err == nil {
		t.Fatal("non-holder delegation accepted")
	}
}

func TestValidityWindows(t *testing.T) {
	people := ids(t, 2)
	admin, alice := people[0], people[1]
	now := time.Now()
	cred, _ := admin.Issue(alice.Public, Capability{
		Resource: res, Rights: "R",
		NotBefore: now.Add(-time.Hour), NotAfter: now.Add(time.Hour),
	})
	chain := Chain{cred}
	if err := Verify(chain, admin.Public, alice.Public, res, "R", now); err != nil {
		t.Fatal(err)
	}
	if err := Verify(chain, admin.Public, alice.Public, res, "R", now.Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired = %v", err)
	}
	if err := Verify(chain, admin.Public, alice.Public, res, "R", now.Add(-2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("premature = %v", err)
	}
}

func TestDelegationCannotWidenWindow(t *testing.T) {
	people := ids(t, 3)
	admin, alice, bob := people[0], people[1], people[2]
	now := time.Now()
	root, _ := admin.Issue(alice.Public, Capability{
		Resource: res, Rights: "R", NotAfter: now.Add(time.Hour),
	})
	if _, err := alice.Delegate(Chain{root}, bob.Public, Capability{
		Resource: res, Rights: "R", NotAfter: now.Add(48 * time.Hour),
	}); err == nil {
		t.Fatal("widened window accepted")
	}
	if _, err := alice.Delegate(Chain{root}, bob.Public, Capability{
		Resource: res, Rights: "R", NotAfter: now.Add(time.Minute),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedSignature(t *testing.T) {
	people := ids(t, 2)
	admin, alice := people[0], people[1]
	cred, _ := admin.Issue(alice.Public, Capability{Resource: res, Rights: "R"})
	cred.Cap.Rights = "RWXD" // tamper after signing
	if err := Verify(Chain{cred}, admin.Public, alice.Public, res, "D", time.Now()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered credential = %v", err)
	}
}

func TestWrongRootRejected(t *testing.T) {
	people := ids(t, 3)
	admin, fake, alice := people[0], people[1], people[2]
	cred, _ := fake.Issue(alice.Public, Capability{Resource: res, Rights: "R"})
	if err := Verify(Chain{cred}, admin.Public, alice.Public, res, "R", time.Now()); !errors.Is(err, ErrWrongRoot) {
		t.Fatalf("foreign root = %v", err)
	}
}

func TestBrokenChainRejected(t *testing.T) {
	people := ids(t, 4)
	admin, alice, bob, eve := people[0], people[1], people[2], people[3]
	root, _ := admin.Issue(alice.Public, Capability{Resource: res, Rights: "R"})
	// Eve forges a second link signed by herself instead of Alice.
	forged, _ := eve.Issue(bob.Public, Capability{Resource: res, Rights: "R"})
	chain := Chain{root, forged}
	if err := Verify(chain, admin.Public, bob.Public, res, "R", time.Now()); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("broken chain = %v", err)
	}
}

func TestEmptyChain(t *testing.T) {
	people := ids(t, 1)
	if err := Verify(nil, people[0].Public, people[0].Public, res, "R", time.Now()); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestIssueValidation(t *testing.T) {
	people := ids(t, 2)
	if _, err := people[0].Issue(people[1].Public, Capability{Rights: "R"}); err == nil {
		t.Fatal("empty resource accepted")
	}
	if _, err := people[0].Issue([]byte{1, 2}, Capability{Resource: res, Rights: "R"}); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestThreeLevelChain(t *testing.T) {
	people := ids(t, 4)
	admin, a, b, c := people[0], people[1], people[2], people[3]
	root, _ := admin.Issue(a.Public, Capability{Resource: res, Rights: "RWXD"})
	chain, err := a.Delegate(Chain{root}, b.Public, Capability{Resource: res, Rights: "RW"})
	if err != nil {
		t.Fatal(err)
	}
	chain, err = b.Delegate(chain, c.Public, Capability{Resource: res, Rights: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(chain, admin.Public, c.Public, res, "R", time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := Verify(chain, admin.Public, c.Public, res, "W", time.Now()); !errors.Is(err, ErrDenied) {
		t.Fatalf("narrowing not enforced: %v", err)
	}
}
