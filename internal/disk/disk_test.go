package disk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.SectorSize = 0 },
		func(p *Params) { p.RPM = -1 },
		func(p *Params) { p.MinMediaRate = 0 },
		func(p *Params) { p.MaxMediaRate = p.MinMediaRate - 1 },
		func(p *Params) { p.SeekMin = -1 },
		func(p *Params) { p.SeekMax = p.SeekMin / 2 },
		func(p *Params) { p.RegionFracMin = 0 },
		func(p *Params) { p.RegionFracMax = p.RegionFracMin / 2 },
		func(p *Params) { p.RegionFracMax = 1.5 },
		func(p *Params) { p.ControllerOverhead = -1 },
		func(p *Params) { p.TrackBytes = 0 },
		func(p *Params) { p.BgSchedulingGain = 0 },
		func(p *Params) { p.BgSchedulingGain = 1.1 },
	}
	for i, mut := range bad {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLayoutValidate(t *testing.T) {
	if err := (Layout{BlockingFactor: 8, PSeq: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, l := range []Layout{{0, 0}, {8, -0.1}, {8, 1.1}} {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %+v accepted", l)
		}
	}
}

func TestRandomLayoutDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	valid := map[int]bool{}
	for _, bf := range BlockingFactors {
		valid[bf] = true
	}
	for i := 0; i < 200; i++ {
		l := RandomLayout(rng)
		if !valid[l.BlockingFactor] {
			t.Fatalf("blocking factor %d not in table", l.BlockingFactor)
		}
		//lint:ignore floateq PSeq is drawn from the literal set {0,1}; membership is exact
		if l.PSeq != 0 && l.PSeq != 1 {
			t.Fatalf("PSeq %v not in {0,1}", l.PSeq)
		}
	}
}

func TestServeRequestBasics(t *testing.T) {
	d := MustDrive(DefaultParams(), Layout{BlockingFactor: 128, PSeq: 0}, Background{}, 1)
	start, end := d.ServeRequest(0, 1<<20)
	if start != 0 {
		t.Fatalf("start = %v, want 0 on idle drive", start)
	}
	if end <= start {
		t.Fatalf("end %v <= start %v", end, start)
	}
	// A later request starts no earlier than its arrival.
	s2, e2 := d.ServeRequest(end+5, 1<<20)
	if s2 < end+5 {
		t.Fatalf("second request started at %v before arrival %v", s2, end+5)
	}
	if e2 <= s2 {
		t.Fatal("second request has zero duration")
	}
	st := d.Stats()
	if st.FgBytes != 2<<20 {
		t.Fatalf("FgBytes = %d, want %d", st.FgBytes, 2<<20)
	}
	if st.BgBytes != 0 || st.BgRequests != 0 {
		t.Fatal("background activity on a drive with no stream")
	}
}

func TestServeRequestZeroBytesPanics(t *testing.T) {
	d := MustDrive(DefaultParams(), Layout{BlockingFactor: 8, PSeq: 0}, Background{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-byte request did not panic")
		}
	}()
	d.ServeRequest(0, 0)
}

func TestSequentialFasterThanRandom(t *testing.T) {
	const size = 8 << 20
	for _, bf := range BlockingFactors {
		seq := MustDrive(DefaultParams(), Layout{bf, 1}, Background{}, 42)
		rnd := MustDrive(DefaultParams(), Layout{bf, 0}, Background{}, 42)
		bs := seq.StandaloneBandwidth(size)
		br := rnd.StandaloneBandwidth(size)
		if bs <= br {
			t.Errorf("BF=%d: sequential %v not faster than random %v", bf, bs, br)
		}
	}
}

func TestBandwidthMonotoneInBlockingFactor(t *testing.T) {
	// Table 6-1 shape: within each PSeq row, bandwidth grows with BF.
	grid := CalibrationGrid(DefaultParams(), 8, 16<<20, 7)
	for row := 0; row < 2; row++ {
		for i := 1; i < len(grid[row]); i++ {
			if grid[row][i].BandwidthMBps <= grid[row][i-1].BandwidthMBps {
				t.Errorf("row %d: bandwidth not monotone at BF=%d (%v <= %v)",
					row, grid[row][i].Layout.BlockingFactor,
					grid[row][i].BandwidthMBps, grid[row][i-1].BandwidthMBps)
			}
		}
	}
}

func TestCalibrationSpanAndMean(t *testing.T) {
	// Paper: ~100-fold spread (0.52 .. 53 MBps) and grid mean ~14.9.
	grid := CalibrationGrid(DefaultParams(), 10, 16<<20, 3)
	lo := grid[0][0].BandwidthMBps              // random, BF=8
	hi := grid[1][len(grid[1])-1].BandwidthMBps // sequential, BF=1024
	if lo > 1.5 || lo < 0.1 {
		t.Errorf("slowest cell %v MBps; paper has 0.52", lo)
	}
	if hi < 25 || hi > 90 {
		t.Errorf("fastest cell %v MBps; paper has 53", hi)
	}
	if hi/lo < 30 {
		t.Errorf("bandwidth spread %vx; paper has ~100x", hi/lo)
	}
	mean := MeanGridBandwidthMBps(grid)
	if mean < 7 || mean > 30 {
		t.Errorf("grid mean %v MBps; paper has 14.9", mean)
	}
}

func TestZoneVariation(t *testing.T) {
	// Same layout, different seeds → media rate varies up to ~2x.
	lay := Layout{BlockingFactor: 1024, PSeq: 1}
	minR, maxR := 1e18, 0.0
	for seed := int64(0); seed < 50; seed++ {
		d := MustDrive(DefaultParams(), lay, Background{}, seed)
		r := d.MediaRate()
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR/minR < 1.3 {
		t.Fatalf("zone variation only %vx; expected up to ~2x", maxR/minR)
	}
	p := DefaultParams()
	if maxR > p.MaxMediaRate || minR < p.MinMediaRate {
		t.Fatal("media rate outside configured zone range")
	}
}

func TestBackgroundUtilizationDecreasesWithInterval(t *testing.T) {
	p := DefaultParams()
	sweep := BackgroundSweep(p, []float64{6, 20, 50, 100, 200}, 4, 64<<20, 11)
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Utilization >= sweep[i-1].Utilization {
			t.Errorf("bg utilization not decreasing: %v then %v",
				sweep[i-1].Utilization, sweep[i].Utilization)
		}
		if sweep[i].ForegroundMBps <= sweep[i-1].ForegroundMBps {
			t.Errorf("fg bandwidth not increasing with interval: %v then %v",
				sweep[i-1].ForegroundMBps, sweep[i].ForegroundMBps)
		}
	}
	// Paper calibration: ~93% utilization at 6 ms.
	if sweep[0].Utilization < 0.75 || sweep[0].Utilization > 1.0 {
		t.Errorf("utilization at 6ms = %v; paper has ~0.93", sweep[0].Utilization)
	}
	last := sweep[len(sweep)-1]
	if last.Utilization > 0.2 {
		t.Errorf("utilization at 200ms = %v; expected small", last.Utilization)
	}
}

func TestBackgroundInterferesWithForeground(t *testing.T) {
	lay := Layout{BlockingFactor: 512, PSeq: 1}
	free := MustDrive(DefaultParams(), lay, Background{}, 5)
	busy := MustDrive(DefaultParams(), lay, Background{Interval: 0.006, Sectors: 50}, 5)
	bwFree := free.StandaloneBandwidth(32 << 20)
	bwBusy := busy.StandaloneBandwidth(32 << 20)
	if bwBusy >= bwFree/2 {
		t.Fatalf("heavy background barely slowed foreground: %v vs %v", bwBusy, bwFree)
	}
}

func TestIdleServesBackground(t *testing.T) {
	d := MustDrive(DefaultParams(), Layout{512, 1}, Background{Interval: 0.01, Sectors: 50}, 9)
	d.Idle(10)
	st := d.Stats()
	if st.BgRequests == 0 {
		t.Fatal("no background requests served while idle")
	}
	// ~10s / 10ms = ~1000 arrivals; allow wide tolerance.
	if st.BgRequests < 500 || st.BgRequests > 2000 {
		t.Fatalf("BgRequests = %d, want ~1000", st.BgRequests)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("utilization %v out of range", st.Utilization)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	mk := func() (float64, float64) {
		d := MustDrive(DefaultParams(), Layout{64, 0}, Background{Interval: 0.02, Sectors: 50}, 77)
		return d.ServeRequest(0.5, 4<<20)
	}
	s1, e1 := mk()
	s2, e2 := mk()
	//lint:ignore floateq determinism check: two identical runs must be bit-exact
	if s1 != s2 || e1 != e2 {
		t.Fatalf("drive not deterministic: (%v,%v) vs (%v,%v)", s1, e1, s2, e2)
	}
}

func TestQuickServeInvariants(t *testing.T) {
	f := func(seed int64, bfIdx uint8, pseqBit, withBg bool, kb uint16) bool {
		bf := BlockingFactors[int(bfIdx)%len(BlockingFactors)]
		pseq := 0.0
		if pseqBit {
			pseq = 1
		}
		bg := Background{}
		if withBg {
			bg = Background{Interval: 0.05, Sectors: 50}
		}
		d := MustDrive(DefaultParams(), Layout{bf, pseq}, bg, seed)
		bytes := int64(kb%2048+1) << 10
		prevEnd := 0.0
		for i := 0; i < 5; i++ {
			arrival := prevEnd + float64(i)*0.001
			start, end := d.ServeRequest(arrival, bytes)
			if start < arrival || end <= start {
				return false
			}
			if start < prevEnd { // head can't time travel
				return false
			}
			prevEnd = end
		}
		st := d.Stats()
		return st.FgBytes == 5*bytes && st.Busy > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkServe1MBBlocks(b *testing.B) {
	d := MustDrive(DefaultParams(), Layout{64, 0}, Background{Interval: 0.05, Sectors: 50}, 1)
	arrival := 0.0
	for i := 0; i < b.N; i++ {
		_, end := d.ServeRequest(arrival, 1<<20)
		arrival = end
	}
}
