// Package disk models the service-time behaviour of a hard disk drive
// at the level the RobuSTore evaluation exercises it: zoned media
// transfer rates, a seek-time curve, rotational latency, per-request
// controller overhead, the (blocking factor × P(sequential)) in-disk
// layout model of §6.2.5, and interleaved competitive background
// request streams (Fig 6-5). It replaces the paper's DiskSim-based
// virtual disk; the calibration targets are Table 6-1's average
// bandwidth grid (≈0.5 → ≈50 MBps, a ~100x spread) and Fig 6-5's
// background-utilization response.
//
// A Drive serves foreground block requests sequentially (the virtual
// filer issues micro-requests closed-loop), interleaving background
// requests that arrive in the meantime — so foreground throughput
// degrades to roughly the idle fraction left by the competing stream,
// exactly the contention behaviour the paper studies.
package disk

import (
	"fmt"
	"math"
	"math/rand"
)

// Params describes the physical drive model. DefaultParams is
// calibrated against Table 6-1 (an IBM Deskstar 7K400-era commodity
// SATA drive: 7200 rpm, ~60-80 MB/s media).
type Params struct {
	SectorSize int     // bytes per sector
	RPM        float64 // spindle speed

	// Media transfer rate by zone: the outermost zone reads at
	// MaxMediaRate bytes/s, the innermost at MinMediaRate; a workload
	// region placed at cylinder fraction z gets a linear interpolation.
	MinMediaRate float64
	MaxMediaRate float64

	// Seek curve: seekTime(d) = SeekMin + (SeekMax-SeekMin)*sqrt(d)
	// for a seek spanning fraction d of the cylinders.
	SeekMin float64
	SeekMax float64

	// A workload's data spans a contiguous region of the cylinder
	// space; random micro-requests seek within it. Each drive draws
	// its region span uniformly from [RegionFracMin, RegionFracMax] —
	// poorly laid-out files span more cylinders and seek further,
	// which is a second source of per-drive performance variation
	// beyond the zone (media-rate) draw.
	RegionFracMin float64
	RegionFracMax float64

	// ControllerOverhead is the fixed command-processing cost charged
	// to every micro-request (bus, controller, head settle).
	ControllerOverhead float64

	// TrackBytes and TrackSwitch model head/track switches during long
	// transfers: every TrackBytes transferred costs one TrackSwitch.
	TrackBytes  int
	TrackSwitch float64

	// BgSchedulingGain scales the positioning cost of background
	// requests (<1 models the on-disk scheduler shortening seeks by
	// reordering its queued stream).
	BgSchedulingGain float64

	// BgMaxQueueDelay bounds how long a background request may queue
	// before its initiator gives up (the arrival is dropped). Real
	// competing clients keep a bounded number of requests outstanding;
	// without this bound, a drive whose background service cost
	// exceeds the arrival interval starves the foreground forever.
	BgMaxQueueDelay float64
}

// DefaultParams returns the calibrated drive model.
func DefaultParams() Params {
	return Params{
		SectorSize:         512,
		RPM:                7200,
		MinMediaRate:       40e6,
		MaxMediaRate:       80e6,
		SeekMin:            0.8e-3,
		SeekMax:            15e-3,
		RegionFracMin:      0.005,
		RegionFracMax:      0.06,
		ControllerOverhead: 1.0e-3,
		TrackBytes:         460 << 10,
		TrackSwitch:        0.8e-3,
		BgSchedulingGain:   0.7,
		BgMaxQueueDelay:    0.1,
	}
}

// Validate reports whether the parameters are physically sensible.
func (p Params) Validate() error {
	switch {
	case p.SectorSize <= 0:
		return fmt.Errorf("disk: SectorSize must be positive")
	case p.RPM <= 0:
		return fmt.Errorf("disk: RPM must be positive")
	case p.MinMediaRate <= 0 || p.MaxMediaRate < p.MinMediaRate:
		return fmt.Errorf("disk: media rates invalid")
	case p.SeekMin < 0 || p.SeekMax < p.SeekMin:
		return fmt.Errorf("disk: seek curve invalid")
	case p.RegionFracMin <= 0 || p.RegionFracMax < p.RegionFracMin || p.RegionFracMax > 1:
		return fmt.Errorf("disk: region fraction range must satisfy 0 < min <= max <= 1")
	case p.ControllerOverhead < 0:
		return fmt.Errorf("disk: ControllerOverhead must be >= 0")
	case p.TrackBytes <= 0 || p.TrackSwitch < 0:
		return fmt.Errorf("disk: track model invalid")
	case p.BgSchedulingGain <= 0 || p.BgSchedulingGain > 1:
		return fmt.Errorf("disk: BgSchedulingGain must be in (0,1]")
	case p.BgMaxQueueDelay < 0:
		return fmt.Errorf("disk: BgMaxQueueDelay must be >= 0")
	}
	return nil
}

// RotationPeriod returns one spindle revolution in seconds.
func (p Params) RotationPeriod() float64 { return 60 / p.RPM }

// Layout is the per-workload in-disk data layout model of §6.2.5: a
// macro request is served as micro-requests of BlockingFactor sectors,
// each sequential to its predecessor with probability PSeq.
type Layout struct {
	BlockingFactor int
	PSeq           float64
}

// Validate reports whether the layout is usable.
func (l Layout) Validate() error {
	if l.BlockingFactor < 1 {
		return fmt.Errorf("disk: BlockingFactor must be >= 1")
	}
	if l.PSeq < 0 || l.PSeq > 1 {
		return fmt.Errorf("disk: PSeq must be in [0,1]")
	}
	return nil
}

// BlockingFactors are the values swept by Table 6-1.
var BlockingFactors = []int{8, 16, 32, 64, 128, 256, 512, 1024}

// RandomLayout draws the heterogeneous-layout configuration of §6.2.5:
// a blocking factor uniformly from BlockingFactors and PSeq ∈ {0, 1}.
func RandomLayout(rng *rand.Rand) Layout {
	return Layout{
		BlockingFactor: BlockingFactors[rng.Intn(len(BlockingFactors))],
		PSeq:           float64(rng.Intn(2)),
	}
}

// Background describes a competitive request stream sharing the drive
// (§6.2.4): mid-size random requests with exponential inter-arrival.
type Background struct {
	Interval float64 // mean inter-arrival in seconds; <=0 disables
	Sectors  int     // request size in sectors (paper: ~50)
}

// Enabled reports whether the stream generates requests.
func (b Background) Enabled() bool { return b.Interval > 0 && b.Sectors > 0 }

// Drive is one simulated disk with its own clock, workload region
// (zone), layout, and background stream. Not safe for concurrent use.
type Drive struct {
	p   Params
	lay Layout
	bg  Background
	rng *rand.Rand

	clock      float64 // drive-local time: when the head is next free
	nextBg     float64 // next background arrival
	mediaRate  float64 // bytes/s for this drive's workload region
	zone       float64 // cylinder fraction of the region
	regionFrac float64 // cylinder span of this drive's workload region

	busy       float64 // total time spent serving any request
	bgBusy     float64 // time spent on background requests
	fgBytes    int64
	bgBytes    int64
	fgRequests int64
	bgRequests int64
	bgDropped  int64
}

// NewDrive creates a drive with the given model, layout, background
// stream, and RNG seed. The workload region (zone) is drawn from the
// RNG, making the media rate of otherwise-identical drives vary by up
// to MaxMediaRate/MinMediaRate (§6.3.2: "accesses to different disk
// zones achieve different performance").
func NewDrive(p Params, lay Layout, bg Background, seed int64) (*Drive, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Drive{p: p, lay: lay, bg: bg, rng: rng}
	d.zone = rng.Float64()
	d.mediaRate = p.MaxMediaRate - (p.MaxMediaRate-p.MinMediaRate)*d.zone
	d.regionFrac = p.RegionFracMin + rng.Float64()*(p.RegionFracMax-p.RegionFracMin)
	if bg.Enabled() {
		d.nextBg = d.expInterval()
	}
	return d, nil
}

// MustDrive is NewDrive that panics on error (for tests and internal
// construction from validated configs).
func MustDrive(p Params, lay Layout, bg Background, seed int64) *Drive {
	d, err := NewDrive(p, lay, bg, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// Layout returns the drive's configured layout.
func (d *Drive) Layout() Layout { return d.lay }

// MediaRate returns the zone-dependent media transfer rate in bytes/s.
func (d *Drive) MediaRate() float64 { return d.mediaRate }

// Clock returns the drive-local time at which the head is next free.
func (d *Drive) Clock() float64 { return d.clock }

func (d *Drive) expInterval() float64 {
	return d.rng.ExpFloat64() * d.bg.Interval
}

// seekTime returns the time for a seek spanning cylinder fraction
// dist.
func (d *Drive) seekTime(dist float64) float64 {
	return d.p.SeekMin + (d.p.SeekMax-d.p.SeekMin)*math.Sqrt(dist)
}

// positioning samples seek + rotational latency for a random
// micro-request within the workload region.
func (d *Drive) positioning() float64 {
	dist := d.rng.Float64() * d.regionFrac
	return d.seekTime(dist) + d.rng.Float64()*d.p.RotationPeriod()
}

// transfer returns the media time to move n bytes including amortized
// track switches.
func (d *Drive) transfer(bytes int64) float64 {
	t := float64(bytes) / d.mediaRate
	t += float64(bytes) / float64(d.p.TrackBytes) * d.p.TrackSwitch
	return t
}

// microCost returns the cost of one foreground micro-request.
func (d *Drive) microCost(bytes int64, sequential bool) float64 {
	t := d.p.ControllerOverhead
	if !sequential {
		t += d.positioning()
	}
	return t + d.transfer(bytes)
}

// bgCost returns the cost of one background request.
func (d *Drive) bgCost() float64 {
	pos := (d.p.ControllerOverhead + d.positioning()) * d.p.BgSchedulingGain
	return pos + d.transfer(int64(d.bg.Sectors)*int64(d.p.SectorSize))
}

// serveBackgroundUntil serves pending background arrivals strictly
// before time limit, advancing the drive clock. Arrivals that occur
// while the head is busy queue and are served in order.
func (d *Drive) serveBackgroundUntil(limit float64) {
	if !d.bg.Enabled() {
		return
	}
	for d.nextBg < limit {
		start := d.clock
		if d.nextBg > start {
			start = d.nextBg
		}
		// A request queued past the initiator's patience is abandoned.
		if d.p.BgMaxQueueDelay > 0 && start-d.nextBg > d.p.BgMaxQueueDelay {
			d.bgDropped++
			d.nextBg += d.expInterval()
			continue
		}
		cost := d.bgCost()
		d.clock = start + cost
		d.busy += cost
		d.bgBusy += cost
		d.bgBytes += int64(d.bg.Sectors) * int64(d.p.SectorSize)
		d.bgRequests++
		d.nextBg += d.expInterval()
	}
}

// ServeRequest serves a foreground request of `bytes` that becomes
// available to the drive at `arrival` (drive-local time). It returns
// the start and completion times. Background requests that arrived
// earlier are served first; further background arrivals interleave
// between the request's micro-requests (closed-loop issue).
func (d *Drive) ServeRequest(arrival float64, bytes int64) (start, end float64) {
	if bytes <= 0 {
		panic("disk: ServeRequest with non-positive size")
	}
	// Drain background work that precedes this request.
	d.serveBackgroundUntil(arrival)
	if d.clock < arrival {
		d.clock = arrival
	}
	start = d.clock
	micro := int64(d.lay.BlockingFactor) * int64(d.p.SectorSize)
	remaining := bytes
	first := true
	for remaining > 0 {
		// Background requests already due jump the closed-loop
		// foreground stream.
		d.serveBackgroundUntil(d.clock)
		n := micro
		if n > remaining {
			n = remaining
		}
		sequential := !first && d.rng.Float64() < d.lay.PSeq
		cost := d.microCost(n, sequential)
		d.clock += cost
		d.busy += cost
		d.fgBytes += n
		d.fgRequests++
		remaining -= n
		first = false
	}
	return start, d.clock
}

// Idle advances the drive to time t serving only background work —
// used to account utilization when the foreground is absent.
func (d *Drive) Idle(t float64) {
	d.serveBackgroundUntil(t)
	if d.clock < t {
		d.clock = t
	}
}

// Stats reports accumulated drive activity.
type Stats struct {
	Busy        float64
	BgBusy      float64
	FgBytes     int64
	BgBytes     int64
	FgRequests  int64
	BgRequests  int64
	BgDropped   int64   // background arrivals abandoned by their initiator
	Utilization float64 // busy time / clock
	BgShare     float64 // bg busy / clock
}

// Stats returns the drive's accumulated counters.
func (d *Drive) Stats() Stats {
	s := Stats{
		Busy: d.busy, BgBusy: d.bgBusy,
		FgBytes: d.fgBytes, BgBytes: d.bgBytes,
		FgRequests: d.fgRequests, BgRequests: d.bgRequests,
		BgDropped: d.bgDropped,
	}
	if d.clock > 0 {
		s.Utilization = d.busy / d.clock
		s.BgShare = d.bgBusy / d.clock
	}
	return s
}

// StandaloneBandwidth estimates the drive's foreground bandwidth in
// bytes/s by serving `total` bytes from time 0 with no competing
// foreground (background still interferes if configured).
func (d *Drive) StandaloneBandwidth(total int64) float64 {
	start, end := d.ServeRequest(0, total)
	if end <= start {
		return 0
	}
	return float64(total) / (end - start)
}
