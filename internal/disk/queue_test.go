package disk

import (
	"testing"

	"repro/internal/sim"
)

func newQueueFixture(bg Background) (*sim.Kernel, *QueueServer) {
	k := sim.New()
	d := MustDrive(DefaultParams(), Layout{BlockingFactor: 256, PSeq: 1}, bg, 1)
	return k, NewQueueServer(k, d)
}

func TestQueueServesFCFS(t *testing.T) {
	k, q := newQueueFixture(Background{})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if _, err := q.Submit(1<<20, func(start, end float64) {
			order = append(order, i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v not FCFS", order)
		}
	}
	served, dropped := q.Stats()
	if served != 5 || dropped != 0 {
		t.Fatalf("stats = %d/%d", served, dropped)
	}
}

func TestQueueCompletionTimesMonotone(t *testing.T) {
	k, q := newQueueFixture(Background{})
	var ends []float64
	for i := 0; i < 8; i++ {
		q.Submit(512<<10, func(start, end float64) {
			if end <= start {
				t.Errorf("end %v <= start %v", end, start)
			}
			ends = append(ends, end)
		})
	}
	k.Run()
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatalf("completions not monotone: %v", ends)
		}
	}
}

func TestQueueCancellation(t *testing.T) {
	k, q := newQueueFixture(Background{})
	var done []int
	var reqs []*QueuedRequest
	for i := 0; i < 6; i++ {
		i := i
		r, err := q.Submit(1<<20, func(start, end float64) {
			done = append(done, i)
		})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	// Run one service; then cancel two still-queued requests.
	k.Step() // completion event of request 0 fires, kicking request 1
	if !q.Cancel(reqs[3]) || !q.Cancel(reqs[5]) {
		t.Fatal("cancel of queued requests failed")
	}
	if q.Cancel(reqs[3]) {
		t.Fatal("double cancel succeeded")
	}
	if q.Cancel(reqs[0]) {
		t.Fatal("canceled an already-served request")
	}
	k.Run()
	want := map[int]bool{0: true, 1: true, 2: true, 4: true}
	if len(done) != len(want) {
		t.Fatalf("served %v", done)
	}
	for _, i := range done {
		if !want[i] {
			t.Fatalf("request %d served despite cancel set %v", i, done)
		}
	}
	_, dropped := q.Stats()
	if dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestQueueIdleGapsHandled(t *testing.T) {
	// Requests arriving after an idle gap start at their arrival, not
	// at the previous completion.
	k, q := newQueueFixture(Background{})
	var firstEnd, secondStart float64
	q.Submit(1<<20, func(start, end float64) { firstEnd = end })
	k.Run()
	k.At(firstEnd+10, func(*sim.Kernel) {
		q.Submit(1<<20, func(start, end float64) { secondStart = start })
	})
	k.Run()
	if secondStart < firstEnd+10 {
		t.Fatalf("second request started at %v before its arrival %v", secondStart, firstEnd+10)
	}
}

func TestQueueMatchesDriveTimeline(t *testing.T) {
	// Back-to-back submissions through the queue must reproduce the
	// Drive's direct sequential timeline (same seed, same requests).
	direct := MustDrive(DefaultParams(), Layout{BlockingFactor: 128, PSeq: 0}, Background{}, 9)
	var wantEnds []float64
	for i := 0; i < 5; i++ {
		_, end := direct.ServeRequest(0, 1<<20)
		wantEnds = append(wantEnds, end)
	}
	k := sim.New()
	q := NewQueueServer(k, MustDrive(DefaultParams(), Layout{BlockingFactor: 128, PSeq: 0}, Background{}, 9))
	var gotEnds []float64
	for i := 0; i < 5; i++ {
		q.Submit(1<<20, func(start, end float64) { gotEnds = append(gotEnds, end) })
	}
	k.Run()
	for i := range wantEnds {
		//lint:ignore floateq queue replay must be bit-exact against the direct computation
		if gotEnds[i] != wantEnds[i] {
			t.Fatalf("queue end[%d]=%v, direct=%v", i, gotEnds[i], wantEnds[i])
		}
	}
}

func TestQueueWithBackgroundStream(t *testing.T) {
	k, q := newQueueFixture(Background{Interval: 0.01, Sectors: 50})
	var end float64
	q.Submit(8<<20, func(s, e float64) { end = e })
	k.Run()
	kFree, qFree := newQueueFixture(Background{})
	var endFree float64
	qFree.Submit(8<<20, func(s, e float64) { endFree = e })
	kFree.Run()
	if end <= endFree {
		t.Fatalf("background stream did not slow queued service: %v vs %v", end, endFree)
	}
}

func TestQueueRejectsBadSize(t *testing.T) {
	_, q := newQueueFixture(Background{})
	if _, err := q.Submit(0, nil); err == nil {
		t.Fatal("zero-size request accepted")
	}
}

func TestQueueLen(t *testing.T) {
	k, q := newQueueFixture(Background{})
	for i := 0; i < 4; i++ {
		q.Submit(1<<20, nil)
	}
	// One is in service, three queued.
	if got := q.QueueLen(); got != 3 {
		t.Fatalf("QueueLen = %d, want 3", got)
	}
	k.Run()
	if q.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}
