package disk

// Calibration helpers regenerate Table 6-1 (the average-bandwidth grid
// over the layout model) and Fig 6-5 (the background-interval sweep).

// GridCell is one entry of the Table 6-1 calibration grid.
type GridCell struct {
	Layout        Layout
	BandwidthMBps float64
}

// CalibrationGrid measures the average standalone foreground bandwidth
// for every (blocking factor, PSeq) combination of §6.2.5, averaging
// `trials` drives (each with a random zone) reading accessBytes each.
// Rows are PSeq 0 then 1, columns follow BlockingFactors.
func CalibrationGrid(p Params, trials int, accessBytes int64, seed int64) [2][]GridCell {
	var out [2][]GridCell
	for row, pseq := range []float64{0, 1} {
		cells := make([]GridCell, 0, len(BlockingFactors))
		for ci, bf := range BlockingFactors {
			lay := Layout{BlockingFactor: bf, PSeq: pseq}
			var sum float64
			for tr := 0; tr < trials; tr++ {
				s := seed + int64(row*1000000+ci*10000+tr)
				d := MustDrive(p, lay, Background{}, s)
				sum += d.StandaloneBandwidth(accessBytes)
			}
			cells = append(cells, GridCell{
				Layout:        lay,
				BandwidthMBps: sum / float64(trials) / 1e6,
			})
		}
		out[row] = cells
	}
	return out
}

// MeanGridBandwidthMBps returns the average over all grid cells — the
// paper's "average of disk bandwidth is 14.9 MBps" summary statistic.
func MeanGridBandwidthMBps(grid [2][]GridCell) float64 {
	var sum float64
	var n int
	for _, row := range grid {
		for _, c := range row {
			sum += c.BandwidthMBps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BackgroundPoint is one entry of the Fig 6-5 sweep.
type BackgroundPoint struct {
	IntervalMS      float64
	Utilization     float64 // disk time consumed by the background stream alone
	ForegroundMBps  float64 // foreground bandwidth under that competition
	ForegroundShare float64 // fraction of disk time the foreground obtained
}

// BackgroundSweep regenerates Fig 6-5: for each mean arrival interval,
// it measures (a) the disk utilization of the background stream alone
// and (b) the foreground bandwidth achieved while competing with it.
// The foreground uses a fast layout so the contention effect, not the
// foreground's own layout, dominates — matching the paper's setup.
func BackgroundSweep(p Params, intervalsMS []float64, trials int, accessBytes int64, seed int64) []BackgroundPoint {
	fgLayout := Layout{BlockingFactor: 512, PSeq: 1}
	out := make([]BackgroundPoint, 0, len(intervalsMS))
	for _, ms := range intervalsMS {
		bg := Background{Interval: ms / 1000, Sectors: 50}
		var util, fgBW, share float64
		for tr := 0; tr < trials; tr++ {
			// Seeds depend only on the trial so each interval point
			// sees the same drives (zones); otherwise zone noise can
			// mask the interval trend.
			s := seed + int64(tr)*1000
			// Background-only utilization over a long window.
			solo := MustDrive(p, fgLayout, bg, s)
			solo.Idle(60)
			util += solo.Stats().BgShare
			// Foreground under competition.
			d := MustDrive(p, fgLayout, bg, s+7)
			start, end := d.ServeRequest(0, accessBytes)
			fgBW += float64(accessBytes) / (end - start)
			st := d.Stats()
			if d.Clock() > 0 {
				share += (st.Busy - st.BgBusy) / d.Clock()
			}
		}
		out = append(out, BackgroundPoint{
			IntervalMS:      ms,
			Utilization:     util / float64(trials),
			ForegroundMBps:  fgBW / float64(trials) / 1e6,
			ForegroundShare: share / float64(trials),
		})
	}
	return out
}
