package disk

import (
	"fmt"

	"repro/internal/sim"
)

// QueueServer is a discrete-event-driven disk server: multiple
// simulated clients submit block requests at virtual times, the disk
// serves them FCFS (interleaved with its background stream), and
// pending requests can be canceled — the §5.3.3 request-cancellation
// mechanism "implemented in the file system software", modeled
// explicitly. It drives a Drive through the shared sim.Kernel and is
// used by multi-client contention tests and the admission-control
// studies; the single-client experiments use Drive's faster direct
// timeline API, which this server's semantics match by construction.
type QueueServer struct {
	kernel *sim.Kernel
	drive  *Drive

	queue   []*QueuedRequest
	busy    bool
	served  int64
	dropped int64
}

// QueuedRequest is one outstanding request at a QueueServer.
type QueuedRequest struct {
	Bytes    int64
	Arrival  float64
	Done     func(start, end float64) // completion callback (virtual times)
	canceled bool
	started  bool
}

// Canceled reports whether the request was canceled before service.
func (r *QueuedRequest) Canceled() bool { return r.canceled }

// Started reports whether service began (started requests cannot be
// canceled; the in-flight transfer completes, as on real hardware).
func (r *QueuedRequest) Started() bool { return r.started }

// NewQueueServer builds a server over a drive, driven by the kernel.
func NewQueueServer(k *sim.Kernel, d *Drive) *QueueServer {
	return &QueueServer{kernel: k, drive: d}
}

// Submit enqueues a request at the current virtual time. The Done
// callback fires (inside the kernel) when service completes.
func (s *QueueServer) Submit(bytes int64, done func(start, end float64)) (*QueuedRequest, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("disk: queued request must be positive size")
	}
	r := &QueuedRequest{Bytes: bytes, Arrival: s.kernel.Now(), Done: done}
	s.queue = append(s.queue, r)
	s.kick()
	return r, nil
}

// Cancel removes a not-yet-started request from the queue. It reports
// whether the request was actually removed.
func (s *QueueServer) Cancel(r *QueuedRequest) bool {
	if r == nil || r.started || r.canceled {
		return false
	}
	r.canceled = true
	s.dropped++
	return true
}

// kick starts service if the head is idle.
func (s *QueueServer) kick() {
	if s.busy {
		return
	}
	// Drop canceled requests at the head.
	for len(s.queue) > 0 && s.queue[0].canceled {
		s.queue = s.queue[1:]
	}
	if len(s.queue) == 0 {
		return
	}
	r := s.queue[0]
	s.queue = s.queue[1:]
	r.started = true
	s.busy = true
	// The drive's own clock may lag the kernel clock (idle gaps);
	// ServeRequest handles the catch-up, including background work.
	start, end := s.drive.ServeRequest(s.kernel.Now(), r.Bytes)
	if end < s.kernel.Now() {
		// Cannot happen: service ends at or after its arrival.
		panic("disk: queue service ended in the past")
	}
	s.served++
	s.kernel.At(end, func(k *sim.Kernel) {
		s.busy = false
		if r.Done != nil {
			r.Done(start, end)
		}
		s.kick()
	})
}

// Stats returns served/dropped counters.
func (s *QueueServer) Stats() (served, dropped int64) { return s.served, s.dropped }

// QueueLen returns the number of waiting (uncanceled) requests.
func (s *QueueServer) QueueLen() int {
	n := 0
	for _, r := range s.queue {
		if !r.canceled {
			n++
		}
	}
	return n
}
