package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1<<20, 4096, 4); err != nil {
		t.Fatal(err)
	}
	bad := [][3]int64{
		{0, 4096, 4}, {1 << 20, 0, 4}, {1 << 20, 4096, 0}, {8192, 4096, 4},
	}
	for _, b := range bad {
		if _, err := New(b[0], b[1], int(b[2])); err == nil {
			t.Errorf("New(%v) accepted", b)
		}
	}
}

func TestInsertLookup(t *testing.T) {
	c := MustNew(1<<20, 4096, 4)
	if got := c.Lookup(0, 8192); got != 0 {
		t.Fatalf("empty cache Lookup = %d, want 0", got)
	}
	c.Insert(0, 8192)
	if got := c.Lookup(0, 8192); got != 8192 {
		t.Fatalf("Lookup after Insert = %d, want 8192", got)
	}
	if !c.Contains(0, 8192) {
		t.Fatal("Contains = false after Insert")
	}
	if c.Contains(8192, 4096) {
		t.Fatal("Contains = true for uncached range")
	}
}

func TestPartialHit(t *testing.T) {
	c := MustNew(1<<20, 4096, 4)
	c.Insert(0, 4096) // one line
	// Range covering two lines, one cached.
	if got := c.Lookup(0, 8192); got != 4096 {
		t.Fatalf("partial Lookup = %d, want 4096", got)
	}
	// Unaligned range within the cached line.
	c2 := MustNew(1<<20, 4096, 4)
	c2.Insert(0, 4096)
	if got := c2.Lookup(100, 200); got != 200 {
		t.Fatalf("unaligned Lookup = %d, want 200", got)
	}
	// Unaligned range straddling cached and uncached lines: only the
	// bytes in the cached line count.
	c3 := MustNew(1<<20, 4096, 4)
	c3.Insert(0, 4096)
	if got := c3.Lookup(4000, 1000); got != 96 {
		t.Fatalf("straddling Lookup = %d, want 96", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4 sets * 2 ways * 64B lines = 512B cache. Lines mapping to the
	// same set: line, line+4, line+8, ...
	c := MustNew(512, 64, 2)
	addr := func(line int64) int64 { return line * 64 }
	c.Insert(addr(0), 64) // set 0, way A
	c.Insert(addr(4), 64) // set 0, way B
	if !c.Contains(addr(0), 64) || !c.Contains(addr(4), 64) {
		t.Fatal("both lines should fit")
	}
	// Touch line 0 so line 4 is LRU, then insert a third line in set 0.
	c.Lookup(addr(0), 64)
	c.Insert(addr(8), 64)
	if !c.Contains(addr(0), 64) {
		t.Fatal("recently-used line evicted")
	}
	if c.Contains(addr(4), 64) {
		t.Fatal("LRU line survived eviction")
	}
	if !c.Contains(addr(8), 64) {
		t.Fatal("new line not inserted")
	}
}

func TestReinsertRefreshes(t *testing.T) {
	c := MustNew(512, 64, 2)
	addr := func(line int64) int64 { return line * 64 }
	c.Insert(addr(0), 64)
	c.Insert(addr(4), 64)
	c.Insert(addr(0), 64) // refresh, not duplicate
	c.Insert(addr(8), 64) // should evict line 4
	if !c.Contains(addr(0), 64) || c.Contains(addr(4), 64) {
		t.Fatal("re-insert did not refresh LRU position")
	}
}

func TestStats(t *testing.T) {
	c := MustNew(1<<20, 4096, 4)
	c.Insert(0, 4096)
	c.Lookup(0, 4096)
	c.Lookup(4096, 4096)
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses, want 1/1", hits, misses)
	}
}

func TestInvalidRangePanics(t *testing.T) {
	c := MustNew(1<<20, 4096, 4)
	for _, fn := range []func(){
		func() { c.Lookup(-1, 10) },
		func() { c.Lookup(0, 0) },
		func() { c.Insert(5, -3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid range did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestCapacityBound(t *testing.T) {
	// Inserting far more than capacity must keep at most capacity
	// resident.
	const total = 64 << 10
	c := MustNew(total, 4096, 4)
	for i := int64(0); i < 100; i++ {
		c.Insert(i*4096, 4096)
	}
	var resident int64
	for i := int64(0); i < 100; i++ {
		if c.Contains(i*4096, 4096) {
			resident += 4096
		}
	}
	if resident > total {
		t.Fatalf("resident %d exceeds capacity %d", resident, total)
	}
	if resident == 0 {
		t.Fatal("nothing resident after inserts")
	}
}

func TestQuickInsertThenHit(t *testing.T) {
	// Whatever we just inserted must be immediately resident (it was
	// the most recently used line in its set).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(1<<18, 4096, 4)
		for i := 0; i < 200; i++ {
			addr := int64(rng.Intn(1 << 22))
			length := int64(1 + rng.Intn(16384))
			c.Insert(addr, length)
			if c.Lookup(addr, length) != length {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
