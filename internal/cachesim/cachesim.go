// Package cachesim models the filer's filesystem cache of §6.2.5: a
// set-associative LRU cache with 4 KB lines (default 2 GB, 4-way).
// Reads populate it; writes are write-through and bypass it, matching
// the paper's simulator. Addresses are byte offsets in a per-filer
// address space (each stored block gets a disjoint range).
package cachesim

import "fmt"

// Cache is a set-associative LRU cache over fixed-size lines. Not safe
// for concurrent use.
type Cache struct {
	lineBytes int64
	ways      int
	sets      int64
	tags      []uint64 // sets*ways entries; 0 = empty, else lineID+1
	stamps    []uint64
	tick      uint64

	hits, misses int64
}

// New builds a cache of totalBytes capacity with the given line size
// and associativity. totalBytes must hold at least one full set.
func New(totalBytes int64, lineBytes int64, ways int) (*Cache, error) {
	if lineBytes <= 0 || ways <= 0 || totalBytes < lineBytes*int64(ways) {
		return nil, fmt.Errorf("cachesim: invalid geometry total=%d line=%d ways=%d",
			totalBytes, lineBytes, ways)
	}
	sets := totalBytes / (lineBytes * int64(ways))
	return &Cache{
		lineBytes: lineBytes,
		ways:      ways,
		sets:      sets,
		tags:      make([]uint64, sets*int64(ways)),
		stamps:    make([]uint64, sets*int64(ways)),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(totalBytes, lineBytes int64, ways int) *Cache {
	c, err := New(totalBytes, lineBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) set(line uint64) int64 { return int64(line % uint64(c.sets)) }

// lookupLine reports and touches a single line; returns true on hit.
func (c *Cache) lookupLine(line uint64) bool {
	base := c.set(line) * int64(c.ways)
	tag := line + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[base+int64(w)] == tag {
			c.tick++
			c.stamps[base+int64(w)] = c.tick
			return true
		}
	}
	return false
}

// insertLine installs a line, evicting the set's LRU entry if needed.
func (c *Cache) insertLine(line uint64) {
	base := c.set(line) * int64(c.ways)
	tag := line + 1
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + int64(w)
		if c.tags[i] == tag {
			c.tick++
			c.stamps[i] = c.tick
			return
		}
		if c.tags[i] == 0 {
			victim = i
			oldest = 0
			continue
		}
		if c.stamps[i] < oldest {
			oldest = c.stamps[i]
			victim = i
		}
	}
	c.tick++
	c.tags[victim] = tag
	c.stamps[victim] = c.tick
}

func (c *Cache) lineRange(addr, length int64) (first, last uint64) {
	if addr < 0 || length <= 0 {
		panic("cachesim: invalid address range")
	}
	return uint64(addr / c.lineBytes), uint64((addr + length - 1) / c.lineBytes)
}

// Lookup returns how many bytes of [addr, addr+length) are currently
// cached, touching the hit lines (LRU update).
func (c *Cache) Lookup(addr, length int64) int64 {
	first, last := c.lineRange(addr, length)
	var hit int64
	for line := first; line <= last; line++ {
		lo := int64(line) * c.lineBytes
		hi := lo + c.lineBytes
		if lo < addr {
			lo = addr
		}
		if hi > addr+length {
			hi = addr + length
		}
		if c.lookupLine(line) {
			hit += hi - lo
			c.hits++
		} else {
			c.misses++
		}
	}
	return hit
}

// Insert caches every line overlapping [addr, addr+length).
func (c *Cache) Insert(addr, length int64) {
	first, last := c.lineRange(addr, length)
	for line := first; line <= last; line++ {
		c.insertLine(line)
	}
}

// Contains reports whether the whole range is cached without touching
// LRU state.
func (c *Cache) Contains(addr, length int64) bool {
	first, last := c.lineRange(addr, length)
	for line := first; line <= last; line++ {
		base := c.set(line) * int64(c.ways)
		tag := line + 1
		found := false
		for w := 0; w < c.ways; w++ {
			if c.tags[base+int64(w)] == tag {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Stats returns cumulative line-level hit/miss counts from Lookup.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }
