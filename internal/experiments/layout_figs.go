package experiments

import (
	"repro/internal/cluster"
	"repro/internal/schemes"
	"repro/internal/workload"
)

// This file defines the §6.3.1 experiments: performance variation from
// in-disk data layout (heterogeneous random layouts, no competitive
// load).

// robuSToreMinRedundancy is the lowest redundancy at which an LT read
// is meaningful (N must exceed (1+ε)K); sweeps skip RobuSTore below
// it, as the paper's plots effectively do.
const robuSToreMinRedundancy = 0.4

// Fig66 regenerates Figs 6-6/6-7/6-8: read performance vs number of
// disks (2..128) with heterogeneous layout.
func Fig66(opts Options) ([]Dataset, error) {
	spec := sweepSpec{
		ids: [3]string{"fig6-6", "fig6-7", "fig6-8"},
		titles: [3]string{
			"Read Bandwidth vs. Number of Disks (heterogeneous layout)",
			"Variation of Read Latency vs. Number of Disks (heterogeneous layout)",
			"I/O Overhead vs. Number of Disks (heterogeneous layout)",
		},
		xLabel: "disks",
		xs:     []float64{2, 4, 8, 16, 32, 64, 128},
		op:     workload.Read,
		configure: func(s schemes.Scheme, x float64) (cluster.Config, cluster.Trial, schemes.Config, bool) {
			cfg := schemes.DefaultConfig(s)
			cfg.Disks = int(x)
			return baselineCluster(), hetLayoutTrial(), cfg, true
		},
	}
	return runSweep(opts, spec)
}

// Fig69 regenerates Figs 6-9/6-10/6-11: read performance vs coding
// block size (0.5..64 MB).
func Fig69(opts Options) ([]Dataset, error) {
	spec := sweepSpec{
		ids: [3]string{"fig6-9", "fig6-10", "fig6-11"},
		titles: [3]string{
			"Read Bandwidth vs. Block Size (heterogeneous layout)",
			"Variation of Read Latency vs. Block Size (heterogeneous layout)",
			"I/O Overhead vs. Block Size (heterogeneous layout)",
		},
		xLabel: "block size (MB)",
		xs:     []float64{0.5, 1, 2, 4, 8, 16, 32, 64},
		op:     workload.Read,
		configure: func(s schemes.Scheme, x float64) (cluster.Config, cluster.Trial, schemes.Config, bool) {
			cfg := schemes.DefaultConfig(s)
			cfg.BlockBytes = int64(x * (1 << 20))
			return baselineCluster(), hetLayoutTrial(), cfg, true
		},
	}
	return runSweep(opts, spec)
}

// Fig612 regenerates Figs 6-12/6-13/6-14: read performance vs network
// round-trip latency (1..100 ms) for 1 GB accesses, plus the paper's
// 128 MB companion bandwidth plot (Fig 6-12b).
func Fig612(opts Options) ([]Dataset, error) {
	mk := func(bytes int64, ids [3]string, suffix string) sweepSpec {
		return sweepSpec{
			ids: ids,
			titles: [3]string{
				"Read Bandwidth vs. Network Latency " + suffix,
				"Variation of Read Latency vs. Network Latency " + suffix,
				"I/O Overhead vs. Network Latency " + suffix,
			},
			xLabel: "RTT (ms)",
			xs:     []float64{1, 10, 30, 60, 100},
			op:     workload.Read,
			configure: func(s schemes.Scheme, x float64) (cluster.Config, cluster.Trial, schemes.Config, bool) {
				ccfg := baselineCluster()
				ccfg.RTT = x / 1000
				cfg := schemes.DefaultConfig(s)
				cfg.DataBytes = bytes
				return ccfg, hetLayoutTrial(), cfg, true
			},
		}
	}
	big, err := runSweep(opts, mk(1<<30, [3]string{"fig6-12a", "fig6-13", "fig6-14"}, "(1 GB access)"))
	if err != nil {
		return nil, err
	}
	small, err := runSweep(opts, mk(128<<20, [3]string{"fig6-12b", "fig6-13b", "fig6-14b"}, "(128 MB access)"))
	if err != nil {
		return nil, err
	}
	return append(big, small[0]), nil
}

// redundancySweep is the D axis shared by the redundancy figures.
var redundancySweep = []float64{0, 0.5, 1, 2, 3, 5, 7, 9}

func redundancyConfigure(trial cluster.Trial) func(schemes.Scheme, float64) (cluster.Config, cluster.Trial, schemes.Config, bool) {
	return func(s schemes.Scheme, x float64) (cluster.Config, cluster.Trial, schemes.Config, bool) {
		cfg := schemes.DefaultConfig(s)
		switch s {
		case schemes.RAID0:
			// RAID-0 is the zero-redundancy reference; it appears only
			// at D=0 (the paper represents it as that point).
			if x != 0 {
				return cluster.Config{}, cluster.Trial{}, schemes.Config{}, false
			}
			cfg.Redundancy = 0
		case schemes.RobuSTore:
			if x < robuSToreMinRedundancy {
				return cluster.Config{}, cluster.Trial{}, schemes.Config{}, false
			}
			cfg.Redundancy = x
		default:
			cfg.Redundancy = x
		}
		return baselineCluster(), trial, cfg, true
	}
}

// Fig615 regenerates Figs 6-15/6-16/6-17: read performance vs data
// redundancy with heterogeneous layout.
func Fig615(opts Options) ([]Dataset, error) {
	return runSweep(opts, sweepSpec{
		ids: [3]string{"fig6-15", "fig6-16", "fig6-17"},
		titles: [3]string{
			"Read Bandwidth vs. Data Redundancy (heterogeneous layout)",
			"Variation of Read Latency vs. Data Redundancy (heterogeneous layout)",
			"I/O Overhead vs. Data Redundancy (heterogeneous layout)",
		},
		xLabel:    "redundancy D",
		xs:        redundancySweep,
		op:        workload.Read,
		configure: redundancyConfigure(hetLayoutTrial()),
		notes:     []string{"RobuSTore requires D >= ~0.4 for LT decodability; RAID-0 is the D=0 point"},
	})
}

// Fig618 regenerates Figs 6-18/6-19/6-20: write performance vs data
// redundancy with heterogeneous layout.
func Fig618(opts Options) ([]Dataset, error) {
	return runSweep(opts, sweepSpec{
		ids: [3]string{"fig6-18", "fig6-19", "fig6-20"},
		titles: [3]string{
			"Write Bandwidth vs. Data Redundancy (heterogeneous layout)",
			"Variation of Write Latency vs. Data Redundancy (heterogeneous layout)",
			"I/O Overhead vs. Data Redundancy (heterogeneous layout, writes)",
		},
		xLabel:    "redundancy D",
		xs:        redundancySweep,
		op:        workload.Write,
		configure: redundancyConfigure(hetLayoutTrial()),
	})
}

// Fig621 regenerates Figs 6-21/6-22/6-23: read-after-write performance
// vs data redundancy — RobuSTore reads the unbalanced striping its
// speculative write produced; the replicated schemes read balanced
// stripes on a fresh cluster.
func Fig621(opts Options) ([]Dataset, error) {
	return runSweep(opts, sweepSpec{
		ids: [3]string{"fig6-21", "fig6-22", "fig6-23"},
		titles: [3]string{
			"Read Bandwidth vs. Data Redundancy (heterogeneous layout, unbalanced striping)",
			"Variation of Read Latency vs. Data Redundancy (heterogeneous layout, unbalanced striping)",
			"I/O Overhead vs. Data Redundancy (heterogeneous layout, unbalanced striping)",
		},
		xLabel:    "redundancy D",
		xs:        redundancySweep,
		op:        workload.ReadAfterWrite,
		configure: redundancyConfigure(hetLayoutTrial()),
	})
}
