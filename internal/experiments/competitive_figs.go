package experiments

import (
	"repro/internal/cluster"
	"repro/internal/schemes"
	"repro/internal/workload"
)

// This file defines the §6.3.2 experiments: performance variation from
// competitive workloads.

// Fig624 regenerates Figs 6-24/6-25: read performance vs the
// homogeneous competitive-workload interval, with homogeneous layout.
// This is the environment where RobuSTore's reception overhead makes
// it slightly *slower* than plain striping (§7.2's "not the best
// choice in homogeneous storage environments").
func Fig624(opts Options) ([]Dataset, error) {
	return runSweep(opts, sweepSpec{
		ids: [3]string{"fig6-24", "fig6-25", "fig6-24io"},
		titles: [3]string{
			"Read Bandwidth vs. Competitive Workloads (homogeneous layout + competition)",
			"Variation of Read Latency vs. Competitive Workloads (homogeneous)",
			"I/O Overhead vs. Competitive Workloads (homogeneous; companion data)",
		},
		xLabel: "background interval (ms)",
		xs:     []float64{6, 10, 20, 50, 100, 200},
		op:     workload.Read,
		configure: func(s schemes.Scheme, x float64) (cluster.Config, cluster.Trial, schemes.Config, bool) {
			trial := cluster.Trial{
				Layout:     workload.HomogeneousLayout(goodLayout()),
				Background: workload.HomogeneousBackground(x / 1000),
			}
			return baselineCluster(), trial, schemes.DefaultConfig(s), true
		},
		notes: []string{"paper: RobuSTore trails RRAID-S here by ~18% due to LT reception overhead"},
	})
}

// Fig626 regenerates Figs 6-26/6-27/6-28: read performance vs data
// redundancy under heterogeneous competitive workloads (per-disk
// random background intervals, good homogeneous layout).
func Fig626(opts Options) ([]Dataset, error) {
	return runSweep(opts, sweepSpec{
		ids: [3]string{"fig6-26", "fig6-27", "fig6-28"},
		titles: [3]string{
			"Read Bandwidth vs. Data Redundancy (heterogeneous competitive workloads)",
			"Variation of Read Latency vs. Data Redundancy (heterogeneous competitive workloads)",
			"I/O Overhead vs. Data Redundancy (heterogeneous competitive workloads)",
		},
		xLabel:    "redundancy D",
		xs:        []float64{0, 0.5, 1, 1.4, 2, 3, 5},
		op:        workload.Read,
		configure: redundancyConfigure(competitiveTrial()),
		notes:     []string{"paper: best performance reached for D >= ~1.4 (peak/average disk bandwidth ratio)"},
	})
}

// Fig629 regenerates Figs 6-29/6-30/6-31: write performance vs data
// redundancy under heterogeneous competitive workloads.
func Fig629(opts Options) ([]Dataset, error) {
	return runSweep(opts, sweepSpec{
		ids: [3]string{"fig6-29", "fig6-30", "fig6-31"},
		titles: [3]string{
			"Write Bandwidth vs. Data Redundancy (heterogeneous competitive workloads)",
			"Variation of Write Latency vs. Data Redundancy (heterogeneous competitive workloads)",
			"I/O Overhead vs. Data Redundancy (heterogeneous competitive workloads, writes)",
		},
		xLabel:    "redundancy D",
		xs:        []float64{0, 0.5, 1, 2, 3, 5},
		op:        workload.Write,
		configure: redundancyConfigure(competitiveTrial()),
	})
}

// Fig632 regenerates Figs 6-32/6-33/6-34: read-after-write (unbalanced
// striping) vs data redundancy under heterogeneous competitive
// workloads.
func Fig632(opts Options) ([]Dataset, error) {
	return runSweep(opts, sweepSpec{
		ids: [3]string{"fig6-32", "fig6-33", "fig6-34"},
		titles: [3]string{
			"Read Bandwidth vs. Data Redundancy (competitive workloads, unbalanced striping)",
			"Variation of Read Latency vs. Data Redundancy (competitive workloads, unbalanced striping)",
			"I/O Overhead vs. Data Redundancy (competitive workloads, unbalanced striping)",
		},
		xLabel:    "redundancy D",
		xs:        []float64{0, 0.5, 1, 2, 3, 5},
		op:        workload.ReadAfterWrite,
		configure: redundancyConfigure(competitiveTrial()),
	})
}
