package experiments

import (
	"fmt"

	"repro/internal/disk"
)

// Table61 regenerates Table 6-1: the average disk bandwidth grid over
// the (blocking factor × sequential-probability) layout model that
// calibrates the drive model against the paper's DiskSim setup.
func Table61(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	grid := disk.CalibrationGrid(disk.DefaultParams(), opts.Trials, 16<<20, opts.Seed)
	d := Dataset{
		ID: "table6-1", Title: "Average Disk Bandwidths vs In-Disk Layout (MBps)",
		XLabel: "blocking factor", YLabel: "MBps",
		Order: []string{"PSeq=0", "PSeq=1"},
	}
	for i, bf := range disk.BlockingFactors {
		d.Add(float64(bf), map[string]float64{
			"PSeq=0": grid[0][i].BandwidthMBps,
			"PSeq=1": grid[1][i].BandwidthMBps,
		})
	}
	d.Notes = append(d.Notes,
		fmt.Sprintf("grid mean %.1f MBps (paper: 14.9)", disk.MeanGridBandwidthMBps(grid)),
		"paper row PSeq=0: 0.52 0.76 1.3 2.5 4.7 8.3 14.3 21.4",
		"paper row PSeq=1: 3.6 6.9 9.3 12.7 16.8 29.8 53.0 53.0",
	)
	return []Dataset{d}, nil
}

// Fig65 regenerates Fig 6-5: disk utilization of the background stream
// and foreground bandwidth under competition, versus the background
// arrival interval.
func Fig65(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	sweep := disk.BackgroundSweep(disk.DefaultParams(),
		[]float64{6, 10, 20, 50, 100, 200}, opts.Trials, 64<<20, opts.Seed)
	d := Dataset{
		ID: "fig6-5", Title: "Performance Impacts from Background Workloads",
		XLabel: "background interval (ms)", YLabel: "mixed",
		Order: []string{"bg utilization", "foreground MBps"},
	}
	for _, p := range sweep {
		d.Add(p.IntervalMS, map[string]float64{
			"bg utilization":  p.Utilization,
			"foreground MBps": p.ForegroundMBps,
		})
	}
	d.Notes = append(d.Notes, "paper: ~93% utilization at 6 ms; foreground ~2.2 MBps at 6 ms, ~43 MBps at 200 ms")
	return []Dataset{d}, nil
}
