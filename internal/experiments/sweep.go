package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/schemes"
	"repro/internal/workload"
)

// sweepSpec declares one scheme-comparison sweep: a set of x values,
// which schemes participate at each x, and how to configure the
// cluster and access for (scheme, x).
type sweepSpec struct {
	ids    [3]string // dataset ids for bandwidth / latency-stddev / io-overhead
	titles [3]string
	xLabel string
	xs     []float64
	op     workload.Op
	// configure returns the cluster config, trial policies, and access
	// config; ok=false skips the scheme at this x (e.g. RobuSTore at
	// zero redundancy).
	configure func(s schemes.Scheme, x float64) (cluster.Config, cluster.Trial, schemes.Config, bool)
	// extra receives each point's stats for additional datasets.
	notes []string
}

// runSweep executes the sweep and emits bandwidth, latency-stddev, and
// I/O-overhead datasets (the paper's standard figure triple).
func runSweep(opts Options, spec sweepSpec) ([]Dataset, error) {
	opts = opts.normalized()
	bw := Dataset{ID: spec.ids[0], Title: spec.titles[0], XLabel: spec.xLabel,
		YLabel: "bandwidth (MBps)", Notes: spec.notes}
	lat := Dataset{ID: spec.ids[1], Title: spec.titles[1], XLabel: spec.xLabel,
		YLabel: "stddev of access latency (s)"}
	io := Dataset{ID: spec.ids[2], Title: spec.titles[2], XLabel: spec.xLabel,
		YLabel: "I/O overhead (fraction of data size)"}
	for _, d := range []*Dataset{&bw, &lat, &io} {
		for _, s := range schemes.AllSchemes {
			d.Order = append(d.Order, s.String())
		}
	}
	for xi, x := range spec.xs {
		bwRow := map[string]float64{}
		latRow := map[string]float64{}
		ioRow := map[string]float64{}
		for si, s := range schemes.AllSchemes {
			ccfg, trial, cfg, ok := spec.configure(s, x)
			if !ok {
				continue
			}
			pointSeed := int64(xi*101 + si*11 + 1)
			var fn trialFn
			switch spec.op {
			case workload.Read:
				fn = func(seed int64) (schemes.Result, error) {
					return schemes.RunReadTrial(ccfg, trial, cfg, seed)
				}
			case workload.Write:
				fn = func(seed int64) (schemes.Result, error) {
					return schemes.RunWriteTrial(ccfg, trial, cfg, seed)
				}
			case workload.ReadAfterWrite:
				fn = func(seed int64) (schemes.Result, error) {
					return schemes.RunReadAfterWriteTrial(ccfg, trial, cfg, seed)
				}
			default:
				return nil, fmt.Errorf("experiments: unknown op %v", spec.op)
			}
			ps, err := runPoint(opts, pointSeed, fn)
			if err != nil {
				return nil, fmt.Errorf("%s x=%v %v: %w", spec.ids[0], x, s, err)
			}
			bwRow[s.String()] = ps.Bandwidth.Mean
			latRow[s.String()] = ps.Latency.StdDev
			ioRow[s.String()] = ps.IOOverhead.Mean
		}
		bw.Add(x, bwRow)
		lat.Add(x, latRow)
		io.Add(x, ioRow)
	}
	return []Dataset{bw, lat, io}, nil
}

// baselineCluster returns the §6.2.5 system configuration.
func baselineCluster() cluster.Config { return cluster.DefaultConfig() }

// hetLayoutTrial is the §6.3.1 environment: heterogeneous in-disk
// layouts, no competitive load.
func hetLayoutTrial() cluster.Trial {
	return cluster.Trial{
		Layout:     workload.HeterogeneousLayout(),
		Background: workload.NoBackground(),
	}
}

// competitiveTrial is the §6.3.2 heterogeneous-competition
// environment: every disk shares a good fixed layout but draws a
// random background interval per access.
func competitiveTrial() cluster.Trial {
	return cluster.Trial{
		Layout:     workload.HomogeneousLayout(goodLayout()),
		Background: workload.HeterogeneousBackground(),
	}
}

// goodLayout is the well-laid-out configuration used when the
// experiment isolates a non-layout variation source.
func goodLayout() disk.Layout {
	return disk.Layout{BlockingFactor: 512, PSeq: 1}
}
