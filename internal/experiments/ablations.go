package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/ltcode"
	"repro/internal/schemes"
	"repro/internal/workload"
)

// This file contains ablation studies for the design choices §5.2.3
// and §5.3.3 argue for, beyond what the paper itself plots. They
// quantify what each improvement buys:
//
//   - ablation-lt:     improved LT (guaranteed decodability + uniform
//                      coverage) vs Luby's original construction.
//   - ablation-lazy:   lazy-XOR decoding vs greedy substitution.
//   - ablation-cancel: speculative access with vs without request
//                      cancellation.

// AblationLT compares the improved LT construction against the
// original: decode-failure probability when reading exactly the N
// stored blocks, reception overhead, and original-block coverage
// spread, across K.
func AblationLT(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	d := Dataset{
		ID: "ablation-lt", Title: "Improved vs original LT codes (N = 1.5K)",
		XLabel: "K", YLabel: "mixed",
		Order: []string{
			"orig fail rate", "impr fail rate",
			"orig overhead", "impr overhead",
			"orig degree spread", "impr degree spread",
		},
		Notes: []string{
			"fail rate: fraction of graphs whose full N blocks do not decode",
			"overhead: mean reception overhead among successful decodes",
			"degree spread: (max-min) original-block degree / mean",
		},
	}
	for _, k := range []int{64, 128, 256, 512, 1024} {
		p := ltcode.Params{K: k, C: 1, Delta: 0.5}
		n := k + k/2
		row := map[string]float64{}
		for _, improved := range []bool{false, true} {
			gopts := ltcode.GraphOptions{UniformCoverage: improved, EnsureDecodable: improved}
			prefix := "orig"
			if improved {
				prefix = "impr"
			}
			rng := rand.New(rand.NewSource(opts.Seed + int64(k)))
			fails, successes := 0, 0
			var ovhSum, spreadSum float64
			for tr := 0; tr < opts.Trials; tr++ {
				var g *ltcode.Graph
				var err error
				if improved {
					g, err = ltcode.BuildGraph(p, n, rng, gopts)
					if err != nil {
						fails++
						continue
					}
				} else {
					g, err = ltcode.BuildGraph(p, n, rng, gopts)
					if err != nil {
						return nil, err
					}
					if !g.FullyDecodable() {
						fails++
						spreadSum += degreeSpread(g)
						continue
					}
				}
				spreadSum += degreeSpread(g)
				if s, ok := ltcode.MeasureGraphOverhead(g, rng); ok {
					ovhSum += s.Overhead
					successes++
				}
			}
			row[prefix+" fail rate"] = float64(fails) / float64(opts.Trials)
			if successes > 0 {
				row[prefix+" overhead"] = ovhSum / float64(successes)
			}
			row[prefix+" degree spread"] = spreadSum / float64(opts.Trials)
		}
		d.Add(float64(k), row)
	}
	return []Dataset{d}, nil
}

func degreeSpread(g *ltcode.Graph) float64 {
	deg := g.OriginalDegrees()
	minD, maxD, sum := deg[0], deg[0], 0
	for _, v := range deg {
		if v < minD {
			minD = v
		}
		if v > maxD {
			maxD = v
		}
		sum += v
	}
	mean := float64(sum) / float64(len(deg))
	if mean == 0 {
		return 0
	}
	return float64(maxD-minD) / mean
}

// AblationLazyXor quantifies the lazy-XOR improvement: block-XOR
// operations actually performed vs the edges a greedy decoder would
// process, as redundancy (and thus the number of redundant received
// blocks) grows.
func AblationLazyXor(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	d := Dataset{
		ID: "ablation-lazy", Title: "Lazy vs greedy XOR cost (K=1024, C=1, δ=0.5)",
		XLabel: "fraction of N fed after completion", YLabel: "block XOR ops",
		Order: []string{"lazy XORs", "greedy XORs (edges received)", "savings x"},
	}
	p := ltcode.Params{K: 1024, C: 1, Delta: 0.5}
	const n = 4096
	for _, extraFrac := range []float64{0, 0.25, 0.5, 1} {
		rng := rand.New(rand.NewSource(opts.Seed + int64(extraFrac*100)))
		var lazy, greedy float64
		trials := opts.Trials/4 + 1
		for tr := 0; tr < trials; tr++ {
			g, err := ltcode.BuildGraph(p, n, rng, ltcode.DefaultGraphOptions())
			if err != nil {
				return nil, err
			}
			dec := ltcode.NewSymbolicDecoder(g)
			perm := rng.Perm(n)
			completedAt := -1
			for pos, idx := range perm {
				dec.Add(idx)
				if dec.Complete() {
					completedAt = pos
					break
				}
			}
			if completedAt < 0 {
				continue
			}
			// Feed extra (late, redundant) blocks — e.g. a slow network
			// delivering everything despite cancellation being late.
			extra := int(extraFrac * float64(n-completedAt-1))
			for i := 0; i < extra; i++ {
				dec.Add(perm[completedAt+1+i])
			}
			lazy += float64(dec.XorOps())
			greedy += float64(dec.EdgesReceived())
		}
		lazy /= float64(trials)
		greedy /= float64(trials)
		row := map[string]float64{"lazy XORs": lazy, "greedy XORs (edges received)": greedy}
		if lazy > 0 {
			row["savings x"] = greedy / lazy
		}
		d.Add(extraFrac, row)
	}
	return []Dataset{d}, nil
}

// AblationCancel measures what request cancellation (§5.3.3) saves:
// I/O overhead of the speculative schemes on the baseline read with
// and without cancellation.
func AblationCancel(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	d := Dataset{
		ID: "ablation-cancel", Title: "Request cancellation: read I/O overhead with vs without",
		XLabel: "scheme index", YLabel: "I/O overhead",
		Order: []string{"with cancel", "without cancel"},
		Notes: []string{"x: 1=RRAID-S 3=RobuSTore (speculative schemes); baseline 1 GB / 64 disks / D=3"},
	}
	trial := cluster.Trial{
		Layout:     workload.HeterogeneousLayout(),
		Background: workload.NoBackground(),
	}
	for _, s := range []schemes.Scheme{schemes.RRAIDS, schemes.RobuSTore} {
		row := map[string]float64{}
		for _, noCancel := range []bool{false, true} {
			cfg := schemes.DefaultConfig(s)
			cfg.NoCancel = noCancel
			ps, err := runPoint(opts, int64(s)*10+boolSeed(noCancel), func(seed int64) (schemes.Result, error) {
				return schemes.RunReadTrial(baselineCluster(), trial, cfg, seed)
			})
			if err != nil {
				return nil, fmt.Errorf("ablation-cancel %v: %w", s, err)
			}
			name := "with cancel"
			if noCancel {
				name = "without cancel"
			}
			row[name] = ps.IOOverhead.Mean
		}
		d.Add(float64(s), row)
	}
	return []Dataset{d}, nil
}

func boolSeed(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
