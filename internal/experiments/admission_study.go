package experiments

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
)

// AdmissionStudy quantifies §5.4's motivation for admission control:
// "sharing the same disk by multiple concurrent large accesses
// usually damages the disk throughput dramatically due to the
// rotating character of hard disks". M clients each read 64 MB from
// one shared disk under two policies:
//
//   - interleaved: every client's blocks are queued round-robin (no
//     admission control) — each 1 MB block re-positions the head;
//   - admitted: a capacity-1 admission controller serializes whole
//     accesses (first-come-first-admitted), so each access streams
//     sequentially.
//
// Reported per M: aggregate disk throughput and the mean client
// completion latency under each policy. The §7.3 "multi-user
// workloads" study, at disk granularity, on the DES kernel.
func AdmissionStudy(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	d := Dataset{
		ID: "ext-admission", Title: "Admission control under concurrent large accesses (one disk, 64 MB/client)",
		XLabel: "concurrent clients", YLabel: "mixed",
		Order: []string{
			"interleaved MBps", "admitted MBps",
			"interleaved mean lat (s)", "admitted mean lat (s)",
		},
		Notes: []string{"admitted = capacity-1 FCFS admission (whole accesses serialized)"},
	}
	const (
		accessBytes = 64 << 20
		blockBytes  = 1 << 20
	)
	lay := disk.Layout{BlockingFactor: 512, PSeq: 1}
	for _, m := range []int{1, 2, 4, 8, 16} {
		row := map[string]float64{}
		for _, admitted := range []bool{false, true} {
			var aggSum, latSum float64
			trials := opts.Trials/10 + 1
			for tr := 0; tr < trials; tr++ {
				seed := opts.Seed + int64(m*1000+tr)
				agg, meanLat, err := runSharedDiskAccesses(m, accessBytes, blockBytes, lay, admitted, seed)
				if err != nil {
					return nil, err
				}
				aggSum += agg
				latSum += meanLat
			}
			name := "interleaved"
			if admitted {
				name = "admitted"
			}
			row[name+" MBps"] = aggSum / float64(trials) / 1e6
			row[name+" mean lat (s)"] = latSum / float64(trials)
		}
		d.Add(float64(m), row)
	}
	return []Dataset{d}, nil
}

// runSharedDiskAccesses simulates m concurrent 64 MB accesses against
// one drive and returns (aggregate bytes/s over the makespan, mean
// client completion latency).
func runSharedDiskAccesses(m int, accessBytes, blockBytes int64, lay disk.Layout, admitted bool, seed int64) (float64, float64, error) {
	k := sim.New()
	drive, err := disk.NewDrive(disk.DefaultParams(), lay, disk.Background{}, seed)
	if err != nil {
		return 0, 0, err
	}
	q := disk.NewQueueServer(k, drive)
	done := make([]float64, m)
	blocks := int(accessBytes / blockBytes)
	if admitted {
		// Whole accesses serialized: one large sequential request per
		// client, queued FCFS — what a capacity-1 controller yields.
		for c := 0; c < m; c++ {
			c := c
			if _, err := q.Submit(accessBytes, func(start, end float64) {
				done[c] = end
			}); err != nil {
				return 0, 0, err
			}
		}
	} else {
		// Round-robin interleave of every client's blocks: the head
		// re-positions at each block boundary (a new 1 MB request).
		for b := 0; b < blocks; b++ {
			for c := 0; c < m; c++ {
				c := c
				last := b == blocks-1
				if _, err := q.Submit(blockBytes, func(start, end float64) {
					if last {
						done[c] = end
					}
				}); err != nil {
					return 0, 0, err
				}
			}
		}
	}
	k.Run()
	var makespan, latSum float64
	for c := 0; c < m; c++ {
		if done[c] == 0 {
			return 0, 0, fmt.Errorf("experiments: client %d never completed", c)
		}
		if done[c] > makespan {
			makespan = done[c]
		}
		latSum += done[c]
	}
	agg := float64(int64(m)*accessBytes) / makespan
	return agg, latSum / float64(m), nil
}
