package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ltcode"
	"repro/internal/schemes"
	"repro/internal/workload"
)

// Fig635 regenerates Figs 6-35/6-36 (§6.3.3): the impact of the 2 GB
// per-filer filesystem cache on repeated reads of the same data under
// random competitive workloads. The x axis indexes the scheme
// (0=RAID-0, 1=RRAID-S, 2=RRAID-A, 3=RobuSTore); the two series
// compare cache-disabled and cache-enabled runs. With caching, later
// accesses hit the filers' caches (higher mean bandwidth) while the
// cold first access does not (higher latency variation) — both paper
// observations.
func Fig635(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	trial := cluster.Trial{
		Layout:     workload.HeterogeneousLayout(),
		Background: workload.HeterogeneousBackground(),
	}
	bw := Dataset{
		ID: "fig6-35", Title: "Cache Impact on Access Bandwidth",
		XLabel: "scheme index", YLabel: "bandwidth (MBps)",
		Order: []string{"no-cache", "cache"},
		Notes: []string{"x: 0=RAID-0 1=RRAID-S 2=RRAID-A 3=RobuSTore"},
	}
	lat := Dataset{
		ID: "fig6-36", Title: "Cache Impact on Variation of Access Latency",
		XLabel: "scheme index", YLabel: "stddev of access latency (s)",
		Order: []string{"no-cache", "cache"},
		Notes: []string{"x: 0=RAID-0 1=RRAID-S 2=RRAID-A 3=RobuSTore"},
	}
	for si, s := range schemes.AllSchemes {
		bwRow := map[string]float64{}
		latRow := map[string]float64{}
		for _, cached := range []bool{false, true} {
			ps, err := runCachedSequence(opts, trial, s, cached, int64(si))
			if err != nil {
				return nil, err
			}
			name := "no-cache"
			if cached {
				name = "cache"
			}
			bwRow[name] = ps.Bandwidth.Mean
			latRow[name] = ps.Latency.StdDev
		}
		bw.Add(float64(si), bwRow)
		lat.Add(float64(si), latRow)
	}
	return []Dataset{bw, lat}, nil
}

// runCachedSequence reads the same placement opts.Trials times on one
// cluster, redrawing disk behaviour between accesses while cache
// contents persist.
func runCachedSequence(opts Options, trial cluster.Trial, s schemes.Scheme, cached bool, pointSeed int64) (PointStats, error) {
	ccfg := baselineCluster()
	if cached {
		ccfg.FilerCache = 2 << 30
	}
	cfg := schemes.DefaultConfig(s)
	cl, err := cluster.New(ccfg, trial, opts.Seed+pointSeed*7919)
	if err != nil {
		return PointStats{}, err
	}
	disks, err := cl.SelectDisks(cfg.Disks)
	if err != nil {
		return PointStats{}, err
	}
	var g *ltcode.Graph
	if s == schemes.RobuSTore {
		g, err = schemes.BuildGraphLenient(cfg.LTParams(), cfg.N(), cl.RNG())
		if err != nil {
			return PointStats{}, err
		}
	}
	pl := schemes.BalancedPlacement(cfg, disks)
	results := make([]schemes.Result, 0, opts.Trials)
	for tr := 0; tr < opts.Trials; tr++ {
		if tr > 0 {
			if err := cl.ReconfigureDrives(trial); err != nil {
				return PointStats{}, err
			}
		}
		res, err := schemes.SimulateRead(cl, cfg, pl, g)
		if err != nil {
			return PointStats{}, fmt.Errorf("cached sequence %v trial %d: %w", s, tr, err)
		}
		results = append(results, res)
	}
	return Collect(results), nil
}
