package experiments

import (
	"fmt"

	"repro/internal/schemes"
)

// Headline regenerates the abstract's summary numbers: 1 GB accesses
// on 64 disks with heterogeneous (random) layouts — read and write
// bandwidth, latency standard deviation, and I/O overhead for all four
// schemes, plus the RobuSTore-vs-RAID-0 ratios the paper quotes
// (~15x read bandwidth, ~5x robustness, ~5x write bandwidth, ~2-3x
// storage, ~40-50% I/O overhead).
func Headline(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	d := Dataset{
		ID: "headline", Title: "Abstract headline: 1 GB on 64 disks, heterogeneous layout",
		XLabel: "scheme index", YLabel: "mixed",
		Order: []string{"read MBps", "read lat s", "read lat std", "read IO ovh",
			"write MBps", "write lat std", "write IO ovh"},
		Notes: []string{"x: 0=RAID-0 1=RRAID-S 2=RRAID-A 3=RobuSTore"},
	}
	trial := hetLayoutTrial()
	var raid0Read, robuRead, raid0ReadStd, robuReadStd, raid0Write, robuWrite float64
	for si, s := range schemes.AllSchemes {
		cfg := schemes.DefaultConfig(s)
		read, err := runPoint(opts, int64(si), func(seed int64) (schemes.Result, error) {
			return schemes.RunReadTrial(baselineCluster(), trial, cfg, seed)
		})
		if err != nil {
			return nil, err
		}
		write, err := runPoint(opts, int64(100+si), func(seed int64) (schemes.Result, error) {
			return schemes.RunWriteTrial(baselineCluster(), trial, cfg, seed)
		})
		if err != nil {
			return nil, err
		}
		d.Add(float64(si), map[string]float64{
			"read MBps":     read.Bandwidth.Mean,
			"read lat s":    read.Latency.Mean,
			"read lat std":  read.Latency.StdDev,
			"read IO ovh":   read.IOOverhead.Mean,
			"write MBps":    write.Bandwidth.Mean,
			"write lat std": write.Latency.StdDev,
			"write IO ovh":  write.IOOverhead.Mean,
		})
		switch s {
		case schemes.RAID0:
			raid0Read, raid0ReadStd, raid0Write = read.Bandwidth.Mean, read.Latency.StdDev, write.Bandwidth.Mean
		case schemes.RobuSTore:
			robuRead, robuReadStd, robuWrite = read.Bandwidth.Mean, read.Latency.StdDev, write.Bandwidth.Mean
		}
	}
	d.Notes = append(d.Notes,
		fmt.Sprintf("RobuSTore/RAID-0 read bandwidth: %.1fx (paper ~15x)", robuRead/raid0Read),
		fmt.Sprintf("RAID-0/RobuSTore read latency stddev: %.1fx (paper ~5x robustness gain)", raid0ReadStd/robuReadStd),
		fmt.Sprintf("RobuSTore/RAID-0 write bandwidth: %.1fx (paper ~5-6x)", robuWrite/raid0Write),
	)
	return []Dataset{d}, nil
}
