package experiments

import "testing"

func TestAblationLT(t *testing.T) {
	ds, err := AblationLT(Options{Trials: 6, Seed: 1})
	checkDatasets(t, "ablation-lt", ds, err)
	d := ds[0]
	origFail := d.Series("orig fail rate")
	imprFail := d.Series("impr fail rate")
	origSpread := d.Series("orig degree spread")
	imprSpread := d.Series("impr degree spread")
	var origFailSum, imprFailSum float64
	for i := range d.Points {
		origFailSum += origFail[i]
		imprFailSum += imprFail[i]
		if imprSpread[i] >= origSpread[i] {
			t.Errorf("K=%v: uniform coverage spread %.2f not below random %.2f",
				d.Points[i].X, imprSpread[i], origSpread[i])
		}
	}
	if imprFailSum >= origFailSum {
		t.Fatalf("improved LT failure %.2f not below original %.2f", imprFailSum, origFailSum)
	}
}

func TestAblationLazyXor(t *testing.T) {
	ds, err := AblationLazyXor(Options{Trials: 4, Seed: 1})
	checkDatasets(t, "ablation-lazy", ds, err)
	d := ds[0]
	lazy := d.Series("lazy XORs")
	greedy := d.Series("greedy XORs (edges received)")
	for i := range d.Points {
		if lazy[i] >= greedy[i] {
			t.Fatalf("point %d: lazy %.0f not below greedy %.0f", i, lazy[i], greedy[i])
		}
	}
	// Lazy cost must be flat while greedy grows with redundant blocks.
	if greedy[len(greedy)-1] <= greedy[0] {
		t.Fatal("greedy cost did not grow with redundant deliveries")
	}
	if lazy[len(lazy)-1] > 1.2*lazy[0] {
		t.Fatalf("lazy cost grew with redundant deliveries: %.0f -> %.0f", lazy[0], lazy[len(lazy)-1])
	}
}

func TestAblationCancel(t *testing.T) {
	ds, err := AblationCancel(Options{Trials: 4, Seed: 1})
	checkDatasets(t, "ablation-cancel", ds, err)
	d := ds[0]
	with := d.Series("with cancel")
	without := d.Series("without cancel")
	for i := range d.Points {
		if with[i] >= without[i] {
			t.Fatalf("scheme %v: cancellation did not reduce I/O overhead (%.2f vs %.2f)",
				d.Points[i].X, with[i], without[i])
		}
	}
}
