package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/erasure"
	"repro/internal/ltcode"
	"repro/internal/rs"
)

// Table51 regenerates Table 5-1: Reed-Solomon encode/decode bandwidth
// for 16 MB of data at K ∈ {4, 8, 16, 32}, N = 2K. Bandwidths are
// wall-clock on the host CPU (the paper used a 2.4 GHz Xeon); the
// defining shape is bandwidth ∝ 1/K.
func Table51(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	d := Dataset{
		ID: "table5-1", Title: "Coding Bandwidth of Reed-Solomon Codes (16 MB data, N=2K)",
		XLabel: "K", YLabel: "MBps",
		Order: []string{"encode MBps", "decode MBps"},
	}
	const total = 16 << 20
	reps := opts.Trials/10 + 1
	rng := rand.New(rand.NewSource(opts.Seed))
	for _, k := range []int{32, 16, 8, 4} {
		code, err := rs.New(k, k)
		if err != nil {
			return nil, err
		}
		size := total / k
		shards := make([][]byte, code.N())
		for i := 0; i < k; i++ {
			shards[i] = make([]byte, size)
			rng.Read(shards[i])
		}
		// Encode timing.
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := code.Encode(shards); err != nil {
				return nil, err
			}
		}
		encMBps := float64(total) * float64(reps) / time.Since(start).Seconds() / 1e6
		// Decode timing: random K-subsets reconstruct the rest.
		var decTotal time.Duration
		for r := 0; r < reps; r++ {
			work := make([][]byte, len(shards))
			for _, j := range rng.Perm(code.N())[:k] {
				work[j] = shards[j]
			}
			t0 := time.Now()
			if err := code.Reconstruct(work); err != nil {
				return nil, err
			}
			decTotal += time.Since(t0)
		}
		decMBps := float64(total) * float64(reps) / decTotal.Seconds() / 1e6
		d.Add(float64(k), map[string]float64{"encode MBps": encMBps, "decode MBps": decMBps})
	}
	d.Notes = append(d.Notes, "paper (2.4 GHz Xeon): K=32 enc 13.7 dec 15.9; K=4 enc 112.2 dec 99.5")
	return []Dataset{d}, nil
}

// Fig41 regenerates Fig 4-1: the cumulative probability that M random
// blocks reassemble K=1024 originals at 4x storage, for plain-text
// replication vs erasure coding. Exact curves use the Appendix A
// models (stable DP forms); Monte-Carlo curves use the actual
// improved-LT decoder.
func Fig41(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	const k, r = 1024, 4
	maxM := k * r
	d := Dataset{
		ID: "fig4-1", Title: "Cumulative Probability of Reassembly (K=1024, 4x storage)",
		XLabel: "blocks received M", YLabel: "P(reassembly)",
		Order: []string{"replication (exact)", "LT model (exact)", "replication (MC)", "LT decoder (MC)"},
	}
	repl := erasure.ReplicationCoverageCurve(k, r, maxM)
	dart := erasure.DartCoverageCurve(k, 5, maxM)
	rng := rand.New(rand.NewSource(opts.Seed))
	var replSamples, ltSamples []int
	mcTrials := opts.Trials
	for i := 0; i < mcTrials; i++ {
		replSamples = append(replSamples, erasure.ReplicationBlocksNeeded(k, r, rng))
		ltSamples = append(ltSamples, erasure.LTBlocksNeeded(
			ltcode.Params{K: k, C: 1.1, Delta: 0.5}, r, rng))
	}
	replCDF := erasure.EmpiricalCDF(replSamples, maxM)
	ltCDF := erasure.EmpiricalCDF(ltSamples, maxM)
	for m := k; m <= maxM; m += 64 {
		d.Add(float64(m), map[string]float64{
			"replication (exact)": repl[m],
			"LT model (exact)":    dart[m],
			"replication (MC)":    replCDF[m],
			"LT decoder (MC)":     ltCDF[m],
		})
	}
	d.Notes = append(d.Notes, "paper: ~3K blocks needed with replication vs ~1.5K erasure-coded")
	return []Dataset{d}, nil
}

// ltSweepCs and ltSweepDeltas are the parameter grids of Figs 5-1/5-2.
var (
	ltSweepCs     = []float64{0.1, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0}
	ltSweepDeltas = []float64{0.01, 0.1, 0.5, 1.0}
)

// ltOverheadSweep measures reception overhead and decode-edge
// statistics over the (C, δ) grid for one K.
func ltOverheadSweep(opts Options, k int) (meanOvh, relStdOvh, meanEdges, relStdEdges Dataset) {
	mk := func(id, title, ylabel string) Dataset {
		d := Dataset{ID: id, Title: title, XLabel: "C", YLabel: ylabel}
		for _, delta := range ltSweepDeltas {
			d.Order = append(d.Order, fmt.Sprintf("δ=%g", delta))
		}
		return d
	}
	meanOvh = mk(fmt.Sprintf("fig5-1-k%d-mean", k),
		fmt.Sprintf("Reception Overhead of LT Codes, K=%d (mean)", k), "reception overhead")
	relStdOvh = mk(fmt.Sprintf("fig5-1-k%d-std", k),
		fmt.Sprintf("Reception Overhead of LT Codes, K=%d (relative stddev)", k), "stddev/(K+received)")
	meanEdges = mk(fmt.Sprintf("fig5-2-k%d-mean", k),
		fmt.Sprintf("Edges Used on LT Decoding, K=%d (mean)", k), "XOR block ops")
	relStdEdges = mk(fmt.Sprintf("fig5-2-k%d-std", k),
		fmt.Sprintf("Edges Used on LT Decoding, K=%d (relative stddev)", k), "stddev/mean")
	for _, c := range ltSweepCs {
		mo := map[string]float64{}
		so := map[string]float64{}
		me := map[string]float64{}
		se := map[string]float64{}
		for _, delta := range ltSweepDeltas {
			p := ltcode.Params{K: k, C: c, Delta: delta}
			rng := rand.New(rand.NewSource(opts.Seed + int64(k)*31 + int64(c*1000) + int64(delta*100000)))
			st := ltcode.MeasureOverheadStats(p, 4*k, opts.Trials, rng, ltcode.DefaultGraphOptions())
			name := fmt.Sprintf("δ=%g", delta)
			if st.Failures == opts.Trials {
				continue
			}
			mo[name] = st.MeanOverhead
			if st.MeanOverhead > -1 {
				so[name] = st.StdOverhead / (1 + st.MeanOverhead)
			}
			me[name] = st.MeanXorOps
			if st.MeanXorOps > 0 {
				se[name] = st.StdXorOps / st.MeanXorOps
			}
		}
		meanOvh.Add(c, mo)
		relStdOvh.Add(c, so)
		meanEdges.Add(c, me)
		relStdEdges.Add(c, se)
	}
	return
}

// Fig51 regenerates Fig 5-1: reception overhead (mean and relative
// stddev) across the (C, δ) grid for K ∈ {128, 512, 1024}.
func Fig51(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	var out []Dataset
	for _, k := range []int{128, 512, 1024} {
		mo, so, _, _ := ltOverheadSweep(opts, k)
		out = append(out, mo, so)
	}
	return out, nil
}

// Fig52 regenerates Fig 5-2: the number of XOR edges used during
// decoding (mean and relative stddev) for K=1024.
func Fig52(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	_, _, me, se := ltOverheadSweep(opts, 1024)
	return []Dataset{me, se}, nil
}

// Fig53 regenerates Fig 5-3: actual decode bandwidth (wall clock) and
// reception overhead across (C, δ) for K=1024 with 16 KB blocks.
func Fig53(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	const k = 1024
	const blockSize = 16 << 10
	bw := Dataset{ID: "fig5-3-bw", Title: "Decoding Bandwidth of LT Codes (K=1024)",
		XLabel: "C", YLabel: "MBps"}
	ovh := Dataset{ID: "fig5-3-ovh", Title: "Reception Overhead of LT Codes (K=1024, same runs)",
		XLabel: "C", YLabel: "reception overhead"}
	deltas := []float64{0.01, 0.1, 0.5}
	for _, delta := range deltas {
		bw.Order = append(bw.Order, fmt.Sprintf("δ=%g", delta))
		ovh.Order = append(ovh.Order, fmt.Sprintf("δ=%g", delta))
	}
	reps := opts.Trials/10 + 1
	for _, c := range []float64{0.5, 1.0, 2.0} {
		bwRow := map[string]float64{}
		ovhRow := map[string]float64{}
		for _, delta := range deltas {
			p := ltcode.Params{K: k, C: c, Delta: delta}
			rng := rand.New(rand.NewSource(opts.Seed + int64(c*7000) + int64(delta*991)))
			g, err := ltcode.BuildGraph(p, 3*k, rng, ltcode.DefaultGraphOptions())
			if err != nil {
				return nil, err
			}
			orig := make([][]byte, k)
			for i := range orig {
				orig[i] = make([]byte, blockSize)
				rng.Read(orig[i])
			}
			coded, err := g.Encode(orig)
			if err != nil {
				return nil, err
			}
			order := rng.Perm(g.N)
			var elapsed time.Duration
			var received int
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				dec := ltcode.NewDecoder(g)
				for _, idx := range order {
					if _, err := dec.AddData(idx, coded[idx]); err != nil {
						return nil, err
					}
					if dec.Complete() {
						break
					}
				}
				elapsed += time.Since(t0)
				received += dec.Received()
			}
			name := fmt.Sprintf("δ=%g", delta)
			bwRow[name] = float64(k*blockSize) * float64(reps) / elapsed.Seconds() / 1e6
			ovhRow[name] = float64(received)/float64(reps*k) - 1
		}
		bw.Add(c, bwRow)
		ovh.Add(c, ovhRow)
	}
	bw.Notes = append(bw.Notes, "paper (2.8 GHz Opteron): ~394 MBps at C=1 δ=0.1; ~550 MBps at C=2 δ=0.01")
	return []Dataset{bw, ovh}, nil
}
