package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot renders the dataset as an ASCII chart: one mark per series per
// x position, y scaled to the data range. It is a quick visual check
// on figure shapes next to the numeric tables (use -plot on
// cmd/robustore-sim).
func (d *Dataset) Plot(w io.Writer, height int) {
	if height < 4 {
		height = 12
	}
	names := d.seriesNames()
	if len(d.Points) == 0 || len(names) == 0 {
		fmt.Fprintf(w, "(no data to plot for %s)\n", d.ID)
		return
	}
	marks := "*o+x#@%&"
	// Collect the y range over all series.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, n := range names {
		for _, v := range d.Series(n) {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintf(w, "(no finite values to plot for %s)\n", d.ID)
		return
	}
	if hi == lo {
		hi = lo + 1
	}
	cols := len(d.Points)
	colWidth := 4
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = fill(' ', cols*colWidth)
	}
	for si, n := range names {
		mark := marks[si%len(marks)]
		for ci, v := range d.Series(n) {
			if math.IsNaN(v) {
				continue
			}
			row := int(math.Round((v - lo) / (hi - lo) * float64(height-1)))
			r := height - 1 - row
			c := ci*colWidth + si%colWidth
			grid[r][c] = mark
		}
	}
	fmt.Fprintf(w, "-- %s: %s --\n", d.ID, d.Title)
	for r, line := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%-10.4g", hi)
		}
		if r == height-1 {
			label = fmt.Sprintf("%-10.4g", lo)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(line))
	}
	// X axis labels (first / last).
	fmt.Fprintf(w, "%10s|%-*.4g%*.4g\n", "", cols*colWidth/2, d.Points[0].X,
		cols*colWidth-cols*colWidth/2, d.Points[len(d.Points)-1].X)
	var legend []string
	for si, n := range names {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], n))
	}
	fmt.Fprintf(w, "%10s %s\n\n", "", strings.Join(legend, "  "))
}

func fill(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}
