package experiments

import "testing"

func TestCodesSurvey(t *testing.T) {
	ds, err := CodesSurvey(Options{Trials: 5, Seed: 1})
	checkDatasets(t, "ext-codes", ds, err)
	d := ds[0]
	if len(d.Points) != 4 {
		t.Fatalf("survey has %d code rows, want 4", len(d.Points))
	}
	ovh := d.Series("reception ovh")
	enc := d.Series("encode MBps")
	rateless := d.Series("rateless")
	// RS: zero overhead, slowest throughput, fixed rate.
	if ovh[0] != 0 {
		t.Fatalf("RS reception overhead %v, want 0", ovh[0])
	}
	for i := 1; i < 4; i++ {
		if enc[i] <= enc[0] {
			t.Fatalf("code %d not faster than RS at long codewords (%v <= %v)", i, enc[i], enc[0])
		}
	}
	// LT and Raptor are the rateless pair (the §5.2.1 requirement).
	if rateless[0] != 0 || rateless[1] != 0 || rateless[2] != 1 || rateless[3] != 1 {
		t.Fatalf("rateless flags wrong: %v", rateless)
	}
	// Near-optimal codes pay a positive reception overhead.
	for i := 1; i < 4; i++ {
		if ovh[i] <= 0 || ovh[i] > 1 {
			t.Fatalf("code %d overhead %v implausible", i, ovh[i])
		}
	}
}

func TestLTParamsStudy(t *testing.T) {
	ds, err := LTParamsStudy(Options{Trials: 3, Seed: 1})
	checkDatasets(t, "ext-ltparams", ds, err)
	io := ds[1]
	// §5.2.4: "small δ and large C cause less CPU overhead, but more
	// communication overhead" — so I/O overhead at C=2/δ=0.01 must
	// exceed C=0.3/δ=1.
	cheapComms := io.Series("δ=1")[0]
	denseComms := io.Series("δ=0.01")[len(io.Points)-1]
	if denseComms <= cheapComms {
		t.Fatalf("C/δ communication tradeoff inverted: C=2/δ=0.01 overhead %v not above C=0.3/δ=1 %v",
			denseComms, cheapComms)
	}
	for _, n := range io.Order {
		for _, v := range io.Series(n) {
			if v < 0 || v > 2.5 {
				t.Fatalf("series %s has implausible overhead %v", n, v)
			}
		}
	}
}

func TestAdmissionStudy(t *testing.T) {
	ds, err := AdmissionStudy(Options{Trials: 5, Seed: 1})
	checkDatasets(t, "ext-admission", ds, err)
	d := ds[0]
	il := d.Series("interleaved MBps")
	ad := d.Series("admitted MBps")
	ilLat := d.Series("interleaved mean lat (s)")
	adLat := d.Series("admitted mean lat (s)")
	for i, p := range d.Points {
		if ad[i] <= il[i] {
			t.Fatalf("M=%v: admitted throughput %v not above interleaved %v", p.X, ad[i], il[i])
		}
		if p.X > 1 && adLat[i] >= ilLat[i] {
			t.Fatalf("M=%v: admitted mean latency %v not below interleaved %v", p.X, adLat[i], ilLat[i])
		}
	}
	// Interleaved mean latency grows ~linearly with client count;
	// admission cuts it roughly in half at high M.
	last := len(d.Points) - 1
	if ilLat[last] < 1.5*adLat[last] {
		t.Fatalf("at M=16 admission saved too little: %v vs %v", adLat[last], ilLat[last])
	}
}
