package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/schemes"
	"repro/internal/workload"
)

// LTParamsStudy connects the Ch. 5 coding-parameter analysis to the
// Ch. 6 end-to-end results: the baseline RobuSTore read (1 GB, 64
// disks, D=3, heterogeneous layout) swept over the LT (C, δ) grid.
// Reception overhead translates directly into read I/O overhead, and
// — because extra blocks must also be fetched — into bandwidth. Per
// §5.2.4, small δ with large C trades communication for CPU: expect
// the highest I/O overhead at C=2/δ=0.01 and the lowest around
// small C / large δ.
func LTParamsStudy(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	bw := Dataset{
		ID: "ext-ltparams-bw", Title: "RobuSTore read bandwidth vs LT parameters (baseline config)",
		XLabel: "C", YLabel: "bandwidth (MBps)",
	}
	io := Dataset{
		ID: "ext-ltparams-io", Title: "RobuSTore read I/O overhead vs LT parameters (baseline config)",
		XLabel: "C", YLabel: "I/O overhead",
	}
	deltas := []float64{0.01, 0.1, 0.5, 1.0}
	for _, delta := range deltas {
		name := fmt.Sprintf("δ=%g", delta)
		bw.Order = append(bw.Order, name)
		io.Order = append(io.Order, name)
	}
	trial := cluster.Trial{
		Layout:     workload.HeterogeneousLayout(),
		Background: workload.NoBackground(),
	}
	for ci, c := range []float64{0.3, 0.5, 1.0, 2.0} {
		bwRow := map[string]float64{}
		ioRow := map[string]float64{}
		for di, delta := range deltas {
			cfg := schemes.DefaultConfig(schemes.RobuSTore)
			cfg.LTC = c
			cfg.LTDelta = delta
			ps, err := runPoint(opts, int64(ci*17+di+3), func(seed int64) (schemes.Result, error) {
				return schemes.RunReadTrial(baselineCluster(), trial, cfg, seed)
			})
			if err != nil {
				return nil, fmt.Errorf("ext-ltparams C=%v δ=%v: %w", c, delta, err)
			}
			name := fmt.Sprintf("δ=%g", delta)
			bwRow[name] = ps.Bandwidth.Mean
			ioRow[name] = ps.IOOverhead.Mean
		}
		bw.Add(c, bwRow)
		io.Add(c, ioRow)
	}
	bw.Notes = append(bw.Notes,
		"the simulator's baseline uses C=1, δ=0.5 (the paper's §6.2.5 choice)")
	return []Dataset{bw, io}, nil
}
