package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/schemes"
)

func tiny() Options { return Options{Trials: 3, Seed: 1} }

func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if e.ID == "" || e.Title == "" || e.Run == nil || e.Figures == "" {
			t.Errorf("entry %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(Registry) < 15 {
		t.Fatalf("registry has only %d entries", len(Registry))
	}
}

func TestFindAndRun(t *testing.T) {
	if _, ok := Find("headline"); !ok {
		t.Fatal("headline not found")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus id found")
	}
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("Run with bogus id succeeded")
	}
	if len(IDs()) != len(Registry) {
		t.Fatal("IDs length mismatch")
	}
}

func TestDatasetFormatAndCSV(t *testing.T) {
	d := Dataset{ID: "x", Title: "T", XLabel: "x", Order: []string{"a", "b"}}
	d.Add(1, map[string]float64{"a": 2, "b": math.NaN()})
	d.Add(2, map[string]float64{"a": 3, "c": 4})
	var sb strings.Builder
	d.Format(&sb)
	out := sb.String()
	for _, want := range []string{"== x: T ==", "a", "b", "c", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	d.WriteCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "x,a,b,c" {
		t.Fatalf("CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,2,,") {
		t.Fatalf("CSV NaN handling wrong: %q", lines[1])
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Fatal("plain string escaped")
	}
	if csvEscape(`a,"b`) != `"a,""b"` {
		t.Fatalf("escape wrong: %q", csvEscape(`a,"b`))
	}
}

func TestSeriesExtraction(t *testing.T) {
	d := Dataset{Order: []string{"a"}}
	d.Add(1, map[string]float64{"a": 5})
	d.Add(2, map[string]float64{})
	s := d.Series("a")
	if s[0] != 5 || !math.IsNaN(s[1]) {
		t.Fatalf("Series = %v", s)
	}
}

func TestCollect(t *testing.T) {
	ps := Collect([]schemes.Result{
		{Bandwidth: 1e6, Latency: 1, IOOverhead: 0.5, Reception: 0.4},
		{Bandwidth: 3e6, Latency: 3, IOOverhead: 0.5, Reception: 0.6, Failed: true},
	})
	if ps.Bandwidth.Mean != 2 {
		t.Fatalf("bandwidth mean %v", ps.Bandwidth.Mean)
	}
	if ps.Latency.Mean != 2 || ps.Failures != 1 {
		t.Fatalf("collect wrong: %+v", ps)
	}
}

// checkDatasets verifies basic structural invariants of an
// experiment's output.
func checkDatasets(t *testing.T, id string, ds []Dataset, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(ds) == 0 {
		t.Fatalf("%s produced no datasets", id)
	}
	for _, d := range ds {
		if d.ID == "" || d.Title == "" {
			t.Errorf("%s: dataset missing id/title", id)
		}
		if len(d.Points) == 0 {
			t.Errorf("%s: dataset %s empty", id, d.ID)
		}
	}
}

func TestTable51Shape(t *testing.T) {
	ds, err := Table51(tiny())
	checkDatasets(t, "table5-1", ds, err)
	enc := ds[0].Series("encode MBps")
	// X axis is K = 32, 16, 8, 4: bandwidth must increase as K drops.
	for i := 1; i < len(enc); i++ {
		if enc[i] <= enc[i-1] {
			t.Fatalf("RS encode bandwidth not ∝ 1/K: %v", enc)
		}
	}
}

func TestFig41Shape(t *testing.T) {
	ds, err := Fig41(Options{Trials: 10, Seed: 1})
	checkDatasets(t, "fig4-1", ds, err)
	d := ds[0]
	repl := d.Series("replication (exact)")
	lt := d.Series("LT decoder (MC)")
	// The LT curve must dominate replication in the mid-range: find M
	// where LT reaches ~1 and check replication is still low there.
	for i, p := range d.Points {
		if lt[i] >= 0.95 {
			if repl[i] > 0.5 {
				t.Fatalf("at M=%v replication already at %v; LT should win decisively", p.X, repl[i])
			}
			return
		}
	}
	t.Fatal("LT Monte-Carlo curve never reached 0.95")
}

func TestTable61AndFig65(t *testing.T) {
	ds, err := Table61(Options{Trials: 4, Seed: 1})
	checkDatasets(t, "table6-1", ds, err)
	seq := ds[0].Series("PSeq=1")
	rnd := ds[0].Series("PSeq=0")
	for i := range seq {
		if seq[i] <= rnd[i] {
			t.Fatalf("sequential not faster at row %d", i)
		}
	}
	ds, err = Fig65(Options{Trials: 3, Seed: 1})
	checkDatasets(t, "fig6-5", ds, err)
	util := ds[0].Series("bg utilization")
	if util[0] <= util[len(util)-1] {
		t.Fatal("bg utilization should fall with interval")
	}
}

func TestFig66Shape(t *testing.T) {
	ds, err := Fig66(tiny())
	checkDatasets(t, "fig6-6", ds, err)
	bw := ds[0]
	robu := bw.Series("RobuSTore")
	raid := bw.Series("RAID-0")
	last := len(bw.Points) - 1
	if robu[last] < 5*raid[last] {
		t.Fatalf("at 128 disks RobuSTore %.0f not >> RAID-0 %.0f", robu[last], raid[last])
	}
	// RobuSTore bandwidth grows with disk count.
	if robu[last] <= robu[0] {
		t.Fatal("RobuSTore bandwidth did not grow with disks")
	}
}

func TestFig615Shape(t *testing.T) {
	ds, err := Fig615(tiny())
	checkDatasets(t, "fig6-15", ds, err)
	bw := ds[0]
	robu := bw.Series("RobuSTore")
	// RobuSTore missing at D=0, present and rising by D=2.
	if !math.IsNaN(robu[0]) {
		t.Fatal("RobuSTore should be absent at D=0")
	}
	var d1, d3 float64
	for i, p := range bw.Points {
		if p.X == 1 {
			d1 = robu[i]
		}
		if p.X == 3 {
			d3 = robu[i]
		}
	}
	if !(d3 > d1) {
		t.Fatalf("RobuSTore bandwidth at D=3 (%v) not above D=1 (%v)", d3, d1)
	}
}

func TestFig618WriteShape(t *testing.T) {
	ds, err := Fig618(tiny())
	checkDatasets(t, "fig6-18", ds, err)
	bw := ds[0]
	for i, p := range bw.Points {
		if p.X != 3 {
			continue
		}
		robu := bw.Series("RobuSTore")[i]
		rrs := bw.Series("RRAID-S")[i]
		if robu < 5*rrs {
			t.Fatalf("write at D=3: RobuSTore %.0f not >> RRAID-S %.0f", robu, rrs)
		}
	}
}

func TestFig624HomogeneousPenalty(t *testing.T) {
	ds, err := Fig624(tiny())
	checkDatasets(t, "fig6-24", ds, err)
	bw := ds[0]
	robu := bw.Series("RobuSTore")
	rrs := bw.Series("RRAID-S")
	last := len(bw.Points) - 1
	// §7.2: in homogeneous environments RobuSTore trails plain striping
	// (but by far less than its 50% reception overhead).
	if robu[last] > rrs[last]*1.05 {
		t.Fatalf("homogeneous: RobuSTore %.0f should not beat RRAID-S %.0f", robu[last], rrs[last])
	}
	if robu[last] < rrs[last]*0.4 {
		t.Fatalf("homogeneous: RobuSTore %.0f implausibly far below RRAID-S %.0f", robu[last], rrs[last])
	}
}

func TestFig635CacheShape(t *testing.T) {
	ds, err := Fig635(Options{Trials: 4, Seed: 1})
	checkDatasets(t, "fig6-35", ds, err)
	bw := ds[0]
	for i := range bw.Points {
		nc := bw.Series("no-cache")[i]
		c := bw.Series("cache")[i]
		if c <= nc {
			t.Fatalf("scheme %d: cached bandwidth %.0f not above uncached %.0f", i, c, nc)
		}
	}
}

func TestHeadline(t *testing.T) {
	ds, err := Headline(tiny())
	checkDatasets(t, "headline", ds, err)
	if len(ds[0].Points) != 4 {
		t.Fatalf("headline has %d rows, want 4", len(ds[0].Points))
	}
	if len(ds[0].Notes) < 3 {
		t.Fatal("headline missing ratio notes")
	}
}

func TestFig51Structure(t *testing.T) {
	ds, err := Fig51(Options{Trials: 2, Seed: 1})
	checkDatasets(t, "fig5-1", ds, err)
	if len(ds) != 6 { // mean+std per K in {128,512,1024}
		t.Fatalf("fig5-1 produced %d datasets, want 6", len(ds))
	}
}

func TestFig52And53Structure(t *testing.T) {
	ds, err := Fig52(Options{Trials: 2, Seed: 1})
	checkDatasets(t, "fig5-2", ds, err)
	ds, err = Fig53(Options{Trials: 2, Seed: 1})
	checkDatasets(t, "fig5-3", ds, err)
	// Decode bandwidth should be far above the paper's disk speeds.
	bw := ds[0].Series("δ=0.1")
	for _, v := range bw {
		if !math.IsNaN(v) && v < 50 {
			t.Fatalf("decode bandwidth %v MBps implausibly low", v)
		}
	}
}

func TestRemainingExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep skipped in -short")
	}
	for _, id := range []string{"fig6-9", "fig6-12", "fig6-21", "fig6-26", "fig6-29", "fig6-32"} {
		ds, err := Run(id, Options{Trials: 2, Seed: 1})
		checkDatasets(t, id, ds, err)
	}
}

func TestPlotRendering(t *testing.T) {
	d := Dataset{ID: "p", Title: "plot", XLabel: "x", Order: []string{"a", "b"}}
	d.Add(1, map[string]float64{"a": 0, "b": 10})
	d.Add(2, map[string]float64{"a": 5, "b": math.NaN()})
	d.Add(3, map[string]float64{"a": 10, "b": 0})
	var sb strings.Builder
	d.Plot(&sb, 8)
	out := sb.String()
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "10") {
		t.Fatalf("y-axis label missing:\n%s", out)
	}
	// Degenerate datasets must not panic.
	empty := Dataset{ID: "e", Title: "empty"}
	empty.Plot(&sb, 8)
	flat := Dataset{ID: "f", Title: "flat", Order: []string{"a"}}
	flat.Add(1, map[string]float64{"a": 3})
	flat.Plot(&sb, 8)
	nan := Dataset{ID: "n", Title: "nan", Order: []string{"a"}}
	nan.Add(1, map[string]float64{"a": math.NaN()})
	nan.Plot(&sb, 8)
}
