// Package experiments regenerates every table and figure of the
// RobuSTore evaluation (Ch. 5 analysis figures and the Ch. 6
// simulation study). Each experiment is a function from Options to one
// or more Datasets — tabular series directly comparable to the paper's
// plots — registered by figure/table id in Registry.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/schemes"
	"repro/internal/stats"
)

// Options control experiment scale.
type Options struct {
	// Trials is the number of accesses simulated per configuration
	// point (the paper uses 100).
	Trials int
	// Seed is the base RNG seed; all randomness derives from it.
	Seed int64
}

// DefaultOptions reproduce the paper's scale (100 trials/point).
func DefaultOptions() Options { return Options{Trials: 100, Seed: 1} }

// QuickOptions run each point with fewer trials for smoke tests and
// benchmarks.
func QuickOptions() Options { return Options{Trials: 12, Seed: 1} }

func (o Options) normalized() Options {
	if o.Trials <= 0 {
		o.Trials = DefaultOptions().Trials
	}
	return o
}

// Point is one x-position of a dataset with named series values. NaN
// marks series not defined at that point.
type Point struct {
	X      float64
	Series map[string]float64
}

// Dataset is one regenerated table or plot.
type Dataset struct {
	ID     string // e.g. "fig6-6"
	Title  string
	XLabel string
	YLabel string
	Order  []string // series display order
	Points []Point
	Notes  []string
}

// Add appends a point.
func (d *Dataset) Add(x float64, series map[string]float64) {
	d.Points = append(d.Points, Point{X: x, Series: series})
}

// Series returns the y values of one series in point order.
func (d *Dataset) Series(name string) []float64 {
	out := make([]float64, len(d.Points))
	for i, p := range d.Points {
		v, ok := p.Series[name]
		if !ok {
			v = math.NaN()
		}
		out[i] = v
	}
	return out
}

// seriesNames returns the ordered series names (Order first, then any
// extras alphabetically).
func (d *Dataset) seriesNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, n := range d.Order {
		names = append(names, n)
		seen[n] = true
	}
	extra := map[string]bool{}
	for _, p := range d.Points {
		for n := range p.Series {
			if !seen[n] {
				extra[n] = true
			}
		}
	}
	var rest []string
	for n := range extra {
		rest = append(rest, n)
	}
	sort.Strings(rest)
	return append(names, rest...)
}

// Format writes the dataset as an aligned text table.
func (d *Dataset) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", d.ID, d.Title)
	names := d.seriesNames()
	fmt.Fprintf(w, "%-14s", d.XLabel)
	for _, n := range names {
		fmt.Fprintf(w, " %14s", n)
	}
	fmt.Fprintln(w)
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-14.4g", p.X)
		for _, n := range names {
			v, ok := p.Series[n]
			if !ok || math.IsNaN(v) {
				fmt.Fprintf(w, " %14s", "-")
				continue
			}
			fmt.Fprintf(w, " %14.4g", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range d.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the dataset as CSV.
func (d *Dataset) WriteCSV(w io.Writer) {
	names := d.seriesNames()
	fmt.Fprintf(w, "%s,%s\n", csvEscape(d.XLabel), strings.Join(escapeAll(names), ","))
	for _, p := range d.Points {
		fmt.Fprintf(w, "%g", p.X)
		for _, n := range names {
			v, ok := p.Series[n]
			if !ok || math.IsNaN(v) {
				fmt.Fprint(w, ",")
				continue
			}
			fmt.Fprintf(w, ",%g", v)
		}
		fmt.Fprintln(w)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func escapeAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = csvEscape(s)
	}
	return out
}

// PointStats aggregates the trial results at one configuration point.
type PointStats struct {
	Bandwidth  stats.Summary // MBps
	Latency    stats.Summary // seconds
	IOOverhead stats.Summary
	Reception  stats.Summary
	Failures   int
}

// Collect aggregates trial results.
func Collect(results []schemes.Result) PointStats {
	var bw, lat, io, rc []float64
	failures := 0
	for _, r := range results {
		if r.Failed {
			failures++
		}
		bw = append(bw, schemes.MBps(r.Bandwidth))
		lat = append(lat, r.Latency)
		io = append(io, r.IOOverhead)
		rc = append(rc, r.Reception)
	}
	return PointStats{
		Bandwidth:  stats.Summarize(bw),
		Latency:    stats.Summarize(lat),
		IOOverhead: stats.Summarize(io),
		Reception:  stats.Summarize(rc),
		Failures:   failures,
	}
}

// trialFn runs one access with a seed.
type trialFn func(seed int64) (schemes.Result, error)

// runPoint executes opts.Trials accesses and aggregates them.
func runPoint(opts Options, pointSeed int64, fn trialFn) (PointStats, error) {
	results := make([]schemes.Result, 0, opts.Trials)
	for tr := 0; tr < opts.Trials; tr++ {
		res, err := fn(opts.Seed + pointSeed*1_000_003 + int64(tr))
		if err != nil {
			return PointStats{}, err
		}
		results = append(results, res)
	}
	return Collect(results), nil
}
