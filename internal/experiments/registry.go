package experiments

import (
	"fmt"
	"sort"
)

// Entry is one registered experiment.
type Entry struct {
	ID      string
	Title   string
	Figures string // paper figures/tables this regenerates
	Run     func(Options) ([]Dataset, error)
	Heavy   bool // large simulation sweeps (minutes at full trials)
}

// Registry lists every experiment in paper order.
var Registry = []Entry{
	{ID: "table5-1", Title: "Reed-Solomon coding bandwidth", Figures: "Table 5-1", Run: Table51},
	{ID: "fig4-1", Title: "Reassembly probability: replication vs erasure", Figures: "Fig 4-1", Run: Fig41},
	{ID: "fig5-1", Title: "LT reception overhead across (C, δ, K)", Figures: "Fig 5-1", Run: Fig51, Heavy: true},
	{ID: "fig5-2", Title: "LT decode edges across (C, δ)", Figures: "Fig 5-2", Run: Fig52, Heavy: true},
	{ID: "fig5-3", Title: "LT decode bandwidth (wall clock)", Figures: "Fig 5-3", Run: Fig53},
	{ID: "table6-1", Title: "Disk calibration grid", Figures: "Table 6-1", Run: Table61},
	{ID: "fig6-5", Title: "Background workload impact", Figures: "Fig 6-5", Run: Fig65},
	{ID: "fig6-6", Title: "Read vs number of disks", Figures: "Figs 6-6/6-7/6-8", Run: Fig66, Heavy: true},
	{ID: "fig6-9", Title: "Read vs block size", Figures: "Figs 6-9/6-10/6-11", Run: Fig69, Heavy: true},
	{ID: "fig6-12", Title: "Read vs network latency", Figures: "Figs 6-12/6-13/6-14", Run: Fig612, Heavy: true},
	{ID: "fig6-15", Title: "Read vs redundancy", Figures: "Figs 6-15/6-16/6-17", Run: Fig615, Heavy: true},
	{ID: "fig6-18", Title: "Write vs redundancy", Figures: "Figs 6-18/6-19/6-20", Run: Fig618, Heavy: true},
	{ID: "fig6-21", Title: "Read-after-write (unbalanced) vs redundancy", Figures: "Figs 6-21/6-22/6-23", Run: Fig621, Heavy: true},
	{ID: "fig6-24", Title: "Read vs homogeneous competition", Figures: "Figs 6-24/6-25", Run: Fig624, Heavy: true},
	{ID: "fig6-26", Title: "Read vs redundancy under competition", Figures: "Figs 6-26/6-27/6-28", Run: Fig626, Heavy: true},
	{ID: "fig6-29", Title: "Write vs redundancy under competition", Figures: "Figs 6-29/6-30/6-31", Run: Fig629, Heavy: true},
	{ID: "fig6-32", Title: "Read-after-write vs redundancy under competition", Figures: "Figs 6-32/6-33/6-34", Run: Fig632, Heavy: true},
	{ID: "fig6-35", Title: "Filesystem cache impact", Figures: "Figs 6-35/6-36", Run: Fig635, Heavy: true},
	{ID: "headline", Title: "Abstract headline numbers", Figures: "Abstract / §6.4", Run: Headline, Heavy: true},
	{ID: "ablation-lt", Title: "Improved vs original LT codes", Figures: "§5.2.3 (ablation)", Run: AblationLT, Heavy: true},
	{ID: "ablation-lazy", Title: "Lazy vs greedy XOR decoding", Figures: "§5.2.3 (ablation)", Run: AblationLazyXor, Heavy: true},
	{ID: "ablation-cancel", Title: "Request cancellation savings", Figures: "§5.3.3 (ablation)", Run: AblationCancel, Heavy: true},
	{ID: "ext-codes", Title: "Erasure-code survey: RS/Tornado/LT/Raptor", Figures: "§2.2 / §5.2.1 (extension)", Run: CodesSurvey},
	{ID: "ext-admission", Title: "Admission control under concurrent accesses", Figures: "§5.4 / §7.3 (extension)", Run: AdmissionStudy},
	{ID: "ext-ltparams", Title: "End-to-end read vs LT (C, δ)", Figures: "§5.2.2 x §6.3 (extension)", Run: LTParamsStudy, Heavy: true},
}

// Find returns the registry entry with the given id.
func Find(id string) (Entry, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// IDs returns all registered experiment ids (registry order).
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// Run executes one experiment by id.
func Run(id string, opts Options) ([]Dataset, error) {
	e, ok := Find(id)
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	return e.Run(opts)
}
