package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ltcode"
	"repro/internal/raptor"
	"repro/internal/rs"
	"repro/internal/tornado"
)

// CodesSurvey compares the four erasure-code families the dissertation
// surveys (§2.2) on the axes §5.2.1 uses to choose LT codes for
// RobuSTore: reception overhead, encode/decode throughput, whether the
// code is rateless, and the practical codeword-length limit. K=1024,
// 16 KB blocks, 2x expansion where the code is fixed-rate.
//
// Expected shape: RS has zero overhead but collapses in throughput at
// long codewords (here it is run at K=32 sub-blocks, its practical
// regime); Tornado is fast but fixed-rate; Raptor has constant degree
// (fastest encode) at slightly higher overhead than tuned LT; LT is
// rateless with good overhead — the §5.2.1 conclusion.
func CodesSurvey(opts Options) ([]Dataset, error) {
	opts = opts.normalized()
	const (
		k         = 1024
		blockSize = 16 << 10
	)
	d := Dataset{
		ID: "ext-codes", Title: "Erasure-code survey (K=1024, 16 KB blocks, 2x expansion)",
		XLabel: "code index", YLabel: "mixed",
		Order: []string{"reception ovh", "encode MBps", "decode MBps", "rateless"},
		Notes: []string{
			"x: 0=Reed-Solomon(32-block groups) 1=Tornado 2=LT(improved) 3=Raptor",
			"RS overhead is exactly 0 by construction; its listed throughput is at its practical K=32",
		},
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, blockSize)
		rng.Read(data[i])
	}
	reps := opts.Trials/10 + 1

	// --- Reed-Solomon: K=1024 is impractical (quadratic); measure at
	// its realistic grouping of 32 blocks, overhead 0.
	rsRow, err := surveyRS(data, reps, rng)
	if err != nil {
		return nil, err
	}
	d.Add(0, rsRow)

	// --- Tornado.
	tRow, err := surveyTornado(data, reps, rng)
	if err != nil {
		return nil, err
	}
	d.Add(1, tRow)

	// --- Improved LT.
	ltRow, err := surveyLT(data, reps, rng)
	if err != nil {
		return nil, err
	}
	d.Add(2, ltRow)

	// --- Raptor.
	rapRow, err := surveyRaptor(data, reps, rng)
	if err != nil {
		return nil, err
	}
	d.Add(3, rapRow)
	return []Dataset{d}, nil
}

func surveyRS(data [][]byte, reps int, rng *rand.Rand) (map[string]float64, error) {
	const group = 32
	k := len(data)
	code, err := rs.New(group, group)
	if err != nil {
		return nil, err
	}
	blockSize := len(data[0])
	total := int64(k * blockSize)
	start := time.Now()
	for r := 0; r < reps; r++ {
		for g := 0; g+group <= k; g += group {
			shards := make([][]byte, code.N())
			copy(shards, data[g:g+group])
			if err := code.Encode(shards); err != nil {
				return nil, err
			}
		}
	}
	encMBps := float64(total) * float64(reps) / time.Since(start).Seconds() / 1e6
	// Decode: drop half of each group, reconstruct.
	var decTime time.Duration
	for r := 0; r < reps; r++ {
		for g := 0; g+group <= k; g += group {
			shards := make([][]byte, code.N())
			copy(shards, data[g:g+group])
			if err := code.Encode(shards); err != nil {
				return nil, err
			}
			for _, i := range rng.Perm(code.N())[:group] {
				shards[i] = nil
			}
			t0 := time.Now()
			if err := code.Reconstruct(shards); err != nil {
				return nil, err
			}
			decTime += time.Since(t0)
		}
	}
	decMBps := float64(total) * float64(reps) / decTime.Seconds() / 1e6
	return map[string]float64{
		"reception ovh": 0, "encode MBps": encMBps, "decode MBps": decMBps, "rateless": 0,
	}, nil
}

func surveyTornado(data [][]byte, reps int, rng *rand.Rand) (map[string]float64, error) {
	k := len(data)
	code, err := tornado.New(tornado.Params{K: k, Seed: rng.Int63()})
	if err != nil {
		return nil, err
	}
	total := int64(k * len(data[0]))
	start := time.Now()
	var coded [][]byte
	for r := 0; r < reps; r++ {
		if coded, err = code.Encode(data); err != nil {
			return nil, err
		}
	}
	encMBps := float64(total) * float64(reps) / time.Since(start).Seconds() / 1e6
	var decTime time.Duration
	var ovhSum float64
	completed := 0
	for r := 0; r < reps; r++ {
		dec := code.NewDecoder()
		perm := rng.Perm(code.N())
		t0 := time.Now()
		for _, idx := range perm {
			if err := dec.Add(idx, coded[idx]); err != nil {
				return nil, err
			}
			if dec.Received()%32 == 0 && dec.Complete() {
				break
			}
		}
		if dec.Complete() {
			decTime += time.Since(t0)
			ovhSum += float64(dec.Received())/float64(k) - 1
			completed++
		}
	}
	if completed == 0 {
		return nil, fmt.Errorf("experiments: tornado never decoded")
	}
	return map[string]float64{
		"reception ovh": ovhSum / float64(completed),
		"encode MBps":   encMBps,
		"decode MBps":   float64(total) * float64(completed) / decTime.Seconds() / 1e6,
		"rateless":      0,
	}, nil
}

func surveyLT(data [][]byte, reps int, rng *rand.Rand) (map[string]float64, error) {
	k := len(data)
	g, err := ltcode.BuildGraph(ltcode.Params{K: k, C: 1, Delta: 0.1}, 2*k, rng, ltcode.DefaultGraphOptions())
	if err != nil {
		return nil, err
	}
	total := int64(k * len(data[0]))
	start := time.Now()
	var coded [][]byte
	for r := 0; r < reps; r++ {
		if coded, err = g.Encode(data); err != nil {
			return nil, err
		}
	}
	encMBps := float64(total) * float64(reps) / time.Since(start).Seconds() / 1e6
	var decTime time.Duration
	var ovhSum float64
	completed := 0
	for r := 0; r < reps; r++ {
		dec := ltcode.NewDecoder(g)
		t0 := time.Now()
		for _, idx := range rng.Perm(g.N) {
			if _, err := dec.AddData(idx, coded[idx]); err != nil {
				return nil, err
			}
			if dec.Complete() {
				break
			}
		}
		if dec.Complete() {
			decTime += time.Since(t0)
			ovhSum += dec.ReceptionOverhead()
			completed++
		}
	}
	if completed == 0 {
		return nil, fmt.Errorf("experiments: LT never decoded")
	}
	return map[string]float64{
		"reception ovh": ovhSum / float64(completed),
		"encode MBps":   encMBps,
		"decode MBps":   float64(total) * float64(completed) / decTime.Seconds() / 1e6,
		"rateless":      1,
	}, nil
}

func surveyRaptor(data [][]byte, reps int, rng *rand.Rand) (map[string]float64, error) {
	k := len(data)
	code, err := raptor.New(raptor.Params{K: k, Seed: rng.Int63()}, 2*k)
	if err != nil {
		return nil, err
	}
	total := int64(k * len(data[0]))
	start := time.Now()
	var coded [][]byte
	for r := 0; r < reps; r++ {
		if coded, err = code.Encode(data); err != nil {
			return nil, err
		}
	}
	encMBps := float64(total) * float64(reps) / time.Since(start).Seconds() / 1e6
	var decTime time.Duration
	var ovhSum float64
	completed := 0
	for r := 0; r < reps; r++ {
		dec := code.NewDecoder()
		t0 := time.Now()
		for _, idx := range rng.Perm(code.N()) {
			if err := dec.Add(idx, coded[idx]); err != nil {
				return nil, err
			}
			if dec.Complete() {
				break
			}
		}
		if dec.Complete() {
			decTime += time.Since(t0)
			ovhSum += dec.ReceptionOverhead()
			completed++
		}
	}
	if completed == 0 {
		return nil, fmt.Errorf("experiments: raptor never decoded")
	}
	return map[string]float64{
		"reception ovh": ovhSum / float64(completed),
		"encode MBps":   encMBps,
		"decode MBps":   float64(total) * float64(completed) / decTime.Seconds() / 1e6,
		"rateless":      1,
	}, nil
}
