package schemes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// TestQuickReadResultInvariants drives random configurations through
// every scheme's read path and checks the physical invariants every
// Result must satisfy.
func TestQuickReadResultInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := AllSchemes[rng.Intn(len(AllSchemes))]
		cfg := DefaultConfig(s)
		cfg.DataBytes = int64(16+rng.Intn(112)) << 20
		cfg.BlockBytes = 1 << 20
		cfg.Disks = 2 + rng.Intn(30)
		if s != RAID0 {
			cfg.Redundancy = []float64{0.5, 1, 2, 3}[rng.Intn(4)]
		}
		ccfg := cluster.DefaultConfig()
		ccfg.TotalDisks = 32
		ccfg.RTT = []float64{0.001, 0.01, 0.05}[rng.Intn(3)]
		trial := cluster.Trial{
			Layout:     workload.HeterogeneousLayout(),
			Background: workload.NoBackground(),
		}
		if rng.Intn(2) == 0 {
			trial.Background = workload.HeterogeneousBackground()
		}
		res, err := RunReadTrial(ccfg, trial, cfg, seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Physical invariants.
		if res.Latency <= 0 || math.IsNaN(res.Latency) || math.IsInf(res.Latency, 0) {
			t.Logf("seed %d %v: bad latency %v", seed, s, res.Latency)
			return false
		}
		if res.Bandwidth <= 0 {
			return false
		}
		// Network bytes at least the data read (one copy of everything
		// needed), and never more than all stored blocks plus slack.
		if !res.Failed && res.NetBytes < cfg.DataBytes {
			t.Logf("seed %d %v: net bytes %d below data size", seed, s, res.NetBytes)
			return false
		}
		if res.NetBytes > int64(cfg.N()+cfg.Disks*4)*cfg.BlockBytes {
			t.Logf("seed %d %v: net bytes %d above stored volume", seed, s, res.NetBytes)
			return false
		}
		// Delivered blocks: at least K for a successful read; reception
		// consistent with the count.
		if !res.Failed && res.Delivered < cfg.K() {
			t.Logf("seed %d %v: delivered %d < K %d", seed, s, res.Delivered, cfg.K())
			return false
		}
		wantReception := float64(res.Delivered)/float64(cfg.K()) - 1
		if math.Abs(res.Reception-wantReception) > 1e-9 {
			return false
		}
		// RAID-0 never over-fetches.
		if s == RAID0 && res.IOOverhead != 0 {
			t.Logf("seed %d: RAID-0 overhead %v", seed, res.IOOverhead)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWriteResultInvariants does the same for writes.
func TestQuickWriteResultInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := AllSchemes[rng.Intn(len(AllSchemes))]
		cfg := DefaultConfig(s)
		cfg.DataBytes = int64(16+rng.Intn(48)) << 20
		cfg.Disks = 2 + rng.Intn(14)
		if s != RAID0 {
			cfg.Redundancy = []float64{0.5, 1, 3}[rng.Intn(3)]
		}
		ccfg := cluster.DefaultConfig()
		ccfg.TotalDisks = 16
		trial := cluster.Trial{
			Layout:     workload.HeterogeneousLayout(),
			Background: workload.NoBackground(),
		}
		res, err := RunWriteTrial(ccfg, trial, cfg, seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Latency <= 0 || res.Bandwidth <= 0 {
			return false
		}
		// A write must push at least the stored volume over the network.
		if res.NetBytes < int64(cfg.N())*cfg.BlockBytes {
			t.Logf("seed %d %v: wrote %d bytes < N*block", seed, s, res.NetBytes)
			return false
		}
		// I/O overhead for writes is at least the redundancy.
		if res.IOOverhead < cfg.Redundancy-1e-9 {
			t.Logf("seed %d %v: write overhead %v below D %v", seed, s, res.IOOverhead, cfg.Redundancy)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
