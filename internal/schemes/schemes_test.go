package schemes

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/workload"
)

// testConfig returns a small-but-representative access configuration:
// 128 MB in 1 MB blocks over 16 disks.
func testConfig(s Scheme) Config {
	c := DefaultConfig(s)
	c.DataBytes = 128 << 20
	c.Disks = 16
	return c
}

func testCluster() cluster.Config {
	c := cluster.DefaultConfig()
	c.TotalDisks = 32
	return c
}

func hetTrial() cluster.Trial {
	return cluster.Trial{
		Layout:     workload.HeterogeneousLayout(),
		Background: workload.NoBackground(),
	}
}

func readMany(t *testing.T, ccfg cluster.Config, trial cluster.Trial, cfg Config, trials int) []Result {
	t.Helper()
	out := make([]Result, 0, trials)
	for tr := 0; tr < trials; tr++ {
		res, err := RunReadTrial(ccfg, trial, cfg, int64(100+tr))
		if err != nil {
			t.Fatalf("%v trial %d: %v", cfg.Scheme, tr, err)
		}
		out = append(out, res)
	}
	return out
}

func meanBW(rs []Result) float64 {
	var xs []float64
	for _, r := range rs {
		xs = append(xs, r.Bandwidth)
	}
	return stats.Mean(xs)
}

func latencies(rs []Result) []float64 {
	var xs []float64
	for _, r := range rs {
		xs = append(xs, r.Latency)
	}
	return xs
}

func TestConfigValidate(t *testing.T) {
	for _, s := range AllSchemes {
		if err := DefaultConfig(s).Validate(); err != nil {
			t.Errorf("%v default config invalid: %v", s, err)
		}
	}
	c := DefaultConfig(RAID0)
	c.Redundancy = 1
	if err := c.Validate(); err == nil {
		t.Error("RAID-0 with redundancy accepted")
	}
	c = DefaultConfig(RobuSTore)
	c.DataBytes = 100
	c.BlockBytes = 64
	if err := c.Validate(); err == nil {
		t.Error("non-multiple data size accepted")
	}
	c = DefaultConfig(RRAIDS)
	c.Redundancy = -1
	if err := c.Validate(); err == nil {
		t.Error("negative redundancy accepted")
	}
	c = DefaultConfig(RobuSTore)
	c.DecodeRate = 0
	if err := c.Validate(); err == nil {
		t.Error("zero decode rate accepted")
	}
	c = DefaultConfig(RRAIDA)
	c.Disks = 0
	if err := c.Validate(); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestConfigKN(t *testing.T) {
	c := DefaultConfig(RobuSTore)
	if c.K() != 1024 {
		t.Fatalf("K = %d, want 1024", c.K())
	}
	if c.N() != 4096 {
		t.Fatalf("N = %d, want 4096", c.N())
	}
	c.Redundancy = 0.5
	if c.N() != 1536 {
		t.Fatalf("N at D=0.5 = %d, want 1536", c.N())
	}
}

func TestBalancedReplicatedPlacement(t *testing.T) {
	cfg := testConfig(RRAIDS) // K=128, D=3 -> N=512
	disks := []int{3, 7, 11, 19}
	pl := BalancedReplicated(cfg, disks)
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	k, n, h := cfg.K(), cfg.N(), len(disks)
	// Every coded id appears exactly once, on the rotated slot.
	seen := make([]bool, n)
	for slot, blocks := range pl.Blocks {
		for _, id := range blocks {
			if seen[id] {
				t.Fatalf("block %d placed twice", id)
			}
			seen[id] = true
			want := (origOf(id, k) + replicaOf(id, k)) % h
			if slot != want {
				t.Fatalf("block %d on slot %d, want %d", id, slot, want)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("block %d never placed", id)
		}
	}
	// Balanced: per-disk counts within 1 of each other.
	min, max := len(pl.Blocks[0]), len(pl.Blocks[0])
	for _, b := range pl.Blocks {
		if len(b) < min {
			min = len(b)
		}
		if len(b) > max {
			max = len(b)
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced replicated placement: %d..%d", min, max)
	}
}

func TestBalancedCodedPlacement(t *testing.T) {
	cfg := testConfig(RobuSTore)
	disks := []int{1, 2, 3, 4, 5}
	pl := BalancedCoded(cfg, disks)
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	for slot, blocks := range pl.Blocks {
		for i, id := range blocks {
			if int(id) != slot+i*len(disks) {
				t.Fatalf("coded placement wrong at slot %d pos %d: %d", slot, i, id)
			}
		}
	}
}

func TestHasCopyMatchesPlacement(t *testing.T) {
	cfg := testConfig(RRAIDS)
	k, n := cfg.K(), cfg.N()
	for _, h := range []int{4, 7, 16} {
		disks := make([]int, h)
		for i := range disks {
			disks[i] = i
		}
		pl := BalancedReplicated(cfg, disks)
		onSlot := make(map[[2]int]bool) // (orig, slot)
		for slot, blocks := range pl.Blocks {
			for _, id := range blocks {
				onSlot[[2]int{origOf(id, k), slot}] = true
			}
		}
		for b := 0; b < k; b++ {
			for slot := 0; slot < h; slot++ {
				if hasCopy(b, slot, k, n, h) != onSlot[[2]int{b, slot}] {
					t.Fatalf("hasCopy(%d,%d) disagrees with placement (h=%d)", b, slot, h)
				}
			}
		}
	}
}

func TestReadBandwidthOrdering(t *testing.T) {
	// The paper's central result at scale (Fig 6-6): RobuSTore >
	// RRAID-A > RRAID-S > RAID-0 under heterogeneous layouts.
	ccfg := testCluster()
	trial := hetTrial()
	bw := map[Scheme]float64{}
	for _, s := range AllSchemes {
		bw[s] = meanBW(readMany(t, ccfg, trial, testConfig(s), 8))
	}
	if !(bw[RobuSTore] > bw[RRAIDA] && bw[RRAIDA] > bw[RRAIDS] && bw[RRAIDS] > bw[RAID0]) {
		t.Fatalf("bandwidth ordering violated: %v", bw)
	}
	if bw[RobuSTore] < 5*bw[RAID0] {
		t.Fatalf("RobuSTore %.1f not >> RAID-0 %.1f", MBps(bw[RobuSTore]), MBps(bw[RAID0]))
	}
}

func TestRobuSToreLowestLatencyVariation(t *testing.T) {
	ccfg := testCluster()
	trial := hetTrial()
	std := map[Scheme]float64{}
	for _, s := range AllSchemes {
		std[s] = stats.StdDev(latencies(readMany(t, ccfg, trial, testConfig(s), 12)))
	}
	for _, s := range []Scheme{RAID0, RRAIDS, RRAIDA} {
		if std[RobuSTore] >= std[s] {
			t.Fatalf("RobuSTore latency stddev %.3f not below %v's %.3f", std[RobuSTore], s, std[s])
		}
	}
}

func TestIOOverheadShapes(t *testing.T) {
	ccfg := testCluster()
	trial := hetTrial()
	for _, s := range AllSchemes {
		rs := readMany(t, ccfg, trial, testConfig(s), 6)
		var ios []float64
		for _, r := range rs {
			ios = append(ios, r.IOOverhead)
		}
		io := stats.Mean(ios)
		switch s {
		case RAID0:
			if io != 0 {
				t.Errorf("RAID-0 I/O overhead %.3f, want 0", io)
			}
		case RRAIDA:
			if io < 0 || io > 0.3 {
				t.Errorf("RRAID-A I/O overhead %.3f, want near 0", io)
			}
		case RRAIDS:
			if io < 1 {
				t.Errorf("RRAID-S I/O overhead %.3f, want > 1 at D=3", io)
			}
		case RobuSTore:
			if io < 0.2 || io > 1.2 {
				t.Errorf("RobuSTore I/O overhead %.3f, want ~0.4-0.6", io)
			}
		}
	}
}

func TestRobuSToreBandwidthScalesWithDisks(t *testing.T) {
	ccfg := testCluster()
	trial := hetTrial()
	cfg := testConfig(RobuSTore)
	var prev float64
	for _, disks := range []int{4, 8, 16, 32} {
		cfg.Disks = disks
		bw := meanBW(readMany(t, ccfg, trial, cfg, 6))
		if bw <= prev {
			t.Fatalf("RobuSTore bandwidth not increasing with disks at %d (%.1f <= %.1f MBps)",
				disks, MBps(bw), MBps(prev))
		}
		prev = bw
	}
}

func TestRRAIDASensitiveToLatencyRobuSToreNot(t *testing.T) {
	// Fig 6-12: multi-round adaptive access pays per-round RTTs;
	// single-round speculative access does not.
	trial := hetTrial()
	measure := func(s Scheme, rtt float64) float64 {
		ccfg := testCluster()
		ccfg.RTT = rtt
		return stats.Mean(latencies(readMany(t, ccfg, trial, testConfig(s), 10)))
	}
	const slowRTT = 0.100
	extraA := measure(RRAIDA, slowRTT) - measure(RRAIDA, 0.001)
	extraR := measure(RobuSTore, slowRTT) - measure(RobuSTore, 0.001)
	// Speculative access pays about one extra round trip; adaptive
	// access pays one per steal round.
	if extraR > 2*slowRTT {
		t.Fatalf("RobuSTore paid %.2fs extra latency (> 2 RTT) going to 100ms RTT", extraR)
	}
	if extraA < 2*slowRTT {
		t.Fatalf("RRAID-A paid only %.2fs extra latency; expected several RTTs of adaptive rounds", extraA)
	}
	if extraA < 1.5*extraR {
		t.Fatalf("RRAID-A extra latency %.2fs not clearly above RobuSTore's %.2fs", extraA, extraR)
	}
}

func TestWriteShapes(t *testing.T) {
	ccfg := testCluster()
	trial := hetTrial()
	bw := map[Scheme]float64{}
	for _, s := range AllSchemes {
		cfg := testConfig(s)
		var bws []float64
		for tr := 0; tr < 6; tr++ {
			res, err := RunWriteTrial(ccfg, trial, cfg, int64(300+tr))
			if err != nil {
				t.Fatalf("%v write: %v", s, err)
			}
			bws = append(bws, res.Bandwidth)
			wantIO := cfg.Redundancy
			if res.IOOverhead < wantIO-0.01 || res.IOOverhead > wantIO+0.5 {
				t.Errorf("%v write I/O overhead %.2f, want ~%.2f", s, res.IOOverhead, wantIO)
			}
		}
		bw[s] = stats.Mean(bws)
	}
	// Speculative rateless writing beats slowest-disk-bound writing.
	if bw[RobuSTore] < 3*bw[RAID0] {
		t.Fatalf("RobuSTore write %.1f MBps not >> RAID-0 %.1f", MBps(bw[RobuSTore]), MBps(bw[RAID0]))
	}
	if bw[RobuSTore] < 10*bw[RRAIDS] {
		t.Fatalf("RobuSTore write %.1f MBps not >> RRAID-S %.1f at same redundancy",
			MBps(bw[RobuSTore]), MBps(bw[RRAIDS]))
	}
}

func TestRobuSToreWritePlacementUnbalanced(t *testing.T) {
	ccfg := testCluster()
	cl, err := cluster.New(ccfg, hetTrial(), 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(RobuSTore)
	_, pl, g, err := SelectAndWrite(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil {
		t.Fatal("RobuSTore write returned nil graph")
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.N < cfg.N() {
		t.Fatalf("placement stores %d < N=%d blocks", pl.N, cfg.N())
	}
	// Heterogeneous disks must produce visibly different block counts.
	min, max := pl.BlocksOn(0), pl.BlocksOn(0)
	for i := range pl.Blocks {
		if pl.BlocksOn(i) < min {
			min = pl.BlocksOn(i)
		}
		if pl.BlocksOn(i) > max {
			max = pl.BlocksOn(i)
		}
	}
	if max < 2*min {
		t.Fatalf("speculative write placement suspiciously balanced: %d..%d", min, max)
	}
	// No block id repeats.
	seen := map[int32]bool{}
	for _, blocks := range pl.Blocks {
		for _, id := range blocks {
			if seen[id] {
				t.Fatalf("block %d placed twice", id)
			}
			seen[id] = true
			if int(id) >= g.N {
				t.Fatalf("block id %d outside graph N=%d", id, g.N)
			}
		}
	}
}

func TestReadAfterWriteAllSchemes(t *testing.T) {
	ccfg := testCluster()
	trial := hetTrial()
	for _, s := range AllSchemes {
		cfg := testConfig(s)
		res, err := RunReadAfterWriteTrial(ccfg, trial, cfg, 500)
		if err != nil {
			t.Fatalf("%v read-after-write: %v", s, err)
		}
		if res.Failed {
			t.Fatalf("%v read-after-write failed to reconstruct", s)
		}
		if res.Bandwidth <= 0 || res.Latency <= 0 {
			t.Fatalf("%v read-after-write nonsense result %+v", s, res)
		}
	}
}

func TestDeterministicTrials(t *testing.T) {
	ccfg := testCluster()
	trial := hetTrial()
	for _, s := range AllSchemes {
		cfg := testConfig(s)
		a, err := RunReadTrial(ccfg, trial, cfg, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunReadTrial(ccfg, trial, cfg, 42)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%v trial not deterministic: %+v vs %+v", s, a, b)
		}
	}
}

func TestRobuSToreZeroRedundancyFailsGracefully(t *testing.T) {
	ccfg := testCluster()
	cfg := testConfig(RobuSTore)
	cfg.Redundancy = 0 // N == K: LT decoding from exactly K blocks almost surely fails
	res, err := RunReadTrial(ccfg, hetTrial(), cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Log("note: K-block decode happened to succeed (rare but legal)")
	}
	if res.Latency <= 0 {
		t.Fatal("failed read must still report a latency")
	}
}

func TestCacheAcceleratesRepeatedReads(t *testing.T) {
	ccfg := testCluster()
	ccfg.FilerCache = 2 << 30
	cl, err := cluster.New(ccfg, hetTrial(), 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(RRAIDS)
	disks, err := cl.SelectDisks(cfg.Disks)
	if err != nil {
		t.Fatal(err)
	}
	pl := BalancedPlacement(cfg, disks)
	first, err := SimulateRead(cl, cfg, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Second read of the same placement: blocks are now cached at the
	// filers (drives reset so only the cache differs).
	if err := cl.ReconfigureDrives(hetTrial()); err != nil {
		t.Fatal(err)
	}
	second, err := SimulateRead(cl, cfg, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Latency >= first.Latency/2 {
		t.Fatalf("cached read %.3fs not much faster than cold read %.3fs",
			second.Latency, first.Latency)
	}
}

func TestSimulateReadValidation(t *testing.T) {
	ccfg := testCluster()
	cl, _ := cluster.New(ccfg, hetTrial(), 1)
	cfg := testConfig(RobuSTore)
	disks, _ := cl.SelectDisks(cfg.Disks)
	pl := BalancedCoded(cfg, disks)
	if _, err := SimulateRead(cl, cfg, pl, nil); err == nil {
		t.Fatal("RobuSTore read without graph accepted")
	}
	bad := pl
	bad.N++
	if _, err := SimulateRead(cl, testConfig(RAID0), bad, nil); err == nil {
		t.Fatal("inconsistent placement accepted")
	}
}

func TestShufflePlacementOrder(t *testing.T) {
	cfg := testConfig(RobuSTore)
	pl := BalancedCoded(cfg, []int{0, 1, 2, 3})
	want := map[int32]bool{}
	for _, blocks := range pl.Blocks {
		for _, id := range blocks {
			want[id] = true
		}
	}
	ShufflePlacementOrder(pl, rand.New(rand.NewSource(1)))
	got := map[int32]bool{}
	for _, blocks := range pl.Blocks {
		for _, id := range blocks {
			got[id] = true
		}
	}
	if len(got) != len(want) {
		t.Fatal("shuffle changed the block set")
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("block %d lost in shuffle", id)
		}
	}
}
