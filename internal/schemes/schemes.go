// Package schemes implements the four parallel storage schemes the
// RobuSTore evaluation compares (§6.2.1) on top of the simulated
// cluster:
//
//   - RAID-0: plain striping, zero redundancy, parallel read of all
//     blocks; the access completes when the slowest disk finishes.
//   - RRAID-S: rotated replicated striping with speculative access
//     ("request everything, cancel at completion").
//   - RRAID-A: the same replicated layout with adaptive multi-round
//     access that steals work from the slowest disks.
//   - RobuSTore: LT-coded blocks with speculative access; completion is
//     decided by the actual incremental peeling decoder.
//
// Reads and writes produce a Result carrying the three §6.2.3 metrics:
// access latency (bandwidth), which the harness aggregates into
// latency standard deviations, and I/O overhead.
package schemes

import (
	"fmt"
	"math"

	"repro/internal/ltcode"
)

// Scheme identifies a storage scheme.
type Scheme int

// The four schemes of §6.2.1.
const (
	RAID0 Scheme = iota
	RRAIDS
	RRAIDA
	RobuSTore
)

// String returns the scheme name as used in the paper.
func (s Scheme) String() string {
	switch s {
	case RAID0:
		return "RAID-0"
	case RRAIDS:
		return "RRAID-S"
	case RRAIDA:
		return "RRAID-A"
	case RobuSTore:
		return "RobuSTore"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// AllSchemes lists the schemes in the paper's presentation order.
var AllSchemes = []Scheme{RAID0, RRAIDS, RRAIDA, RobuSTore}

// Config describes one access configuration (§6.2.5 baseline:
// 1 GB data, 1 MB blocks, 64 disks, 3x redundancy, LT C=1 δ=0.5,
// 500 MB/s decode).
type Config struct {
	Scheme     Scheme
	DataBytes  int64
	BlockBytes int64
	Redundancy float64 // D = redundant/original; RAID-0 forces 0
	Disks      int     // number of disks used by the access
	LTC        float64 // LT code parameter C
	LTDelta    float64 // LT code parameter δ
	DecodeRate float64 // bytes/s; pipelined, charged for the last block

	// NoCancel disables request cancellation (§5.3.3) for ablation:
	// every requested block is eventually transferred, so speculative
	// schemes pay their full requested volume in I/O overhead.
	NoCancel bool
}

// DefaultConfig returns the paper's baseline configuration for a
// scheme.
func DefaultConfig(s Scheme) Config {
	c := Config{
		Scheme:     s,
		DataBytes:  1 << 30,
		BlockBytes: 1 << 20,
		Redundancy: 3,
		Disks:      64,
		LTC:        1.0,
		LTDelta:    0.5,
		DecodeRate: 500e6,
	}
	if s == RAID0 {
		c.Redundancy = 0
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.DataBytes <= 0 || c.BlockBytes <= 0 || c.DataBytes%c.BlockBytes != 0 {
		return fmt.Errorf("schemes: data size must be a positive multiple of block size")
	}
	if c.Scheme == RAID0 && c.Redundancy != 0 {
		return fmt.Errorf("schemes: RAID-0 requires zero redundancy")
	}
	if c.Redundancy < 0 {
		return fmt.Errorf("schemes: negative redundancy")
	}
	if c.Disks < 1 {
		return fmt.Errorf("schemes: need at least one disk")
	}
	if c.Scheme == RobuSTore {
		p := ltcode.Params{K: c.K(), C: c.LTC, Delta: c.LTDelta}
		if err := p.Validate(); err != nil {
			return err
		}
		if c.DecodeRate <= 0 {
			return fmt.Errorf("schemes: RobuSTore needs a positive decode rate")
		}
	}
	return nil
}

// K returns the number of original blocks.
func (c Config) K() int { return int(c.DataBytes / c.BlockBytes) }

// N returns the number of stored coded/replicated blocks,
// round((1+D)·K).
func (c Config) N() int {
	n := int(math.Round((1 + c.Redundancy) * float64(c.K())))
	if n < c.K() {
		n = c.K()
	}
	return n
}

// LTParams returns the LT code parameters for the configuration.
func (c Config) LTParams() ltcode.Params {
	return ltcode.Params{K: c.K(), C: c.LTC, Delta: c.LTDelta}
}

// Result is one access measurement.
type Result struct {
	Latency    float64 // end-to-end access latency (s)
	Bandwidth  float64 // DataBytes / Latency (bytes/s)
	NetBytes   int64   // bytes that crossed the network
	IOOverhead float64 // (NetBytes - DataBytes) / DataBytes
	Delivered  int     // blocks delivered to the client before completion
	Reception  float64 // Delivered/K - 1
	Failed     bool    // data not reconstructible from the stored blocks
}

func (c Config) newResult(latency float64, netBytes int64, delivered int, failed bool) Result {
	r := Result{
		Latency:   latency,
		NetBytes:  netBytes,
		Delivered: delivered,
		Failed:    failed,
	}
	if latency > 0 {
		r.Bandwidth = float64(c.DataBytes) / latency
	}
	r.IOOverhead = float64(netBytes-c.DataBytes) / float64(c.DataBytes)
	r.Reception = float64(delivered)/float64(c.K()) - 1
	return r
}

// MBps converts bytes/s to the paper's MBps (1e6 bytes per second).
func MBps(bytesPerSec float64) float64 { return bytesPerSec / 1e6 }
