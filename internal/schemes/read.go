package schemes

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/ltcode"
)

// tracker decides when a read access is complete.
type tracker interface {
	// deliver consumes one block and reports whether the access is now
	// complete.
	deliver(block int32) bool
	// complete reports completion (idempotent).
	complete() bool
}

// coverageTracker completes when at least one copy of every original
// block has arrived (RAID-0 and RRAID-S semantics).
type coverageTracker struct {
	k         int
	seen      []bool
	remaining int
}

func newCoverageTracker(k int) *coverageTracker {
	return &coverageTracker{k: k, seen: make([]bool, k), remaining: k}
}

func (t *coverageTracker) deliver(block int32) bool {
	o := origOf(block, t.k)
	if !t.seen[o] {
		t.seen[o] = true
		t.remaining--
	}
	return t.remaining == 0
}

func (t *coverageTracker) complete() bool { return t.remaining == 0 }

// decoderTracker completes when the LT peeling decoder recovers all
// originals (RobuSTore semantics).
type decoderTracker struct {
	d *ltcode.Decoder
}

func newDecoderTracker(g *ltcode.Graph) *decoderTracker {
	return &decoderTracker{d: ltcode.NewSymbolicDecoder(g)}
}

func (t *decoderTracker) deliver(block int32) bool {
	t.d.Add(int(block))
	return t.d.Complete()
}

func (t *decoderTracker) complete() bool { return t.d.Complete() }

// readEvent is one block becoming available at its filer.
type readEvent struct {
	avail  float64 // time the block is ready to leave the filer
	start  float64 // disk service start (== avail for cache hits)
	slot   int     // placement slot
	pos    int     // position within the slot's block list
	block  int32
	cached bool
}

type readHeap []readEvent

func (h readHeap) Len() int           { return len(h) }
func (h readHeap) Less(i, j int) bool { return h[i].avail < h[j].avail }
func (h readHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *readHeap) Push(x any)        { *h = append(*h, x.(readEvent)) }
func (h *readHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// SimulateRead runs one read access of cfg against the cluster using
// the given placement. For RobuSTore the coding graph that produced
// the placement's block indices must be supplied; replicated schemes
// pass nil. RRAID-A dispatches to its adaptive engine.
func SimulateRead(cl *cluster.Cluster, cfg Config, pl Placement, g *ltcode.Graph) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := pl.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Scheme == RRAIDA {
		return simulateAdaptiveRead(cl, cfg, pl)
	}
	var trk tracker
	switch cfg.Scheme {
	case RAID0, RRAIDS:
		trk = newCoverageTracker(cfg.K())
	case RobuSTore:
		if g == nil {
			return Result{}, fmt.Errorf("schemes: RobuSTore read requires the coding graph")
		}
		trk = newDecoderTracker(g)
	default:
		return Result{}, fmt.Errorf("schemes: unknown scheme %v", cfg.Scheme)
	}
	return simulateSpeculativeRead(cl, cfg, pl, trk), nil
}

// simulateSpeculativeRead implements the "request everything, cancel
// at completion" access of Fig 6-2(a), shared by RAID-0 (which simply
// never over-requests), RRAID-S, and RobuSTore.
func simulateSpeculativeRead(cl *cluster.Cluster, cfg Config, pl Placement, trk tracker) Result {
	ccfg := cl.Config()
	ow := ccfg.RTT / 2
	t0 := ccfg.ConnectTime + ow // requests reach the filers
	bb := cfg.BlockBytes
	nic := cl.NewNICSerializer()

	// gen produces the availability event for slot's pos-th block,
	// advancing that disk's service timeline.
	gen := func(slot, pos int) (readEvent, bool) {
		if pos >= len(pl.Blocks[slot]) {
			return readEvent{}, false
		}
		block := pl.Blocks[slot][pos]
		diskIdx := pl.Disks[slot]
		if cache := cl.Cache(diskIdx); cache != nil {
			addr := cl.CacheAddr(diskIdx, pos, bb)
			hit := cache.Lookup(addr, bb)
			if hit >= bb {
				return readEvent{avail: t0, start: t0, slot: slot, pos: pos, block: block, cached: true}, true
			}
			// Partial hit: only the missing bytes touch the disk.
			start, end := cl.Drive(diskIdx).ServeRequest(t0, bb-hit)
			cache.Insert(addr, bb)
			return readEvent{avail: end, start: start, slot: slot, pos: pos, block: block}, true
		}
		start, end := cl.Drive(diskIdx).ServeRequest(t0, bb)
		return readEvent{avail: end, start: start, slot: slot, pos: pos, block: block}, true
	}

	h := &readHeap{}
	for slot := range pl.Blocks {
		if ev, ok := gen(slot, 0); ok {
			heap.Push(h, ev)
		}
	}

	var (
		delivered int
		netBytes  int64
		doneAt    = math.NaN()
		failed    bool
	)
	for h.Len() > 0 {
		ev := heap.Pop(h).(readEvent)
		deliveredAt := nic.Deliver(ev.avail+ow, bb)
		delivered++
		netBytes += bb
		if trk.deliver(ev.block) {
			doneAt = deliveredAt
			break
		}
		if next, ok := gen(ev.slot, ev.pos+1); ok {
			heap.Push(h, next)
		}
	}
	if math.IsNaN(doneAt) {
		// The stored blocks do not reconstruct the data (possible only
		// for degenerate configurations). Charge the full stream time.
		failed = true
		doneAt = nic.Clock()
	}

	// Cancellation: the cancel reaches filers at doneAt + ow. Disk
	// service that started before then completes and its block crosses
	// the network; queued requests are dropped. Cached blocks are
	// pulled on demand, so undelivered ones cost nothing. The NoCancel
	// ablation lets every request run to completion instead.
	cancelAt := doneAt + ow
	if cfg.NoCancel {
		cancelAt = math.Inf(1)
	}
	for h.Len() > 0 {
		ev := heap.Pop(h).(readEvent)
		if ev.cached {
			continue
		}
		if ev.start < cancelAt {
			netBytes += bb
			if next, ok := gen(ev.slot, ev.pos+1); ok {
				heap.Push(h, next)
			}
		}
	}

	latency := doneAt
	if cfg.Scheme == RobuSTore {
		latency += float64(cfg.BlockBytes) / cfg.DecodeRate // pipelined decode tail
	}
	return cfg.newResult(latency, netBytes, delivered, failed)
}
