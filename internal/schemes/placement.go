package schemes

import "fmt"

// Placement records which coded/replicated blocks live on which disks,
// in intra-disk storage order (the order a speculative read streams
// them). For replicated schemes a block id encodes (replica, original):
// id = replica*K + original. For RobuSTore a block id is the LT coded
// block index.
type Placement struct {
	Disks  []int     // cluster disk indices
	Blocks [][]int32 // parallel to Disks; intra-disk order
	N      int       // total blocks stored
}

// Validate checks structural consistency.
func (p Placement) Validate() error {
	if len(p.Disks) != len(p.Blocks) {
		return fmt.Errorf("schemes: placement disks/blocks length mismatch")
	}
	total := 0
	for _, b := range p.Blocks {
		total += len(b)
	}
	if total != p.N {
		return fmt.Errorf("schemes: placement holds %d blocks, N=%d", total, p.N)
	}
	return nil
}

// BlocksOn returns the number of blocks stored on placement slot di.
func (p Placement) BlocksOn(di int) int { return len(p.Blocks[di]) }

// BalancedReplicated builds the rotated replicated striping of
// Fig 6-1(c)/(d): replica r of original block b goes to disk slot
// (b + r) mod H; intra-disk order is replica-major (all of replica 0,
// then replica 1, ...), which is the fixed order RRAID-S streams.
// RAID-0 is the replicas==1 special case. Fractional redundancy yields
// a final partial replica.
func BalancedReplicated(cfg Config, disks []int) Placement {
	k, n, h := cfg.K(), cfg.N(), len(disks)
	pl := Placement{Disks: disks, Blocks: make([][]int32, h), N: n}
	for c := 0; c < n; c++ {
		r := c / k
		b := c % k
		slot := (b + r) % h
		pl.Blocks[slot] = append(pl.Blocks[slot], int32(c))
	}
	return pl
}

// BalancedCoded stripes the N LT-coded blocks round-robin across the
// disks (Fig 6-1(e)): coded block i goes to slot i mod H.
func BalancedCoded(cfg Config, disks []int) Placement {
	n, h := cfg.N(), len(disks)
	pl := Placement{Disks: disks, Blocks: make([][]int32, h), N: n}
	for c := 0; c < n; c++ {
		pl.Blocks[c%h] = append(pl.Blocks[c%h], int32(c))
	}
	return pl
}

// BalancedPlacement dispatches on the scheme's layout family.
func BalancedPlacement(cfg Config, disks []int) Placement {
	if cfg.Scheme == RobuSTore {
		return BalancedCoded(cfg, disks)
	}
	return BalancedReplicated(cfg, disks)
}

// replicated-block helpers

// origOf returns the original block index encoded in a replicated
// block id.
func origOf(id int32, k int) int { return int(id) % k }

// replicaOf returns the replica number encoded in a replicated block
// id.
func replicaOf(id int32, k int) int { return int(id) / k }

// hasCopy reports whether a copy of original block b exists on disk
// slot `slot` under rotated replication with n total blocks across h
// slots. Replica r of b lives on slot (b+r) mod h and exists iff
// r*k + b < n.
func hasCopy(b, slot, k, n, h int) bool {
	for r := 0; r*k+b < n; r++ {
		if (b+r)%h == slot {
			return true
		}
	}
	return false
}
