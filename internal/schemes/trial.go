package schemes

import (
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/ltcode"
)

// This file provides the per-trial entry points the experiment harness
// iterates: each builds a fresh cluster from a trial seed, selects
// disks, lays out data, and runs one access — reproducing the paper's
// "100 accesses per configuration, disks randomly selected each time"
// methodology (§6.2.5).

// rawSeedOffset separates the write-time and read-time cluster seeds in
// read-after-write trials, so the disks exhibit different dynamic
// behaviour between the two accesses (§6.3.1, unbalanced striping).
const rawSeedOffset = 0x5f3759df

// buildReadGraph constructs the coding graph for a balanced RobuSTore
// read using the lenient policy.
func buildReadGraph(cfg Config, cl *cluster.Cluster) (*ltcode.Graph, error) {
	return BuildGraphLenient(cfg.LTParams(), cfg.N(), cl.RNG())
}

// BuildGraphLenient builds an LT coding graph with the decodability
// guarantee when the redundancy plausibly affords it, falling back to
// an unchecked graph otherwise. Near the decodability edge (N around
// (1+ε)K) a guaranteed graph may simply not exist in reasonable time;
// reads over an unchecked graph may then report Failed, which is the
// honest behaviour of an under-provisioned RobuSTore configuration.
func BuildGraphLenient(p ltcode.Params, n int, rng *rand.Rand) (*ltcode.Graph, error) {
	if n >= p.K+p.K/8 {
		opts := ltcode.DefaultGraphOptions()
		opts.MaxAttempts = 16
		if g, err := ltcode.BuildGraph(p, n, rng, opts); err == nil {
			return g, nil
		}
	}
	opts := ltcode.DefaultGraphOptions()
	opts.EnsureDecodable = false
	return ltcode.BuildGraph(p, n, rng, opts)
}

// RunReadTrial performs one read access on a freshly drawn cluster.
func RunReadTrial(ccfg cluster.Config, trial cluster.Trial, cfg Config, seed int64) (Result, error) {
	cl, err := cluster.New(ccfg, trial, seed)
	if err != nil {
		return Result{}, err
	}
	disks, err := cl.SelectDisks(cfg.Disks)
	if err != nil {
		return Result{}, err
	}
	var g *ltcode.Graph
	if cfg.Scheme == RobuSTore {
		if g, err = buildReadGraph(cfg, cl); err != nil {
			return Result{}, err
		}
	}
	return SimulateRead(cl, cfg, BalancedPlacement(cfg, disks), g)
}

// RunWriteTrial performs one write access on a freshly drawn cluster.
func RunWriteTrial(ccfg cluster.Config, trial cluster.Trial, cfg Config, seed int64) (Result, error) {
	cl, err := cluster.New(ccfg, trial, seed)
	if err != nil {
		return Result{}, err
	}
	res, _, _, err := SelectAndWrite(cl, cfg)
	return res, err
}

// RunReadAfterWriteTrial writes on one cluster instantiation and reads
// the resulting placement on another (same hardware, fresh per-disk
// layouts and loads), measuring the read. For RobuSTore this exercises
// the unbalanced striping left behind by the speculative write.
func RunReadAfterWriteTrial(ccfg cluster.Config, trial cluster.Trial, cfg Config, seed int64) (Result, error) {
	wcl, err := cluster.New(ccfg, trial, seed)
	if err != nil {
		return Result{}, err
	}
	_, pl, g, err := SelectAndWrite(wcl, cfg)
	if err != nil {
		return Result{}, err
	}
	rcl, err := cluster.New(ccfg, trial, seed+rawSeedOffset)
	if err != nil {
		return Result{}, err
	}
	return SimulateRead(rcl, cfg, pl, g)
}
