package schemes

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/ltcode"
)

// SimulateWrite runs one write access and returns the measurement plus
// the resulting placement (which read-after-write experiments feed to
// SimulateRead on a fresh trial cluster). For RobuSTore it also
// returns the coding graph used, so the subsequent read decodes the
// same code; replicated schemes return a nil graph.
//
// RAID-0, RRAID-S, and RRAID-A write uniformly: every disk receives
// the same number of blocks and the access completes when the slowest
// disk commits its last block (§6.3.1). RobuSTore writes speculatively
// and ratelessly: every disk keeps committing coded blocks at its own
// pace until N blocks have committed globally, then outstanding writes
// are cancelled — producing the unbalanced striping studied in
// Figs 6-21..6-23.
func SimulateWrite(cl *cluster.Cluster, cfg Config, disks []int) (Result, Placement, *ltcode.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, Placement{}, nil, err
	}
	if len(disks) == 0 {
		return Result{}, Placement{}, nil, fmt.Errorf("schemes: write needs at least one disk")
	}
	if cfg.Scheme == RobuSTore {
		return simulateRatelessWrite(cl, cfg, disks)
	}
	res, pl := simulateUniformWrite(cl, cfg, disks)
	return res, pl, nil, nil
}

// simulateUniformWrite writes the balanced placement; completion is
// bound by the slowest disk.
func simulateUniformWrite(cl *cluster.Cluster, cfg Config, disks []int) (Result, Placement) {
	ccfg := cl.Config()
	ow := ccfg.RTT / 2
	bb := cfg.BlockBytes
	pl := BalancedPlacement(cfg, disks)
	nic := cl.NewNICSerializer()

	// The client streams blocks in global stripe order through its
	// uplink; each lands at its filer one-way later and the drive
	// commits them in arrival order.
	var latest float64
	var netBytes int64
	// Send order: round-robin over slots, matching stripe order.
	maxLen := 0
	for _, b := range pl.Blocks {
		if len(b) > maxLen {
			maxLen = len(b)
		}
	}
	for pos := 0; pos < maxLen; pos++ {
		for slot := range pl.Blocks {
			if pos >= len(pl.Blocks[slot]) {
				continue
			}
			sendDone := nic.Deliver(ccfg.ConnectTime, bb)
			netBytes += bb
			_, end := cl.Drive(pl.Disks[slot]).ServeRequest(sendDone+ow, bb)
			if commit := end + ow; commit > latest {
				latest = commit
			}
		}
	}
	return cfg.newResult(latest, netBytes, pl.N, false), pl
}

// ratelessSlack is how many extra coded blocks the writer's graph
// carries beyond N, bounding the speculative overshoot (at most a
// couple of in-flight blocks per disk).
const ratelessSlack = 4

// simulateRatelessWrite implements the RobuSTore speculative write.
func simulateRatelessWrite(cl *cluster.Cluster, cfg Config, disks []int) (Result, Placement, *ltcode.Graph, error) {
	ccfg := cl.Config()
	ow := ccfg.RTT / 2
	bb := cfg.BlockBytes
	n := cfg.N()
	h := len(disks)
	nPrime := n + ratelessSlack*h
	g, err := BuildGraphLenient(cfg.LTParams(), nPrime, cl.RNG())
	if err != nil {
		return Result{}, Placement{}, nil, err
	}
	nic := cl.NewNICSerializer()
	pl := Placement{Disks: disks, Blocks: make([][]int32, h)}

	hp := &commitHeap{}
	nextIdx := 0
	var netBytes int64

	issue := func(slot int) bool {
		if nextIdx >= nPrime {
			return false
		}
		block := int32(nextIdx)
		nextIdx++
		sendDone := nic.Deliver(ccfg.ConnectTime, bb)
		netBytes += bb
		start, end := cl.Drive(disks[slot]).ServeRequest(sendDone+ow, bb)
		heap.Push(hp, commitEvent{end: end, start: start, slot: slot, block: block})
		return true
	}

	for slot := 0; slot < h; slot++ {
		issue(slot)
	}
	commits := 0
	var doneAt float64
	type landed struct {
		slot  int
		block int32
		start float64
	}
	var placed []landed
	for hp.Len() > 0 {
		ev := heap.Pop(hp).(commitEvent)
		commits++
		placed = append(placed, landed{slot: ev.slot, block: ev.block, start: ev.start})
		if commits >= n {
			doneAt = ev.end + ow // N-th commit acknowledgment
			break
		}
		issue(ev.slot)
	}
	if commits < n {
		return Result{}, Placement{}, nil, fmt.Errorf(
			"schemes: rateless write exhausted %d blocks before %d commits", nPrime, n)
	}
	// Writes already in service when the cancel arrives complete and
	// land on disk; queued ones are dropped (their bytes still crossed
	// the network, which issue() already counted).
	cancelAt := doneAt + ow
	for hp.Len() > 0 {
		ev := heap.Pop(hp).(commitEvent)
		if ev.start < cancelAt {
			placed = append(placed, landed{slot: ev.slot, block: ev.block, start: ev.start})
		}
	}
	for _, l := range placed {
		pl.Blocks[l.slot] = append(pl.Blocks[l.slot], l.block)
	}
	pl.N = len(placed)
	res := cfg.newResult(doneAt, netBytes, pl.N, false)
	return res, pl, g, nil
}

// commitEvent is one in-flight RobuSTore write.
type commitEvent struct {
	end   float64
	start float64
	slot  int
	block int32
}

type commitHeap []commitEvent

func (h commitHeap) Len() int           { return len(h) }
func (h commitHeap) Less(i, j int) bool { return h[i].end < h[j].end }
func (h commitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *commitHeap) Push(x any)        { *h = append(*h, x.(commitEvent)) }
func (h *commitHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// SelectAndWrite is a convenience helper used by the harness: pick
// cfg.Disks disks on the cluster, run the write, and return everything
// the read-after-write path needs.
func SelectAndWrite(cl *cluster.Cluster, cfg Config) (Result, Placement, *ltcode.Graph, error) {
	disks, err := cl.SelectDisks(cfg.Disks)
	if err != nil {
		return Result{}, Placement{}, nil, err
	}
	return SimulateWrite(cl, cfg, disks)
}

// ShufflePlacementOrder randomly permutes the intra-disk block order
// of a placement (used to model re-reading data whose on-disk order is
// unrelated to the write order).
func ShufflePlacementOrder(pl Placement, rng *rand.Rand) {
	for _, blocks := range pl.Blocks {
		rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	}
}
