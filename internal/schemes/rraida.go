package schemes

import (
	"container/heap"
	"math"

	"repro/internal/cluster"
)

// simulateAdaptiveRead implements RRAID-A (Fig 6-2(b)): the client
// initially requests only the first replica of each block from its
// home disk; whenever a disk drains its queue, the client identifies
// the disk with the most outstanding blocks that the drained disk also
// holds copies of, cancels the later half of that backlog, and
// re-requests it from the drained disk. Each steal costs an extra
// round trip, which is what makes RRAID-A latency-sensitive
// (Fig 6-12).
func simulateAdaptiveRead(cl *cluster.Cluster, cfg Config, pl Placement) (Result, error) {
	ccfg := cl.Config()
	ow := ccfg.RTT / 2
	bb := cfg.BlockBytes
	k, n, h := cfg.K(), cfg.N(), len(pl.Disks)
	nic := cl.NewNICSerializer()

	// posIndex maps a coded block id to its storage position on each
	// slot, so reads hit the same filer-cache addresses the block was
	// stored (and previously read) at.
	posIndex := make([]map[int32]int, h)
	for slot, blocks := range pl.Blocks {
		posIndex[slot] = make(map[int32]int, len(blocks))
		for pos, id := range blocks {
			posIndex[slot][id] = pos
		}
	}

	// replicaOn returns the coded id of a copy of original b stored on
	// `slot`, or -1.
	replicaOn := func(b, slot int) int32 {
		for r := 0; r*k+b < n; r++ {
			if (b+r)%h == slot {
				return int32(r*k + b)
			}
		}
		return -1
	}

	// Initial queues: replica 0 of each original from its home slot.
	queues := make([][]int32, h)
	for b := 0; b < k; b++ {
		queues[b%h] = append(queues[b%h], int32(b))
	}

	hp := &adaptHeap{}
	received := make([]bool, k)
	remaining := k
	var delivered int
	var netBytes int64

	// nextArrival[slot] is the earliest time the slot's next request
	// may start service (pushed out after a steal to account for the
	// extra round trip).
	nextArrival := make([]float64, h)
	for i := range nextArrival {
		nextArrival[i] = ccfg.ConnectTime + ow
	}

	// inService[slot] is the coded block currently being served by the
	// slot's disk (-1 when idle); started requests cannot be canceled
	// or moved, but their originals can be *duplicated* from another
	// holder when everything else has drained.
	inService := make([]int32, h)
	for i := range inService {
		inService[i] = -1
	}
	// duplicating[orig] limits each straggling original to one extra
	// in-flight copy at a time.
	duplicating := make([]bool, k)

	// launch issues the head of a slot's queue, via the filer cache
	// when the block is resident.
	launch := func(slot int) {
		if len(queues[slot]) == 0 {
			return
		}
		coded := queues[slot][0]
		queues[slot] = queues[slot][1:]
		inService[slot] = coded
		diskIdx := pl.Disks[slot]
		if cache := cl.Cache(diskIdx); cache != nil {
			if pos, ok := posIndex[slot][coded]; ok {
				addr := cl.CacheAddr(diskIdx, pos, bb)
				hit := cache.Lookup(addr, bb)
				if hit >= bb {
					heap.Push(hp, pending{avail: nextArrival[slot], start: nextArrival[slot],
						slot: slot, block: coded, cached: true})
					return
				}
				start, end := cl.Drive(diskIdx).ServeRequest(nextArrival[slot], bb-hit)
				cache.Insert(addr, bb)
				heap.Push(hp, pending{avail: end, start: start, slot: slot, block: coded})
				return
			}
		}
		start, end := cl.Drive(diskIdx).ServeRequest(nextArrival[slot], bb)
		heap.Push(hp, pending{avail: end, start: start, slot: slot, block: coded})
	}

	// steal reassigns the later half of the best victim's transferable
	// backlog to the drained slot at client-time t.
	steal := func(slot int, t float64) bool {
		best, bestCount := -1, 0
		for v := 0; v < h; v++ {
			if v == slot || len(queues[v]) == 0 {
				continue
			}
			count := 0
			for _, coded := range queues[v] {
				if replicaOn(origOf(coded, k), slot) >= 0 {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = v, count
			}
		}
		if best < 0 || bestCount == 0 {
			return false
		}
		take := bestCount / 2
		if take == 0 {
			take = 1
		}
		var keep, moved []int32
		seen := 0
		for _, coded := range queues[best] {
			b := origOf(coded, k)
			if replicaOn(b, slot) >= 0 {
				seen++
				if seen > bestCount-take {
					moved = append(moved, replicaOn(b, slot))
					continue
				}
			}
			keep = append(keep, coded)
		}
		queues[best] = keep
		queues[slot] = append(queues[slot], moved...)
		// The client decides at t and the re-request travels another
		// round: the drained disk sees it a full RTT later.
		nextArrival[slot] = t + 2*ow
		launch(slot)
		return true
	}

	// duplicateInService is the tail-latency rescue: when every queue
	// is empty, the unreceived blocks are all in service at (slow)
	// disks — requests that cannot be canceled or moved. The drained
	// disk fetches a *copy* of one such block from its own replica
	// set; whichever arrives first wins, the other is the small I/O
	// overhead the paper attributes to RRAID-A.
	duplicateInService := func(slot int, t float64) bool {
		for v := 0; v < h; v++ {
			if v == slot || inService[v] < 0 {
				continue
			}
			b := origOf(inService[v], k)
			if received[b] || duplicating[b] {
				continue
			}
			copyID := replicaOn(b, slot)
			if copyID < 0 || copyID == inService[v] {
				continue
			}
			duplicating[b] = true
			queues[slot] = append(queues[slot], copyID)
			nextArrival[slot] = t + 2*ow
			launch(slot)
			return true
		}
		return false
	}

	for slot := 0; slot < h; slot++ {
		launch(slot)
	}

	doneAt := math.NaN()
	for hp.Len() > 0 {
		ev := heap.Pop(hp).(pending)
		deliveredAt := nic.Deliver(ev.avail+ow, bb)
		delivered++
		netBytes += bb
		if inService[ev.slot] == ev.block {
			inService[ev.slot] = -1
		}
		b := origOf(ev.block, k)
		duplicating[b] = false
		if !received[b] {
			received[b] = true
			remaining--
		}
		if remaining == 0 {
			doneAt = deliveredAt
			break
		}
		if len(queues[ev.slot]) > 0 {
			launch(ev.slot)
		} else if !steal(ev.slot, deliveredAt) {
			duplicateInService(ev.slot, deliveredAt)
		}
	}
	failed := false
	if math.IsNaN(doneAt) {
		failed = true
		doneAt = nic.Clock()
	}

	// In-flight accounting at cancel time.
	cancelAt := doneAt + ow
	for hp.Len() > 0 {
		ev := heap.Pop(hp).(pending)
		if !ev.cached && ev.start < cancelAt {
			netBytes += bb
		}
	}
	return cfg.newResult(doneAt, netBytes, delivered, failed), nil
}

// pending is one RRAID-A block awaiting delivery.
type pending struct {
	avail, start float64
	slot         int
	block        int32
	cached       bool
}

// adaptHeap is a min-heap of pending deliveries ordered by filer
// availability.
type adaptHeap []pending

func (h adaptHeap) Len() int           { return len(h) }
func (h adaptHeap) Less(i, j int) bool { return h[i].avail < h[j].avail }
func (h adaptHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *adaptHeap) Push(x any)        { *h = append(*h, x.(pending)) }
func (h *adaptHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
