package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("Mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of short samples should be 0")
	}
	// Sample stddev of {2,4,4,4,5,5,7,9} is sqrt(32/7).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(got, math.Sqrt(32.0/7.0)) {
		t.Fatalf("StdDev = %v", got)
	}
	if StdDev([]float64{3, 3, 3}) != 0 {
		t.Fatal("constant sample should have zero stddev")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be infinities")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if !almostEq(Percentile(xs, 0), 10) || !almostEq(Percentile(xs, 100), 50) {
		t.Fatal("extreme percentiles wrong")
	}
	if !almostEq(Percentile(xs, 50), 30) {
		t.Fatal("median wrong")
	}
	if !almostEq(Percentile(xs, 25), 20) {
		t.Fatalf("P25 = %v, want 20", Percentile(xs, 25))
	}
	if !almostEq(Percentile(xs, 10), 14) { // interpolated
		t.Fatalf("P10 = %v, want 14", Percentile(xs, 10))
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almostEq(s.Mean, 3) || !almostEq(s.P50, 3) ||
		s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if CoefficientOfVariation([]float64{0, 0}) != 0 {
		t.Fatal("CV of zero-mean sample should be 0")
	}
	cv := CoefficientOfVariation([]float64{9, 10, 11})
	if !almostEq(cv, StdDev([]float64{9, 10, 11})/10) {
		t.Fatalf("CV = %v", cv)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, 2.25, -3, 8, 0.125, 7}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatal("Welford N wrong")
	}
	if !almostEq(w.Mean(), Mean(xs)) {
		t.Fatalf("Welford mean %v != %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.StdDev(), StdDev(xs)) {
		t.Fatalf("Welford stddev %v != %v", w.StdDev(), StdDev(xs))
	}
	var empty Welford
	if empty.StdDev() != 0 {
		t.Fatal("empty Welford stddev != 0")
	}
}

func TestQuickWelfordEquivalence(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r) / 7
			w.Add(xs[i])
		}
		return math.Abs(w.Mean()-Mean(xs)) < 1e-6 &&
			math.Abs(w.StdDev()-StdDev(xs)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStdDevNonNegativeAndShiftInvariant(t *testing.T) {
	f := func(raw []int16, shift int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			ys[i] = float64(r) + float64(shift)
		}
		sx, sy := StdDev(xs), StdDev(ys)
		return sx >= 0 && math.Abs(sx-sy) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
