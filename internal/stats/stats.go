// Package stats provides the summary statistics the RobuSTore
// evaluation reports: means, sample standard deviations (the
// robustness metric of §6.2.3), extrema, and percentiles over sets of
// access measurements.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator; 0 for
// fewer than two points) — the access-latency robustness metric.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest value (+Inf for an empty sample).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (-Inf for an empty sample).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. Empty samples return NaN.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the statistics reported for one experiment point.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Summarize computes a Summary over the sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
	}
}

// CoefficientOfVariation returns StdDev/Mean (0 when the mean is 0) —
// used for "variation less than 25% of the total access latency"
// style claims.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Welford is an online mean/variance accumulator for streaming use in
// long benchmark runs.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}
