package netmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinkValidate(t *testing.T) {
	if err := (Link{RTT: 0.001, Rate: 1e9}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Link{RTT: -1}).Validate(); err == nil {
		t.Fatal("negative RTT accepted")
	}
	if err := (Link{Rate: -1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestLinkBasics(t *testing.T) {
	l := Link{RTT: 0.010, Rate: 1e6}
	if l.OneWay() != 0.005 {
		t.Fatalf("OneWay = %v", l.OneWay())
	}
	if got := l.TransferTime(2e6); got != 2 {
		t.Fatalf("TransferTime = %v, want 2", got)
	}
	unlimited := Link{RTT: 0.001}
	if unlimited.TransferTime(1<<40) != 0 {
		t.Fatal("unlimited link has nonzero transfer time")
	}
}

func TestSerializerFIFO(t *testing.T) {
	s := NewSerializer(100) // 100 B/s
	// First transfer: available at t=0, 50 bytes -> done at 0.5.
	if got := s.Deliver(0, 50); got != 0.5 {
		t.Fatalf("first delivery = %v, want 0.5", got)
	}
	// Second: available at 0.1 but NIC busy until 0.5 -> done at 1.5.
	if got := s.Deliver(0.1, 100); got != 1.5 {
		t.Fatalf("second delivery = %v, want 1.5", got)
	}
	// Third: available at 10 (idle gap) -> done at 10.5.
	if got := s.Deliver(10, 50); got != 10.5 {
		t.Fatalf("third delivery = %v, want 10.5", got)
	}
	if s.Bytes() != 200 {
		t.Fatalf("Bytes = %d, want 200", s.Bytes())
	}
}

func TestSerializerUnlimited(t *testing.T) {
	s := NewSerializer(0)
	if got := s.Deliver(3.5, 1<<30); got != 3.5 {
		t.Fatalf("unlimited delivery = %v, want 3.5", got)
	}
	if s.Clock() != 3.5 {
		t.Fatalf("clock = %v", s.Clock())
	}
}

func TestSerializerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	NewSerializer(10).Deliver(0, -1)
}

func TestNewSerializerNegativeRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate did not panic")
		}
	}()
	NewSerializer(-1)
}

func TestQuickSerializerMonotone(t *testing.T) {
	// Deliveries complete in nondecreasing order and never before the
	// availability time or the minimum serialization time.
	f := func(raw []uint16) bool {
		s := NewSerializer(1000)
		avail := 0.0
		prev := 0.0
		for _, r := range raw {
			avail += float64(r%100) / 1000
			bytes := int64(r%500) + 1
			done := s.Deliver(avail, bytes)
			if done < avail || done < prev {
				return false
			}
			if done-avail < float64(bytes)/1000-1e-12 {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializerThroughputMatchesRate(t *testing.T) {
	// Saturating offered load: completion time == total bytes / rate.
	s := NewSerializer(1e6)
	var total int64
	for i := 0; i < 1000; i++ {
		s.Deliver(0, 1000)
		total += 1000
	}
	want := float64(total) / 1e6
	if math.Abs(s.Clock()-want) > 1e-9 {
		t.Fatalf("saturated clock = %v, want %v", s.Clock(), want)
	}
}
