// Package netmodel provides the network model of the RobuSTore
// simulator (§6.2.2): links with plentiful bandwidth modeled as fixed
// round-trip latencies, plus a serializer that imposes the client
// NIC's finite aggregate receive/send rate on block transfers (the
// only bandwidth limit the paper's configuration retains: a 10 Gbps
// client interface).
package netmodel

import "fmt"

// Link is a client↔filer network path with a fixed round-trip time
// and an optional per-transfer rate limit (0 means unlimited, matching
// the paper's "plentiful bandwidth" assumption for the wide area).
type Link struct {
	RTT  float64 // seconds, round trip
	Rate float64 // bytes/second; 0 = unlimited
}

// Validate reports whether the link parameters are sensible.
func (l Link) Validate() error {
	if l.RTT < 0 {
		return fmt.Errorf("netmodel: negative RTT")
	}
	if l.Rate < 0 {
		return fmt.Errorf("netmodel: negative rate")
	}
	return nil
}

// OneWay returns the one-way latency.
func (l Link) OneWay() float64 { return l.RTT / 2 }

// TransferTime returns the serialization time for `bytes` on the link
// (0 when the link is unlimited).
func (l Link) TransferTime(bytes int64) float64 {
	if l.Rate <= 0 {
		return 0
	}
	return float64(bytes) / l.Rate
}

// Serializer models a single shared interface (the client NIC) as a
// FIFO server: transfers become available at some time and are then
// serialized at the interface rate. It is the G/D/1 queue through
// which every block delivery to (or from) the client passes.
type Serializer struct {
	rate  float64
	clock float64
	bytes int64
}

// NewSerializer returns a serializer with the given rate in bytes/s
// (0 = unlimited: Deliver returns the availability time unchanged).
func NewSerializer(rate float64) *Serializer {
	if rate < 0 {
		panic("netmodel: negative serializer rate")
	}
	return &Serializer{rate: rate}
}

// Deliver schedules a transfer of `bytes` that becomes available at
// time `available` and returns its completion time. Calls must be made
// in nondecreasing order of availability for the FIFO semantics to
// hold; out-of-order availability is tolerated by queueing behind the
// current clock.
func (s *Serializer) Deliver(available float64, bytes int64) float64 {
	if bytes < 0 {
		panic("netmodel: negative transfer size")
	}
	s.bytes += bytes
	if s.rate <= 0 {
		if available > s.clock {
			s.clock = available
		}
		return available
	}
	start := s.clock
	if available > start {
		start = available
	}
	s.clock = start + float64(bytes)/s.rate
	return s.clock
}

// Clock returns the time the interface becomes free.
func (s *Serializer) Clock() float64 { return s.clock }

// Bytes returns the total bytes that have passed through.
func (s *Serializer) Bytes() int64 { return s.bytes }
