package cluster

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/workload"
)

func het() Trial {
	return Trial{Layout: workload.HeterogeneousLayout(), Background: workload.NoBackground()}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.TotalDisks = 0 },
		func(c *Config) { c.DisksPerFiler = 0 },
		func(c *Config) { c.RTT = -1 },
		func(c *Config) { c.ClientNIC = -1 },
		func(c *Config) { c.ConnectTime = -1 },
		func(c *Config) { c.FilerCache = 1 << 20; c.CacheLine = 0 },
		func(c *Config) { c.Disk.RPM = -1 },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewClusterShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalDisks = 24
	cfg.DisksPerFiler = 8
	cl, err := New(cfg, het(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if cl.Drive(i) == nil {
			t.Fatalf("drive %d nil", i)
		}
		if want := i / 8; cl.FilerOf(i) != want {
			t.Fatalf("FilerOf(%d) = %d, want %d", i, cl.FilerOf(i), want)
		}
		if cl.Cache(i) != nil {
			t.Fatal("cache present though disabled")
		}
	}
}

func TestCachesPerFiler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalDisks = 16
	cfg.FilerCache = 1 << 20
	cl, err := New(cfg, het(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Cache(0) == nil {
		t.Fatal("cache missing")
	}
	if cl.Cache(0) != cl.Cache(7) {
		t.Fatal("disks 0 and 7 should share filer 0's cache")
	}
	if cl.Cache(0) == cl.Cache(8) {
		t.Fatal("disks 0 and 8 must not share a cache")
	}
}

func TestCacheAddrDisjointAcrossDisks(t *testing.T) {
	cfg := DefaultConfig()
	cl, _ := New(cfg, het(), 3)
	const bb = 1 << 20
	// Two different disks behind the same filer, same slot index, must
	// map to different addresses.
	a := cl.CacheAddr(0, 5, bb)
	b := cl.CacheAddr(1, 5, bb)
	if a == b {
		t.Fatal("cache addresses collide across disks")
	}
	// Consecutive slots of one disk must not overlap.
	if cl.CacheAddr(0, 0, bb)+bb > cl.CacheAddr(0, 1, bb)+1 &&
		cl.CacheAddr(0, 1, bb) < cl.CacheAddr(0, 0, bb)+bb {
		t.Fatal("consecutive block addresses overlap")
	}
}

func TestSelectDisks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalDisks = 16
	cl, _ := New(cfg, het(), 4)
	sel, err := cl.SelectDisks(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 8 {
		t.Fatalf("selected %d disks", len(sel))
	}
	seen := map[int]bool{}
	for _, d := range sel {
		if d < 0 || d >= 16 || seen[d] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[d] = true
	}
	if _, err := cl.SelectDisks(17); err == nil {
		t.Fatal("over-selection accepted")
	}
	if _, err := cl.SelectDisks(0); err == nil {
		t.Fatal("zero selection accepted")
	}
}

func TestHeterogeneousLayoutsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalDisks = 32
	cl, _ := New(cfg, het(), 5)
	layouts := map[disk.Layout]bool{}
	for i := 0; i < 32; i++ {
		layouts[cl.Drive(i).Layout()] = true
	}
	if len(layouts) < 4 {
		t.Fatalf("only %d distinct layouts across 32 disks", len(layouts))
	}
}

func TestHomogeneousLayoutsEqual(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalDisks = 16
	fixed := disk.Layout{BlockingFactor: 512, PSeq: 1}
	trial := Trial{
		Layout:     workload.HomogeneousLayout(fixed),
		Background: workload.NoBackground(),
	}
	cl, err := New(cfg, trial, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if cl.Drive(i).Layout() != fixed {
			t.Fatalf("disk %d layout %+v, want fixed", i, cl.Drive(i).Layout())
		}
	}
}

func TestReconfigureKeepsCaches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalDisks = 8
	cfg.FilerCache = 1 << 20
	cl, err := New(cfg, het(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cache := cl.Cache(0)
	cache.Insert(0, 4096)
	old := cl.Drive(0)
	if err := cl.ReconfigureDrives(het()); err != nil {
		t.Fatal(err)
	}
	if cl.Drive(0) == old {
		t.Fatal("drive not replaced")
	}
	if cl.Cache(0) != cache {
		t.Fatal("cache replaced")
	}
	if !cache.Contains(0, 4096) {
		t.Fatal("cache contents lost")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalDisks = 8
	a, _ := New(cfg, het(), 9)
	b, _ := New(cfg, het(), 9)
	for i := 0; i < 8; i++ {
		if a.Drive(i).Layout() != b.Drive(i).Layout() {
			t.Fatal("same seed produced different layouts")
		}
		if a.Drive(i).MediaRate() != b.Drive(i).MediaRate() {
			t.Fatal("same seed produced different zones")
		}
	}
}
