// Package cluster assembles the simulated wide-area storage system of
// §6.2.5 / Fig 6-4: a pool of disks attached to filers (each filer
// with an optional shared filesystem cache), reached from one client
// over fixed-RTT links through a finite-rate client NIC. A Cluster is
// instantiated per trial with per-disk layouts and competitive
// background streams drawn from workload policies, and is consumed by
// the storage-scheme simulations in internal/schemes.
package cluster

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/cachesim"
	"repro/internal/disk"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/workload"
)

// clusterMetrics count cluster-model churn: how many trial clusters
// and drive models the simulation harness instantiates, and how often
// the access scheduler draws disk subsets. They make the cost of a
// simulation sweep visible from the -metrics dump without touching
// the deterministic trial state (counters only — no RNG, no clock).
type clusterMetrics struct {
	clusters     *obs.Counter
	drives       *obs.Counter
	selections   *obs.Counter
	reconfigures *obs.Counter
}

// observed holds the active metrics, swapped atomically so Observe is
// safe against concurrently running trials.
var observed atomic.Pointer[clusterMetrics]

// Observe routes the package's counters to r (nil disables). Counter
// names: cluster_trials_total, cluster_drives_built_total,
// cluster_disk_selections_total, cluster_reconfigures_total.
func Observe(r *obs.Registry) {
	if r == nil {
		observed.Store(nil)
		return
	}
	observed.Store(&clusterMetrics{
		clusters:     r.Counter("cluster_trials_total"),
		drives:       r.Counter("cluster_drives_built_total"),
		selections:   r.Counter("cluster_disk_selections_total"),
		reconfigures: r.Counter("cluster_reconfigures_total"),
	})
}

// Config is the hardware configuration of the storage system.
type Config struct {
	TotalDisks    int     // disks in the pool (paper: 128)
	DisksPerFiler int     // disks per filer (paper: 8)
	RTT           float64 // client↔filer round trip (paper baseline: 1 ms)
	ClientNIC     float64 // client interface rate, bytes/s (paper: 10 Gbps)
	ConnectTime   float64 // metadata + connection setup per access (paper: 5 ms)

	FilerCache int64 // filesystem cache per filer; 0 disables (paper: 2 GB)
	CacheLine  int64 // cache line size (paper: 4 KB)
	CacheWays  int   // associativity (paper: 4)

	Disk disk.Params
}

// DefaultConfig returns the paper's baseline system (§6.2.5) with
// caching disabled (it is enabled only in the §6.3.3 experiments).
func DefaultConfig() Config {
	return Config{
		TotalDisks:    128,
		DisksPerFiler: 8,
		RTT:           0.001,
		ClientNIC:     2.5e9, // paper assumes plentiful bandwidth; 20 Gbps keeps the NIC out of the disk-bound experiments while still bounding cached transfers
		ConnectTime:   0.005,
		FilerCache:    0,
		CacheLine:     4 << 10,
		CacheWays:     4,
		Disk:          disk.DefaultParams(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TotalDisks < 1 {
		return fmt.Errorf("cluster: TotalDisks must be >= 1")
	}
	if c.DisksPerFiler < 1 {
		return fmt.Errorf("cluster: DisksPerFiler must be >= 1")
	}
	if c.RTT < 0 || c.ClientNIC < 0 || c.ConnectTime < 0 {
		return fmt.Errorf("cluster: negative timing parameter")
	}
	if c.FilerCache > 0 && (c.CacheLine <= 0 || c.CacheWays <= 0) {
		return fmt.Errorf("cluster: cache enabled but line/ways invalid")
	}
	return c.Disk.Validate()
}

// Trial is the per-trial variation configuration.
type Trial struct {
	Layout     workload.LayoutPolicy
	Background workload.BackgroundPolicy
}

// Cluster is one instantiated trial of the storage system.
type Cluster struct {
	cfg    Config
	drives []*disk.Drive
	caches []*cachesim.Cache // per filer; nil entries when disabled
	rng    *rand.Rand
}

// New builds a cluster for one trial: every disk draws its layout,
// background stream, and zone from the trial seed.
func New(cfg Config, trial Trial, seed int64) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := trial.Background.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Cluster{cfg: cfg, rng: rng}
	if m := observed.Load(); m != nil {
		m.clusters.Inc()
		m.drives.Add(int64(cfg.TotalDisks))
	}
	c.drives = make([]*disk.Drive, cfg.TotalDisks)
	for i := range c.drives {
		lay := trial.Layout.Sample(rng)
		bg := trial.Background.Sample(rng)
		d, err := disk.NewDrive(cfg.Disk, lay, bg, rng.Int63())
		if err != nil {
			return nil, err
		}
		c.drives[i] = d
	}
	nFilers := (cfg.TotalDisks + cfg.DisksPerFiler - 1) / cfg.DisksPerFiler
	c.caches = make([]*cachesim.Cache, nFilers)
	if cfg.FilerCache > 0 {
		for f := range c.caches {
			cache, err := cachesim.New(cfg.FilerCache, cfg.CacheLine, cfg.CacheWays)
			if err != nil {
				return nil, err
			}
			c.caches[f] = cache
		}
	}
	return c, nil
}

// Config returns the cluster's hardware configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Drive returns disk i's drive model.
func (c *Cluster) Drive(i int) *disk.Drive { return c.drives[i] }

// FilerOf returns the filer index that disk i attaches to.
func (c *Cluster) FilerOf(i int) int { return i / c.cfg.DisksPerFiler }

// Cache returns the cache of disk i's filer, or nil when disabled.
func (c *Cluster) Cache(i int) *cachesim.Cache { return c.caches[c.FilerOf(i)] }

// CacheAddr returns the filer-cache address of the j-th block slot on
// disk i with the given block size. Slots of different disks behind
// the same filer occupy disjoint address regions.
func (c *Cluster) CacheAddr(i, j int, blockBytes int64) int64 {
	local := int64(i % c.cfg.DisksPerFiler)
	return local<<42 + int64(j)*blockBytes
}

// SelectDisks picks n distinct disks uniformly at random in random
// order, as the paper's access scheduler does per access.
func (c *Cluster) SelectDisks(n int) ([]int, error) {
	if n < 1 || n > c.cfg.TotalDisks {
		return nil, fmt.Errorf("cluster: cannot select %d of %d disks", n, c.cfg.TotalDisks)
	}
	if m := observed.Load(); m != nil {
		m.selections.Inc()
	}
	return c.rng.Perm(c.cfg.TotalDisks)[:n], nil
}

// RNG exposes the trial RNG for scheme-level randomness (graph
// construction, block-order permutations) so one seed reproduces the
// whole trial.
func (c *Cluster) RNG() *rand.Rand { return c.rng }

// NewNICSerializer returns a fresh client-NIC serializer for one
// access direction.
func (c *Cluster) NewNICSerializer() *netmodel.Serializer {
	return netmodel.NewSerializer(c.cfg.ClientNIC)
}

// ReconfigureDrives redraws every drive's layout, background stream,
// and zone (new seeds from the trial RNG) while keeping filer caches
// intact — used between consecutive accesses in the §6.3.3 caching
// experiments, where disk behaviour is dynamic but cache contents
// persist.
func (c *Cluster) ReconfigureDrives(trial Trial) error {
	if m := observed.Load(); m != nil {
		m.reconfigures.Inc()
		m.drives.Add(int64(len(c.drives)))
	}
	for i := range c.drives {
		lay := trial.Layout.Sample(c.rng)
		bg := trial.Background.Sample(c.rng)
		d, err := disk.NewDrive(c.cfg.Disk, lay, bg, c.rng.Int63())
		if err != nil {
			return err
		}
		c.drives[i] = d
	}
	return nil
}
