package blockstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// storeFactories builds each Store implementation for the shared
// conformance tests.
func storeFactories(t *testing.T) map[string]func() Store {
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore() },
		"file": func() Store {
			fs, err := NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
		"slow": func() Store {
			return NewSlowStore(NewMemStore(), SlowProfile{BaseLatency: time.Microsecond}, 1)
		},
	}
}

func TestStoreConformance(t *testing.T) {
	ctx := context.Background()
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()

			// Missing block.
			if _, err := s.Get(ctx, "seg", 0); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing = %v, want ErrNotFound", err)
			}
			// Put / Get round trip.
			data := []byte("hello block")
			if err := s.Put(ctx, "seg", 3, data); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(ctx, "seg", 3)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("Get = %q", got)
			}
			// Overwrite.
			if err := s.Put(ctx, "seg", 3, []byte("v2")); err != nil {
				t.Fatal(err)
			}
			got, _ = s.Get(ctx, "seg", 3)
			if string(got) != "v2" {
				t.Fatalf("overwrite failed: %q", got)
			}
			// List is sorted and scoped to the segment.
			s.Put(ctx, "seg", 1, []byte("a"))
			s.Put(ctx, "seg", 10, []byte("b"))
			s.Put(ctx, "other", 5, []byte("c"))
			idx, err := s.List(ctx, "seg")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(idx) != "[1 3 10]" {
				t.Fatalf("List = %v", idx)
			}
			// Delete (idempotent).
			if err := s.Delete(ctx, "seg", 3); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(ctx, "seg", 3); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(ctx, "seg", 3); !errors.Is(err, ErrNotFound) {
				t.Fatal("deleted block still present")
			}
			// Address validation.
			if err := s.Put(ctx, "", 0, data); err == nil {
				t.Fatal("empty segment accepted")
			}
			if err := s.Put(ctx, "seg", -1, data); err == nil {
				t.Fatal("negative index accepted")
			}
			// Empty-segment list.
			if idx, err := s.List(ctx, "nothing"); err != nil || len(idx) != 0 {
				t.Fatalf("List of absent segment = %v, %v", idx, err)
			}
		})
	}
}

func TestMemStoreCopiesOnPut(t *testing.T) {
	ctx := context.Background()
	s := NewMemStore()
	buf := []byte("mutable")
	s.Put(ctx, "seg", 0, buf)
	buf[0] = 'X'
	got, _ := s.Get(ctx, "seg", 0)
	if string(got) != "mutable" {
		t.Fatal("Put did not copy the caller's buffer")
	}
}

func TestMemStoreBytesAccounting(t *testing.T) {
	ctx := context.Background()
	s := NewMemStore()
	s.Put(ctx, "a", 0, make([]byte, 100))
	s.Put(ctx, "a", 1, make([]byte, 50))
	s.Put(ctx, "a", 0, make([]byte, 10)) // overwrite shrinks
	if s.Bytes() != 60 {
		t.Fatalf("Bytes = %d, want 60", s.Bytes())
	}
	s.Delete(ctx, "a", 1)
	if s.Bytes() != 10 {
		t.Fatalf("Bytes after delete = %d, want 10", s.Bytes())
	}
}

func TestClosedStore(t *testing.T) {
	ctx := context.Background()
	for name, mk := range storeFactories(t) {
		if name == "slow" {
			continue // slow wraps mem; covered there
		}
		s := mk()
		s.Close()
		if err := s.Put(ctx, "s", 0, []byte("x")); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Put after Close = %v", name, err)
		}
		if _, err := s.Get(ctx, "s", 0); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Get after Close = %v", name, err)
		}
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(ctx, "some/segment:name", 7, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Get(ctx, "some/segment:name", 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persisted" {
		t.Fatalf("reopened Get = %q", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	ctx := context.Background()
	s := NewMemStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				seg := fmt.Sprintf("seg%d", g%2)
				s.Put(ctx, seg, i, []byte{byte(g), byte(i)})
				s.Get(ctx, seg, i)
				s.List(ctx, seg)
			}
		}(g)
	}
	wg.Wait()
}

func TestSlowStoreDelays(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "s", 0, make([]byte, 1000))
	s := NewSlowStore(inner, SlowProfile{BaseLatency: 30 * time.Millisecond}, 1)
	start := time.Now()
	if _, err := s.Get(ctx, "s", 0); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("SlowStore did not delay")
	}
}

func TestSlowStoreContextCancel(t *testing.T) {
	inner := NewMemStore()
	inner.Put(context.Background(), "s", 0, []byte("x"))
	s := NewSlowStore(inner, SlowProfile{BaseLatency: 10 * time.Second}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Get(ctx, "s", 0)
	if err == nil {
		t.Fatal("canceled Get succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not interrupt the delay")
	}
}

func TestSlowStoreFailureInjection(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "s", 0, []byte("x"))
	s := NewSlowStore(inner, SlowProfile{FailureRate: 1}, 1)
	if _, err := s.Get(ctx, "s", 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get = %v, want ErrInjected", err)
	}
	if err := s.Put(ctx, "s", 1, []byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put = %v, want ErrInjected", err)
	}
}

func TestSlowStoreBandwidth(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "s", 0, make([]byte, 100_000))
	s := NewSlowStore(inner, SlowProfile{Bandwidth: 1e6}, 1) // 1 MB/s
	start := time.Now()
	if _, err := s.Get(ctx, "s", 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("100KB at 1MB/s took only %v", d)
	}
}
