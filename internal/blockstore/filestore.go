package blockstore

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// FileStore persists blocks as files under a root directory:
// <root>/<hex(segment)>/<index>.blk. Segment names are hex-encoded so
// arbitrary names cannot escape the root or collide with path syntax.
type FileStore struct {
	root string

	mu     sync.Mutex
	closed bool
}

// NewFileStore creates (if needed) and opens a file-backed store.
func NewFileStore(root string) (*FileStore, error) {
	if root == "" {
		return nil, fmt.Errorf("blockstore: empty root directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: creating root: %w", err)
	}
	return &FileStore{root: root}, nil
}

func (s *FileStore) segDir(segment string) string {
	return filepath.Join(s.root, hex.EncodeToString([]byte(segment)))
}

func (s *FileStore) blockPath(segment string, index int) string {
	return filepath.Join(s.segDir(segment), strconv.Itoa(index)+".blk")
}

func (s *FileStore) checkOpen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Put writes the block atomically and durably: temp file, fsync,
// rename, then fsync of the segment directory. Without the file sync
// a crash after rename can surface a complete-looking block full of
// zeroes; without the directory sync the rename itself can vanish.
func (s *FileStore) Put(ctx context.Context, segment string, index int, data []byte) error {
	if err := validate(segment, index); err != nil {
		return err
	}
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	dir := s.segDir(segment)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: %w", err)
	}
	if err := os.Rename(tmpName, s.blockPath(segment, index)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a
// crash. Filesystems that cannot sync directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("blockstore: %w", err)
	}
	return nil
}

// Get reads a block.
func (s *FileStore) Get(ctx context.Context, segment string, index int) ([]byte, error) {
	if err := validate(segment, index); err != nil {
		return nil, err
	}
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(s.blockPath(segment, index))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	return b, nil
}

// Delete removes a block file.
func (s *FileStore) Delete(ctx context.Context, segment string, index int) error {
	if err := validate(segment, index); err != nil {
		return err
	}
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	err := os.Remove(s.blockPath(segment, index))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("blockstore: %w", err)
	}
	return nil
}

// List returns the indices stored for a segment.
func (s *FileStore) List(ctx context.Context, segment string) ([]int, error) {
	if segment == "" {
		return nil, validate(segment, 0)
	}
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.segDir(segment))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".blk") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(name, ".blk"))
		if err != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

// Close marks the store closed (files remain on disk).
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
