package blockstore

import (
	"context"
	"sort"
	"sync"
)

// MemStore is an in-memory Store. The zero value is not usable; call
// NewMemStore.
type MemStore struct {
	mu       sync.RWMutex
	segments map[string]map[int][]byte
	closed   bool
	bytes    int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{segments: make(map[string]map[int][]byte)}
}

// Put stores a copy of data.
func (s *MemStore) Put(ctx context.Context, segment string, index int, data []byte) error {
	if err := validate(segment, index); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	seg := s.segments[segment]
	if seg == nil {
		seg = make(map[int][]byte)
		s.segments[segment] = seg
	}
	if old, ok := seg[index]; ok {
		s.bytes -= int64(len(old))
	}
	seg[index] = cp
	s.bytes += int64(len(cp))
	return nil
}

// Get returns the stored block (the caller must not mutate it).
func (s *MemStore) Get(ctx context.Context, segment string, index int) ([]byte, error) {
	if err := validate(segment, index); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if b, ok := s.segments[segment][index]; ok {
		return b, nil
	}
	return nil, ErrNotFound
}

// Delete removes a block.
func (s *MemStore) Delete(ctx context.Context, segment string, index int) error {
	if err := validate(segment, index); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if b, ok := s.segments[segment][index]; ok {
		s.bytes -= int64(len(b))
		delete(s.segments[segment], index)
		if len(s.segments[segment]) == 0 {
			delete(s.segments, segment)
		}
	}
	return nil
}

// List returns the stored indices of a segment in ascending order.
func (s *MemStore) List(ctx context.Context, segment string) ([]int, error) {
	if segment == "" {
		return nil, validate(segment, 0)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	seg := s.segments[segment]
	out := make([]int, 0, len(seg))
	for idx := range seg {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

// Bytes returns the total stored payload size.
func (s *MemStore) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Close marks the store closed.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.segments = nil
	return nil
}
