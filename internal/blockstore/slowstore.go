package blockstore

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// SlowProfile describes the emulated performance of a heterogeneous
// remote disk wrapped by SlowStore.
type SlowProfile struct {
	// BaseLatency is the fixed per-request positioning/network delay.
	BaseLatency time.Duration
	// JitterLatency adds a uniform random extra delay in [0, Jitter].
	JitterLatency time.Duration
	// Bandwidth throttles transfers, bytes/second (0 = unlimited).
	Bandwidth float64
	// FailureRate is the probability a request errors (0..1).
	FailureRate float64
	// StallRate is the probability a request stalls for StallTime —
	// the "slow to respond" disks RobuSTore is designed to tolerate.
	StallRate float64
	StallTime time.Duration
}

// ErrInjected is returned for injected request failures.
var ErrInjected = errors.New("blockstore: injected failure")

// SlowStore wraps a Store and delays/throttles/fails requests per a
// SlowProfile, so the real RobuSTore client can be exercised against
// an emulated heterogeneous disk fleet on one machine. Delays honor
// context cancellation, which is what lets speculative reads abandon
// stragglers.
type SlowStore struct {
	inner   Store
	profile SlowProfile

	mu  sync.Mutex
	rng *rand.Rand
}

// NewSlowStore wraps inner with the given profile and RNG seed.
func NewSlowStore(inner Store, profile SlowProfile, seed int64) *SlowStore {
	return &SlowStore{inner: inner, profile: profile, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the configured profile.
func (s *SlowStore) Profile() SlowProfile { return s.profile }

// draw samples the delay and failure decision for one request of n
// bytes under the store's lock (the RNG is not concurrency-safe).
func (s *SlowStore) draw(n int) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.profile
	if p.FailureRate > 0 && s.rng.Float64() < p.FailureRate {
		return 0, ErrInjected
	}
	d := p.BaseLatency
	if p.JitterLatency > 0 {
		d += time.Duration(s.rng.Float64() * float64(p.JitterLatency))
	}
	if p.StallRate > 0 && s.rng.Float64() < p.StallRate {
		d += p.StallTime
	}
	if p.Bandwidth > 0 {
		d += time.Duration(float64(n) / p.Bandwidth * float64(time.Second))
	}
	return d, nil
}

// sleep waits for d or until the context is canceled.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Put delays then stores.
func (s *SlowStore) Put(ctx context.Context, segment string, index int, data []byte) error {
	d, err := s.draw(len(data))
	if err != nil {
		return err
	}
	if err := sleep(ctx, d); err != nil {
		return err
	}
	return s.inner.Put(ctx, segment, index, data)
}

// Get delays then fetches.
func (s *SlowStore) Get(ctx context.Context, segment string, index int) ([]byte, error) {
	b, err := s.inner.Get(ctx, segment, index)
	if err != nil {
		return nil, err
	}
	d, err := s.draw(len(b))
	if err != nil {
		return nil, err
	}
	if err := sleep(ctx, d); err != nil {
		return nil, err
	}
	return b, nil
}

// Delete passes through without delay.
func (s *SlowStore) Delete(ctx context.Context, segment string, index int) error {
	return s.inner.Delete(ctx, segment, index)
}

// List passes through without delay.
func (s *SlowStore) List(ctx context.Context, segment string) ([]int, error) {
	return s.inner.List(ctx, segment)
}

// Close closes the wrapped store.
func (s *SlowStore) Close() error { return s.inner.Close() }
