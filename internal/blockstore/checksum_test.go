package blockstore

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"testing/quick"
)

func TestChecksumRoundTrip(t *testing.T) {
	ctx := context.Background()
	s := WithChecksums(NewMemStore())
	data := []byte("integrity matters")
	if err := s.Put(ctx, "seg", 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "seg", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	s := WithChecksums(inner)
	if err := s.Put(ctx, "seg", 1, []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip a bit behind the wrapper's back.
	framed, _ := inner.Get(ctx, "seg", 1)
	bad := append([]byte(nil), framed...)
	bad[10] ^= 0x40
	inner.Put(ctx, "seg", 1, bad)
	if _, err := s.Get(ctx, "seg", 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted Get = %v, want ErrCorrupt", err)
	}
}

func TestChecksumDetectsUnframedData(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "seg", 0, []byte("raw, no frame"))
	s := WithChecksums(inner)
	if _, err := s.Get(ctx, "seg", 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unframed Get = %v, want ErrCorrupt", err)
	}
	inner.Put(ctx, "seg", 1, []byte("x"))
	if _, err := s.Get(ctx, "seg", 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short frame Get = %v, want ErrCorrupt", err)
	}
}

func TestChecksumMissingBlockPassesThrough(t *testing.T) {
	s := WithChecksums(NewMemStore())
	if _, err := s.Get(context.Background(), "seg", 5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing Get = %v, want ErrNotFound", err)
	}
}

func TestScrub(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	s := WithChecksums(inner)
	for i := 0; i < 5; i++ {
		s.Put(ctx, "seg", i, []byte{byte(i), byte(i + 1)})
	}
	// Corrupt blocks 1 and 3 underneath.
	for _, i := range []int{1, 3} {
		framed, _ := inner.Get(ctx, "seg", i)
		bad := append([]byte(nil), framed...)
		bad[len(bad)-1] ^= 0xFF
		inner.Put(ctx, "seg", i, bad)
	}
	bad, err := s.Scrub(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 || bad[0] != 1 || bad[1] != 3 {
		t.Fatalf("Scrub = %v, want [1 3]", bad)
	}
}

func TestChecksumQuickAnyPayload(t *testing.T) {
	ctx := context.Background()
	s := WithChecksums(NewMemStore())
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		if err := s.Put(ctx, "q", 0, payload); err != nil {
			return false
		}
		got, err := s.Get(ctx, "q", 0)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumQuickFlipAnyBit(t *testing.T) {
	// Any single-bit flip anywhere in the frame must be detected.
	ctx := context.Background()
	inner := NewMemStore()
	s := WithChecksums(inner)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	s.Put(ctx, "q", 0, payload)
	framed, _ := inner.Get(ctx, "q", 0)
	for bit := 0; bit < len(framed)*8; bit++ {
		bad := append([]byte(nil), framed...)
		bad[bit/8] ^= 1 << (bit % 8)
		inner.Put(ctx, "q", 0, bad)
		if got, err := s.Get(ctx, "q", 0); err == nil && bytes.Equal(got, payload) {
			t.Fatalf("bit flip %d undetected", bit)
		}
	}
}
