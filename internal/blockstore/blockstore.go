// Package blockstore defines the block-level storage-server interface
// of the RobuSTore framework (Ch. 4: "Storage Servers provide data
// storage at block level") and supplies three implementations: an
// in-memory store, an on-disk store, and a wrapper that injects
// latency, bandwidth limits, and faults to emulate heterogeneous
// remote disks in examples and tests.
//
// Blocks are addressed by (segment, index): a segment is one erasure-
// coded data object and the index is the coded-block number within it.
package blockstore

import (
	"context"
	"errors"
	"fmt"
)

// Errors returned by stores.
var (
	// ErrNotFound reports a missing block.
	ErrNotFound = errors.New("blockstore: block not found")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("blockstore: store closed")
	// ErrScrubUnsupported reports a Scrub against a store with no
	// integrity framing to verify (no ChecksumStore in its stack, or a
	// remote server without one).
	ErrScrubUnsupported = errors.New("blockstore: scrub unsupported")
)

// Store is the block-level storage interface. Implementations must be
// safe for concurrent use; Get must return data the caller may retain
// (implementations either copy or treat blocks as immutable).
type Store interface {
	// Put stores a block, overwriting any previous content. Put must
	// not retain data after it returns (copy if needed): callers
	// recycle block buffers through pools on the write hot path.
	Put(ctx context.Context, segment string, index int, data []byte) error
	// Get retrieves a block (ErrNotFound if absent).
	Get(ctx context.Context, segment string, index int) ([]byte, error)
	// Delete removes a block; deleting an absent block is not an error.
	Delete(ctx context.Context, segment string, index int) error
	// List returns the indices stored for a segment, ascending.
	List(ctx context.Context, segment string) ([]int, error)
	// Close releases resources.
	Close() error
}

// BatchPut is one entry of a batched put: a coded block and its
// index within the segment.
type BatchPut struct {
	Index int
	Data  []byte
}

// Batcher is implemented by stores that can move many blocks per
// call: transport.Client maps it onto the batch wire ops (many
// blocks per round trip), MemStore onto a single lock crossing and
// one backing allocation per batch. Every method returns a slice of
// per-entry errors parallel to its input — one bad block never fails
// the batch, and a store-wide failure fills every slot. The robust
// client's read/write/delete paths use the fast path when a store
// offers it and fall back to single-block loops otherwise.
//
// Like Put, PutBatch must not retain entry data after it returns.
type Batcher interface {
	// PutBatch stores the entries, overwriting previous content.
	PutBatch(ctx context.Context, segment string, puts []BatchPut) []error
	// GetBatch retrieves blocks by index (ErrNotFound per absent
	// entry); returned data follows the Get retention contract.
	GetBatch(ctx context.Context, segment string, indices []int) ([][]byte, []error)
	// DeleteBatch removes blocks; absent blocks are not errors.
	DeleteBatch(ctx context.Context, segment string, indices []int) []error
}

// Scrubber is implemented by stores that can verify a segment's
// blocks in place and report the corrupt ones — ChecksumStore
// locally, transport.Client via the SCRUB protocol op. The scrub/
// repair daemon uses it to detect silent corruption without
// downloading every block; a store without integrity framing returns
// ErrScrubUnsupported.
type Scrubber interface {
	// Scrub returns the indices of segment whose stored blocks fail
	// verification (unreadable or checksum mismatch), ascending.
	Scrub(ctx context.Context, segment string) ([]int, error)
}

// validate rejects malformed addresses before they reach a backend.
func validate(segment string, index int) error {
	if segment == "" {
		return fmt.Errorf("blockstore: empty segment name")
	}
	if index < 0 {
		return fmt.Errorf("blockstore: negative block index %d", index)
	}
	return nil
}
