package blockstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorrupt reports a block whose stored checksum does not match its
// contents.
var ErrCorrupt = errors.New("blockstore: block checksum mismatch")

// castagnoli is the CRC-32C table (hardware-accelerated on most CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksumMagic marks checksummed envelopes so mixed deployments fail
// loudly instead of returning frame bytes as data.
const checksumMagic = 0x52435243 // "RCRC"

// ChecksumStore wraps a Store, framing every block with a CRC-32C
// trailer on Put and verifying it on Get. A corrupted block surfaces
// as ErrCorrupt — which the RobuSTore read path treats like a missing
// block, reconstructing from other coded blocks instead (silent disk
// corruption becomes just another erasure).
type ChecksumStore struct {
	inner Store
}

// WithChecksums wraps a store with CRC-32C integrity framing.
func WithChecksums(inner Store) *ChecksumStore {
	return &ChecksumStore{inner: inner}
}

var _ Scrubber = (*ChecksumStore)(nil)

// seal frames data as [magic u32][crc u32][data].
func seal(data []byte) []byte {
	return appendSeal(make([]byte, 0, 8+len(data)), data)
}

// appendSeal appends the [magic u32][crc u32][data] frame to dst —
// the batch path seals many blocks into one backing buffer.
func appendSeal(dst, data []byte) []byte {
	var h [8]byte
	binary.BigEndian.PutUint32(h[0:4], checksumMagic)
	binary.BigEndian.PutUint32(h[4:8], crc32.Checksum(data, castagnoli))
	dst = append(dst, h[:]...)
	return append(dst, data...)
}

// open verifies and strips the frame.
func open(framed []byte) ([]byte, error) {
	if len(framed) < 8 {
		return nil, fmt.Errorf("%w: frame too short", ErrCorrupt)
	}
	if binary.BigEndian.Uint32(framed[0:4]) != checksumMagic {
		return nil, fmt.Errorf("%w: missing checksum frame", ErrCorrupt)
	}
	want := binary.BigEndian.Uint32(framed[4:8])
	data := framed[8:]
	if crc32.Checksum(data, castagnoli) != want {
		return nil, ErrCorrupt
	}
	return data, nil
}

// Put implements Store.
func (s *ChecksumStore) Put(ctx context.Context, segment string, index int, data []byte) error {
	return s.inner.Put(ctx, segment, index, seal(data))
}

// Get implements Store, verifying integrity.
func (s *ChecksumStore) Get(ctx context.Context, segment string, index int) ([]byte, error) {
	framed, err := s.inner.Get(ctx, segment, index)
	if err != nil {
		return nil, err
	}
	return open(framed)
}

// Delete implements Store.
func (s *ChecksumStore) Delete(ctx context.Context, segment string, index int) error {
	return s.inner.Delete(ctx, segment, index)
}

// List implements Store.
func (s *ChecksumStore) List(ctx context.Context, segment string) ([]int, error) {
	return s.inner.List(ctx, segment)
}

// Close implements Store.
func (s *ChecksumStore) Close() error { return s.inner.Close() }

// Scrub verifies every block of a segment, returning the indices that
// fail their checksum (without deleting them).
func (s *ChecksumStore) Scrub(ctx context.Context, segment string) ([]int, error) {
	indices, err := s.inner.List(ctx, segment)
	if err != nil {
		return nil, err
	}
	var bad []int
	for _, idx := range indices {
		if err := ctx.Err(); err != nil {
			return bad, err
		}
		framed, err := s.inner.Get(ctx, segment, idx)
		if err != nil {
			bad = append(bad, idx)
			continue
		}
		if _, err := open(framed); err != nil {
			bad = append(bad, idx)
		}
	}
	return bad, nil
}
