package blockstore

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestFileStoreTornTempInvisible simulates a crash mid-Put: a
// partially written temp file stranded in the segment directory must
// never surface through Get or List — only fully renamed ".blk"
// entries are real.
func TestFileStoreTornTempInvisible(t *testing.T) {
	root := t.TempDir()
	fs, err := NewFileStore(root)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ctx := context.Background()
	if err := fs.Put(ctx, "seg", 0, []byte("durable")); err != nil {
		t.Fatal(err)
	}

	// Strand a torn temp file the way an interrupted Put would: same
	// directory, same ".put-" prefix, partial payload.
	segDir := fs.segDir("seg")
	torn := filepath.Join(segDir, ".put-interrupted")
	if err := os.WriteFile(torn, []byte("half-wri"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a torn rename-target collision candidate: an unparsable name
	// must be ignored too.
	if err := os.WriteFile(filepath.Join(segDir, "junk.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := fs.List(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("List = %v, want [0]: torn temp leaked into listing", got)
	}
	b, err := fs.Get(ctx, "seg", 0)
	if err != nil || !bytes.Equal(b, []byte("durable")) {
		t.Fatalf("Get = %q, %v", b, err)
	}
	// The torn index itself was never committed.
	if _, err := fs.Get(ctx, "seg", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(uncommitted) = %v, want ErrNotFound", err)
	}

	// A failed Put cleans its temp file up even on sync/rename paths:
	// after a successful Put no ".put-*" residue remains.
	if err := fs.Put(ctx, "seg", 2, []byte("more")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(segDir)
	if err != nil {
		t.Fatal(err)
	}
	temps := 0
	for _, e := range entries {
		if e.Name() != ".put-interrupted" && len(e.Name()) > 4 && e.Name()[:5] == ".put-" {
			temps++
		}
	}
	if temps != 0 {
		t.Fatalf("%d temp files left behind by successful Puts", temps)
	}
}

// TestStoresHonorCanceledContext drives every Store implementation
// (and the checksum wrapper's scrub) through every operation with an
// already-canceled context: each must refuse with context.Canceled
// and mutate nothing.
func TestStoresHonorCanceledContext(t *testing.T) {
	newFile := func(t *testing.T) Store {
		fs, err := NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	stores := []struct {
		name string
		mk   func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store { return NewMemStore() }},
		{"file", newFile},
		{"checksum-mem", func(t *testing.T) Store { return WithChecksums(NewMemStore()) }},
		{"checksum-file", func(t *testing.T) Store { return WithChecksums(newFile(t)) }},
	}
	for _, tc := range stores {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk(t)
			defer s.Close()
			live := context.Background()
			if err := s.Put(live, "seg", 0, []byte("x")); err != nil {
				t.Fatal(err)
			}
			canceled, cancel := context.WithCancel(context.Background())
			cancel()

			if err := s.Put(canceled, "seg", 1, []byte("y")); !errors.Is(err, context.Canceled) {
				t.Errorf("Put err = %v, want context.Canceled", err)
			}
			if _, err := s.Get(canceled, "seg", 0); !errors.Is(err, context.Canceled) {
				t.Errorf("Get err = %v, want context.Canceled", err)
			}
			if err := s.Delete(canceled, "seg", 0); !errors.Is(err, context.Canceled) {
				t.Errorf("Delete err = %v, want context.Canceled", err)
			}
			if _, err := s.List(canceled, "seg"); !errors.Is(err, context.Canceled) {
				t.Errorf("List err = %v, want context.Canceled", err)
			}
			if sc, ok := s.(Scrubber); ok {
				if _, err := sc.Scrub(canceled, "seg"); !errors.Is(err, context.Canceled) {
					t.Errorf("Scrub err = %v, want context.Canceled", err)
				}
			}

			// Nothing changed: the canceled Put didn't land, the canceled
			// Delete didn't fire.
			got, err := s.List(live, "seg")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0] != 0 {
				t.Fatalf("List = %v after canceled ops, want [0]", got)
			}
		})
	}
}
