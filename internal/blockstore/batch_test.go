package blockstore

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// plainStore strips the Batcher methods off a MemStore, standing in
// for a backend without batch fast paths.
type plainStore struct{ inner *MemStore }

func (p plainStore) Put(ctx context.Context, seg string, idx int, data []byte) error {
	return p.inner.Put(ctx, seg, idx, data)
}
func (p plainStore) Get(ctx context.Context, seg string, idx int) ([]byte, error) {
	return p.inner.Get(ctx, seg, idx)
}
func (p plainStore) Delete(ctx context.Context, seg string, idx int) error {
	return p.inner.Delete(ctx, seg, idx)
}
func (p plainStore) List(ctx context.Context, seg string) ([]int, error) {
	return p.inner.List(ctx, seg)
}
func (p plainStore) Close() error { return p.inner.Close() }

// TestBatchRoundTrip exercises PutBatch/GetBatch/DeleteBatch across
// every Batcher and the checksum wrapper over a non-batching inner
// store, which must fall back to per-block calls.
func TestBatchRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		store Store
	}{
		{"mem", NewMemStore()},
		{"checksum-mem", WithChecksums(NewMemStore())},
		{"checksum-plain", WithChecksums(plainStore{NewMemStore()})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, ok := tc.store.(Batcher)
			if !ok {
				t.Fatal("store does not implement Batcher")
			}
			ctx := context.Background()
			puts := []BatchPut{
				{Index: 0, Data: []byte("alpha")},
				{Index: 3, Data: []byte("")},
				{Index: 7, Data: []byte("gamma")},
			}
			for i, err := range b.PutBatch(ctx, "seg", puts) {
				if err != nil {
					t.Fatalf("PutBatch[%d]: %v", i, err)
				}
			}
			datas, errs := b.GetBatch(ctx, "seg", []int{0, 3, 7, 9})
			for i, p := range puts {
				if errs[i] != nil || !bytes.Equal(datas[i], p.Data) {
					t.Fatalf("GetBatch[%d] = %q, %v; want %q", i, datas[i], errs[i], p.Data)
				}
			}
			if !errors.Is(errs[3], ErrNotFound) {
				t.Fatalf("GetBatch[missing] = %v, want ErrNotFound", errs[3])
			}
			for i, err := range b.DeleteBatch(ctx, "seg", []int{0, 3, 7}) {
				if err != nil {
					t.Fatalf("DeleteBatch[%d]: %v", i, err)
				}
			}
			if _, errs := b.GetBatch(ctx, "seg", []int{7}); !errors.Is(errs[0], ErrNotFound) {
				t.Fatalf("block survived DeleteBatch: %v", errs[0])
			}
		})
	}
}

// TestBatchPerEntryErrors checks that one bad entry never fails its
// batch: invalid indices are rejected per entry while the rest land.
func TestBatchPerEntryErrors(t *testing.T) {
	s := NewMemStore()
	ctx := context.Background()
	errs := s.PutBatch(ctx, "seg", []BatchPut{
		{Index: -1, Data: []byte("bad")},
		{Index: 2, Data: []byte("good")},
	})
	if errs[0] == nil {
		t.Fatal("negative index accepted")
	}
	if errs[1] != nil {
		t.Fatalf("valid entry rejected alongside bad one: %v", errs[1])
	}
	datas, gerrs := s.GetBatch(ctx, "seg", []int{-1, 2})
	if gerrs[0] == nil {
		t.Fatal("GetBatch accepted negative index")
	}
	if gerrs[1] != nil || string(datas[1]) != "good" {
		t.Fatalf("GetBatch[2] = %q, %v", datas[1], gerrs[1])
	}
	if derrs := s.DeleteBatch(ctx, "seg", []int{-1, 2}); derrs[0] == nil || derrs[1] != nil {
		t.Fatalf("DeleteBatch per-entry errors wrong: %v", derrs)
	}
}

// TestPutBatchDoesNotRetain pins the pooled-buffer contract: the
// store must copy entry data before returning, so a caller recycling
// its buffers cannot corrupt stored blocks.
func TestPutBatchDoesNotRetain(t *testing.T) {
	for _, tc := range []struct {
		name  string
		store Store
	}{
		{"mem", NewMemStore()},
		{"checksum", WithChecksums(NewMemStore())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.store.(Batcher)
			ctx := context.Background()
			buf := []byte("original")
			if errs := b.PutBatch(ctx, "seg", []BatchPut{{Index: 0, Data: buf}}); errs[0] != nil {
				t.Fatal(errs[0])
			}
			copy(buf, "clobber!")
			datas, errs := b.GetBatch(ctx, "seg", []int{0})
			if errs[0] != nil || string(datas[0]) != "original" {
				t.Fatalf("stored block aliased caller buffer: %q, %v", datas[0], errs[0])
			}
		})
	}
}

// TestChecksumGetBatchFlagsCorruption verifies per-entry integrity: a
// corrupted block reports ErrCorrupt while its batchmates decode.
func TestChecksumGetBatchFlagsCorruption(t *testing.T) {
	inner := NewMemStore()
	s := WithChecksums(inner)
	ctx := context.Background()
	if errs := s.PutBatch(ctx, "seg", []BatchPut{
		{Index: 0, Data: []byte("keep")},
		{Index: 1, Data: []byte("smash")},
	}); errs[0] != nil || errs[1] != nil {
		t.Fatal(errs)
	}
	// Flip a payload bit behind the wrapper's back.
	raw, err := inner.Get(ctx, "seg", 1)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)-1] ^= 0xFF
	if err := inner.Put(ctx, "seg", 1, tampered); err != nil {
		t.Fatal(err)
	}
	datas, errs := s.GetBatch(ctx, "seg", []int{0, 1})
	if errs[0] != nil || string(datas[0]) != "keep" {
		t.Fatalf("intact batchmate failed: %q, %v", datas[0], errs[0])
	}
	if !errors.Is(errs[1], ErrCorrupt) {
		t.Fatalf("tampered entry = %v, want ErrCorrupt", errs[1])
	}
	if datas[1] != nil {
		t.Fatal("corrupt entry returned data")
	}
}

// TestBatchClosedAndCanceled checks whole-batch failure modes: a
// closed store and a canceled context fill every slot.
func TestBatchClosedAndCanceled(t *testing.T) {
	s := NewMemStore()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for i, err := range s.PutBatch(canceled, "seg", make([]BatchPut, 2)) {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled PutBatch[%d] = %v", i, err)
		}
	}
	s.Close()
	ctx := context.Background()
	if errs := s.PutBatch(ctx, "seg", []BatchPut{{Index: 0, Data: []byte("x")}}); !errors.Is(errs[0], ErrClosed) {
		t.Fatalf("closed PutBatch = %v, want ErrClosed", errs[0])
	}
	if _, errs := s.GetBatch(ctx, "seg", []int{0}); !errors.Is(errs[0], ErrClosed) {
		t.Fatalf("closed GetBatch = %v, want ErrClosed", errs[0])
	}
	if errs := s.DeleteBatch(ctx, "seg", []int{0}); !errors.Is(errs[0], ErrClosed) {
		t.Fatalf("closed DeleteBatch = %v, want ErrClosed", errs[0])
	}
}
