package blockstore

import "context"

// Batch fast paths for the local stores. MemStore crosses its lock
// once per batch and copies every entry into a single backing
// allocation — the difference between ~1 allocation per block and ~1
// per batch on the steady-state write path. ChecksumStore seals a
// whole batch into one backing buffer and delegates to its inner
// store's fast path when it has one.

var (
	_ Batcher = (*MemStore)(nil)
	_ Batcher = (*ChecksumStore)(nil)
)

// PutBatch implements Batcher with one lock crossing and one backing
// allocation for all entries.
func (s *MemStore) PutBatch(ctx context.Context, segment string, puts []BatchPut) []error {
	errs := make([]error, len(puts))
	var total int
	ok := false
	for i, p := range puts {
		if errs[i] = validate(segment, p.Index); errs[i] == nil {
			total += len(p.Data)
			ok = true
		}
	}
	if !ok {
		return errs
	}
	if err := ctx.Err(); err != nil {
		return fillBatchErrs(errs, err)
	}
	backing := make([]byte, 0, total)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fillBatchErrs(errs, ErrClosed)
	}
	seg := s.segments[segment]
	if seg == nil {
		seg = make(map[int][]byte, len(puts))
		s.segments[segment] = seg
	}
	for i, p := range puts {
		if errs[i] != nil {
			continue
		}
		off := len(backing)
		backing = append(backing, p.Data...)
		cp := backing[off:len(backing):len(backing)]
		if old, okOld := seg[p.Index]; okOld {
			s.bytes -= int64(len(old))
		}
		seg[p.Index] = cp
		s.bytes += int64(len(cp))
	}
	return errs
}

// GetBatch implements Batcher with one lock crossing.
func (s *MemStore) GetBatch(ctx context.Context, segment string, indices []int) ([][]byte, []error) {
	datas := make([][]byte, len(indices))
	errs := make([]error, len(indices))
	if err := ctx.Err(); err != nil {
		return datas, fillBatchErrs(errs, err)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return datas, fillBatchErrs(errs, ErrClosed)
	}
	seg := s.segments[segment]
	for i, idx := range indices {
		if errs[i] = validate(segment, idx); errs[i] != nil {
			continue
		}
		if b, ok := seg[idx]; ok {
			datas[i] = b
		} else {
			errs[i] = ErrNotFound
		}
	}
	return datas, errs
}

// DeleteBatch implements Batcher with one lock crossing.
func (s *MemStore) DeleteBatch(ctx context.Context, segment string, indices []int) []error {
	errs := make([]error, len(indices))
	if err := ctx.Err(); err != nil {
		return fillBatchErrs(errs, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fillBatchErrs(errs, ErrClosed)
	}
	for i, idx := range indices {
		if errs[i] = validate(segment, idx); errs[i] != nil {
			continue
		}
		if b, ok := s.segments[segment][idx]; ok {
			s.bytes -= int64(len(b))
			delete(s.segments[segment], idx)
		}
	}
	if len(s.segments[segment]) == 0 {
		delete(s.segments, segment)
	}
	return errs
}

// PutBatch implements Batcher: all entries are sealed into one
// backing buffer, then stored through the inner fast path when the
// inner store has one.
func (s *ChecksumStore) PutBatch(ctx context.Context, segment string, puts []BatchPut) []error {
	var total int
	for _, p := range puts {
		total += 8 + len(p.Data)
	}
	backing := make([]byte, 0, total)
	sealed := make([]BatchPut, len(puts))
	for i, p := range puts {
		off := len(backing)
		backing = appendSeal(backing, p.Data)
		sealed[i] = BatchPut{Index: p.Index, Data: backing[off:len(backing):len(backing)]}
	}
	if bs, ok := s.inner.(Batcher); ok {
		return bs.PutBatch(ctx, segment, sealed)
	}
	errs := make([]error, len(sealed))
	for i, p := range sealed {
		if cerr := ctx.Err(); cerr != nil {
			errs[i] = cerr
			continue
		}
		errs[i] = s.inner.Put(ctx, segment, p.Index, p.Data)
	}
	return errs
}

// GetBatch implements Batcher, verifying each entry's integrity.
func (s *ChecksumStore) GetBatch(ctx context.Context, segment string, indices []int) ([][]byte, []error) {
	var datas [][]byte
	var errs []error
	if bs, ok := s.inner.(Batcher); ok {
		datas, errs = bs.GetBatch(ctx, segment, indices)
	} else {
		datas = make([][]byte, len(indices))
		errs = make([]error, len(indices))
		for i, idx := range indices {
			if cerr := ctx.Err(); cerr != nil {
				errs[i] = cerr
				continue
			}
			datas[i], errs[i] = s.inner.Get(ctx, segment, idx)
		}
	}
	for i := range datas {
		if errs[i] != nil {
			datas[i] = nil
			continue
		}
		datas[i], errs[i] = open(datas[i])
	}
	return datas, errs
}

// DeleteBatch implements Batcher.
func (s *ChecksumStore) DeleteBatch(ctx context.Context, segment string, indices []int) []error {
	if bs, ok := s.inner.(Batcher); ok {
		return bs.DeleteBatch(ctx, segment, indices)
	}
	errs := make([]error, len(indices))
	for i, idx := range indices {
		if cerr := ctx.Err(); cerr != nil {
			errs[i] = cerr
			continue
		}
		errs[i] = s.inner.Delete(ctx, segment, idx)
	}
	return errs
}

// fillBatchErrs sets every unset slot to err.
func fillBatchErrs(errs []error, err error) []error {
	for i := range errs {
		if errs[i] == nil {
			errs[i] = err
		}
	}
	return errs
}
