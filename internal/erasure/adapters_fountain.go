package erasure

import (
	"repro/internal/raptor"
	"repro/internal/tornado"
)

// Raptor adapts raptor.Code to the erasure.Code interface.
type Raptor struct {
	code *raptor.Code
}

// NewRaptor builds a Raptor code with k inputs and n coded blocks,
// deterministic in seed.
func NewRaptor(k, n int, seed int64) (*Raptor, error) {
	c, err := raptor.New(raptor.Params{K: k, Seed: seed}, n)
	if err != nil {
		return nil, err
	}
	return &Raptor{code: c}, nil
}

func (c *Raptor) K() int { return c.code.K() }
func (c *Raptor) N() int { return c.code.N() }

func (c *Raptor) Encode(data [][]byte) ([][]byte, error) {
	if _, err := checkBlocks(data, c.K()); err != nil {
		return nil, err
	}
	return c.code.Encode(data)
}

func (c *Raptor) NewDecoder() Decoder { return &raptorDecoder{d: c.code.NewDecoder()} }

type raptorDecoder struct {
	d *raptor.Decoder
}

func (d *raptorDecoder) Add(idx int, payload []byte) error { return d.d.Add(idx, payload) }
func (d *raptorDecoder) Complete() bool                    { return d.d.Complete() }
func (d *raptorDecoder) Received() int                     { return d.d.Received() }
func (d *raptorDecoder) Data() ([][]byte, error)           { return d.d.Data() }

// Tornado adapts tornado.Code to the erasure.Code interface. N is
// determined by the code's fixed rate (≈ K/(1-β)).
type Tornado struct {
	code *tornado.Code
}

// NewTornado builds a rate-1/2 Tornado code over k originals,
// deterministic in seed.
func NewTornado(k int, seed int64) (*Tornado, error) {
	c, err := tornado.New(tornado.Params{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Tornado{code: c}, nil
}

func (c *Tornado) K() int { return c.code.K() }
func (c *Tornado) N() int { return c.code.N() }

func (c *Tornado) Encode(data [][]byte) ([][]byte, error) {
	if _, err := checkBlocks(data, c.K()); err != nil {
		return nil, err
	}
	return c.code.Encode(data)
}

func (c *Tornado) NewDecoder() Decoder { return &tornadoDecoder{d: c.code.NewDecoder()} }

type tornadoDecoder struct {
	d *tornado.Decoder
}

func (d *tornadoDecoder) Add(idx int, payload []byte) error { return d.d.Add(idx, payload) }
func (d *tornadoDecoder) Complete() bool                    { return d.d.Complete() }
func (d *tornadoDecoder) Received() int                     { return d.d.Received() }
func (d *tornadoDecoder) Data() ([][]byte, error)           { return d.d.Data() }
