package erasure

import (
	"math"
	"math/rand"

	"repro/internal/ltcode"
)

// This file implements the Appendix A analysis: the probability that M
// randomly drawn blocks suffice to reassemble K original blocks, for
// (a) plain-text replication and (b) an LT-style code modeled as
// degree-d dart throwing. The paper evaluates these with alternating
// inclusion-exclusion sums that are numerically hopeless at K=1024 in
// floating point; we compute the same quantities with stable all-
// positive dynamic programs in log space.

// logChoose returns ln C(n, k) (−Inf when k < 0 or k > n).
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	ln2, _ := math.Lgamma(float64(k + 1))
	ln3, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - ln2 - ln3
}

// logSumExp returns ln(Σ e^{x_i}) stably.
func logSumExp(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// ReplicationCoverageCurve returns P[m] for m = 0..maxM: the
// probability that m blocks drawn uniformly at random (without
// replacement) from the r*k replicated blocks contain at least one
// copy of every one of the k originals — the exact quantity P(M) of
// Appendix A.1, computed by a stable positive recurrence
//
//	f(c, m) = Σ_{j=1..r} C(r, j) · f(c-1, m-j)
//
// where f(c, m) counts m-subsets covering all of the first c colors;
// P(m) = f(k, m) / C(rk, m).
func ReplicationCoverageCurve(k, r, maxM int) []float64 {
	if maxM > r*k {
		maxM = r * k
	}
	// lf[m] = ln f(c, m) for the current color count c.
	lf := make([]float64, maxM+1)
	next := make([]float64, maxM+1)
	for m := range lf {
		lf[m] = math.Inf(-1)
	}
	lf[0] = 0 // f(0,0) = 1
	lcr := make([]float64, r+1)
	for j := 1; j <= r; j++ {
		lcr[j] = logChoose(r, j)
	}
	terms := make([]float64, 0, r)
	for c := 1; c <= k; c++ {
		for m := 0; m <= maxM; m++ {
			terms = terms[:0]
			for j := 1; j <= r && j <= m; j++ {
				t := lcr[j] + lf[m-j]
				if !math.IsInf(t, -1) {
					terms = append(terms, t)
				}
			}
			next[m] = logSumExp(terms)
		}
		lf, next = next, lf
	}
	out := make([]float64, maxM+1)
	for m := 0; m <= maxM; m++ {
		out[m] = math.Exp(lf[m] - logChoose(r*k, m))
	}
	return out
}

// DartCoverageCurve returns P[m] for m = 0..maxM: the probability that
// m coded blocks, each independently referencing `degree` uniformly
// random original blocks, jointly reference all k originals — the
// Appendix A.2 model Pc(M) with average degree d, computed exactly via
// the coupon-collector Markov chain instead of the alternating sum.
func DartCoverageCurve(k, degree, maxM int) []float64 {
	// State: number of distinct originals covered so far.
	p := make([]float64, k+1)
	p[0] = 1
	out := make([]float64, maxM+1)
	out[0] = p[k]
	kf := float64(k)
	for m := 1; m <= maxM; m++ {
		for dart := 0; dart < degree; dart++ {
			// One dart: covered count c stays with prob c/k, advances
			// with prob (k-c)/k. Iterate downward so we read old values.
			for c := k; c >= 1; c-- {
				p[c] = p[c]*float64(c)/kf + p[c-1]*(kf-float64(c-1))/kf
			}
			p[0] = 0
		}
		out[m] = p[k]
	}
	return out
}

// MonteCarloBlocksNeeded runs `trials` empirical experiments drawing
// coded blocks of the given Code-like process in random order and
// returns the number of blocks needed to reconstruct in each trial.
// kind selects the process.

// ReplicationBlocksNeeded samples how many of the r*k replicated
// blocks must arrive (in uniformly random order) before every original
// has at least one copy.
func ReplicationBlocksNeeded(k, r int, rng *rand.Rand) int {
	n := r * k
	perm := rng.Perm(n)
	covered := make([]bool, k)
	remaining := k
	for m, b := range perm {
		o := b % k
		if !covered[o] {
			covered[o] = true
			remaining--
			if remaining == 0 {
				return m + 1
			}
		}
	}
	return n
}

// LTBlocksNeeded samples how many LT-coded blocks (from a fresh
// improved-LT graph with n = r*k blocks) must arrive in random order
// before the peeling decoder completes. Returns -1 if the graph build
// fails (practically impossible).
func LTBlocksNeeded(p ltcode.Params, r int, rng *rand.Rand) int {
	g, err := ltcode.BuildGraph(p, r*p.K, rng, ltcode.DefaultGraphOptions())
	if err != nil {
		return -1
	}
	d := ltcode.NewSymbolicDecoder(g)
	for _, idx := range rng.Perm(g.N) {
		d.Add(idx)
		if d.Complete() {
			return d.Received()
		}
	}
	return g.N
}

// EmpiricalCDF converts a sample of "blocks needed" values into a CDF
// over m = 0..maxM.
func EmpiricalCDF(samples []int, maxM int) []float64 {
	cdf := make([]float64, maxM+1)
	if len(samples) == 0 {
		return cdf
	}
	counts := make([]int, maxM+2)
	for _, s := range samples {
		if s < 0 {
			continue
		}
		if s > maxM {
			s = maxM + 1
		}
		counts[s]++
	}
	acc := 0
	for m := 0; m <= maxM; m++ {
		acc += counts[m]
		cdf[m] = float64(acc) / float64(len(samples))
	}
	return cdf
}
