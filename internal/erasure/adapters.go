package erasure

import (
	"fmt"
	"math/rand"

	"repro/internal/ltcode"
	"repro/internal/rs"
)

// LT adapts an ltcode.Graph to the Code interface. Because LT codes
// are rateless, the graph (and hence N) is fixed at construction from
// the desired redundancy; the writer may construct a larger graph than
// it intends to store (§4.1.1, adaptive writing).
type LT struct {
	graph *ltcode.Graph
}

// NewLT builds an improved-LT code with n coded blocks using a seeded
// RNG, so that writer and readers derive the same graph from the
// metadata (params, n, seed).
func NewLT(p ltcode.Params, n int, seed int64) (*LT, error) {
	g, err := ltcode.BuildGraph(p, n, rand.New(rand.NewSource(seed)), ltcode.DefaultGraphOptions())
	if err != nil {
		return nil, err
	}
	return &LT{graph: g}, nil
}

// NewLTFromGraph wraps an existing graph.
func NewLTFromGraph(g *ltcode.Graph) *LT { return &LT{graph: g} }

func (c *LT) K() int { return c.graph.K }
func (c *LT) N() int { return c.graph.N }

// Graph exposes the underlying coding graph (for update planning and
// simulation).
func (c *LT) Graph() *ltcode.Graph { return c.graph }

func (c *LT) Encode(data [][]byte) ([][]byte, error) { return c.graph.Encode(data) }

func (c *LT) NewDecoder() Decoder { return &ltDecoder{d: ltcode.NewDecoder(c.graph)} }

type ltDecoder struct {
	d *ltcode.Decoder
}

func (d *ltDecoder) Add(idx int, payload []byte) error {
	_, err := d.d.AddData(idx, payload)
	return err
}

func (d *ltDecoder) Complete() bool          { return d.d.Complete() }
func (d *ltDecoder) Received() int           { return d.d.Received() }
func (d *ltDecoder) Data() ([][]byte, error) { return d.d.Data() }

// RS adapts the systematic Reed-Solomon code to the Code interface
// (optimal erasure code: any K blocks decode).
type RS struct {
	code *rs.Code
}

// NewRS builds a Reed-Solomon code with k data and n-k parity blocks.
func NewRS(k, n int) (*RS, error) {
	if n < k {
		return nil, fmt.Errorf("erasure: RS requires n >= k")
	}
	c, err := rs.New(k, n-k)
	if err != nil {
		return nil, err
	}
	return &RS{code: c}, nil
}

func (c *RS) K() int { return c.code.K() }
func (c *RS) N() int { return c.code.N() }

func (c *RS) Encode(data [][]byte) ([][]byte, error) {
	if _, err := checkBlocks(data, c.K()); err != nil {
		return nil, err
	}
	shards := make([][]byte, c.N())
	copy(shards, data)
	if err := c.code.Encode(shards); err != nil {
		return nil, err
	}
	return shards, nil
}

func (c *RS) NewDecoder() Decoder {
	return &rsDecoder{code: c.code, shards: make([][]byte, c.code.N())}
}

type rsDecoder struct {
	code   *rs.Code
	shards [][]byte
	have   int
	solved bool
}

func (d *rsDecoder) Add(idx int, payload []byte) error {
	if idx < 0 || idx >= d.code.N() {
		return fmt.Errorf("erasure: RS block index %d out of range", idx)
	}
	if d.shards[idx] != nil {
		return nil
	}
	d.shards[idx] = payload
	d.have++
	return nil
}

func (d *rsDecoder) Complete() bool { return d.have >= d.code.K() }
func (d *rsDecoder) Received() int  { return d.have }

func (d *rsDecoder) Data() ([][]byte, error) {
	if !d.Complete() {
		return nil, ErrIncomplete
	}
	if !d.solved {
		if err := d.code.Reconstruct(d.shards); err != nil {
			return nil, err
		}
		d.solved = true
	}
	return d.shards[:d.code.K()], nil
}
