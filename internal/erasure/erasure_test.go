package erasure

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ltcode"
)

func randBlocks(rng *rand.Rand, k, size int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

// roundTrip checks that feeding a random subset of coded blocks (in
// random order, until Complete) reproduces the originals.
func roundTrip(t *testing.T, c Code, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	orig := randBlocks(rng, c.K(), 32)
	coded, err := c.Encode(orig)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(coded) != c.N() {
		t.Fatalf("Encode produced %d blocks, want N=%d", len(coded), c.N())
	}
	d := c.NewDecoder()
	for _, idx := range rng.Perm(c.N()) {
		if err := d.Add(idx, coded[idx]); err != nil {
			t.Fatalf("Add(%d): %v", idx, err)
		}
		if d.Complete() {
			break
		}
	}
	if !d.Complete() {
		t.Fatal("decoder did not complete with all blocks")
	}
	got, err := d.Data()
	if err != nil {
		t.Fatalf("Data: %v", err)
	}
	for i := range orig {
		if !bytes.Equal(got[i], orig[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

func TestReplicationRoundTrip(t *testing.T) {
	for _, r := range []int{1, 2, 4} {
		c, err := NewReplication(8, r)
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, c, int64(r))
	}
}

func TestParityRoundTrip(t *testing.T) {
	c, err := NewParity(7)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, c, 1)
}

func TestParityRecoversEachMissingBlock(t *testing.T) {
	c, _ := NewParity(5)
	rng := rand.New(rand.NewSource(2))
	orig := randBlocks(rng, 5, 16)
	coded, _ := c.Encode(orig)
	for missing := 0; missing < c.N(); missing++ {
		d := c.NewDecoder()
		for idx := range coded {
			if idx == missing {
				continue
			}
			d.Add(idx, coded[idx])
		}
		if !d.Complete() {
			t.Fatalf("parity incomplete with block %d missing", missing)
		}
		got, err := d.Data()
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if !bytes.Equal(got[i], orig[i]) {
				t.Fatalf("missing=%d: block %d wrong", missing, i)
			}
		}
	}
}

func TestLTRoundTrip(t *testing.T) {
	c, err := NewLT(ltcode.Params{K: 16, C: 1, Delta: 0.5}, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, c, 3)
}

func TestLTDeterministicFromSeed(t *testing.T) {
	// Writer and reader must derive identical graphs from the same
	// (params, n, seed) metadata.
	p := ltcode.Params{K: 32, C: 1, Delta: 0.5}
	a, err := NewLT(p, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLT(p, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		na, nb := a.Graph().Neighbors[i], b.Graph().Neighbors[i]
		if len(na) != len(nb) {
			t.Fatalf("graph %d degree differs", i)
		}
		for j := range na {
			if na[j] != nb[j] {
				t.Fatalf("graph neighbor differs at coded %d", i)
			}
		}
	}
}

func TestRSAdapterRoundTrip(t *testing.T) {
	c, err := NewRS(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, c, 4)
}

func TestRSAdapterAnyKSubset(t *testing.T) {
	c, _ := NewRS(4, 8)
	rng := rand.New(rand.NewSource(5))
	orig := randBlocks(rng, 4, 20)
	coded, _ := c.Encode(orig)
	for trial := 0; trial < 30; trial++ {
		d := c.NewDecoder()
		for _, idx := range rng.Perm(8)[:4] {
			d.Add(idx, coded[idx])
		}
		if !d.Complete() {
			t.Fatal("RS not complete with exactly K blocks")
		}
		got, err := d.Data()
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if !bytes.Equal(got[i], orig[i]) {
				t.Fatalf("trial %d: block %d wrong", trial, i)
			}
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewReplication(0, 2); err == nil {
		t.Error("NewReplication(0,2) accepted")
	}
	if _, err := NewReplication(4, 0); err == nil {
		t.Error("NewReplication(4,0) accepted")
	}
	if _, err := NewParity(0); err == nil {
		t.Error("NewParity(0) accepted")
	}
	if _, err := NewRS(4, 2); err == nil {
		t.Error("NewRS(4,2) accepted")
	}
	if _, err := NewLT(ltcode.Params{K: 0, C: 1, Delta: 0.5}, 4, 1); err == nil {
		t.Error("NewLT with K=0 accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	c, _ := NewReplication(3, 2)
	if _, err := c.Encode(make([][]byte, 2)); err != ErrBlockCount {
		t.Errorf("wrong count: %v", err)
	}
	if _, err := c.Encode([][]byte{{1}, {2, 3}, {4}}); err != ErrBlockSize {
		t.Errorf("unequal sizes: %v", err)
	}
	if _, err := c.Encode([][]byte{{}, {}, {}}); err != ErrBlockSize {
		t.Errorf("zero size: %v", err)
	}
}

func TestDecoderOutOfRange(t *testing.T) {
	for _, c := range []Code{
		mustCode(NewReplication(3, 2)),
		mustCode(NewParity(3)),
		mustCode(NewRS(3, 6)),
	} {
		d := c.NewDecoder()
		if err := d.Add(-1, []byte{1}); err == nil {
			t.Errorf("%T accepted negative index", c)
		}
		if err := d.Add(c.N()+5, []byte{1}); err == nil {
			t.Errorf("%T accepted out-of-range index", c)
		}
		if _, err := d.Data(); err == nil {
			t.Errorf("%T returned data while incomplete", c)
		}
	}
}

func mustCode(c Code, err error) Code {
	if err != nil {
		panic(err)
	}
	return c
}

func TestReplicationNeedsEveryOriginal(t *testing.T) {
	// All copies of one block withheld: never complete.
	c, _ := NewReplication(4, 3)
	rng := rand.New(rand.NewSource(6))
	orig := randBlocks(rng, 4, 8)
	coded, _ := c.Encode(orig)
	d := c.NewDecoder()
	for idx := range coded {
		if c.Origin(idx) == 2 {
			continue
		}
		d.Add(idx, coded[idx])
	}
	if d.Complete() {
		t.Fatal("replication complete despite a fully-missing original")
	}
}

// --- Appendix A analysis tests ---

func TestReplicationCoverageCurveSmallExact(t *testing.T) {
	// K=2, R=2 (blocks AABB): P(2) = 1 - P(both picks same color)
	// = 1 - 2*C(2,2)/C(4,2) = 1 - 2/6 = 2/3.
	curve := ReplicationCoverageCurve(2, 2, 4)
	if math.Abs(curve[2]-2.0/3.0) > 1e-9 {
		t.Fatalf("P(2) = %v, want 2/3", curve[2])
	}
	if curve[0] != 0 || curve[1] != 0 {
		t.Fatalf("P(0)/P(1) should be 0: %v %v", curve[0], curve[1])
	}
	if math.Abs(curve[3]-1.0) > 1e-9 || math.Abs(curve[4]-1.0) > 1e-9 {
		// With 3 of 4 blocks drawn you always have both colors.
		t.Fatalf("P(3)=%v P(4)=%v, want 1", curve[3], curve[4])
	}
}

func TestReplicationCoverageCurveMonotone(t *testing.T) {
	curve := ReplicationCoverageCurve(64, 4, 256)
	for m := 1; m < len(curve); m++ {
		if curve[m] < curve[m-1]-1e-12 {
			t.Fatalf("coverage curve not monotone at m=%d", m)
		}
	}
	if curve[63] != 0 {
		t.Fatalf("P(M<K) must be 0, got %v", curve[63])
	}
	if math.Abs(curve[256]-1) > 1e-9 {
		t.Fatalf("P(all blocks) = %v, want 1", curve[256])
	}
}

func TestReplicationCoverageMatchesMonteCarlo(t *testing.T) {
	const k, r = 32, 4
	curve := ReplicationCoverageCurve(k, r, k*r)
	rng := rand.New(rand.NewSource(7))
	const trials = 4000
	var samples []int
	for i := 0; i < trials; i++ {
		samples = append(samples, ReplicationBlocksNeeded(k, r, rng))
	}
	cdf := EmpiricalCDF(samples, k*r)
	for _, m := range []int{k, 2 * k, 3 * k} {
		if math.Abs(curve[m]-cdf[m]) > 0.05 {
			t.Fatalf("analytic P(%d)=%v vs empirical %v differ by > 0.05", m, curve[m], cdf[m])
		}
	}
}

func TestDartCoverageCurveProperties(t *testing.T) {
	curve := DartCoverageCurve(64, 5, 128)
	for m := 1; m < len(curve); m++ {
		if curve[m] < curve[m-1]-1e-12 {
			t.Fatalf("dart curve not monotone at m=%d", m)
		}
		if curve[m] < 0 || curve[m] > 1+1e-12 {
			t.Fatalf("dart curve out of [0,1] at m=%d: %v", m, curve[m])
		}
	}
	if curve[0] != 0 {
		t.Fatalf("P(0 darts) = %v, want 0", curve[0])
	}
	// With 128 blocks x degree 5 = 640 darts over 64 originals,
	// coverage should be near-certain (coupon collector needs ~K ln K
	// = 266 darts).
	if curve[128] < 0.99 {
		t.Fatalf("P(128 blocks) = %v, want near 1", curve[128])
	}
}

func TestErasureBeatsReplicationInBlocksNeeded(t *testing.T) {
	// The Fig 4-1 headline: erasure-coded reassembly needs far fewer
	// random blocks than replication (~1.5K vs ~3K at 4x space).
	const k = 128
	rng := rand.New(rand.NewSource(8))
	var repl, lt float64
	const trials = 30
	for i := 0; i < trials; i++ {
		repl += float64(ReplicationBlocksNeeded(k, 4, rng))
		lt += float64(LTBlocksNeeded(ltcode.Params{K: k, C: 1, Delta: 0.5}, 4, rng))
	}
	repl /= trials
	lt /= trials
	if lt >= repl {
		t.Fatalf("LT mean blocks needed %.1f not below replication %.1f", lt, repl)
	}
	if lt > 2.2*k {
		t.Fatalf("LT mean blocks needed %.1f implausibly high", lt)
	}
}

func TestEmpiricalCDFEdgeCases(t *testing.T) {
	if cdf := EmpiricalCDF(nil, 4); cdf[4] != 0 {
		t.Fatal("empty samples should give zero CDF")
	}
	cdf := EmpiricalCDF([]int{1, 2, 2, 9, -1}, 4)
	if math.Abs(cdf[2]-0.6) > 1e-12 { // 3 of 5 samples <= 2
		t.Fatalf("cdf[2] = %v, want 0.6", cdf[2])
	}
	if cdf[4] != 0.6 { // the 9 lands beyond maxM; -1 skipped
		t.Fatalf("cdf[4] = %v, want 0.6", cdf[4])
	}
}

func TestQuickParityAnyKOfKPlus1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(12)
		c, err := NewParity(k)
		if err != nil {
			return false
		}
		orig := randBlocks(rng, k, 1+rng.Intn(16))
		coded, err := c.Encode(orig)
		if err != nil {
			return false
		}
		d := c.NewDecoder()
		skip := rng.Intn(k + 1)
		for idx := range coded {
			if idx == skip {
				continue
			}
			d.Add(idx, coded[idx])
		}
		got, err := d.Data()
		if err != nil {
			return false
		}
		for i := range orig {
			if !bytes.Equal(got[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
