// Package erasure defines the common coding abstraction used by the
// RobuSTore client and provides the simple codes the paper discusses
// alongside LT codes: plain-text replication (§2.2.2, the RRAID
// baseline's "code") and single parity (RAID-5 style). It also houses
// the Appendix A analysis comparing replication with erasure coding —
// the math behind Fig 4-1.
package erasure

import (
	"errors"
	"fmt"
)

// Decoder consumes coded blocks (in any order) and reports when the
// original data can be reconstructed. Implementations are not safe for
// concurrent use.
type Decoder interface {
	// Add feeds coded block idx with its payload. Duplicates are
	// ignored. It returns an error only for malformed input.
	Add(idx int, payload []byte) error
	// Complete reports whether all original blocks are recoverable.
	Complete() bool
	// Data returns the K original blocks; errors unless Complete.
	Data() ([][]byte, error)
	// Received returns the count of distinct blocks consumed.
	Received() int
}

// Code transforms K original blocks into N >= K coded blocks such that
// (some) subsets of coded blocks suffice to rebuild the originals.
type Code interface {
	// K returns the number of original blocks per segment.
	K() int
	// N returns the number of coded blocks produced by Encode.
	N() int
	// Encode maps K equal-size original blocks to N coded blocks.
	Encode(data [][]byte) ([][]byte, error)
	// NewDecoder returns a fresh decoder for one segment.
	NewDecoder() Decoder
}

// Errors shared by the built-in codes.
var (
	ErrBlockCount = errors.New("erasure: wrong number of original blocks")
	ErrBlockSize  = errors.New("erasure: original blocks have unequal or zero sizes")
	ErrIncomplete = errors.New("erasure: decode incomplete")
)

func checkBlocks(data [][]byte, k int) (int, error) {
	if len(data) != k {
		return 0, ErrBlockCount
	}
	size := len(data[0])
	if size == 0 {
		return 0, ErrBlockSize
	}
	for _, b := range data {
		if len(b) != size {
			return 0, ErrBlockSize
		}
	}
	return size, nil
}

// ---------------------------------------------------------------------------
// Replication

// Replication is plain-text replication: coded block i is a copy of
// original block i mod K, with replicas rotated (replica r of block b
// is coded index r*K+b). It is the redundancy scheme of RRAID-S and
// RRAID-A.
type Replication struct {
	k, replicas int
}

// NewReplication returns a replication code with `replicas` full
// copies (replicas >= 1; replicas == 1 means no redundancy, RAID-0).
func NewReplication(k, replicas int) (*Replication, error) {
	if k < 1 {
		return nil, fmt.Errorf("erasure: replication k must be >= 1, got %d", k)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("erasure: replicas must be >= 1, got %d", replicas)
	}
	return &Replication{k: k, replicas: replicas}, nil
}

func (r *Replication) K() int { return r.k }
func (r *Replication) N() int { return r.k * r.replicas }

// Origin returns the original-block index carried by coded block idx.
func (r *Replication) Origin(idx int) int { return idx % r.k }

func (r *Replication) Encode(data [][]byte) ([][]byte, error) {
	if _, err := checkBlocks(data, r.k); err != nil {
		return nil, err
	}
	out := make([][]byte, r.N())
	for i := range out {
		out[i] = data[i%r.k] // replicas share storage; callers treat blocks as immutable
	}
	return out, nil
}

func (r *Replication) NewDecoder() Decoder {
	return &replicationDecoder{code: r, data: make([][]byte, r.k)}
}

type replicationDecoder struct {
	code     *Replication
	data     [][]byte
	have     int
	received map[int]bool
}

func (d *replicationDecoder) Add(idx int, payload []byte) error {
	if idx < 0 || idx >= d.code.N() {
		return fmt.Errorf("erasure: replication block index %d out of range", idx)
	}
	if d.received == nil {
		d.received = make(map[int]bool)
	}
	if d.received[idx] {
		return nil
	}
	d.received[idx] = true
	o := d.code.Origin(idx)
	if d.data[o] == nil {
		d.data[o] = payload
		d.have++
	}
	return nil
}

func (d *replicationDecoder) Complete() bool { return d.have == d.code.k }
func (d *replicationDecoder) Received() int  { return len(d.received) }

func (d *replicationDecoder) Data() ([][]byte, error) {
	if !d.Complete() {
		return nil, ErrIncomplete
	}
	return d.data, nil
}

// ---------------------------------------------------------------------------
// Parity

// Parity is the single-XOR-parity code (N = K+1): any K of the K+1
// blocks reconstruct the data. It is the simplest erasure code the
// paper surveys (§2.2.2).
type Parity struct {
	k int
}

// NewParity returns a parity code over k blocks.
func NewParity(k int) (*Parity, error) {
	if k < 1 {
		return nil, fmt.Errorf("erasure: parity k must be >= 1, got %d", k)
	}
	return &Parity{k: k}, nil
}

func (p *Parity) K() int { return p.k }
func (p *Parity) N() int { return p.k + 1 }

func (p *Parity) Encode(data [][]byte) ([][]byte, error) {
	size, err := checkBlocks(data, p.k)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, p.k+1)
	copy(out, data)
	par := make([]byte, size)
	for _, b := range data {
		for i := range par {
			par[i] ^= b[i]
		}
	}
	out[p.k] = par
	return out, nil
}

func (p *Parity) NewDecoder() Decoder {
	return &parityDecoder{code: p, blocks: make([][]byte, p.k+1)}
}

type parityDecoder struct {
	code   *Parity
	blocks [][]byte
	have   int
}

func (d *parityDecoder) Add(idx int, payload []byte) error {
	if idx < 0 || idx > d.code.k {
		return fmt.Errorf("erasure: parity block index %d out of range", idx)
	}
	if d.blocks[idx] != nil {
		return nil
	}
	d.blocks[idx] = payload
	d.have++
	return nil
}

func (d *parityDecoder) Complete() bool { return d.have >= d.code.k }
func (d *parityDecoder) Received() int  { return d.have }

func (d *parityDecoder) Data() ([][]byte, error) {
	if !d.Complete() {
		return nil, ErrIncomplete
	}
	// Identify the (single possible) missing data block.
	missing := -1
	for i := 0; i < d.code.k; i++ {
		if d.blocks[i] == nil {
			missing = i
			break
		}
	}
	if missing < 0 {
		return d.blocks[:d.code.k], nil
	}
	if d.blocks[d.code.k] == nil {
		return nil, ErrIncomplete
	}
	rec := append([]byte(nil), d.blocks[d.code.k]...)
	for i := 0; i < d.code.k; i++ {
		if i == missing {
			continue
		}
		for j := range rec {
			rec[j] ^= d.blocks[i][j]
		}
	}
	out := make([][]byte, d.code.k)
	copy(out, d.blocks[:d.code.k])
	out[missing] = rec
	return out, nil
}
