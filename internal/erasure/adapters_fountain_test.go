package erasure

import (
	"testing"
)

func TestRaptorAdapterRoundTrip(t *testing.T) {
	c, err := NewRaptor(32, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 32 || c.N() != 128 {
		t.Fatalf("K/N = %d/%d", c.K(), c.N())
	}
	roundTrip(t, c, 11)
}

func TestTornadoAdapterRoundTrip(t *testing.T) {
	c, err := NewTornado(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 128 || c.N() <= c.K() {
		t.Fatalf("K/N = %d/%d", c.K(), c.N())
	}
	roundTrip(t, c, 12)
}

func TestFountainAdapterValidation(t *testing.T) {
	r, err := NewRaptor(16, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Encode(make([][]byte, 3)); err != ErrBlockCount {
		t.Fatalf("raptor wrong count: %v", err)
	}
	tn, err := NewTornado(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Encode(make([][]byte, 3)); err != ErrBlockCount {
		t.Fatalf("tornado wrong count: %v", err)
	}
	if _, err := NewRaptor(0, 4, 1); err == nil {
		t.Fatal("raptor K=0 accepted")
	}
	if _, err := NewTornado(0, 1); err == nil {
		t.Fatal("tornado K=0 accepted")
	}
}
