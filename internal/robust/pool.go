package robust

import (
	"encoding/binary"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/ltcode"
)

// Share-buffer pool: the write hot path encodes, seals, and frames
// every coded block inside one pooled buffer, so steady-state writes
// allocate ~zero per block (DESIGN.md §10). A buffer is
// [8B envelope][block bytes]; the envelope prefix is used only when
// the segment is sealed. Buffers are recycled after the Put returns —
// safe because blockstore.Store.Put must not retain its data.
//
// The pool is shared across clients: buffers are sized by request and
// reused whenever their capacity suffices, so mixed block sizes
// (repairing a segment written with different options) still pool.
var shareBufPool = sync.Pool{New: func() any { return new([]byte) }}

// shareBufLeases counts outstanding leased buffers. The regression
// tests pin this to zero after every write outcome — success, short
// write, early cancel — proving no error path strands a lease; the
// cost is one atomic add per lease, which the encode that follows
// dwarfs.
var shareBufLeases atomic.Int64

// getShareBuf returns a buffer with capacity >= n, length n.
func getShareBuf(n int) *[]byte {
	shareBufLeases.Add(1)
	b := shareBufPool.Get().(*[]byte)
	if cap(*b) < n {
		*b = make([]byte, n)
	}
	*b = (*b)[:n]
	return b
}

// putShareBuf recycles a buffer.
func putShareBuf(b *[]byte) {
	shareBufLeases.Add(-1)
	shareBufPool.Put(b)
}

// encodeShareInto encodes coded block idx into a pooled buffer and
// seals it in place when the segment uses share checksums. The
// returned share aliases buf; recycle buf only after the share's last
// use.
func encodeShareInto(buf []byte, graph *ltcode.Graph, idx int, blocks [][]byte, sealed bool) []byte {
	data := buf[shareOverhead:]
	graph.EncodeBlockInto(data, idx, blocks)
	if !sealed {
		return data
	}
	binary.BigEndian.PutUint32(buf[0:4], shareMagic)
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(data, shareCastagnoli))
	return buf
}

// shareBufLen is the pooled-buffer size for a block: envelope prefix
// plus payload, whether or not the envelope ends up used.
func shareBufLen(blockBytes int64) int { return shareOverhead + int(blockBytes) }
