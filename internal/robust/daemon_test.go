package robust

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/obs"
)

// tbClock is a hand-advanced clock for token-bucket arithmetic.
type tbClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *tbClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *tbClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTokenBucketReservation(t *testing.T) {
	clk := &tbClock{t: time.Unix(0, 0)}
	// 100 tokens/s, burst 100.
	b := newTokenBucket(100, 100, clk.Now)
	if w := b.take(100); w != 0 {
		t.Fatalf("burst take should be free, waited %v", w)
	}
	// Bucket empty: 50 more tokens cost 500ms at 100/s.
	if w := b.take(50); w != 500*time.Millisecond {
		t.Fatalf("take(50) wait = %v, want 500ms", w)
	}
	// A second taker owes its debt on top of the first reservation.
	if w := b.take(50); w != time.Second {
		t.Fatalf("stacked take(50) wait = %v, want 1s", w)
	}
	// After the debt window passes the bucket is level again.
	clk.Advance(time.Second)
	if w := b.take(0); w != 0 {
		t.Fatalf("zero take should never wait, got %v", w)
	}
	clk.Advance(time.Second)
	if w := b.take(100); w != 0 {
		t.Fatalf("refilled bucket should serve the burst, waited %v", w)
	}
	// Refill is capped at the burst.
	clk.Advance(time.Hour)
	if w := b.take(150); w != 500*time.Millisecond {
		t.Fatalf("over-burst take wait = %v, want 500ms", w)
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	if b := newTokenBucket(0, 0, time.Now); b != nil {
		t.Fatal("zero rate should disable the bucket")
	}
	var b *tokenBucket
	if w := b.take(1 << 40); w != 0 {
		t.Fatalf("nil bucket waited %v", w)
	}
}

func TestOrderAudits(t *testing.T) {
	queue := []SegmentAudit{
		{Name: "c", N: 10, Live: 8},                 // deficit 2
		{Name: "a", N: 10, Live: 9},                 // deficit 1
		{Name: "d", N: 10, Live: 4, Degraded: true}, // degraded, deficit 6
		{Name: "b", N: 10, Live: 8},                 // deficit 2, name before c
		{Name: "e", N: 10, Live: 6, Degraded: true}, // degraded, deficit 4
	}
	orderAudits(queue)
	var names []string
	for _, a := range queue {
		names = append(names, a.Name)
	}
	want := []string{"d", "e", "b", "c", "a"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v, want %v", names, want)
		}
	}
}

// newDaemonClient builds a client over checksummed in-memory stores,
// returning the raw inner stores so tests can rot blocks beneath the
// integrity framing.
func newDaemonClient(t *testing.T, reg *obs.Registry, addrs ...string) (*Client, map[string]*blockstore.MemStore) {
	t.Helper()
	c, err := NewClient(metadata.NewService(), Options{
		BlockBytes:     1 << 10,
		MaxServerShare: 0.28,
		Obs:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	inners := make(map[string]*blockstore.MemStore, len(addrs))
	for _, a := range addrs {
		inner := blockstore.NewMemStore()
		inners[a] = inner
		if err := c.AttachStore(a, blockstore.WithChecksums(inner)); err != nil {
			t.Fatal(err)
		}
	}
	return c, inners
}

func TestAuditCountsLossAndCorruption(t *testing.T) {
	c, inners := newDaemonClient(t, nil, "s1", "s2", "s3", "s4")
	ctx := context.Background()
	data := randData(8<<10, 2)
	if _, err := c.Write(ctx, "seg", data, nil); err != nil {
		t.Fatal(err)
	}
	seg, err := c.meta.LookupSegment("seg")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := c.Audit(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, idx := range seg.Placement {
		total += len(idx)
	}
	if clean.Live != total || clean.Corrupt != 0 || clean.Missing != 0 {
		t.Fatalf("clean audit = %+v, want live=%d", clean, total)
	}
	if clean.NeedsRepair() {
		t.Fatal("clean segment queued for repair")
	}

	// Delete one share and rot another on s1.
	held := seg.Placement["s1"]
	if len(held) < 2 {
		t.Fatalf("s1 holds %d shares, need 2", len(held))
	}
	if err := inners["s1"].Delete(ctx, "seg", held[0]); err != nil {
		t.Fatal(err)
	}
	framed, err := inners["s1"].Get(ctx, "seg", held[1])
	if err != nil {
		t.Fatal(err)
	}
	rotten := append([]byte(nil), framed...)
	rotten[0] ^= 0xFF
	if err := inners["s1"].Put(ctx, "seg", held[1], rotten); err != nil {
		t.Fatal(err)
	}

	audit, err := c.Audit(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if audit.Missing != 1 || audit.Corrupt != 1 || audit.Live != total-2 {
		t.Fatalf("damaged audit = %+v, want missing=1 corrupt=1 live=%d", audit, total-2)
	}
	if got := audit.CorruptBy["s1"]; len(got) != 1 || got[0] != held[1] {
		t.Fatalf("CorruptBy = %v, want s1:[%d]", audit.CorruptBy, held[1])
	}
	if !audit.NeedsRepair() {
		t.Fatal("damaged segment not queued")
	}
}

func TestDaemonRunOnceHealsLossAndCorruption(t *testing.T) {
	reg := obs.NewRegistry()
	c, inners := newDaemonClient(t, reg, "s1", "s2", "s3", "s4")
	ctx := context.Background()
	data := randData(8<<10, 3)
	if _, err := c.Write(ctx, "seg", data, nil); err != nil {
		t.Fatal(err)
	}
	seg, err := c.meta.LookupSegment("seg")
	if err != nil {
		t.Fatal(err)
	}
	// Rot one share and delete another, on different servers.
	rotIdx := seg.Placement["s2"][0]
	framed, err := inners["s2"].Get(ctx, "seg", rotIdx)
	if err != nil {
		t.Fatal(err)
	}
	rotten := append([]byte(nil), framed...)
	rotten[len(rotten)-1] ^= 0x55
	if err := inners["s2"].Put(ctx, "seg", rotIdx, rotten); err != nil {
		t.Fatal(err)
	}
	if err := inners["s3"].Delete(ctx, "seg", seg.Placement["s3"][0]); err != nil {
		t.Fatal(err)
	}

	d := NewDaemon(c, DaemonOptions{Obs: reg})
	stats, err := d.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 1 || stats.Enqueued != 1 || stats.Repaired != 1 {
		t.Fatalf("stats = %+v, want scanned=enqueued=repaired=1", stats)
	}
	if stats.Corrupt != 1 || stats.Missing != 1 {
		t.Fatalf("stats = %+v, want corrupt=1 missing=1", stats)
	}

	// The pass restored full redundancy: a fresh audit is clean.
	after, err := c.Audit(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if after.Deficit() != 0 || after.Corrupt != 0 || after.NeedsRepair() {
		t.Fatalf("post-repair audit = %+v", after)
	}
	got, _, err := c.Read(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch after heal")
	}

	// A second pass finds nothing to do — the daemon is idempotent.
	stats2, err := d.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Enqueued != 0 || stats2.Repaired != 0 {
		t.Fatalf("second pass = %+v, want empty queue", stats2)
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"scrub_passes_total", "scrub_segments_total",
		"scrub_corrupt_shares_total", "repair_queue_enqueued_total",
		"repair_queue_repaired_total",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("metric %s not recorded", name)
		}
	}
	if snap.Gauges["repair_queue_depth"] != 0 {
		t.Errorf("queue depth = %v after drain", snap.Gauges["repair_queue_depth"])
	}
}

func TestDaemonThrottleUsesBucket(t *testing.T) {
	c, inners := newDaemonClient(t, nil, "s1", "s2", "s3", "s4")
	ctx := context.Background()
	data := randData(8<<10, 4)
	if _, err := c.Write(ctx, "seg", data, nil); err != nil {
		t.Fatal(err)
	}
	seg, err := c.meta.LookupSegment("seg")
	if err != nil {
		t.Fatal(err)
	}
	if err := inners["s1"].Delete(ctx, "seg", seg.Placement["s1"][0]); err != nil {
		t.Fatal(err)
	}
	// Rate so high the deficit's charge clears in well under a test
	// tick, but with a tiny burst so the wait is still non-zero.
	d := NewDaemon(c, DaemonOptions{
		RepairRateBytesPerSec: 1 << 30,
		RepairBurstBytes:      1,
	})
	stats, err := d.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Repaired != 1 {
		t.Fatalf("stats = %+v, want one repair", stats)
	}
	if stats.Throttled <= 0 {
		t.Fatal("expected a throttle wait with a 1-byte burst")
	}
}

func TestDaemonStartStop(t *testing.T) {
	c, inners := newDaemonClient(t, nil, "s1", "s2", "s3", "s4")
	ctx := context.Background()
	data := randData(8<<10, 5)
	if _, err := c.Write(ctx, "seg", data, nil); err != nil {
		t.Fatal(err)
	}
	seg, err := c.meta.LookupSegment("seg")
	if err != nil {
		t.Fatal(err)
	}
	if err := inners["s2"].Delete(ctx, "seg", seg.Placement["s2"][0]); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(c, DaemonOptions{ScrubInterval: 5 * time.Millisecond})
	d.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		audit, err := c.Audit(ctx, "seg")
		if err == nil && !audit.NeedsRepair() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never healed the segment: %+v (err=%v)", audit, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	d.Stop()
	d.Stop() // idempotent
}
