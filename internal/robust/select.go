package robust

import (
	"context"
	"errors"

	"repro/internal/placement"
)

// QoS expresses the Appendix B open-options that matter to placement:
// how many servers to spread across and whether to force zone
// diversity (§5.3.1: "it is important to have each file striped across
// multiple distributed sites" / "a mixed selection ... is
// recommended").
type QoS struct {
	// Servers is the number of storage servers to use (0 = all
	// attached). §5.3.1: at least expected-bandwidth / per-server
	// bandwidth.
	Servers int
	// SpreadZones, when true, selects round-robin across metadata
	// zones so no single site failure can take out a large share.
	SpreadZones bool
	// PreferFast, when true, favors servers with higher ExpectedMBps
	// in the metadata registry (the §5.3.1 "lightly-loaded disks"
	// heuristic, using the registry's performance hints).
	PreferFast bool
	// MaxZoneShare, when positive, caps the fraction of the selection
	// any single zone may contribute (the failure-domain hard
	// constraint; the write path enforces the same fraction on
	// committed shares via Options.MaxZoneShare).
	MaxZoneShare float64
	// Seed randomizes ties deterministically (0 = unseeded default).
	Seed int64
}

// SelectServers picks a server subset per the QoS policy through the
// placement manager: registry zone/capacity/performance hints weight
// the draw, lifecycle states and the failure detector gate admission,
// and the degrade ladder guarantees a non-empty result whenever any
// non-Removed server is attached — health exclusion alone never
// yields ErrNoServers (Down servers are re-admitted last; see
// internal/placement). Attached servers missing from the registry are
// still eligible (unknown zone, zero expected bandwidth).
func (c *Client) SelectServers(q QoS) ([]string, error) {
	sel, err := c.placementSelect(placement.Policy{
		Servers:      q.Servers,
		SpreadZones:  q.SpreadZones,
		PreferFast:   q.PreferFast,
		MaxZoneShare: q.MaxZoneShare,
		Seed:         q.Seed,
	})
	if err != nil {
		if errors.Is(err, placement.ErrNoCandidates) {
			return nil, ErrNoServers
		}
		return nil, err
	}
	return sel.Servers, nil
}

// WriteWithQoS is Write with placement driven by a QoS policy instead
// of an explicit server list (the Appendix B open-with-QoS path).
func (c *Client) WriteWithQoS(ctx context.Context, name string, data []byte, q QoS) (WriteStats, error) {
	servers, err := c.SelectServers(q)
	if err != nil {
		return WriteStats{}, err
	}
	return c.Write(ctx, name, data, servers)
}
