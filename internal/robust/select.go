package robust

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/metadata"
)

// QoS expresses the Appendix B open-options that matter to placement:
// how many servers to spread across and whether to force zone
// diversity (§5.3.1: "it is important to have each file striped across
// multiple distributed sites" / "a mixed selection ... is
// recommended").
type QoS struct {
	// Servers is the number of storage servers to use (0 = all
	// attached). §5.3.1: at least expected-bandwidth / per-server
	// bandwidth.
	Servers int
	// SpreadZones, when true, selects round-robin across metadata
	// zones so no single site failure can take out a large share.
	SpreadZones bool
	// PreferFast, when true, favors servers with higher ExpectedMBps
	// in the metadata registry (the §5.3.1 "lightly-loaded disks"
	// heuristic, using the registry's performance hints).
	PreferFast bool
	// Seed randomizes ties deterministically (0 = unseeded default).
	Seed int64
}

// SelectServers picks a server subset per the QoS policy, drawing on
// the metadata registry for zone and performance hints; attached
// servers missing from the registry are still eligible (unknown zone,
// zero expected bandwidth).
func (c *Client) SelectServers(q QoS) ([]string, error) {
	attached := c.Servers()
	if len(attached) == 0 {
		return nil, ErrNoServers
	}
	n := q.Servers
	if n <= 0 || n > len(attached) {
		n = len(attached)
	}
	// Gather registry hints.
	info := map[string]metadata.Server{}
	for _, srv := range c.meta.Servers() {
		info[srv.Addr] = srv
	}
	rng := rand.New(rand.NewSource(q.Seed + 0x5ee1ec7))
	// Shuffle first so ties break randomly but deterministically.
	rng.Shuffle(len(attached), func(i, j int) { attached[i], attached[j] = attached[j], attached[i] })
	if q.PreferFast {
		sort.SliceStable(attached, func(i, j int) bool {
			return info[attached[i]].ExpectedMBps > info[attached[j]].ExpectedMBps
		})
	}
	if !q.SpreadZones {
		return attached[:n], nil
	}
	// Round-robin across zones, preserving the (possibly
	// performance-sorted) order within each zone.
	zones := map[string][]string{}
	var zoneOrder []string
	for _, addr := range attached {
		z := info[addr].Zone
		if _, ok := zones[z]; !ok {
			zoneOrder = append(zoneOrder, z)
		}
		zones[z] = append(zones[z], addr)
	}
	var out []string
	for len(out) < n {
		progressed := false
		for _, z := range zoneOrder {
			if len(zones[z]) == 0 {
				continue
			}
			out = append(out, zones[z][0])
			zones[z] = zones[z][1:]
			progressed = true
			if len(out) == n {
				break
			}
		}
		if !progressed {
			return nil, fmt.Errorf("robust: zone spread exhausted at %d of %d servers", len(out), n)
		}
	}
	return out, nil
}

// WriteWithQoS is Write with placement driven by a QoS policy instead
// of an explicit server list (the Appendix B open-with-QoS path).
func (c *Client) WriteWithQoS(ctx context.Context, name string, data []byte, q QoS) (WriteStats, error) {
	servers, err := c.SelectServers(q)
	if err != nil {
		return WriteStats{}, err
	}
	return c.Write(ctx, name, data, servers)
}
