package robust

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/faultinject"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/transport"
)

// The chaos suite drives real client/server pairs (TCP loopback, the
// full block protocol) through faultinject scenarios and asserts the
// recovery pipeline — transport retries, hedged reads, share
// checksums, degraded commits, repair promotion — holds under the
// paper's failure regime (§2.2.3, §6): sustained partial failure, not
// clean crashes.

// chaosServer is one TCP block server whose store and listener can be
// independently fault-wrapped.
type chaosServer struct {
	addr     string
	srv      *transport.Server
	mem      *blockstore.MemStore  // raw store beneath the checksum layer
	storeInj *faultinject.Injector // faults inside the store handler
	connInj  *faultinject.Injector // faults on the wire
}

// startChaosCluster launches n block servers with per-server
// injectors (initially configured off) and a robust client connected
// to all of them through real transport clients.
func startChaosCluster(t *testing.T, n int, ropts Options, copts transport.ClientOptions) (*Client, []*chaosServer) {
	t.Helper()
	meta := metadata.NewService()
	client, err := NewClient(meta, ropts)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*chaosServer, n)
	for i := range servers {
		cs := &chaosServer{
			mem:      blockstore.NewMemStore(),
			storeInj: faultinject.New(int64(1000+i), faultinject.Config{}, nil),
			connInj:  faultinject.New(int64(2000+i), faultinject.Config{}, nil),
		}
		store := faultinject.WrapStore(blockstore.WithChecksums(cs.mem), cs.storeInj)
		cs.srv = transport.NewServer(store, transport.ServerOptions{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cs.addr = ln.Addr().String()
		go cs.srv.Serve(faultinject.WrapListener(ln, cs.connInj))
		servers[i] = cs
	}
	t.Cleanup(func() {
		for _, cs := range servers {
			cs.storeInj.SetConfig(faultinject.Config{})
			cs.connInj.SetConfig(faultinject.Config{})
			cs.srv.Close()
		}
	})
	for _, cs := range servers {
		tc, err := transport.Dial(cs.addr, copts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tc.Close() })
		if err := client.AttachStore(cs.addr, tc); err != nil {
			t.Fatal(err)
		}
		meta.RegisterServer(metadata.Server{Addr: cs.addr})
	}
	return client, servers
}

// TestChaosStalledAndCorruptingRead is the headline recovery
// scenario: 8 servers, a healthy write, then 2 servers begin stalling
// every store operation and 1 starts corrupting every GET payload
// above its server-side checksum layer (i.e. transit corruption that
// only the client's share CRC can see). The speculative read must
// complete with intact data well before the stall duration, rejecting
// every corrupt share instead of feeding it to the decoder.
func TestChaosStalledAndCorruptingRead(t *testing.T) {
	reg := obs.NewRegistry()
	// Long enough that waiting it out would trip the assertion, short
	// enough that test cleanup (which must wait for server handlers
	// parked in the injected sleep) stays cheap.
	const stall = 1500 * time.Millisecond
	// The healthy five servers must always hold more blocks than the
	// peeling decoder's worst observed reception tail (~2.6K at K=32):
	// D=5 and a 0.15 share cap guarantee them >= 105 of the 192 blocks
	// (3.3K), whatever the rateless race does. With the default D=3 and
	// a 0.25 cap they can end up with barely K, and the read has no
	// choice but to wait out a stall — a coding-margin artifact, not a
	// routing failure.
	client, servers := startChaosCluster(t, 8,
		Options{BlockBytes: 8 << 10, Redundancy: 5, MaxServerShare: 0.15, HedgeReads: true, Obs: reg},
		transport.ClientOptions{MaxRetries: 2})
	ctx := context.Background()
	data := randData(256<<10, 77) // K=32

	if _, err := client.Write(ctx, "chaos", data, nil); err != nil {
		t.Fatal(err)
	}

	// The weather turns: two servers wedge, one rots.
	servers[0].storeInj.SetConfig(faultinject.Config{StallProb: 1, Stall: stall})
	servers[1].storeInj.SetConfig(faultinject.Config{StallProb: 1, Stall: stall})
	servers[2].storeInj.SetConfig(faultinject.Config{CorruptProb: 1, Ops: []string{"get"}})

	start := time.Now()
	got, stats, err := client.Read(ctx, "chaos")
	if err != nil {
		t.Fatalf("read under chaos: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decoder poisoned: data mismatch under corruption")
	}
	if elapsed := time.Since(start); elapsed >= stall {
		t.Fatalf("read took %v, waited out the %v stall instead of routing around it (stats %+v)", elapsed, stall, stats)
	}
	if stats.CorruptShares == 0 {
		t.Fatal("corrupting server surfaced no rejected shares")
	}
	snap := reg.Snapshot()
	if snap.Counters["robust_read_corrupt_shares_total"] == 0 {
		t.Fatal("robust_read_corrupt_shares_total not incremented")
	}
	t.Logf("read ok: %d corrupt shares rejected, %d failed gets, %d/%d hedge wins, %v",
		stats.CorruptShares, stats.FailedGets, stats.HedgeWins, stats.Hedges, stats.Duration)
}

// TestChaosConnResetsRecovered puts a flaky wire under the whole
// stack: every server's listener resets ~15% of exchanges and
// truncates another ~5% mid-frame. Transport-level retries (GETs) and
// rateless re-routing (PUTs) must still land a correct write/read
// round trip, and the retry counters must show recovery actually
// happened rather than the faults never firing.
func TestChaosConnResetsRecovered(t *testing.T) {
	reg := obs.NewRegistry()
	client, servers := startChaosCluster(t, 6,
		Options{BlockBytes: 8 << 10, Obs: reg},
		transport.ClientOptions{MaxRetries: 4, Obs: reg})
	ctx := context.Background()
	data := randData(256<<10, 78)

	for _, cs := range servers {
		cs.connInj.SetConfig(faultinject.Config{ResetProb: 0.15, ShortReadProb: 0.05})
	}

	ws, err := client.Write(ctx, "flaky", data, nil)
	if err != nil {
		t.Fatalf("write over flaky wire: %v", err)
	}
	got, rs, err := client.Read(ctx, "flaky")
	if err != nil {
		t.Fatalf("read over flaky wire: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch over flaky wire")
	}
	snap := reg.Snapshot()
	if ws.FailedPuts == 0 && snap.Counters["transport_client_retries_total"] == 0 {
		t.Fatal("no puts re-routed and no exchanges retried: faults never fired")
	}
	t.Logf("write: %d re-routed puts; read: %d failed gets; %d transport retries (%d won)",
		ws.FailedPuts, rs.FailedGets,
		snap.Counters["transport_client_retries_total"],
		snap.Counters["transport_client_retry_successes_total"])
}

// TestChaosDegradedWriteThenRepairPromotes is the graceful-degradation
// life cycle over real sockets: half the cluster rejects every PUT, so
// the write can only reach the degraded floor; it commits (marked
// Degraded) instead of failing. The servers then recover and Repair
// promotes the segment back to full redundancy.
func TestChaosDegradedWriteThenRepairPromotes(t *testing.T) {
	reg := obs.NewRegistry()
	client, servers := startChaosCluster(t, 4,
		Options{BlockBytes: 8 << 10, DegradedWrites: true, MaxServerShare: 0.25, Obs: reg},
		transport.ClientOptions{})
	ctx := context.Background()
	data := randData(64<<10, 79) // K=8, N=32, floor=ceil(1.75·8)=14

	// Two servers are down for writes. Their failures carry a small
	// injected latency so the healthy servers' puts land before the
	// failure budget can burn out (the same reasoning as capStore).
	down := faultinject.Config{Latency: 2 * time.Millisecond, ErrProb: 1, Ops: []string{"put"}}
	servers[2].storeInj.SetConfig(down)
	servers[3].storeInj.SetConfig(down)

	ws, err := client.Write(ctx, "degraded", data, nil)
	if !errors.Is(err, ErrDegradedWrite) {
		t.Fatalf("write error = %v, want ErrDegradedWrite", err)
	}
	if !ws.Degraded || ws.Committed >= ws.N {
		t.Fatalf("stats = %+v, want a degraded commit below N", ws)
	}
	got, _, err := client.Read(ctx, "degraded")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded segment unreadable: %v", err)
	}

	// Recovery: the failed servers come back, repair promotes.
	servers[2].storeInj.SetConfig(faultinject.Config{})
	servers[3].storeInj.SetConfig(faultinject.Config{})
	rs, err := client.Repair(ctx, "degraded")
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !rs.Promoted {
		t.Fatal("repair did not promote the degraded segment")
	}
	seg, err := client.Meta().LookupSegment("degraded")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Degraded {
		t.Fatal("segment still marked Degraded after repair")
	}
	total := 0
	for _, idx := range seg.Placement {
		total += len(idx)
	}
	if total < ws.N {
		t.Fatalf("placement holds %d blocks after promotion, want >= %d", total, ws.N)
	}
	got, _, err = client.Read(ctx, "degraded")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("promoted segment unreadable: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["robust_write_degraded_total"] != 1 {
		t.Fatalf("robust_write_degraded_total = %d, want 1", snap.Counters["robust_write_degraded_total"])
	}
	if snap.Counters["robust_repair_promoted_total"] != 1 {
		t.Fatalf("robust_repair_promoted_total = %d, want 1", snap.Counters["robust_repair_promoted_total"])
	}
}

// TestChaosScenarioPhasedOutage runs a scheduled scenario: the
// cluster is healthy, degrades to heavy resets mid-test, then heals —
// the injector switches phases on its own clock while reads keep
// flowing. Every read must succeed in every phase.
func TestChaosScenarioPhasedOutage(t *testing.T) {
	client, servers := startChaosCluster(t, 5,
		Options{BlockBytes: 8 << 10},
		transport.ClientOptions{MaxRetries: 4})
	ctx := context.Background()
	data := randData(128<<10, 80)
	if _, err := client.Write(ctx, "phased", data, nil); err != nil {
		t.Fatal(err)
	}

	sc, err := faultinject.ParseScenario("0s:latency=0s;50ms:reset=0.3;150ms:reset=0")
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range servers {
		cs.connInj.Run(sc)
	}
	deadline := time.Now().Add(250 * time.Millisecond)
	reads := 0
	for time.Now().Before(deadline) {
		got, _, err := client.Read(ctx, "phased")
		if err != nil {
			t.Fatalf("read %d failed mid-scenario: %v", reads, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %d returned wrong data", reads)
		}
		reads++
	}
	if reads < 3 {
		t.Fatalf("only %d reads completed across the scenario", reads)
	}
}

// BenchmarkChaosStalledRead measures the speculative read's tail
// under per-operation stalls, hedged vs unhedged: on every server,
// half of all GETs stall for 40ms. A single stalled *server* is
// routed around by redundancy alone, so per-op stalls everywhere are
// the regime where hedging earns its keep: a hedge re-draws the
// stall lottery on a fresh request instead of waiting the stall out.
func BenchmarkChaosStalledRead(b *testing.B) {
	for _, hedged := range []bool{false, true} {
		name := "unhedged"
		if hedged {
			name = "hedged"
		}
		b.Run(name, func(b *testing.B) {
			meta := metadata.NewService()
			reg := obs.NewRegistry()
			client, err := NewClient(meta, Options{
				BlockBytes:     8 << 10,
				MaxServerShare: 0.25,
				HedgeReads:     hedged,
				HedgeDelay:     5 * time.Millisecond,
				Obs:            reg,
			})
			if err != nil {
				b.Fatal(err)
			}
			injectors := make([]*faultinject.Injector, 6)
			for i := range injectors {
				injectors[i] = faultinject.New(int64(3000+i), faultinject.Config{}, nil)
				addr := fmt.Sprintf("mem-%02d", i)
				store := faultinject.WrapStore(blockstore.NewMemStore(), injectors[i])
				if err := client.AttachStore(addr, store); err != nil {
					b.Fatal(err)
				}
				meta.RegisterServer(metadata.Server{Addr: addr})
			}
			ctx := context.Background()
			data := randData(256<<10, 81)
			if _, err := client.Write(ctx, "bench", data, nil); err != nil {
				b.Fatal(err)
			}
			for _, in := range injectors {
				in.SetConfig(faultinject.Config{
					StallProb: 0.5, Stall: 40 * time.Millisecond, Ops: []string{"get"},
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := client.Read(ctx, "bench"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Metric units double as baseline keys (bench_baseline.sh
			// keeps units without a '/'), so they carry the variant name.
			ms := float64(b.Elapsed().Microseconds()) / 1000 / float64(b.N)
			b.ReportMetric(ms, "stalled_read_"+name+"_ms")
			if hedged {
				snap := reg.Snapshot()
				b.ReportMetric(float64(snap.Counters["robust_read_hedges_total"])/float64(b.N), "hedges_per_read")
				b.ReportMetric(float64(snap.Counters["robust_read_hedge_wins_total"])/float64(b.N), "hedge_wins_per_read")
			}
		})
	}
}
